// wdmtop is a live terminal dashboard for a running wdmserve: it polls
// /metrics (Prometheus text), /v1/health (failure plane), /v1/slo
// (burn-rate engine) and /v1/debug/spans?blocked=1 (trace ring) through
// the typed /v1 client and redraws a single console frame per interval
// — per-fabric occupancy, routed/blocked rates, connect latency
// quantiles, failed middles and degraded-mode derating, SLO burn
// status, and the most recent blocked trace id ready to paste into
// /v1/debug/spans?trace=.
//
// Against a server running with -history it also polls /v1/query and
// /v1/alerts and adds two panels: sparklines of the recent routed and
// blocked rates from the embedded metrics history, and the alerting
// rules engine's pending/firing table.
//
// Against a cluster node, -fleet switches to the federation view: it
// polls /v1/cluster/metrics (every shard's exposition merged server-side)
// and renders fleet-wide totals, the merged per-phase latency table,
// and a per-shard liveness/gauge table.
//
//	wdmtop -target http://localhost:8047 -interval 1s
//	wdmtop -target http://localhost:8047 -once        # one frame, no ANSI
//	wdmtop -target http://localhost:8047 -fleet       # cluster-wide view
package main

import (
	"context"
	"flag"
	"fmt"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/switchd/client"
)

func main() {
	target := flag.String("target", "http://localhost:8047", "base URL of the wdmserve instance")
	interval := flag.Duration("interval", time.Second, "poll and redraw interval")
	once := flag.Bool("once", false, "print one frame and exit (no screen clearing)")
	fleet := flag.Bool("fleet", false, "render the cluster-wide federation view from /v1/cluster/metrics")
	flag.Parse()

	cl := client.New(*target, client.WithTimeout(5*time.Second))
	var prev *poll
	for {
		frame, err := oneFrame(cl, *target, *fleet, &prev)
		if err != nil {
			if *once {
				fmt.Fprintln(os.Stderr, "wdmtop:", err)
				os.Exit(1)
			}
			fmt.Printf("\x1b[2J\x1b[Hwdmtop: %v (retrying every %s)\n", err, *interval)
		} else {
			if *once {
				fmt.Print(frame)
				return
			}
			// Clear screen, home cursor, redraw.
			fmt.Print("\x1b[2J\x1b[H" + frame)
		}
		time.Sleep(*interval)
	}
}

// oneFrame polls and renders either the single-node dashboard or the
// fleet view; prev carries rate state across dashboard polls.
func oneFrame(cl *client.Client, target string, fleet bool, prev **poll) (string, error) {
	if fleet {
		text, err := cl.FleetProm(context.Background())
		if err != nil {
			return "", fmt.Errorf("GET /v1/cluster/metrics: %w", err)
		}
		m, err := obs.ParseProm(strings.NewReader(text))
		if err != nil {
			return "", fmt.Errorf("parse /v1/cluster/metrics: %w", err)
		}
		return renderFleet(m, time.Now(), target), nil
	}
	cur, err := fetchPoll(cl)
	if err != nil {
		return "", err
	}
	frame := renderDashboard(cur, *prev, target)
	*prev = cur
	return frame, nil
}

// fetchPoll scrapes one frame's worth of state. /v1/health, /v1/slo and
// the span ring are optional (older servers, or tracing disabled):
// their absence degrades the frame, it does not fail the poll.
func fetchPoll(cl *client.Client) (*poll, error) {
	ctx := context.Background()
	p := &poll{t: time.Now()}

	promText, err := cl.Prom(ctx)
	if err != nil {
		return nil, fmt.Errorf("GET /metrics: %w", err)
	}
	if p.metrics, err = obs.ParseProm(strings.NewReader(promText)); err != nil {
		return nil, fmt.Errorf("parse /metrics: %w", err)
	}

	if h, err := cl.Health(ctx); err == nil {
		p.health = &h
	}
	if snap, err := cl.SLO(ctx); err == nil {
		p.slo = &snap
	}
	if spans, err := cl.Spans(ctx, "blocked=1&limit=1"); err == nil && len(spans.Traces) > 0 {
		p.lastBlocked = &spans.Traces[len(spans.Traces)-1]
	}
	if al, err := cl.Alerts(ctx); err == nil {
		p.alerts = al
	}
	if qr, err := cl.Query(ctx, histQuery("rate(wdm_blocked_total[10s])")); err == nil {
		p.histBlocked = &qr
	}
	if qr, err := cl.Query(ctx, histQuery("rate(wdm_route_ops_total[10s])")); err == nil {
		p.histRouted = &qr
	}
	return p, nil
}

// histQuery builds the /v1/query parameters behind one sparkline: the
// last two minutes at a 2s step.
func histQuery(expr string) string {
	v := url.Values{}
	v.Set("query", expr)
	v.Set("start", "-2m")
	v.Set("end", "now")
	v.Set("step", "2s")
	return v.Encode()
}
