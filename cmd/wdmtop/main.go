// wdmtop is a live terminal dashboard for a running wdmserve: it polls
// /metrics (Prometheus text), /v1/slo (burn-rate engine) and
// /v1/debug/spans?blocked=1 (trace ring) and redraws a single console
// frame per interval — per-fabric occupancy, routed/blocked rates,
// connect latency quantiles, SLO burn status, and the most recent
// blocked trace id ready to paste into /v1/debug/spans?trace=.
//
//	wdmtop -target http://localhost:8047 -interval 1s
//	wdmtop -target http://localhost:8047 -once        # one frame, no ANSI
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/obs/span"
)

func main() {
	target := flag.String("target", "http://localhost:8047", "base URL of the wdmserve instance")
	interval := flag.Duration("interval", time.Second, "poll and redraw interval")
	once := flag.Bool("once", false, "print one frame and exit (no screen clearing)")
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	var prev *poll
	for {
		cur, err := fetchPoll(client, *target)
		if err != nil {
			if *once {
				fmt.Fprintln(os.Stderr, "wdmtop:", err)
				os.Exit(1)
			}
			fmt.Printf("\x1b[2J\x1b[Hwdmtop: %v (retrying every %s)\n", err, *interval)
		} else {
			frame := renderDashboard(cur, prev, *target)
			if *once {
				fmt.Print(frame)
				return
			}
			// Clear screen, home cursor, redraw.
			fmt.Print("\x1b[2J\x1b[H" + frame)
			prev = cur
		}
		time.Sleep(*interval)
	}
}

// fetchPoll scrapes one frame's worth of state. /v1/slo and the span
// ring are optional (older servers, or tracing disabled): their absence
// degrades the frame, it does not fail the poll.
func fetchPoll(client *http.Client, target string) (*poll, error) {
	p := &poll{t: time.Now()}

	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	if p.metrics, err = obs.ParseProm(resp.Body); err != nil {
		return nil, fmt.Errorf("parse /metrics: %w", err)
	}

	var snap slo.Snapshot
	if ok := getJSON(client, target+"/v1/slo", &snap); ok {
		p.slo = &snap
	}
	var spans struct {
		Traces []span.TraceRecord `json:"traces"`
	}
	if ok := getJSON(client, target+"/v1/debug/spans?blocked=1&limit=1", &spans); ok && len(spans.Traces) > 0 {
		p.lastBlocked = &spans.Traces[len(spans.Traces)-1]
	}
	return p, nil
}

// getJSON fetches and decodes a JSON endpoint, reporting success.
func getJSON(client *http.Client, url string, v any) bool {
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	return json.NewDecoder(resp.Body).Decode(v) == nil
}
