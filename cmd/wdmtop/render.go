package main

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
	"repro/internal/switchd/api"
)

// Pure rendering: a poll pair (current + previous for rates) in, one
// dashboard string out. Everything here is testable without a server.

// poll is one scrape of the serving endpoints.
type poll struct {
	t       time.Time
	metrics obs.Metrics
	// health is the failure-plane snapshot (nil against older servers).
	health *api.Health
	slo    *slo.Snapshot
	// lastBlocked is the most recent blocked trace, when the span ring
	// has one (nil otherwise or when tracing is disabled).
	lastBlocked *span.TraceRecord
	// alerts is the rules-engine snapshot (nil when the server runs
	// without -history).
	alerts []tsdb.AlertStatus
	// histBlocked/histRouted are short /v1/query ranges backing the
	// sparkline panel (nil without -history).
	histBlocked *tsdb.QueryResult
	histRouted  *tsdb.QueryResult
}

// fabricRow is one plane's line in the occupancy table.
type fabricRow struct {
	id              int
	active          float64
	routed, blocked float64
	inRatio         float64
	outRatio        float64
}

// fabricRows extracts the per-plane table from a parsed exposition,
// ordered by fabric index.
func fabricRows(m obs.Metrics) []fabricRow {
	fam := m["wdm_fabric_active"]
	if fam == nil {
		return nil
	}
	var rows []fabricRow
	for _, s := range fam.Samples {
		id, err := strconv.Atoi(s.Labels["fabric"])
		if err != nil {
			continue
		}
		lbl := map[string]string{"fabric": s.Labels["fabric"]}
		row := fabricRow{id: id, active: s.Value}
		row.routed, _ = m.Value("wdm_fabric_routed_total", lbl)
		row.blocked, _ = m.Value("wdm_fabric_blocked_total", lbl)
		row.inRatio, _ = m.Value("wdm_link_busy_ratio", map[string]string{"fabric": s.Labels["fabric"], "stage": "in"})
		row.outRatio, _ = m.Value("wdm_link_busy_ratio", map[string]string{"fabric": s.Labels["fabric"], "stage": "out"})
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	return rows
}

// histQuantileMicros estimates the q-quantile of one op's latency
// histogram as the upper bound of the first cumulative bucket covering
// q of the observations, in microseconds. ok is false with no samples.
func histQuantileMicros(m obs.Metrics, op string, q float64) (float64, bool) {
	return histQuantileFamily(m, "wdm_op_latency_seconds", map[string]string{"op": op}, q)
}

// histQuantileFamily is histQuantileMicros generalized over the
// histogram family and label filter.
func histQuantileFamily(m obs.Metrics, family string, match map[string]string, q float64) (float64, bool) {
	fam := m[family]
	if fam == nil {
		return 0, false
	}
	type bkt struct{ le, count float64 }
	var buckets []bkt
	maxFinite := 0.0
	for _, s := range fam.Samples {
		if s.Name != family+"_bucket" {
			continue
		}
		skip := false
		for k, v := range match {
			if s.Labels[k] != v {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		le, err := strconv.ParseFloat(s.Labels["le"], 64)
		if err != nil {
			continue // +Inf rejects ParseFloat only on malformed text; "+Inf" parses
		}
		if !math.IsInf(le, +1) && le > maxFinite {
			maxFinite = le
		}
		buckets = append(buckets, bkt{le: le, count: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].count
	if total == 0 {
		return 0, false
	}
	target := q * total
	for _, b := range buckets {
		if b.count >= target {
			if math.IsInf(b.le, +1) {
				// The quantile falls past the largest finite bound;
				// report that bound as a lower estimate.
				return maxFinite * 1e6, true
			}
			return b.le * 1e6, true
		}
	}
	return maxFinite * 1e6, true
}

// counter returns a label-less sample value, 0 when absent.
func counter(m obs.Metrics, name string) float64 {
	v, _ := m.Value(name, nil)
	return v
}

// rate computes the per-second delta of a counter between polls; zero
// without a previous poll.
func rate(cur, prev *poll, name string) float64 {
	if prev == nil {
		return 0
	}
	dt := cur.t.Sub(prev.t).Seconds()
	if dt <= 0 {
		return 0
	}
	d := counter(cur.metrics, name) - counter(prev.metrics, name)
	if d < 0 { // server restarted between polls
		return 0
	}
	return d / dt
}

func pct(v float64) string { return fmt.Sprintf("%5.1f%%", v*100) }

// renderDashboard builds the full console frame.
func renderDashboard(cur, prev *poll, target string) string {
	var b strings.Builder
	m := cur.metrics

	mVal, _ := m.Value("wdm_fabric_info", nil)
	var model, constr, n, k, r, x string
	if fam := m["wdm_fabric_info"]; fam != nil && len(fam.Samples) > 0 {
		l := fam.Samples[0].Labels
		model, constr, n, k, r, x = l["model"], l["construction"], l["n"], l["k"], l["r"], l["x"]
	}
	suffM := counter(m, "wdm_sufficient_m")
	bound := "AT/ABOVE BOUND (nonblocking)"
	if mVal < suffM {
		bound = "BELOW BOUND (blocking possible)"
	}
	fmt.Fprintf(&b, "wdmtop — %s — %s\n", target, cur.t.Format("15:04:05"))
	fmt.Fprintf(&b, "fabric: %s/%s  N=%s K=%s r=%s  m=%.0f (sufficient %.0f)  x=%s  — %s\n\n",
		model, constr, n, k, r, mVal, suffM, x, bound)

	routed := counter(m, "wdm_connect_total") + counter(m, "wdm_branch_total")
	blocked := counter(m, "wdm_blocked_total")
	fmt.Fprintf(&b, "sessions %.0f   routed %.0f (%.1f/s)   blocked %.0f (%.1f/s)   inadmissible %.0f\n",
		counter(m, "wdm_active_sessions"),
		routed, rate(cur, prev, "wdm_connect_total")+rate(cur, prev, "wdm_branch_total"),
		blocked, rate(cur, prev, "wdm_blocked_total"),
		counter(m, "wdm_inadmissible_total"))

	if p50, ok := histQuantileMicros(m, "connect", 0.50); ok {
		p90, _ := histQuantileMicros(m, "connect", 0.90)
		p99, _ := histQuantileMicros(m, "connect", 0.99)
		fmt.Fprintf(&b, "connect latency ≤ p50 %s  p90 %s  p99 %s\n", usStr(p50), usStr(p90), usStr(p99))
	}
	b.WriteByte('\n')

	if p := phasesPanel(m); p != "" {
		b.WriteString(p)
		b.WriteByte('\n')
	}

	if rows := fabricRows(m); len(rows) > 0 {
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "fabric\tactive\trouted\tblocked\tin-occ\tout-occ")
		for _, row := range rows {
			fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%s\t%s\n",
				row.id, row.active, row.routed, row.blocked, pct(row.inRatio), pct(row.outRatio))
		}
		tw.Flush()
		b.WriteByte('\n')
	}

	if h := cur.health; h != nil {
		fmt.Fprintf(&b, "health %s", strings.ToUpper(h.Status))
		if h.FailedMiddles > 0 || h.MigratedSessions > 0 || h.DroppedSessions > 0 {
			fmt.Fprintf(&b, "  failed middles %d  migrated %d  dropped %d",
				h.FailedMiddles, h.MigratedSessions, h.DroppedSessions)
		}
		if h.Degraded {
			capStr := "unlimited"
			if h.MaxSessions > 0 {
				capStr = fmt.Sprintf("%d", h.MaxSessions)
			}
			fmt.Fprintf(&b, "  cap %d (derated from %s)", h.EffectiveMaxSessions, capStr)
		}
		b.WriteByte('\n')
		for _, fh := range h.Fabrics {
			if len(fh.FailedMiddles) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  fabric %d: failed middles %v  effective m %d/%d  (%s)\n",
				fh.Replica, fh.FailedMiddles, fh.EffectiveM, h.M, fh.Status)
		}
		b.WriteByte('\n')
	}

	if d := durabilityPanel(cur); d != "" {
		b.WriteString(d)
		b.WriteByte('\n')
	}

	if c := clusterPanel(cur); c != "" {
		b.WriteString(c)
		b.WriteByte('\n')
	}

	if h := historyPanel(cur); h != "" {
		b.WriteString(h)
		b.WriteByte('\n')
	}

	if a := alertsPanel(cur.alerts); a != "" {
		b.WriteString(a)
		b.WriteByte('\n')
	}

	if s := cur.slo; s != nil {
		health := "HEALTHY"
		if !s.Healthy {
			health = "BURNING"
		}
		fmt.Fprintf(&b, "SLO %s  (availability objective %.4g, latency ≤ %.0fµs @ %.4g)\n",
			health, s.Objective, s.LatencyThresholdUs, s.LatencyObjective)
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "window\tavailability\tburn\tlatency-ok\tlat-burn")
		for _, w := range s.Windows {
			fmt.Fprintf(tw, "%s\t%.5f\t%.2f\t%.5f\t%.2f\n",
				w.Window, w.Availability, w.AvailabilityBurn, w.LatencyOK, w.LatencyBurn)
		}
		tw.Flush()
		for _, a := range s.Alerts {
			state := "ok"
			if a.AvailabilityFiring {
				state = "FIRING (availability)"
			} else if a.LatencyFiring {
				state = "FIRING (latency)"
			}
			fmt.Fprintf(&b, "alert %-5s (%s && %s > %.1f): %s\n", a.Name, a.Short, a.Long, a.Threshold, state)
		}
		b.WriteByte('\n')
	}

	if t := cur.lastBlocked; t != nil {
		fmt.Fprintf(&b, "last blocked trace: %s  (%s, %s, %s ago)\n",
			t.TraceID, t.Root, usStr(float64(t.DurationNs)/1e3),
			cur.t.Sub(t.Start).Truncate(time.Second))
		fmt.Fprintf(&b, "  inspect: curl '%s/v1/debug/spans?trace=%s'\n", target, t.TraceID)
	} else if blocked > 0 {
		fmt.Fprintf(&b, "last blocked trace: (none in span ring)\n")
	} else {
		fmt.Fprintf(&b, "no blocking events — invariant holding\n")
	}
	return b.String()
}

// durabilityPanel renders the durable-state-plane row: WAL lag
// (appended bytes not yet fsynced), snapshot age, fsync p99, and what
// the last startup recovered. Empty when the server runs in-memory
// (no wdm_wal_* series and no health row).
func durabilityPanel(cur *poll) string {
	var d *api.DurabilityHealth
	if cur.health != nil {
		d = cur.health.Durability
	}
	m := cur.metrics
	_, hasWal := m.Value("wdm_wal_appends_total", nil)
	if d == nil && !hasWal {
		return ""
	}
	var b strings.Builder
	state := "HEALTHY"
	if d != nil && !d.Healthy {
		state = "POISONED (mutations 503 until restart)"
	} else if v, ok := m.Value("wdm_wal_healthy", nil); ok && v == 0 {
		state = "POISONED (mutations 503 until restart)"
	}
	appends := counter(m, "wdm_wal_appends_total")
	fsyncs := counter(m, "wdm_wal_fsyncs_total")
	lag := counter(m, "wdm_wal_unsynced_bytes")
	fmt.Fprintf(&b, "durability %s  wal %.0f appends / %.0f fsyncs  lag %.0fB",
		state, appends, fsyncs, lag)
	if p99, ok := histQuantileFamily(m, "wdm_wal_fsync_seconds", nil, 0.99); ok {
		fmt.Fprintf(&b, "  fsync p99 ≤ %s", usStr(p99))
	}
	b.WriteByte('\n')
	if age, ok := m.Value("wdm_snapshot_age_seconds", nil); ok {
		fmt.Fprintf(&b, "  snapshot age %s (covers seq %.0f)",
			(time.Duration(age * float64(time.Second))).Truncate(time.Second),
			counter(m, "wdm_snapshot_last_seq"))
	} else {
		fmt.Fprintf(&b, "  no snapshot yet")
	}
	if d != nil {
		fmt.Fprintf(&b, "  seq %d (synced %d)", d.LastSeq, d.SyncedSeq)
		if d.RecoveredSessions > 0 || d.ReplayedRecords > 0 {
			fmt.Fprintf(&b, "  recovered %d sessions in %dms", d.RecoveredSessions, d.RecoveryMillis)
		}
		if d.TruncatedTail != "" {
			fmt.Fprintf(&b, "\n  CORRUPT TAIL truncated at recovery: %s", d.TruncatedTail)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// clusterPanel renders the replication row of a clustered node: role,
// shard, stream liveness, sequence positions, and lag. Empty when the
// node is not part of a cluster (no health row and no
// wdm_replication_* series).
func clusterPanel(cur *poll) string {
	var r *api.ReplicationHealth
	if cur.health != nil {
		r = cur.health.Replication
	}
	m := cur.metrics
	_, hasRepl := m.Value("wdm_replication_seq", nil)
	if r == nil && !hasRepl {
		return ""
	}
	var b strings.Builder
	if r == nil {
		// Metrics-only target (health endpoint unreachable or filtered):
		// show the raw series.
		fmt.Fprintf(&b, "cluster  replication lag %.3fs\n", counter(m, "wdm_replication_lag_seconds"))
		return b.String()
	}
	link := "DISCONNECTED"
	if r.Connected {
		link = "connected"
	}
	fmt.Fprintf(&b, "cluster shard %d  role %s", r.Shard, strings.ToUpper(r.Role))
	if r.Promoted {
		b.WriteString(" (promoted from standby)")
	}
	fmt.Fprintf(&b, "  stream %s", link)
	b.WriteByte('\n')
	switch r.Role {
	case api.RolePrimary:
		fmt.Fprintf(&b, "  standbys %d  synced seq %d / acked %d  lag %d records %.3fs",
			r.Standbys, r.SyncedSeq, r.AckedSeq, r.LagRecords, r.LagSeconds)
		if r.SyncTimeouts > 0 {
			fmt.Fprintf(&b, "  SYNC TIMEOUTS %d (degraded to async)", r.SyncTimeouts)
		}
	default:
		fmt.Fprintf(&b, "  applied seq %d / primary %d  lag %d records %.3fs  reconnects %d",
			r.AppliedSeq, r.SyncedSeq, r.LagRecords, r.LagSeconds, r.Reconnects)
		if r.Snapshots > 0 {
			fmt.Fprintf(&b, "  snapshot bootstraps %d", r.Snapshots)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// sparkGlyphs is the eight-level block ramp used by sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as a block-glyph strip scaled 0..max (the
// series the dashboard plots are rates, so zero is the natural floor).
// Longer series are downsampled by max over equal buckets so spikes
// survive compression; NaN (no sample at that step) renders as a space.
func sparkline(vals []float64, width int) string {
	if width <= 0 || len(vals) == 0 {
		return ""
	}
	if len(vals) > width {
		packed := make([]float64, width)
		for i := range packed {
			lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
			cell := math.NaN()
			for _, v := range vals[lo:hi] {
				if !math.IsNaN(v) && (math.IsNaN(cell) || v > cell) {
					cell = v
				}
			}
			packed[i] = cell
		}
		vals = packed
	}
	max := 0.0
	for _, v := range vals {
		if !math.IsNaN(v) && v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		switch {
		case math.IsNaN(v):
			b.WriteByte(' ')
		case max == 0:
			b.WriteRune(sparkGlyphs[0])
		default:
			idx := int(v / max * float64(len(sparkGlyphs)-1))
			if idx < 0 {
				idx = 0
			}
			b.WriteRune(sparkGlyphs[idx])
		}
	}
	return b.String()
}

// seriesValues sums a query result across its series per step (a
// single-node rate() result has one series; a federated one has one
// per shard plus the fleet sum — the plain per-shard rows are summed,
// the precomputed fleet row is skipped to avoid double counting).
func seriesValues(qr *tsdb.QueryResult) []float64 {
	if qr == nil || len(qr.Series) == 0 {
		return nil
	}
	var n int
	for _, s := range qr.Series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.NaN()
	}
	for _, s := range qr.Series {
		if s.Labels["shard"] == "fleet" {
			continue
		}
		for i, p := range s.Points {
			if math.IsNaN(p.V) {
				continue
			}
			if math.IsNaN(vals[i]) {
				vals[i] = 0
			}
			vals[i] += p.V
		}
	}
	return vals
}

// historyPanel renders sparklines of the recent routed/blocked rates
// from the server's embedded metrics history; empty when the server
// runs without -history (no /v1/query).
func historyPanel(cur *poll) string {
	if cur.histBlocked == nil && cur.histRouted == nil {
		return ""
	}
	span := ""
	if qr := cur.histRouted; qr != nil && qr.EndMs > qr.StartMs {
		span = fmt.Sprintf(" (last %s)", (time.Duration(qr.EndMs-qr.StartMs) * time.Millisecond).Truncate(time.Second))
	} else if qr := cur.histBlocked; qr != nil && qr.EndMs > qr.StartMs {
		span = fmt.Sprintf(" (last %s)", (time.Duration(qr.EndMs-qr.StartMs) * time.Millisecond).Truncate(time.Second))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "history%s\n", span)
	row := func(name string, qr *tsdb.QueryResult) {
		vals := seriesValues(qr)
		if len(vals) == 0 {
			return
		}
		max := 0.0
		for _, v := range vals {
			if !math.IsNaN(v) && v > max {
				max = v
			}
		}
		fmt.Fprintf(&b, "  %-10s %s  max %.1f/s\n", name, sparkline(vals, 60), max)
	}
	row("routed/s", cur.histRouted)
	row("blocked/s", cur.histBlocked)
	return b.String()
}

// alertsPanel renders the rules-engine snapshot: a one-line rollup and
// one row per non-inactive rule. Empty when the engine is absent.
func alertsPanel(alerts []tsdb.AlertStatus) string {
	if alerts == nil {
		return ""
	}
	var firing, pending int
	for _, a := range alerts {
		switch a.State {
		case tsdb.StateFiring:
			firing++
		case tsdb.StatePending:
			pending++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "alerts  %d firing / %d pending / %d ok\n",
		firing, pending, len(alerts)-firing-pending)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	for _, a := range alerts {
		if a.State == tsdb.StateInactive {
			continue
		}
		state := string(a.State)
		if a.State == tsdb.StateFiring {
			state = "FIRING"
		}
		since := "-"
		if a.Since != nil {
			since = time.Since(*a.Since).Truncate(time.Second).String()
		}
		fmt.Fprintf(tw, "  %s\t%s\tvalue %.4g\tfor %s\n", state, a.Rule.Name, a.Value, since)
	}
	tw.Flush()
	return b.String()
}

// phaseOrder mirrors the server's hot-path order, so the panel reads
// top-to-bottom as a request flows.
var phaseOrder = []string{"admission_wait", "lock_wait", "route_search", "wal_append", "repl_ack", "respond"}

// phasesPanel renders the per-phase attribution table from the
// wdm_phase_seconds histograms; empty when the family is absent or all
// phases are unobserved.
func phasesPanel(m obs.Metrics) string {
	fam := m["wdm_phase_seconds"]
	if fam == nil {
		return ""
	}
	present := map[string]bool{}
	for _, s := range fam.Samples {
		if p := s.Labels["phase"]; p != "" {
			present[p] = true
		}
	}
	names := make([]string, 0, len(present))
	for _, p := range phaseOrder {
		if present[p] {
			names = append(names, p)
			delete(present, p)
		}
	}
	var rest []string
	for p := range present {
		rest = append(rest, p)
	}
	sort.Strings(rest)
	names = append(names, rest...)

	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tcount\tmean\tp50 ≤\tp99 ≤")
	wrote := false
	for _, p := range names {
		lbl := map[string]string{"phase": p}
		count, _ := m.Value("wdm_phase_seconds_count", lbl)
		if count == 0 {
			continue
		}
		sum, _ := m.Value("wdm_phase_seconds_sum", lbl)
		p50, _ := histQuantileFamily(m, "wdm_phase_seconds", lbl, 0.50)
		p99, _ := histQuantileFamily(m, "wdm_phase_seconds", lbl, 0.99)
		fmt.Fprintf(tw, "%s\t%.0f\t%s\t%s\t%s\n", p, count, usStr(sum/count*1e6), usStr(p50), usStr(p99))
		wrote = true
	}
	if !wrote {
		return ""
	}
	tw.Flush()
	return b.String()
}

// renderFleet builds the -fleet frame from a parsed /v1/cluster/metrics
// exposition: fleet-wide totals (counters and histograms arrive summed
// across shards), the merged phase table, and a per-shard gauge table.
func renderFleet(m obs.Metrics, t time.Time, target string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "wdmtop fleet — %s/v1/cluster/metrics — %s\n\n", target, t.Format("15:04:05"))

	routed := counter(m, "wdm_connect_total") + counter(m, "wdm_branch_total")
	var sessions float64
	if fam := m["wdm_active_sessions"]; fam != nil {
		for _, s := range fam.Samples {
			sessions += s.Value
		}
	}
	fmt.Fprintf(&b, "fleet sessions %.0f   routed %.0f   blocked %.0f   inadmissible %.0f\n",
		sessions, routed, counter(m, "wdm_blocked_total"), counter(m, "wdm_inadmissible_total"))
	if p50, ok := histQuantileMicros(m, "connect", 0.50); ok {
		p99, _ := histQuantileMicros(m, "connect", 0.99)
		fmt.Fprintf(&b, "fleet connect latency ≤ p50 %s  p99 %s\n", usStr(p50), usStr(p99))
	}
	b.WriteByte('\n')

	if p := phasesPanel(m); p != "" {
		b.WriteString(p)
		b.WriteByte('\n')
	}

	up := m["wdm_federation_peer_up"]
	if up == nil {
		b.WriteString("no wdm_federation_peer_up series — is the target running in -cluster mode?\n")
		return b.String()
	}
	type shardRow struct {
		shard string
		up    float64
	}
	var rows []shardRow
	for _, s := range up.Samples {
		rows = append(rows, shardRow{shard: s.Labels["shard"], up: s.Value})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].shard < rows[j].shard })
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shard\tup\tsessions\trepl-lag\tgoroutines\theap\toffered-E\tP_block")
	for _, row := range rows {
		lbl := map[string]string{"shard": row.shard}
		status := "DOWN"
		if row.up == 1 {
			status = "up"
		}
		sess, _ := m.Value("wdm_active_sessions", lbl)
		lag, _ := m.Value("wdm_replication_lag_seconds", lbl)
		gor, _ := m.Value("wdm_go_goroutines", lbl)
		heap, _ := m.Value("wdm_go_heap_bytes", lbl)
		// Loadgen self-report gauges are only present while a generator
		// is actively reporting against the shard.
		load := "-"
		if erl, ok := m.Value("wdm_loadgen_offered_erlangs", lbl); ok && erl > 0 {
			load = fmt.Sprintf("%.1f", erl)
		}
		pblock := "-"
		if br, ok := m.Value("wdm_loadgen_block_rate", lbl); ok {
			pblock = fmt.Sprintf("%.4f", br)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.3fs\t%.0f\t%s\t%s\t%s\n",
			row.shard, status, sess, lag, gor, byteStr(heap), load, pblock)
	}
	tw.Flush()
	return b.String()
}

// byteStr renders a byte count compactly.
func byteStr(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// usStr renders microseconds compactly (µs below 1ms, ms above).
func usStr(us float64) string {
	if us >= 1000 {
		return fmt.Sprintf("%.2fms", us/1000)
	}
	return fmt.Sprintf("%.0fµs", us)
}
