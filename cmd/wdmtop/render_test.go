package main

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
	"repro/internal/switchd/api"
)

const testExposition = `# TYPE wdm_fabric_info gauge
wdm_fabric_info{model="msw",construction="msw",n="16",k="2",r="4",x="1"} 2
# TYPE wdm_sufficient_m gauge
wdm_sufficient_m 7
# TYPE wdm_connect_total counter
wdm_connect_total 100
# TYPE wdm_branch_total counter
wdm_branch_total 10
# TYPE wdm_blocked_total counter
wdm_blocked_total 3
# TYPE wdm_inadmissible_total counter
wdm_inadmissible_total 1
# TYPE wdm_active_sessions gauge
wdm_active_sessions 12
# TYPE wdm_fabric_active gauge
wdm_fabric_active{fabric="1"} 7
wdm_fabric_active{fabric="0"} 5
# TYPE wdm_fabric_routed_total counter
wdm_fabric_routed_total{fabric="0"} 60
wdm_fabric_routed_total{fabric="1"} 50
# TYPE wdm_fabric_blocked_total counter
wdm_fabric_blocked_total{fabric="0"} 3
wdm_fabric_blocked_total{fabric="1"} 0
# TYPE wdm_link_busy_ratio gauge
wdm_link_busy_ratio{fabric="0",stage="in"} 0.25
wdm_link_busy_ratio{fabric="0",stage="out"} 0.5
wdm_link_busy_ratio{fabric="1",stage="in"} 0.1
wdm_link_busy_ratio{fabric="1",stage="out"} 0.2
# TYPE wdm_op_latency_seconds histogram
wdm_op_latency_seconds_bucket{op="connect",le="0.0001"} 50
wdm_op_latency_seconds_bucket{op="connect",le="0.001"} 90
wdm_op_latency_seconds_bucket{op="connect",le="+Inf"} 100
wdm_op_latency_seconds_sum{op="connect"} 0.05
wdm_op_latency_seconds_count{op="connect"} 100
`

func parseTestMetrics(t *testing.T, text string) obs.Metrics {
	t.Helper()
	m, err := obs.ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	return m
}

func TestFabricRowsOrderedAndJoined(t *testing.T) {
	rows := fabricRows(parseTestMetrics(t, testExposition))
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].id != 0 || rows[1].id != 1 {
		t.Fatalf("rows out of order: %+v", rows)
	}
	if rows[0].routed != 60 || rows[0].blocked != 3 || rows[0].inRatio != 0.25 || rows[0].outRatio != 0.5 {
		t.Fatalf("fabric 0 row joined wrong: %+v", rows[0])
	}
}

func TestHistQuantileMicros(t *testing.T) {
	m := parseTestMetrics(t, testExposition)
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.50, 100},  // first bucket (le=100µs) already covers 50/100
		{0.90, 1000}, // le=1ms covers 90/100
		{0.99, 1000}, // falls in +Inf: reported as the largest finite bound
	} {
		got, ok := histQuantileMicros(m, "connect", tc.q)
		if !ok || got != tc.want {
			t.Errorf("q=%v: got %v,%v want %v,true", tc.q, got, ok, tc.want)
		}
	}
	if _, ok := histQuantileMicros(m, "branch", 0.5); ok {
		t.Error("quantile for op with no samples should report !ok")
	}
}

func TestRenderDashboardFrame(t *testing.T) {
	now := time.Now()
	cur := &poll{
		t:       now,
		metrics: parseTestMetrics(t, testExposition),
		slo: &slo.Snapshot{
			Objective: 0.999, LatencyObjective: 0.99, LatencyThresholdUs: 1000,
			Healthy: false,
			Windows: []slo.WindowSLI{
				{Window: "5m", Total: 100, Bad: 3, Availability: 0.97, AvailabilityBurn: 30, LatencyOK: 1},
			},
			Alerts: []slo.AlertState{
				{Name: "fast", Short: "5m", Long: "1h", Threshold: 14.4, AvailabilityFiring: true},
			},
		},
		lastBlocked: &span.TraceRecord{
			TraceID: "0af7651916cd43dd8448eb211c80319c",
			Root:    "switchd.connect", Start: now.Add(-3 * time.Second),
			DurationNs: 42_000, Blocked: true,
		},
	}
	prevExpo := strings.Replace(testExposition, "wdm_connect_total 100", "wdm_connect_total 90", 1)
	prev := &poll{t: now.Add(-2 * time.Second), metrics: parseTestMetrics(t, prevExpo)}

	frame := renderDashboard(cur, prev, "http://localhost:8047")
	for _, want := range []string{
		"BELOW BOUND",                      // m=2 < sufficient 7
		"m=2 (sufficient 7)",               //
		"routed 110 (5.0/s)",               // (100-90)/2s across connect+branch
		"blocked 3",                        //
		"p50 100µs",                        //
		"p90 1.00ms",                       //
		"in-occ",                           // fabric table header
		"25.0%",                            // fabric 0 in-occupancy
		"SLO BURNING",                      //
		"FIRING (availability)",            //
		"0af7651916cd43dd8448eb211c80319c", // blocked trace join
		"/v1/debug/spans?trace=",           //
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q\n---\n%s", want, frame)
		}
	}
}

func TestRenderDashboardHealthyNoBlocking(t *testing.T) {
	expo := strings.Replace(testExposition, "wdm_blocked_total 3", "wdm_blocked_total 0", 1)
	expo = strings.Replace(expo, "wdm_fabric_info{model=\"msw\",construction=\"msw\",n=\"16\",k=\"2\",r=\"4\",x=\"1\"} 2",
		"wdm_fabric_info{model=\"msw\",construction=\"msw\",n=\"16\",k=\"2\",r=\"4\",x=\"1\"} 7", 1)
	cur := &poll{
		t:       time.Now(),
		metrics: parseTestMetrics(t, expo),
		slo: &slo.Snapshot{
			Objective: 0.999, LatencyObjective: 0.99, LatencyThresholdUs: 1000,
			Healthy: true,
			Windows: []slo.WindowSLI{{Window: "5m", Availability: 1, LatencyOK: 1}},
			Alerts:  []slo.AlertState{{Name: "fast", Short: "5m", Long: "1h", Threshold: 14.4}},
		},
	}
	frame := renderDashboard(cur, nil, "http://localhost:8047")
	for _, want := range []string{
		"AT/ABOVE BOUND",
		"SLO HEALTHY",
		"alert fast  (5m && 1h > 14.4): ok",
		"no blocking events — invariant holding",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q\n---\n%s", want, frame)
		}
	}
}

func TestClusterPanelRoles(t *testing.T) {
	m := parseTestMetrics(t, testExposition)
	primary := &poll{t: time.Now(), metrics: m, health: &api.Health{
		Replication: &api.ReplicationHealth{
			Role: api.RolePrimary, Shard: 1, Connected: true,
			Standbys: 1, SyncedSeq: 42, AckedSeq: 40,
			LagRecords: 2, LagSeconds: 0.004, SyncTimeouts: 3,
		},
	}}
	out := clusterPanel(primary)
	for _, want := range []string{
		"cluster shard 1", "role PRIMARY", "stream connected",
		"standbys 1", "synced seq 42 / acked 40", "lag 2 records",
		"SYNC TIMEOUTS 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("primary panel missing %q\n---\n%s", want, out)
		}
	}

	standby := &poll{t: time.Now(), metrics: m, health: &api.Health{
		Replication: &api.ReplicationHealth{
			Role: api.RoleStandby, Shard: 1,
			SyncedSeq: 42, AppliedSeq: 42, Reconnects: 2, Snapshots: 1,
		},
	}}
	out = clusterPanel(standby)
	for _, want := range []string{
		"role STANDBY", "stream DISCONNECTED",
		"applied seq 42 / primary 42", "reconnects 2", "snapshot bootstraps 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("standby panel missing %q\n---\n%s", want, out)
		}
	}

	promoted := &poll{t: time.Now(), metrics: m, health: &api.Health{
		Replication: &api.ReplicationHealth{Role: api.RolePrimary, Promoted: true},
	}}
	if out = clusterPanel(promoted); !strings.Contains(out, "promoted from standby") {
		t.Errorf("promoted panel missing marker\n---\n%s", out)
	}

	// A node that is not clustered contributes no panel at all.
	if out = clusterPanel(&poll{t: time.Now(), metrics: m}); out != "" {
		t.Errorf("unclustered poll rendered %q", out)
	}
}

func TestSparkline(t *testing.T) {
	got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp: got %q", got)
	}
	// All-zero series renders the floor glyph, not blanks.
	if got = sparkline([]float64{0, 0, 0}, 8); got != "▁▁▁" {
		t.Errorf("zeros: got %q", got)
	}
	// NaN steps (no sample yet) are blanks.
	if got = sparkline([]float64{math.NaN(), 4, math.NaN()}, 8); got != " █ " {
		t.Errorf("nan gaps: got %q", got)
	}
	// Downsampling keeps the spike: 100 points with one peak must
	// still show a full-height glyph in a 10-wide strip.
	vals := make([]float64, 100)
	vals[37] = 9
	if got = sparkline(vals, 10); !strings.ContainsRune(got, '█') {
		t.Errorf("downsampled spike lost: got %q", got)
	}
	if n := len([]rune(got)); n != 10 {
		t.Errorf("downsampled width: got %d runes, want 10", n)
	}
	if sparkline(nil, 10) != "" {
		t.Error("empty series should render nothing")
	}
}

func TestHistoryPanelSparklines(t *testing.T) {
	qr := func(name string, vals ...float64) *tsdb.QueryResult {
		s := tsdb.Series{Name: name}
		for i, v := range vals {
			s.Points = append(s.Points, tsdb.Point{T: int64(i * 2000), V: v})
		}
		return &tsdb.QueryResult{
			Query: name, StartMs: 0, EndMs: int64(len(vals) * 2000), StepMs: 2000,
			Series: []tsdb.Series{s},
		}
	}
	cur := &poll{
		t:           time.Now(),
		histRouted:  qr("rate(wdm_route_ops_total[10s])", 10, 20, 30, 40),
		histBlocked: qr("rate(wdm_blocked_total[10s])", 0, 0, 2, 1),
	}
	out := historyPanel(cur)
	for _, want := range []string{"history (last 8s)", "routed/s", "blocked/s", "max 40.0/s", "max 2.0/s", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("history panel missing %q\n---\n%s", want, out)
		}
	}
	// Without -history there is no panel.
	if out = historyPanel(&poll{t: time.Now()}); out != "" {
		t.Errorf("no-history poll rendered %q", out)
	}
}

func TestSeriesValuesSumsShardsSkipsFleet(t *testing.T) {
	qr := &tsdb.QueryResult{Series: []tsdb.Series{
		{Name: "x", Labels: map[string]string{"shard": "0"}, Points: []tsdb.Point{{T: 0, V: 1}, {T: 1000, V: 2}}},
		{Name: "x", Labels: map[string]string{"shard": "1"}, Points: []tsdb.Point{{T: 0, V: 3}, {T: 1000, V: math.NaN()}}},
		{Name: "x", Labels: map[string]string{"shard": "fleet"}, Points: []tsdb.Point{{T: 0, V: 4}, {T: 1000, V: 2}}},
	}}
	vals := seriesValues(qr)
	if len(vals) != 2 || vals[0] != 4 || vals[1] != 2 {
		t.Errorf("got %v, want [4 2] (shards summed, fleet row skipped)", vals)
	}
}

func TestAlertsPanel(t *testing.T) {
	since := time.Now().Add(-35 * time.Second)
	alerts := []tsdb.AlertStatus{
		{Rule: tsdb.Rule{Name: "blocked_in_nonblocking_regime"}, State: tsdb.StateFiring, Since: &since, Value: 2.1},
		{Rule: tsdb.Rule{Name: "slo_fast_burn"}, State: tsdb.StatePending, Since: &since, Value: 15},
		{Rule: tsdb.Rule{Name: "scrape_stalled"}, State: tsdb.StateInactive},
	}
	out := alertsPanel(alerts)
	for _, want := range []string{
		"alerts  1 firing / 1 pending / 1 ok",
		"FIRING", "blocked_in_nonblocking_regime", "value 2.1",
		"pending", "slo_fast_burn",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("alerts panel missing %q\n---\n%s", want, out)
		}
	}
	if strings.Contains(out, "scrape_stalled") {
		t.Errorf("inactive rule should not get a row\n---\n%s", out)
	}
	// nil = server without the engine: no panel. Empty-but-present =
	// engine with zero rules: still the rollup line.
	if out = alertsPanel(nil); out != "" {
		t.Errorf("nil alerts rendered %q", out)
	}
	if out = alertsPanel([]tsdb.AlertStatus{}); !strings.Contains(out, "0 firing") {
		t.Errorf("empty alerts missing rollup: %q", out)
	}
}
