// wdmsched schedules a batch of multicast demands into rounds and prints
// how many rounds each multicast model needs as the wavelength count
// grows — the quantitative form of the paper's introductory argument
// that WDM collapses the scheduling problem electronic multicast
// switches face (each destination can receive k messages at once).
//
// Usage:
//
//	wdmsched -n 16 -requests 48 -fanout 6 -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/report"
	"repro/internal/schedule"
	"repro/internal/wdm"
)

func main() {
	n := flag.Int("n", 16, "number of ports")
	nreq := flag.Int("requests", 48, "number of multicast demands")
	maxFanout := flag.Int("fanout", 6, "max destinations per demand")
	seed := flag.Int64("seed", 1, "PRNG seed")
	flag.Parse()

	if *n < 2 || *maxFanout < 1 || *nreq < 1 {
		fmt.Fprintln(os.Stderr, "wdmsched: need -n >= 2, -fanout >= 1, -requests >= 1")
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))
	var reqs []schedule.Request
	for i := 0; i < *nreq; i++ {
		src := rng.Intn(*n)
		fan := 1 + rng.Intn(*maxFanout)
		r := schedule.Request{Source: wdm.Port(src)}
		for _, d := range rng.Perm(*n) {
			if len(r.Dests) == fan {
				break
			}
			r.Dests = append(r.Dests, wdm.Port(d))
		}
		reqs = append(reqs, r)
	}

	t := report.New(fmt.Sprintf("Rounds to carry %d random multicasts on %d ports (seed %d)", *nreq, *n, *seed),
		"k", "lower bound", "MSW rounds", "MSDW rounds", "MAW rounds")
	for _, k := range []int{1, 2, 4, 8} {
		dim := wdm.Dim{N: *n, K: k}
		row := []string{report.Int(k), report.Int(schedule.LowerBound(dim, reqs))}
		for _, m := range wdm.Models {
			plan, err := schedule.Schedule(m, dim, reqs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wdmsched:", err)
				os.Exit(1)
			}
			if plan.Served() != len(reqs) {
				fmt.Fprintf(os.Stderr, "wdmsched: plan dropped requests (%d of %d)\n", plan.Served(), len(reqs))
				os.Exit(1)
			}
			row = append(row, report.Int(plan.NumRounds()))
		}
		t.AddRow(row...)
	}
	t.Footnote = "k=1 is the electronic baseline; rounds shrink ~k-fold with WDM, most under MAW"
	t.Fprint(os.Stdout)
}
