// wdmcap prints the multicast capacities of N x N k-wavelength WDM
// networks under the MSW, MSDW and MAW models (the paper's Table 1,
// capacity rows; Lemmas 1-3), alongside the electronic Nk x Nk baseline.
//
// Usage:
//
//	wdmcap -n 4 -k 2            one size
//	wdmcap -nmax 8 -k 2         sweep N = 2..8
//	wdmcap -n 3 -k 2 -check     cross-check by brute-force enumeration
//	wdmcap -fabrics -n 16 -k 2 -r 4   per-backend nonblocking provisioning
//
// With -check the closed forms are recounted by enumerating every
// admissible assignment (feasible only for N*k <= 6 or so).
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"

	"repro/internal/capacity"
	"repro/internal/fabric/backend"
	"repro/internal/multistage"
	"repro/internal/report"
	"repro/internal/wdm"
)

func main() {
	n := flag.Int("n", 0, "number of ports N (0 with -nmax sweeps 2..nmax)")
	nmax := flag.Int("nmax", 0, "sweep N from 2 to this value")
	k := flag.Int("k", 2, "wavelengths per fiber")
	r := flag.Int("r", 4, "outer-stage module count for -fabrics")
	check := flag.Bool("check", false, "verify closed forms by brute-force enumeration (small sizes only)")
	hist := flag.Bool("hist", false, "print the assignment-size histogram (small sizes only)")
	fabrics := flag.Bool("fabrics", false, "print per-backend nonblocking provisioning rows (every registered fabric backend)")
	flag.Parse()

	if *k < 1 {
		fmt.Fprintln(os.Stderr, "wdmcap: -k must be positive")
		os.Exit(2)
	}

	if *fabrics {
		nn := *n
		if nn == 0 {
			nn = 16
		}
		t := report.New(fmt.Sprintf("Fabric backends — nonblocking provisioning (N=%d, k=%d, r=%d)", nn, *k, *r),
			"backend", "m", "sufficient", "nonblocking condition")
		for _, d := range backend.All() {
			norm, err := d.Normalize(multistage.Params{N: nn, K: *k, R: *r, Model: wdm.MSW, Lite: true})
			if err != nil {
				fmt.Fprintf(os.Stderr, "wdmcap: %s: %v\n", d.Name, err)
				continue
			}
			t.AddRow(d.Name, report.Int(norm.M), report.Int(d.Sufficient(norm)), d.Bound)
		}
		t.Footnote = "m = default provisioning after Normalize; sufficient = the level the admission derater references"
		t.Fprint(os.Stdout)
		return
	}
	var sizes []int
	switch {
	case *n > 0:
		sizes = []int{*n}
	case *nmax >= 2:
		for v := 2; v <= *nmax; v++ {
			sizes = append(sizes, v)
		}
	default:
		sizes = []int{2, 3, 4, 6, 8}
	}

	full := report.New(fmt.Sprintf("Table 1 — multicast capacity, full-multicast-assignments (k=%d)", *k),
		"N", "MSW", "MSDW", "MAW", "electronic NkxNk")
	any := report.New(fmt.Sprintf("Table 1 — multicast capacity, any-multicast-assignments (k=%d)", *k),
		"N", "MSW", "MSDW", "MAW", "electronic NkxNk")
	for _, nn := range sizes {
		n64, k64 := int64(nn), int64(*k)
		full.AddRow(report.Int(nn),
			report.Big(capacity.FullMSW(n64, k64)),
			report.Big(capacity.FullMSDW(n64, k64)),
			report.Big(capacity.FullMAW(n64, k64)),
			report.Big(capacity.FullElectronic(n64, k64)))
		any.AddRow(report.Int(nn),
			report.Big(capacity.AnyMSW(n64, k64)),
			report.Big(capacity.AnyMSDW(n64, k64)),
			report.Big(capacity.AnyMAW(n64, k64)),
			report.Big(capacity.AnyElectronic(n64, k64)))
	}
	full.Fprint(os.Stdout)
	fmt.Println()
	any.Fprint(os.Stdout)

	if *hist {
		fmt.Println()
		for _, nn := range sizes {
			if nn**k > 6 {
				fmt.Printf("hist: skipping N=%d k=%d (too large to enumerate)\n", nn, *k)
				continue
			}
			d := wdm.Dim{N: nn, K: *k}
			t := report.New(fmt.Sprintf("Assignments by connection count (N=%d, k=%d)", nn, *k),
				"connections", "MSW", "MSDW", "MAW")
			hists := map[wdm.Model]map[int]*big.Int{}
			maxSize := 0
			for _, m := range wdm.Models {
				hists[m] = capacity.HistogramByConnections(m, d, false)
				for s := range hists[m] {
					if s > maxSize {
						maxSize = s
					}
				}
			}
			for s := 0; s <= maxSize; s++ {
				row := []string{report.Int(s)}
				for _, m := range wdm.Models {
					v := hists[m][s]
					if v == nil {
						v = big.NewInt(0)
					}
					row = append(row, report.Big(v))
				}
				t.AddRow(row...)
			}
			t.Fprint(os.Stdout)
			fmt.Println()
		}
	}

	if *check {
		fmt.Println()
		ok := true
		for _, nn := range sizes {
			if nn**k > 6 {
				fmt.Printf("check: skipping N=%d k=%d (N*k=%d too large to enumerate)\n", nn, *k, nn**k)
				continue
			}
			d := wdm.Dim{N: nn, K: *k}
			for _, m := range wdm.Models {
				for _, fullMode := range []bool{true, false} {
					got := capacity.CountByEnumeration(m, d, fullMode)
					var want = capacity.Any(m, int64(nn), int64(*k))
					if fullMode {
						want = capacity.Full(m, int64(nn), int64(*k))
					}
					kind := "any"
					if fullMode {
						kind = "full"
					}
					if got.Cmp(want) != 0 {
						ok = false
						fmt.Printf("check FAILED: %v N=%d k=%d %s: enumerated %s, formula %s\n",
							m, nn, *k, kind, got, want)
					} else {
						fmt.Printf("check ok: %v N=%d k=%d %s = %s (enumeration == Lemma)\n",
							m, nn, *k, kind, got)
					}
				}
			}
		}
		if !ok {
			os.Exit(1)
		}
	}
}
