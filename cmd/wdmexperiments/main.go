// wdmexperiments regenerates every experiment artifact of the
// reproduction in one run, writing tables (.txt) and plot series (.csv)
// plus a MANIFEST into a results directory:
//
//	wdmexperiments -out results/
//
// It is the "make reproduction" entry point: Table 1 (capacities +
// costs, with enumeration cross-checks), Table 2, the theorem-bound
// tables, the Fig. 10 scenario, the Theorem 1 gap demonstration, the
// blocking-vs-m and blocking-vs-load validation series, the scheduling
// rounds comparison, and the unicast cost hierarchy. Exit status is
// non-zero if any verification embedded in the artifacts fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/benes"
	"repro/internal/capacity"
	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/report"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/wdm"
)

type runner struct {
	dir      string
	manifest []string
	failed   bool
}

func main() {
	out := flag.String("out", "results", "output directory")
	requests := flag.Int("requests", 3000, "arrivals per simulation point")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "wdmexperiments:", err)
		os.Exit(1)
	}
	r := &runner{dir: *out}

	r.table1Capacity()
	r.table1Cost()
	r.table2()
	r.theoremBounds()
	r.fig10()
	r.theorem1Gap()
	r.blockingSeries(*requests, *seed)
	r.schedulingRounds()
	r.hierarchy()

	manifest := strings.Join(r.manifest, "\n") + "\n"
	if err := os.WriteFile(filepath.Join(r.dir, "MANIFEST.txt"), []byte(manifest), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wdmexperiments:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d artifacts to %s\n", len(r.manifest), r.dir)
	if r.failed {
		fmt.Fprintln(os.Stderr, "wdmexperiments: one or more embedded verifications FAILED")
		os.Exit(1)
	}
}

func (r *runner) write(name, description, content string) {
	if err := os.WriteFile(filepath.Join(r.dir, name), []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wdmexperiments:", err)
		os.Exit(1)
	}
	r.manifest = append(r.manifest, fmt.Sprintf("%-28s %s", name, description))
}

func (r *runner) fail(what string, err error) {
	fmt.Fprintf(os.Stderr, "wdmexperiments: %s: %v\n", what, err)
	r.failed = true
}

func (r *runner) table1Capacity() {
	var b strings.Builder
	for _, k := range []int64{1, 2, 4} {
		t := report.New(fmt.Sprintf("Table 1 — multicast capacity (k=%d, full / any)", k),
			"N", "MSW full", "MSDW full", "MAW full", "MSW any", "MSDW any", "MAW any")
		for _, n := range []int64{2, 3, 4, 8} {
			t.AddRow(report.Int(int(n)),
				report.Big(capacity.FullMSW(n, k)), report.Big(capacity.FullMSDW(n, k)), report.Big(capacity.FullMAW(n, k)),
				report.Big(capacity.AnyMSW(n, k)), report.Big(capacity.AnyMSDW(n, k)), report.Big(capacity.AnyMAW(n, k)))
		}
		t.Fprint(&b)
		b.WriteString("\n")
	}
	// Embedded verification: enumeration == lemmas on all small sizes.
	for _, d := range []wdm.Dim{{N: 2, K: 2}, {N: 3, K: 2}, {N: 2, K: 3}} {
		for _, m := range wdm.Models {
			enum := capacity.CountByEnumeration(m, d, false)
			lemma := capacity.Any(m, int64(d.N), int64(d.K))
			status := "OK"
			if enum.Cmp(lemma) != 0 {
				status = "MISMATCH"
				r.fail("table1 capacity check", fmt.Errorf("%v N=%d k=%d: %s vs %s", m, d.N, d.K, enum, lemma))
			}
			fmt.Fprintf(&b, "check %v N=%d k=%d: enumeration %s == lemma %s: %s\n", m, d.N, d.K, enum, lemma, status)
		}
	}
	r.write("table1_capacity.txt", "Lemmas 1-3 capacities + enumeration checks", b.String())
}

func (r *runner) table1Cost() {
	var b strings.Builder
	t := report.New("Table 1 — crossbar cost (audited against constructed fabrics)",
		"N", "k", "model", "crosspoints", "converters")
	for _, size := range []struct{ n, k int }{{4, 2}, {8, 2}, {8, 4}} {
		for _, m := range wdm.Models {
			sw := crossbar.New(m, wdm.Dim{N: size.n, K: size.k})
			c := sw.Cost()
			if c.Crosspoints != crossbar.FormulaCrosspoints(m, size.n, size.k) ||
				c.Converters != crossbar.FormulaConverters(m, size.n, size.k) {
				r.fail("table1 cost audit", fmt.Errorf("%v N=%d k=%d: %+v", m, size.n, size.k, c))
			}
			t.AddRow(report.Int(size.n), report.Int(size.k), m.String(),
				report.Int(c.Crosspoints), report.Int(c.Converters))
		}
	}
	t.Footnote = "every row audited: element counts of the built fabric equal the closed forms"
	t.Fprint(&b)
	r.write("table1_cost.txt", "crossbar crosspoints/converters, audited", b.String())
}

func (r *runner) table2() {
	var b strings.Builder
	const k = 2
	t := report.New("Table 2 — crossbar (CB) vs three-stage (MS), MSW-dominant, k=2",
		"N", "model", "CB xpts", "MS xpts", "ratio", "CB conv", "MS conv", "m", "x")
	for _, n := range []int{64, 256, 1024, 4096} {
		rr := split(n)
		for _, m := range wdm.Models {
			cb := crossbar.CostFormula(m, wdm.Shape{In: n, Out: n, K: k})
			mm, xx := multistage.SufficientMinM(multistage.MSWDominant, m, n/rr, rr, k)
			ms, err := multistage.CostFormula(multistage.Params{
				N: n, K: k, R: rr, M: mm, X: xx, Model: m, Construction: multistage.MSWDominant,
			})
			if err != nil {
				r.fail("table2", err)
				continue
			}
			t.AddRow(report.Int(n), m.String(), report.Int(cb.Crosspoints), report.Int(ms.Crosspoints),
				report.Ratio(float64(cb.Crosspoints), float64(ms.Crosspoints)),
				report.Int(cb.Converters), report.Int(ms.Converters), report.Int(mm), report.Int(xx))
		}
	}
	t.Fprint(&b)
	r.write("table2_cost.txt", "crossbar vs multistage cost (Table 2)", b.String())
}

func (r *runner) theoremBounds() {
	var b strings.Builder
	t := report.New("Nonblocking middle-stage bounds", "n", "r", "k",
		"Theorem1 m", "x", "Theorem2 m", "corrected m (MAW model)", "asymptotic m")
	for _, nr := range [][2]int{{4, 4}, {8, 8}, {16, 16}, {32, 32}} {
		n, rr := nr[0], nr[1]
		for _, k := range []int{2, 4} {
			mFix, _ := multistage.SufficientMinM(multistage.MSWDominant, wdm.MAW, n, rr, k)
			t.AddRow(report.Int(n), report.Int(rr), report.Int(k),
				report.Int(multistage.Theorem1MinM(n, rr)), report.Int(multistage.Theorem1BestX(n, rr)),
				report.Int(multistage.Theorem2MinM(n, rr, k)),
				report.Int(mFix),
				report.Int(multistage.AsymptoticM(n, rr)))
		}
	}
	t.Fprint(&b)
	r.write("theorem_bounds.txt", "Theorem 1/2 exact bounds + corrected bound", b.String())
}

func (r *runner) fig10() {
	var b strings.Builder
	a := wdm.Connection{Source: wdm.PortWave{Port: 0, Wave: 0}, Dests: []wdm.PortWave{{Port: 3, Wave: 0}}}
	bb := wdm.Connection{Source: wdm.PortWave{Port: 1, Wave: 0}, Dests: []wdm.PortWave{{Port: 2, Wave: 0}}}
	fmt.Fprintln(&b, "Fig. 10: N=4, k=2, r=2, m=1, MAW model.")
	for _, constr := range []multistage.Construction{multistage.MSWDominant, multistage.MAWDominant} {
		net, err := multistage.New(multistage.Params{
			N: 4, K: 2, R: 2, M: 1, X: 1, Model: wdm.MAW, Construction: constr, Lite: true,
		})
		if err != nil {
			r.fail("fig10", err)
			return
		}
		if _, err := net.Add(a); err != nil {
			r.fail("fig10", err)
			return
		}
		_, err = net.Add(bb)
		blocked := multistage.IsBlocked(err)
		fmt.Fprintf(&b, "%v: request B blocked = %v\n", constr, blocked)
		if (constr == multistage.MSWDominant) != blocked {
			r.fail("fig10", fmt.Errorf("%v: unexpected outcome", constr))
		}
	}
	r.write("fig10_scenario.txt", "middle-stage MSW blocking vs MAW-dominant", b.String())
}

func (r *runner) theorem1Gap() {
	var b strings.Builder
	n, rr, k := 4, 4, 4
	mPaper := multistage.Theorem1MinM(n, rr)
	mFix, xFix := multistage.SufficientMinM(multistage.MSWDominant, wdm.MAW, n, rr, k)
	fmt.Fprintf(&b, "Theorem 1 gap (MAW model, MSW-dominant, n=r=%d, k=%d)\n", n, k)
	fmt.Fprintf(&b, "paper bound m=%d, corrected m=%d\n", mPaper, mFix)
	run := func(m, x int) bool {
		net, err := multistage.New(multistage.Params{
			N: n * rr, K: k, R: rr, M: m, X: x, Model: wdm.MAW,
			Construction: multistage.MSWDominant, Lite: true,
		})
		if err != nil {
			r.fail("gap", err)
			return false
		}
		for i := 0; i < mPaper; i++ {
			c := wdm.Connection{
				Source: wdm.PortWave{Port: wdm.Port(i), Wave: 0},
				Dests:  []wdm.PortWave{{Port: wdm.Port(i / k), Wave: wdm.Wavelength(i % k)}},
			}
			if _, err := net.Add(c); err != nil {
				r.fail("gap prefix", err)
				return false
			}
		}
		probe := wdm.Connection{Source: wdm.PortWave{Port: wdm.Port(mPaper), Wave: 0},
			Dests: []wdm.PortWave{{Port: 3, Wave: 2}}}
		_, err = net.Add(probe)
		return multistage.IsBlocked(err)
	}
	blockedAtPaper := run(mPaper, multistage.Theorem1BestX(n, rr))
	blockedAtFix := run(mFix, xFix)
	fmt.Fprintf(&b, "probe blocked at paper bound: %v (expected true)\n", blockedAtPaper)
	fmt.Fprintf(&b, "probe blocked at corrected bound: %v (expected false)\n", blockedAtFix)
	if !blockedAtPaper || blockedAtFix {
		r.fail("gap", fmt.Errorf("unexpected outcomes %v/%v", blockedAtPaper, blockedAtFix))
	}
	r.write("theorem1_gap.txt", "adversarial demonstration of the Theorem 1 gap", b.String())
}

func (r *runner) blockingSeries(requests int, seed int64) {
	base := multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true}
	norm, err := base.Normalize()
	if err != nil {
		r.fail("blocking series", err)
		return
	}
	var ms []int
	for m := 1; m <= norm.M+3; m++ {
		ms = append(ms, m)
	}
	points, err := sim.SweepMParallel(base, ms, sim.Config{
		Seed: seed, Requests: requests, Load: 10, MaxFanout: 8,
	})
	if err != nil {
		r.fail("blocking series", err)
		return
	}
	sort.Slice(points, func(a, b int) bool { return points[a].M < points[b].M })
	t := report.New("", "m", "offered", "blocked", "p_block", "at_bound")
	for _, pt := range points {
		if pt.AtBound && pt.Result.Blocked != 0 {
			r.fail("blocking series", fmt.Errorf("blocking at the sufficient bound m=%d", pt.M))
		}
		t.AddRow(report.Int(pt.M), report.Int(pt.Result.Offered), report.Int(pt.Result.Blocked),
			fmt.Sprintf("%.6f", pt.Result.BlockingProbability()), fmt.Sprintf("%v", pt.AtBound))
	}
	var b strings.Builder
	if err := t.FprintCSV(&b); err != nil {
		r.fail("blocking series", err)
		return
	}
	r.write("blocking_vs_m.csv", "blocking probability vs middle-stage size", b.String())
}

func (r *runner) schedulingRounds() {
	var reqs []schedule.Request
	for rep := 0; rep < 2; rep++ {
		for s := 0; s < 16; s++ {
			q := schedule.Request{Source: wdm.Port(s)}
			for d := 1; d <= 6; d++ {
				q.Dests = append(q.Dests, wdm.Port((s+d)%16))
			}
			reqs = append(reqs, q)
		}
	}
	t := report.New("", "k", "lower_bound", "MSW", "MSDW", "MAW")
	for _, k := range []int{1, 2, 4, 8} {
		dim := wdm.Dim{N: 16, K: k}
		row := []string{report.Int(k), report.Int(schedule.LowerBound(dim, reqs))}
		for _, m := range wdm.Models {
			plan, err := schedule.Schedule(m, dim, reqs)
			if err != nil {
				r.fail("scheduling", err)
				return
			}
			row = append(row, report.Int(plan.NumRounds()))
		}
		t.AddRow(row...)
	}
	var b strings.Builder
	if err := t.FprintCSV(&b); err != nil {
		r.fail("scheduling", err)
		return
	}
	r.write("scheduling_rounds.csv", "rounds to carry a fixed batch vs k and model", b.String())
}

func (r *runner) hierarchy() {
	const k = 2
	t := report.New("", "N", "crossbar", "clos", "benes")
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		rr := split(n)
		mm, xx := multistage.SufficientMinM(multistage.MSWDominant, wdm.MSW, n/rr, rr, k)
		ms, err := multistage.CostFormula(multistage.Params{
			N: n, K: k, R: rr, M: mm, X: xx, Model: wdm.MSW, Construction: multistage.MSWDominant,
		})
		if err != nil {
			r.fail("hierarchy", err)
			return
		}
		t.AddRow(report.Int(n), report.Int(k*n*n), report.Int(ms.Crosspoints),
			report.Int(k*benes.Crosspoints(pow2(n))))
	}
	var b strings.Builder
	if err := t.FprintCSV(&b); err != nil {
		r.fail("hierarchy", err)
		return
	}
	r.write("cost_hierarchy.csv", "crossbar / Clos / Beneš crosspoints", b.String())
}

func split(n int) int {
	best, bestDist := 2, 1<<62
	for rr := 2; rr <= n/2; rr++ {
		if n%rr != 0 || n/rr < 2 {
			continue
		}
		d := rr*rr - n
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = rr, d
		}
	}
	return best
}

func pow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
