// wdmplot emits the repository's experiment series as CSV for plotting:
//
//	wdmplot -series cost -k 2            Table 2's cost-vs-N curves
//	wdmplot -series blocking -n 16 -r 4  blocking-probability-vs-m
//	wdmplot -series capacity -k 2        capacity-vs-N per model (log10)
//	wdmplot -series hierarchy -k 2       crossbar/Clos/Beneš crosspoints
//	wdmplot -series curves -curves BENCH_curves.json   measured blocking curves
//
// The query series is different: it renders a live server's embedded
// metrics history (GET /v1/query, or the federated /v1/cluster/query)
// as long-form CSV — one row per (series, timestamp):
//
//	wdmplot -series query -target http://localhost:8047 \
//	    -query 'rate(wdm_blocked_total[30s])' -start -10m -step 5s
//
// Every offline series is regenerated from the implementation at run
// time; the CSV columns carry plain numbers ready for
// gnuplot/matplotlib.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/big"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/benes"
	"repro/internal/capacity"
	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/obs/tsdb"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/switchd/client"
	"repro/internal/traffic"
	"repro/internal/wdm"
)

func main() {
	series := flag.String("series", "cost", "series to emit: cost, blocking, capacity, hierarchy")
	n := flag.Int("n", 16, "network size for -series blocking")
	r := flag.Int("r", 4, "outer modules for -series blocking")
	k := flag.Int("k", 2, "wavelengths per fiber")
	modelName := flag.String("model", "msw", "multicast model")
	requests := flag.Int("requests", 4000, "arrivals per blocking point")
	seed := flag.Int64("seed", 1, "seed for blocking series")
	target := flag.String("target", "http://localhost:8047", "query series: base URL of the server")
	query := flag.String("query", "wdm_blocked_total", "query series: tsdb expression, e.g. rate(wdm_blocked_total[30s])")
	start := flag.String("start", "-5m", "query series: range start (duration offset, unix secs, RFC3339, or \"now\")")
	end := flag.String("end", "now", "query series: range end")
	step := flag.Duration("step", time.Second, "query series: range step")
	fleet := flag.Bool("fleet", false, "query series: hit the federated /v1/cluster/query instead of /v1/query")
	curvesFile := flag.String("curves", "BENCH_curves.json", "curves series: path to a wdmload sweep artifact")
	flag.Parse()

	model, err := wdm.ParseModel(*modelName)
	if err != nil {
		fatal(err)
	}
	switch *series {
	case "cost":
		costSeries(*k)
	case "blocking":
		blockingSeries(model, *n, *r, *k, *requests, *seed)
	case "load":
		loadSeries(model, *n, *r, *k, *requests, *seed)
	case "capacity":
		capacitySeries(*k)
	case "hierarchy":
		hierarchySeries(*k)
	case "query":
		querySeries(*target, *query, *start, *end, *step, *fleet)
	case "curves":
		curvesSeries(*curvesFile)
	default:
		fatal(fmt.Errorf("unknown series %q (want cost, blocking, load, capacity, hierarchy, query, curves)", *series))
	}
}

// curvesSeries renders a wdmload sweep artifact (BENCH_curves.json) as
// CSV: one row per load point with the measured blocking probability,
// its Wilson 95% interval, and the analytic overlays — ready to plot
// P_block vs offered Erlangs with error bars.
func curvesSeries(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var c traffic.Curves
	if err := json.Unmarshal(data, &c); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	title := fmt.Sprintf("backend=%s model=%s N=%d k=%d r=%d m=%d bound=%d arrival=%s holding=%s fanout=%s",
		c.Backend, c.Model, c.N, c.K, c.R, c.M, c.SufficientM, c.Arrival, c.Holding, c.Fanout)
	t := report.New(title, "erlangs", "offered", "blocked", "p_block", "wilson_lo", "wilson_hi",
		"lee_predicted", "erlang_b", "mean_fanout", "p50_us", "p99_us")
	for _, p := range c.Points {
		t.AddRow(fmt.Sprintf("%g", p.Erlangs), report.Int(p.Offered), report.Int(p.Blocked),
			fmt.Sprintf("%.6f", p.PBlock),
			fmt.Sprintf("%.6f", p.WilsonLo), fmt.Sprintf("%.6f", p.WilsonHi),
			fmt.Sprintf("%.6f", p.LeePredicted), fmt.Sprintf("%.6f", p.ErlangB),
			fmt.Sprintf("%.3f", p.MeanFanout),
			fmt.Sprintf("%.0f", p.Latency.P50Micros), fmt.Sprintf("%.0f", p.Latency.P99Micros))
	}
	emit(t)
}

// querySeries renders a live server's metrics history as long-form
// CSV: one row per (series, point), ready for gnuplot/matplotlib
// group-by-series plotting.
func querySeries(target, query, start, end string, step time.Duration, fleet bool) {
	v := url.Values{}
	v.Set("query", query)
	v.Set("start", start)
	v.Set("end", end)
	v.Set("step", step.String())
	cl := client.New(target)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var res tsdb.QueryResult
	var err error
	if fleet {
		res, err = cl.FleetQuery(ctx, v.Encode())
	} else {
		res, err = cl.Query(ctx, v.Encode())
	}
	if err != nil {
		fatal(err)
	}
	t := report.New("", "series", "labels", "t_ms", "value")
	for _, s := range res.Series {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, k+"="+s.Labels[k])
		}
		labels := strings.Join(parts, ";")
		for _, p := range s.Points {
			val := "NaN"
			if !math.IsNaN(p.V) {
				val = strconv.FormatFloat(p.V, 'g', -1, 64)
			}
			t.AddRow(s.Name, labels, strconv.FormatInt(p.T, 10), val)
		}
	}
	emit(t)
}

// loadSeries emits blocking-vs-load curves at a quarter, half, and the
// full sufficient middle-stage count.
func loadSeries(model wdm.Model, n, r, k, requests int, seed int64) {
	base := multistage.Params{N: n, K: k, R: r, Model: model, Lite: true}
	norm, err := base.Normalize()
	if err != nil {
		fatal(err)
	}
	loads := []float64{1, 2, 4, 6, 8, 12, 16, 24}
	t := report.New("", "m", "load", "offered", "blocked", "p_block")
	for _, m := range []int{maxInt(1, norm.M/4), maxInt(1, norm.M/2), norm.M} {
		p := base
		p.M = m
		points, err := sim.SweepLoad(p, loads, sim.Config{
			Seed: seed, Requests: requests, MaxFanout: n / 2,
		})
		if err != nil {
			fatal(err)
		}
		for _, pt := range points {
			t.AddRow(report.Int(m), fmt.Sprintf("%.1f", pt.Load),
				report.Int(pt.Result.Offered), report.Int(pt.Result.Blocked),
				fmt.Sprintf("%.6f", pt.Result.BlockingProbability()))
		}
	}
	emit(t)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func costSeries(k int) {
	t := report.New("", "N", "model", "crossbar_xpts", "multistage_xpts", "crossbar_conv", "multistage_conv")
	for _, n := range []int{16, 64, 144, 256, 576, 1024, 2304, 4096} {
		r := bestSplit(n)
		if r == 0 {
			continue
		}
		for _, m := range wdm.Models {
			cb := crossbar.CostFormula(m, wdm.Shape{In: n, Out: n, K: k})
			mm, xx := multistage.SufficientMinM(multistage.MSWDominant, m, n/r, r, k)
			ms, err := multistage.CostFormula(multistage.Params{
				N: n, K: k, R: r, M: mm, X: xx, Model: m,
				Construction: multistage.MSWDominant,
			})
			if err != nil {
				fatal(err)
			}
			t.AddRow(report.Int(n), m.String(), report.Int(cb.Crosspoints), report.Int(ms.Crosspoints),
				report.Int(cb.Converters), report.Int(ms.Converters))
		}
	}
	emit(t)
}

func blockingSeries(model wdm.Model, n, r, k, requests int, seed int64) {
	base := multistage.Params{N: n, K: k, R: r, Model: model, Lite: true}
	norm, err := base.Normalize()
	if err != nil {
		fatal(err)
	}
	var ms []int
	for m := 1; m <= norm.M+norm.M/4+1; m++ {
		ms = append(ms, m)
	}
	points, err := sim.SweepMParallel(base, ms, sim.Config{
		Seed: seed, Requests: requests, Load: 10, MaxFanout: n / 2,
	})
	if err != nil {
		fatal(err)
	}
	sort.Slice(points, func(a, b int) bool { return points[a].M < points[b].M })
	t := report.New("", "m", "offered", "blocked", "p_block")
	for _, pt := range points {
		t.AddRow(report.Int(pt.M), report.Int(pt.Result.Offered), report.Int(pt.Result.Blocked),
			fmt.Sprintf("%.6f", pt.Result.BlockingProbability()))
	}
	emit(t)
}

func capacitySeries(k int) {
	t := report.New("", "N", "model", "log10_full_capacity")
	for n := int64(2); n <= 16; n++ {
		for _, m := range wdm.Models {
			t.AddRow(report.Int(int(n)), m.String(), fmt.Sprintf("%.3f", log10Big(capacity.Full(m, n, int64(k)))))
		}
	}
	emit(t)
}

func hierarchySeries(k int) {
	t := report.New("", "N", "crossbar", "clos", "benes")
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		r := bestSplit(n)
		if r == 0 {
			continue
		}
		mm, xx := multistage.SufficientMinM(multistage.MSWDominant, wdm.MSW, n/r, r, k)
		ms, err := multistage.CostFormula(multistage.Params{
			N: n, K: k, R: r, M: mm, X: xx, Model: wdm.MSW,
			Construction: multistage.MSWDominant,
		})
		if err != nil {
			fatal(err)
		}
		t.AddRow(report.Int(n),
			report.Int(k*n*n),
			report.Int(ms.Crosspoints),
			report.Int(k*benes.Crosspoints(nextPow2(n))))
	}
	emit(t)
}

func emit(t *report.Table) {
	if err := t.FprintCSV(os.Stdout); err != nil {
		fatal(err)
	}
}

func bestSplit(n int) int {
	best, bestDist := 0, 1<<62
	for r := 2; r <= n/2; r++ {
		if n%r != 0 || n/r < 2 {
			continue
		}
		d := r*r - n
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = r, d
		}
	}
	return best
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// log10Big computes log10 of an arbitrarily large integer via its
// binary mantissa/exponent decomposition (the raw capacities overflow
// float64 long before N = 16).
func log10Big(v *big.Int) float64 {
	f := new(big.Float).SetInt(v)
	mant := new(big.Float)
	exp := f.MantExp(mant)
	m, _ := mant.Float64()
	return (float64(exp) + math.Log2(m)) * math.Log10(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdmplot:", err)
	os.Exit(1)
}
