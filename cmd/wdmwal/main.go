// wdmwal inspects, verifies, and replays wdmserve's durable state
// directories offline — the forensic counterpart of the serving-path
// write-ahead log (internal/durable):
//
//	wdmwal inspect /var/lib/wdmserve           # meta, segments, snapshots, state
//	wdmwal inspect -records /var/lib/wdmserve  # plus every record as a JSON line
//	wdmwal verify  /var/lib/wdmserve           # read-only integrity check
//	wdmwal replay  /var/lib/wdmserve           # reinstall every session into fresh fabrics
//
// verify walks every segment frame by frame and reports the first
// integrity failure (torn frame, CRC mismatch, sequence gap) at the
// exact byte offset recovery would truncate at; exit status 1 marks a
// dirty log. replay materializes the log's final state and reinstalls
// each session's recorded route into freshly built fabric replicas of
// the logged parameters — no router search runs, so a replay that
// fails indicates a corrupted or hand-edited log, never blocking.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/durable"
	"repro/internal/multistage"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "inspect":
		runInspect(rest)
	case "verify":
		runVerify(rest)
	case "replay":
		runReplay(rest)
	default:
		fmt.Fprintf(os.Stderr, "wdmwal: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  wdmwal inspect [-json] [-records] [-state] <data-dir>
  wdmwal verify  [-json] <data-dir>
  wdmwal replay  [-json] <data-dir>
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdmwal:", err)
	os.Exit(1)
}

func dirArg(fs *flag.FlagSet, args []string) string {
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	return fs.Arg(0)
}

// inspectOut is `wdmwal inspect -json`'s shape.
type inspectOut struct {
	Report   *durable.VerifyReport `json:"report"`
	Meta     *durable.Meta         `json:"meta,omitempty"`
	Ops      map[string]int        `json:"ops"`
	Sessions int                   `json:"sessions"`
	Failed   map[int][]int         `json:"failed_middles,omitempty"`
	NextID   uint64                `json:"next_session"`
	Sealed   bool                  `json:"sealed"`
	// StateDigest is a sha256 over the canonical final state (sessions
	// sorted by id with full routes, failed middles sorted per fabric).
	// Two directories that applied the same records digest identically
	// regardless of segment boundaries, snapshots, or group-commit
	// batching, so a failover drill asserts replica equivalence by
	// comparing this one field across primary and standby data dirs.
	StateDigest string `json:"state_digest"`
	// State is the canonical payload behind StateDigest, for diffing
	// when the digests disagree.
	State *canonicalState `json:"state,omitempty"`
}

// canonicalState is the digested projection of a log's final state.
type canonicalState struct {
	Sessions []durable.SessionRoute `json:"sessions"`
	Failed   map[int][]int          `json:"failed_middles,omitempty"`
}

func digestState(state *durable.State) (string, *canonicalState) {
	c := &canonicalState{Sessions: state.SessionList(), Failed: state.FailedList()}
	enc, err := json.Marshal(c)
	if err != nil {
		fatal(err)
	}
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:]), c
}

func runInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print the summary as JSON")
	records := fs.Bool("records", false, "also dump every valid record as a JSON line")
	withState := fs.Bool("state", false, "include the canonical state payload behind state_digest (JSON mode)")
	dir := dirArg(fs, args)

	state, meta, rep, err := durable.ReadState(dir)
	if err != nil {
		fatal(err)
	}
	ops := make(map[string]int)
	if _, err := durable.WalkRecords(dir, func(r *durable.Record) bool {
		ops[r.Op]++
		if *records {
			line, _ := json.Marshal(r)
			fmt.Println(string(line))
		}
		return true
	}); err != nil {
		fatal(err)
	}
	out := inspectOut{
		Report: rep, Meta: meta, Ops: ops,
		Sessions: len(state.Sessions), Failed: state.FailedList(),
		NextID: state.NextSession, Sealed: state.Sealed,
	}
	var canon *canonicalState
	out.StateDigest, canon = digestState(state)
	if *withState {
		out.State = canon
	}
	if *jsonOut {
		enc, _ := json.MarshalIndent(out, "", "  ")
		fmt.Println(string(enc))
		return
	}
	if *records {
		fmt.Println()
	}
	if meta != nil {
		p := meta.Params
		fmt.Printf("fabric: model=%s construction=%s n=%d k=%d r=%d m=%d x=%d replicas=%d\n",
			p.Model, p.Construction, p.N, p.K, p.R, p.M, p.X, meta.Replicas)
	}
	fmt.Printf("records: %d (last seq %d)\n", rep.Records, rep.LastSeq)
	opNames := make([]string, 0, len(ops))
	for op := range ops {
		opNames = append(opNames, op)
	}
	sort.Strings(opNames)
	for _, op := range opNames {
		fmt.Printf("  %-12s %d\n", op, ops[op])
	}
	fmt.Printf("state: %d live sessions, next id %d, sealed=%v\n",
		len(state.Sessions), state.NextSession, state.Sealed)
	fmt.Printf("state digest: %s\n", out.StateDigest)
	for plane, mids := range out.Failed {
		fmt.Printf("  fabric %d failed middles: %v\n", plane, mids)
	}
	if rep.Truncated != nil {
		t := rep.Truncated
		fmt.Printf("CORRUPT TAIL: %s at byte %d: %s\n", t.Segment, t.Offset, t.Reason)
	}
}

func runVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	dir := dirArg(fs, args)

	rep, err := durable.Verify(dir)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(enc))
	} else {
		for _, s := range rep.Segments {
			fmt.Printf("segment %s: first seq %d, %d records, %d bytes\n",
				s.Name, s.FirstSeq, s.Records, s.Bytes)
		}
		for _, s := range rep.Snapshots {
			status := "valid"
			if !s.Valid {
				status = "INVALID: " + s.Error
			}
			fmt.Printf("snapshot %s: covers seq %d, %d sessions, %s\n",
				s.Name, s.LastSeq, s.Sessions, status)
		}
		fmt.Printf("%d records, last seq %d, %d live sessions, sealed=%v\n",
			rep.Records, rep.LastSeq, rep.Sessions, rep.Sealed)
		if rep.Clean {
			fmt.Println("clean: every frame CRC-valid, sequence contiguous")
		} else {
			t := rep.Truncated
			fmt.Printf("CORRUPT: %s at byte %d: %s (recovery truncates here)\n",
				t.Segment, t.Offset, t.Reason)
		}
	}
	if !rep.Clean {
		os.Exit(1)
	}
}

// replayOut is `wdmwal replay -json`'s shape.
type replayOut struct {
	Sessions int            `json:"sessions"`
	Fabrics  []replayFabric `json:"fabrics"`
	Sealed   bool           `json:"sealed"`
}

type replayFabric struct {
	Replica     int                    `json:"replica"`
	Sessions    int                    `json:"sessions"`
	Failed      []int                  `json:"failed_middles,omitempty"`
	Utilization multistage.Utilization `json:"utilization"`
}

func runReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	dir := dirArg(fs, args)

	state, meta, rep, err := durable.ReadState(dir)
	if err != nil {
		fatal(err)
	}
	if meta == nil {
		fatal(fmt.Errorf("%s carries no fabric metadata (empty or foreign directory)", dir))
	}
	if rep.Truncated != nil {
		t := rep.Truncated
		fmt.Fprintf(os.Stderr, "wdmwal: corrupt tail truncated in memory: %s at byte %d: %s\n",
			t.Segment, t.Offset, t.Reason)
	}
	nets := make([]*multistage.Network, meta.Replicas)
	for i := range nets {
		net, err := multistage.New(meta.Params)
		if err != nil {
			fatal(fmt.Errorf("building fabric replica %d: %w", i, err))
		}
		nets[i] = net
	}
	for plane, mids := range state.FailedList() {
		if plane < 0 || plane >= len(nets) {
			fatal(fmt.Errorf("failed-middle record names fabric %d of %d", plane, len(nets)))
		}
		for _, mid := range mids {
			if err := nets[plane].FailMiddle(mid); err != nil {
				fatal(fmt.Errorf("fabric %d: marking middle %d failed: %w", plane, mid, err))
			}
		}
	}
	perFabric := make([]int, len(nets))
	for _, sr := range state.SessionList() {
		if sr.Fabric < 0 || sr.Fabric >= len(nets) {
			fatal(fmt.Errorf("session %d names fabric %d of %d", sr.Session, sr.Fabric, len(nets)))
		}
		if _, err := nets[sr.Fabric].Reinstall(sr.Route); err != nil {
			fatal(fmt.Errorf("session %d failed to reinstall on fabric %d: %w", sr.Session, sr.Fabric, err))
		}
		perFabric[sr.Fabric]++
	}
	out := replayOut{Sessions: len(state.Sessions), Sealed: state.Sealed}
	for i, net := range nets {
		out.Fabrics = append(out.Fabrics, replayFabric{
			Replica:     i,
			Sessions:    perFabric[i],
			Failed:      net.FailedMiddles(),
			Utilization: net.Utilization(),
		})
	}
	if *jsonOut {
		enc, _ := json.MarshalIndent(out, "", "  ")
		fmt.Println(string(enc))
		return
	}
	fmt.Printf("replayed %d sessions into %d fabric replica(s), zero routing searches\n",
		out.Sessions, len(nets))
	for _, f := range out.Fabrics {
		u := f.Utilization
		fmt.Printf("  fabric %d: %d sessions, in-links %d/%d busy, out-links %d/%d busy",
			f.Replica, f.Sessions, u.InBusy, u.InTotal, u.OutBusy, u.OutTotal)
		if len(f.Failed) > 0 {
			fmt.Printf(", failed middles %v", f.Failed)
		}
		fmt.Println()
	}
	if state.Sealed {
		fmt.Println("log is sealed (clean drain)")
	}
}
