package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/switchd"
	"repro/internal/switchd/api"
	"repro/internal/switchd/client"
)

// Cluster mode: each wdmserve process is one node of one shard. A
// primary serves the full /v1 API and streams its WAL to the shard's
// warm standby over -repl-addr; the standby applies the stream
// continuously and answers everything except health/metrics/promote
// with not_primary until it takes over (explicit POST
// /v1/admin/promote, or -failover-after of primary silence). The
// -peers list is published verbatim at GET /v1/cluster so a
// client.ShardedClient (or wdmtop) can discover the topology from any
// node.

type clusterOptions struct {
	addr          string
	shard         int
	standbyOf     string
	replAddr      string
	peers         string
	syncTimeout   time.Duration
	failoverAfter time.Duration
	pprofOn       bool
}

// clusterInfo is the GET /v1/cluster payload.
type clusterInfo struct {
	Shard int                     `json:"shard"`
	Role  string                  `json:"role"`
	Peers []client.ShardEndpoints `json:"peers,omitempty"`
}

// parsePeers reads the -peers syntax: comma-separated shards, each
// "primaryURL" or "primaryURL;standbyURL", shard index = position.
func parsePeers(s string) ([]client.ShardEndpoints, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []client.ShardEndpoints
	for i, part := range strings.Split(s, ",") {
		halves := strings.SplitN(strings.TrimSpace(part), ";", 2)
		ep := client.ShardEndpoints{Primary: strings.TrimSpace(halves[0])}
		if len(halves) == 2 {
			ep.Standby = strings.TrimSpace(halves[1])
		}
		if ep.Primary == "" {
			return nil, fmt.Errorf("-peers: shard %d has no primary URL", i)
		}
		out = append(out, ep)
	}
	return out, nil
}

func runCluster(logger *slog.Logger, cfg switchd.Config, opts clusterOptions) {
	if cfg.DataDir == "" {
		fatal(logger, fmt.Errorf("-cluster requires -data-dir: replication ships the write-ahead log"))
	}
	peerList, err := parsePeers(opts.peers)
	if err != nil {
		fatal(logger, err)
	}
	if opts.standbyOf != "" {
		runStandby(logger, cfg, opts, peerList)
		return
	}
	runClusterPrimary(logger, cfg, opts, peerList)
}

func runClusterPrimary(logger *slog.Logger, cfg switchd.Config, opts clusterOptions, peerList []client.ShardEndpoints) {
	srv := cluster.NewServer(cluster.ServerConfig{
		Shard:       opts.shard,
		SyncTimeout: opts.syncTimeout,
		Logger:      logger,
	})
	cfg.WALCommitter = srv.Commit
	ctl, err := switchd.New(cfg)
	if err != nil {
		fatal(logger, err)
	}
	if err := srv.Attach(ctl); err != nil {
		fatal(logger, err)
	}
	ln, err := net.Listen("tcp", opts.replAddr)
	if err != nil {
		fatal(logger, fmt.Errorf("-repl-addr: %w", err))
	}
	go srv.Serve(ln)
	ctl.Metrics().Publish("switchd")

	// Federation peer health: a background prober keeps per-peer
	// reachability fresh; the controller's /v1/health federation rows
	// and wdm_federation_peer_up gauges read it, and federated requests
	// refresh it opportunistically.
	fedPeers := federationPeers(peerList)
	var tracker *cluster.PeerTracker
	trkCtx, trkCancel := context.WithCancel(context.Background())
	defer trkCancel()
	if len(peerList) > 0 {
		tracker = cluster.NewPeerTracker(cluster.FederationConfig{Peers: fedPeers})
		go tracker.Run(trkCtx, 5*time.Second)
		ctl.SetFederationProbe(federationProbe(tracker))
	}

	p := ctl.Params()
	logger.Info("serving cluster primary",
		slog.Int("shard", opts.shard),
		slog.String("addr", opts.addr),
		slog.String("repl_addr", ln.Addr().String()),
		slog.Int("n", p.N), slog.Int("m", p.M),
		slog.Int("replicas", ctl.Replicas()),
	)

	mux := http.NewServeMux()
	mux.Handle("/", ctl.Handler())
	mux.HandleFunc("/v1/cluster", clusterInfoHandler(opts.shard, "primary", peerList))
	mux.Handle("/v1/cluster/metrics", federationHandler(fedPeers, tracker))
	mux.Handle("/v1/cluster/query", queryFederationHandler(fedPeers, tracker))
	if opts.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
	}
	hsrv := &http.Server{Addr: opts.addr, Handler: obs.WithRequestLog(mux, logger)}

	done := make(chan struct{})
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		defer close(done)
		sig := <-sigC
		logger.Info("draining", slog.String("signal", sig.String()))
		drainCtx, drainCancel := context.WithTimeout(context.Background(), 30*time.Second)
		sum := ctl.Drain(drainCtx)
		drainCancel()
		logger.Info("drained", slog.Int("released", sum.Released), slog.Int("errors", sum.Errors))
		srv.Close()
		if err := ctl.Close(); err != nil {
			logger.Error("closing durable log", slog.String("error", err.Error()))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hsrv.Shutdown(ctx)
	}()
	if err := hsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(logger, err)
	}
	<-done
}

func runStandby(logger *slog.Logger, cfg switchd.Config, opts clusterOptions, peerList []client.ShardEndpoints) {
	sb, err := cluster.NewStandby(cluster.StandbyConfig{
		Shard:         opts.shard,
		Primary:       opts.standbyOf,
		DataDir:       cfg.DataDir,
		Serving:       cfg,
		FailoverAfter: opts.failoverAfter,
		Logger:        logger,
		OnPromote: func(ctl *switchd.Controller) {
			ctl.Metrics().Publish("switchd")
		},
	})
	if err != nil {
		fatal(logger, err)
	}
	sb.Start()

	logger.Info("serving cluster standby",
		slog.Int("shard", opts.shard),
		slog.String("addr", opts.addr),
		slog.String("primary", opts.standbyOf),
		slog.Duration("failover_after", opts.failoverAfter),
	)

	fedPeers := federationPeers(peerList)
	var tracker *cluster.PeerTracker
	trkCtx, trkCancel := context.WithCancel(context.Background())
	defer trkCancel()
	if len(peerList) > 0 {
		tracker = cluster.NewPeerTracker(cluster.FederationConfig{Peers: fedPeers})
		go tracker.Run(trkCtx, 5*time.Second)
	}

	mux := http.NewServeMux()
	mux.Handle("/", sb.Handler())
	mux.Handle("/v1/cluster/metrics", federationHandler(fedPeers, tracker))
	mux.Handle("/v1/cluster/query", queryFederationHandler(fedPeers, tracker))
	mux.HandleFunc("/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		role := "standby"
		if sb.Promoted() {
			role = "primary"
		}
		clusterInfoHandler(opts.shard, role, peerList)(w, r)
	})
	hsrv := &http.Server{Addr: opts.addr, Handler: obs.WithRequestLog(mux, logger)}

	done := make(chan struct{})
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		defer close(done)
		sig := <-sigC
		logger.Info("stopping standby", slog.String("signal", sig.String()))
		if err := sb.Close(); err != nil {
			logger.Error("closing standby", slog.String("error", err.Error()))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hsrv.Shutdown(ctx)
	}()
	if err := hsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(logger, err)
	}
	<-done
}

// federationPeers adapts the -peers list to the federation's scrape
// targets. Shard names are the peer indices; a shard's standby is the
// fallback when its primary is unreachable.
func federationPeers(peers []client.ShardEndpoints) func() []cluster.FederationPeer {
	return func() []cluster.FederationPeer {
		out := make([]cluster.FederationPeer, 0, len(peers))
		for i, ep := range peers {
			p := cluster.FederationPeer{Shard: fmt.Sprintf("%d", i), URLs: []string{ep.Primary}}
			if ep.Standby != "" {
				p.URLs = append(p.URLs, ep.Standby)
			}
			out = append(out, p)
		}
		return out
	}
}

// federationHandler serves GET /v1/cluster/metrics: the fleet-merged
// exposition of every shard in the -peers list.
func federationHandler(peers func() []cluster.FederationPeer, tracker *cluster.PeerTracker) http.Handler {
	return cluster.NewFederationHandler(cluster.FederationConfig{Peers: peers, Tracker: tracker})
}

// queryFederationHandler serves GET /v1/cluster/query: the merged
// range query across every shard's embedded metrics history.
func queryFederationHandler(peers func() []cluster.FederationPeer, tracker *cluster.PeerTracker) http.Handler {
	return cluster.NewQueryFederationHandler(cluster.FederationConfig{Peers: peers, Tracker: tracker})
}

// federationProbe converts the tracker's snapshot to the /v1/health
// federation rows.
func federationProbe(tracker *cluster.PeerTracker) func() []api.FederationPeerHealth {
	return func() []api.FederationPeerHealth {
		snap := tracker.Snapshot()
		out := make([]api.FederationPeerHealth, 0, len(snap))
		for _, p := range snap {
			h := api.FederationPeerHealth{
				Shard: p.Shard, URL: p.URL, Up: p.Up, Error: p.Error,
				LastProbeSeconds: -1,
			}
			if !p.LastProbe.IsZero() {
				h.LastProbeSeconds = time.Since(p.LastProbe).Seconds()
			}
			out = append(out, h)
		}
		return out
	}
}

func clusterInfoHandler(shard int, role string, peers []client.ShardEndpoints) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(clusterInfo{Shard: shard, Role: role, Peers: peers})
	}
}
