// wdmserve is the online serving mode of the repository: a long-lived
// multicast session controller (internal/switchd) that owns one or more
// three-stage WDM fabric replicas and serves Connect / AddBranch /
// Disconnect / Status over HTTP+JSON. With the middle stage at the
// Theorem 1/2 sufficient bound (the default), the /v1/metrics and
// /debug/vars endpoints expose the paper's nonblocking claim as a live
// invariant: `blocked` stays 0 under any admissible traffic.
//
// Server:
//
//	wdmserve -addr :8047 -n 16 -k 2 -r 4 -model msw -construction msw -replicas 4
//
// Load generator (against a running server):
//
//	wdmserve -attack -target http://localhost:8047 -requests 10000 -live 6
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/multistage"
	"repro/internal/switchd"
	"repro/internal/wdm"
)

func main() {
	// Server flags.
	addr := flag.String("addr", ":8047", "listen address")
	n := flag.Int("n", 16, "network size N")
	k := flag.Int("k", 2, "wavelengths per fiber")
	r := flag.Int("r", 4, "outer-stage module count (must divide N)")
	modelName := flag.String("model", "msw", "multicast model: msw, msdw, maw")
	constrName := flag.String("construction", "msw", "construction: msw (MSW-dominant) or maw (MAW-dominant)")
	m := flag.Int("m", 0, "middle-stage module count (0 = the construction's sufficient nonblocking bound)")
	replicas := flag.Int("replicas", 4, "independent fabric replicas (planes)")
	shards := flag.Int("shards", 16, "session-table shards")
	maxSessions := flag.Int("max-sessions", 0, "admission cap on live sessions, 0 = unlimited")
	gates := flag.Bool("gates", false, "build gate-level fabrics (slow; default lite routing-only fabrics)")

	// Attack-mode flags.
	attack := flag.Bool("attack", false, "run as load generator against -target instead of serving")
	target := flag.String("target", "http://localhost:8047", "attack: base URL of the server")
	requests := flag.Int("requests", 10000, "attack: total connect attempts")
	perFabric := flag.Int("workers", 2, "attack: workers per fabric replica")
	live := flag.Int("live", 6, "attack: per-worker live-session target (offered load knob)")
	fanout := flag.Int("fanout", 0, "attack: max fanout (0 = worker slice size)")
	seed := flag.Int64("seed", 1, "attack: PRNG seed")
	jsonOut := flag.Bool("json", false, "attack: print the report as JSON")
	flag.Parse()

	if *attack {
		runAttack(*target, *requests, *perFabric, *live, *fanout, *seed, *jsonOut)
		return
	}

	model, err := wdm.ParseModel(*modelName)
	if err != nil {
		log.Fatalf("wdmserve: %v", err)
	}
	var constr multistage.Construction
	switch *constrName {
	case "msw":
		constr = multistage.MSWDominant
	case "maw":
		constr = multistage.MAWDominant
	default:
		log.Fatalf("wdmserve: -construction must be msw or maw")
	}

	ctl, err := switchd.New(switchd.Config{
		Fabric: multistage.Params{
			N: *n, K: *k, R: *r, M: *m,
			Model: model, Construction: constr, Lite: !*gates,
		},
		Replicas:    *replicas,
		Shards:      *shards,
		MaxSessions: *maxSessions,
	})
	if err != nil {
		log.Fatalf("wdmserve: %v", err)
	}
	ctl.Metrics().Publish("switchd")

	p := ctl.Params()
	log.Printf("wdmserve: serving %v %v N=%d k=%d r=%d m=%d x=%d, %d replicas, on %s",
		p.Model, p.Construction, p.N, p.K, p.R, p.M, p.X, ctl.Replicas(), *addr)

	srv := &http.Server{Addr: *addr, Handler: ctl.Handler()}
	done := make(chan struct{})
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		defer close(done)
		sig := <-sigC
		log.Printf("wdmserve: %v: draining", sig)
		sum := ctl.Drain()
		log.Printf("wdmserve: drained %d sessions (%d errors) in %v", sum.Released, sum.Errors, sum.Elapsed)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("wdmserve: shutdown: %v", err)
		}
		// Flush final stats so a supervised restart leaves a record.
		snap, _ := json.MarshalIndent(ctl.Metrics().Snapshot(), "", "  ")
		log.Printf("wdmserve: final metrics:\n%s", snap)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("wdmserve: %v", err)
	}
	<-done
}

func runAttack(target string, requests, perFabric, live, fanout int, seed int64, jsonOut bool) {
	rep, err := switchd.Attack(switchd.AttackConfig{
		BaseURL:          target,
		Requests:         requests,
		WorkersPerFabric: perFabric,
		TargetLive:       live,
		MaxFanout:        fanout,
		Seed:             seed,
	})
	if err != nil {
		log.Fatalf("wdmserve: attack: %v", err)
	}
	if jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("wdmserve: attack: %v", err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Println(rep)
	if rep.Server.Blocked == 0 {
		fmt.Println("nonblocking invariant held: server reports blocked == 0")
	} else {
		fmt.Printf("server reports %d blocking events (expected iff m is below the sufficient bound)\n", rep.Server.Blocked)
	}
}
