// wdmserve is the online serving mode of the repository: a long-lived
// multicast session controller (internal/switchd) that owns one or more
// WDM fabric replicas — built from any registered fabric backend (msw,
// maw, awg, mesh; see GET /v1/fabrics) — and serves Connect / AddBranch
// / Disconnect / Status over HTTP+JSON. With the fabric provisioned at
// its backend's sufficient bound (the default), the /v1/metrics,
// /metrics (Prometheus) and /debug/vars endpoints expose the paper's
// nonblocking claim as a live invariant: `blocked` stays 0 under any
// admissible traffic.
//
// Server (three-stage Clos; -fabric awg and -fabric mesh select the
// AWG-Clos and ring-mesh backends):
//
//	wdmserve -addr :8047 -n 16 -k 2 -r 4 -model msw -fabric msw -replicas 4
//
// Debugging a blocking incident (only possible below the bound):
//
//	wdmserve -addr :8047 -m 3 -x 1 -replicas 1 -trace -log-format json
//	curl localhost:8047/v1/debug/blocking   # forensic reports, last 128
//	curl localhost:8047/v1/debug/trace > incident.trace
//	wdmtrace -replay incident.trace -n 16 -k 2 -r 4 -m 3 -x 1
//
// Load generator (against a running server):
//
//	wdmserve -attack -target http://localhost:8047 -requests 10000 -live 6
//
// Chaos drill — fail a middle module mid-load, repair it later, with
// client retries on 429/503; at m = bound + f spares the run must end
// with zero blocks and zero lost sessions:
//
//	wdmserve -attack -target http://localhost:8047 -requests 20000 \
//	    -chaos "fail@2s f0:m2, repair@6s f0:m2" -retries 4
//
// Durable state plane — journal every acknowledged mutation to a
// write-ahead log, checkpoint periodically, and survive kill -9 (a
// restart on the same directory reinstalls every acked session under
// its original id, with no router search):
//
//	wdmserve -addr :8047 -data-dir /var/lib/wdmserve
//	wdmwal verify /var/lib/wdmserve     # offline integrity check
//
// Tracing and SLOs: every serving request runs under a W3C
// traceparent-compatible span. Completed traces are served at
// /v1/debug/spans (tail-sampled: blocked/slow kept at 100%) and
// exported as JSON lines via -span-log; sliding-window SLIs with
// multiwindow burn-rate alerts are at /v1/slo; `wdmtop -target ...`
// renders both live.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fabric/backend"
	"repro/internal/multistage"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/obs/slo"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
	"repro/internal/switchd"
	"repro/internal/switchd/client"
	"repro/internal/wdm"
)

func main() {
	// Server flags.
	addr := flag.String("addr", ":8047", "listen address")
	n := flag.Int("n", 16, "network size N")
	k := flag.Int("k", 2, "wavelengths per fiber")
	r := flag.Int("r", 4, "outer-stage module count (must divide N)")
	modelName := flag.String("model", "msw", "multicast model: msw, msdw, maw")
	fabricName := flag.String("fabric", "", "fabric backend: "+strings.Join(backend.Names(), ", ")+" (empty = derive from -construction)")
	constrName := flag.String("construction", "", "deprecated alias of -fabric (kept for pre-backend command lines)")
	m := flag.Int("m", 0, "middle-stage module count (0 = the backend's sufficient nonblocking bound)")
	x := flag.Int("x", 0, "split limit (0 = construction default)")
	replicas := flag.Int("replicas", 4, "independent fabric replicas (planes)")
	shards := flag.Int("shards", 16, "session-table shards")
	maxSessions := flag.Int("max-sessions", 0, "admission cap on live sessions, 0 = unlimited")
	gates := flag.Bool("gates", false, "build gate-level fabrics (slow; default lite routing-only fabrics)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	captureTrace := flag.Bool("trace", false, "capture per-fabric serving history, served at /v1/debug/trace (unbounded memory; debugging mode)")
	blockLog := flag.Int("block-log", 0, "blocking-forensics ring size at /v1/debug/blocking (0 = default 128, negative disables)")
	spanLog := flag.String("span-log", "", "append kept traces as JSON lines to this file (\"-\" = stderr)")
	spanRing := flag.Int("span-ring", 0, "completed-trace ring size at /v1/debug/spans (0 = default 256, negative disables tracing)")
	spanSample := flag.Int("span-sample", 0, "keep 1 of every N routine successful traces (0 = default 16; blocked/slow always kept)")
	sloObjective := flag.Float64("slo-objective", 0, "availability SLO objective (0 = default 0.999)")
	sloLatencyUs := flag.Int("slo-latency-us", 0, "latency-SLI threshold in microseconds (0 = default 1000)")
	profMutex := flag.Int("prof-mutex", 100, "mutex-contention profiling: sample 1 of every N contention events (0 leaves the runtime default)")
	profBlock := flag.Int("prof-block", 100000, "block profiling: sample blocking events >= this many nanoseconds (0 leaves the runtime default)")
	profInterval := flag.Duration("prof-interval", 30*time.Second, "background profile-snapshot cadence for /v1/debug/prof (0 = on-demand capture only)")
	profRing := flag.Int("prof-ring", 0, "profile snapshots retained per type (0 = default 8)")
	history := flag.Duration("history", time.Second, "embedded metrics-history self-scrape interval for /v1/query and /v1/alerts (0 disables history and alerting)")
	alertsFile := flag.String("alerts", "", `alerting rules file ({"rules":[...]}; empty = the shipped default ruleset; requires -history > 0)`)
	alertWebhook := flag.String("alert-webhook", "", "POST every alert state transition to this URL as JSON")
	dataDir := flag.String("data-dir", "", "durable state directory: journal every mutation to a WAL, checkpoint periodically, recover on start (empty = in-memory only)")
	walSync := flag.Duration("wal-sync", 0, "group-commit latency cap: max time an append waits for batch fsync (0 = default 2ms)")
	walSegment := flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size (0 = default 16MiB)")
	snapshotEvery := flag.Duration("snapshot-interval", 0, "durable checkpoint cadence (0 = default 30s, negative disables)")

	// Cluster-mode flags (see internal/cluster).
	clusterOn := flag.Bool("cluster", false, "run as a cluster node: shard the session space and ship the WAL to a warm standby (requires -data-dir)")
	shard := flag.Int("shard", 0, "cluster: this node's shard index")
	standbyOf := flag.String("standby-of", "", "cluster: run as the warm standby of the primary at this replication address (host:port); empty = run as primary")
	replAddr := flag.String("repl-addr", ":9047", "cluster primary: replication listen address standbys dial")
	peers := flag.String("peers", "", `cluster: shard endpoint list "primary[;standby],..." published at GET /v1/cluster for client-side routing`)
	syncTimeout := flag.Duration("sync-timeout", 0, "cluster primary: max wait for the standby ack per group commit (0 = default 2s, negative = async shipping)")
	failoverAfter := flag.Duration("failover-after", 0, "cluster standby: auto-promote after this much primary silence (0 = promote only on POST /v1/admin/promote)")

	// Attack-mode flags.
	attack := flag.Bool("attack", false, "run as load generator against -target instead of serving")
	target := flag.String("target", "http://localhost:8047", "attack: base URL of the server")
	requests := flag.Int("requests", 10000, "attack: total connect attempts")
	perFabric := flag.Int("workers", 2, "attack: workers per fabric replica")
	live := flag.Int("live", 6, "attack: per-worker live-session target (offered load knob)")
	fanout := flag.Int("fanout", 0, "attack: max fanout (0 = worker slice size)")
	seed := flag.Int64("seed", 1, "attack: PRNG seed")
	jsonOut := flag.Bool("json", false, "attack: print the report as JSON")
	chaos := flag.String("chaos", "", `attack: failure-plane schedule, e.g. "fail@10s f0:m2, repair@30s f0:m2"`)
	retries := flag.Int("retries", 1, "attack: client attempts per request incl. the first (jittered backoff on 429/503)")
	flag.Parse()

	logger, err := buildLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmserve:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if *attack {
		runAttack(*target, *requests, *perFabric, *live, *fanout, *seed, *jsonOut, *chaos, *retries)
		return
	}

	model, err := wdm.ParseModel(*modelName)
	if err != nil {
		fatal(logger, err)
	}
	// -fabric wins; -construction is the pre-backend spelling of the
	// same choice. Validation is the registry's: any registered backend
	// name is legal, and the error message enumerates them.
	fabName := *fabricName
	if fabName == "" {
		fabName = *constrName
	}
	if fabName == "" {
		fabName = "msw"
	}
	if _, err := backend.Get(fabName); err != nil {
		fatal(logger, fmt.Errorf("-fabric: %w", err))
	}

	var spanLogW io.Writer
	if *spanLog == "-" {
		spanLogW = os.Stderr
	} else if *spanLog != "" {
		f, err := os.OpenFile(*spanLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(logger, fmt.Errorf("-span-log: %w", err))
		}
		defer f.Close()
		spanLogW = f
	}

	cfg := switchd.Config{
		Fabric: multistage.Params{
			N: *n, K: *k, R: *r, M: *m, X: *x,
			Model: model, Lite: !*gates,
		},
		Backend:      fabName,
		Replicas:     *replicas,
		Shards:       *shards,
		MaxSessions:  *maxSessions,
		BlockLog:     *blockLog,
		CaptureTrace: *captureTrace,
		Spans: span.Config{
			Capacity:    *spanRing,
			SampleEvery: *spanSample,
			Log:         spanLogW,
		},
		SLO: slo.Config{
			Objective:        *sloObjective,
			LatencyThreshold: time.Duration(*sloLatencyUs) * time.Microsecond,
		},
		Prof: prof.Config{
			MutexFraction: *profMutex,
			BlockRateNs:   *profBlock,
			Interval:      *profInterval,
			Ring:          *profRing,
		},
		Logger:           logger,
		DataDir:          *dataDir,
		WALSyncDelay:     *walSync,
		WALSegmentBytes:  *walSegment,
		SnapshotInterval: *snapshotEvery,
		HistoryInterval:  *history,
		AlertWebhook:     *alertWebhook,
	}
	if *alertsFile != "" {
		rules, err := tsdb.LoadRules(*alertsFile)
		if err != nil {
			fatal(logger, fmt.Errorf("-alerts: %w", err))
		}
		cfg.Alerts = rules
	}

	if *clusterOn {
		runCluster(logger, cfg, clusterOptions{
			addr:          *addr,
			shard:         *shard,
			standbyOf:     *standbyOf,
			replAddr:      *replAddr,
			peers:         *peers,
			syncTimeout:   *syncTimeout,
			failoverAfter: *failoverAfter,
			pprofOn:       *pprofOn,
		})
		return
	}

	ctl, err := switchd.New(cfg)
	if err != nil {
		fatal(logger, err)
	}
	ctl.Metrics().Publish("switchd")
	if rec := ctl.Recovery(); rec != nil && len(rec.Sessions) > 0 {
		logger.Info("recovered sessions from durable log",
			slog.Int("sessions", len(rec.Sessions)),
			slog.Duration("elapsed", rec.Elapsed))
	}

	p := ctl.Params()
	logger.Info("serving",
		slog.String("fabric", ctl.Backend()),
		slog.String("model", p.Model.String()),
		slog.Int("n", p.N), slog.Int("k", p.K), slog.Int("r", p.R),
		slog.Int("m", p.M), slog.Int("x", p.X),
		slog.Int("replicas", ctl.Replicas()),
		slog.String("addr", *addr),
		slog.Bool("trace_capture", *captureTrace),
		slog.Bool("pprof", *pprofOn),
	)

	mux := http.NewServeMux()
	mux.Handle("/", ctl.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Addr: *addr, Handler: obs.WithRequestLog(mux, logger)}

	done := make(chan struct{})
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		defer close(done)
		sig := <-sigC
		logger.Info("draining", slog.String("signal", sig.String()))
		drainCtx, drainCancel := context.WithTimeout(context.Background(), 30*time.Second)
		sum := ctl.Drain(drainCtx)
		drainCancel()
		logger.Info("drained",
			slog.Int("released", sum.Released),
			slog.Int("errors", sum.Errors),
			slog.Bool("canceled", sum.Canceled),
			slog.Duration("elapsed", sum.Elapsed))
		if sum.StorageError != "" {
			logger.Error("drain: durable log", slog.String("error", sum.StorageError))
		}
		if err := ctl.Close(); err != nil {
			logger.Error("closing durable log", slog.String("error", err.Error()))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", slog.String("error", err.Error()))
		}
		// Flush final stats so a supervised restart leaves a record.
		snap, _ := json.Marshal(ctl.Metrics().Snapshot())
		logger.Info("final metrics", slog.String("snapshot", string(snap)))
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(logger, err)
	}
	<-done
}

func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("-log-format must be text or json, not %q", format)
	}
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", slog.String("error", err.Error()))
	os.Exit(1)
}

func runAttack(target string, requests, perFabric, live, fanout int, seed int64, jsonOut bool, chaos string, retries int) {
	events, err := switchd.ParseChaos(chaos)
	if err != nil {
		fatal(slog.Default(), err)
	}
	rep, err := switchd.Attack(switchd.AttackConfig{
		BaseURL:          target,
		Requests:         requests,
		WorkersPerFabric: perFabric,
		TargetLive:       live,
		MaxFanout:        fanout,
		Seed:             seed,
		Chaos:            events,
		Retry:            client.RetryPolicy{MaxAttempts: retries},
	})
	if err != nil {
		fatal(slog.Default(), fmt.Errorf("attack: %w", err))
	}
	if jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(slog.Default(), fmt.Errorf("attack: %w", err))
		}
		fmt.Println(string(out))
		return
	}
	fmt.Println(rep)
	if rep.Server.Blocked == 0 {
		fmt.Println("nonblocking invariant held: server reports blocked == 0")
	} else {
		fmt.Printf("server reports %d blocking events (expected iff m is below the sufficient bound)\n", rep.Server.Blocked)
	}
}
