// wdmdesign recommends a minimal-cost nonblocking WDM multicast switch
// configuration for a requested size and multicast model, enumerating the
// crossbar and every three-stage factorization with theorem-minimal
// middle stages.
//
// Usage:
//
//	wdmdesign -n 256 -k 4 -model maw
//	wdmdesign -n 1024 -k 2 -model msw -converter-weight 25 -top 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/wdm"
)

func main() {
	n := flag.Int("n", 64, "network size N")
	k := flag.Int("k", 2, "wavelengths per fiber")
	modelName := flag.String("model", "msw", "multicast model: msw, msdw, maw")
	convWeight := flag.Float64("converter-weight", core.DefaultWeights.Converter,
		"cost of one wavelength converter in crosspoint units")
	top := flag.Int("top", 5, "how many options to print")
	targetP := flag.Float64("target-pblock", 0,
		"if > 0: also size the middle stage for this blocking probability at -occupancy (Lee approximation) instead of strict nonblocking")
	occupancy := flag.Float64("occupancy", 0.3, "assumed inter-stage link occupancy for -target-pblock")
	flag.Parse()

	model, err := wdm.ParseModel(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmdesign:", err)
		os.Exit(2)
	}
	w := core.Weights{Crosspoint: 1, Converter: *convWeight}
	opts, err := core.Design(*n, *k, model, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmdesign:", err)
		os.Exit(1)
	}
	if *top > len(opts) {
		*top = len(opts)
	}

	t := report.New(fmt.Sprintf("Nonblocking designs for N=%d k=%d %v (converter = %.0f crosspoints), cheapest first",
		*n, *k, model, *convWeight),
		"rank", "architecture", "r", "n", "m", "x", "crosspoints", "converters", "weighted")
	for i, o := range opts[:*top] {
		arch := "crossbar"
		rs, ns, ms, xs := "-", "-", "-", "-"
		if o.Spec.Architecture == core.ThreeStage {
			arch = fmt.Sprintf("3-stage %v", o.Spec.Construction)
			rs = report.Int(o.Spec.R)
			ns = report.Int(o.Spec.N / o.Spec.R)
			ms = report.Int(o.Spec.M)
			xs = report.Int(o.Spec.X)
		}
		t.AddRow(report.Int(i+1), arch, rs, ns, ms, xs,
			report.Int(o.Cost.Crosspoints), report.Int(o.Cost.Converters),
			report.Float(w.Scalar(o.Cost), 0))
	}
	t.Fprint(os.Stdout)
	fmt.Printf("\nrecommended: %s\n", opts[0].Describe())

	if *targetP > 0 {
		mLee, err := analytic.MinMForTarget(*occupancy, *occupancy, *targetP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wdmdesign:", err)
			os.Exit(1)
		}
		// Contrast with the strict bound of the best three-stage option.
		fmt.Printf("\nLee sizing at occupancy %.2f for P_block <= %g: m = %d middle modules\n",
			*occupancy, *targetP, mLee)
		for _, o := range opts {
			if o.Spec.Architecture == core.ThreeStage {
				fmt.Printf("strict nonblocking needs m = %d for the same r=%d split — the price of guaranteed zero blocking\n",
					o.Spec.M, o.Spec.R)
				break
			}
		}
	}
}
