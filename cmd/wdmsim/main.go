// wdmsim runs dynamic-traffic simulations against the three-stage WDM
// multicast networks and prints blocking probability as a function of the
// middle-stage module count m — the executable counterpart of Theorems 1
// and 2 (there is no empirical section in the paper; this regenerates the
// repository's validation series documented in EXPERIMENTS.md).
//
// Usage:
//
//	wdmsim -n 16 -k 2 -r 4 -model msw -construction msw -requests 5000
//	wdmsim -n 16 -k 2 -r 4 -model maw -construction maw -load 20
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/multistage"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/wdm"
)

func main() {
	n := flag.Int("n", 16, "network size N")
	k := flag.Int("k", 2, "wavelengths per fiber")
	r := flag.Int("r", 4, "outer-stage module count (must divide N)")
	modelName := flag.String("model", "msw", "multicast model: msw, msdw, maw")
	constrName := flag.String("construction", "msw", "construction: msw (MSW-dominant) or maw (MAW-dominant)")
	requests := flag.Int("requests", 4000, "number of connection arrivals per point")
	load := flag.Float64("load", 12, "offered load (mean arrivals per mean holding time)")
	maxFanout := flag.Int("fanout", 0, "max fanout (0 = N)")
	seed := flag.Int64("seed", 1, "PRNG seed")
	repack := flag.Bool("repack", false, "rearrangeable operation: retry blocked requests with repacking")
	parallel := flag.Bool("parallel", false, "run the sweep points concurrently")
	byFanout := flag.Bool("by-fanout", false, "also print blocking stratified by fanout (largest m only)")
	flag.Parse()

	model, err := wdm.ParseModel(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmsim:", err)
		os.Exit(2)
	}
	var constr multistage.Construction
	switch *constrName {
	case "msw":
		constr = multistage.MSWDominant
	case "maw":
		constr = multistage.MAWDominant
	default:
		fmt.Fprintln(os.Stderr, "wdmsim: -construction must be msw or maw")
		os.Exit(2)
	}

	base := multistage.Params{N: *n, K: *k, R: *r, Model: model, Construction: constr, Lite: true}
	ms := sim.DefaultMs(constr, base)
	sort.Ints(ms)

	cfg := sim.Config{
		Seed: *seed, Requests: *requests, Load: *load, MaxFanout: *maxFanout,
		Repack: *repack,
	}
	sweep := sim.SweepM
	if *parallel {
		sweep = sim.SweepMParallel
	}
	points, err := sweep(base, ms, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmsim:", err)
		os.Exit(1)
	}

	norm, _ := base.Normalize()
	mode := "strict"
	if *repack {
		mode = "rearrangeable"
	}
	t := report.New(fmt.Sprintf("Blocking probability vs middle-stage size m — N=%d k=%d r=%d %v %v, %s (%d requests, load %.1f)",
		*n, *k, *r, model, constr, mode, *requests, *load),
		"m", "offered", "routed", "blocked", "repacked", "P_block", "note")
	for _, pt := range points {
		note := ""
		if pt.M == pt.PaperMin {
			note = "paper theorem bound"
		}
		if pt.AtBound {
			if note != "" {
				note += " = "
			}
			note += "sufficient bound"
		}
		t.AddRow(report.Int(pt.M),
			report.Int(pt.Result.Offered), report.Int(pt.Result.Routed), report.Int(pt.Result.Blocked),
			report.Int(pt.Result.Repacked),
			report.Float(pt.Result.BlockingProbability(), 4), note)
	}
	t.Footnote = fmt.Sprintf("n=%d per module; x=%d; expectation: P_block = 0 at and above the sufficient bound",
		norm.N/norm.R, norm.X)
	t.Fprint(os.Stdout)

	if *byFanout && len(points) > 0 {
		last := points[len(points)-1]
		fmt.Println()
		ft := report.New(fmt.Sprintf("Blocking by fanout at m=%d", last.M),
			"fanout", "offered", "blocked", "P_block")
		fanouts := make([]int, 0, len(last.Result.ByFanout))
		for f := range last.Result.ByFanout {
			fanouts = append(fanouts, f)
		}
		sort.Ints(fanouts)
		for _, f := range fanouts {
			s := last.Result.ByFanout[f]
			ft.AddRow(report.Int(f), report.Int(s.Offered), report.Int(s.Blocked),
				report.Float(last.Result.BlockingProbabilityAtFanout(f), 4))
		}
		ft.Fprint(os.Stdout)
	}
}
