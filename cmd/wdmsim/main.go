// wdmsim runs dynamic-traffic simulations against the three-stage WDM
// multicast networks and prints blocking probability as a function of the
// middle-stage module count m — the executable counterpart of Theorems 1
// and 2 (there is no empirical section in the paper; this regenerates the
// repository's validation series documented in EXPERIMENTS.md).
//
// Usage:
//
//	wdmsim -n 16 -k 2 -r 4 -model msw -construction msw -requests 5000
//	wdmsim -n 16 -k 2 -r 4 -model maw -construction maw -load 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/multistage"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/wdm"
)

func main() {
	n := flag.Int("n", 16, "network size N")
	k := flag.Int("k", 2, "wavelengths per fiber")
	r := flag.Int("r", 4, "outer-stage module count (must divide N)")
	modelName := flag.String("model", "msw", "multicast model: msw, msdw, maw")
	constrName := flag.String("construction", "msw", "construction: msw (MSW-dominant) or maw (MAW-dominant)")
	requests := flag.Int("requests", 4000, "number of connection arrivals per point")
	load := flag.Float64("load", 12, "offered load (mean arrivals per mean holding time)")
	maxFanout := flag.Int("fanout", 0, "max fanout (0 = N)")
	seed := flag.Int64("seed", 1, "PRNG seed")
	repack := flag.Bool("repack", false, "rearrangeable operation: retry blocked requests with repacking")
	parallel := flag.Bool("parallel", false, "run the sweep points concurrently")
	byFanout := flag.Bool("by-fanout", false, "also print blocking stratified by fanout (largest m only)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the table")
	nSeeds := flag.Int("seeds", 1, "seeds per point (seed, seed+1, ...); >1 adds per-point aggregates")
	flag.Parse()

	model, err := wdm.ParseModel(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmsim:", err)
		os.Exit(2)
	}
	var constr multistage.Construction
	switch *constrName {
	case "msw":
		constr = multistage.MSWDominant
	case "maw":
		constr = multistage.MAWDominant
	default:
		fmt.Fprintln(os.Stderr, "wdmsim: -construction must be msw or maw")
		os.Exit(2)
	}

	base := multistage.Params{N: *n, K: *k, R: *r, Model: model, Construction: constr, Lite: true}
	ms := sim.DefaultMs(constr, base)
	sort.Ints(ms)

	cfg := sim.Config{
		Seed: *seed, Requests: *requests, Load: *load, MaxFanout: *maxFanout,
		Repack: *repack,
	}
	sweep := sim.SweepM
	if *parallel {
		sweep = sim.SweepMParallel
	}
	points, err := sweep(base, ms, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmsim:", err)
		os.Exit(1)
	}

	// Per-point multi-seed aggregates (satellite of the serving-mode PR:
	// lets scripts diff server-vs-offline blocking numbers with spread).
	var aggs []*sim.Aggregate
	if *nSeeds > 1 {
		norm0, _ := base.Normalize()
		seedList := make([]int64, *nSeeds)
		for i := range seedList {
			seedList[i] = *seed + int64(i)
		}
		for _, pt := range points {
			p := base
			p.M = pt.M
			p.Lite = true
			acfg := cfg
			acfg.Dim = wdm.Dim{N: norm0.N, K: norm0.K}
			acfg.Model = norm0.Model
			acfg.IsBlocked = multistage.IsBlocked
			agg, err := sim.RunSeeds(func() (sim.Network, error) { return multistage.New(p) }, acfg, seedList)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wdmsim:", err)
				os.Exit(1)
			}
			aggs = append(aggs, agg)
		}
	}

	if *jsonOut {
		emitJSON(base, points, aggs, cfg, *nSeeds, *repack)
		return
	}

	norm, _ := base.Normalize()
	mode := "strict"
	if *repack {
		mode = "rearrangeable"
	}
	t := report.New(fmt.Sprintf("Blocking probability vs middle-stage size m — N=%d k=%d r=%d %v %v, %s (%d requests, load %.1f)",
		*n, *k, *r, model, constr, mode, *requests, *load),
		"m", "offered", "routed", "blocked", "repacked", "P_block", "note")
	for _, pt := range points {
		note := ""
		if pt.M == pt.PaperMin {
			note = "paper theorem bound"
		}
		if pt.AtBound {
			if note != "" {
				note += " = "
			}
			note += "sufficient bound"
		}
		t.AddRow(report.Int(pt.M),
			report.Int(pt.Result.Offered), report.Int(pt.Result.Routed), report.Int(pt.Result.Blocked),
			report.Int(pt.Result.Repacked),
			report.Float(pt.Result.BlockingProbability(), 4), note)
	}
	t.Footnote = fmt.Sprintf("n=%d per module; x=%d; expectation: P_block = 0 at and above the sufficient bound",
		norm.N/norm.R, norm.X)
	t.Fprint(os.Stdout)

	if len(aggs) > 0 {
		fmt.Println()
		at := report.New(fmt.Sprintf("Aggregate over %d seeds (seed %d..%d)", *nSeeds, *seed, *seed+int64(*nSeeds)-1),
			"m", "mean P_block", "max P_block", "stddev", "blocked", "offered")
		for i, agg := range aggs {
			at.AddRow(report.Int(points[i].M),
				report.Float(agg.MeanP, 4), report.Float(agg.MaxP, 4), report.Float(agg.StddevP, 4),
				report.Int(agg.Blocked), report.Int(agg.Offered))
		}
		at.Fprint(os.Stdout)
	}

	if *byFanout && len(points) > 0 {
		last := points[len(points)-1]
		fmt.Println()
		ft := report.New(fmt.Sprintf("Blocking by fanout at m=%d", last.M),
			"fanout", "offered", "blocked", "P_block")
		fanouts := make([]int, 0, len(last.Result.ByFanout))
		for f := range last.Result.ByFanout {
			fanouts = append(fanouts, f)
		}
		sort.Ints(fanouts)
		for _, f := range fanouts {
			s := last.Result.ByFanout[f]
			ft.AddRow(report.Int(f), report.Int(s.Offered), report.Int(s.Blocked),
				report.Float(last.Result.BlockingProbabilityAtFanout(f), 4))
		}
		ft.Fprint(os.Stdout)
	}
}

// jsonPoint is one sweep sample in -json output.
type jsonPoint struct {
	M         int            `json:"m"`
	AtBound   bool           `json:"at_bound"`
	PaperMinM int            `json:"paper_min_m"`
	Result    sim.Result     `json:"result"`
	Aggregate *sim.Aggregate `json:"aggregate,omitempty"`
}

// jsonDoc is the -json document: enough configuration to rebuild the
// run plus every point, so server-side (wdmserve /v1/metrics) and
// offline blocking numbers can be diffed by scripts.
type jsonDoc struct {
	N            int         `json:"n"`
	K            int         `json:"k"`
	R            int         `json:"r"`
	NPerModule   int         `json:"n_per_module"`
	X            int         `json:"x"`
	Model        string      `json:"model"`
	Construction string      `json:"construction"`
	Requests     int         `json:"requests"`
	Load         float64     `json:"load"`
	MaxFanout    int         `json:"max_fanout"`
	Seed         int64       `json:"seed"`
	Seeds        int         `json:"seeds"`
	Rearrange    bool        `json:"rearrangeable"`
	Points       []jsonPoint `json:"points"`
}

func emitJSON(base multistage.Params, points []sim.SweepPoint, aggs []*sim.Aggregate, cfg sim.Config, nSeeds int, repack bool) {
	norm, err := base.Normalize()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmsim:", err)
		os.Exit(1)
	}
	doc := jsonDoc{
		N: norm.N, K: norm.K, R: norm.R,
		NPerModule:   norm.N / norm.R,
		X:            norm.X,
		Model:        norm.Model.String(),
		Construction: norm.Construction.String(),
		Requests:     cfg.Requests,
		Load:         cfg.Load,
		MaxFanout:    cfg.MaxFanout,
		Seed:         cfg.Seed,
		Seeds:        nSeeds,
		Rearrange:    repack,
	}
	for i, pt := range points {
		jp := jsonPoint{M: pt.M, AtBound: pt.AtBound, PaperMinM: pt.PaperMin, Result: pt.Result}
		if i < len(aggs) {
			jp.Aggregate = aggs[i]
		}
		doc.Points = append(doc.Points, jp)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "wdmsim:", err)
		os.Exit(1)
	}
}
