// wdmtrace records and replays connection-event traces against any
// registered fabric backend, making blocking incidents reproducible
// and comparable across configurations:
//
//	wdmtrace -record -n 16 -k 2 -r 4 -m 3 -requests 500 > incident.trace
//	wdmtrace -replay incident.trace -n 16 -k 2 -r 4 -m 13
//	wdmtrace -replay incident.trace -fabric mesh -n 12 -k 4 -r 3
//
// Recording runs a seeded dynamic workload against the given network and
// emits the full interface history (adds with outcomes, releases).
// Replaying drives the same requests against a possibly different
// configuration and reports every outcome divergence — e.g. which
// recorded blocks disappear at a larger middle-stage count, or how the
// mesh fares against a load captured on a Clos fabric.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/fabric/backend"
	"repro/internal/multistage"
	"repro/internal/trace"
	"repro/internal/wdm"
	"repro/internal/workload"
)

func main() {
	record := flag.Bool("record", false, "record a workload trace to stdout")
	replay := flag.String("replay", "", "replay the given trace file")
	n := flag.Int("n", 16, "network size N")
	k := flag.Int("k", 2, "wavelengths per fiber")
	r := flag.Int("r", 4, "outer-stage module count")
	m := flag.Int("m", 0, "middle modules (0 = sufficient bound)")
	x := flag.Int("x", 0, "split limit (0 = backend default)")
	modelName := flag.String("model", "msw", "multicast model")
	fabricName := flag.String("fabric", "", "fabric backend: "+strings.Join(backend.Names(), ", ")+" (empty = derive from -construction)")
	constrName := flag.String("construction", "", "deprecated alias of -fabric (kept for traces recorded before backends existed)")
	requests := flag.Int("requests", 500, "arrivals to record")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	model, err := wdm.ParseModel(*modelName)
	if err != nil {
		fatal(err)
	}
	fabName := *fabricName
	if fabName == "" {
		fabName = *constrName
	}
	if fabName == "" {
		fabName = "msw"
	}
	desc, err := backend.Get(fabName)
	if err != nil {
		fatal(err)
	}
	norm, err := desc.Normalize(multistage.Params{
		N: *n, K: *k, R: *r, M: *m, X: *x,
		Model: model, Lite: true,
	})
	if err != nil {
		fatal(err)
	}
	net, err := desc.New(norm)
	if err != nil {
		fatal(err)
	}

	switch {
	case *record:
		doRecord(net, model, *n, *k, *requests, *seed)
	case *replay != "":
		doReplay(net, *replay)
	default:
		fmt.Fprintln(os.Stderr, "wdmtrace: need -record or -replay <file>")
		os.Exit(2)
	}
}

func doRecord(net backend.Backend, model wdm.Model, n, k, requests int, seed int64) {
	rec := trace.NewRecorder(net, multistage.IsBlocked)
	gen := workload.NewGenerator(seed, model, wdm.Dim{N: n, K: k})
	rng := rand.New(rand.NewSource(seed + 1))

	srcBusyInit()
	type live struct {
		id   int
		conn wdm.Connection
	}
	var held []live
	for i := 0; i < requests; i++ {
		if len(held) > 0 && rng.Intn(3) == 0 {
			v := held[0]
			held = held[1:]
			if err := rec.Release(v.id); err != nil {
				fatal(err)
			}
			delete(srcBusy, v.conn.Source)
			for _, d := range v.conn.Dests {
				delete(dstBusy, d)
			}
		}
		src, dst := freeSlots(n, k)
		c, ok := gen.Connection(src, dst, gen.Fanout(n/2))
		if !ok {
			continue
		}
		id, err := rec.Add(c)
		if err != nil {
			continue // blocked or rejected: recorded, slots unchanged
		}
		held = append(held, live{id: id, conn: c})
		srcBusy[c.Source] = true
		for _, d := range c.Dests {
			dstBusy[d] = true
		}
	}
	if err := rec.Trace().Write(os.Stdout); err != nil {
		fatal(err)
	}
	ok, blocked := net.Stats()
	fmt.Fprintf(os.Stderr, "recorded %d events (%d routed, %d blocked)\n",
		len(rec.Trace().Events), ok, blocked)
}

var (
	srcBusy map[wdm.PortWave]bool
	dstBusy map[wdm.PortWave]bool
)

func srcBusyInit() {
	srcBusy = make(map[wdm.PortWave]bool)
	dstBusy = make(map[wdm.PortWave]bool)
}

func freeSlots(n, k int) (src, dst []wdm.PortWave) {
	for p := 0; p < n; p++ {
		for w := 0; w < k; w++ {
			slot := wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
			if !srcBusy[slot] {
				src = append(src, slot)
			}
			if !dstBusy[slot] {
				dst = append(dst, slot)
			}
		}
	}
	return
}

func doReplay(net backend.Backend, path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	res, err := tr.Replay(net, multistage.IsBlocked)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d events: %d adds matched, %d divergences\n",
		res.Applied, res.OKMatches, len(res.Divergence))
	for _, i := range res.Divergence {
		ev := tr.Events[i]
		fmt.Printf("  event %d: %s — recorded %s, replay differs\n",
			i, wdm.FormatConnection(ev.Conn), outcomeName(ev.Outcome))
	}
}

func outcomeName(o trace.Outcome) string {
	switch o {
	case trace.OK:
		return "routed"
	case trace.Blocked:
		return "blocked"
	default:
		return "rejected"
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdmtrace:", err)
	os.Exit(1)
}
