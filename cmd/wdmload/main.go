// wdmload drives the internal/traffic engine against a live switchd:
// closed-loop dynamic workloads with pluggable arrival processes,
// heavy-tail holding times, multicast fanout distributions, hotspot
// skew, and session churn — all seeded and deterministic, with every
// request admissible so each rejection is a genuine block.
//
//	wdmload -mode sweep -target http://localhost:8047 \
//	    -points 1,2,4,8,16 -arrivals 2000 -out BENCH_curves.json
//
// sweeps offered load in Erlang steps and writes the blocking curve
// (per-point P_block with Wilson 95% intervals, latency and phase
// summaries, Lee/Erlang-B analytic overlays) as BENCH_curves.json —
// rendered by `wdmplot -series curves`. At m >= the backend's bound
// every point must measure P_block = 0 (assert with -strict); below
// the bound the curve shows the knee.
//
//	wdmload -mode steady -erlangs 4 -timescale 500ms
//
// holds one load point at watchable speed (one mean holding time =
// -timescale) so the server's wdm_loadgen_* gauges, sparklines, and
// wdmtop fleet view move in real time.
//
//	wdmload -mode replay -replay BENCH_curves.json
//
// re-runs a recorded sweep from the artifact's own seed and parameters
// and compares the measured curve point by point — the reproducibility
// check for published results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/switchd/client"
	"repro/internal/traffic"
)

func main() {
	mode := flag.String("mode", "sweep", "run mode: sweep, steady, replay")
	target := flag.String("target", "http://localhost:8047", "base URL of the switchd under load")
	points := flag.String("points", "1,2,4,8", "sweep: offered loads in Erlangs, comma-separated")
	arrivals := flag.Int("arrivals", 2000, "connect arrivals per load point (total across workers)")
	seed := flag.Int64("seed", 1, "master seed; the whole run is a pure function of it")
	arrival := flag.String("arrival", "poisson", "arrival process: poisson, mmpp[:burst=10,duty=0.1,dwell=5], diurnal[:amp=0.8,period=100]")
	holding := flag.String("holding", "exp", "holding-time distribution: exp, pareto[:alpha=1.5]")
	fanout := flag.String("fanout", "geometric:p=0.5", "fanout distribution: geometric[:p=0.5], zipf[:s=1.3], uniform")
	maxFanout := flag.Int("max-fanout", 0, "fanout cap (0 = worker port-slice size)")
	maxLive := flag.Int("max-live", 0, "per-worker concurrent-session clamp; excess arrivals count unoffered (0 = unlimited)")
	hotspot := flag.String("hotspot", "", "hotspot skew as frac[:ports], e.g. 0.3:2 (empty = uniform)")
	churn := flag.String("churn", "", "session churn as rate[:growbias] per holding time, e.g. 0.5:0.5 (empty = none)")
	workers := flag.Int("workers", 0, "workers per fabric replica (0 = mode default)")
	out := flag.String("out", "BENCH_curves.json", "sweep/replay: output artifact path")
	stream := flag.String("stream", "", "write the deterministic request stream to this file")
	strict := flag.Bool("strict", false, "sweep: exit 1 if any point measures P_block > 0; replay: exit 1 on drift outside the recorded Wilson intervals")
	z := flag.Float64("z", 1.96, "Wilson interval critical value")
	erlangs := flag.Float64("erlangs", 4, "steady: offered load in Erlangs")
	timescale := flag.Duration("timescale", 0, "steady: wall-clock duration of one mean holding time (0 = as fast as the target answers)")
	replayPath := flag.String("replay", "BENCH_curves.json", "replay: recorded sweep artifact to reproduce")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ecfg := traffic.Config{
		Client:           client.New(*target),
		Seed:             *seed,
		Arrivals:         *arrivals,
		WorkersPerFabric: *workers,
		MaxFanout:        *maxFanout,
		MaxLive:          *maxLive,
	}
	var err error
	if ecfg.Arrival, err = traffic.ParseArrival(*arrival); err != nil {
		fatal(err)
	}
	if ecfg.Holding, err = traffic.ParseHolding(*holding); err != nil {
		fatal(err)
	}
	if ecfg.Fanout, err = traffic.ParseFanout(*fanout); err != nil {
		fatal(err)
	}
	if ecfg.Hotspot, err = parseHotspot(*hotspot); err != nil {
		fatal(err)
	}
	if ecfg.Churn, err = parseChurn(*churn); err != nil {
		fatal(err)
	}
	if *stream != "" {
		f, err := os.Create(*stream)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		ecfg.StreamLog = f
	}

	switch *mode {
	case "sweep":
		pts, err := parsePoints(*points)
		if err != nil {
			fatal(err)
		}
		runSweep(ctx, traffic.SweepConfig{Engine: ecfg, Points: pts, Z: *z, Logf: logf}, *out, *strict)
	case "steady":
		runSteady(ctx, ecfg, *erlangs, *timescale)
	case "replay":
		runReplay(ctx, ecfg, *replayPath, *out, *z, *strict)
	default:
		fatal(fmt.Errorf("unknown mode %q (want sweep, steady, replay)", *mode))
	}
}

// runSweep measures the blocking curve and writes the artifact. With
// strict set, any measured blocking fails the run — the CI assertion
// that a target provisioned at its backend's bound stays at
// P_block = 0 across every offered load.
func runSweep(ctx context.Context, cfg traffic.SweepConfig, out string, strict bool) {
	curves, err := traffic.Sweep(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	writeArtifact(out, curves)
	logf("wrote %s: backend=%s m=%d bound=%d, %d points, max P_block=%.4f",
		out, curves.Backend, curves.M, curves.SufficientM, len(curves.Points), curves.MaxPBlock())
	if strict && curves.MaxPBlock() > 0 {
		fatal(fmt.Errorf("strict: measured P_block=%.6f > 0 (m=%d, bound=%d)",
			curves.MaxPBlock(), curves.M, curves.SufficientM))
	}
}

// runSteady holds one load point until the arrival budget is spent or
// the process is interrupted, printing a rollup at the end.
func runSteady(ctx context.Context, ecfg traffic.Config, erlangs float64, timescale time.Duration) {
	ecfg.Erlangs = erlangs
	ecfg.TimeScale = timescale
	eng, err := traffic.NewEngine(ecfg)
	if err != nil {
		fatal(err)
	}
	repCtx, stopReport := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		traffic.ReportLoop(repCtx, ecfg.Client, eng.Progress(), erlangs)
	}()
	rep, err := eng.Run(ctx)
	stopReport()
	<-done
	if err != nil && ctx.Err() == nil {
		fatal(err)
	}
	s := rep.Stats
	lat := traffic.LatencyQuantiles(s.Latencies)
	logf("steady %.3g Erlangs: offered=%d routed=%d blocked=%d (P_block=%.4f) branches=%d shrinks=%d in %v — connect p50/p99 %.0f/%.0f µs",
		erlangs, s.Offered(), s.Routed, s.BlockedTotal(), s.PBlock(), s.Branches, s.Shrinks,
		rep.Duration.Round(time.Millisecond), lat.P50Micros, lat.P99Micros)
}

// runReplay re-runs a recorded sweep from its artifact and compares
// the measured blocking point by point.
func runReplay(ctx context.Context, ecfg traffic.Config, path, out string, z float64, strict bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rec traffic.Curves
	if err := json.Unmarshal(data, &rec); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	if len(rec.Points) == 0 {
		fatal(fmt.Errorf("%s records no points", path))
	}
	// Rebuild the engine template from the artifact, not the flags: the
	// replay reproduces the recorded run.
	ecfg.Seed = rec.Seed
	ecfg.Arrivals = rec.Arrivals
	ecfg.MaxFanout = rec.MaxFanout
	ecfg.MaxLive = rec.MaxLive
	ecfg.Churn = rec.Churn
	ecfg.Hotspot = rec.Hotspot
	if ecfg.Arrival, err = traffic.ParseArrival(rec.Arrival); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if ecfg.Holding, err = traffic.ParseHolding(rec.Holding); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if ecfg.Fanout, err = traffic.ParseFanout(rec.Fanout); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	pts := make([]float64, len(rec.Points))
	for i, p := range rec.Points {
		pts[i] = p.Erlangs
	}
	curves, err := traffic.Sweep(ctx, traffic.SweepConfig{Engine: ecfg, Points: pts, Z: z, Logf: logf})
	if err != nil {
		fatal(err)
	}
	writeArtifact(out, curves)

	drift := false
	for i, p := range curves.Points {
		old := rec.Points[i]
		ok := p.PBlock >= old.WilsonLo && p.PBlock <= old.WilsonHi
		if !ok {
			drift = true
		}
		logf("replay %.3g Erlangs: recorded P_block=%.4f [%.4f, %.4f], measured %.4f (%s)",
			p.Erlangs, old.PBlock, old.WilsonLo, old.WilsonHi, p.PBlock, okStr(ok))
	}
	if strict && drift {
		fatal(fmt.Errorf("strict: replay drifted outside the recorded Wilson intervals"))
	}
}

func okStr(ok bool) string {
	if ok {
		return "within interval"
	}
	return "DRIFT"
}

func writeArtifact(path string, curves traffic.Curves) {
	data, err := json.MarshalIndent(curves, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func parsePoints(s string) ([]float64, error) {
	var pts []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad Erlang point %q (want a positive number)", part)
		}
		pts = append(pts, v)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("no load points in %q", s)
	}
	return pts, nil
}

// parseHotspot parses "frac" or "frac:ports".
func parseHotspot(s string) (traffic.HotspotConfig, error) {
	if s = strings.TrimSpace(s); s == "" {
		return traffic.HotspotConfig{}, nil
	}
	fracStr, portsStr, hasPorts := strings.Cut(s, ":")
	frac, err := strconv.ParseFloat(fracStr, 64)
	if err != nil || frac < 0 || frac > 1 {
		return traffic.HotspotConfig{}, fmt.Errorf("bad hotspot fraction %q (want 0..1)", fracStr)
	}
	cfg := traffic.HotspotConfig{Fraction: frac}
	if hasPorts {
		if cfg.Ports, err = strconv.Atoi(portsStr); err != nil || cfg.Ports < 1 {
			return traffic.HotspotConfig{}, fmt.Errorf("bad hotspot port count %q", portsStr)
		}
	}
	return cfg, nil
}

// parseChurn parses "rate" or "rate:growbias".
func parseChurn(s string) (traffic.ChurnConfig, error) {
	if s = strings.TrimSpace(s); s == "" {
		return traffic.ChurnConfig{}, nil
	}
	rateStr, biasStr, hasBias := strings.Cut(s, ":")
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate < 0 {
		return traffic.ChurnConfig{}, fmt.Errorf("bad churn rate %q", rateStr)
	}
	cfg := traffic.ChurnConfig{Rate: rate}
	if hasBias {
		if cfg.GrowBias, err = strconv.ParseFloat(biasStr, 64); err != nil || cfg.GrowBias < 0 || cfg.GrowBias > 1 {
			return traffic.ChurnConfig{}, fmt.Errorf("bad churn grow bias %q (want 0..1)", biasStr)
		}
	}
	return cfg, nil
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wdmload: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdmload:", err)
	os.Exit(1)
}
