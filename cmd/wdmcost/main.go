// wdmcost prints the hardware-cost comparisons of the paper: Table 1's
// crossbar rows (crosspoints and wavelength converters per model) and
// Table 2's crossbar-vs-multistage comparison, with costs computed from
// the actual module structure rather than quoted.
//
// Usage:
//
//	wdmcost -table1 -n 8 -k 2
//	wdmcost -table2 -k 2                     sweep N over powers of two
//	wdmcost -table2 -n 1024 -k 4 -r 32       one explicit configuration
//	wdmcost -fabrics -n 16 -k 2 -r 4         per-backend cost comparison
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/crossbar"
	"repro/internal/fabric/backend"
	"repro/internal/multistage"
	"repro/internal/report"
	"repro/internal/wdm"
)

func main() {
	table1 := flag.Bool("table1", false, "print Table 1 cost rows (crossbar designs)")
	table2 := flag.Bool("table2", false, "print Table 2 (crossbar vs multistage)")
	fabrics := flag.Bool("fabrics", false, "print per-backend hardware cost rows (every registered fabric backend)")
	n := flag.Int("n", 0, "network size N (0 = default sweep)")
	k := flag.Int("k", 2, "wavelengths per fiber")
	r := flag.Int("r", 0, "outer-stage module count for -table2/-fabrics (0 = best square-ish split)")
	flag.Parse()

	if !*table1 && !*table2 && !*fabrics {
		*table1, *table2 = true, true
	}
	if *k < 1 {
		fmt.Fprintln(os.Stderr, "wdmcost: -k must be positive")
		os.Exit(2)
	}

	if *table1 {
		sizes := []int{*n}
		if *n == 0 {
			sizes = []int{4, 8, 16, 32, 64}
		}
		t := report.New(fmt.Sprintf("Table 1 — crossbar cost (k=%d)", *k),
			"N", "model", "crosspoints", "converters", "splitters", "combiners")
		for _, nn := range sizes {
			for _, m := range wdm.Models {
				c := crossbar.CostFormula(m, wdm.Shape{In: nn, Out: nn, K: *k})
				t.AddRow(report.Int(nn), m.String(),
					report.Int(c.Crosspoints), report.Int(c.Converters),
					report.Int(c.Splitters), report.Int(c.Combiners))
			}
		}
		t.Footnote = "crosspoints: kN^2 (MSW), k^2N^2 (MSDW/MAW); converters: 0 / kN / kN"
		t.Fprint(os.Stdout)
		fmt.Println()
	}

	if *table2 {
		sizes := []int{*n}
		if *n == 0 {
			sizes = []int{64, 256, 1024, 4096}
		}
		t := report.New(fmt.Sprintf("Table 2 — crossbar (CB) vs three-stage (MS), MSW-dominant (k=%d)", *k),
			"N", "model", "CB crosspoints", "MS crosspoints", "ratio", "CB conv", "MS conv", "r", "n", "m", "x")
		for _, nn := range sizes {
			rr := *r
			if rr == 0 {
				rr = bestSquareSplit(nn)
			}
			if rr < 2 || nn%rr != 0 || nn/rr < 2 {
				fmt.Fprintf(os.Stderr, "wdmcost: cannot split N=%d with r=%d\n", nn, rr)
				continue
			}
			nPer := nn / rr
			for _, m := range wdm.Models {
				cb := crossbar.CostFormula(m, wdm.Shape{In: nn, Out: nn, K: *k})
				mm, xx := multistage.SufficientMinM(multistage.MSWDominant, m, nPer, rr, *k)
				ms, err := multistage.CostFormula(multistage.Params{
					N: nn, K: *k, R: rr, M: mm, X: xx, Model: m,
					Construction: multistage.MSWDominant,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "wdmcost:", err)
					os.Exit(1)
				}
				t.AddRow(report.Int(nn), m.String(),
					report.Int(cb.Crosspoints), report.Int(ms.Crosspoints),
					report.Ratio(float64(cb.Crosspoints), float64(ms.Crosspoints)),
					report.Int(cb.Converters), report.Int(ms.Converters),
					report.Int(rr), report.Int(nPer), report.Int(mm), report.Int(xx))
			}
		}
		t.Footnote = "m = sufficient nonblocking middle count; MS asymptotics: O(kN^1.5 log N / log log N) crosspoints"
		t.Fprint(os.Stdout)
	}

	if *fabrics {
		if *table1 || *table2 {
			fmt.Println()
		}
		nn := *n
		if nn == 0 {
			nn = 16
		}
		rr := *r
		if rr == 0 {
			rr = bestSquareSplit(nn)
		}
		if rr < 2 || nn%rr != 0 {
			fmt.Fprintf(os.Stderr, "wdmcost: cannot split N=%d with r=%d\n", nn, rr)
			os.Exit(2)
		}
		t := report.New(fmt.Sprintf("Fabric backends — computed hardware cost (N=%d, k=%d, r=%d, m at each backend's bound)", nn, *k, rr),
			"backend", "m", "crosspoints", "converters", "splitters", "combiners", "muxes", "demuxes")
		for _, d := range backend.All() {
			norm, err := d.Normalize(multistage.Params{N: nn, K: *k, R: rr, Model: wdm.MSW, Lite: true})
			if err != nil {
				fmt.Fprintf(os.Stderr, "wdmcost: %s: %v\n", d.Name, err)
				continue
			}
			net, err := d.New(norm)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wdmcost: %s: %v\n", d.Name, err)
				continue
			}
			c := net.Cost()
			t.AddRow(d.Name, report.Int(norm.M),
				report.Int(c.Crosspoints), report.Int(c.Converters),
				report.Int(c.Splitters), report.Int(c.Combiners),
				report.Int(c.Muxes), report.Int(c.Demuxes))
		}
		t.Footnote = "costs computed from each backend's live module structure (Cost()); mesh m = N (its failure units are the ring nodes)"
		t.Fprint(os.Stdout)
	}
}

// bestSquareSplit returns the divisor r of n closest to sqrt(n) with both
// r >= 2 and n/r >= 2 — the n = r = N^(1/2) split Section 3.4 uses.
func bestSquareSplit(n int) int {
	target := math.Sqrt(float64(n))
	best, bestDist := 0, math.Inf(1)
	for r := 2; r <= n/2; r++ {
		if n%r != 0 || n/r < 2 {
			continue
		}
		if d := math.Abs(float64(r) - target); d < bestDist {
			best, bestDist = r, d
		}
	}
	return best
}
