// wdmverify runs the repository's correctness experiments from the
// command line:
//
//	wdmverify -model maw -n 3 -k 2     exhaustively route every admissible
//	                                   assignment through the gate-level
//	                                   crossbar (Figs. 4-7 nonblocking)
//	wdmverify -fig10                   the paper's Fig. 10 scenario:
//	                                   blocking at an MSW middle stage,
//	                                   resolved by the MAW-dominant build
//	wdmverify -gap                     the Theorem 1 gap adversary for
//	                                   MSDW/MAW output stages
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/capacity"
	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/wdm"
)

func main() {
	modelName := flag.String("model", "maw", "multicast model for -exhaustive: msw, msdw or maw")
	n := flag.Int("n", 3, "ports N for -exhaustive")
	k := flag.Int("k", 2, "wavelengths for -exhaustive")
	fig10 := flag.Bool("fig10", false, "run the Fig. 10 middle-stage blocking scenario")
	gap := flag.Bool("gap", false, "run the Theorem 1 gap adversary")
	flag.Parse()

	switch {
	case *fig10:
		runFig10()
	case *gap:
		runGap()
	default:
		runExhaustive(*modelName, *n, *k)
	}
}

func runExhaustive(modelName string, n, k int) {
	model, err := wdm.ParseModel(modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmverify:", err)
		os.Exit(2)
	}
	if n*k > 6 {
		fmt.Fprintf(os.Stderr, "wdmverify: N*k = %d too large for exhaustive enumeration (max 6)\n", n*k)
		os.Exit(2)
	}
	d := wdm.Dim{N: n, K: k}
	s := crossbar.New(model, d)
	count := 0
	capacity.EnumerateAssignments(model, d, false, func(a wdm.Assignment) bool {
		ids, err := s.AddAssignment(a)
		if err != nil {
			fmt.Printf("BLOCKED (should never happen): %v: %v\n", a, err)
			os.Exit(1)
		}
		if _, err := s.Verify(); err != nil {
			fmt.Printf("OPTICAL FAULT: %v: %v\n", a, err)
			os.Exit(1)
		}
		for _, id := range ids {
			if err := s.Release(id); err != nil {
				fmt.Fprintln(os.Stderr, "wdmverify:", err)
				os.Exit(1)
			}
		}
		count++
		return true
	})
	want := capacity.Any(model, int64(n), int64(k))
	fmt.Printf("%v crossbar N=%d k=%d: routed and optically verified all %d admissible assignments\n",
		model, n, k, count)
	fmt.Printf("Lemma capacity: %s — %s\n", want, matchWord(want.IsInt64() && want.Int64() == int64(count)))
}

func matchWord(ok bool) string {
	if ok {
		return "MATCH"
	}
	return "MISMATCH"
}

func runFig10() {
	fmt.Println("Fig. 10 scenario: N=4, k=2, r=2, single middle module (m=1), MAW network model.")
	fmt.Println("Connection A: (p0,λ0) -> (p3,λ0). Request B: (p1,λ0) -> (p2,λ0).")
	fmt.Println()
	base := multistage.Params{N: 4, K: 2, R: 2, M: 1, X: 1, Model: wdm.MAW}
	a := wdm.Connection{Source: wdm.PortWave{Port: 0, Wave: 0}, Dests: []wdm.PortWave{{Port: 3, Wave: 0}}}
	b := wdm.Connection{Source: wdm.PortWave{Port: 1, Wave: 0}, Dests: []wdm.PortWave{{Port: 2, Wave: 0}}}

	for _, constr := range []multistage.Construction{multistage.MSWDominant, multistage.MAWDominant} {
		p := base
		p.Construction = constr
		net, err := multistage.New(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wdmverify:", err)
			os.Exit(1)
		}
		if _, err := net.Add(a); err != nil {
			fmt.Fprintln(os.Stderr, "wdmverify: connection A failed:", err)
			os.Exit(1)
		}
		ex, exErr := net.Explain(b)
		_, err = net.Add(b)
		switch {
		case err == nil:
			fmt.Printf("%-13v: request B ROUTED (first two stages retuned λ0 -> λ1 on the shared links)\n", constr)
		case multistage.IsBlocked(err):
			fmt.Printf("%-13v: request B BLOCKED (λ0 already used on the only middle module's links)\n", constr)
			if exErr == nil {
				fmt.Println("  router's own account:")
				for _, line := range strings.Split(strings.TrimRight(ex.String(), "\n"), "\n") {
					fmt.Println("   ", line)
				}
			}
		default:
			fmt.Fprintln(os.Stderr, "wdmverify:", err)
			os.Exit(1)
		}
	}
	fmt.Println("\nAs in the paper: the MSW middle stage blocks; MAW-dominant avoids it.")
}

func runGap() {
	n, r, k := 4, 4, 4
	mPaper := multistage.Theorem1MinM(n, r)
	mFix, xFix := multistage.SufficientMinM(multistage.MSWDominant, wdm.MAW, n, r, k)
	fmt.Printf("Theorem 1 gap adversary: n=r=%d, k=%d, MAW model, MSW-dominant construction.\n", n, k)
	fmt.Printf("Paper's Theorem 1 bound: m = %d. Corrected sufficient bound: m = %d.\n\n", mPaper, mFix)

	run := func(m, x int) {
		net, err := multistage.New(multistage.Params{
			N: n * r, K: k, R: r, M: m, X: x, Model: wdm.MAW,
			Construction: multistage.MSWDominant, Lite: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wdmverify:", err)
			os.Exit(1)
		}
		// m unicasts on plane λ0 into output module 0 via distinct middles.
		routed := 0
		for i := 0; i < mPaper; i++ {
			c := wdm.Connection{
				Source: wdm.PortWave{Port: wdm.Port(i), Wave: 0},
				Dests:  []wdm.PortWave{{Port: wdm.Port(i / k), Wave: wdm.Wavelength(i % k)}},
			}
			if _, err := net.Add(c); err != nil {
				fmt.Fprintf(os.Stderr, "wdmverify: prefix connection %d failed: %v\n", i, err)
				os.Exit(1)
			}
			routed++
		}
		probe := wdm.Connection{
			Source: wdm.PortWave{Port: wdm.Port(mPaper), Wave: 0},
			Dests:  []wdm.PortWave{{Port: 3, Wave: 2}},
		}
		_, err = net.Add(probe)
		switch {
		case err == nil:
			fmt.Printf("m=%d: %d-connection adversarial prefix routed, probe ROUTED — nonblocking holds\n", m, routed)
		case multistage.IsBlocked(err):
			fmt.Printf("m=%d: %d-connection adversarial prefix routed, probe BLOCKED — bound insufficient\n", m, routed)
		default:
			fmt.Fprintln(os.Stderr, "wdmverify:", err)
			os.Exit(1)
		}
	}
	run(mPaper, multistage.Theorem1BestX(n, r))
	run(mFix, xFix)
}
