// wdmdraw emits a Graphviz DOT rendering of a crossbar switch's optical
// element graph — the structural regeneration of the paper's Figs. 5-7.
// With --route it first installs a sample multicast so active gates and
// configured converters are highlighted in the drawing.
//
// Usage:
//
//	wdmdraw -model msdw -n 3 -k 2 > fig6.dot && dot -Tsvg fig6.dot -o fig6.svg
//	wdmdraw -model maw  -n 3 -k 2 -route > fig7-live.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/wdm"
)

func main() {
	modelName := flag.String("model", "msw", "multicast model: msw, msdw, maw")
	n := flag.Int("n", 3, "ports")
	k := flag.Int("k", 2, "wavelengths")
	route := flag.Bool("route", false, "install a sample multicast before drawing")
	stage3 := flag.Bool("multistage", false, "draw a three-stage network's module graph (Fig. 8) instead of a crossbar fabric")
	r := flag.Int("r", 0, "outer module count for -multistage (0 = n/2)")
	flag.Parse()

	model, err := wdm.ParseModel(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmdraw:", err)
		os.Exit(2)
	}
	if *stage3 {
		rr := *r
		if rr == 0 {
			rr = *n / 2
		}
		net, err := multistage.New(multistage.Params{
			N: *n, K: *k, R: rr, Model: model, Lite: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wdmdraw:", err)
			os.Exit(1)
		}
		if *route {
			c := wdm.Connection{Source: wdm.PortWave{Port: 0, Wave: 0}}
			for p := 1; p < *n; p += 2 {
				c.Dests = append(c.Dests, wdm.PortWave{Port: wdm.Port(p), Wave: 0})
			}
			if _, err := net.Add(c); err != nil {
				fmt.Fprintln(os.Stderr, "wdmdraw:", err)
				os.Exit(1)
			}
		}
		if err := net.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wdmdraw:", err)
			os.Exit(1)
		}
		return
	}
	if *n < 1 || *k < 1 || *n**k > 64 {
		fmt.Fprintln(os.Stderr, "wdmdraw: need 1 <= n, 1 <= k, n*k <= 64 (drawings get unreadable beyond that)")
		os.Exit(2)
	}
	s := crossbar.New(model, wdm.Dim{N: *n, K: *k})
	title := fmt.Sprintf("%v crossbar, N=%d, k=%d (cf. paper Figs. 5-7)", model, *n, *k)

	if *route {
		c := wdm.Connection{Source: wdm.PortWave{Port: 0, Wave: 0}}
		for p := 1; p < *n; p++ {
			w := 0
			if model == wdm.MAW {
				w = p % *k
			}
			c.Dests = append(c.Dests, wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)})
		}
		if model == wdm.MSDW && *k > 1 {
			for i := range c.Dests {
				c.Dests[i].Wave = 1
			}
		}
		if len(c.Dests) == 0 {
			c.Dests = []wdm.PortWave{{Port: 0, Wave: 0}}
		}
		if _, err := s.Add(c); err != nil {
			fmt.Fprintln(os.Stderr, "wdmdraw: routing sample multicast:", err)
			os.Exit(1)
		}
		title += fmt.Sprintf(" — carrying %v", c)
	}
	if err := s.Fabric().WriteDOT(os.Stdout, title); err != nil {
		fmt.Fprintln(os.Stderr, "wdmdraw:", err)
		os.Exit(1)
	}
}
