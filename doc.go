// Package repro is a full reproduction of Yang, Wang and Qiao,
// "Nonblocking WDM Multicast Switching Networks" (ICPP 2000): the
// MSW/MSDW/MAW multicast models, exact multicast-capacity formulas, the
// crossbar and three-stage nonblocking switch constructions modelled at
// the optical-element level, the Theorem 1/2 middle-stage bounds (plus a
// corrected bound for a gap this reproduction uncovered), and a full
// experiment harness.
//
// The implementation lives under internal/ (see README.md for the
// layering); the top-level package holds the benchmark suite that
// regenerates every table and validation series, with EXPERIMENTS.md
// mapping each benchmark to its artifact in the paper.
package repro
