package core

import (
	"fmt"
	"sort"

	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/wdm"
)

// Option is one evaluated design point.
type Option struct {
	Spec Spec
	Cost crossbar.Cost
}

// Describe renders the option compactly, e.g.
// "three-stage MSW-dominant r=8 n=8 m=36 x=2: 36864 crosspoints".
func (o Option) Describe() string {
	if o.Spec.Architecture == Crossbar {
		return fmt.Sprintf("crossbar %v N=%d k=%d: %d crosspoints, %d converters",
			o.Spec.Model, o.Spec.N, o.Spec.K, o.Cost.Crosspoints, o.Cost.Converters)
	}
	return fmt.Sprintf("three-stage %v %v r=%d n=%d m=%d x=%d: %d crosspoints, %d converters",
		o.Spec.Model, o.Spec.Construction, o.Spec.R, o.Spec.N/o.Spec.R, o.Spec.M, o.Spec.X,
		o.Cost.Crosspoints, o.Cost.Converters)
}

// Weights converts a Cost to a comparable scalar. The paper counts
// crosspoints and converters separately; a designer must weigh them. The
// default charges a converter as heavily as `ConverterWeight` crosspoints
// (converters are the expensive active devices — Section 2.1).
type Weights struct {
	Crosspoint float64
	Converter  float64
}

// DefaultWeights reflect the paper's qualitative cost ordering: splitters
// and combiners are glass (free), SOA gates cost one unit, converters are
// markedly more expensive.
var DefaultWeights = Weights{Crosspoint: 1, Converter: 10}

// Scalar collapses a cost to one number under the weights.
func (w Weights) Scalar(c crossbar.Cost) float64 {
	return w.Crosspoint*float64(c.Crosspoints) + w.Converter*float64(c.Converters)
}

// Design enumerates nonblocking configurations of an N x N k-wavelength
// network under the model — the crossbar plus every three-stage
// factorization N = n*r (both constructions, theorem-minimal m) — and
// returns them sorted by weighted cost, cheapest first.
func Design(n, k int, model wdm.Model, w Weights) ([]Option, error) {
	if n <= 0 || k <= 0 {
		return nil, fmt.Errorf("core: N=%d k=%d must be positive", n, k)
	}
	var opts []Option
	xbar := Spec{N: n, K: k, Model: model, Architecture: Crossbar}
	opts = append(opts, Option{
		Spec: xbar,
		Cost: crossbar.CostFormula(model, wdm.Shape{In: n, Out: n, K: k}),
	})
	for r := 2; r < n; r++ {
		if n%r != 0 {
			continue
		}
		nn := n / r
		if nn < 2 {
			continue
		}
		for _, constr := range []multistage.Construction{multistage.MSWDominant, multistage.MAWDominant} {
			m, x := multistage.SufficientMinM(constr, model, nn, r, k)
			if m >= r*nn { // degenerate: more middles than the crossbar would justify
				// Still evaluated — cost decides.
			}
			p := multistage.Params{N: n, K: k, R: r, M: m, X: x, Model: model, Construction: constr}
			cost, err := multistage.CostFormula(p)
			if err != nil {
				return nil, err
			}
			opts = append(opts, Option{
				Spec: Spec{
					N: n, K: k, Model: model, Architecture: ThreeStage,
					R: r, M: m, X: x, Construction: constr,
				},
				Cost: cost,
			})
		}
	}
	sort.SliceStable(opts, func(i, j int) bool {
		return w.Scalar(opts[i].Cost) < w.Scalar(opts[j].Cost)
	})
	return opts, nil
}

// Best returns the cheapest nonblocking configuration.
func Best(n, k int, model wdm.Model, w Weights) (Option, error) {
	opts, err := Design(n, k, model, w)
	if err != nil {
		return Option{}, err
	}
	return opts[0], nil
}
