// Package core is the public face of the library: it builds any of the
// paper's nonblocking WDM multicast switching networks behind one Network
// interface and selects cost-minimal configurations.
//
// The paper's design space has three axes:
//
//   - multicast model: MSW, MSDW or MAW (what wavelength freedom
//     connections get — Section 2.1);
//   - architecture: a single crossbar (Section 2.3) or a three-stage
//     network (Section 3);
//   - for three-stage networks, the construction: MSW-dominant or
//     MAW-dominant (Section 3.1), plus the module split r and middle
//     count m.
//
// core.New builds one point of that space; core.Design searches it for
// the cheapest nonblocking configuration of a requested size and model.
package core

import (
	"fmt"
	"math/big"

	"repro/internal/capacity"
	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/wdm"
)

// Architecture selects between the paper's two families of designs.
type Architecture int

const (
	// Crossbar is the single-stage design of Section 2.3 (Figs. 4-7).
	Crossbar Architecture = iota
	// ThreeStage is the multistage design of Section 3 (Fig. 8).
	ThreeStage
)

func (a Architecture) String() string {
	switch a {
	case Crossbar:
		return "crossbar"
	case ThreeStage:
		return "three-stage"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Spec describes a network to build.
type Spec struct {
	N, K         int
	Model        wdm.Model
	Architecture Architecture

	// Three-stage parameters (ignored for Crossbar). R must divide N;
	// zero M and X default to the sufficient nonblocking bound; Depth 0
	// or 3 is the classic three-stage network, 5/7/... recurse.
	R, M, X      int
	Depth        int
	Construction multistage.Construction
	Strategy     multistage.Strategy
	WavePick     multistage.WavePick

	// Lite builds without gate-level fabrics (no optical verification,
	// same routing behaviour) — for large sweeps.
	Lite bool
}

// Network is the uniform interface over both architectures.
type Network interface {
	// Add routes a multicast connection, returning its id.
	Add(c wdm.Connection) (int, error)
	// Release tears down a connection by id.
	Release(id int) error
	// Verify self-checks the network's current state end to end.
	Verify() error
	// Cost reports the hardware counts.
	Cost() crossbar.Cost
	// Shape reports the external N x N k-wavelength shape.
	Shape() wdm.Shape
	// Model reports the multicast model.
	Model() wdm.Model
	// Len reports the number of live connections.
	Len() int
	// Reset releases all live connections.
	Reset()
}

// New builds the network described by the spec.
func New(s Spec) (Network, error) {
	if s.N <= 0 || s.K <= 0 {
		return nil, fmt.Errorf("core: N=%d k=%d must be positive", s.N, s.K)
	}
	switch s.Architecture {
	case Crossbar:
		sh := wdm.Shape{In: s.N, Out: s.N, K: s.K}
		if s.Lite {
			return &crossbarNet{crossbar.NewLite(s.Model, sh)}, nil
		}
		return &crossbarNet{crossbar.NewShape(s.Model, sh)}, nil
	case ThreeStage:
		net, err := multistage.New(multistage.Params{
			N: s.N, K: s.K, R: s.R, M: s.M, X: s.X, Depth: s.Depth,
			Model: s.Model, Construction: s.Construction,
			Strategy: s.Strategy, WavePick: s.WavePick, Lite: s.Lite,
		})
		if err != nil {
			return nil, err
		}
		return &multistageNet{net}, nil
	default:
		return nil, fmt.Errorf("core: unknown architecture %v", s.Architecture)
	}
}

// crossbarNet adapts crossbar.Switch to the Network interface.
type crossbarNet struct{ *crossbar.Switch }

func (c *crossbarNet) Verify() error {
	if c.Switch.Lite() {
		return nil // nothing to check optically; bookkeeping is exact
	}
	_, err := c.Switch.Verify()
	return err
}

// multistageNet adapts multistage.Network.
type multistageNet struct{ *multistage.Network }

func (m *multistageNet) Model() wdm.Model { return m.Network.Params().Model }

// IsBlocked reports whether an Add error is a blocking event (only
// three-stage networks can block; crossbars never do).
func IsBlocked(err error) bool { return multistage.IsBlocked(err) }

// FullCapacity and AnyCapacity return the network's multicast capacity
// under its model (Lemmas 1-3). Capacity depends only on N, k and the
// model — a nonblocking multistage network realizes the same assignments
// as the crossbar (Section 3.1).
func FullCapacity(s Spec) *big.Int { return capacity.Full(s.Model, int64(s.N), int64(s.K)) }
func AnyCapacity(s Spec) *big.Int  { return capacity.Any(s.Model, int64(s.N), int64(s.K)) }
