package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/wdm"
)

// One interface over both architectures: a crossbar and a three-stage
// network carry the same connection.
func ExampleNew() {
	for _, arch := range []core.Architecture{core.Crossbar, core.ThreeStage} {
		net, err := core.New(core.Spec{
			N: 8, K: 2, Model: wdm.MAW, Architecture: arch, R: 4,
		})
		if err != nil {
			panic(err)
		}
		_, err = net.Add(wdm.Connection{
			Source: wdm.PortWave{Port: 0, Wave: 0},
			Dests:  []wdm.PortWave{{Port: 3, Wave: 1}, {Port: 7, Wave: 0}},
		})
		fmt.Printf("%-11v routed=%v verified=%v crosspoints=%d\n",
			arch, err == nil, net.Verify() == nil, net.Cost().Crosspoints)
	}
	// Output:
	// crossbar    routed=true verified=true crosspoints=256
	// three-stage routed=true verified=true crosspoints=1120
}

// Design searches the whole configuration space and returns the cheapest
// nonblocking option first.
func ExampleBest() {
	best, err := core.Best(1024, 2, wdm.MSW, core.DefaultWeights)
	if err != nil {
		panic(err)
	}
	fmt.Println(best.Describe())
	// Output: three-stage MSW MSW-dominant r=32 n=32 m=192 x=3: 1179648 crosspoints, 0 converters
}
