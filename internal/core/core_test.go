package core

import (
	"strings"
	"testing"

	"repro/internal/wdm"
)

func pw(p, w int) wdm.PortWave {
	return wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
}

func TestNewCrossbarAndThreeStage(t *testing.T) {
	for _, arch := range []Architecture{Crossbar, ThreeStage} {
		for _, m := range wdm.Models {
			spec := Spec{N: 4, K: 2, Model: m, Architecture: arch, R: 2}
			net, err := New(spec)
			if err != nil {
				t.Fatalf("%v/%v: %v", arch, m, err)
			}
			if got := net.Shape(); got.In != 4 || got.K != 2 {
				t.Errorf("%v/%v: shape %+v", arch, m, got)
			}
			if net.Model() != m {
				t.Errorf("%v: model %v", arch, net.Model())
			}
			c := wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(3, 0)}}
			id, err := net.Add(c)
			if err != nil {
				t.Fatalf("%v/%v: add: %v", arch, m, err)
			}
			if err := net.Verify(); err != nil {
				t.Fatalf("%v/%v: verify: %v", arch, m, err)
			}
			if err := net.Release(id); err != nil {
				t.Fatalf("%v/%v: release: %v", arch, m, err)
			}
			if net.Len() != 0 {
				t.Errorf("%v/%v: %d live after release", arch, m, net.Len())
			}
		}
	}
}

func TestNewRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{N: 0, K: 1, Model: wdm.MSW},
		{N: 4, K: 0, Model: wdm.MSW},
		{N: 4, K: 1, Model: wdm.MSW, Architecture: Architecture(7)},
		{N: 4, K: 1, Model: wdm.MSW, Architecture: ThreeStage, R: 3},
	}
	for _, s := range bad {
		if _, err := New(s); err == nil {
			t.Errorf("New accepted %+v", s)
		}
	}
}

func TestLiteNetworksVerifyTrivially(t *testing.T) {
	net, err := New(Spec{N: 4, K: 1, Model: wdm.MSW, Architecture: Crossbar, Lite: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(1, 0)}}); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Errorf("lite crossbar Verify: %v", err)
	}
}

func TestResetThroughInterface(t *testing.T) {
	net, err := New(Spec{N: 4, K: 2, Model: wdm.MAW, Architecture: ThreeStage, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := net.Add(wdm.Connection{Source: pw(i, 0), Dests: []wdm.PortWave{pw(3-i, 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	net.Reset()
	if net.Len() != 0 {
		t.Errorf("%d live after Reset", net.Len())
	}
}

func TestFiveStageThroughCore(t *testing.T) {
	net, err := New(Spec{
		N: 16, K: 2, Model: wdm.MSW, Architecture: ThreeStage,
		R: 4, Depth: 5, Lite: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Add(wdm.Connection{
		Source: wdm.PortWave{Port: 0, Wave: 0},
		Dests:  []wdm.PortWave{{Port: 10, Wave: 0}, {Port: 15, Wave: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityHelpers(t *testing.T) {
	s := Spec{N: 3, K: 2, Model: wdm.MAW}
	if got := FullCapacity(s); got.String() != "27000" {
		t.Errorf("FullCapacity = %s, want 27000", got)
	}
	if got := AnyCapacity(s); got.String() != "79507" {
		t.Errorf("AnyCapacity = %s, want 79507", got)
	}
}

func TestDesignOrdersByCost(t *testing.T) {
	opts, err := Design(1024, 2, wdm.MSW, DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) < 3 {
		t.Fatalf("only %d options for N=1024", len(opts))
	}
	for i := 1; i < len(opts); i++ {
		if DefaultWeights.Scalar(opts[i-1].Cost) > DefaultWeights.Scalar(opts[i].Cost) {
			t.Errorf("options out of order at %d", i)
		}
	}
	// By N=1024 a three-stage design must beat the crossbar (Table 2's
	// asymptotic point; the exact crossover sits near N=256 for k=2).
	best := opts[0]
	if best.Spec.Architecture != ThreeStage {
		t.Errorf("best at N=1024 is %v, expected three-stage", best.Describe())
	}
	if !strings.Contains(best.Describe(), "three-stage") {
		t.Errorf("Describe: %q", best.Describe())
	}
}

func TestDesignSmallNPrefersCrossbar(t *testing.T) {
	// For tiny N the crossbar wins: m middle modules dwarf the kN^2 cost.
	best, err := Best(4, 2, wdm.MSW, DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	if best.Spec.Architecture != Crossbar {
		t.Errorf("best at N=4 is %v, expected crossbar", best.Describe())
	}
}

func TestDesignedNetworksAreBuildable(t *testing.T) {
	opts, err := Design(16, 2, wdm.MAW, DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range opts {
		spec := o.Spec
		spec.Lite = true
		net, err := New(spec)
		if err != nil {
			t.Errorf("option %s not buildable: %v", o.Describe(), err)
			continue
		}
		if got := net.Cost(); got.Crosspoints != o.Cost.Crosspoints {
			t.Errorf("option %s: built crosspoints %d != advertised %d",
				o.Describe(), got.Crosspoints, o.Cost.Crosspoints)
		}
	}
}

func TestDesignRejectsBadSize(t *testing.T) {
	if _, err := Design(0, 1, wdm.MSW, DefaultWeights); err == nil {
		t.Error("Design accepted N=0")
	}
}

func TestIsBlockedPassthrough(t *testing.T) {
	net, err := New(Spec{N: 4, K: 1, Model: wdm.MSW, Architecture: ThreeStage, R: 2, M: 1, X: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(2, 0)}}); err != nil {
		t.Fatal(err)
	}
	_, err = net.Add(wdm.Connection{Source: pw(1, 0), Dests: []wdm.PortWave{pw(3, 0)}})
	if !IsBlocked(err) {
		t.Errorf("want blocked, got %v", err)
	}
}
