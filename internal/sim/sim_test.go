package sim

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/wdm"
)

func TestCrossbarNeverBlocks(t *testing.T) {
	// The strictly nonblocking crossbars must route every admissible
	// dynamic request: blocked count must be zero for every model.
	d := wdm.Dim{N: 6, K: 2}
	for _, m := range wdm.Models {
		s := crossbar.NewLite(m, d.Shape())
		res, err := Run(s, Config{
			Seed: 11, Model: m, Dim: d, Requests: 3000, Load: 8, MaxFanout: 4,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Blocked != 0 {
			t.Errorf("%v: crossbar blocked %d requests", m, res.Blocked)
		}
		if res.Routed == 0 {
			t.Errorf("%v: nothing routed", m)
		}
	}
}

func TestMultistageAtBoundNeverBlocks(t *testing.T) {
	// At the sufficient middle-stage count, dynamic traffic of any mix
	// must never block, across constructions and models and seeds.
	for _, constr := range []multistage.Construction{multistage.MSWDominant, multistage.MAWDominant} {
		for _, model := range wdm.Models {
			p := multistage.Params{
				N: 16, K: 2, R: 4, Model: model, Construction: constr, Lite: true,
			}
			for seed := int64(0); seed < 3; seed++ {
				net, err := multistage.New(p)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(net, Config{
					Seed: seed, Model: model, Dim: wdm.Dim{N: 16, K: 2},
					Requests: 2500, Load: 12, MaxFanout: 8,
					IsBlocked: multistage.IsBlocked,
				})
				if err != nil {
					t.Fatalf("%v/%v seed %d: %v", constr, model, seed, err)
				}
				if res.Blocked != 0 {
					t.Errorf("%v/%v seed %d: %d blocked at sufficient bound (%s)",
						constr, model, seed, res.Blocked, res)
				}
			}
		}
	}
}

func TestUndersizedMiddleStageBlocks(t *testing.T) {
	// With m = 1 the network must visibly block under load — the sanity
	// check that the simulator can detect blocking at all.
	net, err := multistage.New(multistage.Params{
		N: 16, K: 2, R: 4, M: 1, X: 1, Model: wdm.MSW, Lite: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, Config{
		Seed: 3, Model: wdm.MSW, Dim: wdm.Dim{N: 16, K: 2},
		Requests: 2000, Load: 12, MaxFanout: 8,
		IsBlocked: multistage.IsBlocked,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocked == 0 {
		t.Error("m=1 network never blocked under heavy load")
	}
}

func TestVerifyEveryCatchesNothingOnHealthyNetwork(t *testing.T) {
	net, err := multistage.New(multistage.Params{
		N: 8, K: 2, R: 4, Model: wdm.MAW, Construction: multistage.MAWDominant,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, Config{
		Seed: 5, Model: wdm.MAW, Dim: wdm.Dim{N: 8, K: 2},
		Requests: 400, Load: 6, MaxFanout: 4,
		IsBlocked: multistage.IsBlocked, VerifyEvery: 50,
	})
	if err != nil {
		t.Fatalf("verified run failed: %v (%s)", err, res)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	s := crossbar.NewLite(wdm.MSW, wdm.Shape{In: 2, Out: 2, K: 1})
	if _, err := Run(s, Config{Requests: 0, Dim: wdm.Dim{N: 2, K: 1}}); err == nil {
		t.Error("Requests=0 accepted")
	}
	if _, err := Run(s, Config{Requests: 10, Dim: wdm.Dim{N: 0, K: 1}}); err == nil {
		t.Error("bad dim accepted")
	}
}

func TestResultAccounting(t *testing.T) {
	d := wdm.Dim{N: 4, K: 1}
	s := crossbar.NewLite(wdm.MSW, d.Shape())
	res, err := Run(s, Config{Seed: 9, Model: wdm.MSW, Dim: d, Requests: 500, Load: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != res.Routed+res.Blocked {
		t.Errorf("offered %d != routed %d + blocked %d", res.Offered, res.Routed, res.Blocked)
	}
	if res.Offered+res.Starved != 500 {
		t.Errorf("offered %d + starved %d != 500 arrivals", res.Offered, res.Starved)
	}
	if res.MeanFanout < 1 {
		t.Errorf("mean fanout %.2f below 1", res.MeanFanout)
	}
	if !strings.Contains(res.String(), "P_block") {
		t.Errorf("Result.String() = %q", res.String())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	d := wdm.Dim{N: 6, K: 2}
	run := func() Result {
		s := crossbar.NewLite(wdm.MAW, d.Shape())
		res, err := Run(s, Config{Seed: 77, Model: wdm.MAW, Dim: d, Requests: 800, Load: 5, MaxFanout: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results: %v vs %v", a, b)
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	d := wdm.Dim{N: 6, K: 2}
	mk := func(warmup int) Result {
		s := crossbar.NewLite(wdm.MAW, d.Shape())
		res, err := Run(s, Config{
			Seed: 55, Model: wdm.MAW, Dim: d,
			Requests: 600, Load: 6, MaxFanout: 3, Warmup: warmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := mk(0)
	trimmed := mk(200)
	if trimmed.Offered+trimmed.Starved != 400 {
		t.Errorf("warmup run measured %d arrivals, want 400", trimmed.Offered+trimmed.Starved)
	}
	if trimmed.Offered >= full.Offered {
		t.Errorf("warmup did not shrink the measured window: %d vs %d", trimmed.Offered, full.Offered)
	}
	// The traffic itself is identical (same seed): the warmup run's
	// network still carried the early connections.
	if trimmed.MaxConcurrent != full.MaxConcurrent {
		t.Errorf("warmup changed the dynamics: peak %d vs %d", trimmed.MaxConcurrent, full.MaxConcurrent)
	}
}

func TestFanoutStratification(t *testing.T) {
	// On an undersized network, larger multicasts must block at least as
	// often as unicasts (they need more middle-stage coverage), and the
	// strata must sum to the totals.
	net, err := multistage.New(multistage.Params{
		N: 16, K: 2, R: 4, M: 3, X: 2, Model: wdm.MSW, Lite: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, Config{
		Seed: 8, Model: wdm.MSW, Dim: wdm.Dim{N: 16, K: 2},
		Requests: 3000, Load: 10, MaxFanout: 8,
		IsBlocked: multistage.IsBlocked,
	})
	if err != nil {
		t.Fatal(err)
	}
	var off, blk int
	for _, s := range res.ByFanout {
		off += s.Offered
		blk += s.Blocked
	}
	if off != res.Offered || blk != res.Blocked {
		t.Errorf("strata sum to (%d, %d), totals are (%d, %d)", off, blk, res.Offered, res.Blocked)
	}
	p1 := res.BlockingProbabilityAtFanout(1)
	if s := res.ByFanout[1]; s.Offered < 100 {
		t.Fatalf("too few unicasts (%d) for a meaningful comparison", s.Offered)
	}
	// Compare unicast blocking against the widest well-sampled stratum.
	for f := 8; f >= 4; f-- {
		if s := res.ByFanout[f]; s.Offered >= 30 {
			if pf := res.BlockingProbabilityAtFanout(f); pf < p1 {
				t.Errorf("fanout-%d blocking %.3f below unicast %.3f", f, pf, p1)
			}
			return
		}
	}
	t.Skip("no wide stratum sampled enough")
}

func TestSweepMBlockingMonotoneTrend(t *testing.T) {
	// Blocking probability should fall (weakly) as m grows, hitting zero
	// at the sufficient bound.
	base := multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true}
	ms := DefaultMs(multistage.MSWDominant, base)
	sort.Ints(ms)
	points, err := SweepM(base, ms, Config{Seed: 13, Requests: 1500, Load: 10, MaxFanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 4 {
		t.Fatalf("sweep produced %d points", len(points))
	}
	last := points[len(points)-1]
	if last.Result.Blocked != 0 {
		t.Errorf("largest m=%d still blocks: %s", last.M, last.Result)
	}
	first := points[0]
	if first.Result.Blocked == 0 {
		t.Errorf("smallest m=%d never blocks — sweep range uninformative", first.M)
	}
	for _, pt := range points {
		if pt.AtBound && pt.Result.Blocked != 0 {
			t.Errorf("m at sufficient bound (%d) blocked %d requests", pt.M, pt.Result.Blocked)
		}
	}
}
