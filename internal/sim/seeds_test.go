package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/multistage"
	"repro/internal/wdm"
)

func mkUndersized() (Network, error) {
	return multistage.New(multistage.Params{
		N: 16, K: 2, R: 4, M: 3, X: 2, Model: wdm.MSW, Lite: true,
	})
}

func TestRunSeedsAggregates(t *testing.T) {
	cfg := Config{
		Model: wdm.MSW, Dim: wdm.Dim{N: 16, K: 2},
		Requests: 800, Load: 10, MaxFanout: 8,
		IsBlocked: multistage.IsBlocked,
	}
	agg, err := RunSeeds(mkUndersized, cfg, []int64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Runs) != 4 {
		t.Fatalf("%d runs", len(agg.Runs))
	}
	if agg.MeanP <= 0 {
		t.Error("undersized network shows zero mean blocking")
	}
	if agg.MaxP < agg.MeanP {
		t.Error("max below mean")
	}
	totalBlocked := 0
	for _, r := range agg.Runs {
		totalBlocked += r.Blocked
	}
	if totalBlocked != agg.Blocked {
		t.Errorf("Blocked = %d, runs sum to %d", agg.Blocked, totalBlocked)
	}
	if !strings.Contains(agg.String(), "P_block") {
		t.Errorf("String() = %q", agg.String())
	}
}

func TestRunSeedsMatchesSerialRun(t *testing.T) {
	cfg := Config{
		Model: wdm.MSW, Dim: wdm.Dim{N: 16, K: 2},
		Requests: 500, Load: 8, MaxFanout: 4,
		IsBlocked: multistage.IsBlocked,
	}
	agg, err := RunSeeds(mkUndersized, cfg, []int64{7})
	if err != nil {
		t.Fatal(err)
	}
	net, err := mkUndersized()
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Seed = 7
	serial, err := Run(net, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agg.Runs[0], serial) {
		t.Errorf("concurrent run differs from serial:\n%+v\nvs\n%+v", agg.Runs[0], serial)
	}
}

func TestRunSeedsPropagatesErrors(t *testing.T) {
	if _, err := RunSeeds(mkUndersized, Config{Requests: 10, Dim: wdm.Dim{N: 16, K: 2}}, nil); err == nil {
		t.Error("no seeds accepted")
	}
	failing := func() (Network, error) { return nil, errors.New("boom") }
	if _, err := RunSeeds(failing, Config{Requests: 10, Dim: wdm.Dim{N: 16, K: 2}}, []int64{1}); err == nil {
		t.Error("factory error swallowed")
	}
}
