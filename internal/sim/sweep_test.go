package sim

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/multistage"
	"repro/internal/wdm"
)

func TestSweepMParallelMatchesSerial(t *testing.T) {
	base := multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true}
	ms := []int{1, 3, 6, 13}
	cfg := Config{Seed: 21, Requests: 800, Load: 10, MaxFanout: 8}
	serial, err := SweepM(base, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepMParallel(base, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("point %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestSweepMParallelPropagatesErrors(t *testing.T) {
	base := multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true}
	if _, err := SweepMParallel(base, []int{-5}, Config{Requests: 10}); err == nil {
		t.Error("invalid m accepted")
	}
	badBase := multistage.Params{N: 15, K: 2, R: 4, Model: wdm.MSW}
	if _, err := SweepMParallel(badBase, []int{3}, Config{Requests: 10}); err == nil {
		t.Error("invalid base params accepted")
	}
}

func TestSweepLoad(t *testing.T) {
	loads := []float64{2, 6, 12, 20}
	cfg := Config{Seed: 4, Requests: 1200, MaxFanout: 8}

	// Undersized: blocking must rise with load.
	under := multistage.Params{N: 16, K: 2, R: 4, M: 3, X: 2, Model: wdm.MSW, Lite: true}
	pts, err := SweepLoad(under, loads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Result.BlockingProbability() >= pts[len(pts)-1].Result.BlockingProbability() {
		t.Errorf("blocking did not rise with load: %.4f .. %.4f",
			pts[0].Result.BlockingProbability(), pts[len(pts)-1].Result.BlockingProbability())
	}

	// At the bound: zero at every load (nonblocking is load-independent).
	bound := multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true}
	pts, err = SweepLoad(bound, loads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Result.Blocked != 0 {
			t.Errorf("load %.1f: %d blocked at the sufficient bound", pt.Load, pt.Result.Blocked)
		}
	}
}

func TestFindMinBlockFreeM(t *testing.T) {
	base := multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true}
	cfg := Config{Requests: 800, Load: 10, MaxFanout: 8}
	m, err := FindMinBlockFreeM(base, cfg, []int64{1, 2}, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	if m < 2 || m > 13 {
		t.Errorf("empirical min m = %d, expected within (1, 13]", m)
	}
	// m=1 must block under this load (sanity that the scan started above 1).
	if m == 1 {
		t.Error("m=1 reported block-free under heavy load")
	}
}

func TestDefaultMsCoverRange(t *testing.T) {
	base := multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW}
	ms := DefaultMs(multistage.MSWDominant, base)
	if len(ms) < 4 {
		t.Fatalf("only %d sweep points", len(ms))
	}
	sort.Ints(ms)
	suffM, _ := multistage.SufficientMinM(multistage.MSWDominant, wdm.MSW, 4, 4, 2)
	found := false
	for _, m := range ms {
		if m == suffM {
			found = true
		}
		if m < 1 {
			t.Errorf("sweep point %d below 1", m)
		}
	}
	if !found {
		t.Error("sweep range misses the sufficient bound")
	}
	if ms[0] >= suffM {
		t.Error("sweep range has no undersized points")
	}
}
