package sim

import (
	"fmt"
	"sync"

	"repro/internal/multistage"
	"repro/internal/wdm"
)

// SweepPoint is one (m, blocking probability) sample of a middle-stage
// sweep.
type SweepPoint struct {
	M        int
	Result   Result
	AtBound  bool // m equals the sufficient bound
	PaperMin int  // the paper's stated theorem bound for reference
}

// SweepM measures blocking probability as a function of the middle-stage
// module count m for a three-stage network with the given base
// parameters, holding everything else fixed. ms lists the m values to
// probe. The networks are built Lite (the sweep is about routing, not
// optics). This regenerates the repository's blocking-vs-m series — the
// executable counterpart of Theorems 1 and 2.
func SweepM(base multistage.Params, ms []int, cfg Config) ([]SweepPoint, error) {
	norm, err := base.Normalize()
	if err != nil {
		return nil, err
	}
	n := norm.N / norm.R
	suffM, _ := multistage.SufficientMinM(norm.Construction, norm.Model, n, norm.R, norm.K)
	paperM, _ := multistage.PaperMinM(norm.Construction, n, norm.R, norm.K)

	cfg.Dim.N = norm.N
	cfg.Dim.K = norm.K
	cfg.Model = norm.Model
	if cfg.IsBlocked == nil {
		cfg.IsBlocked = multistage.IsBlocked
	}

	var points []SweepPoint
	for _, m := range ms {
		p := base
		p.M = m
		p.Lite = true
		net, err := multistage.New(p)
		if err != nil {
			return nil, fmt.Errorf("sim: building network with m=%d: %w", m, err)
		}
		res, err := Run(net, cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: m=%d: %w", m, err)
		}
		points = append(points, SweepPoint{M: m, Result: res, AtBound: m == suffM, PaperMin: paperM})
	}
	return points, nil
}

// SweepMParallel runs SweepM's points concurrently, one goroutine per m
// value (each point owns its network and PRNG, so points are fully
// independent). Results are identical to the serial sweep — the PRNG is
// seeded per point, not shared — and arrive in ms order.
func SweepMParallel(base multistage.Params, ms []int, cfg Config) ([]SweepPoint, error) {
	norm, err := base.Normalize()
	if err != nil {
		return nil, err
	}
	n := norm.N / norm.R
	suffM, _ := multistage.SufficientMinM(norm.Construction, norm.Model, n, norm.R, norm.K)
	paperM, _ := multistage.PaperMinM(norm.Construction, n, norm.R, norm.K)

	cfg.Dim.N = norm.N
	cfg.Dim.K = norm.K
	cfg.Model = norm.Model
	if cfg.IsBlocked == nil {
		cfg.IsBlocked = multistage.IsBlocked
	}

	points := make([]SweepPoint, len(ms))
	errs := make([]error, len(ms))
	var wg sync.WaitGroup
	for i, m := range ms {
		wg.Add(1)
		go func(i, m int) {
			defer wg.Done()
			p := base
			p.M = m
			p.Lite = true
			net, err := multistage.New(p)
			if err != nil {
				errs[i] = fmt.Errorf("sim: building network with m=%d: %w", m, err)
				return
			}
			res, err := Run(net, cfg)
			if err != nil {
				errs[i] = fmt.Errorf("sim: m=%d: %w", m, err)
				return
			}
			points[i] = SweepPoint{M: m, Result: res, AtBound: m == suffM, PaperMin: paperM}
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// LoadPoint is one (load, blocking probability) sample.
type LoadPoint struct {
	Load   float64
	Result Result
}

// SweepLoad measures blocking probability as a function of offered load
// at a fixed middle-stage count — the other axis of the blocking
// surface. Networks above the sufficient bound must stay at zero for
// every load (nonblocking is load-independent); undersized networks show
// the classic knee.
func SweepLoad(base multistage.Params, loads []float64, cfg Config) ([]LoadPoint, error) {
	norm, err := base.Normalize()
	if err != nil {
		return nil, err
	}
	cfg.Dim = wdm.Dim{N: norm.N, K: norm.K}
	cfg.Model = norm.Model
	if cfg.IsBlocked == nil {
		cfg.IsBlocked = multistage.IsBlocked
	}
	var points []LoadPoint
	for _, load := range loads {
		p := base
		p.Lite = true
		net, err := multistage.New(p)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Load = load
		res, err := Run(net, c)
		if err != nil {
			return nil, fmt.Errorf("sim: load %.2f: %w", load, err)
		}
		points = append(points, LoadPoint{Load: load, Result: res})
	}
	return points, nil
}

// FindMinBlockFreeM returns the smallest middle-stage count m in
// [lo, hi] for which the network built from base (with that m) routes
// every request of the configured dynamic workload across all the given
// seeds without blocking, or hi+1 if none qualifies. This is the
// empirical analogue of the theorems' minimal m, used by the ablation
// benchmarks to compare routing strategies and link semantics.
//
// Blocking is monotone in m only statistically, so the scan is linear
// from lo upward rather than a binary search.
func FindMinBlockFreeM(base multistage.Params, cfg Config, seeds []int64, lo, hi int) (int, error) {
	norm, err := base.Normalize()
	if err != nil {
		return 0, err
	}
	cfg.Dim = wdm.Dim{N: norm.N, K: norm.K}
	cfg.Model = norm.Model
	if cfg.IsBlocked == nil {
		cfg.IsBlocked = multistage.IsBlocked
	}
	for m := lo; m <= hi; m++ {
		ok := true
		for _, seed := range seeds {
			p := base
			p.M = m
			p.Lite = true
			net, err := multistage.New(p)
			if err != nil {
				return 0, fmt.Errorf("sim: m=%d: %w", m, err)
			}
			c := cfg
			c.Seed = seed
			res, err := Run(net, c)
			if err != nil {
				return 0, fmt.Errorf("sim: m=%d seed=%d: %w", m, seed, err)
			}
			if res.Blocked > 0 {
				ok = false
				break
			}
		}
		if ok {
			return m, nil
		}
	}
	return hi + 1, nil
}

// DefaultMs builds a reasonable sweep range around the sufficient bound:
// a few heavily undersized points, the paper bound, the sufficient bound,
// and one above.
func DefaultMs(construction multistage.Construction, model_ multistage.Params) []int {
	norm, err := model_.Normalize()
	if err != nil {
		return nil
	}
	n := norm.N / norm.R
	suffM, _ := multistage.SufficientMinM(construction, norm.Model, n, norm.R, norm.K)
	paperM, _ := multistage.PaperMinM(construction, n, norm.R, norm.K)
	set := map[int]bool{}
	var ms []int
	add := func(v int) {
		if v >= 1 && !set[v] {
			set[v] = true
			ms = append(ms, v)
		}
	}
	add(1)
	add(suffM / 4)
	add(suffM / 2)
	add(3 * suffM / 4)
	add(paperM)
	add(suffM)
	add(suffM + suffM/4)
	return ms
}
