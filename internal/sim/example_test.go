package sim_test

import (
	"fmt"

	"repro/internal/multistage"
	"repro/internal/sim"
	"repro/internal/wdm"
)

// Dynamic traffic against a deliberately undersized middle stage blocks;
// the same workload at the sufficient bound does not — Theorems 1/2 as a
// simulation.
func ExampleRun() {
	for _, m := range []int{2, 13} {
		net, err := multistage.New(multistage.Params{
			N: 16, K: 2, R: 4, M: m, X: 2, Model: wdm.MSW, Lite: true,
		})
		if err != nil {
			panic(err)
		}
		res, err := sim.Run(net, sim.Config{
			Seed: 42, Model: wdm.MSW, Dim: wdm.Dim{N: 16, K: 2},
			Requests: 2000, Load: 10, MaxFanout: 8,
			IsBlocked: multistage.IsBlocked,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("m=%2d: blocked %v\n", m, res.Blocked > 0)
	}
	// Output:
	// m= 2: blocked true
	// m=13: blocked false
}
