// Package sim runs dynamic connection-level simulations against WDM
// multicast switching networks: multicast requests arrive as a Poisson
// process, hold for exponentially distributed times, and depart. The
// simulator generates only admissible requests (sources and destinations
// drawn from currently free slots), so every Add failure is a genuine
// blocking event.
//
// The paper proves its networks nonblocking analytically; these
// simulations are the executable counterpart: at or above the theorem
// bounds the measured blocking probability must be exactly zero for every
// seed, while undersized middle stages exhibit measurable blocking. The
// blocking-vs-m sweep is the repository's stand-in "figure" for the
// paper's purely analytical Section 3 (see EXPERIMENTS.md).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/wdm"
	"repro/internal/workload"
)

// Network is the device under test. Both *crossbar.Switch and
// *multistage.Network satisfy it.
type Network interface {
	Add(wdm.Connection) (int, error)
	Release(int) error
}

// Verifier is optionally implemented by networks that can self-check
// (multistage.Network.Verify); when available and Config.VerifyEvery > 0
// the simulator periodically validates the network state.
type Verifier interface {
	Verify() error
}

// Repacker is optionally implemented by networks that support
// rearrangeable operation (multistage.Network.AddWithRepack).
type Repacker interface {
	AddWithRepack(wdm.Connection) (int, bool, error)
}

// Config parameterizes one simulation run.
type Config struct {
	Seed  int64
	Model wdm.Model
	Dim   wdm.Dim

	// Requests is the number of connection arrivals to simulate.
	Requests int
	// Load is the offered load in Erlangs per output slot-ish terms:
	// arrival rate = Load, mean hold time = 1. Higher load keeps more
	// slots busy when a request arrives.
	Load float64
	// MaxFanout bounds each request's fanout (destination port count);
	// 0 means up to N.
	MaxFanout int

	// IsBlocked classifies Add errors: true = blocking (counted), false =
	// protocol error (aborts the run). Defaults to "nothing blocks", the
	// right setting for strictly nonblocking crossbars.
	IsBlocked func(error) bool

	// Warmup discards the first this-many arrivals from the statistics
	// (they still drive the network) so measurements reflect steady
	// state rather than the empty-network transient. Blocking during
	// warmup still aborts zero-blocking assertions made by callers,
	// since those examine Result counters — warmup only affects what is
	// counted, and nonblocking networks never block in any phase.
	Warmup int

	// VerifyEvery, when > 0 and the network implements Verifier, runs a
	// full verification every that-many arrivals (and once at the end).
	VerifyEvery int

	// Repack, when true and the network implements Repacker, drives
	// arrivals through AddWithRepack: blocked requests trigger a
	// rearrangement attempt before being counted as blocked.
	Repack bool
}

// Result aggregates a run.
type Result struct {
	Offered int // admissible requests presented
	Routed  int // requests accepted
	Blocked int // requests refused for lack of internal paths
	Starved int // instants where no admissible request could be built

	MaxConcurrent int     // peak simultaneous connections
	MeanFanout    float64 // mean fanout of offered requests
	TotalFanout   int
	Repacked      int // requests saved by rearrangement (Config.Repack)

	// ByFanout stratifies offered/blocked counts by request fanout —
	// large multicasts block first, and this exposes by how much.
	ByFanout map[int]FanoutStats
}

// FanoutStats is the per-fanout slice of a Result.
type FanoutStats struct {
	Offered int
	Blocked int
}

// BlockingProbabilityAtFanout returns Blocked/Offered for one fanout.
func (r Result) BlockingProbabilityAtFanout(fanout int) float64 {
	s := r.ByFanout[fanout]
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Offered)
}

// BlockingProbability returns Blocked / Offered (0 for an empty run).
func (r Result) BlockingProbability() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Blocked) / float64(r.Offered)
}

func (r Result) String() string {
	return fmt.Sprintf("offered=%d routed=%d blocked=%d (P_block=%.4f) peak=%d meanFanout=%.2f",
		r.Offered, r.Routed, r.Blocked, r.BlockingProbability(), r.MaxConcurrent, r.MeanFanout)
}

// departure is a scheduled connection teardown.
type departure struct {
	at   float64
	id   int
	conn wdm.Connection
}

type departureHeap []departure

func (h departureHeap) Len() int            { return len(h) }
func (h departureHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h departureHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x interface{}) { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes one simulation. It returns an error only for protocol
// violations (inadmissible request rejected as non-blocking, release
// failure, verification failure) — blocking is a counted outcome, not an
// error.
func Run(net Network, cfg Config) (Result, error) {
	if cfg.Requests <= 0 {
		return Result{}, errors.New("sim: Requests must be positive")
	}
	if cfg.Load <= 0 {
		cfg.Load = 1
	}
	if cfg.MaxFanout <= 0 || cfg.MaxFanout > cfg.Dim.N {
		cfg.MaxFanout = cfg.Dim.N
	}
	if cfg.IsBlocked == nil {
		cfg.IsBlocked = func(error) bool { return false }
	}
	if err := cfg.Dim.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := workload.NewGenerator(cfg.Seed+1, cfg.Model, cfg.Dim)

	// Slot occupancy mirrors (the simulator's own view; the network under
	// test enforces the same rules independently).
	freeSrc := newSlotSet(cfg.Dim)
	freeDst := newSlotSet(cfg.Dim)

	var (
		res  Result
		deps departureHeap
		now  float64
	)
	verifier, canVerify := net.(Verifier)

	verify := func() error {
		if canVerify && cfg.VerifyEvery > 0 {
			if err := verifier.Verify(); err != nil {
				return fmt.Errorf("sim: network verification failed after %d arrivals: %w", res.Offered, err)
			}
		}
		return nil
	}

	for arrival := 0; arrival < cfg.Requests; arrival++ {
		now += rng.ExpFloat64() / cfg.Load
		// Depart everything scheduled before this arrival.
		for len(deps) > 0 && deps[0].at <= now {
			d := heap.Pop(&deps).(departure)
			if err := net.Release(d.id); err != nil {
				return res, fmt.Errorf("sim: release %d: %w", d.id, err)
			}
			freeSrc.put(d.conn.Source)
			for _, dst := range d.conn.Dests {
				freeDst.put(dst)
			}
		}

		measured := arrival >= cfg.Warmup
		c, ok := gen.Connection(freeSrc.slots(), freeDst.slots(), gen.Fanout(cfg.MaxFanout))
		if !ok {
			if measured {
				res.Starved++
			}
			continue
		}
		if measured {
			res.Offered++
			res.TotalFanout += c.Fanout()
		}
		if res.ByFanout == nil {
			res.ByFanout = make(map[int]FanoutStats)
		}
		fs := res.ByFanout[c.Fanout()]
		if measured {
			fs.Offered++
		}

		var id int
		var err error
		if repacker, ok := net.(Repacker); cfg.Repack && ok {
			var did bool
			id, did, err = repacker.AddWithRepack(c)
			if did && err == nil && measured {
				res.Repacked++
			}
		} else {
			id, err = net.Add(c)
		}
		switch {
		case err == nil:
			if measured {
				res.Routed++
			}
			freeSrc.take(c.Source)
			for _, dst := range c.Dests {
				freeDst.take(dst)
			}
			heap.Push(&deps, departure{at: now + rng.ExpFloat64(), id: id, conn: c})
			if live := len(deps); live > res.MaxConcurrent {
				res.MaxConcurrent = live
			}
		case cfg.IsBlocked(err):
			if measured {
				res.Blocked++
				fs.Blocked++
			}
		default:
			return res, fmt.Errorf("sim: network rejected admissible request %v: %w", c, err)
		}
		res.ByFanout[c.Fanout()] = fs

		if cfg.VerifyEvery > 0 && res.Offered%cfg.VerifyEvery == 0 {
			if err := verify(); err != nil {
				return res, err
			}
		}
	}
	if res.Offered > 0 {
		res.MeanFanout = float64(res.TotalFanout) / float64(res.Offered)
	}
	if err := verify(); err != nil {
		return res, err
	}
	return res, nil
}

// slotSet tracks free slots with O(1) take/put and stable iteration.
type slotSet struct {
	free []wdm.PortWave
	pos  map[wdm.PortWave]int // index in free, or absent
}

func newSlotSet(d wdm.Dim) *slotSet {
	s := &slotSet{pos: make(map[wdm.PortWave]int, d.Slots())}
	for p := 0; p < d.N; p++ {
		for w := 0; w < d.K; w++ {
			slot := wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
			s.pos[slot] = len(s.free)
			s.free = append(s.free, slot)
		}
	}
	return s
}

func (s *slotSet) slots() []wdm.PortWave { return s.free }

func (s *slotSet) take(slot wdm.PortWave) {
	i, ok := s.pos[slot]
	if !ok {
		panic(fmt.Sprintf("sim: taking slot %v twice", slot))
	}
	last := len(s.free) - 1
	s.free[i] = s.free[last]
	s.pos[s.free[i]] = i
	s.free = s.free[:last]
	delete(s.pos, slot)
}

func (s *slotSet) put(slot wdm.PortWave) {
	if _, dup := s.pos[slot]; dup {
		panic(fmt.Sprintf("sim: freeing slot %v twice", slot))
	}
	s.pos[slot] = len(s.free)
	s.free = append(s.free, slot)
}
