package sim

import (
	"fmt"
	"math"
	"sync"
)

// Aggregate summarizes a batch of runs of the same configuration under
// different seeds — the repository's standard way to report simulation
// results with spread rather than a single draw.
type Aggregate struct {
	Runs    []Result
	Seeds   []int64
	MeanP   float64 // mean blocking probability
	MaxP    float64 // worst seed
	StddevP float64 // spread across seeds
	Blocked int     // total blocked over all runs
	Offered int
}

// RunSeeds executes cfg against a fresh network per seed (built by
// mkNet) and aggregates the blocking statistics. Runs execute
// concurrently — each has its own network and generator, so results are
// independent of scheduling and identical to serial execution.
func RunSeeds(mkNet func() (Network, error), cfg Config, seeds []int64) (*Aggregate, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: RunSeeds needs at least one seed")
	}
	agg := &Aggregate{
		Runs:  make([]Result, len(seeds)),
		Seeds: append([]int64(nil), seeds...),
	}
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			net, err := mkNet()
			if err != nil {
				errs[i] = err
				return
			}
			c := cfg
			c.Seed = seed
			res, err := Run(net, c)
			if err != nil {
				errs[i] = fmt.Errorf("seed %d: %w", seed, err)
				return
			}
			agg.Runs[i] = res
		}(i, seed)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var sum, sumSq float64
	for _, r := range agg.Runs {
		p := r.BlockingProbability()
		sum += p
		sumSq += p * p
		if p > agg.MaxP {
			agg.MaxP = p
		}
		agg.Blocked += r.Blocked
		agg.Offered += r.Offered
	}
	n := float64(len(agg.Runs))
	agg.MeanP = sum / n
	variance := sumSq/n - agg.MeanP*agg.MeanP
	if variance > 0 {
		agg.StddevP = math.Sqrt(variance)
	}
	return agg, nil
}

func (a *Aggregate) String() string {
	return fmt.Sprintf("%d seeds: P_block mean=%.4f max=%.4f stddev=%.4f (blocked %d / offered %d)",
		len(a.Runs), a.MeanP, a.MaxP, a.StddevP, a.Blocked, a.Offered)
}
