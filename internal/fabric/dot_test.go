package fabric

import (
	"strings"
	"testing"

	"repro/internal/wdm"
)

func TestWriteDOT(t *testing.T) {
	f := New()
	in := f.AddInput(0)
	sp := f.AddSplitter("split")
	g := f.AddGate("gate")
	cv := f.AddConverter("conv")
	cb := f.AddCombiner("comb")
	out := f.AddOutput(0)
	f.Connect(in, sp)
	f.Connect(sp, g)
	f.Connect(g, cv)
	f.Connect(cv, cb)
	f.Connect(cb, out)
	f.SetGate(g, true)
	f.SetConverter(cv, wdm.Wavelength(1))

	var b strings.Builder
	if err := f.WriteDOT(&b, "test fabric"); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, want := range []string{
		"digraph fabric",
		`label="test fabric"`,
		`label="split"`, "shape=triangle",
		`label="gate"`, `fillcolor="#ffd27f"`, // gate on → filled
		`label="conv"`, "→λ1", // converter target annotated
		"shape=invtriangle",
		"n0 -> n1",
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Edge count: 5 connects.
	if got := strings.Count(dot, "->"); got != 5 {
		t.Errorf("%d edges, want 5", got)
	}
}

func TestWriteDOTOffGateUnfilled(t *testing.T) {
	f := New()
	in := f.AddInput(0)
	g := f.AddGate("g")
	out := f.AddOutput(0)
	f.Connect(in, g)
	f.Connect(g, out)
	var b strings.Builder
	if err := f.WriteDOT(&b, ""); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "#ffd27f") {
		t.Error("off gate rendered as filled")
	}
}
