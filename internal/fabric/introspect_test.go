package fabric

import (
	"strings"
	"testing"

	"repro/internal/wdm"
)

func TestIntrospectionAccessors(t *testing.T) {
	f := New()
	in := f.AddInput(0)
	dm := f.AddDemux("d")
	cv := f.AddConverter("c")
	mx := f.AddMux("m")
	out := f.AddOutput(0)
	f.Connect(in, dm)
	f.Connect(dm, cv)
	f.Connect(cv, mx)
	f.Connect(mx, out)

	if got := f.Label(cv); got != "c" {
		t.Errorf("Label = %q", got)
	}
	if got := f.KindOf(dm); got != Demux {
		t.Errorf("KindOf = %v", got)
	}
	if got := f.ConverterTarget(cv); got != NoConversion {
		t.Errorf("idle converter target = %v", got)
	}
	f.SetConverter(cv, 1)
	if got := f.ConverterTarget(cv); got != wdm.Wavelength(1) {
		t.Errorf("converter target = %v, want 1", got)
	}
	if got := f.ElementsOf(Converter); len(got) != 1 || got[0] != cv {
		t.Errorf("ElementsOf(Converter) = %v", got)
	}
	if got := f.ElementsOf(Gate); got != nil {
		t.Errorf("ElementsOf(Gate) = %v, want none", got)
	}
}

func TestKindNames(t *testing.T) {
	names := map[Kind]string{
		Input: "input", Output: "output", Splitter: "splitter",
		Combiner: "combiner", Gate: "gate", Converter: "converter",
		Demux: "demux", Mux: "mux",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestAccessorPanics(t *testing.T) {
	f := New()
	g := f.AddGate("g")
	cases := []func(){
		func() { f.Label(ElemID(99)) },
		func() { f.KindOf(ElemID(-1)) },
		func() { f.ConverterTarget(g) }, // not a converter
		func() { f.SetConverter(g, 0) },
		func() { f.GateOn(ElemID(42)) },
		func() { f.Connect(g, ElemID(7)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestValidateMoreArity(t *testing.T) {
	// Combiner with no out.
	f := New()
	in := f.AddInput(0)
	cb := f.AddCombiner("c")
	f.Connect(in, cb)
	if err := f.Validate(); err == nil {
		t.Error("combiner without output accepted")
	}
	// Output with an out edge.
	f2 := New()
	i2 := f2.AddInput(0)
	o2 := f2.AddOutput(0)
	g2 := f2.AddGate("g")
	f2.Connect(i2, o2)
	f2.Connect(o2, g2)
	f2.Connect(g2, o2) // also creates a gate in+out, but output now has an out
	if err := f2.Validate(); err == nil {
		t.Error("output terminal with outgoing edge accepted")
	}
	// Splitter with two ins.
	f3 := New()
	a := f3.AddInput(0)
	b := f3.AddInput(1)
	sp := f3.AddSplitter("s")
	o3 := f3.AddOutput(0)
	f3.Connect(a, sp)
	f3.Connect(b, sp)
	f3.Connect(sp, o3)
	if err := f3.Validate(); err == nil {
		t.Error("splitter with two inputs accepted")
	}
}

func TestDuplicateTerminalsPanic(t *testing.T) {
	f := New()
	f.AddInput(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate input terminal accepted")
			}
		}()
		f.AddInput(3)
	}()
	f.AddOutput(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate output terminal accepted")
			}
		}()
		f.AddOutput(3)
	}()
}

func TestInjectUnknownPortPanics(t *testing.T) {
	f := New()
	defer func() {
		if recover() == nil {
			t.Error("injection at a port with no terminal accepted")
		}
	}()
	f.Inject(wdm.PortWave{Port: 9, Wave: 0}, 1)
}

func TestCrosstalkReportString(t *testing.T) {
	r := CrosstalkReport{Slot: wdm.PortWave{Port: 1, Wave: 0}, SignalDB: -10, LeakDB: -52, Ratio: 42, Leakers: 2}
	s := r.String()
	if !strings.Contains(s, "42.0 dB") || !strings.Contains(s, "2 interferer") {
		t.Errorf("String() = %q", s)
	}
}
