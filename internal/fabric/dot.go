package fabric

import (
	"fmt"
	"io"
)

// WriteDOT renders the element graph in Graphviz DOT format — the
// structural regeneration of the paper's switch diagrams (Figs. 5-7):
// every splitter, SOA gate, combiner, converter and (de)mux appears as a
// node with the wiring as edges. Gates that are currently on are filled;
// converters show their configured target wavelength. Render with e.g.
// `dot -Tsvg`.
func (f *Fabric) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph fabric {\n  rankdir=LR;\n  label=%q;\n  labelloc=t;\n", title); err != nil {
		return err
	}
	for id, e := range f.elems {
		attrs := ""
		switch e.kind {
		case Input:
			attrs = `shape=rarrow, style=filled, fillcolor="#d0e8ff"`
		case Output:
			attrs = `shape=rarrow, style=filled, fillcolor="#d0ffd8"`
		case Splitter:
			attrs = "shape=triangle"
		case Combiner:
			attrs = "shape=invtriangle"
		case Gate:
			if e.gateOn {
				attrs = `shape=square, style=filled, fillcolor="#ffd27f"`
			} else {
				attrs = "shape=square"
			}
		case Converter:
			if e.convertTo != NoConversion {
				attrs = fmt.Sprintf(`shape=diamond, style=filled, fillcolor="#ffc0cb", xlabel="→λ%d"`, e.convertTo)
			} else {
				attrs = "shape=diamond"
			}
		case Demux:
			attrs = "shape=house"
		case Mux:
			attrs = "shape=invhouse"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q, %s];\n", id, e.label, attrs); err != nil {
			return err
		}
	}
	for id, e := range f.elems {
		for _, out := range e.outs {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", id, out); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
