// Cross-backend conformance suite: every registered fabric backend
// must (1) route a full admissible load with zero blocks at its own
// default (bound-level) provisioning, (2) return to a fresh network's
// utilization once everything is released, (3) reproduce routes
// exactly through the RouteRecord/Reinstall durability path, and
// (4) stay race-clean under concurrent churn (shared instance behind
// a mutex, per the Backend contract, plus independent per-goroutine
// instances). `make race` runs this suite with -race -short.
package backend_test

import (
	"flag"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fabric/backend"
	"repro/internal/multistage"
	"repro/internal/wdm"
)

// -conformance.backend restricts the suite to one backend — the CI
// matrix runs one job per registered name.
var backendFilter = flag.String("conformance.backend", "", "run the conformance suite against this backend only (empty = all registered backends)")

// conformanceParams sizes each backend so Normalize provisions it at
// exactly its own nonblocking bound (M = 0 resolves to the bound).
func conformanceParams(name string) multistage.Params {
	if name == "mesh" {
		return multistage.Params{N: 12, K: 4, R: 3, Model: wdm.MSW}
	}
	return multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true}
}

// fillConnections builds a maximal admissible load for the backend:
// for the Clos constructions the full shifted permutation — every
// (port, wavelength) source slot carries a session to the matching
// slot one port over, N*k sessions in total; for the mesh, k
// half-ring unicasts (one per wavelength the ring carries, the load
// its bound guarantees).
func fillConnections(name string, p multistage.Params) []wdm.Connection {
	var conns []wdm.Connection
	if name == "mesh" {
		for j := 0; j < p.K; j++ {
			conns = append(conns, wdm.Connection{
				Source: wdm.PortWave{Port: wdm.Port(j)},
				Dests:  []wdm.PortWave{{Port: wdm.Port((j + p.N/2) % p.N)}},
			})
		}
		return conns
	}
	for port := 0; port < p.N; port++ {
		for w := 0; w < p.K; w++ {
			conns = append(conns, wdm.Connection{
				Source: wdm.PortWave{Port: wdm.Port(port), Wave: wdm.Wavelength(w)},
				Dests:  []wdm.PortWave{{Port: wdm.Port((port + 1) % p.N), Wave: wdm.Wavelength(w)}},
			})
		}
	}
	return conns
}

// eachBackend runs fn as a subtest per registered backend, honoring
// -conformance.backend.
func eachBackend(t *testing.T, fn func(t *testing.T, d backend.Descriptor, p multistage.Params)) {
	t.Helper()
	matched := false
	for _, d := range backend.All() {
		if *backendFilter != "" && d.Name != *backendFilter {
			continue
		}
		matched = true
		d := d
		t.Run(d.Name, func(t *testing.T) {
			p, err := d.Normalize(conformanceParams(d.Name))
			if err != nil {
				t.Fatalf("Normalize: %v", err)
			}
			fn(t, d, p)
		})
	}
	if !matched {
		t.Fatalf("no backend matches -conformance.backend=%q (have %v)", *backendFilter, backend.Names())
	}
}

func mustNew(t *testing.T, d backend.Descriptor, p multistage.Params) backend.Backend {
	t.Helper()
	net, err := d.New(p)
	if err != nil {
		t.Fatalf("New(%s): %v", d.Name, err)
	}
	return net
}

// TestConformanceFillAtBoundBlockedZero routes each backend's full
// admissible load at default provisioning: the backend's own
// nonblocking condition says no request may block.
func TestConformanceFillAtBoundBlockedZero(t *testing.T) {
	eachBackend(t, func(t *testing.T, d backend.Descriptor, p multistage.Params) {
		net := mustNew(t, d, p)
		conns := fillConnections(d.Name, p)
		for _, c := range conns {
			if _, err := net.Add(c); err != nil {
				t.Fatalf("Add(%v) blocked at the backend's own bound (m=%d): %v", c, p.M, err)
			}
		}
		if routed, blocked := net.Stats(); blocked != 0 || routed != int64(len(conns)) {
			t.Fatalf("stats = (%d routed, %d blocked), want (%d, 0)", routed, blocked, len(conns))
		}
		if net.Len() != len(conns) {
			t.Fatalf("Len = %d, want %d", net.Len(), len(conns))
		}
	})
}

// TestConformanceReleaseRestoresZeroUtilization fills, releases
// everything, and requires the plane to be indistinguishable from a
// fresh one: zero sessions and identical utilization gauges.
func TestConformanceReleaseRestoresZeroUtilization(t *testing.T) {
	eachBackend(t, func(t *testing.T, d backend.Descriptor, p multistage.Params) {
		net := mustNew(t, d, p)
		fresh := mustNew(t, d, p)
		var ids []int
		for _, c := range fillConnections(d.Name, p) {
			id, err := net.Add(c)
			if err != nil {
				t.Fatalf("Add(%v): %v", c, err)
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			if err := net.Release(id); err != nil {
				t.Fatalf("Release(%d): %v", id, err)
			}
		}
		if net.Len() != 0 {
			t.Fatalf("Len after full release = %d, want 0", net.Len())
		}
		if got, want := net.Utilization(), fresh.Utilization(); !reflect.DeepEqual(got, want) {
			t.Fatalf("utilization after full release = %+v, want fresh %+v", got, want)
		}
	})
}

// TestConformanceReinstallEqualsRoute replays every route record onto
// a fresh plane — the WAL-recovery and standby-apply path — and
// requires the replayed plane to carry byte-identical records and
// identical utilization.
func TestConformanceReinstallEqualsRoute(t *testing.T) {
	eachBackend(t, func(t *testing.T, d backend.Descriptor, p multistage.Params) {
		orig := mustNew(t, d, p)
		var recs []multistage.RouteRecord
		for _, c := range fillConnections(d.Name, p) {
			id, err := orig.Add(c)
			if err != nil {
				t.Fatalf("Add(%v): %v", c, err)
			}
			rec, ok := orig.RouteRecord(id)
			if !ok {
				t.Fatalf("RouteRecord(%d) missing for live session", id)
			}
			recs = append(recs, rec)
		}
		replay := mustNew(t, d, p)
		for _, rec := range recs {
			id, err := replay.Reinstall(rec)
			if err != nil {
				t.Fatalf("Reinstall(%s): %v", rec.Conn, err)
			}
			got, ok := replay.RouteRecord(id)
			if !ok {
				t.Fatalf("RouteRecord(%d) missing after Reinstall", id)
			}
			if !reflect.DeepEqual(got, rec) {
				t.Fatalf("replayed record differs for %s:\n got %+v\nwant %+v", rec.Conn, got, rec)
			}
		}
		if got, want := replay.Utilization(), orig.Utilization(); !reflect.DeepEqual(got, want) {
			t.Fatalf("replayed utilization = %+v, want %+v", got, want)
		}
	})
}

// TestConformanceChurnRaceClean hammers each backend from concurrent
// goroutines: a shared instance serialized by a mutex (the documented
// contract — switchd holds one mutex per plane) interleaving
// add/branch/release with fail/repair cycles, plus fully independent
// per-goroutine instances. Blocked rejections are legitimate under
// induced failures; anything else fails. Run under `make race`.
func TestConformanceChurnRaceClean(t *testing.T) {
	const goroutines = 4
	iters := 100
	if testing.Short() {
		iters = 25
	}
	eachBackend(t, func(t *testing.T, d backend.Descriptor, p multistage.Params) {
		portsPer := p.N / goroutines
		conn := func(g, i int) wdm.Connection {
			src := g*portsPer + i%portsPer
			dst := g*portsPer + (i+1)%portsPer
			return wdm.Connection{
				Source: wdm.PortWave{Port: wdm.Port(src), Wave: wdm.Wavelength(i % p.K)},
				Dests:  []wdm.PortWave{{Port: wdm.Port(dst), Wave: wdm.Wavelength(i % p.K)}},
			}
		}

		t.Run("shared", func(t *testing.T) {
			shared := mustNew(t, d, p)
			var mu sync.Mutex
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						mu.Lock()
						if g == 0 && i%8 == 4 {
							// Cycle a failure unit through the churn so
							// fail/repair races with routing.
							_ = shared.FailMiddle(p.N % shared.Params().M)
							_ = shared.RepairMiddle(p.N % shared.Params().M)
						}
						id, err := shared.Add(conn(g, i))
						if err == nil {
							err = shared.Release(id)
						} else if multistage.IsBlocked(err) {
							err = nil
						}
						mu.Unlock()
						if err != nil {
							errs <- err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("shared churn: %v", err)
			}
			if shared.Len() != 0 {
				t.Fatalf("Len after churn = %d, want 0", shared.Len())
			}
		})

		t.Run("independent", func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					own, err := d.New(p)
					if err != nil {
						errs <- err
						return
					}
					for i := 0; i < iters; i++ {
						id, err := own.Add(conn(g, i))
						if err != nil {
							if multistage.IsBlocked(err) {
								continue
							}
							errs <- err
							return
						}
						if err := own.Release(id); err != nil {
							errs <- err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("independent churn: %v", err)
			}
		})
	})
}
