// Package backend defines the pluggable fabric-backend interface the
// serving plane routes through, and the registry of implementations.
//
// A Backend is one switching plane: it routes multicast sessions
// (Add / AddBranch / Release), survives restarts (RouteRecord /
// Reinstall — the WAL recovery and cluster standby path), explains its
// rejections (BlockedError forensics flow through the shared
// multistage vocabulary), migrates sessions around component failures
// (FailMiddle / RerouteAroundReport), and accounts for itself
// (Utilization / Stats / Cost). Everything switchd, the durable plane,
// and the cluster standby depend on is on this interface — they never
// name a concrete fabric type.
//
// Four backends register at init:
//
//	msw   — three-stage Clos, MSW modules (paper's Theorem 1 bound)
//	maw   — three-stage Clos, MAW input/middle modules (Theorem 2 bound)
//	awg   — three-stage Clos with passive AWG middles (arXiv 1308.4477):
//	        wavelengths follow the grating law, conflicts surface as
//	        the stable wavelength_conflict code
//	mesh  — bidirectional WDM ring with light-hierarchy multicast under
//	        sparse splitting (arXiv 1012.0017/1012.0027): structural
//	        rejections surface as split_incapable
package backend

import (
	"fmt"
	"sort"

	"repro/internal/crossbar"
	"repro/internal/mesh"
	"repro/internal/multistage"
	"repro/internal/wdm"
)

// Backend is the routing interface every fabric implementation serves.
// Implementations are NOT safe for concurrent use; callers serialize
// access per plane (switchd holds one mutex per replica).
type Backend interface {
	// Routing plane.
	Add(c wdm.Connection) (int, error)
	AddBranch(id int, dests ...wdm.PortWave) error
	Release(id int) error
	Reset()

	// Durability plane: exact-replay route records.
	RouteRecord(id int) (multistage.RouteRecord, bool)
	Reinstall(rec multistage.RouteRecord) (int, error)

	// Introspection.
	Connection(id int) (wdm.Connection, bool)
	Connections() map[int]wdm.Connection
	Len() int
	Stats() (routed, blocked int64)
	Utilization() multistage.Utilization
	Params() multistage.Params
	Shape() wdm.Shape
	Cost() crossbar.Cost
	SetRouteObserver(fn func(multistage.RouteStep))

	// Failure plane. "Middles" are whatever the backend's failure unit
	// is: middle-stage modules for the Clos constructions, ring nodes
	// for the mesh.
	FailMiddle(j int) error
	RepairMiddle(j int) error
	FailedMiddles() []int
	AffectedBy(j int) []int
	MiddlesUsed(id int) ([]int, bool)
	RerouteAroundReport(j int) ([]multistage.Migration, []int, error)
}

// Descriptor is a registered backend: its identity, its capability
// card (served at GET /v1/fabrics), and its constructors.
type Descriptor struct {
	// Name is the stable identifier used by -fabric, the durable meta,
	// and the API surface.
	Name string
	// Description is one sentence for humans.
	Description string
	// Bound describes the backend's own nonblocking sufficiency
	// condition, as a formula over its parameters.
	Bound string
	// Multicast describes how the backend realizes fanout.
	Multicast string
	// ErrorCodes lists the backend-specific stable block codes it can
	// attach to a BlockedError (beyond the generic blocked class).
	ErrorCodes []string
	// Normalize validates and defaults a parameter set for this backend
	// (including resolving M=0 to the backend's sufficient bound).
	Normalize func(p multistage.Params) (multistage.Params, error)
	// Sufficient returns the backend's sufficient provisioning level for
	// the (normalized) parameters: the middle-module count that makes
	// the Clos constructions nonblocking, the node count for the mesh
	// (its failure units are the ring nodes). The admission derater
	// compares the provisioned level against this reference.
	Sufficient func(p multistage.Params) int
	// New builds a fresh plane from (not necessarily normalized)
	// parameters.
	New func(p multistage.Params) (Backend, error)
}

var registry = map[string]Descriptor{}

// Register adds a backend descriptor. It panics on a duplicate or
// incomplete registration — registration is init-time wiring, not a
// runtime code path.
func Register(d Descriptor) {
	if d.Name == "" || d.Normalize == nil || d.Sufficient == nil || d.New == nil {
		panic("backend: incomplete descriptor")
	}
	if _, dup := registry[d.Name]; dup {
		panic("backend: duplicate registration of " + d.Name)
	}
	registry[d.Name] = d
}

// Get returns the descriptor for name. The error enumerates the valid
// names, so flag validation derives from the registry.
func Get(name string) (Descriptor, error) {
	d, ok := registry[name]
	if !ok {
		return Descriptor{}, fmt.Errorf("backend: unknown fabric backend %q (have %s)", name, namesList())
	}
	return d, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func namesList() string {
	names := Names()
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// All returns every registered descriptor, sorted by name.
func All() []Descriptor {
	out := make([]Descriptor, 0, len(registry))
	for _, name := range Names() {
		out = append(out, registry[name])
	}
	return out
}

// ForConstruction maps a Clos construction to its backend name — the
// back-compat bridge for durable metadata and flags written before
// backends existed, which recorded only the construction.
func ForConstruction(c multistage.Construction) string {
	switch c {
	case multistage.MAWDominant:
		return "maw"
	case multistage.AWGClos:
		return "awg"
	default:
		return "msw"
	}
}

// closDescriptor builds the descriptor shared by the three-stage Clos
// backends: the construction is pinned, everything else flows through
// multistage.
func closDescriptor(name string, c multistage.Construction, description, bound, multicast string, codes []string) Descriptor {
	return Descriptor{
		Name:        name,
		Description: description,
		Bound:       bound,
		Multicast:   multicast,
		ErrorCodes:  codes,
		Normalize: func(p multistage.Params) (multistage.Params, error) {
			p.Construction = c
			return p.Normalize()
		},
		Sufficient: func(p multistage.Params) int {
			m, _ := multistage.SufficientMinM(c, p.Model, p.N/p.R, p.R, p.K)
			return m
		},
		New: func(p multistage.Params) (Backend, error) {
			p.Construction = c
			return multistage.New(p)
		},
	}
}

func init() {
	Register(closDescriptor("msw", multistage.MSWDominant,
		"three-stage Clos, MSW (no-conversion) input and middle modules",
		"m > min over x of (n-1)(x + r^(1/x)) — Theorem 1",
		"middle-stage splitters, up to x destination modules per middle",
		nil))
	Register(closDescriptor("maw", multistage.MAWDominant,
		"three-stage Clos, MAW (full-conversion) input and middle modules",
		"m > min over x of floor((nk-1)x/k) + (n-1)r^(1/x) — Theorem 2",
		"middle-stage splitters with per-leg wavelength conversion",
		nil))
	// The AWG grating law fixes each session's wavelength to its
	// (dest−src) class, so delivery needs converting (MAW) output
	// modules: the model is as much a property of this backend as the
	// construction, and the descriptor pins both.
	awg := closDescriptor("awg", multistage.AWGClos,
		"three-stage Clos with passive arrayed-waveguide-grating middles; wavelengths follow the grating law λ=(dest-src) mod k",
		"m >= (nk-1)(ceil(r/k)+1) + r, with x = r (one middle per destination module)",
		"input-stage splitting only: each destination module takes its own middle on its class wavelength",
		[]string{multistage.CodeWavelengthConflict})
	awgNormalize, awgNew := awg.Normalize, awg.New
	awg.Normalize = func(p multistage.Params) (multistage.Params, error) {
		p.Model = wdm.MAW
		return awgNormalize(p)
	}
	awg.New = func(p multistage.Params) (Backend, error) {
		p.Model = wdm.MAW
		return awgNew(p)
	}
	Register(awg)
	Register(Descriptor{
		Name:        "mesh",
		Description: "bidirectional WDM ring with light-hierarchy multicast under sparse splitting (MC node every R-th position)",
		Bound:       "any k individually-routable sessions route (one wavelength per session, k wavelengths per fiber direction)",
		Multicast:   "drop-and-continue at splitter (MC) nodes plus reverse-direction spurs; multicast-incapable nodes never branch",
		ErrorCodes:  []string{multistage.CodeSplitIncapable},
		Normalize:   mesh.Normalize,
		Sufficient: func(p multistage.Params) int {
			// The mesh's failure units are the ring nodes: full service
			// means all N of them (M is pinned to N by Normalize).
			return p.N
		},
		New: func(p multistage.Params) (Backend, error) {
			return mesh.New(p)
		},
	})
}
