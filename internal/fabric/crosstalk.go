package fabric

import (
	"fmt"
	"math"

	"repro/internal/wdm"
)

// GateExtinctionDB is the on/off extinction ratio of an SOA gate: an
// "off" gate attenuates (rather than perfectly absorbs) light by this
// many dB. Finite extinction is the physical source of first-order
// crosstalk in gate-based switches — the effect the paper's crosspoint
// count is a proxy for.
const GateExtinctionDB = 40.0

// CrosstalkReport quantifies first-order leakage at one output slot.
type CrosstalkReport struct {
	Slot wdm.PortWave
	// SignalDB is the delivered signal's power (0 dB reference at the
	// transmitter, negated loss).
	SignalDB float64
	// LeakDB is the accumulated power of first-order leakage terms
	// arriving at the same slot: copies of *other* signals that crossed
	// exactly one off gate (attenuated by GateExtinctionDB) on a path to
	// this slot.
	LeakDB float64
	// Ratio is SignalDB - LeakDB: the signal-to-crosstalk ratio in dB
	// (higher is better). +Inf when no leakage path exists.
	Ratio float64
	// Leakers counts the distinct interfering signals.
	Leakers int
}

// CrosstalkAt estimates the first-order crosstalk at every output slot
// that receives a signal: for each off gate fed by a live signal, the
// leaked copy (attenuated by the gate's finite extinction) is propagated
// onward as if the gate were on, and its power is accumulated wherever
// it lands on the victim's wavelength slot.
//
// The estimate deliberately stops at first order (one off gate per leak
// path) — second-order terms are another ~GateExtinctionDB down, far
// below relevance. The paper's observation that crosstalk scales with
// crosspoint count is visible directly: wider fabrics have more off
// gates adjacent to each live splitter row.
func (f *Fabric) CrosstalkAt() (map[wdm.PortWave]CrosstalkReport, error) {
	// Strict pass first: the configuration itself must be clean.
	base, err := f.Propagate()
	if err != nil {
		return nil, err
	}
	// Leaky pass: off gates attenuate instead of absorbing, and every
	// copy reaching an output slot is recorded with its off-gate count.
	leakyRes, err := f.propagate(true)
	if err != nil {
		return nil, err
	}

	reports := make(map[wdm.PortWave]CrosstalkReport, len(base.Arrived))
	for slot, sig := range base.Arrived {
		rep := CrosstalkReport{
			Slot:     slot,
			SignalDB: -sig.LossDB,
			Ratio:    math.Inf(1),
			LeakDB:   math.Inf(-1),
		}
		leakPower := 0.0
		for _, arr := range leakyRes.AllArrivals[slot] {
			if arr.OffGates != 1 {
				continue // the signal itself, or a higher-order term
			}
			leakPower += math.Pow(10, -arr.LossDB/10)
			rep.Leakers++
		}
		if leakPower > 0 {
			rep.LeakDB = 10 * math.Log10(leakPower)
			rep.Ratio = rep.SignalDB - rep.LeakDB
		}
		reports[slot] = rep
	}
	return reports, nil
}

// WorstCrosstalkRatio returns the lowest signal-to-crosstalk ratio over
// all delivered slots (the design's worst case), or +Inf if no slot sees
// leakage.
func (f *Fabric) WorstCrosstalkRatio() (float64, error) {
	reports, err := f.CrosstalkAt()
	if err != nil {
		return 0, err
	}
	worst := math.Inf(1)
	for _, r := range reports {
		if r.Ratio < worst {
			worst = r.Ratio
		}
	}
	return worst, nil
}

func (r CrosstalkReport) String() string {
	if math.IsInf(r.Ratio, 1) {
		return fmt.Sprintf("%v: signal %.1f dB, no first-order leakage", r.Slot, r.SignalDB)
	}
	return fmt.Sprintf("%v: signal %.1f dB, leak %.1f dB from %d interferer(s), ratio %.1f dB",
		r.Slot, r.SignalDB, r.LeakDB, r.Leakers, r.Ratio)
}
