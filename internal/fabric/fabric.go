// Package fabric models a WDM switching fabric at the optical-element
// level: light splitters, combiners, SOA crosspoint gates, wavelength
// converters, and wavelength multiplexers/demultiplexers, wired into a
// directed acyclic graph. Signals injected at input ports propagate
// through the graph according to each element's optical semantics, with
// wavelength tracking, collision detection and power-loss accounting.
//
// The paper's cost model counts exactly these elements — crosspoints are
// SOA gates, converters are the expensive active devices, splitters and
// combiners are cheap passive glass — and its nonblocking claims are about
// what signals such a fabric can carry simultaneously. Building the
// constructions of Figs. 4-7 out of explicit elements lets the rest of the
// repository *demonstrate* nonblocking behaviour by routing real signals,
// and audit every cost formula by counting real elements.
package fabric

import (
	"fmt"

	"repro/internal/wdm"
)

// Kind enumerates the optical element types of the paper's designs.
type Kind int

const (
	// Input is a network input fiber terminal. Signals are injected here,
	// one per wavelength slot. No incoming edges.
	Input Kind = iota
	// Output is a network output fiber terminal. Arriving signals are
	// recorded per wavelength. No outgoing edges.
	Output
	// Splitter is a passive 1-to-F light splitter: an arriving signal is
	// copied to every outgoing edge, each copy attenuated by the splitting
	// loss 10*log10(F) dB.
	Splitter
	// Combiner is a passive F-to-1 light combiner. Per the paper, at most
	// one of its inputs may carry a signal at a time (unlike a mux, its
	// inputs are not wavelength-disjoint by construction); two simultaneous
	// arrivals are a fabric fault. Combining loss is 10*log10(F) dB.
	Combiner
	// Gate is an SOA crosspoint gate: when on, the signal passes (with
	// gain offsetting insertion loss, modelled as a small net loss); when
	// off, the signal is absorbed. One gate = one crosspoint in the
	// paper's cost tables.
	Gate
	// Converter is an all-optical wavelength converter. When configured
	// with a target wavelength it re-emits any arriving signal on that
	// wavelength; when idle it passes the signal unchanged.
	Converter
	// Demux is a wavelength demultiplexer: a signal on wavelength w leaves
	// on the w-th outgoing edge. It must have exactly k outgoing edges,
	// attached in wavelength order.
	Demux
	// Mux is a wavelength multiplexer: all inputs merge onto one fiber;
	// two simultaneous signals on the same wavelength are a fault.
	Mux
)

var kindNames = map[Kind]string{
	Input: "input", Output: "output", Splitter: "splitter",
	Combiner: "combiner", Gate: "gate", Converter: "converter",
	Demux: "demux", Mux: "mux",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ElemID identifies an element within one Fabric.
type ElemID int

// NoElem is the zero-value-adjacent sentinel for "no element".
const NoElem ElemID = -1

// NoConversion marks an idle converter (signal passes unchanged).
const NoConversion wdm.Wavelength = -1

type element struct {
	kind  Kind
	label string
	ins   []ElemID
	outs  []ElemID

	// State.
	gateOn    bool
	convertTo wdm.Wavelength // NoConversion when idle

	// For Input/Output terminals: which network port they serve.
	port wdm.Port
}

// Fabric is a mutable optical element graph. Build it with Add* and
// Connect, then freeze the topology implicitly by calling Propagate.
// Element state (gates, converters) may change between propagations;
// topology changes remain allowed but invalidate nothing — Propagate
// re-derives its ordering on demand.
type Fabric struct {
	elems   []*element
	inputs  map[wdm.Port]ElemID
	outputs map[wdm.Port]ElemID

	// Injected signals: slot -> signal ID.
	injected map[wdm.PortWave]int

	topoDirty bool
	topo      []ElemID
}

// New returns an empty fabric.
func New() *Fabric {
	return &Fabric{
		inputs:    make(map[wdm.Port]ElemID),
		outputs:   make(map[wdm.Port]ElemID),
		injected:  make(map[wdm.PortWave]int),
		topoDirty: true,
	}
}

func (f *Fabric) add(e *element) ElemID {
	id := ElemID(len(f.elems))
	f.elems = append(f.elems, e)
	f.topoDirty = true
	return id
}

// AddInput adds the input terminal for a network port. Each port may have
// at most one input terminal.
func (f *Fabric) AddInput(port wdm.Port) ElemID {
	if _, dup := f.inputs[port]; dup {
		panic(fmt.Sprintf("fabric: duplicate input terminal for port %d", port))
	}
	id := f.add(&element{kind: Input, label: fmt.Sprintf("in%d", port), port: port, convertTo: NoConversion})
	f.inputs[port] = id
	return id
}

// AddOutput adds the output terminal for a network port.
func (f *Fabric) AddOutput(port wdm.Port) ElemID {
	if _, dup := f.outputs[port]; dup {
		panic(fmt.Sprintf("fabric: duplicate output terminal for port %d", port))
	}
	id := f.add(&element{kind: Output, label: fmt.Sprintf("out%d", port), port: port, convertTo: NoConversion})
	f.outputs[port] = id
	return id
}

// AddSplitter, AddCombiner, AddGate, AddConverter, AddDemux and AddMux add
// an element of the corresponding kind with a diagnostic label.
func (f *Fabric) AddSplitter(label string) ElemID {
	return f.add(&element{kind: Splitter, label: label, convertTo: NoConversion})
}

func (f *Fabric) AddCombiner(label string) ElemID {
	return f.add(&element{kind: Combiner, label: label, convertTo: NoConversion})
}

func (f *Fabric) AddGate(label string) ElemID {
	return f.add(&element{kind: Gate, label: label, convertTo: NoConversion})
}

func (f *Fabric) AddConverter(label string) ElemID {
	return f.add(&element{kind: Converter, label: label, convertTo: NoConversion})
}

func (f *Fabric) AddDemux(label string) ElemID {
	return f.add(&element{kind: Demux, label: label, convertTo: NoConversion})
}

func (f *Fabric) AddMux(label string) ElemID {
	return f.add(&element{kind: Mux, label: label, convertTo: NoConversion})
}

// Connect wires an edge from element a to element b. For Demux elements
// the order of Connect calls defines the wavelength order of outputs.
func (f *Fabric) Connect(a, b ElemID) {
	f.check(a)
	f.check(b)
	f.elems[a].outs = append(f.elems[a].outs, b)
	f.elems[b].ins = append(f.elems[b].ins, a)
	f.topoDirty = true
}

func (f *Fabric) check(id ElemID) {
	if id < 0 || int(id) >= len(f.elems) {
		panic(fmt.Sprintf("fabric: element id %d out of range", id))
	}
}

// SetGate turns a gate on or off.
func (f *Fabric) SetGate(id ElemID, on bool) {
	f.check(id)
	e := f.elems[id]
	if e.kind != Gate {
		panic(fmt.Sprintf("fabric: SetGate on %v element %q", e.kind, e.label))
	}
	e.gateOn = on
}

// GateOn reports whether a gate is on.
func (f *Fabric) GateOn(id ElemID) bool {
	f.check(id)
	e := f.elems[id]
	if e.kind != Gate {
		panic(fmt.Sprintf("fabric: GateOn on %v element %q", e.kind, e.label))
	}
	return e.gateOn
}

// SetConverter configures a converter's target wavelength; pass
// NoConversion to make it transparent.
func (f *Fabric) SetConverter(id ElemID, to wdm.Wavelength) {
	f.check(id)
	e := f.elems[id]
	if e.kind != Converter {
		panic(fmt.Sprintf("fabric: SetConverter on %v element %q", e.kind, e.label))
	}
	e.convertTo = to
}

// ConverterTarget returns a converter's configured wavelength
// (NoConversion if transparent).
func (f *Fabric) ConverterTarget(id ElemID) wdm.Wavelength {
	f.check(id)
	e := f.elems[id]
	if e.kind != Converter {
		panic(fmt.Sprintf("fabric: ConverterTarget on %v element %q", e.kind, e.label))
	}
	return e.convertTo
}

// Label returns the diagnostic label of an element.
func (f *Fabric) Label(id ElemID) string {
	f.check(id)
	return f.elems[id].label
}

// KindOf returns the element's kind.
func (f *Fabric) KindOf(id ElemID) Kind {
	f.check(id)
	return f.elems[id].kind
}

// Inject marks a signal with the given ID as entering the fabric at the
// given input slot (port, wavelength). Injecting twice at the same slot is
// a caller bug and panics: a fiber wavelength carries one signal.
func (f *Fabric) Inject(slot wdm.PortWave, signalID int) {
	if _, dup := f.injected[slot]; dup {
		panic(fmt.Sprintf("fabric: second signal injected at input slot %v", slot))
	}
	if _, ok := f.inputs[slot.Port]; !ok {
		panic(fmt.Sprintf("fabric: no input terminal for port %d", slot.Port))
	}
	f.injected[slot] = signalID
}

// ClearSignals removes all injected signals (element state is untouched).
func (f *Fabric) ClearSignals() {
	f.injected = make(map[wdm.PortWave]int)
}

// Injected returns the signal ID injected at a slot, if any.
func (f *Fabric) Injected(slot wdm.PortWave) (int, bool) {
	id, ok := f.injected[slot]
	return id, ok
}

// Count returns the number of elements of the given kind.
func (f *Fabric) Count(kind Kind) int {
	n := 0
	for _, e := range f.elems {
		if e.kind == kind {
			n++
		}
	}
	return n
}

// ElementsOf returns the ids of all elements of a kind, in creation
// order. Used by diagnostics and the fault-injection tests, which flip
// individual gates to verify that optical verification catches stuck
// hardware.
func (f *Fabric) ElementsOf(kind Kind) []ElemID {
	var out []ElemID
	for id, e := range f.elems {
		if e.kind == kind {
			out = append(out, ElemID(id))
		}
	}
	return out
}

// Crosspoints returns the number of SOA gates — the paper's primary
// hardware cost measure.
func (f *Fabric) Crosspoints() int { return f.Count(Gate) }

// Converters returns the number of wavelength converters — the paper's
// second cost measure.
func (f *Fabric) Converters() int { return f.Count(Converter) }

// Elements returns the total element count.
func (f *Fabric) Elements() int { return len(f.elems) }

// Validate checks structural arity rules:
//
//	input:     0 in, >=1 out     output:   >=1 in, 0 out
//	splitter:  1 in, >=1 out     combiner: >=1 in, 1 out
//	gate:      1 in, 1 out       converter: 1 in, 1 out
//	demux:     1 in, >=1 out     mux:      >=1 in, 1 out
func (f *Fabric) Validate() error {
	for id, e := range f.elems {
		bad := func(msg string) error {
			return fmt.Errorf("fabric: element %d (%v %q): %s (ins=%d outs=%d)",
				id, e.kind, e.label, msg, len(e.ins), len(e.outs))
		}
		switch e.kind {
		case Input:
			if len(e.ins) != 0 || len(e.outs) < 1 {
				return bad("input terminals need 0 ins and >=1 out")
			}
		case Output:
			if len(e.ins) < 1 || len(e.outs) != 0 {
				return bad("output terminals need >=1 in and 0 outs")
			}
		case Splitter, Demux:
			if len(e.ins) != 1 || len(e.outs) < 1 {
				return bad("needs exactly 1 in and >=1 out")
			}
		case Combiner, Mux:
			if len(e.ins) < 1 || len(e.outs) != 1 {
				return bad("needs >=1 in and exactly 1 out")
			}
		case Gate, Converter:
			if len(e.ins) != 1 || len(e.outs) != 1 {
				return bad("needs exactly 1 in and 1 out")
			}
		default:
			return bad("unknown kind")
		}
	}
	if _, err := f.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns a topological ordering of the element graph (Kahn's
// algorithm) and errs if the graph has a cycle.
func (f *Fabric) topoOrder() ([]ElemID, error) {
	if !f.topoDirty {
		return f.topo, nil
	}
	n := len(f.elems)
	indeg := make([]int, n)
	for _, e := range f.elems {
		for _, out := range e.outs {
			indeg[out]++
		}
	}
	queue := make([]ElemID, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, ElemID(id))
		}
	}
	order := make([]ElemID, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, out := range f.elems[id].outs {
			indeg[out]--
			if indeg[out] == 0 {
				queue = append(queue, out)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("fabric: element graph contains a cycle (%d of %d elements ordered)", len(order), n)
	}
	f.topo = order
	f.topoDirty = false
	return order, nil
}
