package fabric

import (
	"math"
	"strings"
	"testing"

	"repro/internal/wdm"
)

// buildTwoByTwo wires a minimal 2x2 single-wavelength gate crossbar:
// two inputs, two splitters, four gates, two combiners, two outputs.
func buildTwoByTwo(t *testing.T) (*Fabric, [2][2]ElemID) {
	t.Helper()
	f := New()
	var gates [2][2]ElemID
	var splitters [2]ElemID
	var combiners [2]ElemID
	for q := 0; q < 2; q++ {
		in := f.AddInput(wdm.Port(q))
		sp := f.AddSplitter("s")
		splitters[q] = sp
		f.Connect(in, sp)
	}
	for p := 0; p < 2; p++ {
		out := f.AddOutput(wdm.Port(p))
		cb := f.AddCombiner("c")
		combiners[p] = cb
		f.Connect(cb, out)
	}
	for q := 0; q < 2; q++ {
		for p := 0; p < 2; p++ {
			g := f.AddGate("g")
			gates[q][p] = g
			f.Connect(splitters[q], g)
			f.Connect(g, combiners[p])
		}
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f, gates
}

func TestCrosstalkNoLeakWhenAlone(t *testing.T) {
	f, gates := buildTwoByTwo(t)
	f.SetGate(gates[0][0], true)
	f.Inject(wdm.PortWave{Port: 0, Wave: 0}, 1)
	reports, err := f.CrosstalkAt()
	if err != nil {
		t.Fatal(err)
	}
	rep := reports[wdm.PortWave{Port: 0, Wave: 0}]
	// The lone signal leaks through its own row's off gate (0->1), so
	// output 0's slot itself sees no interference from others.
	if !math.IsInf(rep.Ratio, 1) {
		t.Errorf("single-signal slot reports interference: %v", rep)
	}
	if !strings.Contains(rep.String(), "no first-order leakage") {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestCrosstalkBetweenTwoSignals(t *testing.T) {
	// Straight configuration: 0->0 and 1->1. The off gates 0->1 and 1->0
	// leak each signal onto the other's output.
	f, gates := buildTwoByTwo(t)
	f.SetGate(gates[0][0], true)
	f.SetGate(gates[1][1], true)
	f.Inject(wdm.PortWave{Port: 0, Wave: 0}, 1)
	f.Inject(wdm.PortWave{Port: 1, Wave: 0}, 2)
	reports, err := f.CrosstalkAt()
	if err != nil {
		t.Fatal(err)
	}
	for _, slot := range []wdm.PortWave{{Port: 0, Wave: 0}, {Port: 1, Wave: 0}} {
		rep := reports[slot]
		if rep.Leakers != 1 {
			t.Errorf("slot %v: %d leakers, want 1 (%v)", slot, rep.Leakers, rep)
		}
		// Signal and leak take symmetric paths, so the ratio equals the
		// extinction ratio exactly.
		if math.Abs(rep.Ratio-GateExtinctionDB) > 1e-9 {
			t.Errorf("slot %v: ratio %.2f dB, want extinction %.2f dB", slot, rep.Ratio, GateExtinctionDB)
		}
	}
	worst, err := f.WorstCrosstalkRatio()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(worst-GateExtinctionDB) > 1e-9 {
		t.Errorf("worst ratio %.2f dB", worst)
	}
}

func TestCrosstalkGateStateRestored(t *testing.T) {
	f, gates := buildTwoByTwo(t)
	f.SetGate(gates[0][0], true)
	f.Inject(wdm.PortWave{Port: 0, Wave: 0}, 1)
	if _, err := f.CrosstalkAt(); err != nil {
		t.Fatal(err)
	}
	// The probe must leave all gate states exactly as configured.
	for q := 0; q < 2; q++ {
		for p := 0; p < 2; p++ {
			want := q == 0 && p == 0
			if f.GateOn(gates[q][p]) != want {
				t.Errorf("gate %d,%d state disturbed", q, p)
			}
		}
	}
}
