package fabric

import (
	"math"
	"strings"
	"testing"

	"repro/internal/wdm"
)

func pw(p, w int) wdm.PortWave {
	return wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
}

// buildWire builds the smallest useful fabric:
// input -> gate -> output, single port, single wavelength.
func buildWire(t *testing.T) (*Fabric, ElemID) {
	t.Helper()
	f := New()
	in := f.AddInput(0)
	g := f.AddGate("g")
	out := f.AddOutput(0)
	f.Connect(in, g)
	f.Connect(g, out)
	if err := f.Validate(); err != nil {
		t.Fatalf("wire fabric invalid: %v", err)
	}
	return f, g
}

func TestGatePassesAndBlocks(t *testing.T) {
	f, g := buildWire(t)
	f.Inject(pw(0, 0), 7)

	// Gate off: nothing arrives.
	res, err := f.Propagate()
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	if len(res.Arrived) != 0 {
		t.Errorf("gate off but %d signals arrived", len(res.Arrived))
	}

	// Gate on: the signal arrives at (p0, λ0) with gate loss.
	f.SetGate(g, true)
	res, err = f.Propagate()
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	s, ok := res.Arrived[pw(0, 0)]
	if !ok {
		t.Fatal("signal did not arrive")
	}
	if s.ID != 7 || s.Gates != 1 {
		t.Errorf("arrived signal = %+v, want ID 7 through 1 gate", s)
	}
	if s.LossDB != GateLossDB {
		t.Errorf("loss = %v, want %v", s.LossDB, GateLossDB)
	}
}

func TestSplitterCopiesSignal(t *testing.T) {
	// input -> splitter -> two gates -> two outputs.
	f := New()
	in := f.AddInput(0)
	sp := f.AddSplitter("s")
	g0, g1 := f.AddGate("g0"), f.AddGate("g1")
	o0, o1 := f.AddOutput(0), f.AddOutput(1)
	f.Connect(in, sp)
	f.Connect(sp, g0)
	f.Connect(sp, g1)
	f.Connect(g0, o0)
	f.Connect(g1, o1)
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	f.SetGate(g0, true)
	f.SetGate(g1, true)
	f.Inject(pw(0, 0), 1)
	res, err := f.Propagate()
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	if len(res.Arrived) != 2 {
		t.Fatalf("multicast delivered to %d slots, want 2", len(res.Arrived))
	}
	wantLoss := SplitLossDB(2) + GateLossDB
	for slot, s := range res.Arrived {
		if math.Abs(s.LossDB-wantLoss) > 1e-9 {
			t.Errorf("slot %v loss = %v, want %v", slot, s.LossDB, wantLoss)
		}
	}

	// Turning one branch off prunes only that leaf.
	f.SetGate(g1, false)
	res, err = f.Propagate()
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	if len(res.Arrived) != 1 {
		t.Fatalf("after pruning, %d arrivals, want 1", len(res.Arrived))
	}
	if _, ok := res.Arrived[pw(0, 0)]; !ok {
		t.Error("surviving branch should deliver to port 0")
	}
}

func TestConverterChangesWavelength(t *testing.T) {
	f := New()
	in := f.AddInput(0)
	cv := f.AddConverter("c")
	out := f.AddOutput(0)
	f.Connect(in, cv)
	f.Connect(cv, out)
	f.Inject(pw(0, 0), 3)

	// Transparent: wavelength unchanged.
	res, err := f.Propagate()
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	if _, ok := res.Arrived[pw(0, 0)]; !ok {
		t.Fatal("transparent converter dropped the signal")
	}

	// Converting: signal arrives on λ1.
	f.SetConverter(cv, 1)
	res, err = f.Propagate()
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	if _, stale := res.Arrived[pw(0, 0)]; stale {
		t.Error("signal still on λ0 after conversion")
	}
	s, ok := res.Arrived[pw(0, 1)]
	if !ok {
		t.Fatal("converted signal missing on λ1")
	}
	if s.LossDB != ConverterLossDB {
		t.Errorf("loss = %v, want %v", s.LossDB, ConverterLossDB)
	}
}

func TestCombinerCollisionDetected(t *testing.T) {
	// Two inputs feed one combiner; injecting on both must fault.
	f := New()
	i0, i1 := f.AddInput(0), f.AddInput(1)
	cb := f.AddCombiner("c")
	out := f.AddOutput(0)
	f.Connect(i0, cb)
	f.Connect(i1, cb)
	f.Connect(cb, out)
	f.Inject(pw(0, 0), 1)
	res, err := f.Propagate()
	if err != nil || len(res.Arrived) != 1 {
		t.Fatalf("single signal through combiner failed: %v", err)
	}
	f.Inject(pw(1, 0), 2)
	if _, err := f.Propagate(); err == nil {
		t.Error("combiner accepted two simultaneous signals")
	} else if !strings.Contains(err.Error(), "combiner") {
		t.Errorf("error %q does not mention combiner", err)
	}
}

func TestMuxWavelengthCollision(t *testing.T) {
	// Two inputs on the same wavelength into one mux must fault; on
	// different wavelengths they coexist.
	f := New()
	i0, i1 := f.AddInput(0), f.AddInput(1)
	cv := f.AddConverter("shift")
	mx := f.AddMux("m")
	out := f.AddOutput(0)
	f.Connect(i0, mx)
	f.Connect(i1, cv)
	f.Connect(cv, mx)
	f.Connect(mx, out)

	f.Inject(pw(0, 0), 1)
	f.Inject(pw(1, 0), 2)
	if _, err := f.Propagate(); err == nil {
		t.Error("mux accepted two signals on λ0")
	}

	// Shift the second signal to λ1: now both fit.
	f.SetConverter(cv, 1)
	res, err := f.Propagate()
	if err != nil {
		t.Fatalf("mux with distinct wavelengths: %v", err)
	}
	if len(res.Arrived) != 2 {
		t.Errorf("%d arrivals, want 2", len(res.Arrived))
	}
}

func TestDemuxRoutesByWavelength(t *testing.T) {
	// input -> demux with 2 wavelength branches -> outputs 0 and 1.
	f := New()
	in := f.AddInput(0)
	dm := f.AddDemux("d")
	o0, o1 := f.AddOutput(0), f.AddOutput(1)
	f.Connect(in, dm)
	f.Connect(dm, o0) // λ0 branch
	f.Connect(dm, o1) // λ1 branch
	f.Inject(pw(0, 0), 10)
	f.Inject(pw(0, 1), 11)
	res, err := f.Propagate()
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	if s := res.Arrived[pw(0, 0)]; s.ID != 10 {
		t.Errorf("λ0 branch got signal %d, want 10", s.ID)
	}
	if s := res.Arrived[pw(1, 1)]; s.ID != 11 {
		t.Errorf("λ1 branch got signal %d, want 11", s.ID)
	}
}

func TestDemuxUnknownWavelengthFaults(t *testing.T) {
	f := New()
	in := f.AddInput(0)
	dm := f.AddDemux("d")
	o0 := f.AddOutput(0)
	f.Connect(in, dm)
	f.Connect(dm, o0) // only λ0
	f.Inject(pw(0, 1), 1)
	if _, err := f.Propagate(); err == nil {
		t.Error("demux accepted a wavelength it has no branch for")
	}
}

func TestOutputSlotCollision(t *testing.T) {
	// Two separate paths deliver to the same output port on the same
	// wavelength: must fault at the output terminal.
	f := New()
	i0, i1 := f.AddInput(0), f.AddInput(1)
	out := f.AddOutput(0)
	f.Connect(i0, out)
	f.Connect(i1, out)
	f.Inject(pw(0, 0), 1)
	f.Inject(pw(1, 0), 2)
	if _, err := f.Propagate(); err == nil {
		t.Error("output slot accepted two signals")
	}
}

func TestValidateArityRules(t *testing.T) {
	f := New()
	f.AddInput(0) // no outs: invalid
	if err := f.Validate(); err == nil {
		t.Error("dangling input accepted")
	}

	f2 := New()
	in := f2.AddInput(0)
	g := f2.AddGate("g")
	f2.Connect(in, g) // gate with no out: invalid
	if err := f2.Validate(); err == nil {
		t.Error("dangling gate accepted")
	}
}

func TestValidateCycleDetection(t *testing.T) {
	f := New()
	a := f.AddGate("a")
	b := f.AddGate("b")
	f.Connect(a, b)
	f.Connect(b, a)
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestInjectTwicePanics(t *testing.T) {
	f, _ := buildWire(t)
	f.Inject(pw(0, 0), 1)
	defer func() {
		if recover() == nil {
			t.Error("double injection did not panic")
		}
	}()
	f.Inject(pw(0, 0), 2)
}

func TestClearSignals(t *testing.T) {
	f, g := buildWire(t)
	f.SetGate(g, true)
	f.Inject(pw(0, 0), 1)
	f.ClearSignals()
	res, err := f.Propagate()
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	if len(res.Arrived) != 0 {
		t.Error("signals survived ClearSignals")
	}
	if _, ok := f.Injected(pw(0, 0)); ok {
		t.Error("Injected still reports a signal")
	}
}

func TestCounts(t *testing.T) {
	f := New()
	in := f.AddInput(0)
	sp := f.AddSplitter("s")
	g0, g1 := f.AddGate("g0"), f.AddGate("g1")
	cv := f.AddConverter("c")
	cb := f.AddCombiner("cb")
	out := f.AddOutput(0)
	f.Connect(in, sp)
	f.Connect(sp, g0)
	f.Connect(sp, g1)
	f.Connect(g0, cb)
	f.Connect(g1, cv)
	f.Connect(cv, cb)
	f.Connect(cb, out)
	if got := f.Crosspoints(); got != 2 {
		t.Errorf("Crosspoints = %d, want 2", got)
	}
	if got := f.Converters(); got != 1 {
		t.Errorf("Converters = %d, want 1", got)
	}
	if got := f.Count(Splitter); got != 1 {
		t.Errorf("splitters = %d, want 1", got)
	}
	if got := f.Elements(); got != 7 {
		t.Errorf("Elements = %d, want 7", got)
	}
}

func TestSplitLossDB(t *testing.T) {
	if SplitLossDB(1) != 0 {
		t.Error("1-way split should be lossless")
	}
	if math.Abs(SplitLossDB(2)-3.0103) > 0.001 {
		t.Errorf("2-way split loss = %v, want ~3.01 dB", SplitLossDB(2))
	}
	if math.Abs(SplitLossDB(10)-10) > 1e-9 {
		t.Errorf("10-way split loss = %v, want 10 dB", SplitLossDB(10))
	}
}

func TestSetGateOnNonGatePanics(t *testing.T) {
	f := New()
	sp := f.AddSplitter("s")
	defer func() {
		if recover() == nil {
			t.Error("SetGate on splitter did not panic")
		}
	}()
	f.SetGate(sp, true)
}

func TestResultDelivered(t *testing.T) {
	f := New()
	in := f.AddInput(0)
	sp := f.AddSplitter("s")
	o0, o1 := f.AddOutput(0), f.AddOutput(1)
	f.Connect(in, sp)
	f.Connect(sp, o0)
	f.Connect(sp, o1)
	f.Inject(pw(0, 0), 42)
	res, err := f.Propagate()
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	if got := res.Delivered(42); len(got) != 2 {
		t.Errorf("Delivered(42) = %v, want 2 slots", got)
	}
	if got := res.Delivered(7); len(got) != 0 {
		t.Errorf("Delivered(7) = %v, want none", got)
	}
}
