package fabric

import (
	"fmt"
	"math"

	"repro/internal/wdm"
)

// Optical power-loss constants, in dB, for the loss projection the paper
// attributes to crosspoint count (Section 2.3). The absolute values are
// representative of the devices cited there (SOA gate arrays, passive
// splitters/combiners); the experiments compare *relative* loss between
// designs, which depends only on the element structure.
const (
	// GateLossDB is the net insertion loss of an SOA crosspoint gate
	// (SOAs provide gain, but gate arrays are usually biased for a small
	// net loss to bound crosstalk).
	GateLossDB = 1.0
	// ConverterLossDB is the insertion loss of an all-optical wavelength
	// converter.
	ConverterLossDB = 2.0
	// MuxDemuxLossDB is the insertion loss of a (de)multiplexer stage.
	MuxDemuxLossDB = 0.5
)

// SplitLossDB returns the passive splitting/combining loss of a 1-to-f
// (or f-to-1) element: 10*log10(f) dB.
func SplitLossDB(fanout int) float64 {
	if fanout <= 1 {
		return 0
	}
	return 10 * math.Log10(float64(fanout))
}

// Signal is a tracked light signal inside the fabric.
type Signal struct {
	// ID is the caller-assigned identity (e.g. a connection number).
	ID int
	// Wave is the current wavelength of the signal.
	Wave wdm.Wavelength
	// LossDB accumulates the optical power loss along the path so far.
	LossDB float64
	// Hops counts traversed elements (a proxy for accumulated crosstalk:
	// each active element a signal crosses contributes leakage paths).
	Hops int
	// Gates counts traversed SOA gates specifically: the paper projects
	// crosstalk from the number of crosspoints on a signal's path.
	Gates int
	// OffGates counts off gates the signal leaked through (nonzero only
	// in the leaky propagation mode used for crosstalk estimation; a
	// value of 1 marks a first-order leak term).
	OffGates int
}

// Result is the outcome of a propagation pass.
type Result struct {
	// Arrived maps each output slot to the signal delivered there.
	Arrived map[wdm.PortWave]Signal
	// MaxLossDB is the largest accumulated loss among delivered signals.
	MaxLossDB float64
	// MaxGates is the largest per-signal gate count.
	MaxGates int
	// AllArrivals is populated only by the leaky (crosstalk) mode: every
	// signal copy reaching each slot, including leaks through off gates.
	AllArrivals map[wdm.PortWave][]Signal
}

// Delivered returns the set of output slots that received signal id.
func (r *Result) Delivered(id int) []wdm.PortWave {
	var out []wdm.PortWave
	for slot, s := range r.Arrived {
		if s.ID == id {
			out = append(out, slot)
		}
	}
	return out
}

// Propagate pushes every injected signal through the element graph and
// returns what arrived at the output terminals. It returns an error on
// any optical fault:
//
//   - a combiner receiving two simultaneous signals;
//   - a mux receiving two signals on one wavelength;
//   - an output terminal receiving two signals on one wavelength;
//   - a demux receiving a signal on a wavelength it has no output for.
//
// Element state (gates/converters) and injected signals are untouched, so
// a propagation can be repeated or diffed after state changes.
func (f *Fabric) Propagate() (*Result, error) {
	return f.propagate(false)
}

func (f *Fabric) propagate(leaky bool) (*Result, error) {
	order, err := f.topoOrder()
	if err != nil {
		return nil, err
	}
	incoming := make([][]Signal, len(f.elems))
	for slot, sid := range f.injected {
		in, ok := f.inputs[slot.Port]
		if !ok {
			return nil, fmt.Errorf("fabric: signal %d injected at %v but port has no input terminal", sid, slot)
		}
		incoming[in] = append(incoming[in], Signal{ID: sid, Wave: slot.Wave})
	}

	result := &Result{Arrived: make(map[wdm.PortWave]Signal)}
	if leaky {
		result.AllArrivals = make(map[wdm.PortWave][]Signal)
	}

	for _, id := range order {
		e := f.elems[id]
		sigs := incoming[id]
		if len(sigs) == 0 {
			continue
		}
		emit := func(s Signal, to ElemID) {
			incoming[to] = append(incoming[to], s)
		}
		switch e.kind {
		case Input:
			// The input fiber forwards all wavelengths to its single
			// downstream element (typically a demux).
			for _, s := range sigs {
				s.Hops++
				for _, out := range e.outs {
					emit(s, out)
				}
			}
		case Splitter:
			loss := SplitLossDB(len(e.outs))
			for _, s := range sigs {
				s.Hops++
				s.LossDB += loss
				for _, out := range e.outs {
					emit(s, out)
				}
			}
		case Gate:
			if !e.gateOn {
				if !leaky {
					continue // signal absorbed
				}
				// Leaky mode: the gate's finite extinction lets an
				// attenuated copy through.
				for _, s := range sigs {
					s.Hops++
					s.Gates++
					s.OffGates++
					s.LossDB += GateLossDB + GateExtinctionDB
					emit(s, e.outs[0])
				}
				continue
			}
			for _, s := range sigs {
				s.Hops++
				s.Gates++
				s.LossDB += GateLossDB
				emit(s, e.outs[0])
			}
		case Converter:
			for _, s := range sigs {
				s.Hops++
				s.LossDB += ConverterLossDB
				if e.convertTo != NoConversion {
					s.Wave = e.convertTo
				}
				emit(s, e.outs[0])
			}
		case Demux:
			for _, s := range sigs {
				w := int(s.Wave)
				if w < 0 || w >= len(e.outs) {
					return nil, fmt.Errorf("fabric: demux %q received wavelength λ%d but has %d outputs", e.label, w, len(e.outs))
				}
				s.Hops++
				s.LossDB += MuxDemuxLossDB
				emit(s, e.outs[w])
			}
		case Combiner:
			if !leaky && len(sigs) > 1 {
				return nil, fmt.Errorf("fabric: combiner %q received %d simultaneous signals (ids %v) — combiners admit one",
					e.label, len(sigs), signalIDs(sigs))
			}
			for _, s := range sigs {
				s.Hops++
				s.LossDB += SplitLossDB(len(e.ins))
				emit(s, e.outs[0])
			}
		case Mux:
			seen := make(map[wdm.Wavelength]int, len(sigs))
			for _, s := range sigs {
				if prev, dup := seen[s.Wave]; dup && !leaky {
					return nil, fmt.Errorf("fabric: mux %q carries two signals (ids %d, %d) on wavelength λ%d",
						e.label, prev, s.ID, s.Wave)
				}
				seen[s.Wave] = s.ID
				s.Hops++
				s.LossDB += MuxDemuxLossDB
				emit(s, e.outs[0])
			}
		case Output:
			for _, s := range sigs {
				slot := wdm.PortWave{Port: e.port, Wave: s.Wave}
				if leaky {
					result.AllArrivals[slot] = append(result.AllArrivals[slot], s)
					if s.OffGates == 0 {
						result.Arrived[slot] = s
					}
					continue
				}
				if prev, dup := result.Arrived[slot]; dup {
					return nil, fmt.Errorf("fabric: output slot %v receives two signals (ids %d, %d)",
						slot, prev.ID, s.ID)
				}
				result.Arrived[slot] = s
				if s.LossDB > result.MaxLossDB {
					result.MaxLossDB = s.LossDB
				}
				if s.Gates > result.MaxGates {
					result.MaxGates = s.Gates
				}
			}
		}
	}
	return result, nil
}

func signalIDs(sigs []Signal) []int {
	ids := make([]int, len(sigs))
	for i, s := range sigs {
		ids[i] = s.ID
	}
	return ids
}
