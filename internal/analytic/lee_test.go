package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLeeBlockingLimits(t *testing.T) {
	if got := LeeBlocking(0, 0, 5); got != 0 {
		t.Errorf("idle links: B = %v, want 0", got)
	}
	if got := LeeBlocking(1, 1, 5); got != 1 {
		t.Errorf("saturated links: B = %v, want 1", got)
	}
	if got := LeeBlocking(0.5, 0.5, 0); got != 1 {
		t.Errorf("no middles: B = %v, want 1", got)
	}
}

func TestLeeBlockingKnownValue(t *testing.T) {
	// p1 = p2 = 0.5: path busy = 0.75; m = 2: 0.5625.
	if got := LeeBlocking(0.5, 0.5, 2); math.Abs(got-0.5625) > 1e-12 {
		t.Errorf("B = %v, want 0.5625", got)
	}
}

func TestLeeBlockingMonotone(t *testing.T) {
	f := func(pRaw, mRaw uint8) bool {
		p := float64(pRaw%100) / 100
		m := int(mRaw%20) + 1
		// More middles never increase blocking.
		if LeeBlocking(p, p, m+1) > LeeBlocking(p, p, m)+1e-15 {
			return false
		}
		// Higher occupancy never decreases blocking.
		return LeeBlocking(p+0.005, p, m) >= LeeBlocking(p, p, m)-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeeBlockingClampsInputs(t *testing.T) {
	if got := LeeBlocking(-0.5, 2.0, 3); got != 1 {
		t.Errorf("clamped extremes: B = %v, want 1 (p2 saturated)", got)
	}
}

func TestLeeMulticastReducesToUnicast(t *testing.T) {
	for _, p := range []float64{0.1, 0.4, 0.9} {
		for m := 1; m <= 8; m++ {
			if a, b := LeeMulticast(p, p, 1, m), LeeBlocking(p, p, m); math.Abs(a-b) > 1e-12 {
				t.Errorf("p=%v m=%d: multicast f=1 %v != unicast %v", p, m, a, b)
			}
		}
	}
}

func TestLeeMulticastGrowsWithFanout(t *testing.T) {
	prev := 0.0
	for f := 1; f <= 8; f++ {
		b := LeeMulticast(0.3, 0.3, f, 6)
		if b < prev {
			t.Errorf("fanout %d: B=%v below fanout %d's %v", f, b, f-1, prev)
		}
		prev = b
	}
	if got := LeeMulticast(0.3, 0.3, 0, 6); got != 0 {
		t.Errorf("zero fanout: B = %v, want 0", got)
	}
}

func TestLinkOccupancy(t *testing.T) {
	// 4 ports per module, mean 1 busy wavelength each, 8 middles, k=2:
	// p = 1*4/(8*2) = 0.25.
	if got := LinkOccupancy(1, 4, 8, 2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("p = %v, want 0.25", got)
	}
	if got := LinkOccupancy(10, 4, 2, 1); got != 1 {
		t.Errorf("overload not clamped: %v", got)
	}
	if got := LinkOccupancy(1, 4, 0, 2); got != 1 {
		t.Errorf("m=0 should saturate: %v", got)
	}
}

func TestMinMForTarget(t *testing.T) {
	m, err := MinMForTarget(0.5, 0.5, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	// 0.75^m <= 0.001 -> m >= 24.01 -> 25.
	if m != 25 {
		t.Errorf("m = %d, want 25", m)
	}
	if b := LeeBlocking(0.5, 0.5, m); b > 0.001 {
		t.Errorf("returned m misses target: B = %v", b)
	}
	if b := LeeBlocking(0.5, 0.5, m-1); b <= 0.001 {
		t.Errorf("m not minimal: B(m-1) = %v", b)
	}
	if _, err := MinMForTarget(0.5, 0.5, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := MinMForTarget(1, 1, 0.01); err == nil {
		t.Error("saturated links accepted")
	}
	if m, err := MinMForTarget(0, 0, 0.01); err != nil || m != 1 {
		t.Errorf("idle links: (%d, %v), want (1, nil)", m, err)
	}
}
