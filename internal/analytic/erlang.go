package analytic

import "math"

// ErlangB returns the Erlang B blocking probability for offered load a
// Erlangs on c circuits (the M/G/c/c loss formula), computed with the
// numerically stable recursion
//
//	B(0) = 1,  B(i) = a·B(i-1) / (i + a·B(i-1)).
//
// It is insensitive to the holding-time distribution beyond its mean —
// the classical reason the traffic engine's Pareto holding times should
// NOT move the blocking curve of a single shared link, making ErlangB a
// useful null reference against the measured heavy-tail sweeps.
func ErlangB(a float64, c int) float64 {
	if c < 0 || a < 0 {
		return 1
	}
	b := 1.0
	for i := 1; i <= c; i++ {
		b = a * b / (float64(i) + a*b)
	}
	return b
}

// LeeLoadPoint maps one offered-load point of the traffic engine's
// Erlang sweep onto Lee's multicast approximation. erlangs is the mean
// number of concurrent sessions per fabric plane and meanFanout the
// mean multicast fanout, so a session holds one source slot and
// meanFanout destination slots: mean busy wavelengths per input port
// are erlangs/N and per output port erlangs·meanFanout/N. With
// n = N/r ports per module those feed LinkOccupancy, and the fanout
// (rounded to the nearest integer ≥ 1) feeds LeeMulticast:
//
//	p1 = erlangs/N · n/(m·k),  p2 = erlangs·f̄/N · n/(m·k)
//	B  = (1 - (1-p1)(1-p2)^f)^m
//
// This is an independence approximation — it ignores the engine's
// closed-loop admissibility and any hotspot skew — but it places the
// knee: near zero while the links are slack, rising steeply as m·k
// link capacity saturates. The paper's exact bounds are the m at which
// the true curve is pinned to zero regardless of load.
func LeeLoadPoint(erlangs, meanFanout float64, nPorts, r, m, k int) float64 {
	if nPorts <= 0 || r <= 0 {
		return 1
	}
	if meanFanout < 1 {
		meanFanout = 1
	}
	n := nPorts / r
	p1 := LinkOccupancy(erlangs/float64(nPorts), n, m, k)
	p2 := LinkOccupancy(erlangs*meanFanout/float64(nPorts), n, m, k)
	f := int(math.Round(meanFanout))
	if f < 1 {
		f = 1
	}
	return LeeMulticast(p1, p2, f, m)
}
