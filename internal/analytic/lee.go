// Package analytic provides classical closed-form approximations for the
// blocking behaviour of undersized multistage networks, principally
// Lee's independent-link model. The paper proves exact zero-blocking
// conditions; below those bounds the network blocks with some
// probability, and Lee's 1955 approximation is the standard analytical
// estimate the simulation results are compared against (see
// BenchmarkLeeVsSimulation).
package analytic

import (
	"fmt"
	"math"
)

// LeeBlocking returns Lee's approximation of the point-to-point blocking
// probability of a three-stage network with m middle modules, where each
// first-stage and third-stage link independently carries traffic with
// occupancy p in [0, 1]:
//
//	B = (1 - (1-p1)*(1-p2))^m
//
// with p1 the input-link and p2 the output-link occupancy. A path
// through one middle module is free when both its links are free; the m
// paths are treated as independent.
func LeeBlocking(p1, p2 float64, m int) float64 {
	if m < 1 {
		return 1
	}
	p1 = clamp01(p1)
	p2 = clamp01(p2)
	pathBusy := 1 - (1-p1)*(1-p2)
	return math.Pow(pathBusy, float64(m))
}

// LinkOccupancy converts an offered per-port load (Erlangs per input
// port, i.e. the expected number of busy wavelengths out of k) into the
// per-plane occupancy of a first-stage link in an n-port-per-module,
// m-middle-module network: the module's n sources on one plane spread
// their traffic over m links, so
//
//	p = a * n / (m * k)
//
// where a is the expected busy fraction of a port's k wavelengths times
// k (i.e. mean busy wavelengths per port). The result is clamped to 1.
func LinkOccupancy(busyWavesPerPort float64, n, m, k int) float64 {
	if m <= 0 || k <= 0 {
		return 1
	}
	return clamp01(busyWavesPerPort * float64(n) / (float64(m) * float64(k)))
}

// LeeMulticast extends the approximation to a fanout-f multicast routed
// through a single middle module (the x = 1 strategy): the chosen middle
// must have its input link free and all f output links free,
//
//	B = (1 - (1-p1)*(1-p2)^f)^m.
//
// For f = 1 this reduces to LeeBlocking. Splitting across x middles
// lowers the effective f per middle; the simulation comparison uses the
// x the router actually applies.
func LeeMulticast(p1, p2 float64, f, m int) float64 {
	if m < 1 {
		return 1
	}
	if f < 1 {
		return 0
	}
	p1 = clamp01(p1)
	p2 = clamp01(p2)
	pathBusy := 1 - (1-p1)*math.Pow(1-p2, float64(f))
	return math.Pow(pathBusy, float64(m))
}

// MinMForTarget returns the smallest m with LeeBlocking(p1, p2, m) at or
// below the target probability — the analytical "engineering" sizing
// rule, contrasted with the paper's exact nonblocking bounds in the
// design tools.
func MinMForTarget(p1, p2, target float64) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("analytic: target probability %v must be in (0, 1)", target)
	}
	pathBusy := 1 - (1-clamp01(p1))*(1-clamp01(p2))
	if pathBusy >= 1 {
		return 0, fmt.Errorf("analytic: links saturated (occupancy %v); no m reaches the target", pathBusy)
	}
	if pathBusy <= 0 {
		return 1, nil
	}
	m := math.Log(target) / math.Log(pathBusy)
	return int(math.Ceil(m)), nil
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
