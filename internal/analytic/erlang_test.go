package analytic

import (
	"math"
	"testing"
)

// TestErlangBKnownValues pins the recursion against the classical
// tables: B(A=10, N=10) ≈ 0.2146, B(A=2, N=5) ≈ 0.0367.
func TestErlangBKnownValues(t *testing.T) {
	cases := []struct {
		a    float64
		c    int
		want float64
	}{
		{10, 10, 0.21459},
		{2, 5, 0.03670},
		{1, 1, 0.5},
	}
	for _, tc := range cases {
		if got := ErlangB(tc.a, tc.c); math.Abs(got-tc.want) > 5e-4 {
			t.Errorf("ErlangB(%g, %d) = %.5f, want %.5f", tc.a, tc.c, got, tc.want)
		}
	}
}

func TestErlangBEdges(t *testing.T) {
	if got := ErlangB(5, 0); got != 1 {
		t.Errorf("ErlangB(5, 0) = %g, want 1 (no circuits, all lost)", got)
	}
	if got := ErlangB(0, 5); got != 0 {
		t.Errorf("ErlangB(0, 5) = %g, want 0 (no load, no loss)", got)
	}
	if ErlangB(-1, 5) != 1 || ErlangB(5, -1) != 1 {
		t.Error("negative inputs should saturate to 1")
	}
}

// TestErlangBMonotone: loss grows with offered load and shrinks with
// circuits.
func TestErlangBMonotone(t *testing.T) {
	prev := 0.0
	for _, a := range []float64{1, 2, 4, 8, 16} {
		b := ErlangB(a, 6)
		if b <= prev {
			t.Errorf("ErlangB(%g, 6) = %g not increasing in load", a, b)
		}
		prev = b
	}
	prev = 1.0
	for c := 1; c <= 20; c++ {
		b := ErlangB(8, c)
		if b >= prev {
			t.Errorf("ErlangB(8, %d) = %g not decreasing in circuits", c, b)
		}
		prev = b
	}
}

// TestLeeLoadPoint checks the overlay has the curve shape the sweeps
// compare against: negligible at light load, monotone in load,
// saturating toward 1, and relieved by more middle modules.
func TestLeeLoadPoint(t *testing.T) {
	// The standard small fabric: N=16, r=4, k=2, m at the MSW bound 13.
	if b := LeeLoadPoint(1, 2, 16, 4, 13, 2); b > 1e-6 {
		t.Errorf("light load: LeeLoadPoint = %g, want ~0", b)
	}
	prev := -1.0
	for _, e := range []float64{1, 4, 16, 64, 256} {
		b := LeeLoadPoint(e, 2, 16, 4, 3, 2)
		if b < prev {
			t.Errorf("LeeLoadPoint at %g Erlangs = %g dropped below %g", e, b, prev)
		}
		if b < 0 || b > 1 {
			t.Errorf("LeeLoadPoint at %g Erlangs = %g outside [0, 1]", e, b)
		}
		prev = b
	}
	if b := LeeLoadPoint(1e4, 2, 16, 4, 3, 2); b < 0.99 {
		t.Errorf("saturation: LeeLoadPoint = %g, want -> 1", b)
	}
	// More middle modules can only help at fixed load.
	starved := LeeLoadPoint(12, 2, 16, 4, 3, 2)
	provisioned := LeeLoadPoint(12, 2, 16, 4, 13, 2)
	if provisioned >= starved {
		t.Errorf("m=13 blocking %g not below m=3 blocking %g", provisioned, starved)
	}
	if b := LeeLoadPoint(5, 2, 0, 4, 3, 2); b != 1 {
		t.Errorf("degenerate shape: LeeLoadPoint = %g, want 1", b)
	}
}
