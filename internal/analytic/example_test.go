package analytic_test

import (
	"fmt"

	"repro/internal/analytic"
)

// Sizing a middle stage for a target blocking probability instead of
// strict nonblocking: at 30% link occupancy, eight middle modules
// already push Lee blocking below 1%.
func ExampleLeeBlocking() {
	p := analytic.LinkOccupancy(1.2, 4, 8, 2) // 4-port modules, 8 middles, k=2
	fmt.Printf("occupancy %.2f\n", p)
	fmt.Printf("B(m=4) = %.4f\n", analytic.LeeBlocking(p, p, 4))
	fmt.Printf("B(m=8) = %.4f\n", analytic.LeeBlocking(p, p, 8))
	m, err := analytic.MinMForTarget(p, p, 0.001)
	if err != nil {
		panic(err)
	}
	fmt.Printf("m for B<=0.001: %d\n", m)
	// Output:
	// occupancy 0.30
	// B(m=4) = 0.0677
	// B(m=8) = 0.0046
	// m for B<=0.001: 11
}
