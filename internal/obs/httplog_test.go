package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWithRequestLog(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))

	var seenID string
	h := WithRequestLog(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenID = RequestID(r.Context())
		w.WriteHeader(http.StatusTeapot)
	}), logger)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/connect", nil))

	if seenID == "" || !strings.HasPrefix(seenID, "req-") {
		t.Fatalf("handler saw request id %q, want req-*", seenID)
	}
	if got := rec.Header().Get("X-Request-Id"); got != seenID {
		t.Fatalf("X-Request-Id = %q, want %q (same id as context)", got, seenID)
	}

	var line struct {
		Msg       string `json:"msg"`
		RequestID string `json:"request_id"`
		Method    string `json:"method"`
		Path      string `json:"path"`
		Status    int    `json:"status"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, logBuf.Bytes())
	}
	if line.Msg != "request" || line.RequestID != seenID || line.Method != "GET" ||
		line.Path != "/v1/connect" || line.Status != http.StatusTeapot {
		t.Fatalf("log line = %+v, want request/%s/GET//v1/connect/418", line, seenID)
	}
}

func TestWithRequestLogDistinctIDs(t *testing.T) {
	h := WithRequestLog(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil)))
	ids := map[string]bool{}
	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		ids[rec.Header().Get("X-Request-Id")] = true
	}
	if len(ids) != 5 {
		t.Fatalf("got %d distinct ids over 5 requests, want 5: %v", len(ids), ids)
	}
}

func TestRequestIDOutsideRequest(t *testing.T) {
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("RequestID on bare context = %q, want empty", got)
	}
	ctx := WithRequestID(context.Background(), "req-custom")
	if got := RequestID(ctx); got != "req-custom" {
		t.Fatalf("RequestID = %q, want req-custom", got)
	}
}

// TestStatusDefault: a handler that never calls WriteHeader logs 200.
func TestStatusDefault(t *testing.T) {
	var logBuf bytes.Buffer
	h := WithRequestLog(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}), slog.New(slog.NewJSONHandler(&logBuf, nil)))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	var line struct {
		Status int `json:"status"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if line.Status != 200 {
		t.Fatalf("implicit status logged as %d, want 200", line.Status)
	}
}
