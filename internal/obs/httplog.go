package obs

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// Request-id plumbing. Every request through WithRequestLog gets a
// process-unique id, carried on the request context and echoed in the
// X-Request-Id response header, so a client-reported failure can be
// joined against the server's structured log — and against the blocking
// forensics a 409 leaves behind.

type ctxKey int

const requestIDKey ctxKey = iota

var nextRequestID atomic.Uint64

// RequestID returns the request id WithRequestLog assigned to this
// context, or "" outside an instrumented request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// WithRequestID returns a context carrying the given request id —
// exposed for tests and for callers that generate ids elsewhere.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// WithRequestLog wraps h: each request is assigned a request id
// (propagated via context, echoed as X-Request-Id) and logged on
// completion with method, path, status, and elapsed time. A nil logger
// uses slog.Default().
func WithRequestLog(h http.Handler, logger *slog.Logger) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%08d", nextRequestID.Add(1))
		ctx := WithRequestID(r.Context(), id)
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, r.WithContext(ctx))
		logger.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("elapsed", time.Since(start)),
		)
	})
}
