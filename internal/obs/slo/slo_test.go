package slo

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, advanceable clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func window(t *testing.T, s Snapshot, name string) WindowSLI {
	t.Helper()
	for _, w := range s.Windows {
		if w.Window == name {
			return w
		}
	}
	t.Fatalf("snapshot has no window %q", name)
	return WindowSLI{}
}

func alert(t *testing.T, s Snapshot, name string) AlertState {
	t.Helper()
	for _, a := range s.Alerts {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("snapshot has no alert %q", name)
	return AlertState{}
}

// TestIdleIsHealthy: with no traffic, availability is 1.0 everywhere,
// burn is zero, and nothing fires — the at-bound acceptance shape.
func TestIdleIsHealthy(t *testing.T) {
	e := New(Config{Now: newFakeClock().Now})
	s := e.Snapshot()
	if !s.Healthy {
		t.Fatal("idle engine unhealthy")
	}
	for _, w := range s.Windows {
		if w.Availability != 1 || w.LatencyOK != 1 || w.AvailabilityBurn != 0 || w.LatencyBurn != 0 {
			t.Fatalf("idle window %+v", w)
		}
	}
	for _, a := range s.Alerts {
		if a.AvailabilityFiring || a.LatencyFiring {
			t.Fatalf("idle alert fires: %+v", a)
		}
	}
}

// TestAllGoodStaysPerfect: routed-only traffic keeps availability at
// exactly 1.0 and burn at exactly 0 — the paper's nonblocking claim as
// an SLO.
func TestAllGoodStaysPerfect(t *testing.T) {
	clk := newFakeClock()
	e := New(Config{Now: clk.Now})
	for i := 0; i < 5000; i++ {
		e.Record(true, 100*time.Microsecond)
		if i%100 == 0 {
			clk.Advance(time.Second)
		}
	}
	s := e.Snapshot()
	if !s.Healthy {
		t.Fatal("all-good traffic unhealthy")
	}
	w := window(t, s, "5m")
	if w.Total == 0 || w.Bad != 0 || w.Availability != 1 || w.AvailabilityBurn != 0 {
		t.Fatalf("5m window %+v", w)
	}
}

// TestBurnMath: 1% blocked against a 99.9% objective is burn 10.
func TestBurnMath(t *testing.T) {
	clk := newFakeClock()
	e := New(Config{Now: clk.Now})
	for i := 0; i < 1000; i++ {
		e.Record(i%100 != 0, 100*time.Microsecond)
	}
	w := window(t, e.Snapshot(), "5m")
	if w.Bad != 10 {
		t.Fatalf("bad = %d, want 10", w.Bad)
	}
	if got, want := w.AvailabilityBurn, 10.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("burn = %g, want %g", got, want)
	}
	if got, want := w.Availability, 0.99; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("availability = %g, want %g", got, want)
	}
}

// TestFastAlertNeedsBothWindows: a short blip trips the 5m window but
// not the 1h window once it is diluted — the alert must not fire on the
// short window alone, and must fire while both burn.
func TestFastAlertNeedsBothWindows(t *testing.T) {
	clk := newFakeClock()
	e := New(Config{Now: clk.Now})

	// 30% blocked for a burst: both 5m and 1h see burn 300 >> 14.4.
	for i := 0; i < 1000; i++ {
		e.Record(i%10 >= 3, time.Microsecond)
	}
	s := e.Snapshot()
	if a := alert(t, s, "fast"); !a.AvailabilityFiring {
		t.Fatalf("fast alert quiet during burst: %+v", a)
	}
	if s.Healthy {
		t.Fatal("snapshot healthy during burst")
	}

	// 10 minutes later the burst has left the 5m window; the 1h window
	// still burns, so the paired alert clears.
	clk.Advance(10 * time.Minute)
	for i := 0; i < 1000; i++ {
		e.Record(true, time.Microsecond)
	}
	s = e.Snapshot()
	if w := window(t, s, "5m"); w.AvailabilityBurn != 0 {
		t.Fatalf("5m burn %g after recovery, want 0", w.AvailabilityBurn)
	}
	if w := window(t, s, "1h"); w.AvailabilityBurn <= 14.4 {
		t.Fatalf("1h burn %g, want the burst still visible", w.AvailabilityBurn)
	}
	if a := alert(t, s, "fast"); a.AvailabilityFiring {
		t.Fatalf("fast alert still firing after short window cleared: %+v", a)
	}
}

// TestLatencySLIIndependent: slow-but-routed traffic burns the latency
// budget without touching availability.
func TestLatencySLIIndependent(t *testing.T) {
	clk := newFakeClock()
	e := New(Config{LatencyThreshold: 500 * time.Microsecond, Now: clk.Now})
	for i := 0; i < 100; i++ {
		e.Record(true, 2*time.Millisecond) // routed, but slow
	}
	s := e.Snapshot()
	w := window(t, s, "5m")
	if w.Availability != 1 || w.AvailabilityBurn != 0 {
		t.Fatalf("slow traffic burned availability: %+v", w)
	}
	if w.LatencyOK != 0 || w.LatencyBurn < 100-1e-9 || w.LatencyBurn > 100+1e-9 {
		t.Fatalf("latency SLI = %+v, want latency_ok 0 burn ~100", w)
	}
	if a := alert(t, s, "fast"); !a.LatencyFiring || a.AvailabilityFiring {
		t.Fatalf("fast alert = %+v, want latency-only", a)
	}
}

// TestWindowExpiry: counts age out of each window at its own width.
func TestWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	e := New(Config{Now: clk.Now})
	for i := 0; i < 100; i++ {
		e.Record(false, time.Microsecond)
	}

	clk.Advance(6 * time.Minute)
	s := e.Snapshot()
	if w := window(t, s, "5m"); w.Total != 0 {
		t.Fatalf("5m window still holds %d after 6m", w.Total)
	}
	if w := window(t, s, "1h"); w.Total != 100 {
		t.Fatalf("1h window holds %d after 6m, want 100", w.Total)
	}

	clk.Advance(73 * time.Hour)
	s = e.Snapshot()
	if w := window(t, s, "3d"); w.Total != 0 {
		t.Fatalf("3d window still holds %d after 73h", w.Total)
	}
	if !s.Healthy {
		t.Fatal("fully aged-out engine unhealthy")
	}
}

// TestRingReuse: writing for longer than the longest window must not
// resurrect stale buckets (ring slots are reused by step identity).
func TestRingReuse(t *testing.T) {
	clk := newFakeClock()
	e := New(Config{
		Resolution: time.Second,
		Windows:    []Window{{"short", 5 * time.Second}, {"long", 20 * time.Second}},
		Alerts:     []Alert{{Name: "a", Short: "short", Long: "long", Threshold: 1}},
		Now:        clk.Now,
	})
	// Bad traffic first, then > ring-length of good traffic.
	e.Record(false, time.Microsecond)
	for i := 0; i < 60; i++ {
		clk.Advance(time.Second)
		e.Record(true, time.Microsecond)
	}
	s := e.Snapshot()
	if w := window(t, s, "long"); w.Bad != 0 {
		t.Fatalf("stale bad count resurrected: %+v", w)
	}
	if !s.Healthy {
		t.Fatal("engine unhealthy after full ring turnover of good traffic")
	}
}

// TestSnapshotJSON: the wire shape served at /v1/slo round-trips.
func TestSnapshotJSON(t *testing.T) {
	e := New(Config{Now: newFakeClock().Now})
	e.Record(false, 2*time.Millisecond)
	b, err := json.Marshal(e.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Objective != 0.999 || len(got.Windows) != 4 || len(got.Alerts) != 2 {
		t.Fatalf("round-tripped snapshot = %+v", got)
	}
}

// TestConcurrentRecord: Record and Snapshot race-free under load (run
// with -race).
func TestConcurrentRecord(t *testing.T) {
	clk := newFakeClock()
	e := New(Config{Now: clk.Now})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e.Record(i%50 != 0, time.Duration(i)*time.Microsecond)
				if i%100 == 0 {
					_ = e.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if w := window(t, e.Snapshot(), "3d"); w.Total != 8000 {
		t.Fatalf("total = %d, want 8000", w.Total)
	}
}
