// Package slo computes serving SLIs and multi-window burn-rate alerts
// over the switchd request stream, stdlib-only.
//
// Two SLIs are tracked, both per routing operation (Connect and
// AddBranch — the requests the theorems speak about):
//
//   - availability: 1 − P_block, good = the fabric routed the request.
//     At or above the Theorem 1/2 sufficient bound this SLI is exactly
//     1.0 forever — the paper's claim as a service objective.
//   - latency: the fraction of requests whose fabric operation finished
//     under the configured threshold.
//
// Burn rate is the standard SRE quantity: the error rate of a sliding
// window divided by the objective's error budget (1 − objective). Burn
// 1.0 spends the budget exactly at the sustainable pace; burn 14.4 over
// an hour spends a 30-day budget in ~2 days. Alerts pair a long and a
// short window so they are both fast and unflappable: the fast pair
// (5m && 1h over threshold 14.4) catches sudden budget bleed, the slow
// pair (6h && 3d over threshold 1) catches sustained low-grade bleed.
//
// Windowing is delegated to the embedded time-series store: the engine
// keeps live cumulative counters (ops, bad, slow) and persists them
// into an internal tsdb.Store once per resolution step; a sliding
// window's count is then live − CounterAt(window start) — the same
// cumulative-counter baseline primitive rate()/increase() and the
// burn-rate alert form use, so the repo has exactly one windowing
// implementation. Memory stays bounded by longest-window/resolution
// via the store's retention eviction, as before.
package slo

import (
	"sync"
	"time"

	"repro/internal/obs/tsdb"
)

// Window is one sliding window's configuration.
type Window struct {
	Name string        // e.g. "5m"
	D    time.Duration // width
}

// Alert pairs a long and a short window with a burn threshold: it fires
// while BOTH windows burn above the threshold (the long window carries
// the evidence, the short window clears quickly once the cause stops).
type Alert struct {
	Name        string // "fast" | "slow"
	Short, Long string // window names
	Threshold   float64
}

// Config parameterizes an Engine. The zero value gives the standard
// multiwindow setup: availability objective 99.9%, latency objective
// 99% under 1ms, windows 5m/1h/6h/3d, fast alert 5m+1h@14.4, slow
// alert 6h+3d@1.
type Config struct {
	// Objective is the availability target in (0,1) (0 = 0.999).
	Objective float64
	// LatencyObjective is the under-threshold fraction target (0 = 0.99).
	LatencyObjective float64
	// LatencyThreshold is the per-operation latency bound the latency
	// SLI counts against (0 = 1ms).
	LatencyThreshold time.Duration
	// Resolution is the counter step width (0 = 10s). Windows are
	// quantized to it.
	Resolution time.Duration
	// Windows are the sliding windows to track (nil = 5m, 1h, 6h, 3d).
	Windows []Window
	// Alerts are the multiwindow burn alerts (nil = fast 5m/1h@14.4,
	// slow 6h/3d@1). Window names must exist in Windows.
	Alerts []Alert
	// Now is the clock (nil = time.Now) — injectable for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Objective == 0 {
		c.Objective = 0.999
	}
	if c.LatencyObjective == 0 {
		c.LatencyObjective = 0.99
	}
	if c.LatencyThreshold == 0 {
		c.LatencyThreshold = time.Millisecond
	}
	if c.Resolution == 0 {
		c.Resolution = 10 * time.Second
	}
	if c.Windows == nil {
		c.Windows = []Window{
			{"5m", 5 * time.Minute},
			{"1h", time.Hour},
			{"6h", 6 * time.Hour},
			{"3d", 72 * time.Hour},
		}
	}
	if c.Alerts == nil {
		c.Alerts = []Alert{
			{Name: "fast", Short: "5m", Long: "1h", Threshold: 14.4},
			{Name: "slow", Short: "6h", Long: "3d", Threshold: 1},
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// The engine's cumulative counters as stored series.
const (
	seriesOps  = "slo_ops_total"
	seriesBad  = "slo_bad_total"
	seriesSlow = "slo_slow_total"
)

// Engine accumulates request outcomes and serves sliding-window SLI
// snapshots. Safe for concurrent use.
type Engine struct {
	cfg   Config
	store *tsdb.Store

	mu      sync.Mutex
	total   int64
	bad     int64 // blocked requests
	slow    int64 // requests over the latency threshold
	curStep int64 // -1 = no step open
}

// New builds an engine from cfg (zero value ok).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	longest := time.Duration(0)
	for _, w := range cfg.Windows {
		if w.D > longest {
			longest = w.D
		}
	}
	store := tsdb.New(tsdb.Config{
		// One raw tier holding a point per resolution step for the
		// longest window (plus slack for the baseline lookup at the
		// window's left edge).
		Interval:  cfg.Resolution,
		Tiers:     []tsdb.Tier{{Res: 0, Retention: longest + 2*cfg.Resolution}},
		MaxSeries: 8,
		Now:       cfg.Now,
	})
	return &Engine{cfg: cfg, store: store, curStep: -1}
}

// Config returns the engine's normalized configuration.
func (e *Engine) Config() Config { return e.cfg }

// flushLocked persists the live counters as one point per series at
// the end of the step that just closed. The step's end is always in
// the past when this runs (a newer step has opened), so stored
// timestamps stay ≤ now.
func (e *Engine) flushLocked(step int64) {
	at := time.Unix(0, (step+1)*int64(e.cfg.Resolution))
	e.store.Append(at, seriesOps, nil, tsdb.KindCounter, float64(e.total))
	e.store.Append(at, seriesBad, nil, tsdb.KindCounter, float64(e.bad))
	e.store.Append(at, seriesSlow, nil, tsdb.KindCounter, float64(e.slow))
}

// rollLocked closes the open step when now has moved past it.
func (e *Engine) rollLocked(now time.Time) int64 {
	step := now.UnixNano() / int64(e.cfg.Resolution)
	if e.curStep >= 0 && step != e.curStep {
		e.flushLocked(e.curStep)
	}
	e.curStep = step
	return step
}

// Record adds one routing-operation outcome: good reports whether the
// fabric routed it (false = blocked), d the fabric operation latency.
func (e *Engine) Record(good bool, d time.Duration) {
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rollLocked(now)
	e.total++
	if !good {
		e.bad++
	}
	if d > e.cfg.LatencyThreshold {
		e.slow++
	}
}

// WindowSLI is one window's slice of a Snapshot.
type WindowSLI struct {
	Window string `json:"window"`
	Total  int64  `json:"total"`
	Bad    int64  `json:"bad"`
	Slow   int64  `json:"slow"`
	// Availability is 1 − bad/total (1.0 with no traffic: an idle
	// service has spent no budget).
	Availability float64 `json:"availability"`
	// LatencyOK is 1 − slow/total.
	LatencyOK float64 `json:"latency_ok"`
	// Burn rates: window error rate over the objective's error budget.
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
}

// AlertState is one multiwindow alert's evaluation.
type AlertState struct {
	Name      string  `json:"name"`
	Short     string  `json:"short_window"`
	Long      string  `json:"long_window"`
	Threshold float64 `json:"threshold"`
	// Firing reports whether BOTH windows burn above the threshold, per
	// SLI.
	AvailabilityFiring bool `json:"availability_firing"`
	LatencyFiring      bool `json:"latency_firing"`
}

// Snapshot is the engine's full state, served at GET /v1/slo.
type Snapshot struct {
	Objective          float64 `json:"objective"`
	LatencyObjective   float64 `json:"latency_objective"`
	LatencyThresholdUs float64 `json:"latency_threshold_us"`
	// Healthy is true while no alert fires on any SLI.
	Healthy bool         `json:"healthy"`
	Windows []WindowSLI  `json:"windows"`
	Alerts  []AlertState `json:"alerts"`
}

// Snapshot evaluates every window and alert at the current clock.
func (e *Engine) Snapshot() Snapshot {
	now := e.cfg.Now()
	e.mu.Lock()
	e.rollLocked(now)
	total, bad, slow := e.total, e.bad, e.slow
	e.mu.Unlock()

	snap := Snapshot{
		Objective:          e.cfg.Objective,
		LatencyObjective:   e.cfg.LatencyObjective,
		LatencyThresholdUs: float64(e.cfg.LatencyThreshold.Nanoseconds()) / 1e3,
		Healthy:            true,
	}
	byName := make(map[string]WindowSLI, len(e.cfg.Windows))
	for _, w := range e.cfg.Windows {
		from := now.Add(-w.D)
		s := WindowSLI{
			Window:       w.Name,
			Total:        total - int64(e.store.CounterAt(seriesOps, nil, from)),
			Bad:          bad - int64(e.store.CounterAt(seriesBad, nil, from)),
			Slow:         slow - int64(e.store.CounterAt(seriesSlow, nil, from)),
			Availability: 1, LatencyOK: 1,
		}
		if s.Total > 0 {
			s.Availability = 1 - float64(s.Bad)/float64(s.Total)
			s.LatencyOK = 1 - float64(s.Slow)/float64(s.Total)
			s.AvailabilityBurn = (1 - s.Availability) / (1 - e.cfg.Objective)
			s.LatencyBurn = (1 - s.LatencyOK) / (1 - e.cfg.LatencyObjective)
		}
		snap.Windows = append(snap.Windows, s)
		byName[w.Name] = s
	}
	for _, a := range e.cfg.Alerts {
		st := AlertState{Name: a.Name, Short: a.Short, Long: a.Long, Threshold: a.Threshold}
		sh, long := byName[a.Short], byName[a.Long]
		st.AvailabilityFiring = sh.AvailabilityBurn > a.Threshold && long.AvailabilityBurn > a.Threshold
		st.LatencyFiring = sh.LatencyBurn > a.Threshold && long.LatencyBurn > a.Threshold
		if st.AvailabilityFiring || st.LatencyFiring {
			snap.Healthy = false
		}
		snap.Alerts = append(snap.Alerts, st)
	}
	return snap
}
