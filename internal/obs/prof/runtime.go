package prof

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strconv"

	"repro/internal/obs"
)

// Runtime telemetry essentials, read from runtime/metrics and written
// as wdm_go_* Prometheus series. These answer the first questions a
// latency regression raises — is the scheduler backed up, is the GC
// pausing us, is the heap growing — without attaching a profiler.

// runtimeSamples are the runtime/metrics series the exposition reads.
// Unknown names read as KindBad and are skipped, so this list degrades
// gracefully across toolchain versions.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/sched/pauses/total/gc:seconds",
	"/sched/latencies:seconds",
}

// WriteRuntimeProm writes the runtime telemetry gauges into w. It is
// called per scrape; metrics.Read is cheap (no stop-the-world).
func WriteRuntimeProm(w *obs.PromWriter) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	byName := make(map[string]*metrics.Sample, len(samples))
	for i := range samples {
		byName[samples[i].Name] = &samples[i]
	}

	if s := byName["/sched/goroutines:goroutines"]; s.Value.Kind() == metrics.KindUint64 {
		w.Gauge("wdm_go_goroutines", "Live goroutines.", float64(s.Value.Uint64()))
	}
	w.Gauge("wdm_go_gomaxprocs", "Scheduler parallelism (GOMAXPROCS).", float64(runtime.GOMAXPROCS(0)))
	if s := byName["/gc/cycles/total:gc-cycles"]; s.Value.Kind() == metrics.KindUint64 {
		w.Counter("wdm_go_gc_cycles_total", "Completed GC cycles.", float64(s.Value.Uint64()))
	}
	if s := byName["/memory/classes/heap/objects:bytes"]; s.Value.Kind() == metrics.KindUint64 {
		w.Gauge("wdm_go_heap_bytes", "Bytes of live heap objects.", float64(s.Value.Uint64()))
	}
	if s := byName["/memory/classes/total:bytes"]; s.Value.Kind() == metrics.KindUint64 {
		w.Gauge("wdm_go_memory_bytes", "Total bytes mapped by the Go runtime.", float64(s.Value.Uint64()))
	}
	writeHistQuantiles(w, byName["/sched/pauses/total/gc:seconds"],
		"wdm_go_gc_pause_seconds", "GC stop-the-world pause quantiles since process start.")
	writeHistQuantiles(w, byName["/sched/latencies:seconds"],
		"wdm_go_sched_latency_seconds", "Goroutine scheduling latency quantiles since process start.")
}

func writeHistQuantiles(w *obs.PromWriter, s *metrics.Sample, name, help string) {
	if s == nil || s.Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := s.Value.Float64Histogram()
	for _, q := range []float64{0.50, 0.99} {
		w.Gauge(name, help, histQuantile(h, q),
			obs.Label{Name: "q", Value: strconv.FormatFloat(q, 'g', -1, 64)})
	}
}

// histQuantile estimates the q-quantile of a runtime/metrics histogram
// as the upper bound of the bucket holding the quantile rank (the
// lower bound for the +Inf bucket). Returns 0 for an empty histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				return h.Buckets[i]
			}
			return ub
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) {
		return h.Buckets[len(h.Buckets)-2]
	}
	return last
}
