package prof

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// churnMutex produces real mutex contention so the mutex profile has
// something to record at MutexFraction=1.
func churnMutex() {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				mu.Lock()
				runtime.Gosched()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestHarnessMutexProfileNonEmpty(t *testing.T) {
	h := Start(Config{MutexFraction: 1})
	defer h.Stop()
	churnMutex()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/prof?type=mutex&debug=1", nil))
	if rec.Code != 200 {
		t.Fatalf("mutex debug profile: status %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if !strings.Contains(body, "mutex") || len(body) == 0 {
		t.Fatalf("mutex profile text looks empty:\n%s", body)
	}

	// Binary form, captured on demand (no background loop running).
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/prof?type=mutex", nil))
	if rec.Code != 200 || rec.Body.Len() == 0 {
		t.Fatalf("binary mutex profile: status %d, %d bytes", rec.Code, rec.Body.Len())
	}
	if got := rec.Header().Get("Content-Type"); got != "application/octet-stream" {
		t.Fatalf("binary profile Content-Type = %q", got)
	}
}

func TestHarnessRingAndIndex(t *testing.T) {
	h := Start(Config{Ring: 2})
	defer h.Stop()

	for i := 0; i < 3; i++ {
		h.captureToRing("goroutine")
	}
	// Ring capped at 2, newest first via n=0.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/prof?type=goroutine&n=1", nil))
	if rec.Code != 200 {
		t.Fatalf("ring snapshot n=1: status %d", rec.Code)
	}
	if rec.Header().Get("X-Profile-Time") == "" {
		t.Fatal("ring snapshot missing X-Profile-Time")
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/prof?type=goroutine&n=2", nil))
	if rec.Code != 404 {
		t.Fatalf("evicted snapshot n=2: status %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/prof", nil))
	var idx []indexEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatalf("index does not decode: %v", err)
	}
	found := false
	for _, e := range idx {
		if e.Type == "goroutine" {
			found = true
			if e.Snapshots != 2 {
				t.Fatalf("goroutine ring reports %d snapshots, want 2", e.Snapshots)
			}
		}
	}
	if !found {
		t.Fatalf("index missing goroutine entry: %+v", idx)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/prof?type=nonsense", nil))
	if rec.Code != 400 {
		t.Fatalf("unknown type: status %d, want 400", rec.Code)
	}
}

func TestHarnessBackgroundLoop(t *testing.T) {
	h := Start(Config{Interval: 5 * time.Millisecond, Ring: 4})
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := h.nth("heap", 0); ok {
			break
		}
		if time.Now().After(deadline) {
			h.Stop()
			t.Fatal("background loop captured no heap snapshot within 2s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.Stop()
}

func TestStopRestoresProfilerRates(t *testing.T) {
	before := runtime.SetMutexProfileFraction(-1)
	h := Start(Config{MutexFraction: 50, BlockRateNs: 1000})
	if got := runtime.SetMutexProfileFraction(-1); got != 50 {
		t.Fatalf("mutex fraction while running = %d, want 50", got)
	}
	h.Stop()
	if got := runtime.SetMutexProfileFraction(-1); got != before {
		t.Fatalf("mutex fraction after Stop = %d, want restored %d", got, before)
	}
}

func TestZeroConfigIsInert(t *testing.T) {
	before := runtime.SetMutexProfileFraction(-1)
	h := Start(Config{})
	defer h.Stop()
	if got := runtime.SetMutexProfileFraction(-1); got != before {
		t.Fatalf("zero config changed mutex fraction: %d -> %d", before, got)
	}
	// The endpoint still works via on-demand capture.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/prof?type=heap", nil))
	if rec.Code != 200 || rec.Body.Len() == 0 {
		t.Fatalf("on-demand heap profile: status %d, %d bytes", rec.Code, rec.Body.Len())
	}
}

func TestWriteRuntimePromParses(t *testing.T) {
	var pw obs.PromWriter
	WriteRuntimeProm(&pw)
	m, err := obs.ParseProm(strings.NewReader(string(pw.Bytes())))
	if err != nil {
		t.Fatalf("runtime telemetry does not parse: %v\n%s", err, pw.Bytes())
	}
	if v, ok := m.Value("wdm_go_goroutines", nil); !ok || v < 1 {
		t.Errorf("wdm_go_goroutines = %v, %v; want >= 1", v, ok)
	}
	if v, ok := m.Value("wdm_go_gomaxprocs", nil); !ok || v < 1 {
		t.Errorf("wdm_go_gomaxprocs = %v, %v; want >= 1", v, ok)
	}
	if v, ok := m.Value("wdm_go_heap_bytes", nil); !ok || v <= 0 {
		t.Errorf("wdm_go_heap_bytes = %v, %v; want > 0", v, ok)
	}
}
