// Package prof is the controller's always-on profiling harness:
// bounded-rate mutex and block profiling, a ring of periodic profile
// snapshots served over HTTP, and the runtime/metrics essentials as
// Prometheus gauges.
//
// The design goal is "safe to leave on in production": the mutex and
// block profilers are sampled (one event in MutexFraction, events
// longer than BlockRateNs), snapshots are captured off the serving
// path on a timer, and the HTTP handler reads finished snapshots from
// the ring instead of stopping the world per request. CPU profiles are
// the exception — they are captured live for an explicit, bounded
// window because Go keeps no CPU history to snapshot.
package prof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"
)

// ringTypes are the pprof profiles the background loop snapshots. CPU
// is deliberately absent: it has no instantaneous snapshot.
var ringTypes = []string{"heap", "mutex", "block", "goroutine"}

// Config tunes the harness. The zero value enables nothing: no
// profiler rates are touched and no background goroutine starts, so
// embedding the harness in tests costs nothing.
type Config struct {
	// MutexFraction samples 1/n of mutex contention events
	// (runtime.SetMutexProfileFraction). 0 leaves the process rate
	// untouched; 100 is a production-safe default.
	MutexFraction int
	// BlockRateNs samples blocking events lasting at least this many
	// nanoseconds (runtime.SetBlockProfileRate). 0 leaves the rate
	// untouched; 100µs (100000) is a production-safe default.
	BlockRateNs int
	// Interval is the background snapshot period. 0 disables the
	// background goroutine; profiles are then captured on demand per
	// HTTP request.
	Interval time.Duration
	// Ring is how many snapshots to retain per profile type
	// (default 8).
	Ring int
}

// snapshot is one captured profile: the binary pprof payload and when
// it was taken.
type snapshot struct {
	t    time.Time
	data []byte
}

// Harness owns the profiler rates and the snapshot rings. Create with
// Start, serve with Handler, release with Stop.
type Harness struct {
	cfg Config

	mu    sync.Mutex
	rings map[string][]snapshot // newest last, capped at cfg.Ring

	prevMutex    int
	restoreMutex bool
	restoreBlock bool

	stop chan struct{}
	done chan struct{}
}

// Start applies the configured profiler rates and, when Interval > 0,
// starts the background snapshot loop.
func Start(cfg Config) *Harness {
	if cfg.Ring <= 0 {
		cfg.Ring = 8
	}
	h := &Harness{cfg: cfg, rings: make(map[string][]snapshot)}
	if cfg.MutexFraction > 0 {
		h.prevMutex = runtime.SetMutexProfileFraction(cfg.MutexFraction)
		h.restoreMutex = true
	}
	if cfg.BlockRateNs > 0 {
		runtime.SetBlockProfileRate(cfg.BlockRateNs)
		h.restoreBlock = true
	}
	if cfg.Interval > 0 {
		h.stop = make(chan struct{})
		h.done = make(chan struct{})
		go h.loop()
	}
	return h
}

// Stop halts the background loop and restores the process profiler
// rates the harness changed. Safe to call once on a started harness.
func (h *Harness) Stop() {
	if h == nil {
		return
	}
	if h.stop != nil {
		close(h.stop)
		<-h.done
	}
	if h.restoreMutex {
		runtime.SetMutexProfileFraction(h.prevMutex)
	}
	if h.restoreBlock {
		runtime.SetBlockProfileRate(0)
	}
}

func (h *Harness) loop() {
	defer close(h.done)
	t := time.NewTicker(h.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			for _, typ := range ringTypes {
				h.captureToRing(typ)
			}
		}
	}
}

// capture renders one pprof profile in binary (debug=0) form.
func capture(typ string) ([]byte, error) {
	p := pprof.Lookup(typ)
	if p == nil {
		return nil, fmt.Errorf("unknown profile %q", typ)
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (h *Harness) captureToRing(typ string) {
	data, err := capture(typ)
	if err != nil {
		return
	}
	h.mu.Lock()
	ring := append(h.rings[typ], snapshot{t: time.Now(), data: data})
	if len(ring) > h.cfg.Ring {
		ring = ring[len(ring)-h.cfg.Ring:]
	}
	h.rings[typ] = ring
	h.mu.Unlock()
}

// nth returns the n-th most recent ring snapshot (n=0 newest), or
// false when the ring holds fewer entries.
func (h *Harness) nth(typ string, n int) (snapshot, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ring := h.rings[typ]
	if n < 0 || n >= len(ring) {
		return snapshot{}, false
	}
	return ring[len(ring)-1-n], true
}

// indexEntry describes one profile type's ring for the no-type index
// response.
type indexEntry struct {
	Type      string    `json:"type"`
	Snapshots int       `json:"snapshots"`
	Newest    time.Time `json:"newest,omitempty"`
	Oldest    time.Time `json:"oldest,omitempty"`
}

// Index summarizes the rings (for GET /v1/debug/prof with no ?type=).
func (h *Harness) Index() []indexEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]indexEntry, 0, len(ringTypes))
	for _, typ := range ringTypes {
		e := indexEntry{Type: typ, Snapshots: len(h.rings[typ])}
		if n := len(h.rings[typ]); n > 0 {
			e.Oldest = h.rings[typ][0].t
			e.Newest = h.rings[typ][n-1].t
		}
		out = append(out, e)
	}
	return out
}

// ServeHTTP serves GET /v1/debug/prof:
//
//	?type=heap|mutex|block|goroutine [&n=K] [&debug=1]
//	?type=cpu [&seconds=N]
//
// Without n the newest ring snapshot is served; when the ring is empty
// (Interval 0, or too early) the profile is captured on the spot.
// debug=1 serves the human-readable text rendering, always freshly
// captured. type=cpu profiles the live process for seconds (default 2,
// max 30) and streams the result.
func (h *Harness) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	typ := r.URL.Query().Get("type")
	switch typ {
	case "":
		writeJSON(w, h.Index())
		return
	case "cpu":
		h.serveCPU(w, r)
		return
	case "heap", "mutex", "block", "goroutine", "threadcreate", "allocs":
	default:
		http.Error(w, fmt.Sprintf("unknown profile type %q", typ), http.StatusBadRequest)
		return
	}

	if r.URL.Query().Get("debug") == "1" {
		p := pprof.Lookup(typ)
		if p == nil {
			http.Error(w, fmt.Sprintf("unknown profile %q", typ), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = p.WriteTo(w, 1)
		return
	}

	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "want ?n=<non-negative snapshot index>", http.StatusBadRequest)
			return
		}
		n = v
	}
	snap, ok := h.nth(typ, n)
	if !ok {
		if n > 0 {
			http.Error(w, fmt.Sprintf("ring holds no snapshot %d for %q", n, typ), http.StatusNotFound)
			return
		}
		// Ring empty: capture on demand so the endpoint works without
		// the background loop (tests, Interval=0 deployments).
		data, err := capture(typ)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		snap = snapshot{t: time.Now(), data: data}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf(`attachment; filename=%q`, typ+".pb.gz"))
	w.Header().Set("X-Profile-Time", snap.t.UTC().Format(time.RFC3339Nano))
	_, _ = w.Write(snap.data)
}

func (h *Harness) serveCPU(w http.ResponseWriter, r *http.Request) {
	secs := 2
	if q := r.URL.Query().Get("seconds"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 || v > 30 {
			http.Error(w, "want ?seconds=1..30", http.StatusBadRequest)
			return
		}
		secs = v
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another CPU profile is already running (only one at a time).
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	select {
	case <-time.After(time.Duration(secs) * time.Second):
	case <-r.Context().Done():
	}
	pprof.StopCPUProfile()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="cpu.pb.gz"`)
	_, _ = w.Write(buf.Bytes())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
