package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestPromRoundTrip writes a representative exposition — counters,
// labeled gauges, a histogram — and parses it back, asserting every
// value survives.
func TestPromRoundTrip(t *testing.T) {
	var w PromWriter
	w.Counter("wdm_connect_total", "Successful connects.", 42)
	w.Counter("wdm_fabric_routed_total", "Per-fabric routed.", 10, Label{"fabric", "0"})
	w.Counter("wdm_fabric_routed_total", "Per-fabric routed.", 12, Label{"fabric", "1"})
	w.Gauge("wdm_link_busy_ratio", "Occupancy.", 0.25, Label{"fabric", "0"}, Label{"stage", "in"})
	w.Histogram("wdm_op_latency_seconds", "Latency.",
		[]float64{0.001, 0.01, 0.1}, []int64{5, 3, 1, 2}, 0.456, Label{"op", "connect"})

	m, err := ParseProm(bytes.NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("ParseProm: %v\nexposition:\n%s", err, w.Bytes())
	}

	if v, ok := m.Value("wdm_connect_total", nil); !ok || v != 42 {
		t.Fatalf("wdm_connect_total = %v, %v; want 42", v, ok)
	}
	if v, ok := m.Value("wdm_fabric_routed_total", map[string]string{"fabric": "1"}); !ok || v != 12 {
		t.Fatalf("fabric 1 routed = %v, %v; want 12", v, ok)
	}
	if v, ok := m.Value("wdm_link_busy_ratio", map[string]string{"stage": "in"}); !ok || v != 0.25 {
		t.Fatalf("busy ratio = %v, %v; want 0.25", v, ok)
	}

	fam := m["wdm_op_latency_seconds"]
	if fam == nil || fam.Type != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", fam)
	}
	// Cumulative buckets: 5, 8, 9, 11; count 11; sum 0.456.
	wantBuckets := map[string]float64{"0.001": 5, "0.01": 8, "0.1": 9, "+Inf": 11}
	for le, want := range wantBuckets {
		got, ok := m.Value("wdm_op_latency_seconds_bucket", map[string]string{"op": "connect", "le": le})
		if !ok || got != want {
			t.Fatalf("bucket le=%s = %v, %v; want %v", le, got, ok, want)
		}
	}
	if v, ok := m.Value("wdm_op_latency_seconds_count", map[string]string{"op": "connect"}); !ok || v != 11 {
		t.Fatalf("count = %v, %v; want 11", v, ok)
	}
	if v, ok := m.Value("wdm_op_latency_seconds_sum", map[string]string{"op": "connect"}); !ok || v != 0.456 {
		t.Fatalf("sum = %v, %v; want 0.456", v, ok)
	}
}

// TestPromEscaping pushes hostile label values and help text through
// the round trip.
func TestPromEscaping(t *testing.T) {
	var w PromWriter
	hostile := `quote " backslash \ newline` + "\n" + `end`
	w.Gauge("esc_metric", `help with \ and`+"\n"+`newline`, 1, Label{"v", hostile})
	m, err := ParseProm(bytes.NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("ParseProm: %v\nexposition:\n%q", err, w.Bytes())
	}
	if v, ok := m.Value("esc_metric", map[string]string{"v": hostile}); !ok || v != 1 {
		t.Fatalf("escaped label did not round-trip: %+v", m["esc_metric"])
	}
	// The exposition itself must stay line-oriented despite the newline.
	if got := bytes.Count(w.Bytes(), []byte("esc_metric{")); got != 1 {
		t.Fatalf("sample split across lines: %d occurrences\n%s", got, w.Bytes())
	}
}

// TestPromHeaderOnce: HELP/TYPE emitted once per family however many
// samples it has.
func TestPromHeaderOnce(t *testing.T) {
	var w PromWriter
	for i := 0; i < 3; i++ {
		w.Counter("multi_total", "Help.", float64(i), Label{"i", string(rune('a' + i))})
	}
	text := string(w.Bytes())
	if got := strings.Count(text, "# TYPE multi_total counter"); got != 1 {
		t.Fatalf("TYPE emitted %d times, want 1:\n%s", got, text)
	}
	if got := strings.Count(text, "# HELP"); got != 1 {
		t.Fatalf("HELP emitted %d times, want 1:\n%s", got, text)
	}
}

// TestPromInfinity: +Inf formats and parses.
func TestPromInfinity(t *testing.T) {
	var w PromWriter
	w.Gauge("inf_metric", "h", math.Inf(1))
	m, err := ParseProm(bytes.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Value("inf_metric", nil); !ok || !math.IsInf(v, 1) {
		t.Fatalf("inf value = %v, %v", v, ok)
	}
}

// TestParseRejectsMalformed: the parser is strict enough to be a
// format validator, not just a scraper of the happy path.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct{ name, text string }{
		{"no type header", "orphan_metric 1\n"},
		{"bad label syntax", "# TYPE m gauge\nm{x=unquoted} 1\n"},
		{"unterminated label", "# TYPE m gauge\nm{x=\"open} 1\n"},
		{"bad value", "# TYPE m gauge\nm notanumber\n"},
		{"bad metric name", "# TYPE m gauge\n1m 2\n"},
		{"decreasing histogram", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n"},
		{"missing inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\nh_sum 1\n"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 6\nh_sum 1\n"},
		{"type redeclared", "# TYPE m gauge\n# TYPE m counter\nm 1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseProm(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", tc.name, tc.text)
		}
	}
}

// TestHistogramPanicsOnShapeMismatch documents the writer's contract:
// counts must be exactly one longer than bounds.
func TestHistogramPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bounds/counts mismatch")
		}
	}()
	var w PromWriter
	w.Histogram("h", "h", []float64{1, 2}, []int64{1, 2}, 0)
}
