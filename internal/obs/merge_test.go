package obs

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// Two synthetic shard expositions: summable counters, histograms with
// exemplars and *different* bucket bounds (exercising the union merge),
// and a gauge whose label-less samples conflict across shards.
const shardAText = `# HELP wdm_connect_total Total successful connects.
# TYPE wdm_connect_total counter
wdm_connect_total 10
# HELP wdm_active_sessions Live sessions.
# TYPE wdm_active_sessions gauge
wdm_active_sessions 3
# HELP wdm_op_latency_seconds Op latency.
# TYPE wdm_op_latency_seconds histogram
wdm_op_latency_seconds_bucket{op="connect",le="0.001"} 4 # {trace_id="0123456789abcdef0123456789abcdef"} 0.0004
wdm_op_latency_seconds_bucket{op="connect",le="0.005"} 9
wdm_op_latency_seconds_bucket{op="connect",le="+Inf"} 10
wdm_op_latency_seconds_sum{op="connect"} 0.02
wdm_op_latency_seconds_count{op="connect"} 10
`

const shardBText = `# HELP wdm_connect_total Total successful connects.
# TYPE wdm_connect_total counter
wdm_connect_total 7
# HELP wdm_active_sessions Live sessions.
# TYPE wdm_active_sessions gauge
wdm_active_sessions 5
# HELP wdm_op_latency_seconds Op latency.
# TYPE wdm_op_latency_seconds histogram
wdm_op_latency_seconds_bucket{op="connect",le="0.002"} 3 # {trace_id="fedcba9876543210fedcba9876543210"} 0.0011
wdm_op_latency_seconds_bucket{op="connect",le="0.005"} 5
wdm_op_latency_seconds_bucket{op="connect",le="+Inf"} 7
wdm_op_latency_seconds_sum{op="connect"} 0.015
wdm_op_latency_seconds_count{op="connect"} 7
`

// bucketCum reads the merged histogram's cumulative count at an exact
// finite bound, scanning by parsed le value so the formatting of the
// label does not matter.
func bucketCum(t *testing.T, m Metrics, family string, le float64) float64 {
	t.Helper()
	fam := m[family]
	if fam == nil {
		t.Fatalf("family %s absent", family)
	}
	for _, s := range fam.Samples {
		if s.Name != family+"_bucket" {
			continue
		}
		v, err := strconv.ParseFloat(s.Labels["le"], 64)
		if err != nil {
			continue
		}
		if v == le {
			return s.Value
		}
	}
	t.Fatalf("%s has no bucket le=%v", family, le)
	return 0
}

func TestMergeFleetSumsAndLabels(t *testing.T) {
	var pw PromWriter
	bad := MergeFleet(&pw, map[string][]byte{
		"a": []byte(shardAText),
		"b": []byte(shardBText),
	})
	if len(bad) != 0 {
		t.Fatalf("MergeFleet reported bad shards %v for well-formed input", bad)
	}
	merged := string(pw.Bytes())

	// The merged exposition must survive the same strict parser that
	// accepted the inputs.
	m, err := ParseProm(strings.NewReader(merged))
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v\n%s", err, merged)
	}

	// Counters sum with no shard label.
	if v, ok := m.Value("wdm_connect_total", nil); !ok || v != 17 {
		t.Errorf("wdm_connect_total = %v, %v; want 17", v, ok)
	}
	if fam := m["wdm_connect_total"]; fam != nil {
		for _, s := range fam.Samples {
			if s.Labels["shard"] != "" {
				t.Errorf("summed counter carries a shard label: %v", s.Labels)
			}
		}
	}

	// Gauges keep per-shard samples, disambiguated by the shard label.
	if v, ok := m.Value("wdm_active_sessions", map[string]string{"shard": "a"}); !ok || v != 3 {
		t.Errorf("wdm_active_sessions{shard=a} = %v, %v; want 3", v, ok)
	}
	if v, ok := m.Value("wdm_active_sessions", map[string]string{"shard": "b"}); !ok || v != 5 {
		t.Errorf("wdm_active_sessions{shard=b} = %v, %v; want 5", v, ok)
	}

	// Histograms sum bucket-wise over the union of bounds, with each
	// shard's cumulative counts carried forward across bounds it lacks:
	//   le=0.001: a=4, b=0   -> 4
	//   le=0.002: a=4, b=3   -> 7
	//   le=0.005: a=9, b=5   -> 14
	//   +Inf:     a=10, b=7  -> 17
	for _, tc := range []struct{ le, want float64 }{
		{0.001, 4}, {0.002, 7}, {0.005, 14},
	} {
		if got := bucketCum(t, m, "wdm_op_latency_seconds", tc.le); got != tc.want {
			t.Errorf("merged bucket le=%v = %v, want %v", tc.le, got, tc.want)
		}
	}
	if v, ok := m.Value("wdm_op_latency_seconds_count", map[string]string{"op": "connect"}); !ok || v != 17 {
		t.Errorf("merged histogram count = %v, %v; want 17", v, ok)
	}
	if v, ok := m.Value("wdm_op_latency_seconds_sum", map[string]string{"op": "connect"}); !ok || math.Abs(v-0.035) > 1e-12 {
		t.Errorf("merged histogram sum = %v, %v; want 0.035", v, ok)
	}
	// Exemplars do not survive the merge: per-shard trace ids are
	// meaningless on a fleet-wide series.
	if strings.Contains(merged, "trace_id") {
		t.Errorf("merged exposition leaked exemplars:\n%s", merged)
	}
}

func TestMergeFleetSkipsMalformedPeer(t *testing.T) {
	var pw PromWriter
	bad := MergeFleet(&pw, map[string][]byte{
		"a": []byte(shardAText),
		"z": []byte("this is not a prometheus exposition\n"),
	})
	if bad["z"] == nil {
		t.Fatal("malformed shard z was not reported")
	}
	if bad["a"] != nil {
		t.Fatalf("healthy shard a reported bad: %v", bad["a"])
	}
	m, err := ParseProm(strings.NewReader(string(pw.Bytes())))
	if err != nil {
		t.Fatalf("partial merge does not parse: %v", err)
	}
	// The fleet view degrades to the healthy shards' data.
	if v, ok := m.Value("wdm_connect_total", nil); !ok || v != 10 {
		t.Errorf("partial wdm_connect_total = %v, %v; want 10", v, ok)
	}
}

func TestMergeFleetEmpty(t *testing.T) {
	var pw PromWriter
	if bad := MergeFleet(&pw, nil); len(bad) != 0 {
		t.Fatalf("empty merge reported bad shards %v", bad)
	}
	if _, err := ParseProm(strings.NewReader(string(pw.Bytes()))); err != nil {
		t.Fatalf("empty merge output does not parse: %v", err)
	}
}
