package span

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Tracer.
type Config struct {
	// Capacity is the completed-trace ring size across all shards
	// (0 = default 256; negative disables tracing entirely — every
	// request sees inactive spans).
	Capacity int
	// SlowThreshold marks a trace slow — kept at 100% — when the root
	// span meets or exceeds it (0 = default 5ms).
	SlowThreshold time.Duration
	// SampleEvery keeps 1 of every SampleEvery routine successful
	// traces (0 = default 16; 1 keeps everything).
	SampleEvery int
	// Log, when non-nil, receives every kept trace as one JSON line —
	// the -span-log export.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Capacity == 0 {
		c.Capacity = 256
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 5 * time.Millisecond
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 16
	}
	return c
}

// tracerShards is the shard count of the completed-trace ring. Trace
// completion picks a shard round-robin, so concurrent request
// goroutines finishing traces contend on different locks.
const tracerShards = 8

// tracerShard is one lock-guarded slice of the completed-trace ring.
type tracerShard struct {
	mu   sync.Mutex
	ring []TraceRecord
	cap  int
}

func (sh *tracerShard) push(r TraceRecord) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.ring) < sh.cap {
		sh.ring = append(sh.ring, r)
		return
	}
	copy(sh.ring, sh.ring[1:])
	sh.ring[len(sh.ring)-1] = r
}

// Tracer owns the completed-trace ring buffer and the sampling policy.
// A nil Tracer is valid and never records.
type Tracer struct {
	cfg    Config
	shards [tracerShards]*tracerShard

	next    atomic.Uint64 // round-robin shard cursor
	seq     atomic.Uint64 // routine-success sampling counter
	kept    atomic.Int64
	dropped atomic.Int64

	lastBlocked atomic.Pointer[TraceRecord]

	logMu sync.Mutex
}

// NewTracer builds a tracer; a negative cfg.Capacity returns nil (the
// disabled tracer).
func NewTracer(cfg Config) *Tracer {
	if cfg.Capacity < 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	t := &Tracer{cfg: cfg}
	per := cfg.Capacity / tracerShards
	if per < 1 {
		per = 1
	}
	for i := range t.shards {
		t.shards[i] = &tracerShard{cap: per}
	}
	return t
}

// Root opens a root span for a new trace. traceparent, when non-empty
// and well-formed, supplies the inbound trace id; otherwise a fresh one
// is generated. On a nil Tracer the returned span is inactive.
func (t *Tracer) Root(name, traceparent string) *Span {
	if t == nil {
		return nil
	}
	rec := &traceRec{tracer: t}
	s := &Span{
		rec:    rec,
		name:   name,
		id:     NewSpanID(),
		start:  time.Now(),
		status: StatusOK,
		root:   true,
	}
	if traceparent != "" {
		if tid, parent, _, err := ParseTraceparent(traceparent); err == nil {
			rec.traceID = tid
			s.parent = parent
		}
	}
	if rec.traceID.IsZero() {
		rec.traceID = NewTraceID()
	}
	rec.rec.TraceID = rec.traceID.String()
	return s
}

// finish applies the tail-sampling policy to a completed trace.
// Blocked, errored, and slow traces are always kept; routine successes
// 1 in SampleEvery.
func (t *Tracer) finish(r *TraceRecord) {
	keep := r.Blocked || r.Error || r.DurationNs >= t.cfg.SlowThreshold.Nanoseconds()
	if !keep {
		keep = t.seq.Add(1)%uint64(t.cfg.SampleEvery) == 0
	}
	if !keep {
		t.dropped.Add(1)
		return
	}
	t.kept.Add(1)
	if r.Blocked {
		cp := *r
		t.lastBlocked.Store(&cp)
	}
	t.shards[t.next.Add(1)%tracerShards].push(*r)
	if t.cfg.Log != nil {
		line, err := json.Marshal(r)
		if err == nil {
			t.logMu.Lock()
			_, _ = t.cfg.Log.Write(append(line, '\n'))
			t.logMu.Unlock()
		}
	}
}

// Stats returns how many completed traces were kept and how many were
// sampled out.
func (t *Tracer) Stats() (kept, dropped int64) {
	if t == nil {
		return 0, 0
	}
	return t.kept.Load(), t.dropped.Load()
}

// Snapshot returns the buffered traces ordered oldest-first by root
// span start time.
func (t *Tracer) Snapshot() []TraceRecord {
	if t == nil {
		return nil
	}
	var out []TraceRecord
	for _, sh := range t.shards {
		sh.mu.Lock()
		out = append(out, sh.ring...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// LastBlocked returns the most recently completed blocked trace.
func (t *Tracer) LastBlocked() (TraceRecord, bool) {
	if t == nil {
		return TraceRecord{}, false
	}
	p := t.lastBlocked.Load()
	if p == nil {
		return TraceRecord{}, false
	}
	return *p, true
}

// TraceparentHeader is the W3C header name spans propagate on.
const TraceparentHeader = "traceparent"

// untracedPaths are endpoint prefixes Middleware leaves untraced: the
// observability surfaces themselves. A wdmtop polling /metrics and
// /v1/slo every other second would otherwise fill the ring with its own
// scrapes.
var untracedPaths = []string{"/metrics", "/v1/slo", "/v1/debug/", "/debug/"}

// Middleware wraps h so every request runs under a root span named
// "http <METHOD> <path>": an inbound traceparent header is honored,
// the trace id is echoed in the traceparent response header, and error
// statuses (5xx) mark the trace errored. Observability endpoints
// (/metrics, /v1/slo, /v1/debug/, /debug/) pass through untraced. A nil
// Tracer returns h unchanged.
func (t *Tracer) Middleware(h http.Handler) http.Handler {
	if t == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, p := range untracedPaths {
			if strings.HasPrefix(r.URL.Path, p) {
				h.ServeHTTP(w, r)
				return
			}
		}
		root := t.Root("http "+r.Method+" "+r.URL.Path, r.Header.Get(TraceparentHeader))
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)
		w.Header().Set(TraceparentHeader, root.Traceparent())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r.WithContext(ContextWith(r.Context(), root)))
		root.SetAttr("status", sw.status)
		if sw.status >= 500 {
			root.SetError(http.StatusText(sw.status))
		}
		root.End()
	})
}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
