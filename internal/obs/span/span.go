// Package span is a stdlib-only distributed-tracing toolkit for the
// serving path: W3C traceparent-compatible trace ids, nested spans
// propagated through context.Context, and a lock-sharded ring buffer of
// completed traces with tail sampling.
//
// The paper's nonblocking guarantee is a per-request claim — "blocked
// == 0 at the sufficient bound" is about every individual Connect and
// AddBranch, not an aggregate. Metrics alone cannot answer "where did
// THIS request's latency go" or "which middle modules did THIS blocked
// request try"; spans can. Every serving request gets a trace: the HTTP
// handler opens the root span, the controller nests session and fabric
// operation spans under it, and the multistage router reports each
// middle-switch attempt as a leaf span. Completed traces land in the
// Tracer's ring (served at GET /v1/debug/spans) and may be exported as
// JSON lines.
//
// Sampling is tail-based: the keep/drop decision is taken when the root
// span ends, so a trace that turned out to be blocked, errored, or slow
// is always kept (those are exactly the traces worth a post-mortem) and
// only routine fast successes are down-sampled.
package span

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID is the 16-byte W3C trace id.
type TraceID [16]byte

// SpanID is the 8-byte W3C span (parent) id.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random non-zero trace id.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		putUint64(t[:8], rand.Uint64())
		putUint64(t[8:], rand.Uint64())
	}
	return t
}

// NewSpanID returns a random non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		putUint64(s[:], rand.Uint64())
	}
	return s
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// FlagSampled is the traceparent sampled flag (trace-flags bit 0).
const FlagSampled byte = 0x01

// FormatTraceparent renders a W3C traceparent header value
// (version 00): "00-<trace-id>-<parent-id>-<flags>".
func FormatTraceparent(t TraceID, s SpanID, flags byte) string {
	return fmt.Sprintf("00-%s-%s-%02x", t, s, flags)
}

// ParseTraceparent parses a version-00 W3C traceparent header value. It
// rejects malformed versions, lengths, non-hex ids, and the all-zero
// trace and span ids the spec forbids.
func ParseTraceparent(h string) (TraceID, SpanID, byte, error) {
	var t TraceID
	var s SpanID
	// 2 (version) + 1 + 32 (trace id) + 1 + 16 (parent id) + 1 + 2 (flags)
	if len(h) != 55 {
		return t, s, 0, fmt.Errorf("span: traceparent %q: want 55 chars, have %d", h, len(h))
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, s, 0, fmt.Errorf("span: traceparent %q: bad field separators", h)
	}
	if h[:2] == "ff" {
		return t, s, 0, fmt.Errorf("span: traceparent %q: version ff is invalid", h)
	}
	if _, err := hex.Decode(make([]byte, 1), []byte(h[:2])); err != nil {
		return t, s, 0, fmt.Errorf("span: traceparent %q: bad version: %w", h, err)
	}
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return t, s, 0, fmt.Errorf("span: traceparent %q: bad trace id: %w", h, err)
	}
	if _, err := hex.Decode(s[:], []byte(h[36:52])); err != nil {
		return t, s, 0, fmt.Errorf("span: traceparent %q: bad parent id: %w", h, err)
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(h[53:55])); err != nil {
		return t, s, 0, fmt.Errorf("span: traceparent %q: bad flags: %w", h, err)
	}
	if t.IsZero() {
		return t, s, 0, fmt.Errorf("span: traceparent %q: all-zero trace id", h)
	}
	if s.IsZero() {
		return t, s, 0, fmt.Errorf("span: traceparent %q: all-zero parent id", h)
	}
	return t, s, fb[0], nil
}

// Status values of a finished span.
const (
	StatusOK      = "ok"
	StatusError   = "error"
	StatusBlocked = "blocked"
)

// Attr is one structured span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanRecord is one finished span as kept in a TraceRecord.
type SpanRecord struct {
	SpanID     string    `json:"span_id"`
	Parent     string    `json:"parent_span_id,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"duration_ns"`
	Status     string    `json:"status"`
	Detail     string    `json:"detail,omitempty"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// TraceRecord is one completed trace: the root span plus every nested
// span it accumulated, as served at /v1/debug/spans and written to the
// span log.
type TraceRecord struct {
	TraceID string `json:"trace_id"`
	// Root is the root span's name; Start/DurationNs are the root
	// span's.
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"duration_ns"`
	// Blocked/Error summarize span statuses across the whole trace.
	Blocked bool         `json:"blocked"`
	Error   bool         `json:"error"`
	Spans   []SpanRecord `json:"spans"`
}

// traceRec accumulates a trace in flight. Spans of one request usually
// finish on one goroutine, but the mutex makes cross-goroutine fan-out
// safe too.
type traceRec struct {
	tracer  *Tracer
	traceID TraceID
	mu      sync.Mutex
	rec     TraceRecord
}

// Span is one live span. The zero/nil Span is inactive: every method is
// a cheap no-op, so call sites never branch on "is tracing on".
type Span struct {
	rec    *traceRec
	name   string
	id     SpanID
	parent SpanID
	start  time.Time
	status string
	detail string
	attrs  []Attr
	root   bool
	ended  bool
}

// Active reports whether the span records anything.
func (s *Span) Active() bool { return s != nil && s.rec != nil }

// TraceID returns the hex trace id, or "" for an inactive span.
func (s *Span) TraceID() string {
	if !s.Active() {
		return ""
	}
	return s.rec.traceID.String()
}

// Traceparent renders the span's W3C traceparent value (the span as
// parent), or "" for an inactive span.
func (s *Span) Traceparent() string {
	if !s.Active() {
		return ""
	}
	return FormatTraceparent(s.rec.traceID, s.id, FlagSampled)
}

// SetAttr attaches one structured attribute.
func (s *Span) SetAttr(key string, value any) {
	if !s.Active() {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetError marks the span errored with the given detail.
func (s *Span) SetError(detail string) {
	if !s.Active() {
		return
	}
	s.status = StatusError
	s.detail = detail
}

// SetBlocked marks the span blocked — the status tail sampling always
// keeps — with the given detail.
func (s *Span) SetBlocked(detail string) {
	if !s.Active() {
		return
	}
	s.status = StatusBlocked
	s.detail = detail
}

// StartChild opens a nested span under s. For an inactive s the child
// is inactive too.
func (s *Span) StartChild(name string) *Span {
	if !s.Active() {
		return nil
	}
	return &Span{
		rec:    s.rec,
		name:   name,
		id:     NewSpanID(),
		parent: s.id,
		start:  time.Now(),
		status: StatusOK,
	}
}

// End finishes the span, appending its record to the trace. Ending the
// root span completes the trace: the tracer takes its tail-sampling
// decision and, if kept, the trace enters the ring buffer and span log.
// End is idempotent.
func (s *Span) End() {
	if !s.Active() || s.ended {
		return
	}
	s.ended = true
	sr := SpanRecord{
		SpanID:     s.id.String(),
		Name:       s.name,
		Start:      s.start,
		DurationNs: time.Since(s.start).Nanoseconds(),
		Status:     s.status,
		Detail:     s.detail,
		Attrs:      s.attrs,
	}
	if !s.parent.IsZero() {
		sr.Parent = s.parent.String()
	}
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rec.Spans = append(r.rec.Spans, sr)
	switch s.status {
	case StatusBlocked:
		r.rec.Blocked = true
	case StatusError:
		r.rec.Error = true
	}
	if s.root {
		r.rec.Root = s.name
		r.rec.Start = s.start
		r.rec.DurationNs = sr.DurationNs
		r.tracer.finish(&r.rec)
	}
}

type ctxKey int

const spanKey ctxKey = iota

// FromContext returns the active span carried by ctx, or nil (an
// inactive span — all methods still safe).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// ContextWith returns ctx carrying s.
func ContextWith(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey, s)
}

// Start opens a child span under the span carried by ctx and returns
// the derived context carrying the child. Without an active span in ctx
// it returns ctx unchanged and an inactive span — tracing-off call
// sites pay two pointer reads.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if !parent.Active() {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWith(ctx, child), child
}
