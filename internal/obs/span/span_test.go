package span

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	h := FormatTraceparent(tid, sid, FlagSampled)
	gt, gs, flags, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if gt != tid || gs != sid || flags != FlagSampled {
		t.Fatalf("round trip = %v %v %02x, want %v %v %02x", gt, gs, flags, tid, sid, FlagSampled)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	cases := []struct{ name, header string }{
		{"empty", ""},
		{"short", "00-abc"},
		{"bad separators", "00+0af7651916cd43dd8448eb211c80319c+b7ad6b7169203331+01"},
		{"version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"bad trace hex", "00-ZZf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"bad parent hex", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333Z-01"},
		{"zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01"},
		{"zero parent id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01"},
		{"bad flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz"},
	}
	for _, tc := range cases {
		if _, _, _, err := ParseTraceparent(tc.header); err == nil {
			t.Errorf("%s: parsed %q without error", tc.name, tc.header)
		}
	}
}

func TestInactiveSpanIsSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", 1)
	s.SetError("boom")
	s.SetBlocked("blocked")
	s.End()
	if s.Active() || s.TraceID() != "" || s.Traceparent() != "" {
		t.Fatal("nil span reported activity")
	}
	if child := s.StartChild("c"); child.Active() {
		t.Fatal("child of nil span is active")
	}
	ctx, sp := Start(context.Background(), "op")
	if sp.Active() {
		t.Fatal("Start without a root produced an active span")
	}
	if FromContext(ctx).Active() {
		t.Fatal("context without a root carries an active span")
	}
	var tr *Tracer
	if s := tr.Root("r", ""); s.Active() {
		t.Fatal("nil tracer produced an active root")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
}

func TestNestedSpansAccumulate(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1})
	root := tr.Root("http POST /v1/connect", "")
	ctx := ContextWith(context.Background(), root)

	ctx2, op := Start(ctx, "switchd.connect")
	op.SetAttr("connection", "0.0>5.0")
	_, fab := Start(ctx2, "fabric.add")
	fab.SetAttr("fabric", 0)
	mid := fab.StartChild("route.middle")
	mid.SetAttr("middle", 3)
	mid.End()
	fab.End()
	op.End()
	root.End()

	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("snapshot holds %d traces, want 1", len(traces))
	}
	trc := traces[0]
	if trc.Root != "http POST /v1/connect" || trc.TraceID == "" || trc.Blocked || trc.Error {
		t.Fatalf("trace = %+v", trc)
	}
	if len(trc.Spans) != 4 {
		t.Fatalf("trace has %d spans, want 4", len(trc.Spans))
	}
	// Spans finish leaf-first; the root is last.
	byName := map[string]SpanRecord{}
	for _, s := range trc.Spans {
		byName[s.Name] = s
	}
	if byName["route.middle"].Parent != byName["fabric.add"].SpanID {
		t.Fatal("route.middle is not parented under fabric.add")
	}
	if byName["fabric.add"].Parent != byName["switchd.connect"].SpanID {
		t.Fatal("fabric.add is not parented under switchd.connect")
	}
	if byName["switchd.connect"].Parent != byName["http POST /v1/connect"].SpanID {
		t.Fatal("switchd.connect is not parented under the root")
	}
}

func TestTailSamplingKeepsBlockedAndSlow(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1 << 30, SlowThreshold: time.Hour})

	// Routine fast successes: all sampled out at this rate.
	for i := 0; i < 10; i++ {
		tr.Root("fast", "").End()
	}
	kept, dropped := tr.Stats()
	if kept != 0 || dropped != 10 {
		t.Fatalf("routine traces: kept %d dropped %d, want 0/10", kept, dropped)
	}

	blocked := tr.Root("blocked", "")
	blocked.SetBlocked("no middle available")
	blocked.End()
	errored := tr.Root("errored", "")
	errored.SetError("boom")
	errored.End()
	if kept, _ := tr.Stats(); kept != 2 {
		t.Fatalf("kept = %d after blocked+errored, want 2", kept)
	}
	last, ok := tr.LastBlocked()
	if !ok || last.Root != "blocked" || !last.Blocked {
		t.Fatalf("LastBlocked = %+v, %v", last, ok)
	}

	// A child span's blocked status propagates to the trace.
	root := tr.Root("parent", "")
	child := root.StartChild("fabric.add")
	child.SetBlocked("blocked leaf")
	child.End()
	root.End()
	if last, _ := tr.LastBlocked(); last.Root != "parent" {
		t.Fatalf("LastBlocked after child block = %+v", last)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := NewTracer(Config{Capacity: tracerShards, SampleEvery: 1})
	for i := 0; i < 3*tracerShards; i++ {
		tr.Root("r", "").End()
	}
	if got := len(tr.Snapshot()); got != tracerShards {
		t.Fatalf("ring holds %d traces, want %d", got, tracerShards)
	}
	kept, _ := tr.Stats()
	if kept != 3*tracerShards {
		t.Fatalf("kept = %d, want %d (evicted traces still counted)", kept, 3*tracerShards)
	}
}

func TestSpanLogJSONLines(t *testing.T) {
	var buf bytes.Buffer
	mu := &syncWriter{w: &buf}
	tr := NewTracer(Config{SampleEvery: 1, Log: mu})
	root := tr.Root("op", "")
	root.SetBlocked("why")
	root.End()
	tr.Root("op2", "").End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("span log holds %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec TraceRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("span log line does not parse: %v", err)
	}
	if !rec.Blocked || rec.Root != "op" || rec.TraceID == "" {
		t.Fatalf("logged record = %+v", rec)
	}
}

type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestMiddleware(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1})
	var sawActive bool
	var serverTraceID string
	h := tr.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := FromContext(r.Context())
		sawActive = sp.Active()
		serverTraceID = sp.TraceID()
		w.WriteHeader(http.StatusConflict)
	}))

	// Inbound traceparent: the server joins the client's trace.
	tid := NewTraceID()
	req := httptest.NewRequest("POST", "/v1/connect", nil)
	req.Header.Set(TraceparentHeader, FormatTraceparent(tid, NewSpanID(), FlagSampled))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if !sawActive {
		t.Fatal("handler saw no active span")
	}
	if serverTraceID != tid.String() {
		t.Fatalf("server trace id %s, want inbound %s", serverTraceID, tid)
	}
	if got := w.Header().Get(TraceparentHeader); !strings.Contains(got, tid.String()) {
		t.Fatalf("response traceparent %q does not carry the trace id", got)
	}

	// No inbound header: an id is generated and echoed.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/connect", nil))
	if got := w.Header().Get(TraceparentHeader); got == "" {
		t.Fatal("no traceparent echoed for header-less request")
	}

	// Observability endpoints stay untraced.
	kept0, dropped0 := tr.Stats()
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if kept, dropped := tr.Stats(); kept != kept0 || dropped != dropped0 {
		t.Fatal("/metrics produced a trace")
	}
	if got := w.Header().Get(TraceparentHeader); got != "" {
		t.Fatalf("/metrics echoed traceparent %q", got)
	}

	// Nil tracer: pass-through.
	var disabled *Tracer
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := disabled.Middleware(inner); got == nil {
		t.Fatal("nil tracer middleware returned nil handler")
	}
}
