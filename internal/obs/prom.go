// Package obs is the serving path's observability toolkit: a hand-rolled
// Prometheus text-exposition writer and a matching minimal parser (both
// stdlib-only, round-trip tested against each other), plus an HTTP
// middleware that assigns request ids and emits one structured log line
// per request. switchd uses the writer for GET /metrics; the parser
// exists so tests — and any in-repo consumer — can read the exposition
// back without a third-party client library.
package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served
// with the format this package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ContentTypeOpenMetrics is served when the exposition carries
// exemplars (OpenMetrics syntax; classic 0.0.4 parsers reject the
// trailing "# {...}" exemplar clause, so exemplars are opt-in).
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Label is one label name/value pair on a sample.
type Label struct {
	Name, Value string
}

// PromWriter accumulates metric families in Prometheus text exposition
// format (version 0.0.4). HELP/TYPE headers are emitted once per
// family, on the family's first sample; callers therefore write all
// samples of one family together (interleaving families is legal for
// this package's parser but rejected by real Prometheus scrapers).
// The zero value is ready to use.
type PromWriter struct {
	buf       bytes.Buffer
	seen      map[string]bool
	exemplars bool
}

// Exemplar references a recent concrete observation — typically by
// trace id — from a histogram bucket, in OpenMetrics exemplar syntax:
//
//	name_bucket{le="0.001"} 5 # {trace_id="4bf9..."} 0.00042 1e9
//
// The zero Exemplar is "none".
type Exemplar struct {
	// Labels identify the referenced observation (conventionally a
	// single trace_id label).
	Labels []Label
	// Value is the referenced observation's value.
	Value float64
	// Ts is the observation's unix timestamp in seconds; 0 omits it.
	Ts float64
}

// SetExemplars switches the writer into OpenMetrics mode: histogram
// bucket samples written through HistogramE carry their exemplars and
// Bytes/WriteTo append the OpenMetrics "# EOF" trailer. Off by default
// — classic 0.0.4 scrapers reject exemplar clauses.
func (w *PromWriter) SetExemplars(on bool) { w.exemplars = on }

// Counter writes one sample of a counter family.
func (w *PromWriter) Counter(name, help string, v float64, labels ...Label) {
	w.header(name, help, "counter")
	w.sample(name, labels, v)
}

// Gauge writes one sample of a gauge family.
func (w *PromWriter) Gauge(name, help string, v float64, labels ...Label) {
	w.header(name, help, "gauge")
	w.sample(name, labels, v)
}

// Histogram writes one complete histogram series: cumulative _bucket
// samples for every upper bound plus the mandatory le="+Inf" bucket,
// then _sum and _count. bounds are the finite bucket upper bounds in
// ascending order; counts holds the NON-cumulative per-bucket counts
// and must be one longer than bounds, its last element counting
// observations above the largest bound. sum is the sum of all observed
// values. labels are attached to every sample of the series.
func (w *PromWriter) Histogram(name, help string, bounds []float64, counts []int64, sum float64, labels ...Label) {
	w.HistogramE(name, help, bounds, counts, sum, nil, labels...)
}

// HistogramE is Histogram with per-bucket exemplars: exemplars, when
// non-nil, must be one per count (len(bounds)+1, the last for the
// overflow bucket); zero-value entries mean "no exemplar". Exemplars
// are emitted only in OpenMetrics mode (SetExemplars) — otherwise
// HistogramE degrades to Histogram, so one assembly path serves both
// content types.
func (w *PromWriter) HistogramE(name, help string, bounds []float64, counts []int64, sum float64, exemplars []Exemplar, labels ...Label) {
	if len(counts) != len(bounds)+1 {
		panic(fmt.Sprintf("obs: histogram %s: %d counts for %d bounds (want bounds+1)", name, len(counts), len(bounds)))
	}
	if exemplars != nil && len(exemplars) != len(counts) {
		panic(fmt.Sprintf("obs: histogram %s: %d exemplars for %d buckets (want one per bucket)", name, len(exemplars), len(counts)))
	}
	w.header(name, help, "histogram")
	exemplar := func(i int) *Exemplar {
		if !w.exemplars || exemplars == nil || len(exemplars[i].Labels) == 0 {
			return nil
		}
		return &exemplars[i]
	}
	var cum int64
	for i, ub := range bounds {
		cum += counts[i]
		w.sampleE(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", formatFloat(ub)}), float64(cum), exemplar(i))
	}
	cum += counts[len(bounds)]
	w.sampleE(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", "+Inf"}), float64(cum), exemplar(len(bounds)))
	w.sample(name+"_sum", labels, sum)
	w.sample(name+"_count", labels, float64(cum))
}

// header emits the HELP/TYPE preamble once per family.
func (w *PromWriter) header(name, help, typ string) {
	if w.seen == nil {
		w.seen = make(map[string]bool)
	}
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	fmt.Fprintf(&w.buf, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&w.buf, "# TYPE %s %s\n", name, typ)
}

// sample emits one "name{labels} value" line.
func (w *PromWriter) sample(name string, labels []Label, v float64) {
	w.sampleE(name, labels, v, nil)
}

// sampleE emits one sample line, with an OpenMetrics exemplar clause
// appended when ex is non-nil.
func (w *PromWriter) sampleE(name string, labels []Label, v float64, ex *Exemplar) {
	w.buf.WriteString(name)
	w.writeLabels(labels)
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatFloat(v))
	if ex != nil {
		w.buf.WriteString(" # ")
		w.writeLabels(ex.Labels)
		w.buf.WriteByte(' ')
		w.buf.WriteString(formatFloat(ex.Value))
		if ex.Ts != 0 {
			w.buf.WriteByte(' ')
			w.buf.WriteString(formatFloat(ex.Ts))
		}
	}
	w.buf.WriteByte('\n')
}

func (w *PromWriter) writeLabels(labels []Label) {
	if len(labels) == 0 {
		return
	}
	w.buf.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			w.buf.WriteByte(',')
		}
		// %q escapes exactly what the exposition format requires of
		// a label value: backslash, double quote, newline.
		fmt.Fprintf(&w.buf, "%s=%q", l.Name, l.Value)
	}
	w.buf.WriteByte('}')
}

// Bytes returns the exposition accumulated so far (without the
// OpenMetrics EOF trailer — see WriteTo).
func (w *PromWriter) Bytes() []byte { return w.buf.Bytes() }

// WriteTo writes the exposition to wr. In OpenMetrics mode
// (SetExemplars) the mandatory "# EOF" trailer is appended.
func (w *PromWriter) WriteTo(wr io.Writer) (int64, error) {
	n, err := wr.Write(w.buf.Bytes())
	if err != nil || !w.exemplars {
		return int64(n), err
	}
	n2, err := io.WriteString(wr, "# EOF\n")
	return int64(n + n2), err
}

// formatFloat renders a sample value or le bound the way Prometheus
// expects: shortest round-trip decimal, with infinities spelled +Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// SortLabels orders a label set by name — handy for callers that
// assemble labels dynamically and want deterministic exposition.
func SortLabels(labels []Label) {
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
}
