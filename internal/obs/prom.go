// Package obs is the serving path's observability toolkit: a hand-rolled
// Prometheus text-exposition writer and a matching minimal parser (both
// stdlib-only, round-trip tested against each other), plus an HTTP
// middleware that assigns request ids and emits one structured log line
// per request. switchd uses the writer for GET /metrics; the parser
// exists so tests — and any in-repo consumer — can read the exposition
// back without a third-party client library.
package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served
// with the format this package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one label name/value pair on a sample.
type Label struct {
	Name, Value string
}

// PromWriter accumulates metric families in Prometheus text exposition
// format (version 0.0.4). HELP/TYPE headers are emitted once per
// family, on the family's first sample; callers therefore write all
// samples of one family together (interleaving families is legal for
// this package's parser but rejected by real Prometheus scrapers).
// The zero value is ready to use.
type PromWriter struct {
	buf  bytes.Buffer
	seen map[string]bool
}

// Counter writes one sample of a counter family.
func (w *PromWriter) Counter(name, help string, v float64, labels ...Label) {
	w.header(name, help, "counter")
	w.sample(name, labels, v)
}

// Gauge writes one sample of a gauge family.
func (w *PromWriter) Gauge(name, help string, v float64, labels ...Label) {
	w.header(name, help, "gauge")
	w.sample(name, labels, v)
}

// Histogram writes one complete histogram series: cumulative _bucket
// samples for every upper bound plus the mandatory le="+Inf" bucket,
// then _sum and _count. bounds are the finite bucket upper bounds in
// ascending order; counts holds the NON-cumulative per-bucket counts
// and must be one longer than bounds, its last element counting
// observations above the largest bound. sum is the sum of all observed
// values. labels are attached to every sample of the series.
func (w *PromWriter) Histogram(name, help string, bounds []float64, counts []int64, sum float64, labels ...Label) {
	if len(counts) != len(bounds)+1 {
		panic(fmt.Sprintf("obs: histogram %s: %d counts for %d bounds (want bounds+1)", name, len(counts), len(bounds)))
	}
	w.header(name, help, "histogram")
	var cum int64
	for i, ub := range bounds {
		cum += counts[i]
		w.sample(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", formatFloat(ub)}), float64(cum))
	}
	cum += counts[len(bounds)]
	w.sample(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", "+Inf"}), float64(cum))
	w.sample(name+"_sum", labels, sum)
	w.sample(name+"_count", labels, float64(cum))
}

// header emits the HELP/TYPE preamble once per family.
func (w *PromWriter) header(name, help, typ string) {
	if w.seen == nil {
		w.seen = make(map[string]bool)
	}
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	fmt.Fprintf(&w.buf, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&w.buf, "# TYPE %s %s\n", name, typ)
}

// sample emits one "name{labels} value" line.
func (w *PromWriter) sample(name string, labels []Label, v float64) {
	w.buf.WriteString(name)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			// %q escapes exactly what the exposition format requires of
			// a label value: backslash, double quote, newline.
			fmt.Fprintf(&w.buf, "%s=%q", l.Name, l.Value)
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatFloat(v))
	w.buf.WriteByte('\n')
}

// Bytes returns the exposition accumulated so far.
func (w *PromWriter) Bytes() []byte { return w.buf.Bytes() }

// WriteTo writes the exposition to wr.
func (w *PromWriter) WriteTo(wr io.Writer) (int64, error) {
	n, err := wr.Write(w.buf.Bytes())
	return int64(n), err
}

// formatFloat renders a sample value or le bound the way Prometheus
// expects: shortest round-trip decimal, with infinities spelled +Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// SortLabels orders a label set by name — handy for callers that
// assemble labels dynamically and want deterministic exposition.
func SortLabels(labels []Label) {
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
}
