package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Cluster metrics federation: MergeProm folds the parsed /metrics
// expositions of every shard into one fleet-wide exposition.
//
// Merge semantics follow what the series mean:
//
//   - counters and histograms are additive — the fleet total is the sum
//     across shards (histograms are summed bucket-wise over the union
//     of bucket bounds, with per-shard carry-forward so cumulative
//     counts stay monotone even when shards expose different bounds);
//   - gauges (and untyped/summary families) are point-in-time facts
//     about one process — summing "goroutines" across shards is
//     meaningless — so each sample is kept and tagged with a shard
//     label instead.
//
// Exemplars are dropped: a fleet bucket aggregates many shards, and a
// single shard's trace reference would be misleading. The output is a
// valid classic 0.0.4 exposition that ParseProm re-accepts.

// ShardExposition is one shard's parsed /metrics exposition, tagged
// with the shard name used for gauge labelling.
type ShardExposition struct {
	Shard   string
	Metrics Metrics
}

// MergeProm writes the merged fleet exposition of shards into w.
// Families are emitted in sorted name order, samples in sorted label
// order, so the output is deterministic.
func MergeProm(w *PromWriter, shards []ShardExposition) {
	names := map[string]bool{}
	for _, sh := range shards {
		for name := range sh.Metrics {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		// The first shard exposing the family fixes its type and help;
		// a shard redeclaring the family under another type is skipped
		// for that family (disagreeing binaries — merging would lie).
		var typ, help string
		for _, sh := range shards {
			if fam := sh.Metrics[name]; fam != nil && fam.Type != "" {
				typ, help = fam.Type, fam.Help
				break
			}
		}
		switch typ {
		case "counter":
			mergeAdditive(w, name, help, shards)
		case "histogram":
			mergeHistogram(w, name, help, shards)
		case "gauge", "untyped", "summary":
			mergePerShard(w, name, help, typ, shards)
		}
	}
}

// labelsSorted renders a label map as a name-sorted Label slice,
// optionally dropping one label.
func labelsSorted(m map[string]string, drop string) []Label {
	out := make([]Label, 0, len(m))
	for k, v := range m {
		if k != drop {
			out = append(out, Label{Name: k, Value: v})
		}
	}
	SortLabels(out)
	return out
}

// mergeAdditive sums counter samples across shards by full label set.
func mergeAdditive(w *PromWriter, name, help string, shards []ShardExposition) {
	type acc struct {
		labels map[string]string
		sum    float64
	}
	byKey := map[string]*acc{}
	for _, sh := range shards {
		fam := sh.Metrics[name]
		if fam == nil || fam.Type != "counter" {
			continue
		}
		for _, s := range fam.Samples {
			key := labelKey(s.Labels, "")
			a, ok := byKey[key]
			if !ok {
				a = &acc{labels: s.Labels}
				byKey[key] = a
			}
			a.sum += s.Value
		}
	}
	if len(byKey) == 0 {
		return
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.Counter(name, help, byKey[k].sum, labelsSorted(byKey[k].labels, "")...)
	}
}

// mergePerShard keeps every shard's samples, tagged with a shard label
// (unless the sample already carries one). Used for gauges and for the
// types with no meaningful cross-shard aggregation.
func mergePerShard(w *PromWriter, name, help, typ string, shards []ShardExposition) {
	for _, sh := range shards {
		fam := sh.Metrics[name]
		if fam == nil || fam.Type != typ {
			continue
		}
		for _, s := range fam.Samples {
			w.header(name, help, typ)
			labels := labelsSorted(s.Labels, "")
			if _, has := s.Labels["shard"]; !has {
				labels = append(labels, Label{Name: "shard", Value: sh.Shard})
				SortLabels(labels)
			}
			// Summary quantile/_sum/_count samples keep their own
			// names; plain gauge samples are just the family name.
			w.sample(s.Name, labels, s.Value)
		}
	}
}

// mergeHistogram sums one histogram family bucket-wise across shards,
// per series (label set minus le). Bucket bounds are unioned; a shard
// that lacks a bound contributes its cumulative count at the largest
// bound it does have below it (carry-forward), which keeps the merged
// cumulative counts monotone.
func mergeHistogram(w *PromWriter, name, help string, shards []ShardExposition) {
	type shardSeries struct {
		les  []float64 // sorted, includes +Inf
		cum  map[float64]float64
		sum  float64
		inf  float64
		seen bool
	}
	type series struct {
		labels map[string]string
		shards []*shardSeries // parallel to the shards slice
	}
	bySeries := map[string]*series{}
	get := func(labels map[string]string, shardIdx, nShards int) *shardSeries {
		key := labelKey(labels, "le")
		se, ok := bySeries[key]
		if !ok {
			se = &series{labels: labels, shards: make([]*shardSeries, nShards)}
			bySeries[key] = se
		}
		if se.shards[shardIdx] == nil {
			se.shards[shardIdx] = &shardSeries{cum: map[float64]float64{}}
		}
		return se.shards[shardIdx]
	}
	for si, sh := range shards {
		fam := sh.Metrics[name]
		if fam == nil || fam.Type != "histogram" {
			continue
		}
		for _, s := range fam.Samples {
			switch {
			case strings.HasSuffix(s.Name, "_bucket"):
				le, err := parseValue(s.Labels["le"])
				if err != nil {
					continue // the strict parser already rejected this upstream
				}
				ss := get(s.Labels, si, len(shards))
				ss.seen = true
				ss.cum[le] = s.Value
				if math.IsInf(le, +1) {
					ss.inf = s.Value
				}
			case strings.HasSuffix(s.Name, "_sum"):
				ss := get(s.Labels, si, len(shards))
				ss.seen = true
				ss.sum = s.Value
			}
		}
	}
	if len(bySeries) == 0 {
		return
	}
	keys := make([]string, 0, len(bySeries))
	for k := range bySeries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		se := bySeries[key]
		// Union of finite bounds across shards, sorted.
		boundSet := map[float64]bool{}
		for _, ss := range se.shards {
			if ss == nil || !ss.seen {
				continue
			}
			for le := range ss.cum {
				if !math.IsInf(le, +1) {
					boundSet[le] = true
				}
			}
			ss.les = ss.les[:0]
			for le := range ss.cum {
				ss.les = append(ss.les, le)
			}
			sort.Float64s(ss.les)
		}
		bounds := make([]float64, 0, len(boundSet))
		for le := range boundSet {
			bounds = append(bounds, le)
		}
		sort.Float64s(bounds)

		// Merged cumulative count at each bound: every shard contributes
		// the cumulative count of its largest bound <= le.
		stepAt := func(ss *shardSeries, le float64) float64 {
			var v float64
			for _, l := range ss.les {
				if l <= le {
					v = ss.cum[l]
				} else {
					break
				}
			}
			return v
		}
		var sum, infCum float64
		cums := make([]float64, len(bounds))
		for _, ss := range se.shards {
			if ss == nil || !ss.seen {
				continue
			}
			for i, le := range bounds {
				cums[i] += stepAt(ss, le)
			}
			infCum += ss.inf
			sum += ss.sum
		}
		// Back to the writer's non-cumulative shape: per-bucket deltas
		// plus the overflow bucket.
		counts := make([]int64, len(bounds)+1)
		prev := float64(0)
		for i, c := range cums {
			counts[i] = int64(c - prev)
			prev = c
		}
		counts[len(bounds)] = int64(infCum - prev)
		w.Histogram(name, help, bounds, counts, sum, labelsSorted(se.labels, "le")...)
	}
}

// MergeFleet is the HTTP-layer convenience: parse each shard's raw
// exposition and merge the ones that parse. Shards whose exposition is
// unreadable are reported (and skipped) rather than failing the whole
// federation — a fleet view that dies with its sickest member is
// useless during exactly the incident it exists for.
func MergeFleet(w *PromWriter, raw map[string][]byte) (bad map[string]error) {
	shards := make([]ShardExposition, 0, len(raw))
	names := make([]string, 0, len(raw))
	for name := range raw {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m, err := ParseProm(strings.NewReader(string(raw[name])))
		if err != nil {
			if bad == nil {
				bad = map[string]error{}
			}
			bad[name] = fmt.Errorf("shard %s: %w", name, err)
			continue
		}
		shards = append(shards, ShardExposition{Shard: name, Metrics: m})
	}
	MergeProm(w, shards)
	return bad
}
