package obs

import (
	"bytes"
	"strings"
	"testing"
)

const exTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

// TestExemplarRoundTrip writes a histogram with per-bucket exemplars in
// OpenMetrics mode and parses it back, asserting the exemplar clause
// survives: labels, value, and timestamp.
func TestExemplarRoundTrip(t *testing.T) {
	var w PromWriter
	w.SetExemplars(true)
	ex := []Exemplar{
		{Labels: []Label{{"trace_id", exTraceID}}, Value: 0.0007, Ts: 1700000000.5},
		{}, // bucket without an exemplar
		{Labels: []Label{{"trace_id", strings.Repeat("ab", 16)}}, Value: 0.02},
		{}, // overflow bucket without an exemplar
	}
	w.HistogramE("wdm_op_latency_seconds", "Latency.",
		[]float64{0.001, 0.01, 0.1}, []int64{5, 3, 1, 2}, 0.456, ex, Label{"op", "connect"})

	var out bytes.Buffer
	if _, err := w.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(out.String(), "# EOF\n") {
		t.Fatalf("OpenMetrics exposition missing EOF trailer:\n%s", out.String())
	}

	m, err := ParseProm(&out)
	if err != nil {
		t.Fatalf("ParseProm: %v\nexposition:\n%s", err, w.Bytes())
	}
	fam := m["wdm_op_latency_seconds"]
	if fam == nil {
		t.Fatal("histogram family missing")
	}
	var withEx int
	for _, s := range fam.Samples {
		if s.Exemplar == nil {
			continue
		}
		withEx++
		switch s.Labels["le"] {
		case "0.001":
			if s.Exemplar.TraceID() != exTraceID || s.Exemplar.Value != 0.0007 ||
				!s.Exemplar.HasTs || s.Exemplar.Ts != 1700000000.5 {
				t.Fatalf("le=0.001 exemplar = %+v", s.Exemplar)
			}
		case "0.1":
			if s.Exemplar.TraceID() != strings.Repeat("ab", 16) || s.Exemplar.HasTs {
				t.Fatalf("le=0.1 exemplar = %+v", s.Exemplar)
			}
		default:
			t.Fatalf("unexpected exemplar on le=%s", s.Labels["le"])
		}
	}
	if withEx != 2 {
		t.Fatalf("%d samples carry exemplars, want 2", withEx)
	}
}

// TestExemplarsOffByDefault: without SetExemplars the same HistogramE
// call writes classic 0.0.4 text — no exemplar clause, no EOF trailer.
func TestExemplarsOffByDefault(t *testing.T) {
	var w PromWriter
	ex := []Exemplar{{Labels: []Label{{"trace_id", exTraceID}}, Value: 1}, {}}
	w.HistogramE("h", "h", []float64{1}, []int64{1, 0}, 1, ex)
	var out bytes.Buffer
	if _, err := w.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "#  {") || strings.Contains(out.String(), " # {") || strings.Contains(out.String(), "EOF") {
		t.Fatalf("classic exposition leaked OpenMetrics syntax:\n%s", out.String())
	}
	if _, err := ParseProm(bytes.NewReader(w.Bytes())); err != nil {
		t.Fatalf("classic exposition does not parse: %v", err)
	}
}

// TestExemplarShapePanics documents HistogramE's contract: exemplars,
// when given, must be one per bucket.
func TestExemplarShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on exemplars/buckets mismatch")
		}
	}()
	var w PromWriter
	w.HistogramE("h", "h", []float64{1}, []int64{1, 0}, 1, []Exemplar{{}})
}

// TestParseRejectsMalformedExemplars: the parser is a validator for the
// exemplar syntax too, and its errors carry the offending line.
func TestParseRejectsMalformedExemplars(t *testing.T) {
	histHeader := "# TYPE h histogram\n"
	histTail := "h_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n"
	cases := []struct{ name, text, wantInErr string }{
		{
			"exemplar on gauge family",
			"# TYPE g gauge\ng 1 # {trace_id=\"" + exTraceID + "\"} 1\n",
			"line 2",
		},
		{
			"exemplar on histogram _count",
			histHeader + "h_bucket{le=\"+Inf\"} 5\nh_count 5 # {trace_id=\"" + exTraceID + "\"} 1\nh_sum 1\n",
			"line 3",
		},
		{
			"bad trace id hex",
			histHeader + "h_bucket{le=\"1\"} 5 # {trace_id=\"XYZ\"} 1\n" + histTail,
			"trace_id",
		},
		{
			"uppercase trace id",
			histHeader + "h_bucket{le=\"1\"} 5 # {trace_id=\"" + strings.ToUpper(exTraceID) + "\"} 1\n" + histTail,
			"trace_id",
		},
		{
			"short trace id",
			histHeader + "h_bucket{le=\"1\"} 5 # {trace_id=\"abcd\"} 1\n" + histTail,
			"trace_id",
		},
		{
			"missing label block",
			histHeader + "h_bucket{le=\"1\"} 5 # 1\n" + histTail,
			"label block",
		},
		{
			"empty label set",
			histHeader + "h_bucket{le=\"1\"} 5 # {} 1\n" + histTail,
			"empty label set",
		},
		{
			"missing value",
			histHeader + "h_bucket{le=\"1\"} 5 # {trace_id=\"" + exTraceID + "\"}\n" + histTail,
			"want value",
		},
		{
			"bad exemplar value",
			histHeader + "h_bucket{le=\"1\"} 5 # {trace_id=\"" + exTraceID + "\"} zap\n" + histTail,
			"line 2",
		},
		{
			"bad exemplar timestamp",
			histHeader + "h_bucket{le=\"1\"} 5 # {trace_id=\"" + exTraceID + "\"} 1 zap\n" + histTail,
			"timestamp",
		},
	}
	for _, tc := range cases {
		_, err := ParseProm(strings.NewReader(tc.text))
		if err == nil {
			t.Errorf("%s: parsed without error:\n%s", tc.name, tc.text)
			continue
		}
		if !strings.Contains(err.Error(), "line ") {
			t.Errorf("%s: error carries no line position: %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.wantInErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantInErr)
		}
	}
}

// TestParseIgnoresEOFTrailer: the OpenMetrics "# EOF" line parses as a
// plain comment.
func TestParseIgnoresEOFTrailer(t *testing.T) {
	if _, err := ParseProm(strings.NewReader("# TYPE g gauge\ng 1\n# EOF\n")); err != nil {
		t.Fatalf("EOF trailer broke the parse: %v", err)
	}
}
