// Package tsdb is an embedded, stdlib-only time-series store for the
// in-process metrics registry: a self-scraper renders the registry
// through obs.PromWriter, reads it back with the strict obs.ParseProm
// parser, and appends every sample to per-series delta-encoded ring
// buffers with downsampling tiers (raw → 10s → 1m by default), so a
// single process retains hours of queryable history under a memory
// ceiling proven by test. On top of the store sit a small query engine
// (label selectors, instant and range queries, rate()/increase() over
// counters, quantile-from-histogram derivation — query.go) and an
// alerting rules engine with threshold, absence, and burn-rate forms
// (alert.go). The SLO engine in internal/obs/slo evaluates its sliding
// windows against this store's CounterAt/Increase primitives, so the
// repo has exactly one windowing implementation.
package tsdb

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Kind classifies a series for query semantics: counters are cumulative
// (rate()/increase() apply), gauges are point-in-time.
type Kind uint8

const (
	KindGauge Kind = iota
	KindCounter
)

func (k Kind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// Tier is one retention tier. Res is the downsampling window: within
// one window the tier keeps the window's last sample (cumulative
// counters and histogram buckets stay exact — the last sample of a
// window IS the cumulative total at window end). Res 0 keeps every
// observed sample (the raw tier). Retention bounds how far back the
// tier reaches; older chunks are evicted.
type Tier struct {
	Res       time.Duration
	Retention time.Duration
}

// DefaultTiers is the shipped raw → 10s → 1m ladder: 15 minutes of
// every scrape, 4 hours at 10s, 24 hours at 1m.
func DefaultTiers() []Tier {
	return []Tier{
		{Res: 0, Retention: 15 * time.Minute},
		{Res: 10 * time.Second, Retention: 4 * time.Hour},
		{Res: time.Minute, Retention: 24 * time.Hour},
	}
}

// Config configures a Store. The zero value of every field has a
// usable default except Collect, without which ScrapeOnce/Run are
// inert (Observe/Append still work — the slo engine runs a store with
// no collector).
type Config struct {
	// Interval is the self-scrape cadence (and the raw tier's expected
	// sample spacing, which sizes its ring). 0 means 1s.
	Interval time.Duration
	// Tiers is the retention ladder; nil means DefaultTiers().
	Tiers []Tier
	// MaxSeries caps distinct series; samples for new series beyond the
	// cap are dropped (counted in Stats). 0 means 2048.
	MaxSeries int
	// Collect renders the registry to scrape. The store serializes the
	// writer and re-reads it with obs.ParseProm, so the scrape path
	// exercises the same strict parser as external scrapers.
	Collect func(*obs.PromWriter)
	// Now injects a clock for tests. nil means time.Now.
	Now func() time.Time
	// Logger receives scrape errors. nil means slog.Default.
	Logger *slog.Logger
}

// seriesTier is one tier's state for one series: the chunk ring plus
// the pending (not yet flushed) last sample of the current window.
type seriesTier struct {
	res       int64 // downsample window ms; 0 = raw
	maxPoints int
	chunks    []*chunk
	total     int
	evicted   bool
	pendT     int64
	pendV     float64
	pendW     int64
	hasPend   bool
}

func (st *seriesTier) appendPoint(t int64, v float64) {
	if len(st.chunks) == 0 || st.chunks[len(st.chunks)-1].full() {
		st.chunks = append(st.chunks, &chunk{})
	}
	st.chunks[len(st.chunks)-1].append(t, v)
	st.total++
	for len(st.chunks) > 1 && st.total-st.chunks[0].n >= st.maxPoints {
		st.total -= st.chunks[0].n
		st.chunks = st.chunks[1:]
		st.evicted = true
	}
}

// observe routes one sample through the tier's downsampling window.
func (st *seriesTier) observe(t int64, v float64) {
	if st.res <= 0 {
		st.appendPoint(t, v)
		return
	}
	w := t / st.res
	if st.hasPend && w != st.pendW {
		st.appendPoint(st.pendT, st.pendV)
	}
	st.pendT, st.pendV, st.pendW, st.hasPend = t, v, w, true
}

// first returns the oldest retained point (the pending sample when no
// chunk has been written yet).
func (st *seriesTier) first() (point, bool) {
	if len(st.chunks) > 0 && st.chunks[0].n > 0 {
		return point{st.chunks[0].firstT, st.chunks[0].firstV}, true
	}
	if st.hasPend {
		return point{st.pendT, st.pendV}, true
	}
	return point{}, false
}

// last returns the newest retained point.
func (st *seriesTier) last() (point, bool) {
	if st.hasPend {
		return point{st.pendT, st.pendV}, true
	}
	for i := len(st.chunks) - 1; i >= 0; i-- {
		if c := st.chunks[i]; c.n > 0 {
			return point{c.lastT, c.lastV}, true
		}
	}
	return point{}, false
}

// lastAtOrBefore returns the newest point with timestamp ≤ t.
func (st *seriesTier) lastAtOrBefore(t int64) (point, bool) {
	if st.hasPend && st.pendT <= t {
		return point{st.pendT, st.pendV}, true
	}
	for i := len(st.chunks) - 1; i >= 0; i-- {
		c := st.chunks[i]
		if c.n == 0 || c.firstT > t {
			continue
		}
		best := point{c.firstT, c.firstV}
		c.iter(func(pt int64, pv float64) bool {
			if pt > t {
				return false
			}
			best = point{pt, pv}
			return true
		})
		return best, true
	}
	return point{}, false
}

// scan calls fn for every retained point with from ≤ t ≤ to, oldest
// first, the pending sample included.
func (st *seriesTier) scan(from, to int64, fn func(t int64, v float64)) {
	for _, c := range st.chunks {
		if c.n == 0 || c.lastT < from || c.firstT > to {
			continue
		}
		c.iter(func(t int64, v float64) bool {
			if t > to {
				return false
			}
			if t >= from {
				fn(t, v)
			}
			return true
		})
	}
	if st.hasPend && st.pendT >= from && st.pendT <= to {
		fn(st.pendT, st.pendV)
	}
}

func (st *seriesTier) bytes() int {
	n := 96
	for _, c := range st.chunks {
		n += c.bytes()
	}
	return n
}

// series is one named+labeled sample stream across every tier.
type series struct {
	name   string
	labels map[string]string
	kind   Kind
	tiers  []*seriesTier
}

// tierForTime picks the finest tier able to answer at time t: the
// first tier that still retains a point at or before t, or that has
// never evicted (and therefore holds its complete history).
func (sr *series) tierForTime(t int64) *seriesTier {
	for _, st := range sr.tiers {
		if !st.evicted {
			return st
		}
		if p, ok := st.first(); ok && p.t <= t {
			return st
		}
	}
	return sr.tiers[len(sr.tiers)-1]
}

// Store is the embedded time-series database. All methods are safe for
// concurrent use.
type Store struct {
	cfg      Config
	interval time.Duration
	tiers    []Tier
	logger   *slog.Logger

	mu     sync.Mutex
	series map[string]*series
	buf    bytes.Buffer // scratch for ScrapeOnce

	nSeries   atomic.Int64
	nSamples  atomic.Uint64
	nScrapes  atomic.Uint64
	nDropped  atomic.Uint64
	scrapeNs  atomic.Int64
	lastError atomic.Pointer[string]
}

// New builds a Store; see Config for defaults.
func New(cfg Config) *Store {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = 2048
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	tiers := cfg.Tiers
	if len(tiers) == 0 {
		tiers = DefaultTiers()
	}
	lg := cfg.Logger
	if lg == nil {
		lg = slog.Default()
	}
	return &Store{
		cfg:      cfg,
		interval: cfg.Interval,
		tiers:    tiers,
		logger:   lg,
		series:   make(map[string]*series),
	}
}

// Interval reports the configured scrape cadence.
func (s *Store) Interval() time.Duration { return s.interval }

func (s *Store) now() time.Time { return s.cfg.Now() }

func (s *Store) newSeries(name string, labels map[string]string, kind Kind) *series {
	sr := &series{name: name, labels: labels, kind: kind}
	for _, t := range s.tiers {
		step := t.Res
		if step <= 0 {
			step = s.interval
		}
		mp := int(t.Retention/step) + 1
		if mp < chunkPoints {
			mp = chunkPoints
		}
		sr.tiers = append(sr.tiers, &seriesTier{res: t.Res.Milliseconds(), maxPoints: mp})
	}
	return sr
}

// getLocked returns (creating on demand, respecting MaxSeries) the
// series for one sample identity.
func (s *Store) getLocked(name string, labels map[string]string, kind Kind) *series {
	key := name + "{" + obs.LabelKey(labels) + "}"
	sr, ok := s.series[key]
	if ok {
		return sr
	}
	if len(s.series) >= s.cfg.MaxSeries {
		s.nDropped.Add(1)
		return nil
	}
	lcopy := make(map[string]string, len(labels))
	for k, v := range labels {
		lcopy[k] = v
	}
	sr = s.newSeries(name, lcopy, kind)
	s.series[key] = sr
	s.nSeries.Store(int64(len(s.series)))
	return sr
}

// kindFor classifies one sample of a parsed family.
func kindFor(fam *obs.Family, sampleName string) Kind {
	switch fam.Type {
	case "counter":
		return KindCounter
	case "histogram", "summary":
		if sampleName != fam.Name {
			return KindCounter // _bucket/_sum/_count are cumulative
		}
	}
	return KindGauge
}

// Observe ingests every sample of a parsed exposition at time at.
// NaN samples are skipped — they would poison comparisons downstream.
func (s *Store) Observe(at time.Time, m obs.Metrics) {
	ms := at.UnixMilli()
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, fam := range m {
		for i := range fam.Samples {
			sm := &fam.Samples[i]
			if math.IsNaN(sm.Value) {
				continue
			}
			sr := s.getLocked(sm.Name, sm.Labels, kindFor(fam, sm.Name))
			if sr == nil {
				continue
			}
			for _, st := range sr.tiers {
				st.observe(ms, sm.Value)
			}
			n++
		}
	}
	s.nSamples.Add(n)
}

// Append ingests one sample directly — the path the slo engine uses to
// persist its per-step cumulative counters without a full exposition
// round-trip.
func (s *Store) Append(at time.Time, name string, labels map[string]string, kind Kind, v float64) {
	if math.IsNaN(v) {
		return
	}
	ms := at.UnixMilli()
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.getLocked(name, labels, kind)
	if sr == nil {
		return
	}
	for _, st := range sr.tiers {
		st.observe(ms, v)
	}
	s.nSamples.Add(1)
}

// ScrapeOnce performs one self-scrape: render the registry, re-parse
// it strictly, ingest every sample.
func (s *Store) ScrapeOnce(now time.Time) error {
	if s.cfg.Collect == nil {
		return fmt.Errorf("tsdb: no Collect configured")
	}
	start := time.Now()
	var pw obs.PromWriter
	s.cfg.Collect(&pw)
	m, err := obs.ParseProm(bytes.NewReader(pw.Bytes()))
	if err != nil {
		msg := err.Error()
		s.lastError.Store(&msg)
		return fmt.Errorf("tsdb: self-scrape parse: %w", err)
	}
	s.Observe(now, m)
	s.nScrapes.Add(1)
	s.scrapeNs.Store(int64(time.Since(start)))
	return nil
}

// Run scrapes on the configured interval until ctx is done, invoking
// afterScrape (when non-nil) after each scrape — the alert engine's
// evaluation hook.
func (s *Store) Run(ctx context.Context, afterScrape func(now time.Time)) {
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			now := s.now()
			if err := s.ScrapeOnce(now); err != nil {
				s.logger.Warn("tsdb scrape failed", "err", err)
				continue
			}
			if afterScrape != nil {
				afterScrape(now)
			}
		}
	}
}

// counterAtLocked implements the cumulative-counter baseline rules:
// the newest sample at or before t; 0 when the series has no sample
// that old and nothing was ever evicted (the counter was born later,
// cumulative value 0 before birth); the oldest retained sample when
// eviction erased the true baseline (an underestimate of elapsed
// increase, never an overestimate).
func counterAtTier(st *seriesTier, t int64) float64 {
	if p, ok := st.lastAtOrBefore(t); ok {
		return p.v
	}
	if st.evicted {
		if p, ok := st.first(); ok {
			return p.v
		}
	}
	return 0
}

func (sr *series) counterAt(t int64) float64 {
	return counterAtTier(sr.tierForTime(t), t)
}

// CounterAt reports the cumulative value of one counter series at time
// at, under the baseline rules above. Missing series read as 0.
func (s *Store) CounterAt(name string, labels map[string]string, at time.Time) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[name+"{"+obs.LabelKey(labels)+"}"]
	if sr == nil {
		return 0
	}
	return sr.counterAt(at.UnixMilli())
}

// Increase reports how much one cumulative counter grew over (from,
// to] — THE windowing primitive: rate(), the burn-rate alert form,
// and the slo engine's sliding windows all reduce to it. In-process
// series never reset (the store dies with the process), so a clamped
// difference of cumulative values is exact.
func (s *Store) Increase(name string, labels map[string]string, from, to time.Time) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[name+"{"+obs.LabelKey(labels)+"}"]
	if sr == nil {
		return 0
	}
	return increaseSeries(sr, from.UnixMilli(), to.UnixMilli())
}

func increaseSeries(sr *series, from, to int64) float64 {
	d := sr.counterAt(to) - sr.counterAt(from)
	if d < 0 {
		return 0
	}
	return d
}

// Stats is the store's self-observation snapshot.
type Stats struct {
	Series        int           `json:"series"`
	SamplesTotal  uint64        `json:"samples_total"`
	Scrapes       uint64        `json:"scrapes"`
	DroppedSeries uint64        `json:"dropped_series"`
	LastScrape    time.Duration `json:"last_scrape_ns"`
	Bytes         int           `json:"bytes"`
	LastError     string        `json:"last_error,omitempty"`
}

// Stats reports series/sample counts and the approximate retained
// bytes across every tier of every series.
func (s *Store) Stats() Stats {
	st := Stats{
		Series:        int(s.nSeries.Load()),
		SamplesTotal:  s.nSamples.Load(),
		Scrapes:       s.nScrapes.Load(),
		DroppedSeries: s.nDropped.Load(),
		LastScrape:    time.Duration(s.scrapeNs.Load()),
	}
	if e := s.lastError.Load(); e != nil {
		st.LastError = *e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sr := range s.series {
		for _, t := range sr.tiers {
			st.Bytes += t.bytes()
		}
	}
	return st
}

// dumpSeries is one series in the debug dump.
type dumpSeries struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Tiers  []dumpTier        `json:"tiers"`
}

type dumpTier struct {
	ResMs  int64   `json:"res_ms"`
	Points []Point `json:"points"`
}

// DumpJSON writes every retained point of every series — the
// /v1/debug/tsdb payload and the alert-demo CI artifact.
func (s *Store) DumpJSON(w io.Writer) error {
	s.mu.Lock()
	keys := make([]string, 0, len(s.series))
	for k := range s.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := struct {
		Stats  Stats        `json:"stats"`
		Series []dumpSeries `json:"series"`
	}{}
	for _, k := range keys {
		sr := s.series[k]
		ds := dumpSeries{Name: sr.name, Labels: sr.labels, Kind: sr.kind.String()}
		for _, st := range sr.tiers {
			dt := dumpTier{ResMs: st.res}
			st.scan(math.MinInt64, math.MaxInt64, func(t int64, v float64) {
				dt.Points = append(dt.Points, Point{T: t, V: v})
			})
			ds.Tiers = append(ds.Tiers, dt)
		}
		out.Series = append(out.Series, ds)
	}
	s.mu.Unlock()
	out.Stats = s.Stats()
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
