package tsdb

import (
	"encoding/binary"
	"math"
)

// point is one decoded sample: unix-millisecond timestamp and value.
type point struct {
	t int64
	v float64
}

// chunkPoints caps a chunk's sample count; eviction drops whole chunks
// from the front of a tier's ring, so the cap bounds both encode state
// and eviction granularity.
const chunkPoints = 120

// chunk is a delta-encoded run of up to chunkPoints samples of one
// series tier. The first point is stored verbatim; each later point
// appends uvarint(Δt ms) followed by either a 0x00 flag and the signed
// varint integer value delta (the common case: counters and integral
// gauges) or a 0x01 flag and the raw little-endian float64 bits.
type chunk struct {
	firstT int64
	firstV float64
	lastT  int64
	lastV  float64
	n      int
	buf    []byte
}

func (c *chunk) full() bool { return c.n >= chunkPoints }

// bytes approximates the chunk's retained size for memory accounting.
func (c *chunk) bytes() int { return len(c.buf) + 48 }

// intVal reports v as an exactly-representable int64, the precondition
// for the packed integer-delta encoding.
func intVal(v float64) (int64, bool) {
	if v != math.Trunc(v) || math.Abs(v) > 1<<52 {
		return 0, false
	}
	return int64(v), true
}

// append encodes one sample. Timestamps must be non-decreasing; a
// regression is clamped to zero delta rather than corrupting the stream.
func (c *chunk) append(t int64, v float64) {
	if c.n == 0 {
		c.firstT, c.firstV = t, v
		c.lastT, c.lastV = t, v
		c.n = 1
		return
	}
	dt := t - c.lastT
	if dt < 0 {
		dt = 0
		t = c.lastT
	}
	c.buf = binary.AppendUvarint(c.buf, uint64(dt))
	iv, iok := intVal(v)
	pv, pok := intVal(c.lastV)
	if iok && pok {
		c.buf = append(c.buf, 0x00)
		c.buf = binary.AppendVarint(c.buf, iv-pv)
	} else {
		c.buf = append(c.buf, 0x01)
		c.buf = binary.LittleEndian.AppendUint64(c.buf, math.Float64bits(v))
	}
	c.lastT, c.lastV = t, v
	c.n++
}

// iter decodes the chunk in order, calling fn per point until it
// returns false.
func (c *chunk) iter(fn func(t int64, v float64) bool) {
	if c.n == 0 {
		return
	}
	if !fn(c.firstT, c.firstV) {
		return
	}
	t, v := c.firstT, c.firstV
	buf := c.buf
	for len(buf) > 0 {
		dt, n := binary.Uvarint(buf)
		buf = buf[n:]
		t += int64(dt)
		switch buf[0] {
		case 0x00:
			buf = buf[1:]
			dv, n := binary.Varint(buf)
			buf = buf[n:]
			iv, _ := intVal(v)
			v = float64(iv + dv)
		default:
			buf = buf[1:]
			v = math.Float64frombits(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
		}
		if !fn(t, v) {
			return
		}
	}
}
