package tsdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a settable test clock.
type fakeClock struct{ t time.Time }

func newClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestChunkRoundTrip(t *testing.T) {
	c := &chunk{}
	pts := []point{
		{1000, 0}, {2000, 1}, {3000, 1}, {4100, 42}, {5100, 41.5},
		{6100, math.Inf(+1)}, {7100, 1e12}, {8100, 1e12 + 3}, {8100, -7},
	}
	for _, p := range pts {
		c.append(p.t, p.v)
	}
	var got []point
	c.iter(func(ts int64, v float64) bool {
		got = append(got, point{ts, v})
		return true
	})
	if len(got) != len(pts) {
		t.Fatalf("round-trip %d points, want %d", len(got), len(pts))
	}
	for i, p := range pts {
		if got[i].t != p.t || got[i].v != p.v {
			t.Errorf("point %d: got (%d, %v), want (%d, %v)", i, got[i].t, got[i].v, p.t, p.v)
		}
	}
}

func TestChunkDeltaEncodingIsCompact(t *testing.T) {
	c := &chunk{}
	// A counter sampled every second, incrementing by small amounts:
	// the dominant case must stay a few bytes per point.
	ts, v := int64(0), 0.0
	for i := 0; i < chunkPoints; i++ {
		c.append(ts, v)
		ts += 1000
		v += float64(i % 3)
	}
	perPoint := float64(len(c.buf)) / float64(chunkPoints-1)
	if perPoint > 5 {
		t.Fatalf("delta encoding averages %.1f bytes/point, want <= 5", perPoint)
	}
}

// testStore builds a store with an injectable clock and small tiers.
func testStore(clk *fakeClock, tiers []Tier) *Store {
	return New(Config{
		Interval: time.Second,
		Tiers:    tiers,
		Now:      clk.now,
	})
}

// TestDownsamplingPreservesCounterMonotonicity is the golden tier
// test: a counter scraped every second for 10 minutes must decode as a
// non-decreasing sequence in every tier, and every tier must agree on
// the final cumulative value.
func TestDownsamplingPreservesCounterMonotonicity(t *testing.T) {
	clk := newClock()
	s := testStore(clk, DefaultTiers())
	total := 0.0
	for i := 0; i < 600; i++ {
		total += float64(i % 7)
		s.Append(clk.now(), "ctr_total", nil, KindCounter, total)
		clk.advance(time.Second)
	}
	s.mu.Lock()
	sr := s.series["ctr_total{}"]
	s.mu.Unlock()
	if sr == nil {
		t.Fatal("series not created")
	}
	for ti, st := range sr.tiers {
		var pts []point
		s.mu.Lock()
		st.scan(math.MinInt64, math.MaxInt64, func(ts int64, v float64) {
			pts = append(pts, point{ts, v})
		})
		s.mu.Unlock()
		if len(pts) == 0 {
			t.Fatalf("tier %d: no points", ti)
		}
		prev := math.Inf(-1)
		for i, p := range pts {
			if p.v < prev {
				t.Fatalf("tier %d: point %d decreased: %v -> %v", ti, i, prev, p.v)
			}
			prev = p.v
		}
		if last := pts[len(pts)-1].v; last != total {
			t.Errorf("tier %d: final value %v, want %v (downsampling must keep the window's last cumulative sample)", ti, last, total)
		}
		// Tier point counts reflect their resolution.
		if ti == 1 && len(pts) > 600/10+2 {
			t.Errorf("10s tier holds %d points for 600s of samples", len(pts))
		}
		if ti == 2 && len(pts) > 600/60+2 {
			t.Errorf("1m tier holds %d points for 600s of samples", len(pts))
		}
	}
}

// TestDownsamplingPreservesHistogramBucketSums scrapes a synthetic
// histogram exposition and checks that in every tier, at every
// retained timestamp of the 10s tier, cumulative bucket counts stay
// consistent: non-decreasing across le within one timestamp, and the
// +Inf bucket equal to _count.
func TestDownsamplingPreservesHistogramBucketSums(t *testing.T) {
	clk := newClock()
	s := testStore(clk, DefaultTiers())
	bounds := []float64{0.001, 0.01, 0.1}
	counts := []int64{0, 0, 0, 0}
	var sum float64
	for i := 0; i < 300; i++ {
		counts[i%4]++
		sum += 0.001 * float64(i%4)
		var pw obs.PromWriter
		pw.Histogram("h_seconds", "test", bounds, counts, sum)
		m, err := obs.ParseProm(bytes.NewReader(pw.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		s.Observe(clk.now(), m)
		clk.advance(time.Second)
	}
	les := []string{"0.001", "0.01", "0.1", "+Inf"}
	for ti := range DefaultTiers() {
		// Gather per-le decoded points keyed by timestamp.
		byLe := map[string]map[int64]float64{}
		s.mu.Lock()
		for _, le := range les {
			sr := s.series[fmt.Sprintf("h_seconds_bucket{le=%q}", le)]
			if sr == nil {
				s.mu.Unlock()
				t.Fatalf("bucket le=%s not stored", le)
			}
			pts := map[int64]float64{}
			sr.tiers[ti].scan(math.MinInt64, math.MaxInt64, func(ts int64, v float64) { pts[ts] = v })
			byLe[le] = pts
		}
		cnt := map[int64]float64{}
		if sr := s.series["h_seconds_count{}"]; sr != nil {
			sr.tiers[ti].scan(math.MinInt64, math.MaxInt64, func(ts int64, v float64) { cnt[ts] = v })
		}
		s.mu.Unlock()
		for ts := range byLe["+Inf"] {
			prev := -1.0
			for _, le := range les {
				v, ok := byLe[le][ts]
				if !ok {
					t.Fatalf("tier %d: bucket le=%s missing timestamp %d (windows must align across buckets)", ti, le, ts)
				}
				if v < prev {
					t.Fatalf("tier %d at %d: bucket le=%s count %v < previous %v", ti, ts, le, v, prev)
				}
				prev = v
			}
			if c, ok := cnt[ts]; ok && c != byLe["+Inf"][ts] {
				t.Fatalf("tier %d at %d: _count %v != +Inf bucket %v", ti, ts, c, byLe["+Inf"][ts])
			}
		}
	}
}

// TestRetentionBoundsMemory is the memory-ceiling proof: 24 hours of
// 1s samples across a fleet-sized series set must stay under a hard
// byte ceiling, because every tier evicts by point count.
func TestRetentionBoundsMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("24h simulation")
	}
	clk := newClock()
	s := testStore(clk, DefaultTiers())
	const nSeries = 8
	labels := make([]map[string]string, nSeries)
	for i := range labels {
		labels[i] = map[string]string{"i": fmt.Sprint(i)}
	}
	v := 0.0
	for sec := 0; sec < 24*3600; sec++ {
		v += 3
		for i := 0; i < nSeries; i++ {
			s.Append(clk.now(), "load_total", labels[i], KindCounter, v)
		}
		clk.advance(time.Second)
	}
	st := s.Stats()
	if st.Series != nSeries {
		t.Fatalf("series %d, want %d", st.Series, nSeries)
	}
	// Ceiling: raw tier 900 pts + 10s tier 1440 pts + 1m tier 1440 pts
	// ≈ 3800 pts/series; at <=10 bytes/point encoded plus chunk+tier
	// overhead that is well under 64 KiB per series.
	ceiling := nSeries * 64 * 1024
	if st.Bytes > ceiling {
		t.Fatalf("24h of samples retain %d bytes, ceiling %d", st.Bytes, ceiling)
	}
	// And the tiers must actually have evicted: the raw tier must not
	// hold anywhere near 86400 points.
	s.mu.Lock()
	raw := s.series["load_total{"+obs.LabelKey(labels[0])+"}"].tiers[0]
	n := raw.total
	s.mu.Unlock()
	if n > 15*60+chunkPoints {
		t.Fatalf("raw tier holds %d points, retention is 15m", n)
	}
	if !raw.evicted {
		t.Fatal("raw tier never evicted in 24h")
	}
}

func TestCounterAtBaselineRules(t *testing.T) {
	clk := newClock()
	s := testStore(clk, []Tier{{Res: 0, Retention: time.Hour}})
	t0 := clk.now()
	// Before any sample: 0.
	if v := s.CounterAt("c_total", nil, t0); v != 0 {
		t.Fatalf("empty store CounterAt = %v", v)
	}
	s.Append(t0, "c_total", nil, KindCounter, 100)
	clk.advance(10 * time.Minute)
	s.Append(clk.now(), "c_total", nil, KindCounter, 250)
	// Before the first sample and never evicted: 0.
	if v := s.CounterAt("c_total", nil, t0.Add(-time.Minute)); v != 0 {
		t.Fatalf("pre-birth CounterAt = %v, want 0", v)
	}
	// Between samples: the earlier value.
	if v := s.CounterAt("c_total", nil, t0.Add(5*time.Minute)); v != 100 {
		t.Fatalf("mid CounterAt = %v, want 100", v)
	}
	// At the end: the latest value.
	if v := s.CounterAt("c_total", nil, clk.now()); v != 250 {
		t.Fatalf("end CounterAt = %v, want 250", v)
	}
	if inc := s.Increase("c_total", nil, t0.Add(-time.Minute), clk.now()); inc != 250 {
		t.Fatalf("Increase = %v, want 250", inc)
	}
	if inc := s.Increase("c_total", nil, t0.Add(time.Minute), clk.now()); inc != 150 {
		t.Fatalf("Increase from mid = %v, want 150", inc)
	}
}

func TestInstantAndRangeQuery(t *testing.T) {
	clk := newClock()
	s := testStore(clk, DefaultTiers())
	start := clk.now()
	for i := 0; i <= 120; i++ {
		s.Append(clk.now(), "wdm_blocked_total", nil, KindCounter, float64(i))
		s.Append(clk.now(), "wdm_active_sessions", map[string]string{"shard": "0"}, KindGauge, float64(100+i))
		clk.advance(time.Second)
	}
	now := clk.now().Add(-time.Second)

	// Instant gauge.
	res, err := s.Query(`wdm_active_sessions{shard="0"}`, QueryOpts{End: now})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 1 {
		t.Fatalf("instant query shape: %+v", res.Series)
	}
	if v := res.Series[0].Points[0].V; v != 220 {
		t.Fatalf("instant gauge = %v, want 220", v)
	}

	// Instant rate over a steadily incrementing counter: 1/s.
	res, err = s.Query("rate(wdm_blocked_total[30s])", QueryOpts{End: now})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Series[0].Points[0].V; math.Abs(v-1.0) > 0.05 {
		t.Fatalf("rate = %v, want ~1.0", v)
	}

	// Range query: 2 minutes at 10s steps.
	res, err = s.Query("wdm_blocked_total", QueryOpts{Start: start, End: now, Step: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("range series = %d, want 1", len(res.Series))
	}
	pts := res.Series[0].Points
	if len(pts) != 13 {
		t.Fatalf("range points = %d, want 13", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].V < pts[i-1].V {
			t.Fatalf("range counter decreased at %d", i)
		}
	}

	// Unknown selector: empty result, no error.
	res, err = s.Query("no_such_series", QueryOpts{End: now})
	if err != nil || len(res.Series) != 0 {
		t.Fatalf("unknown selector: %v %+v", err, res.Series)
	}

	// Malformed expression: error.
	if _, err := s.Query("rate(", QueryOpts{End: now}); err == nil {
		t.Fatal("malformed query accepted")
	}
}

func TestHistogramQuantileQuery(t *testing.T) {
	clk := newClock()
	s := testStore(clk, DefaultTiers())
	bounds := []float64{0.001, 0.01, 0.1}
	counts := []int64{0, 0, 0, 0}
	var sum float64
	for i := 0; i < 60; i++ {
		// 90% of observations land in the first bucket.
		counts[0] += 9
		counts[2]++
		sum += 9*0.0005 + 0.05
		var pw obs.PromWriter
		pw.Histogram("wdm_op_latency_seconds", "test", bounds, counts, sum)
		m, err := obs.ParseProm(bytes.NewReader(pw.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		s.Observe(clk.now(), m)
		clk.advance(time.Second)
	}
	now := clk.now().Add(-time.Second)
	res, err := s.Query("histogram_quantile(0.5, wdm_op_latency_seconds[30s])", QueryOpts{End: now})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("series = %d, want 1", len(res.Series))
	}
	p50 := res.Series[0].Points[0].V
	if p50 <= 0 || p50 > 0.001 {
		t.Fatalf("p50 = %v, want within first bucket (0, 0.001]", p50)
	}
	if q := res.Series[0].Labels["quantile"]; q != "0.5" {
		t.Fatalf("quantile label = %q", q)
	}
	res, err = s.Query("histogram_quantile(0.99, wdm_op_latency_seconds[30s])", QueryOpts{End: now})
	if err != nil {
		t.Fatal(err)
	}
	p99 := res.Series[0].Points[0].V
	if p99 <= 0.01 || p99 > 0.1 {
		t.Fatalf("p99 = %v, want within third bucket (0.01, 0.1]", p99)
	}
}

func TestSelfScrapeRoundTrip(t *testing.T) {
	clk := newClock()
	calls := 0
	s := New(Config{
		Interval: time.Second,
		Now:      clk.now,
		Collect: func(w *obs.PromWriter) {
			calls++
			w.Counter("wdm_connect_total", "connects", float64(10*calls))
			w.Gauge("wdm_active_sessions", "active", 5)
		},
	})
	for i := 0; i < 5; i++ {
		if err := s.ScrapeOnce(clk.now()); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Second)
	}
	st := s.Stats()
	if st.Scrapes != 5 || st.Series != 2 || st.SamplesTotal != 10 {
		t.Fatalf("stats after 5 scrapes: %+v", st)
	}
	if v := s.CounterAt("wdm_connect_total", nil, clk.now()); v != 50 {
		t.Fatalf("scraped counter = %v, want 50", v)
	}
}

func TestMaxSeriesDropsNew(t *testing.T) {
	clk := newClock()
	s := New(Config{Interval: time.Second, MaxSeries: 3, Now: clk.now})
	for i := 0; i < 10; i++ {
		s.Append(clk.now(), "g", map[string]string{"i": fmt.Sprint(i)}, KindGauge, 1)
	}
	st := s.Stats()
	if st.Series != 3 {
		t.Fatalf("series = %d, want capped at 3", st.Series)
	}
	if st.DroppedSeries != 7 {
		t.Fatalf("dropped = %d, want 7", st.DroppedSeries)
	}
}

func TestPointJSONRoundTrip(t *testing.T) {
	in := []Point{{T: 1700000000123, V: 1.5}, {T: 1700000001123, V: math.NaN()}}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := `[[1700000000123,1.5],[1700000001123,null]]`; string(raw) != want {
		t.Fatalf("marshal = %s, want %s", raw, want)
	}
	var out []Point
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out[0] != in[0] || out[1].T != in[1].T || !math.IsNaN(out[1].V) {
		t.Fatalf("round-trip = %+v", out)
	}
}

func TestMergeTagsShardsAndSums(t *testing.T) {
	mk := func(vals ...float64) *QueryResult {
		ser := Series{Name: "wdm_blocked_total"}
		for i, v := range vals {
			ser.Points = append(ser.Points, Point{T: int64(1000 * (i + 1)), V: v})
		}
		return &QueryResult{Query: "wdm_blocked_total", StartMs: 1000, EndMs: 3000, StepMs: 1000, Series: []Series{ser}}
	}
	merged := Merge(map[string]*QueryResult{
		"0": mk(1, 2, 3),
		"1": mk(10, 20, 30),
	})
	if merged.Query != "wdm_blocked_total" || merged.StepMs != 1000 {
		t.Fatalf("merged header: %+v", merged)
	}
	if len(merged.Series) != 3 {
		t.Fatalf("merged series = %d, want 2 shards + fleet", len(merged.Series))
	}
	byShard := map[string][]Point{}
	for _, ser := range merged.Series {
		byShard[ser.Labels["shard"]] = ser.Points
	}
	fleet := byShard[FleetShard]
	if len(fleet) != 3 {
		t.Fatalf("fleet points = %d", len(fleet))
	}
	for i, want := range []float64{11, 22, 33} {
		if fleet[i].V != want {
			t.Fatalf("fleet point %d = %v, want %v", i, fleet[i].V, want)
		}
	}
	if len(byShard["0"]) != 3 || byShard["0"][2].V != 3 {
		t.Fatalf("shard 0 series wrong: %+v", byShard["0"])
	}
}

func TestOptsFromValues(t *testing.T) {
	now := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	parse := func(q string) (string, QueryOpts, error) {
		vals, err := parseQueryString(q)
		if err != nil {
			t.Fatal(err)
		}
		return OptsFromValues(vals, now)
	}
	expr, opts, err := parse("query=rate(wdm_blocked_total[30s])&start=-5m&end=now&step=10s")
	if err != nil {
		t.Fatal(err)
	}
	if expr != "rate(wdm_blocked_total[30s])" {
		t.Fatalf("expr = %q", expr)
	}
	if !opts.Start.Equal(now.Add(-5*time.Minute)) || !opts.End.Equal(now) || opts.Step != 10*time.Second {
		t.Fatalf("opts = %+v", opts)
	}
	if _, _, err := parse("start=-5m"); err == nil {
		t.Fatal("missing query accepted")
	}
	_, opts, err = parse("query=x&start=1754049600")
	if err != nil || opts.Start.Unix() != 1754049600 {
		t.Fatalf("unix seconds: %v %v", opts.Start, err)
	}
}

func parseQueryString(q string) (map[string][]string, error) {
	vals := map[string][]string{}
	for _, kv := range strings.Split(q, "&") {
		k, v, _ := strings.Cut(kv, "=")
		vals[k] = append(vals[k], v)
	}
	return vals, nil
}

func TestDumpJSON(t *testing.T) {
	clk := newClock()
	s := testStore(clk, DefaultTiers())
	s.Append(clk.now(), "g", map[string]string{"a": "b"}, KindGauge, 7)
	var buf bytes.Buffer
	if err := s.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stats  Stats `json:"stats"`
		Series []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Kind   string            `json:"kind"`
			Tiers  []struct {
				ResMs  int64   `json:"res_ms"`
				Points []Point `json:"points"`
			} `json:"tiers"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 1 || doc.Series[0].Name != "g" || doc.Series[0].Kind != "gauge" {
		t.Fatalf("dump = %+v", doc.Series)
	}
	if len(doc.Series[0].Tiers) != 3 || len(doc.Series[0].Tiers[0].Points) != 1 {
		t.Fatalf("dump tiers = %+v", doc.Series[0].Tiers)
	}
	if doc.Series[0].Tiers[0].Points[0].V != 7 {
		t.Fatalf("dump point = %+v", doc.Series[0].Tiers[0].Points[0])
	}
}
