package tsdb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// alertHarness wires a store, a clock, and a notification recorder.
type alertHarness struct {
	clk    *fakeClock
	store  *Store
	eng    *AlertEngine
	mu     sync.Mutex
	events []AlertEvent
}

func newAlertHarness(t *testing.T, rules []Rule) *alertHarness {
	t.Helper()
	h := &alertHarness{clk: newClock()}
	h.store = testStore(h.clk, DefaultTiers())
	var err error
	h.eng, err = NewAlertEngine(h.store, rules, AlertOpts{
		Now: h.clk.now,
		Notify: func(ev AlertEvent) {
			h.mu.Lock()
			h.events = append(h.events, ev)
			h.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *alertHarness) notified() []AlertEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]AlertEvent(nil), h.events...)
}

func (h *alertHarness) state(name string) AlertStatus {
	for _, st := range h.eng.Snapshot() {
		if st.Rule.Name == name {
			return st
		}
	}
	return AlertStatus{}
}

func TestThresholdPendingToFiring(t *testing.T) {
	h := newAlertHarness(t, []Rule{{
		Name:  "blocked",
		Expr:  "rate(wdm_blocked_total[30s])",
		Op:    ">",
		Value: 0,
		For:   Duration(5 * time.Second),
	}})
	blocked := 0.0
	tick := func(inc float64) {
		blocked += inc
		h.store.Append(h.clk.now(), "wdm_blocked_total", nil, KindCounter, blocked)
		h.eng.Eval(h.clk.now())
		h.clk.advance(time.Second)
	}
	// Quiet counter: inactive.
	for i := 0; i < 10; i++ {
		tick(0)
	}
	if st := h.state("blocked"); st.State != StateInactive {
		t.Fatalf("quiet state = %s", st.State)
	}
	// Counter starts moving: pending first, firing after For.
	tick(1)
	if st := h.state("blocked"); st.State != StatePending {
		t.Fatalf("first violation state = %s, want pending", st.State)
	}
	for i := 0; i < 6; i++ {
		tick(1)
	}
	st := h.state("blocked")
	if st.State != StateFiring {
		t.Fatalf("state after For elapsed = %s, want firing", st.State)
	}
	if st.Fired != 1 {
		t.Fatalf("fired count = %d", st.Fired)
	}
	ev := h.notified()
	if len(ev) != 1 || ev[0].State != StateFiring || ev[0].Rule != "blocked" {
		t.Fatalf("notifications = %+v", ev)
	}
	// Counter goes quiet: the 30s rate window drains, then resolves.
	for i := 0; i < 40; i++ {
		tick(0)
	}
	if st := h.state("blocked"); st.State != StateInactive {
		t.Fatalf("state after quiet = %s, want inactive", st.State)
	}
	ev = h.notified()
	if len(ev) != 2 || ev[1].State != StateInactive {
		t.Fatalf("resolve notification missing: %+v", ev)
	}
}

func TestPendingResetWithoutFiring(t *testing.T) {
	h := newAlertHarness(t, []Rule{{
		Name: "g", Expr: "gauge", Op: ">", Value: 10, For: Duration(30 * time.Second),
	}})
	h.store.Append(h.clk.now(), "gauge", nil, KindGauge, 50)
	h.eng.Eval(h.clk.now())
	if st := h.state("g"); st.State != StatePending {
		t.Fatalf("state = %s, want pending", st.State)
	}
	h.clk.advance(5 * time.Second)
	h.store.Append(h.clk.now(), "gauge", nil, KindGauge, 1)
	h.eng.Eval(h.clk.now())
	if st := h.state("g"); st.State != StateInactive {
		t.Fatalf("state = %s, want inactive (condition cleared during pending)", st.State)
	}
	if len(h.notified()) != 0 {
		t.Fatalf("pending blip must not notify: %+v", h.notified())
	}
}

func TestGuardGatesRule(t *testing.T) {
	h := newAlertHarness(t, []Rule{{
		Name:  "guarded",
		Expr:  "rate(wdm_blocked_total[30s])",
		Op:    ">",
		Value: 0,
		Guard: &Condition{Expr: "wdm_m_margin", Op: ">=", Value: 0},
	}})
	blocked := 0.0
	tick := func(margin float64) {
		blocked++
		h.store.Append(h.clk.now(), "wdm_blocked_total", nil, KindCounter, blocked)
		h.store.Append(h.clk.now(), "wdm_m_margin", nil, KindGauge, margin)
		h.eng.Eval(h.clk.now())
		h.clk.advance(time.Second)
	}
	// Blocking while UNDER the bound (margin < 0): expected, no alert.
	for i := 0; i < 5; i++ {
		tick(-2)
	}
	if st := h.state("guarded"); st.State != StateInactive {
		t.Fatalf("under-bound blocking alerted: %s", st.State)
	}
	// Blocking while at/above the bound: theorem violation, fires
	// immediately (For = 0).
	tick(0)
	if st := h.state("guarded"); st.State != StateFiring {
		t.Fatalf("at-bound blocking state = %s, want firing", st.State)
	}
}

func TestAbsentForm(t *testing.T) {
	h := newAlertHarness(t, []Rule{{
		Name: "dead", Form: "absent", Expr: "wdm_uptime_seconds", Window: Duration(10 * time.Second),
	}})
	// Never seen: trips immediately.
	h.eng.Eval(h.clk.now())
	if st := h.state("dead"); st.State != StateFiring {
		t.Fatalf("never-seen state = %s, want firing", st.State)
	}
	// Sample arrives: resolves.
	h.store.Append(h.clk.now(), "wdm_uptime_seconds", nil, KindGauge, 1)
	h.eng.Eval(h.clk.now())
	if st := h.state("dead"); st.State != StateInactive {
		t.Fatalf("fresh-sample state = %s, want inactive", st.State)
	}
	// Goes stale past the window: trips again.
	h.clk.advance(11 * time.Second)
	h.eng.Eval(h.clk.now())
	if st := h.state("dead"); st.State != StateFiring {
		t.Fatalf("stale state = %s, want firing", st.State)
	}
}

func TestBurnRateForm(t *testing.T) {
	h := newAlertHarness(t, []Rule{{
		Name:        "burn",
		Form:        "burn_rate",
		BadExpr:     "bad_total",
		TotalExpr:   "ops_total",
		ShortWindow: Duration(time.Minute),
		LongWindow:  Duration(5 * time.Minute),
		Objective:   0.999,
		Value:       10,
	}})
	ops, bad := 0.0, 0.0
	tick := func(dOps, dBad float64) {
		ops += dOps
		bad += dBad
		h.store.Append(h.clk.now(), "ops_total", nil, KindCounter, ops)
		h.store.Append(h.clk.now(), "bad_total", nil, KindCounter, bad)
		h.eng.Eval(h.clk.now())
		h.clk.advance(time.Second)
	}
	// Healthy traffic: error rate 0, burn 0.
	for i := 0; i < 120; i++ {
		tick(100, 0)
	}
	if st := h.state("burn"); st.State != StateInactive {
		t.Fatalf("healthy burn state = %s", st.State)
	}
	// 5% errors: burn = 0.05/0.001 = 50 over both windows -> firing.
	for i := 0; i < 120; i++ {
		tick(100, 5)
	}
	st := h.state("burn")
	if st.State != StateFiring {
		t.Fatalf("burning state = %s, want firing (value %v)", st.State, st.Value)
	}
	if st.Value < 10 {
		t.Fatalf("reported burn %v, want > threshold", st.Value)
	}
}

func TestBurnRateNeedsBothWindows(t *testing.T) {
	h := newAlertHarness(t, []Rule{{
		Name:        "burn",
		Form:        "burn_rate",
		BadExpr:     "bad_total",
		TotalExpr:   "ops_total",
		ShortWindow: Duration(time.Minute),
		LongWindow:  Duration(30 * time.Minute),
		Objective:   0.999,
		Value:       10,
	}})
	ops, bad := 0.0, 0.0
	tick := func(dOps, dBad float64) {
		ops += dOps
		bad += dBad
		h.store.Append(h.clk.now(), "ops_total", nil, KindCounter, ops)
		h.store.Append(h.clk.now(), "bad_total", nil, KindCounter, bad)
		h.eng.Eval(h.clk.now())
		h.clk.advance(time.Second)
	}
	// A brief error burst, then a long healthy stretch: the short
	// window recovers, so a stale long-window burn alone cannot fire.
	for i := 0; i < 30; i++ {
		tick(100, 50)
	}
	for i := 0; i < 120; i++ {
		tick(100, 0)
	}
	if st := h.state("burn"); st.State != StateInactive {
		t.Fatalf("short-window-recovered state = %s, want inactive", st.State)
	}
}

func TestDefaultRulesValidateAndCoverInvariant(t *testing.T) {
	rules := DefaultRules()
	names := map[string]bool{}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			t.Errorf("default rule %s: %v", rules[i].Name, err)
		}
		names[rules[i].Name] = true
	}
	for _, want := range []string{"blocked_in_nonblocking_regime", "degraded_admission", "replication_lag", "wal_fsync_p99_slow"} {
		if !names[want] {
			t.Errorf("shipped ruleset missing %s", want)
		}
	}
	// The headline rule must be guarded on the bound margin: blocking
	// below the sufficient m is load, not a theorem violation.
	for _, r := range rules {
		if r.Name == "blocked_in_nonblocking_regime" {
			if r.Guard == nil || r.Guard.Expr != "wdm_m_margin" {
				t.Errorf("headline rule must guard on wdm_m_margin, got %+v", r.Guard)
			}
		}
	}
}

func TestLoadRulesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "alerts.json")
	doc := `{"rules": [
		{"name": "lag", "expr": "wdm_replication_lag_records", "op": ">", "value": 10, "for": "15s"},
		{"name": "dead", "form": "absent", "expr": "wdm_uptime_seconds", "window": "30s"},
		{"name": "burn", "form": "burn_rate", "bad_expr": "wdm_blocked_total",
		 "total_expr": "wdm_route_ops_total", "short_window": "5m", "long_window": "1h",
		 "objective": 0.999, "value": 14.4}
	]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := LoadRules(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	if rules[0].For != Duration(15*time.Second) || rules[2].Objective != 0.999 {
		t.Fatalf("parsed rules = %+v", rules)
	}

	// Broken files are rejected with a per-rule error.
	for _, bad := range []string{
		`{"rules": [{"name": "", "expr": "x", "op": ">", "value": 1}]}`,
		`{"rules": [{"name": "x", "expr": "rate(", "op": ">", "value": 1}]}`,
		`{"rules": [{"name": "x", "expr": "y", "op": "~", "value": 1}]}`,
		`{"rules": [{"name": "x", "form": "nope", "expr": "y"}]}`,
		`{"rules": [{"name": "x", "expr": "y", "op": ">", "value": 1}, {"name": "x", "expr": "y", "op": ">", "value": 1}]}`,
		`{"rules": [{"name": "x", "expr": "y", "op": ">", "value": 1, "bogus": true}]}`,
	} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadRules(path); err == nil {
			t.Errorf("accepted bad rules file: %s", bad)
		}
	}
}

func TestDurationJSON(t *testing.T) {
	var r Rule
	if err := json.Unmarshal([]byte(`{"name":"x","expr":"y","op":">","for":90}`), &r); err != nil {
		t.Fatal(err)
	}
	if r.For != Duration(90*time.Second) {
		t.Fatalf("numeric duration = %v", time.Duration(r.For))
	}
	raw, err := json.Marshal(Duration(5 * time.Minute))
	if err != nil || string(raw) != `"5m0s"` {
		t.Fatalf("marshal = %s, %v", raw, err)
	}
}

func TestWebhookNotification(t *testing.T) {
	var mu sync.Mutex
	var got []AlertEvent
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev AlertEvent
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}))
	defer srv.Close()

	clk := newClock()
	store := testStore(clk, DefaultTiers())
	eng, err := NewAlertEngine(store, []Rule{{
		Name: "g", Expr: "gauge", Op: ">", Value: 0,
	}}, AlertOpts{Now: clk.now, WebhookURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	store.Append(clk.now(), "gauge", nil, KindGauge, 5)
	eng.Eval(clk.now())
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("webhook never delivered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got[0].Rule != "g" || got[0].State != StateFiring || got[0].Value != 5 {
		t.Fatalf("webhook event = %+v", got[0])
	}
}
