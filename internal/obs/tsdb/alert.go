package tsdb

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"
)

// The alerting rules engine evaluates rules against the embedded store
// after every scrape. Three forms:
//
//	threshold  — an instant query compared against a constant; any
//	             matching series in violation trips the rule
//	absent     — no sample of a selector within a window (dead-man's
//	             switch for the scrape loop itself)
//	burn_rate  — the multi-window error-budget form: the bad/total
//	             counter ratio normalized by the error budget must
//	             exceed the threshold over BOTH windows (the same math
//	             the slo engine uses, evaluated against tsdb counters)
//
// A tripped rule runs pending for its For duration before firing;
// transitions notify via slog and, when configured, a webhook POST.

// Duration marshals as a Go duration string ("30s") in rule files; a
// bare JSON number is seconds.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		dd, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("tsdb: bad duration %q: %w", s, err)
		}
		*d = Duration(dd)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("tsdb: duration must be a string like \"30s\" or seconds: %w", err)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Condition is a guard clause: the rule is eligible only while the
// guard's instant query satisfies its comparison (no data means the
// guard does not hold).
type Condition struct {
	Expr  string  `json:"expr"`
	Op    string  `json:"op"`
	Value float64 `json:"value"`
}

// Rule is one alerting rule, the unit of the -alerts file.
type Rule struct {
	Name    string `json:"name"`
	Form    string `json:"form,omitempty"` // "threshold" (default), "absent", "burn_rate"
	Summary string `json:"summary,omitempty"`
	// For is how long the condition must hold before pending escalates
	// to firing; 0 fires immediately.
	For Duration `json:"for,omitempty"`
	// Guard, when set, gates the rule.
	Guard *Condition `json:"guard,omitempty"`

	// Threshold form: instant query Expr compared Op against Value.
	Expr  string  `json:"expr,omitempty"`
	Op    string  `json:"op,omitempty"`
	Value float64 `json:"value,omitempty"`

	// Absent form: trips when Expr has no sample within Window
	// (default 5 scrape intervals).
	Window Duration `json:"window,omitempty"`

	// Burn-rate form: increase(Bad)/increase(Total) normalized by
	// 1-Objective must exceed Value over both ShortWindow and
	// LongWindow.
	BadExpr     string   `json:"bad_expr,omitempty"`
	TotalExpr   string   `json:"total_expr,omitempty"`
	ShortWindow Duration `json:"short_window,omitempty"`
	LongWindow  Duration `json:"long_window,omitempty"`
	Objective   float64  `json:"objective,omitempty"`
}

// Validate checks a rule's shape and compiles its expressions.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("tsdb: rule with empty name")
	}
	wrap := func(err error) error { return fmt.Errorf("tsdb: rule %s: %w", r.Name, err) }
	switch r.Form {
	case "", "threshold":
		if err := ValidateExpr(r.Expr); err != nil {
			return wrap(err)
		}
		if !validOp(r.Op) {
			return wrap(fmt.Errorf("bad op %q", r.Op))
		}
	case "absent":
		if err := ValidateExpr(r.Expr); err != nil {
			return wrap(err)
		}
	case "burn_rate":
		if err := ValidateExpr(r.BadExpr); err != nil {
			return wrap(fmt.Errorf("bad_expr: %w", err))
		}
		if err := ValidateExpr(r.TotalExpr); err != nil {
			return wrap(fmt.Errorf("total_expr: %w", err))
		}
		if r.Objective <= 0 || r.Objective >= 1 {
			return wrap(fmt.Errorf("objective %v out of (0,1)", r.Objective))
		}
		if r.ShortWindow <= 0 || r.LongWindow <= 0 {
			return wrap(fmt.Errorf("burn_rate needs short_window and long_window"))
		}
		if r.Value <= 0 {
			return wrap(fmt.Errorf("burn_rate needs a positive value (burn threshold)"))
		}
	default:
		return wrap(fmt.Errorf("unknown form %q", r.Form))
	}
	if r.Guard != nil {
		if err := ValidateExpr(r.Guard.Expr); err != nil {
			return wrap(fmt.Errorf("guard: %w", err))
		}
		if !validOp(r.Guard.Op) {
			return wrap(fmt.Errorf("guard: bad op %q", r.Guard.Op))
		}
	}
	return nil
}

func validOp(op string) bool {
	switch op {
	case ">", ">=", "<", "<=", "==", "!=":
		return true
	}
	return false
}

func cmp(v float64, op string, against float64) bool {
	switch op {
	case ">":
		return v > against
	case ">=":
		return v >= against
	case "<":
		return v < against
	case "<=":
		return v <= against
	case "==":
		return v == against
	case "!=":
		return v != against
	}
	return false
}

// DefaultRules is the shipped ruleset: the paper's operating invariant
// first — blocking observed while the fabric is configured at or above
// the sufficient bound (wdm_m_margin >= 0) is a theorem violation, not
// an overload — then admission derating, replication lag, WAL fsync
// latency, a scrape dead-man's switch, and a multi-window availability
// burn rule.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name:    "blocked_in_nonblocking_regime",
			Expr:    "rate(wdm_blocked_total[30s])",
			Op:      ">",
			Value:   0,
			For:     Duration(5 * time.Second),
			Guard:   &Condition{Expr: "wdm_m_margin", Op: ">=", Value: 0},
			Summary: "P_block > 0 while m >= sufficient bound: middle-stage failures or routing faults are violating the nonblocking theorem",
		},
		{
			Name:    "degraded_admission",
			Expr:    "wdm_degraded",
			Op:      ">",
			Value:   0,
			For:     Duration(10 * time.Second),
			Summary: "failure plane derated admission capacity",
		},
		{
			Name:    "replication_lag",
			Expr:    "wdm_replication_lag_records",
			Op:      ">",
			Value:   128,
			For:     Duration(15 * time.Second),
			Summary: "standby replication lag above 128 records",
		},
		{
			Name:    "wal_fsync_p99_slow",
			Expr:    "histogram_quantile(0.99, wdm_wal_fsync_seconds[1m])",
			Op:      ">",
			Value:   0.010,
			For:     Duration(30 * time.Second),
			Summary: "WAL fsync p99 above 10ms",
		},
		{
			Name:    "self_scrape_absent",
			Form:    "absent",
			Expr:    "wdm_uptime_seconds",
			Window:  Duration(30 * time.Second),
			Summary: "metrics history self-scrape has stopped",
		},
		{
			Name:        "availability_burn",
			Form:        "burn_rate",
			BadExpr:     "wdm_blocked_total",
			TotalExpr:   "wdm_route_ops_total",
			ShortWindow: Duration(5 * time.Minute),
			LongWindow:  Duration(1 * time.Hour),
			Objective:   0.999,
			Value:       14.4,
			Summary:     "route availability burning the 0.999 error budget at page speed",
		},
	}
}

// LoadRules reads a -alerts file: {"rules": [Rule, ...]}.
func LoadRules(path string) ([]Rule, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tsdb: alerts file: %w", err)
	}
	var doc struct {
		Rules []Rule `json:"rules"`
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("tsdb: alerts file %s: %w", path, err)
	}
	seen := map[string]bool{}
	for i := range doc.Rules {
		if err := doc.Rules[i].Validate(); err != nil {
			return nil, err
		}
		if seen[doc.Rules[i].Name] {
			return nil, fmt.Errorf("tsdb: duplicate rule name %q", doc.Rules[i].Name)
		}
		seen[doc.Rules[i].Name] = true
	}
	return doc.Rules, nil
}

// AlertState is one rule's place in the inactive → pending → firing
// machine.
type AlertState string

const (
	StateInactive AlertState = "inactive"
	StatePending  AlertState = "pending"
	StateFiring   AlertState = "firing"
)

// AlertStatus is one rule's externally visible state — the /v1/alerts
// wire shape.
type AlertStatus struct {
	Rule     Rule       `json:"rule"`
	State    AlertState `json:"state"`
	Since    *time.Time `json:"since,omitempty"` // pending or firing start
	Value    float64    `json:"value"`           // last evaluated value
	LastEval *time.Time `json:"last_eval,omitempty"`
	Fired    int        `json:"fired"` // lifetime pending→firing transitions
}

// AlertEvent is one notified transition (webhook POST body).
type AlertEvent struct {
	Rule    string     `json:"rule"`
	State   AlertState `json:"state"` // firing or inactive (resolved)
	Value   float64    `json:"value"`
	Summary string     `json:"summary,omitempty"`
	At      time.Time  `json:"at"`
}

// AlertOpts configures an AlertEngine.
type AlertOpts struct {
	Now        func() time.Time
	Logger     *slog.Logger
	WebhookURL string
	Client     *http.Client
	// Notify overrides the default slog+webhook notifier (tests).
	Notify func(AlertEvent)
}

type alertRuntime struct {
	rule  Rule
	state AlertState
	since time.Time
	value float64
	eval  time.Time
	fired int
}

// AlertEngine evaluates a ruleset against a Store.
type AlertEngine struct {
	store   *Store
	now     func() time.Time
	logger  *slog.Logger
	webhook string
	client  *http.Client
	notify  func(AlertEvent)

	mu    sync.Mutex
	rules []*alertRuntime
}

// NewAlertEngine builds an engine over validated rules (invalid rules
// are rejected — callers load through LoadRules or DefaultRules).
func NewAlertEngine(store *Store, rules []Rule, opts AlertOpts) (*AlertEngine, error) {
	e := &AlertEngine{
		store:   store,
		now:     opts.Now,
		logger:  opts.Logger,
		webhook: opts.WebhookURL,
		client:  opts.Client,
		notify:  opts.Notify,
	}
	if e.now == nil {
		e.now = store.cfg.Now
	}
	if e.logger == nil {
		e.logger = store.logger
	}
	if e.client == nil {
		e.client = &http.Client{Timeout: 5 * time.Second}
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			return nil, err
		}
		e.rules = append(e.rules, &alertRuntime{rule: rules[i], state: StateInactive})
	}
	return e, nil
}

// Eval runs one evaluation pass at now, driving every state machine.
func (e *AlertEngine) Eval(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rt := range e.rules {
		v, violated := e.evalRule(&rt.rule, now)
		rt.eval, rt.value = now, v
		switch {
		case violated && rt.state == StateInactive:
			rt.state, rt.since = StatePending, now
			if time.Duration(rt.rule.For) <= 0 {
				e.toFiring(rt, now)
			}
		case violated && rt.state == StatePending:
			if now.Sub(rt.since) >= time.Duration(rt.rule.For) {
				e.toFiring(rt, now)
			}
		case !violated && rt.state == StatePending:
			rt.state, rt.since = StateInactive, time.Time{}
		case !violated && rt.state == StateFiring:
			rt.state, rt.since = StateInactive, time.Time{}
			e.send(AlertEvent{Rule: rt.rule.Name, State: StateInactive, Value: v, Summary: rt.rule.Summary, At: now})
		}
	}
}

func (e *AlertEngine) toFiring(rt *alertRuntime, now time.Time) {
	rt.state = StateFiring
	rt.fired++
	e.send(AlertEvent{Rule: rt.rule.Name, State: StateFiring, Value: rt.value, Summary: rt.rule.Summary, At: now})
}

// evalRule evaluates one rule's condition at now. The reported value
// is the worst offender (threshold), the short-window burn
// (burn_rate), or seconds since the last sample (absent).
func (e *AlertEngine) evalRule(r *Rule, now time.Time) (float64, bool) {
	if r.Guard != nil && !e.holds(r.Guard, now) {
		return 0, false
	}
	switch r.Form {
	case "absent":
		w := time.Duration(r.Window)
		if w <= 0 {
			w = 5 * e.store.Interval()
		}
		last, ok := e.store.LastSampleTime(r.Expr)
		if !ok {
			return w.Seconds(), true
		}
		age := now.Sub(last)
		return age.Seconds(), age > w
	case "burn_rate":
		short := e.burn(r, time.Duration(r.ShortWindow), now)
		long := e.burn(r, time.Duration(r.LongWindow), now)
		return short, short > r.Value && long > r.Value
	default: // threshold
		res, err := e.store.Query(r.Expr, QueryOpts{End: now})
		if err != nil {
			e.logger.Warn("alert rule query failed", "rule", r.Name, "err", err)
			return 0, false
		}
		worst, violated := 0.0, false
		for _, ser := range res.Series {
			for _, p := range ser.Points {
				if cmp(p.V, r.Op, r.Value) {
					if !violated || p.V > worst {
						worst = p.V
					}
					violated = true
				}
			}
		}
		return worst, violated
	}
}

// burn computes the error-budget burn rate over one window from the
// rule's bad/total counters — increase(bad)/increase(total) divided by
// the budget (1-objective). Idle windows burn 0.
func (e *AlertEngine) burn(r *Rule, w time.Duration, now time.Time) float64 {
	bad := e.increaseOf(r.BadExpr, w, now)
	total := e.increaseOf(r.TotalExpr, w, now)
	if total <= 0 {
		return 0
	}
	return (bad / total) / (1 - r.Objective)
}

// increaseOf sums increase-over-window across every series matching a
// selector expression.
func (e *AlertEngine) increaseOf(expr string, w time.Duration, now time.Time) float64 {
	res, err := e.store.Query(fmt.Sprintf("increase(%s[%s])", expr, w), QueryOpts{End: now})
	if err != nil {
		return 0
	}
	var sum float64
	for _, ser := range res.Series {
		for _, p := range ser.Points {
			sum += p.V
		}
	}
	return sum
}

// holds evaluates a guard: at least one matching series must satisfy
// the comparison.
func (e *AlertEngine) holds(c *Condition, now time.Time) bool {
	res, err := e.store.Query(c.Expr, QueryOpts{End: now})
	if err != nil {
		return false
	}
	for _, ser := range res.Series {
		for _, p := range ser.Points {
			if cmp(p.V, c.Op, c.Value) {
				return true
			}
		}
	}
	return false
}

// send dispatches one transition notification: the custom notifier
// when set, otherwise slog plus (asynchronously) the webhook.
func (e *AlertEngine) send(ev AlertEvent) {
	if e.notify != nil {
		e.notify(ev)
		return
	}
	if ev.State == StateFiring {
		e.logger.Warn("ALERT firing", "rule", ev.Rule, "value", ev.Value, "summary", ev.Summary)
	} else {
		e.logger.Info("alert resolved", "rule", ev.Rule, "value", ev.Value)
	}
	if e.webhook == "" {
		return
	}
	go func() {
		body, _ := json.Marshal(ev)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.webhook, bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := e.client.Do(req)
		if err != nil {
			e.logger.Warn("alert webhook failed", "rule", ev.Rule, "err", err)
			return
		}
		resp.Body.Close()
	}()
}

// Snapshot reports every rule's current status, rule order preserved.
func (e *AlertEngine) Snapshot() []AlertStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertStatus, 0, len(e.rules))
	for _, rt := range e.rules {
		st := AlertStatus{Rule: rt.rule, State: rt.state, Value: rt.value, Fired: rt.fired}
		if !rt.since.IsZero() {
			t := rt.since
			st.Since = &t
		}
		if !rt.eval.IsZero() {
			t := rt.eval
			st.LastEval = &t
		}
		out = append(out, st)
	}
	return out
}
