package tsdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/url"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// The query language is a deliberately small Prometheus subset:
//
//	wdm_active_sessions                          plain selector (gauge or counter)
//	wdm_phase_seconds_count{phase="route_search"}  with label matchers (exact, subset)
//	rate(wdm_blocked_total[30s])                 per-second counter increase
//	increase(wdm_blocked_total[5m])              absolute counter increase
//	histogram_quantile(0.99, wdm_op_latency_seconds[1m])  quantile from bucket increases
//
// Instant queries evaluate at one timestamp; range queries evaluate at
// every step between start and end. One expression can match many
// series; each becomes one Series in the result.

// Point is one sample in a query result, marshaled compactly as
// [unix_ms, value] (null value for NaN).
type Point struct {
	T int64
	V float64
}

func (p Point) MarshalJSON() ([]byte, error) {
	if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
		return []byte(fmt.Sprintf("[%d,null]", p.T)), nil
	}
	return []byte(fmt.Sprintf("[%d,%s]", p.T, strconv.FormatFloat(p.V, 'g', -1, 64))), nil
}

func (p *Point) UnmarshalJSON(b []byte) error {
	var raw [2]*float64
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	if raw[0] == nil {
		return errors.New("tsdb: point with null timestamp")
	}
	p.T = int64(*raw[0])
	if raw[1] != nil {
		p.V = *raw[1]
	} else {
		p.V = math.NaN()
	}
	return nil
}

// Series is one matched series' evaluated points.
type Series struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"points"`
}

// QueryResult is the /v1/query wire shape.
type QueryResult struct {
	Query   string   `json:"query"`
	StartMs int64    `json:"start_ms"`
	EndMs   int64    `json:"end_ms"`
	StepMs  int64    `json:"step_ms,omitempty"`
	Series  []Series `json:"series"`
}

// QueryOpts selects instant vs range evaluation. A zero Start means
// instant at End; a zero End means the store's current time.
type QueryOpts struct {
	Start, End time.Time
	Step       time.Duration
}

const maxRangePoints = 10000

// selector is a parsed name{k="v",...} matcher.
type selector struct {
	name   string
	labels map[string]string
}

func (sel *selector) matches(sr *series) bool {
	if sr.name != sel.name {
		return false
	}
	for k, v := range sel.labels {
		if sr.labels[k] != v {
			return false
		}
	}
	return true
}

// compiledExpr is one parsed query expression.
type compiledExpr struct {
	fn     string // "" | "rate" | "increase" | "histogram_quantile"
	q      float64
	sel    selector
	window time.Duration
}

var (
	reSelector = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)\s*(\{[^}]*\})?$`)
	reRange    = regexp.MustCompile(`^(rate|increase)\(\s*(.*?)\s*\[([0-9a-z.]+)\]\s*\)$`)
	reQuantile = regexp.MustCompile(`^histogram_quantile\(\s*([0-9.]+)\s*,\s*(.*?)\s*\[([0-9a-z.]+)\]\s*\)$`)
)

// ValidateExpr reports whether an expression parses — rule files are
// checked at load time, before any store exists.
func ValidateExpr(expr string) error {
	_, err := compile(expr)
	return err
}

// compile parses a query expression.
func compile(expr string) (*compiledExpr, error) {
	expr = strings.TrimSpace(expr)
	if m := reQuantile.FindStringSubmatch(expr); m != nil {
		q, err := strconv.ParseFloat(m[1], 64)
		if err != nil || q < 0 || q > 1 {
			return nil, fmt.Errorf("tsdb: quantile %q out of [0,1]", m[1])
		}
		sel, err := parseSelector(m[2])
		if err != nil {
			return nil, err
		}
		w, err := time.ParseDuration(m[3])
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("tsdb: bad window %q", m[3])
		}
		return &compiledExpr{fn: "histogram_quantile", q: q, sel: *sel, window: w}, nil
	}
	if m := reRange.FindStringSubmatch(expr); m != nil {
		sel, err := parseSelector(m[2])
		if err != nil {
			return nil, err
		}
		w, err := time.ParseDuration(m[3])
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("tsdb: bad window %q", m[3])
		}
		return &compiledExpr{fn: m[1], sel: *sel, window: w}, nil
	}
	sel, err := parseSelector(expr)
	if err != nil {
		return nil, err
	}
	return &compiledExpr{sel: *sel}, nil
}

// parseSelector parses name{k="v",...}.
func parseSelector(in string) (*selector, error) {
	m := reSelector.FindStringSubmatch(strings.TrimSpace(in))
	if m == nil {
		return nil, fmt.Errorf("tsdb: malformed selector %q", in)
	}
	sel := &selector{name: m[1], labels: map[string]string{}}
	if m[2] == "" {
		return sel, nil
	}
	body := strings.TrimSpace(m[2][1 : len(m[2])-1])
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("tsdb: selector %q: missing '='", in)
		}
		name := strings.TrimSpace(body[:eq])
		rest := strings.TrimSpace(body[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("tsdb: selector %q: label %s: unquoted value", in, name)
		}
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			return nil, fmt.Errorf("tsdb: selector %q: label %s: unterminated value", in, name)
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("tsdb: selector %q: label %s: %w", in, name, err)
		}
		sel.labels[name] = val
		body = strings.TrimSpace(rest[end+1:])
		body = strings.TrimPrefix(body, ",")
		body = strings.TrimSpace(body)
	}
	return sel, nil
}

// Query evaluates an expression. Range queries pick, per series, the
// finest tier whose retention still covers the start of the range.
func (s *Store) Query(expr string, opts QueryOpts) (*QueryResult, error) {
	ce, err := compile(expr)
	if err != nil {
		return nil, err
	}
	end := opts.End
	if end.IsZero() {
		end = s.now()
	}
	start := opts.Start
	instant := start.IsZero()
	if instant {
		start = end
	}
	if end.Before(start) {
		return nil, fmt.Errorf("tsdb: end %s before start %s", end.Format(time.RFC3339), start.Format(time.RFC3339))
	}
	step := opts.Step
	if !instant {
		if step <= 0 {
			step = end.Sub(start) / 240
		}
		if step < time.Second {
			step = time.Second
		}
		if end.Sub(start)/step > maxRangePoints {
			return nil, fmt.Errorf("tsdb: range/step yields more than %d points", maxRangePoints)
		}
	}
	res := &QueryResult{Query: expr, StartMs: start.UnixMilli(), EndMs: end.UnixMilli()}
	if !instant {
		res.StepMs = step.Milliseconds()
	}
	steps := []int64{end.UnixMilli()}
	if !instant {
		steps = steps[:0]
		for t := start; !t.After(end); t = t.Add(step) {
			steps = append(steps, t.UnixMilli())
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if ce.fn == "histogram_quantile" {
		res.Series = s.quantileLocked(ce, steps)
		return res, nil
	}
	for _, sr := range s.matchLocked(&ce.sel) {
		out := Series{Name: sr.name, Labels: sr.labels, Points: make([]Point, 0, len(steps))}
		tier := sr.tierForTime(steps[0])
		switch ce.fn {
		case "rate", "increase":
			wms := ce.window.Milliseconds()
			for _, t := range steps {
				if _, ok := tier.first(); !ok {
					continue
				}
				v := increaseSeries(sr, t-wms, t)
				if ce.fn == "rate" {
					v /= ce.window.Seconds()
				}
				out.Points = append(out.Points, Point{T: t, V: v})
			}
		default:
			look := s.lookback(tier)
			for _, t := range steps {
				p, ok := tier.lastAtOrBefore(t)
				if !ok || t-p.t > look {
					continue
				}
				out.Points = append(out.Points, Point{T: t, V: p.v})
			}
		}
		if len(out.Points) > 0 {
			res.Series = append(res.Series, out)
		}
	}
	sortSeries(res.Series)
	return res, nil
}

// lookback is how stale a sample may be and still answer an instant
// lookup on a tier — five sample spacings, at least 15s.
func (s *Store) lookback(tier *seriesTier) int64 {
	step := tier.res
	if iv := s.interval.Milliseconds(); iv > step {
		step = iv
	}
	look := 5 * step
	if look < 15000 {
		look = 15000
	}
	return look
}

// LastSampleTime reports the newest sample timestamp across series
// matching a plain selector expression — the absence-form alert
// primitive, which must see the true last sample rather than an
// instant query's staleness-bounded view.
func (s *Store) LastSampleTime(expr string) (time.Time, bool) {
	ce, err := compile(expr)
	if err != nil || ce.fn != "" {
		return time.Time{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var best int64
	found := false
	for _, sr := range s.matchLocked(&ce.sel) {
		if p, ok := sr.tiers[0].last(); ok && (!found || p.t > best) {
			best, found = p.t, true
		}
	}
	if !found {
		return time.Time{}, false
	}
	return time.UnixMilli(best), true
}

func (s *Store) matchLocked(sel *selector) []*series {
	var out []*series
	for _, sr := range s.series {
		if sel.matches(sr) {
			out = append(out, sr)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return obs.LabelKey(out[i].labels) < obs.LabelKey(out[j].labels)
	})
	return out
}

// quantileLocked derives a quantile series from a histogram family's
// _bucket counters: per step, the increase of every cumulative bucket
// over the window, then linear interpolation within the bucket that
// crosses the target rank (Prometheus histogram_quantile semantics).
func (s *Store) quantileLocked(ce *compiledExpr, steps []int64) []Series {
	bsel := selector{name: ce.sel.name + "_bucket", labels: ce.sel.labels}
	// Group bucket series by identity minus le.
	groups := map[string][]*series{}
	var keys []string
	for _, sr := range s.matchLocked(&bsel) {
		key := labelKeyWithout(sr.labels, "le")
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], sr)
	}
	sort.Strings(keys)
	wms := ce.window.Milliseconds()
	var out []Series
	for _, key := range keys {
		buckets := groups[key]
		var bs []bucketSeries
		for _, sr := range buckets {
			le, err := strconv.ParseFloat(sr.labels["le"], 64)
			if err != nil {
				if sr.labels["le"] == "+Inf" {
					le = math.Inf(+1)
				} else {
					continue
				}
			}
			bs = append(bs, bucketSeries{le, sr})
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		if len(bs) == 0 {
			continue
		}
		labels := map[string]string{}
		for k, v := range bs[0].sr.labels {
			if k != "le" {
				labels[k] = v
			}
		}
		labels["quantile"] = strconv.FormatFloat(ce.q, 'g', -1, 64)
		ser := Series{Name: ce.sel.name, Labels: labels, Points: make([]Point, 0, len(steps))}
		for _, t := range steps {
			incs := make([]float64, len(bs))
			for i, b := range bs {
				incs[i] = increaseSeries(b.sr, t-wms, t)
			}
			total := incs[len(incs)-1] // +Inf bucket is cumulative total
			if total <= 0 {
				continue
			}
			ser.Points = append(ser.Points, Point{T: t, V: quantileFromBuckets(ce.q, bs, incs)})
		}
		if len(ser.Points) > 0 {
			out = append(out, ser)
		}
	}
	return out
}

// bucketSeries pairs one histogram bucket series with its parsed upper
// bound.
type bucketSeries struct {
	le float64
	sr *series
}

// quantileFromBuckets interpolates the q-quantile from cumulative
// bucket increases (bs sorted by le ascending, last is +Inf).
func quantileFromBuckets(q float64, bs []bucketSeries, incs []float64) float64 {
	total := incs[len(incs)-1]
	rank := q * total
	for i, inc := range incs {
		if inc < rank {
			continue
		}
		ub := bs[i].le
		if math.IsInf(ub, +1) {
			// Rank falls past the largest finite bound; report that
			// bound as a lower estimate.
			if i > 0 {
				return bs[i-1].le
			}
			return 0
		}
		lb, lc := 0.0, 0.0
		if i > 0 {
			lb, lc = bs[i-1].le, incs[i-1]
		}
		if inc == lc {
			return ub
		}
		return lb + (ub-lb)*(rank-lc)/(inc-lc)
	}
	return bs[len(bs)-1].le
}

func labelKeyWithout(labels map[string]string, drop string) string {
	c := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != drop {
			c[k] = v
		}
	}
	return obs.LabelKey(c)
}

func sortSeries(ss []Series) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].Name != ss[j].Name {
			return ss[i].Name < ss[j].Name
		}
		return obs.LabelKey(ss[i].Labels) < obs.LabelKey(ss[j].Labels)
	})
}

// FleetShard labels the synthetic summed series Merge adds on top of
// the per-shard ones.
const FleetShard = "fleet"

// Merge combines per-shard results of the SAME query (identical
// start/end/step) into one: every input series tagged with its shard
// label, plus, per distinct (name, labels) identity, a synthetic
// shard="fleet" series holding the pointwise sum across shards.
func Merge(byShard map[string]*QueryResult) *QueryResult {
	shards := make([]string, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Strings(shards)
	out := &QueryResult{}
	type acc struct {
		name   string
		labels map[string]string
		sums   map[int64]float64
	}
	fleet := map[string]*acc{}
	var fleetKeys []string
	for _, shard := range shards {
		r := byShard[shard]
		if r == nil {
			continue
		}
		if out.Query == "" {
			out.Query, out.StartMs, out.EndMs, out.StepMs = r.Query, r.StartMs, r.EndMs, r.StepMs
		}
		for _, ser := range r.Series {
			labeled := make(map[string]string, len(ser.Labels)+1)
			for k, v := range ser.Labels {
				labeled[k] = v
			}
			labeled["shard"] = shard
			out.Series = append(out.Series, Series{Name: ser.Name, Labels: labeled, Points: ser.Points})

			key := ser.Name + "{" + labelKeyWithout(ser.Labels, "shard") + "}"
			a, ok := fleet[key]
			if !ok {
				base := make(map[string]string, len(ser.Labels))
				for k, v := range ser.Labels {
					if k != "shard" {
						base[k] = v
					}
				}
				a = &acc{name: ser.Name, labels: base, sums: map[int64]float64{}}
				fleet[key] = a
				fleetKeys = append(fleetKeys, key)
			}
			for _, p := range ser.Points {
				if !math.IsNaN(p.V) {
					a.sums[p.T] += p.V
				}
			}
		}
	}
	sort.Strings(fleetKeys)
	for _, key := range fleetKeys {
		a := fleet[key]
		labels := a.labels
		labels["shard"] = FleetShard
		ts := make([]int64, 0, len(a.sums))
		for t := range a.sums {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		ser := Series{Name: a.name, Labels: labels, Points: make([]Point, 0, len(ts))}
		for _, t := range ts {
			ser.Points = append(ser.Points, Point{T: t, V: a.sums[t]})
		}
		out.Series = append(out.Series, ser)
	}
	return out
}

// OptsFromValues parses the /v1/query URL parameters shared by the
// single-node and federated handlers: query (required), start/end
// (unix seconds, RFC3339, or a negative duration like "-5m" relative
// to now), step (Go duration). Absent start means instant.
func OptsFromValues(v url.Values, now time.Time) (string, QueryOpts, error) {
	expr := strings.TrimSpace(v.Get("query"))
	if expr == "" {
		return "", QueryOpts{}, errors.New("missing query parameter")
	}
	opts := QueryOpts{}
	var err error
	if raw := v.Get("start"); raw != "" {
		if opts.Start, err = parseTimeParam(raw, now); err != nil {
			return "", QueryOpts{}, fmt.Errorf("start: %w", err)
		}
	}
	if raw := v.Get("end"); raw != "" {
		if opts.End, err = parseTimeParam(raw, now); err != nil {
			return "", QueryOpts{}, fmt.Errorf("end: %w", err)
		}
	}
	if raw := v.Get("step"); raw != "" {
		if opts.Step, err = time.ParseDuration(raw); err != nil {
			return "", QueryOpts{}, fmt.Errorf("step: %w", err)
		}
	}
	return expr, opts, nil
}

// parseTimeParam accepts unix seconds (float), RFC3339, "now", or a
// signed duration offset from now ("-5m").
func parseTimeParam(raw string, now time.Time) (time.Time, error) {
	if raw == "now" {
		return now, nil
	}
	if sec, err := strconv.ParseFloat(raw, 64); err == nil {
		s, frac := math.Modf(sec)
		return time.Unix(int64(s), int64(frac*1e9)), nil
	}
	if d, err := time.ParseDuration(raw); err == nil {
		return now.Add(d), nil
	}
	if t, err := time.Parse(time.RFC3339, raw); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("unparseable time %q (want unix seconds, RFC3339, or duration offset)", raw)
}
