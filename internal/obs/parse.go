package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed metric sample.
type Sample struct {
	// Name is the sample's full name, including any _bucket/_sum/_count
	// suffix.
	Name   string
	Labels map[string]string
	Value  float64
	// Exemplar holds the sample's OpenMetrics exemplar clause, when
	// present (histogram _bucket samples only — the parser rejects
	// exemplars anywhere else).
	Exemplar *SampleExemplar
}

// SampleExemplar is one parsed OpenMetrics exemplar:
// "# {trace_id="..."} value [timestamp]" after a bucket sample.
type SampleExemplar struct {
	Labels map[string]string
	Value  float64
	// Ts is the exemplar timestamp in unix seconds; HasTs reports
	// whether one was present.
	Ts    float64
	HasTs bool
}

// TraceID returns the exemplar's trace_id label ("" when absent).
func (e *SampleExemplar) TraceID() string {
	if e == nil {
		return ""
	}
	return e.Labels["trace_id"]
}

// Family is one parsed metric family: the TYPE/HELP header plus every
// sample that belongs to it (for histograms, the _bucket/_sum/_count
// series).
type Family struct {
	Name, Help, Type string
	Samples          []Sample
}

// Metrics is a parsed exposition, keyed by family name.
type Metrics map[string]*Family

// ParseProm parses Prometheus text exposition format (version 0.0.4) —
// the round-trip partner of PromWriter, strict enough to catch a
// malformed exposition: every sample must belong to a family announced
// by a TYPE line, label syntax is validated, and histogram bucket
// counts must be monotonically non-decreasing and consistent with
// _count.
func ParseProm(r io.Reader) (Metrics, error) {
	m := make(Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := m.parseHeader(line); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		fam := m.familyFor(s.Name)
		if fam == nil {
			return nil, fmt.Errorf("obs: line %d: sample %q has no TYPE header", lineNo, s.Name)
		}
		if s.Exemplar != nil && (fam.Type != "histogram" || !strings.HasSuffix(s.Name, "_bucket")) {
			return nil, fmt.Errorf("obs: line %d: exemplar on %q (%s family %s): exemplars are histogram _bucket only",
				lineNo, s.Name, fam.Type, fam.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range m {
		if fam.Type == "histogram" {
			if err := fam.checkHistogram(); err != nil {
				return nil, fmt.Errorf("obs: family %s: %w", fam.Name, err)
			}
		}
	}
	return m, nil
}

// parseHeader consumes a "# HELP name text" or "# TYPE name kind" line;
// other comments are ignored.
func (m Metrics) parseHeader(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // plain comment
	}
	switch fields[1] {
	case "HELP":
		fam := m.ensure(fields[2])
		if len(fields) == 4 {
			fam.Help = fields[3]
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		fam := m.ensure(fields[2])
		if fam.Type != "" && fam.Type != fields[3] {
			return fmt.Errorf("family %s redeclared as %s (was %s)", fields[2], fields[3], fam.Type)
		}
		fam.Type = fields[3]
	}
	return nil
}

func (m Metrics) ensure(name string) *Family {
	if f, ok := m[name]; ok {
		return f
	}
	f := &Family{Name: name}
	m[name] = f
	return f
}

// familyFor resolves a sample name to its declared family, stripping
// the histogram/summary suffixes when the base family is of that type.
func (m Metrics) familyFor(sample string) *Family {
	if f, ok := m[sample]; ok && f.Type != "" {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suffix)
		if !ok {
			continue
		}
		if f, exists := m[base]; exists && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

// parseSample parses one "name{label="v",...} value [timestamp]" line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		rest = rest[end:]
	}
	// An OpenMetrics exemplar clause, when present, follows the value
	// (and optional timestamp) after " # ". Label values cannot hide a
	// separator here: the sample's label block was already consumed.
	var exPart string
	if i := strings.Index(rest, " # "); i >= 0 {
		rest, exPart = rest[:i], strings.TrimSpace(rest[i+3:])
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 && len(fields) != 2 { // optional timestamp
		return s, fmt.Errorf("malformed sample %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", line, err)
	}
	s.Value = v
	if exPart != "" {
		ex, err := parseExemplar(exPart)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		s.Exemplar = ex
	}
	return s, nil
}

// parseExemplar parses the clause after "# ": a label block, a value,
// and an optional timestamp. A trace_id label must be 32 lowercase hex
// characters — a malformed reference is worse than none.
func parseExemplar(in string) (*SampleExemplar, error) {
	if !strings.HasPrefix(in, "{") {
		return nil, fmt.Errorf("exemplar %q: want label block", in)
	}
	ex := &SampleExemplar{Labels: map[string]string{}}
	end, err := parseLabels(in, ex.Labels)
	if err != nil {
		return nil, fmt.Errorf("exemplar %q: %w", in, err)
	}
	if len(ex.Labels) == 0 {
		return nil, fmt.Errorf("exemplar %q: empty label set", in)
	}
	if tid, ok := ex.Labels["trace_id"]; ok && !validTraceIDHex(tid) {
		return nil, fmt.Errorf("exemplar %q: trace_id %q is not 32 lowercase hex chars", in, tid)
	}
	fields := strings.Fields(in[end:])
	if len(fields) != 1 && len(fields) != 2 {
		return nil, fmt.Errorf("exemplar %q: want value [timestamp]", in)
	}
	if ex.Value, err = parseValue(fields[0]); err != nil {
		return nil, fmt.Errorf("exemplar %q: %w", in, err)
	}
	if len(fields) == 2 {
		if ex.Ts, err = parseValue(fields[1]); err != nil {
			return nil, fmt.Errorf("exemplar %q: timestamp: %w", in, err)
		}
		ex.HasTs = true
	}
	return ex, nil
}

// validTraceIDHex reports whether s is a 32-char lowercase hex W3C
// trace id.
func validTraceIDHex(s string) bool {
	if len(s) != 32 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// parseLabels consumes a {name="value",...} block starting at in[0] == '{'
// and returns the index just past the closing brace.
func parseLabels(in string, out map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label block %q: missing '='", in)
		}
		name := in[i : i+eq]
		if !validName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("label %s: unquoted value", name)
		}
		end := i + 1
		for end < len(in) {
			if in[end] == '\\' {
				end += 2
				continue
			}
			if in[end] == '"' {
				break
			}
			end++
		}
		if end >= len(in) {
			return 0, fmt.Errorf("label %s: unterminated value", name)
		}
		val, err := strconv.Unquote(in[i : end+1])
		if err != nil {
			return 0, fmt.Errorf("label %s: %w", name, err)
		}
		out[name] = val
		i = end + 1
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// checkHistogram validates every histogram series of the family: within
// one label set (le excluded) the cumulative bucket counts must be
// non-decreasing, the +Inf bucket must be present, and _count must
// equal it.
func (f *Family) checkHistogram() error {
	type series struct {
		lastLe    float64
		lastCount float64
		infCount  float64
		hasInf    bool
		count     float64
		hasCount  bool
	}
	bySeries := map[string]*series{}
	get := func(labels map[string]string) *series {
		key := labelKey(labels, "le")
		s, ok := bySeries[key]
		if !ok {
			s = &series{lastLe: math.Inf(-1)}
			bySeries[key] = s
		}
		return s
	}
	for _, sm := range f.Samples {
		switch {
		case strings.HasSuffix(sm.Name, "_bucket"):
			s := get(sm.Labels)
			le, err := parseValue(sm.Labels["le"])
			if err != nil {
				return fmt.Errorf("bucket le %q: %w", sm.Labels["le"], err)
			}
			if le <= s.lastLe {
				return fmt.Errorf("bucket le %v out of order", le)
			}
			if sm.Value < s.lastCount {
				return fmt.Errorf("cumulative bucket count decreased at le=%v", le)
			}
			s.lastLe, s.lastCount = le, sm.Value
			if math.IsInf(le, +1) {
				s.hasInf, s.infCount = true, sm.Value
			}
		case strings.HasSuffix(sm.Name, "_count"):
			s := get(sm.Labels)
			s.hasCount, s.count = true, sm.Value
		}
	}
	for key, s := range bySeries {
		if !s.hasInf {
			return fmt.Errorf("series {%s}: no le=\"+Inf\" bucket", key)
		}
		if s.hasCount && s.count != s.infCount {
			return fmt.Errorf("series {%s}: _count %v != +Inf bucket %v", key, s.count, s.infCount)
		}
	}
	return nil
}

// labelKey renders a label set minus the named label, deterministically.
func labelKey(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// LabelKey renders a label set in canonical form — sorted name="value"
// pairs, comma-joined — the series-identity key for consumers that need
// to tell samples of one family apart (the tsdb keys series by sample
// name plus this).
func LabelKey(labels map[string]string) string { return labelKey(labels, "") }

// Value returns the value of the single sample of family name matching
// all the given labels (subset match: the sample may carry more). It
// reports false when no sample matches; multiple matches return the
// first in exposition order.
func (m Metrics) Value(name string, labels map[string]string) (float64, bool) {
	fam, ok := m[name]
	if !ok {
		// _bucket/_sum/_count samples live under their base family.
		if fam = m.familyFor(name); fam == nil {
			return 0, false
		}
	}
	for _, s := range fam.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}
