package wdm

import "testing"

// FuzzParseConnection hardens the text codec: arbitrary input must never
// panic, and anything that parses must round-trip through Format.
func FuzzParseConnection(f *testing.F) {
	f.Add("0.0>1.1,2.0")
	f.Add("3.1>0.0")
	f.Add(">")
	f.Add("1.0>")
	f.Add("")
	f.Add("a.b>c.d")
	f.Add("0.0>1.1;2.0")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseConnection(s)
		if err != nil {
			return
		}
		formatted := FormatConnection(c)
		again, err := ParseConnection(formatted)
		if err != nil {
			t.Fatalf("round trip of %q -> %q failed: %v", s, formatted, err)
		}
		if FormatConnection(again) != formatted {
			t.Fatalf("unstable round trip: %q vs %q", FormatConnection(again), formatted)
		}
	})
}

// FuzzParseAssignment does the same for whole assignments.
func FuzzParseAssignment(f *testing.F) {
	f.Add("0.0>1.0;1.0>0.0")
	f.Add(";;")
	f.Add("0.0>1.0;")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAssignment(s)
		if err != nil {
			return
		}
		formatted := FormatAssignment(a)
		if _, err := ParseAssignment(formatted); err != nil {
			t.Fatalf("round trip of %q -> %q failed: %v", s, formatted, err)
		}
	})
}

// FuzzCheckConnection drives the validators with structurally arbitrary
// connections: they must classify, never panic, and respect the model
// hierarchy (anything MSW admits, MSDW and MAW admit).
func FuzzCheckConnection(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(1), uint8(0), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, sp, sw, d1p, d1w, d2p, d2w uint8) {
		d := Dim{N: 4, K: 3}
		c := Connection{
			Source: PortWave{Port: Port(sp % 6), Wave: Wavelength(sw % 5)},
			Dests: []PortWave{
				{Port: Port(d1p % 6), Wave: Wavelength(d1w % 5)},
				{Port: Port(d2p % 6), Wave: Wavelength(d2w % 5)},
			},
		}
		okMSW := d.CheckConnection(MSW, c) == nil
		okMSDW := d.CheckConnection(MSDW, c) == nil
		okMAW := d.CheckConnection(MAW, c) == nil
		if okMSW && !okMSDW {
			t.Fatalf("MSW admits %v but MSDW rejects", c)
		}
		if okMSDW && !okMAW {
			t.Fatalf("MSDW admits %v but MAW rejects", c)
		}
	})
}
