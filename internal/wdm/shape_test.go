package wdm

import "testing"

func TestShapeValidate(t *testing.T) {
	if err := (Shape{In: 2, Out: 5, K: 3}).Validate(); err != nil {
		t.Errorf("valid rectangular shape rejected: %v", err)
	}
	for _, s := range []Shape{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid shape %+v accepted", s)
		}
	}
}

func TestShapeSlots(t *testing.T) {
	s := Shape{In: 3, Out: 5, K: 2}
	if s.InSlots() != 6 || s.OutSlots() != 10 {
		t.Errorf("slots = %d/%d, want 6/10", s.InSlots(), s.OutSlots())
	}
}

func TestShapeRectangularRanges(t *testing.T) {
	// A 2x4 switch: source port 3 invalid, destination port 3 valid.
	s := Shape{In: 2, Out: 4, K: 1}
	bad := Connection{Source: pw(3, 0), Dests: []PortWave{pw(0, 0)}}
	if err := s.CheckConnection(MAW, bad); err == nil {
		t.Error("source port beyond In accepted")
	}
	good := Connection{Source: pw(1, 0), Dests: []PortWave{pw(3, 0)}}
	if err := s.CheckConnection(MAW, good); err != nil {
		t.Errorf("destination port within Out rejected: %v", err)
	}
	reverse := Connection{Source: pw(0, 0), Dests: []PortWave{pw(3, 0)}}
	if err := (Shape{In: 4, Out: 2, K: 1}).CheckConnection(MAW, reverse); err == nil {
		t.Error("destination port beyond Out accepted")
	}
}

func TestShapeModelRules(t *testing.T) {
	s := Shape{In: 2, Out: 3, K: 2}
	shift := Connection{Source: pw(0, 0), Dests: []PortWave{pw(0, 1), pw(2, 1)}}
	if err := s.CheckConnection(MSW, shift); err == nil {
		t.Error("MSW accepted wavelength shift")
	}
	if err := s.CheckConnection(MSDW, shift); err != nil {
		t.Errorf("MSDW rejected common destination wavelength: %v", err)
	}
	mixed := Connection{Source: pw(0, 0), Dests: []PortWave{pw(0, 0), pw(1, 1)}}
	if err := s.CheckConnection(MSDW, mixed); err == nil {
		t.Error("MSDW accepted mixed destination wavelengths")
	}
	if err := s.CheckConnection(MAW, mixed); err != nil {
		t.Errorf("MAW rejected mixed wavelengths: %v", err)
	}
}

func TestShapeAssignment(t *testing.T) {
	s := Shape{In: 2, Out: 3, K: 1}
	ok := Assignment{
		{Source: pw(0, 0), Dests: []PortWave{pw(0, 0), pw(2, 0)}},
		{Source: pw(1, 0), Dests: []PortWave{pw(1, 0)}},
	}
	if err := s.CheckAssignment(MAW, ok); err != nil {
		t.Errorf("valid rectangular assignment rejected: %v", err)
	}
	clash := Assignment{
		{Source: pw(0, 0), Dests: []PortWave{pw(0, 0)}},
		{Source: pw(1, 0), Dests: []PortWave{pw(0, 0)}},
	}
	if err := s.CheckAssignment(MAW, clash); err == nil {
		t.Error("destination clash accepted")
	}
}

func TestDimShapeEquivalence(t *testing.T) {
	d := Dim{N: 3, K: 2}
	s := d.Shape()
	if s.In != 3 || s.Out != 3 || s.K != 2 {
		t.Errorf("Dim.Shape() = %+v", s)
	}
	c := Connection{Source: pw(0, 0), Dests: []PortWave{pw(2, 0)}}
	if (d.CheckConnection(MSW, c) == nil) != (s.CheckConnection(MSW, c) == nil) {
		t.Error("Dim and Shape disagree")
	}
}
