package wdm

import "fmt"

// Shape describes a possibly rectangular WDM switch: In input ports, Out
// output ports, K wavelengths per fiber. The paper's multistage networks
// (Section 3) are built from rectangular modules — n x m in the input
// stage, r x r in the middle, m x n in the output stage — so connection
// admissibility must be checkable against distinct side sizes.
type Shape struct {
	In, Out, K int
}

// Validate checks that all dimensions are positive.
func (s Shape) Validate() error {
	if s.In <= 0 {
		return fmt.Errorf("wdm: shape In = %d, must be positive", s.In)
	}
	if s.Out <= 0 {
		return fmt.Errorf("wdm: shape Out = %d, must be positive", s.Out)
	}
	if s.K <= 0 {
		return fmt.Errorf("wdm: shape k = %d, must be positive", s.K)
	}
	return nil
}

// InSlots and OutSlots return the wavelength-slot counts per side.
func (s Shape) InSlots() int  { return s.In * s.K }
func (s Shape) OutSlots() int { return s.Out * s.K }

// InRangeSource reports whether pw is a valid input slot.
func (s Shape) InRangeSource(pw PortWave) bool {
	return pw.Port >= 0 && int(pw.Port) < s.In && pw.Wave >= 0 && int(pw.Wave) < s.K
}

// InRangeDest reports whether pw is a valid output slot.
func (s Shape) InRangeDest(pw PortWave) bool {
	return pw.Port >= 0 && int(pw.Port) < s.Out && pw.Wave >= 0 && int(pw.Wave) < s.K
}

// CheckConnection verifies structural validity and model admissibility of
// a connection against the rectangular shape. The rules are those of
// Dim.CheckConnection with the two sides sized independently.
func (s Shape) CheckConnection(model Model, c Connection) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if !s.InRangeSource(c.Source) {
		return fmt.Errorf("wdm: source %v out of range for %dx%d k=%d switch", c.Source, s.In, s.Out, s.K)
	}
	if len(c.Dests) == 0 {
		return fmt.Errorf("wdm: connection from %v has no destinations", c.Source)
	}
	seenPort := make(map[Port]bool, len(c.Dests))
	for _, dst := range c.Dests {
		if !s.InRangeDest(dst) {
			return fmt.Errorf("wdm: destination %v out of range for %dx%d k=%d switch", dst, s.In, s.Out, s.K)
		}
		if seenPort[dst.Port] {
			return fmt.Errorf("wdm: two destinations of one connection share output port %d", dst.Port)
		}
		seenPort[dst.Port] = true
	}
	switch model {
	case MSW:
		for _, dst := range c.Dests {
			if dst.Wave != c.Source.Wave {
				return fmt.Errorf("wdm: MSW connection from %v uses destination wavelength λ%d != source wavelength λ%d",
					c.Source, dst.Wave, c.Source.Wave)
			}
		}
	case MSDW:
		w := c.Dests[0].Wave
		for _, dst := range c.Dests[1:] {
			if dst.Wave != w {
				return fmt.Errorf("wdm: MSDW connection from %v mixes destination wavelengths λ%d and λ%d",
					c.Source, w, dst.Wave)
			}
		}
	case MAW:
		// No wavelength restriction.
	default:
		return fmt.Errorf("wdm: unknown model %v", model)
	}
	return nil
}

// CheckAssignment verifies that every connection is admissible and that
// connections are pairwise compatible (no shared source or destination
// slot).
func (s Shape) CheckAssignment(model Model, a Assignment) error {
	srcUsed := make(map[PortWave]int, len(a))
	dstUsed := make(map[PortWave]int, s.OutSlots())
	for i, c := range a {
		if err := s.CheckConnection(model, c); err != nil {
			return fmt.Errorf("connection %d: %w", i, err)
		}
		if j, dup := srcUsed[c.Source]; dup {
			return fmt.Errorf("wdm: connections %d and %d share source slot %v", j, i, c.Source)
		}
		srcUsed[c.Source] = i
		for _, dst := range c.Dests {
			if j, dup := dstUsed[dst]; dup {
				return fmt.Errorf("wdm: connections %d and %d share destination slot %v", j, i, dst)
			}
			dstUsed[dst] = i
		}
	}
	return nil
}

// Shape converts square dimensions to the equivalent Shape.
func (d Dim) Shape() Shape { return Shape{In: d.N, Out: d.N, K: d.K} }
