package wdm

import (
	"fmt"
	"strconv"
	"strings"
)

// This file defines a compact, parseable text form for slots,
// connections and assignments, used by the trace tooling and golden
// tests:
//
//	slot:        "<port>.<wave>"            e.g. "3.1"
//	connection:  "<slot>><slot>,<slot>..."  e.g. "0.0>1.1,2.0"
//	assignment:  connections joined by ";"  e.g. "0.0>1.0;1.1>0.1"
//
// The pretty-printer String() forms (with λ glyphs) remain for humans;
// these forms round-trip.

// FormatSlot renders a slot as "<port>.<wave>".
func FormatSlot(pw PortWave) string {
	return fmt.Sprintf("%d.%d", pw.Port, pw.Wave)
}

// ParseSlot parses FormatSlot's output.
func ParseSlot(s string) (PortWave, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	if len(parts) != 2 {
		return PortWave{}, fmt.Errorf("wdm: slot %q: want <port>.<wave>", s)
	}
	p, err := strconv.Atoi(parts[0])
	if err != nil {
		return PortWave{}, fmt.Errorf("wdm: slot %q: bad port: %v", s, err)
	}
	w, err := strconv.Atoi(parts[1])
	if err != nil {
		return PortWave{}, fmt.Errorf("wdm: slot %q: bad wavelength: %v", s, err)
	}
	if p < 0 || w < 0 {
		return PortWave{}, fmt.Errorf("wdm: slot %q: negative component", s)
	}
	return PortWave{Port: Port(p), Wave: Wavelength(w)}, nil
}

// FormatConnection renders a connection as "<src>><dst>,<dst>...".
func FormatConnection(c Connection) string {
	var b strings.Builder
	b.WriteString(FormatSlot(c.Source))
	b.WriteByte('>')
	for i, d := range c.Dests {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(FormatSlot(d))
	}
	return b.String()
}

// ParseConnection parses FormatConnection's output.
func ParseConnection(s string) (Connection, error) {
	s = strings.TrimSpace(s)
	halves := strings.SplitN(s, ">", 2)
	if len(halves) != 2 || halves[1] == "" {
		return Connection{}, fmt.Errorf("wdm: connection %q: want <src>><dst>[,<dst>...]", s)
	}
	src, err := ParseSlot(halves[0])
	if err != nil {
		return Connection{}, fmt.Errorf("wdm: connection %q: %v", s, err)
	}
	c := Connection{Source: src}
	for _, ds := range strings.Split(halves[1], ",") {
		d, err := ParseSlot(ds)
		if err != nil {
			return Connection{}, fmt.Errorf("wdm: connection %q: %v", s, err)
		}
		c.Dests = append(c.Dests, d)
	}
	return c, nil
}

// FormatAssignment renders an assignment with ";" between connections.
func FormatAssignment(a Assignment) string {
	parts := make([]string, len(a))
	for i, c := range a {
		parts[i] = FormatConnection(c)
	}
	return strings.Join(parts, ";")
}

// ParseAssignment parses FormatAssignment's output. An empty string is
// the empty assignment.
func ParseAssignment(s string) (Assignment, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var a Assignment
	for _, cs := range strings.Split(s, ";") {
		c, err := ParseConnection(cs)
		if err != nil {
			return nil, err
		}
		a = append(a, c)
	}
	return a, nil
}
