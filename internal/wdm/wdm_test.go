package wdm

import (
	"strings"
	"testing"
	"testing/quick"
)

func pw(p, w int) PortWave { return PortWave{Port: Port(p), Wave: Wavelength(w)} }

func TestPortWaveIndexRoundTrip(t *testing.T) {
	f := func(pRaw, wRaw, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		p := int(pRaw % 64)
		w := int(wRaw) % k
		slot := pw(p, w)
		return SlotFromIndex(slot.Index(k), k) == slot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPortWaveIndexDense(t *testing.T) {
	// Indices must enumerate 0..N*k-1 exactly once.
	d := Dim{N: 5, K: 3}
	seen := make([]bool, d.Slots())
	for p := 0; p < d.N; p++ {
		for w := 0; w < d.K; w++ {
			idx := pw(p, w).Index(d.K)
			if idx < 0 || idx >= d.Slots() {
				t.Fatalf("index %d out of range", idx)
			}
			if seen[idx] {
				t.Fatalf("index %d repeated", idx)
			}
			seen[idx] = true
		}
	}
}

func TestModelString(t *testing.T) {
	if MSW.String() != "MSW" || MSDW.String() != "MSDW" || MAW.String() != "MAW" {
		t.Errorf("model names wrong: %v %v %v", MSW, MSDW, MAW)
	}
	if got := Model(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown model string = %q", got)
	}
}

func TestParseModel(t *testing.T) {
	for _, m := range Models {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
		got, err = ParseModel(strings.ToLower(" " + m.String() + " "))
		if err != nil || got != m {
			t.Errorf("ParseModel lowercase/space failed for %v: %v, %v", m, got, err)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Error("ParseModel(bogus) did not error")
	}
}

func TestModelStrength(t *testing.T) {
	if !MAW.Stronger(MSDW) || !MSDW.Stronger(MSW) || !MAW.Stronger(MAW) {
		t.Error("strength ordering broken")
	}
	if MSW.Stronger(MSDW) {
		t.Error("MSW should not be stronger than MSDW")
	}
}

func TestDimValidate(t *testing.T) {
	if err := (Dim{N: 4, K: 2}).Validate(); err != nil {
		t.Errorf("valid dim rejected: %v", err)
	}
	if err := (Dim{N: 0, K: 2}).Validate(); err == nil {
		t.Error("N=0 accepted")
	}
	if err := (Dim{N: 4, K: 0}).Validate(); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestCheckConnectionModels(t *testing.T) {
	d := Dim{N: 3, K: 2}
	sameWave := Connection{Source: pw(0, 0), Dests: []PortWave{pw(1, 0), pw(2, 0)}}
	sameDestWave := Connection{Source: pw(0, 1), Dests: []PortWave{pw(1, 0), pw(2, 0)}}
	anyWave := Connection{Source: pw(0, 0), Dests: []PortWave{pw(1, 0), pw(2, 1)}}

	// MSW admits only the same-wavelength connection.
	if err := d.CheckConnection(MSW, sameWave); err != nil {
		t.Errorf("MSW rejected same-wave connection: %v", err)
	}
	if err := d.CheckConnection(MSW, sameDestWave); err == nil {
		t.Error("MSW accepted source-wavelength mismatch")
	}
	if err := d.CheckConnection(MSW, anyWave); err == nil {
		t.Error("MSW accepted mixed destination wavelengths")
	}

	// MSDW admits the first two but not mixed destination wavelengths.
	if err := d.CheckConnection(MSDW, sameWave); err != nil {
		t.Errorf("MSDW rejected same-wave connection: %v", err)
	}
	if err := d.CheckConnection(MSDW, sameDestWave); err != nil {
		t.Errorf("MSDW rejected same-dest-wave connection: %v", err)
	}
	if err := d.CheckConnection(MSDW, anyWave); err == nil {
		t.Error("MSDW accepted mixed destination wavelengths")
	}

	// MAW admits all three.
	for _, c := range []Connection{sameWave, sameDestWave, anyWave} {
		if err := d.CheckConnection(MAW, c); err != nil {
			t.Errorf("MAW rejected %v: %v", c, err)
		}
	}
}

func TestModelHierarchyProperty(t *testing.T) {
	// Any connection admissible under a weaker model is admissible under a
	// stronger one (checked on randomly generated connections).
	d := Dim{N: 4, K: 3}
	f := func(srcP, srcW uint8, destRaw [4]uint8) bool {
		c := Connection{Source: pw(int(srcP)%d.N, int(srcW)%d.K)}
		usedPort := map[int]bool{}
		for _, r := range destRaw {
			p := int(r) % d.N
			w := (int(r) / d.N) % d.K
			if usedPort[p] {
				continue
			}
			usedPort[p] = true
			c.Dests = append(c.Dests, pw(p, w))
		}
		if len(c.Dests) == 0 {
			return true
		}
		for i, weak := range Models {
			if d.CheckConnection(weak, c) != nil {
				continue
			}
			for _, strong := range Models[i:] {
				if d.CheckConnection(strong, c) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckConnectionStructural(t *testing.T) {
	d := Dim{N: 3, K: 2}
	cases := []struct {
		name string
		c    Connection
	}{
		{"no destinations", Connection{Source: pw(0, 0)}},
		{"source port out of range", Connection{Source: pw(3, 0), Dests: []PortWave{pw(0, 0)}}},
		{"source wave out of range", Connection{Source: pw(0, 2), Dests: []PortWave{pw(0, 0)}}},
		{"dest out of range", Connection{Source: pw(0, 0), Dests: []PortWave{pw(0, 5)}}},
		{"negative dest port", Connection{Source: pw(0, 0), Dests: []PortWave{pw(-1, 0)}}},
		{"two dests on one output port", Connection{Source: pw(0, 0), Dests: []PortWave{pw(1, 0), pw(1, 1)}}},
	}
	for _, c := range cases {
		if err := d.CheckConnection(MAW, c.c); err == nil {
			t.Errorf("%s: accepted %v", c.name, c.c)
		}
	}
}

func TestCheckAssignment(t *testing.T) {
	d := Dim{N: 3, K: 2}
	ok := Assignment{
		{Source: pw(0, 0), Dests: []PortWave{pw(0, 0), pw(1, 0)}},
		{Source: pw(0, 1), Dests: []PortWave{pw(0, 1), pw(1, 1)}},
		{Source: pw(1, 0), Dests: []PortWave{pw(2, 0)}},
	}
	if err := d.CheckAssignment(MSW, ok); err != nil {
		t.Errorf("valid MSW assignment rejected: %v", err)
	}

	dupSource := Assignment{
		{Source: pw(0, 0), Dests: []PortWave{pw(0, 0)}},
		{Source: pw(0, 0), Dests: []PortWave{pw(1, 0)}},
	}
	if err := d.CheckAssignment(MSW, dupSource); err == nil {
		t.Error("duplicate source slot accepted")
	}

	dupDest := Assignment{
		{Source: pw(0, 0), Dests: []PortWave{pw(2, 0)}},
		{Source: pw(1, 0), Dests: []PortWave{pw(2, 0)}},
	}
	if err := d.CheckAssignment(MSW, dupDest); err == nil {
		t.Error("duplicate destination slot accepted")
	}
}

func TestAssignmentFull(t *testing.T) {
	d := Dim{N: 2, K: 2}
	full := Assignment{
		{Source: pw(0, 0), Dests: []PortWave{pw(0, 0), pw(1, 0)}},
		{Source: pw(1, 1), Dests: []PortWave{pw(0, 1), pw(1, 1)}},
	}
	if err := d.CheckAssignment(MSW, full); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}
	if !full.IsFull(d.N, d.K) {
		t.Error("full assignment not detected as full")
	}
	partial := full[:1]
	if partial.IsFull(d.N, d.K) {
		t.Error("partial assignment detected as full")
	}
}

func TestConnectionNormalizeAndClone(t *testing.T) {
	c := Connection{Source: pw(0, 0), Dests: []PortWave{pw(2, 1), pw(1, 0), pw(2, 0)}}
	n := c.Normalize()
	want := []PortWave{pw(1, 0), pw(2, 0), pw(2, 1)}
	for i, d := range n.Dests {
		if d != want[i] {
			t.Fatalf("normalized dests = %v, want %v", n.Dests, want)
		}
	}
	// Original untouched.
	if c.Dests[0] != pw(2, 1) {
		t.Error("Normalize mutated the original connection")
	}
	cl := c.Clone()
	cl.Dests[0] = pw(0, 0)
	if c.Dests[0] == pw(0, 0) {
		t.Error("Clone shares destination storage")
	}
}

func TestConverterDemand(t *testing.T) {
	same := Connection{Source: pw(0, 1), Dests: []PortWave{pw(1, 1), pw(2, 1)}}
	shifted := Connection{Source: pw(0, 0), Dests: []PortWave{pw(1, 1), pw(2, 1)}}
	mixed := Connection{Source: pw(0, 0), Dests: []PortWave{pw(1, 0), pw(2, 1)}}

	if got := ConverterDemand(MSW, same); got != 0 {
		t.Errorf("MSW demand = %d, want 0", got)
	}
	if got := ConverterDemand(MSDW, same); got != 0 {
		t.Errorf("MSDW same-wave demand = %d, want 0", got)
	}
	if got := ConverterDemand(MSDW, shifted); got != 1 {
		t.Errorf("MSDW shifted demand = %d, want 1", got)
	}
	if got := ConverterDemand(MAW, mixed); got != 1 {
		t.Errorf("MAW mixed demand = %d, want 1", got)
	}
	if got := ConverterDemand(MAW, shifted); got != 2 {
		t.Errorf("MAW shifted demand = %d, want 2", got)
	}
}

func TestAssignmentClone(t *testing.T) {
	a := Assignment{{Source: pw(0, 0), Dests: []PortWave{pw(1, 0)}}}
	b := a.Clone()
	b[0].Dests[0] = pw(2, 0)
	if a[0].Dests[0] == pw(2, 0) {
		t.Error("Assignment.Clone shares storage")
	}
}

func TestConnectionString(t *testing.T) {
	c := Connection{Source: pw(0, 1), Dests: []PortWave{pw(2, 0)}}
	s := c.String()
	if !strings.Contains(s, "p0") || !strings.Contains(s, "λ1") || !strings.Contains(s, "p2") {
		t.Errorf("String() = %q, missing endpoints", s)
	}
}
