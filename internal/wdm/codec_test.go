package wdm

import (
	"testing"
	"testing/quick"
)

func TestSlotRoundTrip(t *testing.T) {
	f := func(p, w uint8) bool {
		slot := PortWave{Port: Port(p), Wave: Wavelength(w)}
		got, err := ParseSlot(FormatSlot(slot))
		return err == nil && got == slot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseSlotErrors(t *testing.T) {
	for _, s := range []string{"", "1", "1.2.3", "a.b", "1.", ".1", "-1.0", "0.-2"} {
		if _, err := ParseSlot(s); err == nil {
			t.Errorf("ParseSlot(%q) accepted", s)
		}
	}
}

func TestConnectionRoundTrip(t *testing.T) {
	c := Connection{Source: pw(0, 1), Dests: []PortWave{pw(3, 0), pw(2, 1), pw(5, 2)}}
	s := FormatConnection(c)
	if s != "0.1>3.0,2.1,5.2" {
		t.Errorf("FormatConnection = %q", s)
	}
	got, err := ParseConnection(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != c.Source || len(got.Dests) != 3 || got.Dests[1] != pw(2, 1) {
		t.Errorf("round trip = %v", got)
	}
}

func TestParseConnectionErrors(t *testing.T) {
	for _, s := range []string{"", "1.0", "1.0>", ">2.0", "1.0>2", "x>2.0", "1.0>2.0,"} {
		if _, err := ParseConnection(s); err == nil {
			t.Errorf("ParseConnection(%q) accepted", s)
		}
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	a := Assignment{
		{Source: pw(0, 0), Dests: []PortWave{pw(1, 0), pw(2, 0)}},
		{Source: pw(1, 1), Dests: []PortWave{pw(0, 1)}},
	}
	s := FormatAssignment(a)
	got, err := ParseAssignment(s)
	if err != nil {
		t.Fatal(err)
	}
	if FormatAssignment(got) != s {
		t.Errorf("round trip %q != %q", FormatAssignment(got), s)
	}
}

func TestParseAssignmentEmpty(t *testing.T) {
	a, err := ParseAssignment("  ")
	if err != nil || len(a) != 0 {
		t.Errorf("empty assignment: %v, %v", a, err)
	}
}

func TestAssignmentCodecWithValidation(t *testing.T) {
	// A parsed assignment must validate like the original.
	d := Dim{N: 3, K: 2}
	a := Assignment{
		{Source: pw(0, 0), Dests: []PortWave{pw(0, 0), pw(1, 0)}},
		{Source: pw(2, 1), Dests: []PortWave{pw(2, 1)}},
	}
	if err := d.CheckAssignment(MSW, a); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAssignment(FormatAssignment(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckAssignment(MSW, got); err != nil {
		t.Errorf("parsed assignment fails validation: %v", err)
	}
}
