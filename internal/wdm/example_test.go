package wdm_test

import (
	"fmt"

	"repro/internal/wdm"
)

// The three multicast models differ only in which wavelengths one
// connection may combine. A wavelength-shifting multicast is illegal
// under MSW, legal under MSDW when all destinations agree, and always
// legal under MAW.
func ExampleModel() {
	d := wdm.Dim{N: 3, K: 2}
	shift := wdm.Connection{
		Source: wdm.PortWave{Port: 0, Wave: 0},
		Dests: []wdm.PortWave{
			{Port: 1, Wave: 1},
			{Port: 2, Wave: 1},
		},
	}
	for _, m := range wdm.Models {
		fmt.Printf("%-4v admits λ0->λ1 multicast: %v\n", m, d.CheckConnection(m, shift) == nil)
	}
	// Output:
	// MSW  admits λ0->λ1 multicast: false
	// MSDW admits λ0->λ1 multicast: true
	// MAW  admits λ0->λ1 multicast: true
}

// Assignments are validated as a whole: connections may not share source
// or destination slots.
func ExampleDim_CheckAssignment() {
	d := wdm.Dim{N: 2, K: 1}
	a := wdm.Assignment{
		{Source: wdm.PortWave{Port: 0}, Dests: []wdm.PortWave{{Port: 0}, {Port: 1}}},
		{Source: wdm.PortWave{Port: 1}, Dests: []wdm.PortWave{{Port: 1}}},
	}
	fmt.Println(d.CheckAssignment(wdm.MSW, a))
	// Output: wdm: connections 0 and 1 share destination slot (p1,λ0)
}

// The compact text codec round-trips connections for traces and golden
// files.
func ExampleParseConnection() {
	c, err := wdm.ParseConnection("0.0>1.1,2.0")
	if err != nil {
		panic(err)
	}
	fmt.Println(c)
	fmt.Println(wdm.FormatConnection(c))
	// Output:
	// (p0,λ0) -> (p1,λ1) (p2,λ0)
	// 0.0>1.1,2.0
}
