// Package wdm defines the core domain vocabulary of a wavelength-division
// multiplexed (WDM) multicast switching network as modelled by Yang, Wang
// and Qiao: ports, wavelengths, multicast connections, multicast
// assignments, and the three multicast models (MSW, MSDW, MAW) together
// with their admissibility rules.
//
// An N x N k-wavelength network connects N input ports to N output ports;
// every port carries k wavelengths. A multicast connection occupies one
// wavelength at one input port (its source) and one wavelength at each of
// one or more output ports (its destinations). The three models differ
// only in which wavelengths a connection may legally combine:
//
//   - MSW  (Multicast with Same Wavelength): the source and every
//     destination use the same wavelength.
//   - MSDW (Multicast with Same Destination Wavelength): every destination
//     uses one common wavelength; the source may use a different one.
//   - MAW  (Multicast with Any Wavelength): the source and every
//     destination may each use a different wavelength.
package wdm

import (
	"fmt"
	"sort"
	"strings"
)

// Wavelength identifies one of the k wavelengths on a fiber, 0-based.
// The paper writes lambda_1 ... lambda_k; we use 0 ... k-1.
type Wavelength int

// Port identifies an input or output port of the network, 0-based.
type Port int

// PortWave identifies a single wavelength slot at a specific port: the
// unit of resource an individual connection endpoint occupies. An N x N
// k-wavelength network has N*k input slots and N*k output slots.
type PortWave struct {
	Port Port
	Wave Wavelength
}

func (pw PortWave) String() string {
	return fmt.Sprintf("(p%d,λ%d)", pw.Port, pw.Wave)
}

// Index returns the canonical flat index of the slot in a network with k
// wavelengths per port: Port*k + Wave.
func (pw PortWave) Index(k int) int {
	return int(pw.Port)*k + int(pw.Wave)
}

// SlotFromIndex is the inverse of PortWave.Index.
func SlotFromIndex(idx, k int) PortWave {
	return PortWave{Port: Port(idx / k), Wave: Wavelength(idx % k)}
}

// Model selects one of the paper's three multicast models.
type Model int

const (
	// MSW is the Multicast-with-Same-Wavelength model.
	MSW Model = iota
	// MSDW is the Multicast-with-Same-Destination-Wavelength model.
	MSDW
	// MAW is the Multicast-with-Any-Wavelength model.
	MAW
)

// Models lists all three models in increasing order of strength
// (MSW < MSDW < MAW): every connection admissible under an earlier model
// is admissible under every later one.
var Models = []Model{MSW, MSDW, MAW}

func (m Model) String() string {
	switch m {
	case MSW:
		return "MSW"
	case MSDW:
		return "MSDW"
	case MAW:
		return "MAW"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel converts a case-insensitive model name to a Model.
func ParseModel(s string) (Model, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "MSW":
		return MSW, nil
	case "MSDW":
		return MSDW, nil
	case "MAW":
		return MAW, nil
	default:
		return 0, fmt.Errorf("wdm: unknown multicast model %q (want MSW, MSDW or MAW)", s)
	}
}

// Stronger reports whether model m admits every connection that model o
// admits (m is at least as strong as o). MSW < MSDW < MAW.
func (m Model) Stronger(o Model) bool { return m >= o }

// Connection is a single multicast connection: one source slot and a
// non-empty set of destination slots. A unicast connection is the special
// case of exactly one destination.
type Connection struct {
	Source PortWave
	Dests  []PortWave
}

// Fanout returns the number of destination slots.
func (c Connection) Fanout() int { return len(c.Dests) }

func (c Connection) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v ->", c.Source)
	for _, d := range c.Dests {
		fmt.Fprintf(&b, " %v", d)
	}
	return b.String()
}

// Clone returns a deep copy of the connection.
func (c Connection) Clone() Connection {
	return Connection{Source: c.Source, Dests: append([]PortWave(nil), c.Dests...)}
}

// Normalize sorts the destination slots into canonical (port, wave) order.
// It mutates and returns the receiver's copy.
func (c Connection) Normalize() Connection {
	c = c.Clone()
	sort.Slice(c.Dests, func(i, j int) bool {
		if c.Dests[i].Port != c.Dests[j].Port {
			return c.Dests[i].Port < c.Dests[j].Port
		}
		return c.Dests[i].Wave < c.Dests[j].Wave
	})
	return c
}

// Assignment is a set of multicast connections intended to be carried
// simultaneously. In an admissible ("multicast") assignment no two
// connections share a source slot and no two connections share a
// destination slot.
type Assignment []Connection

// Clone returns a deep copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for i, c := range a {
		out[i] = c.Clone()
	}
	return out
}

// TotalFanout returns the total number of destination slots across all
// connections in the assignment.
func (a Assignment) TotalFanout() int {
	total := 0
	for _, c := range a {
		total += c.Fanout()
	}
	return total
}

// IsFull reports whether the assignment is a full-multicast-assignment for
// an N x N k-wavelength network: every one of the N*k output slots is a
// destination of exactly one connection. (Admissibility guarantees "at
// most one"; fullness adds "at least one".)
func (a Assignment) IsFull(n, k int) bool {
	return a.TotalFanout() == n*k
}
