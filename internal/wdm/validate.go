package wdm

import "fmt"

// Dim describes the dimensions of an N x N k-wavelength network.
type Dim struct {
	N int // number of input ports (= number of output ports)
	K int // wavelengths per fiber
}

// Validate checks that the dimensions are positive.
func (d Dim) Validate() error {
	if d.N <= 0 {
		return fmt.Errorf("wdm: N = %d, must be positive", d.N)
	}
	if d.K <= 0 {
		return fmt.Errorf("wdm: k = %d, must be positive", d.K)
	}
	return nil
}

// Slots returns the number of wavelength slots on each side: N*k.
func (d Dim) Slots() int { return d.N * d.K }

// InRangeInput reports whether pw is a valid input slot for the dimensions.
func (d Dim) InRange(pw PortWave) bool {
	return pw.Port >= 0 && int(pw.Port) < d.N && pw.Wave >= 0 && int(pw.Wave) < d.K
}

// CheckConnection verifies that c is a structurally valid connection for
// the network dimensions and admissible under the given multicast model:
//
//   - the source and all destinations are in range;
//   - there is at least one destination;
//   - no two destinations share an output port ("no two wavelengths at the
//     same output port can be used in the same multicast connection");
//   - MSW: all destination wavelengths equal the source wavelength;
//   - MSDW: all destination wavelengths are equal to each other;
//   - MAW: no wavelength restriction.
func (d Dim) CheckConnection(model Model, c Connection) error {
	return d.Shape().CheckConnection(model, c)
}

// CheckAssignment verifies that every connection in a is admissible under
// the model and that the connections are mutually compatible: no shared
// source slot and no shared destination slot ("a wavelength at an output
// port cannot be used in more than one multicast connection
// simultaneously").
func (d Dim) CheckAssignment(model Model, a Assignment) error {
	return d.Shape().CheckAssignment(model, a)
}

// ConverterDemand returns the minimum number of wavelength converters a
// single connection needs under the model, per the paper's Section 2.1:
// 0 under MSW; 1 under MSDW (placed before the splitter); and one per
// destination whose wavelength differs from the source under MAW (at
// least fanout in the paper's worst-case statement).
func ConverterDemand(model Model, c Connection) int {
	switch model {
	case MSW:
		return 0
	case MSDW:
		if len(c.Dests) > 0 && c.Dests[0].Wave != c.Source.Wave {
			return 1
		}
		return 0
	case MAW:
		n := 0
		for _, dst := range c.Dests {
			if dst.Wave != c.Source.Wave {
				n++
			}
		}
		return n
	default:
		return 0
	}
}
