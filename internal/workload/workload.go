// Package workload generates multicast traffic for the WDM switching
// experiments: uniformly random admissible connections and assignments
// under each multicast model, fanout-controlled request streams for the
// dynamic simulations, and the adversarial patterns used to probe the
// nonblocking bounds.
//
// All generators are driven by an explicit *rand.Rand so every experiment
// is reproducible from its seed.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/wdm"
)

// Generator produces admissible multicast traffic for one network.
type Generator struct {
	rng    *rand.Rand
	model  wdm.Model
	dim    wdm.Dim
	fanout FanoutDist
}

// NewGenerator returns a deterministic generator for the given model and
// network dimensions.
func NewGenerator(seed int64, model wdm.Model, dim wdm.Dim) *Generator {
	if err := dim.Validate(); err != nil {
		panic("workload: " + err.Error())
	}
	return &Generator{
		rng:    rand.New(rand.NewSource(seed)),
		model:  model,
		dim:    dim,
		fanout: Geometric{},
	}
}

// Model and Dim report the generator's target.
func (g *Generator) Model() wdm.Model { return g.model }
func (g *Generator) Dim() wdm.Dim     { return g.dim }

// Connection samples a random admissible connection with the given fanout
// from the free source and destination slots, or reports ok = false if the
// free sets cannot support one (e.g. no free destination wavelengths that
// satisfy the model given the chosen source). fanout is clamped to the
// number of reachable destination ports.
//
// The second return is always admissible under the generator's model and
// uses only the provided free slots, so an Add failure on a network under
// test is a genuine blocking event, never an inadmissible request.
func (g *Generator) Connection(freeSrc, freeDst []wdm.PortWave, fanout int) (wdm.Connection, bool) {
	if len(freeSrc) == 0 || len(freeDst) == 0 || fanout < 1 {
		return wdm.Connection{}, false
	}
	src := freeSrc[g.rng.Intn(len(freeSrc))]

	// Candidate destination slots per the model, grouped by output port.
	byPort := make(map[wdm.Port][]wdm.PortWave)
	switch g.model {
	case wdm.MSW:
		for _, d := range freeDst {
			if d.Wave == src.Wave {
				byPort[d.Port] = append(byPort[d.Port], d)
			}
		}
	case wdm.MSDW:
		// Choose the common destination wavelength uniformly among
		// wavelengths that have at least one free slot.
		slotsPerWave := make(map[wdm.Wavelength][]wdm.PortWave)
		for _, d := range freeDst {
			slotsPerWave[d.Wave] = append(slotsPerWave[d.Wave], d)
		}
		waves := make([]wdm.Wavelength, 0, len(slotsPerWave))
		for w := range slotsPerWave {
			waves = append(waves, w)
		}
		if len(waves) == 0 {
			return wdm.Connection{}, false
		}
		sort.Slice(waves, func(i, j int) bool { return waves[i] < waves[j] })
		w := waves[g.rng.Intn(len(waves))]
		for _, d := range slotsPerWave[w] {
			byPort[d.Port] = append(byPort[d.Port], d)
		}
	case wdm.MAW:
		for _, d := range freeDst {
			byPort[d.Port] = append(byPort[d.Port], d)
		}
	default:
		panic(fmt.Sprintf("workload: unknown model %v", g.model))
	}
	if len(byPort) == 0 {
		return wdm.Connection{}, false
	}

	ports := make([]wdm.Port, 0, len(byPort))
	for p := range byPort {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	g.rng.Shuffle(len(ports), func(i, j int) { ports[i], ports[j] = ports[j], ports[i] })
	if fanout > len(ports) {
		fanout = len(ports)
	}
	c := wdm.Connection{Source: src}
	for _, p := range ports[:fanout] {
		slots := byPort[p]
		c.Dests = append(c.Dests, slots[g.rng.Intn(len(slots))])
	}
	return c.Normalize(), true
}

// Fanout samples a fanout in [1, maxFanout] from the generator's
// configured distribution (SetFanout; Geometric with P = 0.5 by
// default — most multicasts are small, occasional large ones, matching
// the mix the paper's motivating applications imply).
func (g *Generator) Fanout(maxFanout int) int {
	return g.fanout.Sample(g.rng, maxFanout)
}

// Assignment samples a random admissible assignment. When full is true
// every output slot is used; otherwise each output slot independently
// stays idle with probability idle. The construction mirrors the pairing
// functions of the capacity analysis, so the sample space is exactly the
// assignment space counted by Lemmas 1-3 (the distribution is uniform for
// MSW and MAW; for MSDW it is uniform over pairing-completion orders,
// which reaches every assignment with positive probability).
func (g *Generator) Assignment(full bool, idle float64) wdm.Assignment {
	n, k := g.dim.N, g.dim.K
	slots := n * k
	f := make([]int, slots)
	for i := range f {
		f[i] = -1
	}
	waveOf := make([]int, slots) // MSDW: plane used per source, -1 = none
	for i := range waveOf {
		waveOf[i] = -1
	}

	order := g.rng.Perm(slots)
	for _, out := range order {
		if !full && g.rng.Float64() < idle {
			continue
		}
		w := out % k
		var candidates []int
		switch g.model {
		case wdm.MSW:
			// Any input port, same wavelength.
			for q := 0; q < n; q++ {
				candidates = append(candidates, q*k+w)
			}
		case wdm.MSDW:
			for s := 0; s < slots; s++ {
				if waveOf[s] == -1 || waveOf[s] == w {
					candidates = append(candidates, s)
				}
			}
		case wdm.MAW:
			// Any input slot not already used by a sibling slot of the
			// same output port.
			used := make(map[int]bool, k)
			port := out / k
			for ww := 0; ww < k; ww++ {
				if sib := f[port*k+ww]; sib >= 0 {
					used[sib] = true
				}
			}
			for s := 0; s < slots; s++ {
				if !used[s] {
					candidates = append(candidates, s)
				}
			}
		}
		if len(candidates) == 0 {
			continue
		}
		s := candidates[g.rng.Intn(len(candidates))]
		f[out] = s
		waveOf[s] = w
	}

	// Convert the pairing to connections (grouped by source).
	bySource := make(map[int][]wdm.PortWave)
	for out, in := range f {
		if in < 0 {
			continue
		}
		bySource[in] = append(bySource[in], wdm.SlotFromIndex(out, k))
	}
	sources := make([]int, 0, len(bySource))
	for s := range bySource {
		sources = append(sources, s)
	}
	sort.Ints(sources)
	a := make(wdm.Assignment, 0, len(sources))
	for _, s := range sources {
		a = append(a, wdm.Connection{Source: wdm.SlotFromIndex(s, k), Dests: bySource[s]}.Normalize())
	}
	return a
}

// HotModule generates the adversarial unicast prefix used to probe the
// MSW-dominant nonblocking bounds: count connections, all sourced on
// wavelength plane, each from a distinct input port, each targeting a
// distinct slot of one output module of nPerModule ports. It returns the
// connections plus one extra "probe" request to a remaining free slot of
// the module, which a sufficient middle-stage count must still route.
func HotModule(dim wdm.Dim, nPerModule, module, count int, plane wdm.Wavelength) (prefix []wdm.Connection, probe wdm.Connection, err error) {
	if count+1 > nPerModule*dim.K {
		return nil, wdm.Connection{}, fmt.Errorf("workload: module has only %d slots, need %d", nPerModule*dim.K, count+1)
	}
	if count+1 > dim.N {
		return nil, wdm.Connection{}, fmt.Errorf("workload: only %d sources on one plane, need %d", dim.N, count+1)
	}
	slot := func(i int) wdm.PortWave {
		return wdm.PortWave{
			Port: wdm.Port(module*nPerModule + i/dim.K),
			Wave: wdm.Wavelength(i % dim.K),
		}
	}
	for i := 0; i < count; i++ {
		prefix = append(prefix, wdm.Connection{
			Source: wdm.PortWave{Port: wdm.Port(i), Wave: plane},
			Dests:  []wdm.PortWave{slot(i)},
		})
	}
	probe = wdm.Connection{
		Source: wdm.PortWave{Port: wdm.Port(count), Wave: plane},
		Dests:  []wdm.PortWave{slot(count)},
	}
	return prefix, probe, nil
}
