package workload

import (
	"testing"

	"repro/internal/wdm"
)

func pw(p, w int) wdm.PortWave {
	return wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
}

func allSlots(n, k int) []wdm.PortWave {
	out := make([]wdm.PortWave, 0, n*k)
	for p := 0; p < n; p++ {
		for w := 0; w < k; w++ {
			out = append(out, pw(p, w))
		}
	}
	return out
}

func TestConnectionAlwaysAdmissible(t *testing.T) {
	d := wdm.Dim{N: 4, K: 3}
	for _, m := range wdm.Models {
		g := NewGenerator(1, m, d)
		src, dst := allSlots(d.N, d.K), allSlots(d.N, d.K)
		for i := 0; i < 500; i++ {
			c, ok := g.Connection(src, dst, g.Fanout(d.N))
			if !ok {
				t.Fatalf("%v: generator gave up with full free sets", m)
			}
			if err := d.CheckConnection(m, c); err != nil {
				t.Fatalf("%v: inadmissible connection %v: %v", m, c, err)
			}
		}
	}
}

func TestConnectionUsesOnlyFreeSlots(t *testing.T) {
	d := wdm.Dim{N: 4, K: 2}
	g := NewGenerator(2, wdm.MAW, d)
	freeSrc := []wdm.PortWave{pw(1, 0), pw(3, 1)}
	freeDst := []wdm.PortWave{pw(0, 1), pw(2, 0), pw(2, 1)}
	srcSet := map[wdm.PortWave]bool{}
	for _, s := range freeSrc {
		srcSet[s] = true
	}
	dstSet := map[wdm.PortWave]bool{}
	for _, s := range freeDst {
		dstSet[s] = true
	}
	for i := 0; i < 300; i++ {
		c, ok := g.Connection(freeSrc, freeDst, 2)
		if !ok {
			t.Fatal("generator gave up")
		}
		if !srcSet[c.Source] {
			t.Fatalf("source %v not in the free set", c.Source)
		}
		for _, dd := range c.Dests {
			if !dstSet[dd] {
				t.Fatalf("destination %v not in the free set", dd)
			}
		}
	}
}

func TestConnectionRespectsModelWithConstrainedSlots(t *testing.T) {
	d := wdm.Dim{N: 3, K: 2}
	// Only λ1 destinations are free; an MSW source on λ0 can't multicast.
	g := NewGenerator(3, wdm.MSW, d)
	freeSrc := []wdm.PortWave{pw(0, 0)}
	freeDst := []wdm.PortWave{pw(1, 1), pw(2, 1)}
	if _, ok := g.Connection(freeSrc, freeDst, 1); ok {
		t.Error("MSW generator produced a connection with no same-wavelength slots")
	}
	// MSDW can: it shifts to λ1 for all destinations.
	g2 := NewGenerator(3, wdm.MSDW, d)
	c, ok := g2.Connection(freeSrc, freeDst, 2)
	if !ok {
		t.Fatal("MSDW generator gave up")
	}
	if err := d.CheckConnection(wdm.MSDW, c); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionEmptyInputs(t *testing.T) {
	g := NewGenerator(1, wdm.MAW, wdm.Dim{N: 2, K: 1})
	if _, ok := g.Connection(nil, allSlots(2, 1), 1); ok {
		t.Error("connection from no sources")
	}
	if _, ok := g.Connection(allSlots(2, 1), nil, 1); ok {
		t.Error("connection to no destinations")
	}
	if _, ok := g.Connection(allSlots(2, 1), allSlots(2, 1), 0); ok {
		t.Error("connection with zero fanout")
	}
}

func TestFanoutRange(t *testing.T) {
	g := NewGenerator(4, wdm.MAW, wdm.Dim{N: 8, K: 1})
	sawLarge := false
	for i := 0; i < 1000; i++ {
		f := g.Fanout(8)
		if f < 1 || f > 8 {
			t.Fatalf("fanout %d out of range", f)
		}
		if f > 2 {
			sawLarge = true
		}
	}
	if !sawLarge {
		t.Error("fanout distribution never exceeded 2 in 1000 draws")
	}
	if g.Fanout(1) != 1 || g.Fanout(0) != 1 {
		t.Error("degenerate maxFanout not clamped to 1")
	}
}

func TestAssignmentAdmissible(t *testing.T) {
	d := wdm.Dim{N: 4, K: 2}
	for _, m := range wdm.Models {
		g := NewGenerator(5, m, d)
		for i := 0; i < 200; i++ {
			a := g.Assignment(false, 0.3)
			if err := d.CheckAssignment(m, a); err != nil {
				t.Fatalf("%v: inadmissible assignment %v: %v", m, a, err)
			}
		}
	}
}

func TestFullAssignmentCoversEverySlot(t *testing.T) {
	d := wdm.Dim{N: 4, K: 2}
	for _, m := range wdm.Models {
		g := NewGenerator(6, m, d)
		for i := 0; i < 100; i++ {
			a := g.Assignment(true, 0)
			if err := d.CheckAssignment(m, a); err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			if !a.IsFull(d.N, d.K) {
				t.Fatalf("%v: full assignment covers %d of %d slots", m, a.TotalFanout(), d.Slots())
			}
		}
	}
}

func TestAssignmentVariety(t *testing.T) {
	// Different draws should differ (the generator isn't stuck).
	g := NewGenerator(7, wdm.MAW, wdm.Dim{N: 3, K: 2})
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		a := g.Assignment(false, 0.3)
		key := ""
		for _, c := range a {
			key += c.String() + ";"
		}
		seen[key] = true
	}
	if len(seen) < 25 {
		t.Errorf("only %d distinct assignments in 50 draws", len(seen))
	}
}

func TestDeterminismBySeed(t *testing.T) {
	d := wdm.Dim{N: 4, K: 2}
	a1 := NewGenerator(42, wdm.MAW, d).Assignment(false, 0.2)
	a2 := NewGenerator(42, wdm.MAW, d).Assignment(false, 0.2)
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different assignment sizes %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].String() != a2[i].String() {
			t.Fatalf("same seed, different assignments at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
}

func TestHotModule(t *testing.T) {
	d := wdm.Dim{N: 16, K: 4}
	prefix, probe, err := HotModule(d, 4, 0, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prefix) != 13 {
		t.Fatalf("prefix has %d connections, want 13", len(prefix))
	}
	// All sourced on plane 0, distinct ports; all dests in module 0
	// (ports 0-3), distinct slots.
	seenSrc := map[wdm.Port]bool{}
	seenDst := map[wdm.PortWave]bool{}
	all := append(append([]wdm.Connection{}, prefix...), probe)
	for _, c := range all {
		if c.Source.Wave != 0 {
			t.Errorf("source %v off plane", c.Source)
		}
		if seenSrc[c.Source.Port] {
			t.Errorf("source port %d reused", c.Source.Port)
		}
		seenSrc[c.Source.Port] = true
		for _, dd := range c.Dests {
			if int(dd.Port) >= 4 {
				t.Errorf("destination %v outside module 0", dd)
			}
			if seenDst[dd] {
				t.Errorf("destination slot %v reused", dd)
			}
			seenDst[dd] = true
		}
	}
	if err := d.CheckAssignment(wdm.MAW, all); err != nil {
		t.Fatalf("hot-module traffic inadmissible: %v", err)
	}
}

func TestHotModuleBounds(t *testing.T) {
	d := wdm.Dim{N: 4, K: 2}
	if _, _, err := HotModule(d, 2, 0, 4, 0); err == nil {
		t.Error("accepted more connections than module slots")
	}
	if _, _, err := HotModule(wdm.Dim{N: 3, K: 4}, 3, 0, 3, 0); err == nil {
		t.Error("accepted more plane sources than input ports")
	}
}
