package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/wdm"
)

// TestGeometricDefaultMatchesHistoricalFanout freezes the draw-for-draw
// sampling order: the parameterized Geometric{} must replay the exact
// fanout sequence the hardcoded 0.5 loop produced, so every seeded
// experiment in the repository reproduces its historical stream.
func TestGeometricDefaultMatchesHistoricalFanout(t *testing.T) {
	legacy := func(rng *rand.Rand, max int) int {
		if max <= 1 {
			return 1
		}
		f := 1
		for f < max && rng.Float64() < 0.5 {
			f++
		}
		return f
	}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	d := Geometric{}
	for i := 0; i < 10000; i++ {
		want := legacy(a, 8)
		got := d.Sample(b, 8)
		if got != want {
			t.Fatalf("draw %d: Geometric{}.Sample = %d, legacy loop = %d", i, got, want)
		}
	}
}

func TestGeneratorSetFanout(t *testing.T) {
	g := NewGenerator(1, wdm.MSW, wdm.Dim{N: 8, K: 2})
	if got := g.FanoutDist().String(); got != "geometric(p=0.5)" {
		t.Fatalf("default fanout dist = %s, want geometric(p=0.5)", got)
	}
	g.SetFanout(TruncZipf{S: 2})
	if got := g.FanoutDist().String(); got != "zipf(s=2)" {
		t.Fatalf("after SetFanout: %s", got)
	}
	g.SetFanout(nil)
	if got := g.FanoutDist().String(); got != "geometric(p=0.5)" {
		t.Fatalf("nil SetFanout should restore the default, got %s", got)
	}
}

// TestFanoutDistributions sanity-checks range and shape of each
// distribution on a seeded stream.
func TestFanoutDistributions(t *testing.T) {
	const max, draws = 16, 50000
	dists := []FanoutDist{Geometric{P: 0.3}, Geometric{P: 0.8}, TruncZipf{S: 1.3}, UniformFanout{}}
	for _, d := range dists {
		rng := rand.New(rand.NewSource(7))
		counts := make([]int, max+1)
		sum := 0
		for i := 0; i < draws; i++ {
			f := d.Sample(rng, max)
			if f < 1 || f > max {
				t.Fatalf("%s: fanout %d out of [1, %d]", d, f, max)
			}
			counts[f]++
			sum += f
		}
		if d.Sample(rng, 1) != 1 || d.Sample(rng, 0) != 1 {
			t.Fatalf("%s: max <= 1 must return 1", d)
		}
		// Monotone-decreasing mass for the skewed families (ignoring the
		// truncation pile-up at max for geometric with high P).
		switch dd := d.(type) {
		case TruncZipf:
			for f := 1; f < max; f++ {
				if counts[f] < counts[f+1] && counts[f+1]-counts[f] > draws/100 {
					t.Fatalf("%s: mass increases %d→%d (%d < %d)", d, f, f+1, counts[f], counts[f+1])
				}
			}
		case Geometric:
			// Mean of the untruncated geometric is 1/(1-P); truncation only
			// lowers it.
			mean := float64(sum) / draws
			if upper := 1/(1-dd.P) + 0.1; mean > upper {
				t.Fatalf("%s: mean %.3f exceeds untruncated mean %.3f", d, mean, upper)
			}
		}
	}
	// Uniform: roughly flat across [1, max].
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, max+1)
	for i := 0; i < draws; i++ {
		counts[UniformFanout{}.Sample(rng, max)]++
	}
	want := float64(draws) / max
	for f := 1; f <= max; f++ {
		if dev := math.Abs(float64(counts[f]) - want); dev > want*0.15 {
			t.Fatalf("uniform: count[%d] = %d, want ~%.0f", f, counts[f], want)
		}
	}
}
