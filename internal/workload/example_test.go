package workload_test

import (
	"fmt"

	"repro/internal/wdm"
	"repro/internal/workload"
)

// Deterministic traffic patterns instantiate classic stress cases as
// admissible assignments.
func ExamplePatternAssignment() {
	a, err := workload.PatternAssignment(workload.Broadcast, wdm.Dim{N: 4, K: 2}, 0)
	if err != nil {
		panic(err)
	}
	for _, c := range a {
		fmt.Println(wdm.FormatConnection(c))
	}
	// Output:
	// 0.0>0.0,1.0,2.0,3.0
	// 1.1>0.1,1.1,2.1,3.1
}

// The random generator only emits connections that are admissible under
// its model and drawn from the free slots it is given.
func ExampleGenerator_Connection() {
	d := wdm.Dim{N: 4, K: 2}
	g := workload.NewGenerator(7, wdm.MSW, d)
	var free []wdm.PortWave
	for p := 0; p < d.N; p++ {
		for w := 0; w < d.K; w++ {
			free = append(free, wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)})
		}
	}
	c, ok := g.Connection(free, free, 3)
	fmt.Println(ok, d.CheckConnection(wdm.MSW, c) == nil)
	// Output: true true
}
