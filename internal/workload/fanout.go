package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// FanoutDist samples multicast fanouts (destination port counts) in
// [1, max]. Implementations must be pure functions of the rng stream —
// no hidden state — so a seeded generator replays the same fanout
// sequence every run.
type FanoutDist interface {
	// Sample draws one fanout in [1, max]; max <= 1 always returns 1.
	Sample(rng *rand.Rand, max int) int
	// String names the distribution with its parameters, for artifact
	// metadata ("geometric(p=0.5)").
	String() string
}

// Geometric grows the fanout from 1, continuing with probability P at
// each step: P(f) ∝ P^(f-1), truncated at max. Small P keeps
// multicasts small; P = 0.5 is the historical default mix (most
// multicasts small, occasional large ones) the paper's motivating
// applications imply. Out-of-range P falls back to 0.5.
//
// The draw-for-draw sampling order is frozen: it consumes one Float64
// per growth decision, exactly as Generator.Fanout always has, so
// existing seeds reproduce their historical request streams.
type Geometric struct {
	P float64
}

func (d Geometric) Sample(rng *rand.Rand, max int) int {
	if max <= 1 {
		return 1
	}
	p := d.P
	if p <= 0 || p >= 1 {
		p = 0.5
	}
	f := 1
	for f < max && rng.Float64() < p {
		f++
	}
	return f
}

func (d Geometric) String() string {
	p := d.P
	if p <= 0 || p >= 1 {
		p = 0.5
	}
	return fmt.Sprintf("geometric(p=%g)", p)
}

// TruncZipf samples fanouts with P(f) ∝ 1/f^S truncated to [1, max] —
// a heavier tail than the geometric: most sessions are unicast-ish but
// large multicast groups appear at a polynomial, not exponential,
// rate. S <= 0 falls back to 1.3. One Float64 is consumed per sample
// (CDF inversion).
type TruncZipf struct {
	S float64
}

func (d TruncZipf) s() float64 {
	if d.S <= 0 {
		return 1.3
	}
	return d.S
}

func (d TruncZipf) Sample(rng *rand.Rand, max int) int {
	if max <= 1 {
		return 1
	}
	s := d.s()
	var total float64
	for f := 1; f <= max; f++ {
		total += math.Pow(float64(f), -s)
	}
	u := rng.Float64() * total
	var cum float64
	for f := 1; f <= max; f++ {
		cum += math.Pow(float64(f), -s)
		if u < cum {
			return f
		}
	}
	return max
}

func (d TruncZipf) String() string { return fmt.Sprintf("zipf(s=%g)", d.s()) }

// UniformFanout samples uniformly in [1, max] — the flat mix used by
// stress runs that want large multicasts to be common.
type UniformFanout struct{}

func (UniformFanout) Sample(rng *rand.Rand, max int) int {
	if max <= 1 {
		return 1
	}
	return 1 + rng.Intn(max)
}

func (UniformFanout) String() string { return "uniform" }

// SetFanout replaces the generator's fanout distribution (Geometric
// with P = 0.5 by default). A nil dist restores the default.
func (g *Generator) SetFanout(d FanoutDist) {
	if d == nil {
		d = Geometric{}
	}
	g.fanout = d
}

// FanoutDist reports the generator's current fanout distribution.
func (g *Generator) FanoutDist() FanoutDist { return g.fanout }
