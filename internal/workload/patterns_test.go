package workload

import (
	"testing"

	"repro/internal/wdm"
)

func TestShiftPattern(t *testing.T) {
	d := wdm.Dim{N: 4, K: 2}
	a, err := PatternAssignment(Shift, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != d.Slots() {
		t.Fatalf("%d connections, want %d", len(a), d.Slots())
	}
	if !a.IsFull(d.N, d.K) {
		t.Error("shift pattern is not a full assignment")
	}
	for _, c := range a {
		want := wdm.Port((int(c.Source.Port) + 1) % d.N)
		if c.Dests[0].Port != want || c.Dests[0].Wave != c.Source.Wave {
			t.Errorf("connection %v: want destination port %d on same wave", c, want)
		}
	}
}

func TestTransposePattern(t *testing.T) {
	d := wdm.Dim{N: 8, K: 1}
	a, err := PatternAssignment(Transpose, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsFull(d.N, d.K) {
		t.Error("transpose with coprime stride should be a permutation")
	}
	// Stride sharing a factor with N is rejected.
	if _, err := PatternAssignment(Transpose, d, 2); err == nil {
		t.Error("stride 2 with N=8 accepted")
	}
}

func TestHotspotPattern(t *testing.T) {
	d := wdm.Dim{N: 8, K: 2}
	a, err := PatternAssignment(Hotspot, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a {
		if int(c.Dests[0].Port) >= 2 {
			t.Errorf("connection %v outside the hot region", c)
		}
	}
	if len(a) != 2*d.K {
		t.Errorf("%d connections, want %d (hot slots)", len(a), 2*d.K)
	}
}

func TestBroadcastPattern(t *testing.T) {
	d := wdm.Dim{N: 6, K: 3}
	a, err := PatternAssignment(Broadcast, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != d.K {
		t.Fatalf("%d broadcasts, want k=%d", len(a), d.K)
	}
	for _, c := range a {
		if c.Fanout() != d.N {
			t.Errorf("broadcast fanout %d, want %d", c.Fanout(), d.N)
		}
	}
	// Broadcast with k > N clamps to N planes.
	small, err := PatternAssignment(Broadcast, wdm.Dim{N: 2, K: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 2 {
		t.Errorf("clamped broadcast has %d connections, want 2", len(small))
	}
}

func TestPatternsRouteOnSufficientNetworks(t *testing.T) {
	// Integration: every pattern must route on theorem-sized hardware.
	// (The multistage integration lives in the multistage tests; here we
	// validate patterns against the model rules for every dimension we
	// generate.)
	dims := []wdm.Dim{{N: 4, K: 1}, {N: 6, K: 2}, {N: 8, K: 4}}
	for _, d := range dims {
		for _, p := range []Pattern{Shift, Hotspot, Broadcast} {
			if _, err := PatternAssignment(p, d, 3); err != nil {
				t.Errorf("%v on N=%d k=%d: %v", p, d.N, d.K, err)
			}
		}
	}
}

func TestPatternValidation(t *testing.T) {
	if _, err := PatternAssignment(Shift, wdm.Dim{N: 0, K: 1}, 1); err == nil {
		t.Error("invalid dim accepted")
	}
	if _, err := PatternAssignment(Pattern(99), wdm.Dim{N: 4, K: 1}, 1); err == nil {
		t.Error("unknown pattern accepted")
	}
	if Pattern(99).String() == "" || Shift.String() != "shift" {
		t.Error("pattern names wrong")
	}
}
