package workload

import (
	"fmt"

	"repro/internal/wdm"
)

// Pattern names a deterministic traffic pattern from the classic
// interconnection-network repertoire, instantiated as a full set of
// simultaneous connections (one per input slot where defined). Patterns
// give the experiments reproducible, structured stress cases alongside
// the random generator: shifts exercise inter-module links unevenly,
// transpose crosses every module pair, hotspot concentrates on one
// output module, broadcast maximizes fanout.
type Pattern int

const (
	// Shift sends input slot (p, w) to output slot (p+s mod N, w) for a
	// configurable stride s.
	Shift Pattern = iota
	// Transpose sends port p to port (p*stride mod N) — with stride near
	// sqrt(N) this is the classic matrix-transpose-like permutation that
	// maximizes module crossings.
	Transpose
	// Hotspot directs every wavelength plane's traffic at the slots of
	// one "hot" port region: source (p, w) targets port (w*stride+p) mod
	// region ... concentrated on the first `region` ports.
	Hotspot
	// Broadcast makes k sources (ports 0..k-1, wavelength = port index)
	// each multicast to every port on their wavelength — the maximal-
	// fanout pattern the videoconference example builds on.
	Broadcast
)

func (p Pattern) String() string {
	switch p {
	case Shift:
		return "shift"
	case Transpose:
		return "transpose"
	case Hotspot:
		return "hotspot"
	case Broadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// PatternAssignment instantiates the pattern on an N x N k-wavelength
// network as an admissible MSW assignment (every pattern here keeps the
// wavelength end to end, so it is admissible under all three models).
// stride parameterizes Shift/Transpose/Hotspot; it is ignored by
// Broadcast. The result is validated before being returned.
func PatternAssignment(p Pattern, dim wdm.Dim, stride int) (wdm.Assignment, error) {
	if err := dim.Validate(); err != nil {
		return nil, err
	}
	if stride <= 0 {
		stride = 1
	}
	var a wdm.Assignment
	switch p {
	case Shift:
		for q := 0; q < dim.N; q++ {
			for w := 0; w < dim.K; w++ {
				a = append(a, wdm.Connection{
					Source: wdm.PortWave{Port: wdm.Port(q), Wave: wdm.Wavelength(w)},
					Dests:  []wdm.PortWave{{Port: wdm.Port((q + stride) % dim.N), Wave: wdm.Wavelength(w)}},
				})
			}
		}
	case Transpose:
		// A permutation only when gcd(stride, N) = 1; otherwise several
		// sources would collide on one destination, so reject.
		if gcd(stride, dim.N) != 1 {
			return nil, fmt.Errorf("workload: transpose stride %d shares a factor with N=%d", stride, dim.N)
		}
		for q := 0; q < dim.N; q++ {
			for w := 0; w < dim.K; w++ {
				a = append(a, wdm.Connection{
					Source: wdm.PortWave{Port: wdm.Port(q), Wave: wdm.Wavelength(w)},
					Dests:  []wdm.PortWave{{Port: wdm.Port((q * stride) % dim.N), Wave: wdm.Wavelength(w)}},
				})
			}
		}
	case Hotspot:
		// The first `stride` ports are hot: source (q, w) targets hot
		// port (q mod stride). Each hot slot can serve one connection, so
		// only the first `stride` sources per plane participate.
		if stride > dim.N {
			stride = dim.N
		}
		for q := 0; q < stride; q++ {
			for w := 0; w < dim.K; w++ {
				a = append(a, wdm.Connection{
					Source: wdm.PortWave{Port: wdm.Port(q), Wave: wdm.Wavelength(w)},
					Dests:  []wdm.PortWave{{Port: wdm.Port(q % stride), Wave: wdm.Wavelength(w)}},
				})
			}
		}
	case Broadcast:
		planes := dim.K
		if planes > dim.N {
			planes = dim.N
		}
		for w := 0; w < planes; w++ {
			c := wdm.Connection{Source: wdm.PortWave{Port: wdm.Port(w), Wave: wdm.Wavelength(w)}}
			for q := 0; q < dim.N; q++ {
				c.Dests = append(c.Dests, wdm.PortWave{Port: wdm.Port(q), Wave: wdm.Wavelength(w)})
			}
			a = append(a, c)
		}
	default:
		return nil, fmt.Errorf("workload: unknown pattern %v", p)
	}
	if err := dim.CheckAssignment(wdm.MSW, a); err != nil {
		return nil, fmt.Errorf("workload: pattern %v produced inadmissible assignment: %w", p, err)
	}
	return a, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
