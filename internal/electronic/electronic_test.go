package electronic

import (
	"testing"

	"repro/internal/capacity"
	"repro/internal/crossbar"
	"repro/internal/wdm"
)

func pw(p, w int) wdm.PortWave {
	return wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
}

func TestCrossbarShapeAndCost(t *testing.T) {
	s := Crossbar(3, 2) // a 6x6 electronic crossbar
	if sh := s.Shape(); sh.In != 6 || sh.Out != 6 || sh.K != 1 {
		t.Fatalf("shape = %+v, want 6x6 k=1", sh)
	}
	c := s.Cost()
	if c.Crosspoints != 36 {
		t.Errorf("crosspoints = %d, want (Nk)^2 = 36", c.Crosspoints)
	}
	if c.Converters != 0 {
		t.Errorf("electronic network has %d converters", c.Converters)
	}
}

func TestEmbeddingPreservesAdmissibility(t *testing.T) {
	// Every WDM assignment (strongest model, MAW) embeds into an
	// admissible electronic assignment — checked over the full enumeration
	// of a small network.
	d := wdm.Dim{N: 2, K: 2}
	count := 0
	capacity.EnumerateAssignments(wdm.MAW, d, false, func(a wdm.Assignment) bool {
		if err := CheckEmbedding(a, d.N, d.K); err != nil {
			t.Fatalf("assignment %v: %v", a, err)
		}
		count++
		return true
	})
	if count == 0 {
		t.Fatal("enumerated nothing")
	}
}

func TestEmbeddedAssignmentsRoute(t *testing.T) {
	s := Crossbar(2, 2)
	a := wdm.Assignment{
		{Source: pw(0, 0), Dests: []wdm.PortWave{pw(0, 1), pw(1, 0)}},
		{Source: pw(1, 1), Dests: []wdm.PortWave{pw(0, 0)}},
	}
	if _, err := s.AddAssignment(EmbedAssignment(a, 2)); err != nil {
		t.Fatalf("embedded assignment did not route: %v", err)
	}
	if _, err := s.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestElectronicStrictlyStronger(t *testing.T) {
	// The converse embedding fails: an electronic connection addressing
	// wires 2 and 3 (= WDM slots (1,λ0) and (1,λ1)) is admissible
	// electronically but maps to two wavelengths on one WDM output port,
	// which no WDM model allows.
	n, k := 2, 2
	el := CrossbarLite(n, k)
	c := wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(2, 0), pw(3, 0)}}
	if _, err := el.Add(c); err != nil {
		t.Fatalf("electronic network rejected %v: %v", c, err)
	}
	// The same endpoints in WDM coordinates: both dests on output port 1.
	wdmConn := wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(1, 0), pw(1, 1)}}
	d := wdm.Dim{N: n, K: k}
	for _, m := range wdm.Models {
		if err := d.CheckConnection(m, wdmConn); err == nil {
			t.Errorf("WDM model %v accepted two wavelengths on one output port", m)
		}
	}
}

func TestCapacityRatioAboveOne(t *testing.T) {
	for _, m := range wdm.Models {
		s := CapacityRatio(m, 3, 2, 64)
		// All ratios must be > 1; a crude check on the scientific form:
		// it must not start with "0".
		if s == "" || s[0] == '0' || s[0] == '-' {
			t.Errorf("CapacityRatio(%v) = %q, want > 1", m, s)
		}
	}
	// MSW loses the most capacity, MAW the least.
	// (Verified numerically through the capacity package elsewhere; here
	// we just ensure the helper emits parseable text.)
}

func TestThreeStageRoutesTraffic(t *testing.T) {
	net, err := ThreeStage(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate: a full permutation of 16 unicasts must route (the
	// electronic nonblocking bound covers multicast, so unicast is easy).
	for i := 0; i < 16; i++ {
		c := wdm.Connection{Source: pw(i, 0), Dests: []wdm.PortWave{pw((i*5)%16, 0)}}
		if _, err := net.Add(c); err != nil {
			t.Fatalf("unicast %d: %v", i, err)
		}
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedSlotIsDense(t *testing.T) {
	k := 3
	seen := map[wdm.Port]bool{}
	for p := 0; p < 4; p++ {
		for w := 0; w < k; w++ {
			e := EmbedSlot(pw(p, w), k)
			if e.Wave != 0 {
				t.Fatalf("embedded wave %d != 0", e.Wave)
			}
			if seen[e.Port] {
				t.Fatalf("port %d hit twice", e.Port)
			}
			seen[e.Port] = true
		}
	}
	if len(seen) != 12 {
		t.Errorf("%d distinct ports, want 12", len(seen))
	}
}

func TestAnyCapacityAndCheckEmbedding(t *testing.T) {
	if got := AnyCapacity(2, 2); got.String() != "625" {
		t.Errorf("AnyCapacity(2,2) = %s, want (Nk+1)^(Nk) = 625", got)
	}
	// CheckEmbedding flags an assignment that is inadmissible after
	// embedding (shared destination slot).
	bad := wdm.Assignment{
		{Source: pw(0, 0), Dests: []wdm.PortWave{pw(1, 0)}},
		{Source: pw(1, 0), Dests: []wdm.PortWave{pw(1, 0)}},
	}
	if err := CheckEmbedding(bad, 2, 2); err == nil {
		t.Error("conflicting embedding accepted")
	}
	good := wdm.Assignment{
		{Source: pw(0, 0), Dests: []wdm.PortWave{pw(1, 0), pw(1, 1)}}, // two waves, one port: fine electronically
	}
	if err := CheckEmbedding(good, 2, 2); err != nil {
		t.Errorf("electronically valid embedding rejected: %v", err)
	}
}

func TestCostComparisonMAWVsElectronic(t *testing.T) {
	// Section 2.3: an MAW crossbar has the same k^2 N^2 crosspoint count
	// as the electronic (Nk)^2 crossbar, yet strictly lower capacity —
	// the cost of staying optical without O/E/O conversion.
	n, k := 4, 3
	maw := crossbar.CostFormula(wdm.MAW, wdm.Shape{In: n, Out: n, K: k})
	el := CrossbarLite(n, k).Cost()
	if maw.Crosspoints != el.Crosspoints {
		t.Errorf("MAW crosspoints %d != electronic %d", maw.Crosspoints, el.Crosspoints)
	}
	if capacity.FullMAW(int64(n), int64(k)).Cmp(FullCapacity(n, k)) >= 0 {
		t.Error("MAW capacity not strictly below electronic")
	}
}
