package electronic_test

import (
	"fmt"

	"repro/internal/capacity"
	"repro/internal/electronic"
	"repro/internal/wdm"
)

// Section 2.2's point: an N x N k-wavelength WDM network is *not* an
// Nk x Nk electronic network — the electronic capacity strictly
// dominates even the strongest WDM model for k > 1.
func ExampleFullCapacity() {
	n, k := 3, 2
	fmt.Println("electronic:", electronic.FullCapacity(n, k))
	fmt.Println("MAW:       ", capacity.FullMAW(int64(n), int64(k)))
	fmt.Println("ratio:     ", electronic.CapacityRatio(wdm.MAW, n, k, 64))
	// Output:
	// electronic: 46656
	// MAW:        27000
	// ratio:      1.7280e+00
}
