// Package electronic provides the electronic-network baselines the paper
// compares its WDM designs against:
//
//   - an Nk x Nk single-wavelength multicast crossbar (the network a naive
//     reading might consider "equivalent" to an N x N k-wavelength WDM
//     switch — Section 2.2 proves it is strictly more capable);
//   - the three-stage electronic multicast network of Yang and Masson
//     [14], whose nonblocking condition m > (n-1)(x + r^(1/x)) Theorem 1
//     extends to the WDM setting.
//
// Electronic networks are modelled as 1-wavelength WDM networks: a
// traditional switching network is exactly the k = 1 special case (the
// paper makes the same identification), so the crossbar and multistage
// machinery is reused with k = 1 and no converters appear anywhere.
package electronic

import (
	"fmt"
	"math/big"

	"repro/internal/capacity"
	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/wdm"
)

// Crossbar returns an Nk x Nk electronic multicast crossbar (a
// 1-wavelength MSW switch). Its capacity is (Nk)^(Nk) full /
// (Nk+1)^(Nk) any, strictly above every WDM model's for k > 1.
func Crossbar(n, k int) *crossbar.Switch {
	return crossbar.New(wdm.MSW, wdm.Dim{N: n * k, K: 1})
}

// CrossbarLite returns the same switch without the element graph.
func CrossbarLite(n, k int) *crossbar.Switch {
	return crossbar.NewLite(wdm.MSW, wdm.Shape{In: n * k, Out: n * k, K: 1})
}

// ThreeStage returns the Yang-Masson electronic three-stage multicast
// network with nTotal ports split into r outer modules and the minimal
// middle-stage count from m > (n-1)(x + r^(1/x)).
func ThreeStage(nTotal, r int) (*multistage.Network, error) {
	return multistage.New(multistage.Params{
		N: nTotal, K: 1, R: r, Model: wdm.MSW,
		Construction: multistage.MSWDominant,
	})
}

// FullCapacity and AnyCapacity return the electronic multicast capacities
// (the k = 1 closed forms applied to an Nk x Nk network).
func FullCapacity(n, k int) *big.Int { return capacity.FullElectronic(int64(n), int64(k)) }
func AnyCapacity(n, k int) *big.Int  { return capacity.AnyElectronic(int64(n), int64(k)) }

// EmbedSlot maps a WDM slot (port, wave) of an N x N k-wavelength network
// to the corresponding electronic port of the Nk x Nk network: the demux
// view in which every wavelength is its own wire.
func EmbedSlot(slot wdm.PortWave, k int) wdm.PortWave {
	return wdm.PortWave{Port: wdm.Port(slot.Index(k)), Wave: 0}
}

// EmbedAssignment maps a WDM multicast assignment onto the electronic
// Nk x Nk network. Every assignment admissible under any WDM model embeds
// into an admissible electronic assignment (the converse fails: an
// electronic connection may address two wires that demultiplex onto the
// same WDM output fiber, which no WDM model allows — see Section 2.2 and
// the tests).
func EmbedAssignment(a wdm.Assignment, k int) wdm.Assignment {
	out := make(wdm.Assignment, len(a))
	for i, c := range a {
		ec := wdm.Connection{Source: EmbedSlot(c.Source, k)}
		for _, d := range c.Dests {
			ec.Dests = append(ec.Dests, EmbedSlot(d, k))
		}
		out[i] = ec
	}
	return out
}

// CapacityRatio returns electronic capacity / WDM capacity for
// full-multicast-assignments as a big float quotient string with the
// given precision — the "how much capacity does staying optical cost"
// number quoted in comparisons.
func CapacityRatio(model wdm.Model, n, k int, prec uint) string {
	el := new(big.Float).SetPrec(prec).SetInt(FullCapacity(n, k))
	wd := new(big.Float).SetPrec(prec).SetInt(capacity.Full(model, int64(n), int64(k)))
	if wd.Sign() == 0 {
		return "inf"
	}
	q := new(big.Float).SetPrec(prec).Quo(el, wd)
	return q.Text('e', 4)
}

// CheckEmbedding verifies that the embedded assignment is admissible on
// the electronic network; it returns an error describing the first
// violation (used as a sanity check by tools).
func CheckEmbedding(a wdm.Assignment, n, k int) error {
	d := wdm.Dim{N: n * k, K: 1}
	if err := d.CheckAssignment(wdm.MSW, EmbedAssignment(a, k)); err != nil {
		return fmt.Errorf("electronic: embedding inadmissible: %w", err)
	}
	return nil
}
