package multistage

import (
	"testing"

	"repro/internal/crossbar"
	"repro/internal/wdm"
)

// TestMultistageLossExceedsCrossbar: the multistage design trades gate
// count for optical budget — a three-stage path must lose more power
// than the single-crossbar path for the same N, k.
func TestMultistageLossExceedsCrossbar(t *testing.T) {
	for _, model := range wdm.Models {
		p, err := (Params{N: 64, K: 2, R: 8, Model: model}).Normalize()
		if err != nil {
			t.Fatal(err)
		}
		net := Network{params: p}
		ms := net.PredictedWorstLossDB()
		cb := crossbar.PredictedWorstLossDB(model, wdm.Shape{In: 64, Out: 64, K: 2})
		if ms <= cb {
			t.Errorf("%v: multistage loss %.2f dB <= crossbar %.2f dB", model, ms, cb)
		}
	}
}

// TestDeeperMeansLossier: each added stage pair adds splitting stages,
// so the 5-stage budget exceeds the 3-stage one.
func TestDeeperMeansLossier(t *testing.T) {
	three, err := (Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Depth: 3}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	five, err := (Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Depth: 5}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	l3 := (&Network{params: three}).PredictedWorstLossDB()
	l5 := (&Network{params: five}).PredictedWorstLossDB()
	if l5 <= l3 {
		t.Errorf("5-stage loss %.2f dB <= 3-stage %.2f dB", l5, l3)
	}
}

// TestMeasuredModuleLossWithinBudget: the per-module losses measured by
// optical verification must each stay within that module's closed-form
// budget (the end-to-end budget is their sum).
func TestMeasuredModuleLossWithinBudget(t *testing.T) {
	net := mustNetwork(t, Params{N: 8, K: 2, R: 4, Model: wdm.MAW})
	mustAdd(t, net, conn(pw(0, 0), pw(3, 1), pw(6, 0)))
	p := net.params
	budgets := []struct {
		mods  []*crossbar.Switch
		model wdm.Model
		shape wdm.Shape
	}{
		{net.inMods, p.Construction.Stage12Model(), wdm.Shape{In: p.n(), Out: p.M, K: p.K}},
		{net.outMods, p.Model, wdm.Shape{In: p.M, Out: p.n(), K: p.K}},
	}
	for _, st := range budgets {
		budget := crossbar.PredictedWorstLossDB(st.model, st.shape)
		for i, m := range st.mods {
			res, err := m.Verify()
			if err != nil {
				t.Fatal(err)
			}
			if res.MaxLossDB > budget+1e-9 {
				t.Errorf("module %d measured %.2f dB > budget %.2f dB", i, res.MaxLossDB, budget)
			}
		}
	}
}
