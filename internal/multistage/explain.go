package multistage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/wdm"
)

// Candidate records how one available middle module looked to the
// selection loop for a particular request.
type Candidate struct {
	Middle  int
	Blocked []int // requested output modules this middle cannot reach
	Serves  []int // modules it was assigned (empty if not chosen)
	Chosen  bool
}

// Explanation is a dry-run account of how a request would route: which
// middle modules were available, what each one's destination
// (multi)set blocked, and which were selected in what order — the
// observable form of Lemma 4's condition. Explanations never mutate the
// network.
type Explanation struct {
	Request     wdm.Connection
	SourceMod   int
	DestMods    []int
	LastHopWave wdm.Wavelength // -1 = any free wavelength acceptable
	Available   []int
	Unavailable []int // middles with no usable input-stage link
	Rounds      []Candidate
	Routable    bool
	Residual    []int // uncovered modules when not routable
}

// Explain dry-runs the routing decision for an admissible request
// against the current network state. The request is not installed. It
// returns an error only for inadmissible requests (model violation or
// busy slots); a blocked request yields Routable=false with the
// uncovered modules listed.
func (net *Network) Explain(c wdm.Connection) (*Explanation, error) {
	if err := net.Shape().CheckConnection(net.params.Model, c); err != nil {
		return nil, err
	}
	if id, busy := net.srcBusy[c.Source]; busy {
		return nil, fmt.Errorf("multistage: source slot %v already used by connection %d", c.Source, id)
	}
	for _, d := range c.Dests {
		if id, busy := net.dstBusy[d]; busy {
			return nil, fmt.Errorf("multistage: destination slot %v already used by connection %d", d, id)
		}
	}
	c = c.Normalize()
	srcMod, _ := net.splitPort(c.Source.Port)

	destMods := map[int]bool{}
	for _, d := range c.Dests {
		p, _ := net.splitPort(d.Port)
		destMods[p] = true
	}
	ex := &Explanation{
		Request:     c,
		SourceMod:   srcMod,
		LastHopWave: -1,
	}
	for p := range destMods {
		ex.DestMods = append(ex.DestMods, p)
	}
	sort.Ints(ex.DestMods)
	if net.params.Construction == MSWDominant || net.params.Model == wdm.MSW {
		ex.LastHopWave = c.Source.Wave
	}
	if net.params.Construction == AWGClos {
		net.explainAWG(ex)
		return ex, nil
	}

	ex.Available = net.availableMiddles(srcMod, c.Source.Wave)
	availSet := map[int]bool{}
	for _, j := range ex.Available {
		availSet[j] = true
	}
	for j := range net.midMods {
		if !availSet[j] {
			ex.Unavailable = append(ex.Unavailable, j)
		}
	}

	// Mirror Add's selection loop (kept in sync by
	// TestExplainMatchesAdd), recording every candidate examined.
	avail := append([]int(nil), ex.Available...)
	residual := append([]int(nil), ex.DestMods...)
	used := 0
	for len(residual) > 0 && used < net.params.X && len(avail) > 0 {
		bestIdx := -1
		var bestCand Candidate
		var bestResidual []int
		for idx, j := range avail {
			cand := Candidate{Middle: j}
			var serve []int
			for _, p := range residual {
				if net.middleBlocked(j, p, ex.LastHopWave) {
					cand.Blocked = append(cand.Blocked, p)
				} else {
					serve = append(serve, p)
				}
			}
			if net.params.Strategy == FirstFit {
				if len(serve) > 0 {
					bestIdx, bestCand, bestResidual = idx, cand, cand.Blocked
					bestCand.Serves = serve
					break
				}
				continue
			}
			if bestIdx == -1 || len(cand.Blocked) < len(bestResidual) {
				bestIdx, bestCand, bestResidual = idx, cand, cand.Blocked
				bestCand.Serves = serve
			}
		}
		if bestIdx == -1 || len(bestCand.Serves) == 0 {
			break
		}
		bestCand.Chosen = true
		ex.Rounds = append(ex.Rounds, bestCand)
		residual = bestResidual
		avail = append(avail[:bestIdx], avail[bestIdx+1:]...)
		used++
	}
	ex.Routable = len(residual) == 0
	ex.Residual = residual
	return ex, nil
}

// String renders the explanation for humans (used by diagnostics).
func (ex *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "request %v: input module %d -> output modules %v\n", ex.Request, ex.SourceMod, ex.DestMods)
	if ex.LastHopWave >= 0 {
		fmt.Fprintf(&b, "last hop pinned to λ%d\n", ex.LastHopWave)
	}
	fmt.Fprintf(&b, "available middles: %v (unavailable: %v)\n", ex.Available, ex.Unavailable)
	for i, c := range ex.Rounds {
		fmt.Fprintf(&b, "split %d: middle %d serves %v (blocked for %v)\n", i+1, c.Middle, c.Serves, c.Blocked)
	}
	if ex.Routable {
		b.WriteString("result: ROUTABLE\n")
	} else {
		fmt.Fprintf(&b, "result: BLOCKED — modules %v uncovered\n", ex.Residual)
	}
	return b.String()
}
