package multistage

import (
	"repro/internal/crossbar"
	"repro/internal/wdm"
)

// PredictedWorstLossDB returns the closed-form worst-case optical power
// loss of a signal path through the three-stage network: the sum of the
// per-module budgets of the three stages it crosses (input n x m module,
// middle r x r module, output m x n module), each under its stage's
// model. Inter-stage fibers are treated as lossless, as the paper's
// crosspoint-based projection does.
//
// For Depth > 3 the middle term recurses. The result quantifies the real
// price of the multistage crosspoint savings: light crosses three (or
// five, ...) splitting fabrics instead of one, so the loss budget grows
// even as the gate count shrinks — a trade-off the paper's cost model
// (gate counts only) does not surface.
func (net *Network) PredictedWorstLossDB() float64 {
	return predictedLoss(net.params)
}

func predictedLoss(p Params) float64 {
	n, r, m, k := p.n(), p.R, p.M, p.K
	s12 := p.Construction.Stage12Model()
	total := crossbar.PredictedWorstLossDB(s12, wdm.Shape{In: n, Out: m, K: k})
	if p.Depth > 3 {
		rn, err := nestedSplit(r, p.Depth-2)
		if err == nil {
			nested, nerr := (Params{
				N: r, K: k, R: rn, Model: s12,
				Construction: p.Construction, Depth: p.Depth - 2,
			}).Normalize()
			if nerr == nil {
				total += predictedLoss(nested)
			}
		}
	} else {
		total += crossbar.PredictedWorstLossDB(p.Construction.MiddleModel(), wdm.Shape{In: r, Out: r, K: k})
	}
	total += crossbar.PredictedWorstLossDB(p.Model, wdm.Shape{In: m, Out: n, K: k})
	return total
}
