package multistage

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/wdm"
)

// The switchd controller builds its Disconnect/AddBranch semantics on
// Release being exact: unknown ids and double releases must fail
// without touching state, and a release must succeed even when the
// connection rides a failed middle module (the controller tears down
// sessions during drain regardless of fabric health).

func newErrorPathNet(t *testing.T) *Network {
	t.Helper()
	net, err := New(Params{
		N: 16, K: 2, R: 4,
		Model:        wdm.MSW,
		Construction: MSWDominant,
		Lite:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func addConn(t *testing.T, net *Network, s string) int {
	t.Helper()
	c, err := wdm.ParseConnection(s)
	if err != nil {
		t.Fatal(err)
	}
	id, err := net.Add(c)
	if err != nil {
		t.Fatalf("Add(%s): %v", s, err)
	}
	return id
}

func TestReleaseErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		// setup returns the id to release and whether that release must
		// succeed.
		setup   func(t *testing.T, net *Network) int
		wantOK  bool
		wantSub string // error substring when !wantOK
	}{
		{
			name:    "unknown id",
			setup:   func(t *testing.T, net *Network) int { return 42 },
			wantSub: "no connection with id 42",
		},
		{
			name: "double release",
			setup: func(t *testing.T, net *Network) int {
				id := addConn(t, net, "0.0>5.0,9.0")
				if err := net.Release(id); err != nil {
					t.Fatalf("first release: %v", err)
				}
				return id
			},
			wantSub: "no connection with id",
		},
		{
			name: "negative id",
			setup: func(t *testing.T, net *Network) int {
				addConn(t, net, "0.0>5.0")
				return -1
			},
			wantSub: "no connection with id -1",
		},
		{
			name: "release after FailMiddle",
			setup: func(t *testing.T, net *Network) int {
				id := addConn(t, net, "0.0>5.0,9.0")
				mids := net.middlesUsed(id)
				if len(mids) == 0 {
					t.Fatal("connection uses no middle module")
				}
				if err := net.FailMiddle(mids[0]); err != nil {
					t.Fatal(err)
				}
				return id
			},
			wantOK: true,
		},
		{
			name: "release after AddWithRepack",
			setup: func(t *testing.T, net *Network) int {
				id := addConn(t, net, "0.0>5.0,9.0")
				addConn(t, net, "1.0>6.0")
				if _, _, err := net.AddWithRepack(mustConn(t, "2.0>7.0")); err != nil {
					t.Fatalf("AddWithRepack: %v", err)
				}
				return id
			},
			wantOK: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := newErrorPathNet(t)
			id := tc.setup(t, net)
			before := net.Len()
			err := net.Release(id)
			if tc.wantOK {
				if err != nil {
					t.Fatalf("Release(%d) = %v, want success", id, err)
				}
				if net.Len() != before-1 {
					t.Fatalf("Len = %d after release, want %d", net.Len(), before-1)
				}
			} else {
				if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
					t.Fatalf("Release(%d) = %v, want error containing %q", id, err, tc.wantSub)
				}
				if net.Len() != before {
					t.Fatalf("failed release changed Len: %d -> %d", before, net.Len())
				}
			}
			if err := net.Verify(); err != nil {
				t.Fatalf("Verify after release path: %v", err)
			}
		})
	}
}

func mustConn(t *testing.T, s string) wdm.Connection {
	t.Helper()
	c, err := wdm.ParseConnection(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// middlesUsed lists the middle modules a connection uses (test helper:
// AffectedBy answers the inverse question).
func (net *Network) middlesUsed(id int) []int {
	out, _ := net.MiddlesUsed(id)
	return out
}

func TestAddBranchGrowsConnection(t *testing.T) {
	net := newErrorPathNet(t)
	id := addConn(t, net, "0.0>5.0")
	routed0, blocked0 := net.Stats()

	if err := net.AddBranch(id, wdm.PortWave{Port: 9, Wave: 0}, wdm.PortWave{Port: 12, Wave: 0}); err != nil {
		t.Fatalf("AddBranch: %v", err)
	}
	c, ok := net.Connection(id)
	if !ok || c.Fanout() != 3 {
		t.Fatalf("after grow: conn = %v (ok=%v), want fanout 3 under id %d", c, ok, id)
	}
	if err := net.Verify(); err != nil {
		t.Fatalf("Verify after grow: %v", err)
	}
	// A successful grow is not a new routed connection.
	if r, b := net.Stats(); r != routed0 || b != blocked0 {
		t.Fatalf("Stats changed on successful grow: (%d,%d) -> (%d,%d)", routed0, blocked0, r, b)
	}
	// The grown slots really are occupied.
	if _, err := net.Add(mustConn(t, "1.0>9.0")); err == nil {
		t.Fatal("slot 9.0 still free after grow")
	}
	// Releasing frees everything the grow claimed.
	if err := net.Release(id); err != nil {
		t.Fatal(err)
	}
	addConn(t, net, "0.0>5.0,9.0,12.0")
}

func TestAddBranchErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		dests   []wdm.PortWave
		wantSub string
	}{
		{"busy slot", []wdm.PortWave{{Port: 6, Wave: 0}}, "already used"},
		{"duplicate port in grow", []wdm.PortWave{{Port: 9, Wave: 0}, {Port: 9, Wave: 1}}, "share output port"},
		{"port already reached", []wdm.PortWave{{Port: 5, Wave: 1}}, "share output port"},
		{"model violation", []wdm.PortWave{{Port: 9, Wave: 1}}, "MSW"},
		{"out of range", []wdm.PortWave{{Port: 99, Wave: 0}}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := newErrorPathNet(t)
			id := addConn(t, net, "0.0>5.0")
			addConn(t, net, "1.0>6.0")
			err := net.AddBranch(id, tc.dests...)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("AddBranch = %v, want error containing %q", err, tc.wantSub)
			}
			// Original connection intact.
			c, ok := net.Connection(id)
			if !ok || c.Fanout() != 1 {
				t.Fatalf("original connection disturbed: %v (ok=%v)", c, ok)
			}
			if err := net.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
		})
	}

	t.Run("unknown id", func(t *testing.T) {
		net := newErrorPathNet(t)
		if err := net.AddBranch(7, wdm.PortWave{Port: 1, Wave: 0}); err == nil {
			t.Fatal("AddBranch on unknown id succeeded")
		}
	})
	t.Run("no dests is a no-op", func(t *testing.T) {
		net := newErrorPathNet(t)
		id := addConn(t, net, "0.0>5.0")
		if err := net.AddBranch(id); err != nil {
			t.Fatalf("empty grow: %v", err)
		}
	})
}

// TestAddBranchRestoreSurvivesFailedMiddles is the regression test for
// the restore path: after the network's routing state has changed so
// that a fresh re-route of the original connection would itself block
// (here the extreme case — every middle module marked failed), a
// blocked grow must still restore the original connection by replaying
// its recorded route, not by asking the router for a new one.
func TestAddBranchRestoreSurvivesFailedMiddles(t *testing.T) {
	net := newErrorPathNet(t)
	id := addConn(t, net, "0.0>5.0")
	for j := 0; j < net.Params().M; j++ {
		if err := net.FailMiddle(j); err != nil {
			t.Fatal(err)
		}
	}
	// The grow is admissible but no middle module is in service, so the
	// re-route blocks — and so would a fresh re-route of the original.
	err := net.AddBranch(id, wdm.PortWave{Port: 9, Wave: 0})
	if !IsBlocked(err) {
		t.Fatalf("AddBranch = %v, want ErrBlocked", err)
	}
	c, ok := net.Connection(id)
	if !ok || c.Fanout() != 1 || c.Dests[0].Port != 5 {
		t.Fatalf("original connection not restored: %v (ok=%v)", c, ok)
	}
	if err := net.Verify(); err != nil {
		t.Fatalf("Verify after restore: %v", err)
	}
	// The restored connection is fully operational.
	if err := net.Release(id); err != nil {
		t.Fatalf("Release after restore: %v", err)
	}
	if err := net.Verify(); err != nil {
		t.Fatalf("Verify after release: %v", err)
	}
}

// TestAddBranchRestoreUnderChurn hammers grow/release cycles on a
// below-sufficient-bound network whose occupancy churns constantly —
// the regime where a blocked grow is routine and the network state at
// restore time bears no resemblance to the state the connection first
// routed in. Every failed grow must leave its connection intact and the
// network verifiable, under both middle-selection strategies.
func TestAddBranchRestoreUnderChurn(t *testing.T) {
	for _, strat := range []Strategy{GreedyMinIntersection, FirstFit} {
		t.Run(strat.String(), func(t *testing.T) {
			net, err := New(Params{
				N: 16, K: 2, R: 4,
				M: 2, X: 2, // well below the Theorem 1 bound
				Model:        wdm.MSW,
				Construction: MSWDominant,
				Strategy:     strat,
				Lite:         true,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			blockedGrows := 0
			for i := 0; i < 600; i++ {
				live := net.Connections()
				ids := make([]int, 0, len(live))
				for id := range live {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				// All traffic rides λ0 so the two middle modules' links
				// contend hard and grows block routinely.
				switch op := rng.Intn(6); {
				case op <= 1 || len(ids) == 0: // add
					c := wdm.Connection{Source: wdm.PortWave{Port: wdm.Port(rng.Intn(16))}}
					for f := 0; f < 1+rng.Intn(3); f++ {
						c.Dests = append(c.Dests, wdm.PortWave{Port: wdm.Port(rng.Intn(16))})
					}
					_, _ = net.Add(c) // busy/duplicate/blocked are all expected
				case op == 2: // release
					id := ids[rng.Intn(len(ids))]
					if err := net.Release(id); err != nil {
						t.Fatalf("iter %d: Release(%d): %v", i, id, err)
					}
				default: // grow
					id := ids[rng.Intn(len(ids))]
					before := wdm.FormatConnection(live[id])
					d := wdm.PortWave{Port: wdm.Port(rng.Intn(16)), Wave: live[id].Source.Wave}
					if err := net.AddBranch(id, d); err != nil {
						if IsBlocked(err) {
							blockedGrows++
						}
						after, ok := net.Connection(id)
						if !ok || wdm.FormatConnection(after) != before {
							t.Fatalf("iter %d: failed grow disturbed connection %d: %q -> %q (ok=%v, err=%v)",
								i, id, before, wdm.FormatConnection(after), ok, err)
						}
					}
				}
				if i%25 == 0 {
					if err := net.Verify(); err != nil {
						t.Fatalf("iter %d: Verify: %v", i, err)
					}
				}
			}
			if err := net.Verify(); err != nil {
				t.Fatalf("final Verify: %v", err)
			}
			if blockedGrows == 0 {
				t.Fatal("churn never produced a blocked grow; test exercises nothing")
			}
		})
	}
}

// TestAddBranchBlockedRestoresOriginal forces the grow itself to block
// (m=1, x=1: the single middle module's link to the target output
// module is occupied by another connection) and asserts atomicity: the
// original connection survives, still routed, same id, and the network
// verifies — while Stats records exactly one blocking event.
func TestAddBranchBlockedRestoresOriginal(t *testing.T) {
	net, err := New(Params{
		N: 4, K: 1, R: 2,
		M: 1, X: 1,
		Model:        wdm.MSW,
		Construction: MSWDominant,
		Lite:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A: input module 0 -> output module 0, occupying mid0->out0 on λ0.
	addConn(t, net, "0.0>0.0")
	// B: input module 1 -> output module 1.
	idB := addConn(t, net, "2.0>2.0")
	routed0, blocked0 := net.Stats()

	// Growing B onto port 1 (output module 0) needs mid0->out0 λ0 —
	// taken by A. Admissible, so this must surface as ErrBlocked.
	err = net.AddBranch(idB, wdm.PortWave{Port: 1, Wave: 0})
	if !IsBlocked(err) {
		t.Fatalf("AddBranch = %v, want ErrBlocked", err)
	}
	c, ok := net.Connection(idB)
	if !ok || c.Fanout() != 1 || c.Dests[0].Port != 2 {
		t.Fatalf("original connection not restored: %v (ok=%v)", c, ok)
	}
	if err := net.Verify(); err != nil {
		t.Fatalf("Verify after blocked grow: %v", err)
	}
	if r, b := net.Stats(); r != routed0 || b != blocked0+1 {
		t.Fatalf("Stats after blocked grow: (%d,%d), want (%d,%d)", r, b, routed0, blocked0+1)
	}
	// B still fully operational: release works and frees its slots.
	if err := net.Release(idB); err != nil {
		t.Fatalf("Release after blocked grow: %v", err)
	}
	addConn(t, net, "2.0>2.0")
}
