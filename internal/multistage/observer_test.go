package multistage

import (
	"testing"

	"repro/internal/wdm"
)

// collect installs an observer that appends every RouteStep.
func collect(net *Network) *[]RouteStep {
	var steps []RouteStep
	net.SetRouteObserver(func(s RouteStep) { steps = append(steps, s) })
	return &steps
}

func byState(steps []RouteStep) map[MiddleState][]RouteStep {
	m := map[MiddleState][]RouteStep{}
	for _, s := range steps {
		m[s.State] = append(m[s.State], s)
	}
	return m
}

// TestObserverSelectedSteps: a routed connection emits exactly one
// selected step per middle used, with the served modules and round.
func TestObserverSelectedSteps(t *testing.T) {
	net := tinyBlockingNet(t)
	steps := collect(net)
	mustAddStr(t, net, "0.0>4.0,8.0")

	if len(*steps) != 1 {
		t.Fatalf("steps = %+v, want one selected step", *steps)
	}
	s := (*steps)[0]
	if s.State != MiddleSelected || s.Middle != 0 || s.Round != 0 || s.Wave != 0 {
		t.Fatalf("step = %+v", s)
	}
	if len(s.Serves) != 2 {
		t.Fatalf("Serves = %v, want both output modules", s.Serves)
	}
}

// TestObserverNoAvail: when the availability scan finds nothing, every
// middle gets a rejection step naming why the source cannot reach it.
func TestObserverNoAvail(t *testing.T) {
	net := tinyBlockingNet(t)
	mustAddStr(t, net, "0.0>4.0") // in-link 0->mid0 λ0 now busy
	steps := collect(net)

	c, _ := wdm.ParseConnection("1.0>8.0")
	if _, err := net.Add(c); !IsBlocked(err) {
		t.Fatalf("Add = %v, want blocked", err)
	}
	if len(*steps) != 1 {
		t.Fatalf("steps = %+v, want one rejection per middle", *steps)
	}
	s := (*steps)[0]
	if s.State != MiddleInLinkBusy || s.Middle != 0 || s.Wave != 0 {
		t.Fatalf("step = %+v, want in-link-busy on middle 0 λ0", s)
	}
}

// TestObserverFailedMiddle: out-of-service middles are reported as
// failed, not as link-busy.
func TestObserverFailedMiddle(t *testing.T) {
	net := tinyBlockingNet(t)
	if err := net.FailMiddle(0); err != nil {
		t.Fatal(err)
	}
	steps := collect(net)
	c, _ := wdm.ParseConnection("0.0>4.0")
	if _, err := net.Add(c); !IsBlocked(err) {
		t.Fatalf("Add = %v, want blocked", err)
	}
	if len(*steps) != 1 || (*steps)[0].State != MiddleFailed {
		t.Fatalf("steps = %+v, want one failed step", *steps)
	}
}

// TestObserverLoopBlocked: a multicast that dies in the selection loop
// emits the selected middles first, then one rejection step per
// remaining candidate with its uncovered modules.
func TestObserverLoopBlocked(t *testing.T) {
	net, err := New(Params{
		N: 16, K: 2, R: 4, M: 2, X: 1,
		Model: wdm.MSW, Construction: MSWDominant, Lite: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same setup as TestBlockReportSelectedAndSplitLimit: a λ0 fanout to
	// modules {1,2} needs two splits, the limit allows one.
	mustAddStr(t, net, "4.0>8.0")
	mustAddStr(t, net, "5.0>6.0")
	steps := collect(net)

	c, _ := wdm.ParseConnection("0.0>5.0,9.0")
	if _, err := net.Add(c); !IsBlocked(err) {
		t.Fatalf("Add = %v, want blocked", err)
	}
	m := byState(*steps)
	if len(m[MiddleSelected]) != 1 {
		t.Fatalf("steps = %+v, want exactly one selected", *steps)
	}
	rejections := len(m[MiddleSplitLimit]) + len(m[MiddleOutLinkBusy])
	if rejections != 1 {
		t.Fatalf("steps = %+v, want the other middle rejected", *steps)
	}
	for _, s := range m[MiddleSplitLimit] {
		if len(s.Serves) == 0 {
			t.Fatalf("split-limit step serves nothing: %+v", s)
		}
	}
	for _, s := range m[MiddleOutLinkBusy] {
		if len(s.Rejected) == 0 {
			t.Fatalf("out-link-busy step rejects nothing: %+v", s)
		}
	}
}

// TestObserverRemovedAndNilSafe: SetRouteObserver(nil) stops emission;
// routing keeps working either way.
func TestObserverRemovedAndNilSafe(t *testing.T) {
	net := tinyBlockingNet(t)
	steps := collect(net)
	mustAddStr(t, net, "0.0>4.0")
	net.SetRouteObserver(nil)
	mustAddStr(t, net, "4.0>8.0")
	if len(*steps) != 1 {
		t.Fatalf("observer fired %d times, want 1 (removed after first Add)", len(*steps))
	}
}
