package multistage

import (
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/wdm"
)

// Construction selects which model the first two stages use (Fig. 9).
type Construction int

const (
	// MSWDominant builds input- and middle-stage modules under the MSW
	// model: a connection entering on wavelength λ stays on λ until the
	// output stage. Cheapest; Theorem 1 gives its nonblocking bound.
	MSWDominant Construction = iota
	// MAWDominant builds input- and middle-stage modules under the MAW
	// model: the first two stages may retune freely, so an inter-stage
	// link is usable while any of its k wavelengths is free. Theorem 2
	// gives its nonblocking bound.
	MAWDominant
	// AWGClos builds the middle stage from passive arrayed-waveguide
	// gratings (AWG-based nonblocking Clos networks, arXiv 1308.4477):
	// middle crosspoints neither convert nor multicast, and the cyclic
	// wavelength-routing law fixes the wavelength any middle must carry
	// for an (input module a, output module p) pair to
	// λ = (p - a) mod k. Input modules carry tunable transmitters (MAW);
	// the network model must be MAW so converting output modules can
	// deliver the forced class wavelength to arbitrary destination slots.
	// AWGClosMinM gives its sufficient nonblocking bound.
	AWGClos
)

func (c Construction) String() string {
	switch c {
	case MSWDominant:
		return "MSW-dominant"
	case MAWDominant:
		return "MAW-dominant"
	case AWGClos:
		return "AWG-Clos"
	default:
		return fmt.Sprintf("Construction(%d)", int(c))
	}
}

// Stage12Model returns the model used by the first two stages. For
// AWG-Clos it is the input stage's model (MAW: tunable transmitters);
// the passive middle stage is wavelength-locked (MSW) — see MiddleModel.
func (c Construction) Stage12Model() wdm.Model {
	if c == MAWDominant || c == AWGClos {
		return wdm.MAW
	}
	return wdm.MSW
}

// MiddleModel returns the model the middle-stage modules implement:
// the Stage12Model for the paper's constructions, MSW for AWG-Clos
// (a passive grating cannot retune a wavelength in flight).
func (c Construction) MiddleModel() wdm.Model {
	if c == AWGClos {
		return wdm.MSW
	}
	return c.Stage12Model()
}

// Strategy selects how the router picks middle-stage modules for a new
// connection. The theorems certify GreedyMinIntersection; the others
// exist as ablations of that design choice.
type Strategy int

const (
	// GreedyMinIntersection repeatedly picks the available middle module
	// whose destination (multi)set leaves the smallest uncovered residual
	// — the selection order inside the proofs of Lemma 5 and [14]. This
	// is the certified default.
	GreedyMinIntersection Strategy = iota
	// FirstFit picks the lowest-indexed available middle module that
	// covers at least one uncovered destination module. Simpler and
	// cheaper per decision, but not covered by the theorems' guarantee —
	// the ablation benchmarks measure how much larger m must be for it.
	FirstFit
)

func (s Strategy) String() string {
	switch s {
	case GreedyMinIntersection:
		return "greedy-min-intersection"
	case FirstFit:
		return "first-fit"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// WavePick selects which free wavelength an MAW-dominant link claim
// takes when several are free — the classic WDM wavelength-assignment
// policies. MSW-dominant links are wavelength-locked, so the policy only
// matters for MAW-dominant networks.
type WavePick int

const (
	// FirstFree takes the lowest-indexed free wavelength (first-fit,
	// the standard default in WDM assignment studies).
	FirstFree WavePick = iota
	// MostUsed takes the free wavelength that is busiest across the
	// whole stage ("packing": concentrates traffic on few wavelengths,
	// keeping whole wavelengths free elsewhere).
	MostUsed
	// LeastUsed takes the globally least-busy free wavelength
	// ("spreading").
	LeastUsed
)

func (w WavePick) String() string {
	switch w {
	case FirstFree:
		return "first-free"
	case MostUsed:
		return "most-used"
	case LeastUsed:
		return "least-used"
	default:
		return fmt.Sprintf("WavePick(%d)", int(w))
	}
}

// Params describes a three-stage network. N = n*r ports with k
// wavelengths each; R modules in the outer stages (so each input module
// has n = N/R ports); M middle modules. Model is the network's multicast
// model, which the output-stage modules implement.
type Params struct {
	N, K         int
	R            int
	M            int // 0 = minimal from the construction's theorem
	X            int // routing split limit; 0 = the theorem's optimal x
	Model        wdm.Model
	Construction Construction
	// Strategy selects the middle-module selection rule
	// (GreedyMinIntersection unless overridden — see Strategy).
	Strategy Strategy
	// WavePick selects the wavelength-assignment policy for MAW-dominant
	// link claims (FirstFree unless overridden).
	WavePick WavePick
	// ConservativeLinks, under the MAW-dominant construction, treats an
	// inter-stage link as unusable once *any* of its k wavelengths is
	// taken — the plain-set semantics the destination *multisets* of
	// Eqs. 2-5 exist to avoid. Ablation only: it wastes k-1 wavelengths
	// per claimed link, and the benchmarks quantify how much larger the
	// middle stage must grow to compensate.
	ConservativeLinks bool
	// Depth is the total stage count: 0 or 3 builds the classic
	// three-stage network; 5, 7, ... recursively replace each middle
	// module with a (Depth-2)-stage network of the same construction, as
	// Section 3 describes. Recursion requires the middle module size r to
	// factor into two parts >= 2 at every level.
	Depth int
	// Lite skips gate-level fabrics inside the modules (routing behaviour
	// is identical; optical verification becomes unavailable). Use for
	// large parameter sweeps.
	Lite bool
}

// Normalize validates the parameters and fills in defaulted fields (M, X).
func (p Params) Normalize() (Params, error) {
	if p.N <= 0 || p.K <= 0 {
		return p, fmt.Errorf("multistage: N=%d k=%d must be positive", p.N, p.K)
	}
	if p.R <= 0 || p.N%p.R != 0 {
		return p, fmt.Errorf("multistage: R=%d must divide N=%d", p.R, p.N)
	}
	n := p.N / p.R
	switch p.Model {
	case wdm.MSW, wdm.MSDW, wdm.MAW:
	default:
		return p, fmt.Errorf("multistage: unknown model %v", p.Model)
	}
	switch p.Construction {
	case MSWDominant, MAWDominant:
	case AWGClos:
		if p.Model != wdm.MAW {
			return p, fmt.Errorf("multistage: AWG-Clos needs converting (MAW) output modules to deliver the class wavelength, not %v", p.Model)
		}
		if p.Depth != 0 && p.Depth != 3 {
			return p, fmt.Errorf("multistage: AWG-Clos does not nest (Depth=%d)", p.Depth)
		}
	default:
		return p, fmt.Errorf("multistage: unknown construction %v", p.Construction)
	}
	if p.M == 0 || p.X == 0 {
		m, x := SufficientMinM(p.Construction, p.Model, n, p.R, p.K)
		if p.M == 0 {
			p.M = m
		}
		if p.X == 0 {
			p.X = x
		}
	}
	if p.X < 1 {
		return p, fmt.Errorf("multistage: X=%d must be at least 1", p.X)
	}
	if p.M < 1 {
		return p, fmt.Errorf("multistage: M=%d must be at least 1", p.M)
	}
	if p.Depth == 0 {
		p.Depth = 3
	}
	if p.Depth < 3 || p.Depth%2 == 0 {
		return p, fmt.Errorf("multistage: Depth=%d must be an odd number >= 3", p.Depth)
	}
	if p.Depth > 3 {
		if _, err := nestedSplit(p.R, p.Depth-2); err != nil {
			return p, err
		}
	}
	return p, nil
}

// nestedSplit returns the outer-stage module count for a nested network
// of size r at the given depth, erring if r cannot support the
// recursion (every level needs a factorization into parts >= 2).
func nestedSplit(r, depth int) (int, error) {
	best := 0
	for cand := 2; cand*2 <= r; cand++ {
		if r%cand != 0 || r/cand < 2 {
			continue
		}
		// Prefer the split closest to sqrt(r).
		if best == 0 || absInt(cand*cand-r) < absInt(best*best-r) {
			best = cand
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("multistage: middle size r=%d cannot be factored for a %d-stage nesting", r, depth+2)
	}
	if depth > 3 {
		if _, err := nestedSplit(best, depth-2); err != nil {
			return 0, err
		}
	}
	return best, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// n returns ports per outer-stage module.
func (p Params) n() int { return p.N / p.R }

// module is what the router requires of a switching module. A gate-level
// or lite crossbar satisfies it — and so does Network itself, which is
// what enables the paper's recursive constructions: "in general, a
// network can have any odd number of stages and be built in a recursive
// fashion from these switching modules, which are in fact regarded as
// networks of a smaller size."
type module interface {
	Add(wdm.Connection) (int, error)
	Release(int) error
	Connection(int) (wdm.Connection, bool)
	Cost() crossbar.Cost
	Len() int
}

var (
	_ module = (*crossbar.Switch)(nil)
	_ module = (*Network)(nil)
)

// routed records how one network connection is realized across modules.
type routed struct {
	conn wdm.Connection
	// Module-level connection ids.
	inConnID int // in input module srcMod
	srcMod   int
	midConn  map[int]int // middle module j -> module connection id
	outConn  map[int]int // output module p -> module connection id
	// Link wavelengths occupied.
	inWave  map[int]wdm.Wavelength    // middle j -> wavelength on link srcMod->j
	outWave map[[2]int]wdm.Wavelength // (j, p) -> wavelength on link j->p
}

// Network is a live three-stage WDM multicast switching network.
// It is not safe for concurrent use.
type Network struct {
	params Params
	nPorts int // ports per outer module (the paper's n)

	inMods  []*crossbar.Switch // r modules, shape n x m
	midMods []module           // m modules, r x r: crossbars, or nested Networks when Depth > 3
	outMods []*crossbar.Switch // r modules, shape m x n

	// Link occupancy: connection id or freeLink.
	inLink  [][][]int // [r][m][k]: input module a -> middle j, wavelength w
	outLink [][][]int // [m][r][k]: middle j -> output module p, wavelength w
	// waveUse[w] counts claimed link wavelengths per plane (for the
	// MostUsed/LeastUsed wavelength-assignment policies).
	waveUse []int

	conns   map[int]*routed
	nextID  int
	srcBusy map[wdm.PortWave]int
	dstBusy map[wdm.PortWave]int
	// failedMid marks middle modules out of service (see failure.go).
	failedMid map[int]bool

	// Stats.
	routedCount  int64
	blockedCount int64

	// observer, when set, receives one RouteStep per middle-stage
	// decision during Add (see observer.go).
	observer func(RouteStep)
}

const freeLink = -1

// New builds a three-stage network from the (normalized) parameters.
func New(p Params) (*Network, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	n, r, m, k := p.n(), p.R, p.M, p.K
	mk := func(model wdm.Model, in, out int) *crossbar.Switch {
		sh := wdm.Shape{In: in, Out: out, K: k}
		if p.Lite {
			return crossbar.NewLite(model, sh)
		}
		return crossbar.NewShape(model, sh)
	}
	s12 := p.Construction.Stage12Model()
	mid := p.Construction.MiddleModel()
	net := &Network{
		params:  p,
		nPorts:  n,
		conns:   make(map[int]*routed),
		srcBusy: make(map[wdm.PortWave]int),
		dstBusy: make(map[wdm.PortWave]int),
	}
	for a := 0; a < r; a++ {
		net.inMods = append(net.inMods, mk(s12, n, m))
		net.outMods = append(net.outMods, mk(p.Model, m, n))
	}
	for j := 0; j < m; j++ {
		if p.Depth > 3 {
			// Recursive construction: the middle module is itself a
			// (Depth-2)-stage network of size r x r under the first-two-
			// stage model, same construction, sized by its own
			// sufficient bound.
			rn, err := nestedSplit(r, p.Depth-2)
			if err != nil {
				return nil, err
			}
			nested, err := New(Params{
				N: r, K: k, R: rn,
				Model:        s12,
				Construction: p.Construction,
				Strategy:     p.Strategy,
				Depth:        p.Depth - 2,
				Lite:         p.Lite,
			})
			if err != nil {
				return nil, fmt.Errorf("multistage: nested middle module %d: %w", j, err)
			}
			net.midMods = append(net.midMods, nested)
			continue
		}
		net.midMods = append(net.midMods, mk(mid, r, r))
	}
	net.inLink = makeLinks(r, m, k)
	net.outLink = makeLinks(m, r, k)
	net.waveUse = make([]int, k)
	return net, nil
}

func makeLinks(a, b, k int) [][][]int {
	l := make([][][]int, a)
	for i := range l {
		l[i] = make([][]int, b)
		for j := range l[i] {
			row := make([]int, k)
			for w := range row {
				row[w] = freeLink
			}
			l[i][j] = row
		}
	}
	return l
}

// Params returns the normalized parameters the network was built with.
func (net *Network) Params() Params { return net.params }

// Shape returns the external N x N k-wavelength shape.
func (net *Network) Shape() wdm.Shape {
	return wdm.Shape{In: net.params.N, Out: net.params.N, K: net.params.K}
}

// Len returns the number of live connections.
func (net *Network) Len() int { return len(net.conns) }

// Stats returns how many Add calls succeeded and how many were blocked
// (admissible but unroutable) since construction.
func (net *Network) Stats() (routedOK, blocked int64) {
	return net.routedCount, net.blockedCount
}

// splitPort maps a network port to (module, local port).
func (net *Network) splitPort(p wdm.Port) (mod int, local wdm.Port) {
	return int(p) / net.nPorts, wdm.Port(int(p) % net.nPorts)
}

// Connections returns a snapshot of all live connections keyed by id.
func (net *Network) Connections() map[int]wdm.Connection {
	out := make(map[int]wdm.Connection, len(net.conns))
	for id, rc := range net.conns {
		out[id] = rc.conn.Clone()
	}
	return out
}

// Utilization summarizes the inter-stage link occupancy of the network.
type Utilization struct {
	// InLinkBusy and OutLinkBusy are the fractions of occupied
	// (link, wavelength) pairs between stages 1-2 and 2-3.
	InLinkBusy, OutLinkBusy float64
	// BusiestInLink and BusiestOutLink are the highest per-link
	// wavelength occupancy counts observed (0..k).
	BusiestInLink, BusiestOutLink int
	// InBusy/InTotal and OutBusy/OutTotal are the occupied and total
	// (link, wavelength) pair counts behind the fractions — the raw
	// per-stage occupancy gauges the serving path exports.
	InBusy, InTotal   int
	OutBusy, OutTotal int
}

// Utilization reports the current inter-stage link occupancy — the
// quantity Lee's approximation takes as input, measured rather than
// assumed.
func (net *Network) Utilization() Utilization {
	var u Utilization
	inBusy, inTotal := 0, 0
	for a := range net.inLink {
		for j := range net.inLink[a] {
			busy := 0
			for _, v := range net.inLink[a][j] {
				inTotal++
				if v != freeLink {
					inBusy++
					busy++
				}
			}
			if busy > u.BusiestInLink {
				u.BusiestInLink = busy
			}
		}
	}
	outBusy, outTotal := 0, 0
	for j := range net.outLink {
		for p := range net.outLink[j] {
			busy := 0
			for _, v := range net.outLink[j][p] {
				outTotal++
				if v != freeLink {
					outBusy++
					busy++
				}
			}
			if busy > u.BusiestOutLink {
				u.BusiestOutLink = busy
			}
		}
	}
	u.InBusy, u.InTotal = inBusy, inTotal
	u.OutBusy, u.OutTotal = outBusy, outTotal
	if inTotal > 0 {
		u.InLinkBusy = float64(inBusy) / float64(inTotal)
	}
	if outTotal > 0 {
		u.OutLinkBusy = float64(outBusy) / float64(outTotal)
	}
	return u
}

// Connection returns the live connection with the given id (satisfying
// the module interface so a Network can serve as a nested middle module).
func (net *Network) Connection(id int) (wdm.Connection, bool) {
	rc, ok := net.conns[id]
	if !ok {
		return wdm.Connection{}, false
	}
	return rc.conn.Clone(), true
}
