package multistage

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/wdm"
)

// DumpState writes a human-readable snapshot of the network: parameters,
// per-link wavelength occupancy matrices (connection ids, '.' = free,
// 'X' column = failed middle), and the live connection list. Operators
// read this next to Explain output when diagnosing an incident.
func (net *Network) DumpState(w io.Writer) error {
	p := net.params
	if _, err := fmt.Fprintf(w, "three-stage network: N=%d k=%d r=%d n=%d m=%d x=%d %v %v depth=%d\n",
		p.N, p.K, p.R, p.n(), p.M, p.X, p.Model, p.Construction, p.Depth); err != nil {
		return err
	}
	if failed := net.FailedMiddles(); len(failed) > 0 {
		fmt.Fprintf(w, "failed middles: %v\n", failed)
	}
	dumpLinks := func(title, rowLabel string, links [][][]int) {
		fmt.Fprintf(w, "%s (rows: %s, cols: far end; cell: one char per wavelength)\n", title, rowLabel)
		for a := range links {
			var b strings.Builder
			fmt.Fprintf(&b, "  %2d: ", a)
			for j := range links[a] {
				for _, v := range links[a][j] {
					if v == freeLink {
						b.WriteByte('.')
					} else {
						b.WriteString(fmt.Sprintf("%d", v%10))
					}
				}
				b.WriteByte(' ')
			}
			fmt.Fprintln(w, b.String())
		}
	}
	dumpLinks("input-stage links", "input module", net.inLink)
	dumpLinks("output-stage links", "middle module", net.outLink)

	ids := make([]int, 0, len(net.conns))
	for id := range net.conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Fprintf(w, "live connections (%d):\n", len(ids))
	for _, id := range ids {
		rc := net.conns[id]
		mids := make([]int, 0, len(rc.midConn))
		for j := range rc.midConn {
			mids = append(mids, j)
		}
		sort.Ints(mids)
		fmt.Fprintf(w, "  %3d: %v via middles %v\n", id, rc.conn, mids)
	}
	u := net.Utilization()
	_, err := fmt.Fprintf(w, "utilization: in %.1f%%, out %.1f%% (busiest link %d/%d waves)\n",
		100*u.InLinkBusy, 100*u.OutLinkBusy, max(u.BusiestInLink, u.BusiestOutLink), p.K)
	return err
}

// WriteDOT renders the module-level structure of the network in
// Graphviz DOT (the paper's Figs. 8-9): input/middle/output modules as
// nodes labelled with their shape and model, one edge per inter-stage
// fiber, edge labels showing the current occupied/total wavelength
// count. Nested middle modules (Depth > 3) are labelled as subnetworks.
func (net *Network) WriteDOT(w io.Writer) error {
	p := net.params
	s12 := p.Construction.Stage12Model()
	if _, err := fmt.Fprintf(w,
		"digraph multistage {\n  rankdir=LR;\n  label=%q;\n  labelloc=t;\n  node [shape=box];\n",
		fmt.Sprintf("%d-stage %v network, N=%d k=%d r=%d m=%d (%v)", p.Depth, p.Model, p.N, p.K, p.R, p.M, p.Construction)); err != nil {
		return err
	}
	for a := 0; a < p.R; a++ {
		fmt.Fprintf(w, "  in%d [label=\"IN %d\\n%dx%d %v\"];\n", a, a, p.n(), p.M, s12)
		fmt.Fprintf(w, "  out%d [label=\"OUT %d\\n%dx%d %v\"];\n", a, a, p.M, p.n(), p.Model)
	}
	for j := range net.midMods {
		kind := fmt.Sprintf("%dx%d %v", p.R, p.R, p.Construction.MiddleModel())
		if _, nested := net.midMods[j].(*Network); nested {
			kind = fmt.Sprintf("%dx%d %d-stage", p.R, p.R, p.Depth-2)
		}
		style := ""
		if net.failedMid[j] {
			style = `, style=filled, fillcolor="#ffb0b0"`
		}
		fmt.Fprintf(w, "  mid%d [label=\"MID %d\\n%s\"%s];\n", j, j, kind, style)
	}
	busy := func(link []int) int {
		n := 0
		for _, v := range link {
			if v != freeLink {
				n++
			}
		}
		return n
	}
	for a := range net.inLink {
		for j := range net.inLink[a] {
			fmt.Fprintf(w, "  in%d -> mid%d [label=\"%d/%d\"];\n", a, j, busy(net.inLink[a][j]), p.K)
		}
	}
	for j := range net.outLink {
		for pOut := range net.outLink[j] {
			fmt.Fprintf(w, "  mid%d -> out%d [label=\"%d/%d\"];\n", j, pOut, busy(net.outLink[j][pOut]), p.K)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// RouteBatch routes a whole assignment from the network's current state
// in largest-fanout-first order (the packing order that gives the greedy
// selector the hardest connections while choice is widest), rolling back
// everything it added on failure. It returns the ids in the order of the
// *input* assignment. For batch (static) traffic this routes at
// middle-stage counts below what adversarial arrival orders need — the
// offline/online gap the repack machinery exploits dynamically.
func (net *Network) RouteBatch(a wdm.Assignment) ([]int, error) {
	order := make([]int, len(a))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return a[order[x]].Fanout() > a[order[y]].Fanout()
	})
	ids := make([]int, len(a))
	var added []int
	for _, idx := range order {
		id, err := net.Add(a[idx])
		if err != nil {
			for _, rid := range added {
				_ = net.Release(rid)
			}
			return nil, fmt.Errorf("multistage: batch connection %d: %w", idx, err)
		}
		ids[idx] = id
		added = append(added, id)
	}
	return ids, nil
}
