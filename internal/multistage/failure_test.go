package multistage

import (
	"fmt"
	"testing"

	"repro/internal/wdm"
	"repro/internal/workload"
)

func TestFailMiddleExcludedFromRouting(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 1, R: 2, M: 2, X: 1, Model: wdm.MSW, Lite: true})
	if err := net.FailMiddle(0); err != nil {
		t.Fatal(err)
	}
	id := mustAdd(t, net, conn(pw(0, 0), pw(2, 0)))
	if _, uses := net.conns[id].midConn[0]; uses {
		t.Error("connection routed through a failed middle module")
	}
	if got := net.FailedMiddles(); len(got) != 1 || got[0] != 0 {
		t.Errorf("FailedMiddles = %v", got)
	}
	// With both middles down, everything blocks.
	if err := net.FailMiddle(1); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Add(conn(pw(1, 0), pw(3, 0))); !IsBlocked(err) {
		t.Errorf("want blocked with all middles failed, got %v", err)
	}
	// Repair middle 0: the second request routes through it (middle 1's
	// λ0 link from input module 0 is held by the first connection).
	if err := net.RepairMiddle(0); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, net, conn(pw(1, 0), pw(3, 0)))
}

func TestFailMiddleValidation(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 1, R: 2, M: 2, Model: wdm.MSW, Lite: true})
	if err := net.FailMiddle(99); err == nil {
		t.Error("failed nonexistent module")
	}
	if err := net.RepairMiddle(-1); err == nil {
		t.Error("repaired nonexistent module")
	}
}

func TestRerouteAroundFailure(t *testing.T) {
	// Provision one spare above the sufficient bound, load the network,
	// fail a carrying middle, re-route: everything must be restored with
	// ids intact and the network verifying cleanly.
	suffM, _ := SufficientMinM(MSWDominant, wdm.MSW, 4, 4, 2)
	net := mustNetwork(t, Params{N: 16, K: 2, R: 4, M: suffM + 1, Model: wdm.MSW, Lite: true})

	d := wdm.Dim{N: 16, K: 2}
	gen := workload.NewGenerator(14, wdm.MSW, d)
	freeSrc, freeDst := allSlots(d), allSlots(d)
	var ids []int
	for i := 0; i < 10; i++ {
		c, ok := gen.Connection(freeSrc, freeDst, gen.Fanout(6))
		if !ok {
			break
		}
		id, err := net.Add(c)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		freeSrc = removeSlot(freeSrc, c.Source)
		for _, dd := range c.Normalize().Dests {
			freeDst = removeSlot(freeDst, dd)
		}
	}

	// Fail the busiest middle.
	busiest, most := -1, -1
	for j := range net.midMods {
		if n := len(net.AffectedBy(j)); n > most {
			busiest, most = j, n
		}
	}
	if most == 0 {
		t.Fatal("no middle module carries traffic")
	}
	if err := net.FailMiddle(busiest); err != nil {
		t.Fatal(err)
	}
	restored, dropped, err := net.RerouteAround(busiest)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 0 {
		t.Fatalf("dropped %v despite a spare middle module", dropped)
	}
	if len(restored) != most {
		t.Errorf("restored %d of %d affected", len(restored), most)
	}
	if got := net.AffectedBy(busiest); len(got) != 0 {
		t.Errorf("connections still on the failed module: %v", got)
	}
	// All original ids still live and releasable.
	for _, id := range ids {
		if _, ok := net.Connection(id); !ok {
			t.Errorf("connection %d lost in re-route", id)
		}
	}
	mustVerify(t, net)
}

// TestRerouteAroundReportBookkeeping checks the migration records a
// control plane consumes: every restored connection reports the failed
// module in From, never in To, and To matches the live route.
func TestRerouteAroundReportBookkeeping(t *testing.T) {
	suffM, _ := SufficientMinM(MSWDominant, wdm.MSW, 4, 4, 2)
	net := mustNetwork(t, Params{N: 16, K: 2, R: 4, M: suffM + 1, Model: wdm.MSW, Lite: true})

	d := wdm.Dim{N: 16, K: 2}
	gen := workload.NewGenerator(23, wdm.MSW, d)
	freeSrc, freeDst := allSlots(d), allSlots(d)
	for i := 0; i < 8; i++ {
		c, ok := gen.Connection(freeSrc, freeDst, gen.Fanout(5))
		if !ok {
			break
		}
		if _, err := net.Add(c); err != nil {
			t.Fatal(err)
		}
		freeSrc = removeSlot(freeSrc, c.Source)
		for _, dd := range c.Normalize().Dests {
			freeDst = removeSlot(freeDst, dd)
		}
	}
	busiest, most := -1, -1
	for j := range net.midMods {
		if n := len(net.AffectedBy(j)); n > most {
			busiest, most = j, n
		}
	}
	if most == 0 {
		t.Fatal("no middle module carries traffic")
	}
	if err := net.FailMiddle(busiest); err != nil {
		t.Fatal(err)
	}
	migrated, dropped, err := net.RerouteAroundReport(busiest)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 0 || len(migrated) != most {
		t.Fatalf("migrated %d dropped %v, want %d/none", len(migrated), dropped, most)
	}
	for _, mig := range migrated {
		if !containsInt(mig.From, busiest) {
			t.Errorf("migration %d: From %v misses failed module %d", mig.ID, mig.From, busiest)
		}
		if containsInt(mig.To, busiest) {
			t.Errorf("migration %d: To %v still rides failed module %d", mig.ID, mig.To, busiest)
		}
		live, ok := net.MiddlesUsed(mig.ID)
		if !ok {
			t.Fatalf("migration %d: connection not live", mig.ID)
		}
		if fmt.Sprint(live) != fmt.Sprint(mig.To) {
			t.Errorf("migration %d: To %v != live route %v", mig.ID, mig.To, live)
		}
	}
	if _, ok := net.MiddlesUsed(99999); ok {
		t.Error("MiddlesUsed reported ok for an unknown id")
	}
	mustVerify(t, net)
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestFailureMarginComposes: m = bound + f tolerates f failures under
// dynamic traffic with zero blocking.
func TestFailureMarginComposes(t *testing.T) {
	const f = 2
	suffM, _ := SufficientMinM(MSWDominant, wdm.MSW, 4, 4, 2)
	net := mustNetwork(t, Params{N: 16, K: 2, R: 4, M: suffM + f, Model: wdm.MSW, Lite: true})
	if err := net.FailMiddle(0); err != nil {
		t.Fatal(err)
	}
	if err := net.FailMiddle(5); err != nil {
		t.Fatal(err)
	}

	d := wdm.Dim{N: 16, K: 2}
	gen := workload.NewGenerator(15, wdm.MSW, d)
	freeSrc, freeDst := allSlots(d), allSlots(d)
	type live struct {
		id   int
		conn wdm.Connection
	}
	var held []live
	for i := 0; i < 1000; i++ {
		if len(held) > 2 && i%3 == 0 {
			v := held[0]
			held = held[1:]
			if err := net.Release(v.id); err != nil {
				t.Fatal(err)
			}
			freeSrc = append(freeSrc, v.conn.Source)
			freeDst = append(freeDst, v.conn.Dests...)
		}
		c, ok := gen.Connection(freeSrc, freeDst, gen.Fanout(8))
		if !ok {
			continue
		}
		id, err := net.Add(c)
		if err != nil {
			t.Fatalf("step %d: blocked with f=%d failures at m=bound+%d: %v", i, f, f, err)
		}
		held = append(held, live{id: id, conn: c.Normalize()})
		freeSrc = removeSlot(freeSrc, c.Source)
		for _, dd := range c.Normalize().Dests {
			freeDst = removeSlot(freeDst, dd)
		}
	}
	mustVerify(t, net)
}
