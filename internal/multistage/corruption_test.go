package multistage

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/wdm"
)

// These white-box tests corrupt internal state deliberately and assert
// that Verify detects each corruption class — the negative side of the
// verification contract (a verifier that never fails is vacuous).

func corruptibleNetwork(t *testing.T) *Network {
	t.Helper()
	net := mustNetwork(t, Params{N: 4, K: 2, R: 2, Model: wdm.MAW, Construction: MAWDominant})
	mustAdd(t, net, conn(pw(0, 0), pw(2, 1), pw(3, 0)))
	mustAdd(t, net, conn(pw(1, 1), pw(0, 0)))
	mustVerify(t, net)
	return net
}

func TestVerifyDetectsLeakedLink(t *testing.T) {
	net := corruptibleNetwork(t)
	// Mark an unused link wavelength as held by a phantom connection.
	for j := range net.outLink {
		for p := range net.outLink[j] {
			for w, v := range net.outLink[j][p] {
				if v == freeLink {
					net.outLink[j][p][w] = 999
					err := net.Verify()
					if err == nil || !strings.Contains(err.Error(), "leaked") {
						t.Fatalf("leaked link not detected: %v", err)
					}
					return
				}
			}
		}
	}
	t.Fatal("no free link found to corrupt")
}

func TestVerifyDetectsStolenLink(t *testing.T) {
	net := corruptibleNetwork(t)
	// Reassign a held link wavelength to the wrong connection id.
	for j := range net.outLink {
		for p := range net.outLink[j] {
			for w, v := range net.outLink[j][p] {
				if v != freeLink {
					net.outLink[j][p][w] = v + 1000
					err := net.Verify()
					if err == nil || !strings.Contains(err.Error(), "holds") {
						t.Fatalf("stolen link not detected: %v", err)
					}
					return
				}
			}
		}
	}
	t.Fatal("no held link found to corrupt")
}

func TestVerifyDetectsModuleFault(t *testing.T) {
	// Break an SOA gate inside a middle module carrying traffic: the
	// per-module optical check must flag the middle stage.
	net := corruptibleNetwork(t)
	for j, m := range net.midMods {
		sw, ok := m.(interface {
			Fabric() *fabric.Fabric
			Len() int
		})
		if !ok || sw.Len() == 0 {
			continue
		}
		fab := sw.Fabric()
		for _, g := range fab.ElementsOf(fabric.Gate) {
			if fab.GateOn(g) {
				fab.SetGate(g, false)
				err := net.Verify()
				if err == nil || !strings.Contains(err.Error(), "middle module") {
					t.Fatalf("middle module %d fault not attributed: %v", j, err)
				}
				return
			}
		}
	}
	t.Fatal("no loaded middle module found")
}

func TestVerifyDetectsOutputStageFault(t *testing.T) {
	net := corruptibleNetwork(t)
	for p, m := range net.outMods {
		if m.Len() == 0 {
			continue
		}
		fab := m.Fabric()
		for _, g := range fab.ElementsOf(fabric.Gate) {
			if fab.GateOn(g) {
				fab.SetGate(g, false)
				err := net.Verify()
				if err == nil || !strings.Contains(err.Error(), "output module") {
					t.Fatalf("output module %d fault not attributed: %v", p, err)
				}
				return
			}
		}
	}
	t.Fatal("no loaded output module found")
}

func TestVerifyDetectsLostSubConnection(t *testing.T) {
	net := corruptibleNetwork(t)
	// Release a middle-module sub-connection behind the router's back.
	for id, rc := range net.conns {
		for j, cid := range rc.midConn {
			if err := net.midMods[j].Release(cid); err != nil {
				t.Fatal(err)
			}
			err := net.Verify()
			if err == nil {
				t.Fatalf("connection %d: lost middle sub-connection undetected", id)
			}
			return
		}
	}
}
