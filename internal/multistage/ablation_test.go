package multistage

import (
	"testing"

	"repro/internal/wdm"
)

// TestFirstFitStrategyRoutes sanity-checks the FirstFit ablation: it
// must still route ordinary traffic correctly (just without the greedy
// guarantee).
func TestFirstFitStrategyRoutes(t *testing.T) {
	net := mustNetwork(t, Params{
		N: 8, K: 2, R: 4, Model: wdm.MSW, Strategy: FirstFit,
	})
	mustAdd(t, net, conn(pw(0, 0), pw(1, 0), pw(3, 0), pw(5, 0), pw(7, 0)))
	mustAdd(t, net, conn(pw(4, 1), pw(0, 1), pw(6, 1)))
	mustVerify(t, net)
}

// TestConservativeLinksWastesCapacity demonstrates the set-vs-multiset
// ablation of the destination multisets (Eqs. 2-5): with plain-set link
// semantics, an MAW-dominant network blocks a request that the multiset
// semantics routes through partially used links.
func TestConservativeLinksWastesCapacity(t *testing.T) {
	// Single middle module, k=2: one connection touches the links; under
	// conservative semantics a second connection from the same input
	// module finds no "untouched" middle link and blocks, while the
	// multiset router uses the links' second wavelength.
	base := Params{N: 4, K: 2, R: 2, M: 1, X: 1, Model: wdm.MAW, Construction: MAWDominant}
	a := conn(pw(0, 0), pw(3, 0))
	b := conn(pw(1, 0), pw(2, 0))

	multi := mustNetwork(t, base)
	mustAdd(t, multi, a)
	mustAdd(t, multi, b) // second wavelength of the shared links
	mustVerify(t, multi)

	consBase := base
	consBase.ConservativeLinks = true
	cons := mustNetwork(t, consBase)
	mustAdd(t, cons, a)
	if _, err := cons.Add(b); !IsBlocked(err) {
		t.Errorf("conservative links should block the second connection, got %v", err)
	}
}

// TestStrategyString covers the diagnostic names.
func TestStrategyString(t *testing.T) {
	if GreedyMinIntersection.String() != "greedy-min-intersection" || FirstFit.String() != "first-fit" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy name empty")
	}
}

// TestFirstFitMulticastSplit checks that FirstFit still honours the
// <= X split limit and produces consistent linkage.
func TestFirstFitMulticastSplit(t *testing.T) {
	net := mustNetwork(t, Params{
		N: 16, K: 2, R: 4, Model: wdm.MAW, Construction: MAWDominant, Strategy: FirstFit,
	})
	// Broad multicast across all four output modules.
	mustAdd(t, net, conn(pw(0, 0), pw(2, 1), pw(6, 0), pw(10, 1), pw(14, 0)))
	mustAdd(t, net, conn(pw(1, 1), pw(3, 0), pw(7, 1)))
	mustVerify(t, net)
}
