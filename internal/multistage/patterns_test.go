package multistage

import (
	"testing"

	"repro/internal/wdm"
	"repro/internal/workload"
)

// TestTrafficPatternsRoute drives the classic deterministic patterns
// through theorem-sized networks of both constructions: shifts,
// transpose permutations, hotspots and full broadcasts must all route
// and verify. Broadcast is the extreme the nonblocking analysis is
// hardest for (fanout r at every module).
func TestTrafficPatternsRoute(t *testing.T) {
	d := wdm.Dim{N: 8, K: 2}
	for _, constr := range []Construction{MSWDominant, MAWDominant} {
		for _, pat := range []struct {
			p      workload.Pattern
			stride int
		}{
			{workload.Shift, 1},
			{workload.Shift, 3},
			{workload.Transpose, 3},
			{workload.Hotspot, 2},
			{workload.Broadcast, 0},
		} {
			a, err := workload.PatternAssignment(pat.p, d, pat.stride)
			if err != nil {
				t.Fatalf("%v: %v", pat.p, err)
			}
			net := mustNetwork(t, Params{
				N: 8, K: 2, R: 4, Model: wdm.MSW, Construction: constr,
			})
			if _, err := net.AddAssignment(a); err != nil {
				t.Errorf("%v/%v stride %d: %v", constr, pat.p, pat.stride, err)
				continue
			}
			mustVerify(t, net)
		}
	}
}

// TestHotspotStressesFewLinks: a hotspot pattern concentrates all
// arrivals on one output module's links; utilization must show the
// asymmetry (busiest out-link saturated while average stays low).
func TestHotspotStressesFewLinks(t *testing.T) {
	d := wdm.Dim{N: 8, K: 2}
	a, err := workload.PatternAssignment(workload.Hotspot, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := mustNetwork(t, Params{N: 8, K: 2, R: 4, Model: wdm.MSW, Lite: true})
	if _, err := net.AddAssignment(a); err != nil {
		t.Fatal(err)
	}
	u := net.Utilization()
	if u.BusiestOutLink == 0 {
		t.Fatal("no out-link use recorded")
	}
	if u.OutLinkBusy > 0.2 {
		t.Errorf("hotspot should leave most links idle; OutLinkBusy = %.2f", u.OutLinkBusy)
	}
}
