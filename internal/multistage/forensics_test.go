package multistage

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/wdm"
)

// tinyBlockingNet builds the smallest fabric that blocks on demand:
// MSW model, MSW-dominant, N=16 k=2 r=4, a single middle module and a
// split limit of 1.
func tinyBlockingNet(t *testing.T) *Network {
	t.Helper()
	net, err := New(Params{
		N: 16, K: 2, R: 4, M: 1, X: 1,
		Model: wdm.MSW, Construction: MSWDominant, Lite: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func mustAddStr(t *testing.T, net *Network, s string) int {
	t.Helper()
	c, err := wdm.ParseConnection(s)
	if err != nil {
		t.Fatal(err)
	}
	id, err := net.Add(c)
	if err != nil {
		t.Fatalf("Add(%q): %v", s, err)
	}
	return id
}

func addExpectBlocked(t *testing.T, net *Network, s string) *BlockReport {
	t.Helper()
	c, err := wdm.ParseConnection(s)
	if err != nil {
		t.Fatal(err)
	}
	_, err = net.Add(c)
	if !IsBlocked(err) {
		t.Fatalf("Add(%q) = %v, want blocked", s, err)
	}
	rep, ok := AsBlockReport(err)
	if !ok {
		t.Fatalf("Add(%q): blocked error carries no report: %v", s, err)
	}
	return rep
}

// TestBlockReportOutLinkBusy blocks on the middle->output link: the
// single middle module's λ0 link to output module 1 is occupied, and
// the report must name that link, that wavelength, and nothing else.
func TestBlockReportOutLinkBusy(t *testing.T) {
	net := tinyBlockingNet(t)
	mustAddStr(t, net, "0.0>4.0") // occupies in-link 0->mid0 λ0 and out-link mid0->1 λ0

	// Source from input module 1 (port 4 is local 0 of module 1): its
	// in-link to the middle is free, but the out-link to module 1 on λ0
	// is taken.
	rep := addExpectBlocked(t, net, "4.0>5.0")

	if rep.Op != "add" || rep.SrcModule != 1 || rep.SrcWave != 0 {
		t.Fatalf("report header = %+v, want op=add src_module=1 src_wave=0", rep)
	}
	if len(rep.Uncovered) != 1 || rep.Uncovered[0] != 1 {
		t.Fatalf("Uncovered = %v, want [1]", rep.Uncovered)
	}
	if len(rep.Middles) != 1 {
		t.Fatalf("Middles = %v, want exactly 1 entry", rep.Middles)
	}
	md := rep.Middles[0]
	if md.State != MiddleOutLinkBusy {
		t.Fatalf("middle state = %q, want %q", md.State, MiddleOutLinkBusy)
	}
	if len(md.BlockedOut) != 1 || md.BlockedOut[0].OutModule != 1 {
		t.Fatalf("BlockedOut = %v, want out module 1", md.BlockedOut)
	}
	if got := md.BlockedOut[0].BusyWaves; len(got) != 1 || got[0] != 0 {
		t.Fatalf("BusyWaves = %v, want [0] (MSW keeps λ0)", got)
	}
	// The snapshot must reflect the one routed connection: 2 busy link
	// wavelengths (one per stage).
	if rep.Utilization.InBusy != 1 || rep.Utilization.OutBusy != 1 {
		t.Fatalf("utilization = %+v, want 1 busy per stage", rep.Utilization)
	}
	if !strings.Contains(rep.String(), "out-link-busy") {
		t.Fatalf("String() = %q, want out-link-busy mentioned", rep.String())
	}
}

// TestBlockReportInLinkBusy blocks on the input-stage link: same input
// module, different wavelength path exhausted.
func TestBlockReportInLinkBusy(t *testing.T) {
	net := tinyBlockingNet(t)
	mustAddStr(t, net, "0.0>4.0") // in-link 0->mid0 λ0 now busy

	// Port 1 is also input module 0, λ0: the only in-link candidate is
	// taken, so no middle is available at all.
	rep := addExpectBlocked(t, net, "1.0>8.0")
	md := rep.Middles[0]
	if md.State != MiddleInLinkBusy {
		t.Fatalf("middle state = %q, want %q", md.State, MiddleInLinkBusy)
	}
	if len(md.WavesTried) != 1 || md.WavesTried[0] != 0 {
		t.Fatalf("WavesTried = %v, want [0] (wavelength-locked first stages)", md.WavesTried)
	}
	if rep.SplitsUsed != 0 {
		t.Fatalf("SplitsUsed = %d, want 0", rep.SplitsUsed)
	}
}

// TestBlockReportFailedMiddle marks the only middle module failed; the
// report must say "failed", not misattribute the block to a link.
func TestBlockReportFailedMiddle(t *testing.T) {
	net := tinyBlockingNet(t)
	if err := net.FailMiddle(0); err != nil {
		t.Fatal(err)
	}
	rep := addExpectBlocked(t, net, "0.0>4.0")
	if got := rep.Middles[0].State; got != MiddleFailed {
		t.Fatalf("middle state = %q, want %q", got, MiddleFailed)
	}
}

// TestBlockReportSelectedAndSplitLimit drives a multicast into a fabric
// with two middles but a split limit of 1: one middle is selected, the
// residual module stays uncovered, and any middle that could still have
// served it must be diagnosed as split-limit.
func TestBlockReportSelectedAndSplitLimit(t *testing.T) {
	net, err := New(Params{
		N: 16, K: 2, R: 4, M: 2, X: 1,
		Model: wdm.MSW, Construction: MSWDominant, Lite: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pin middle 0 away from output module 2 and middle 1 away from
	// output module 1 (both on λ0), so a λ0 fanout to modules {1,2}
	// needs two splits and the limit x=1 forbids it.
	mustAddStr(t, net, "4.0>8.0") // ties pick middle 0: out-link mid0->2 λ0 busy
	mustAddStr(t, net, "5.0>6.0") // in-link 1->mid0 λ0 busy, so middle 1 serves: out-link mid1->1 λ0 busy

	c, _ := wdm.ParseConnection("0.0>5.0,9.0")
	_, err = net.Add(c)
	if !IsBlocked(err) {
		t.Fatalf("Add = %v, want blocked (x=1, two modules, one split)", err)
	}
	rep, _ := AsBlockReport(err)
	var selected, other int
	states := map[MiddleState]int{}
	for _, md := range rep.Middles {
		states[md.State]++
		if md.State == MiddleSelected {
			selected++
			if len(md.Serves) == 0 {
				t.Fatalf("selected middle %d serves nothing: %+v", md.Middle, md)
			}
		} else {
			other++
		}
	}
	if selected != 1 {
		t.Fatalf("middle states = %v, want exactly one selected", states)
	}
	if states[MiddleSplitLimit]+states[MiddleOutLinkBusy] != 1 {
		t.Fatalf("middle states = %v, want the other middle split-limit or out-link-busy", states)
	}
	if rep.SplitsUsed != 1 || rep.X != 1 {
		t.Fatalf("splits = %d/%d, want 1/1", rep.SplitsUsed, rep.X)
	}
}

// TestBlockReportMAWWavelengths checks the MAW-dominant diagnosis lists
// every wavelength candidate on a fully busy link.
func TestBlockReportMAWWavelengths(t *testing.T) {
	net, err := New(Params{
		N: 8, K: 2, R: 4, M: 1, X: 1,
		Model: wdm.MAW, Construction: MAWDominant, Lite: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate both wavelengths of in-link module0 -> mid0.
	mustAddStr(t, net, "0.0>2.0")
	mustAddStr(t, net, "1.1>3.1")

	// Module 0 has ports {0,1}; a new source there finds both in-link
	// wavelengths busy.
	rep := addExpectBlocked(t, net, "0.1>4.0")
	md := rep.Middles[0]
	if md.State != MiddleInLinkBusy {
		t.Fatalf("middle state = %q, want %q", md.State, MiddleInLinkBusy)
	}
	if len(md.WavesTried) != 2 {
		t.Fatalf("WavesTried = %v, want both wavelengths", md.WavesTried)
	}
}

// TestBlockReportBranchOp asserts a blocked AddBranch re-tags the
// report as a branch operation while leaving the original connection
// intact.
func TestBlockReportBranchOp(t *testing.T) {
	net := tinyBlockingNet(t)
	id := mustAddStr(t, net, "0.0>4.0")
	mustAddStr(t, net, "4.0>8.0") // occupies out-link mid0->2 λ0

	err := net.AddBranch(id, wdm.PortWave{Port: 9, Wave: 0}) // port 9 = output module 2
	if !IsBlocked(err) {
		t.Fatalf("AddBranch = %v, want blocked", err)
	}
	rep, ok := AsBlockReport(err)
	if !ok || rep.Op != "branch" {
		t.Fatalf("report = %+v (ok=%v), want op=branch", rep, ok)
	}
	if _, live := net.Connection(id); !live {
		t.Fatal("original connection lost after blocked branch")
	}
}

// TestAsBlockReportNonBlocking: inadmissible errors carry no report.
func TestAsBlockReportNonBlocking(t *testing.T) {
	net := tinyBlockingNet(t)
	mustAddStr(t, net, "0.0>4.0")
	c, _ := wdm.ParseConnection("0.0>8.0") // busy source slot: inadmissible
	_, err := net.Add(c)
	if err == nil || IsBlocked(err) {
		t.Fatalf("Add = %v, want inadmissible error", err)
	}
	if rep, ok := AsBlockReport(err); ok {
		t.Fatalf("AsBlockReport on inadmissible error = %+v, want none", rep)
	}
	if rep, ok := AsBlockReport(nil); ok {
		t.Fatalf("AsBlockReport(nil) = %+v, want none", rep)
	}
	if !errors.Is(&BlockedError{Detail: "x"}, ErrBlocked) {
		t.Fatal("BlockedError does not unwrap to ErrBlocked")
	}
}
