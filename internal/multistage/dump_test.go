package multistage

import (
	"strings"
	"testing"

	"repro/internal/wdm"
	"repro/internal/workload"
)

func TestDumpState(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 2, R: 2, M: 2, X: 1, Model: wdm.MAW, Construction: MAWDominant, Lite: true})
	mustAdd(t, net, conn(pw(0, 0), pw(3, 1)))
	if err := net.FailMiddle(1); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := net.DumpState(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"N=4 k=2 r=2", "failed middles: [1]", "input-stage links",
		"output-stage links", "live connections (1)", "via middles", "utilization",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 2, R: 2, M: 2, X: 1, Model: wdm.MAW, Construction: MAWDominant, Lite: true})
	mustAdd(t, net, conn(pw(0, 0), pw(3, 1)))
	if err := net.FailMiddle(1); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := net.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, want := range []string{
		"digraph multistage", "IN 0", "MID 0", "OUT 1",
		"in0 -> mid0", "mid0 -> out1", "1/2", // the occupied link label
		"#ffb0b0", // failed middle highlighted
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Edge count: r*m + m*r = 2*2 + 2*2.
	if got := strings.Count(dot, "->"); got != 8 {
		t.Errorf("%d edges, want 8", got)
	}
}

func TestWriteDOTNestedMiddleLabel(t *testing.T) {
	net := mustNetwork(t, Params{N: 16, K: 1, R: 4, Model: wdm.MSW, Depth: 5, Lite: true})
	var b strings.Builder
	if err := net.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "3-stage") {
		t.Error("nested middle modules not labelled as subnetworks")
	}
}

func TestRouteBatchOrdersByFanout(t *testing.T) {
	// An assignment whose given order blocks online but routes when the
	// big multicast goes first: the unicasts would otherwise grab middle
	// links the multicast needs together. Construct on a tight network:
	// m=2, x=1, k=1, r=2 modules of 2.
	net := mustNetwork(t, Params{N: 4, K: 1, R: 2, M: 2, X: 1, Model: wdm.MSW, Lite: true})
	a := wdm.Assignment{
		conn(pw(1, 0), pw(0, 0)),           // unicast from module 0
		conn(pw(0, 0), pw(1, 0), pw(3, 0)), // multicast needing one middle with both modules free
	}
	// Online order: the unicast takes mid0 (in0->m0, m0->out1); the
	// multicast from module 0 then has only mid1, which must cover both
	// modules: m1->out0 and m1->out1 free -> actually routable. Make it
	// harder: occupy mid1's link to module 1 from module 1 first.
	pre := mustAdd(t, net, conn(pw(3, 0), pw(2, 0))) // may take either middle
	_ = pre
	ids, err := net.RouteBatch(a)
	if err != nil {
		t.Fatalf("RouteBatch: %v", err)
	}
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
	// ids must be in input order: ids[1] is the multicast.
	got, ok := net.Connection(ids[1])
	if !ok || got.Fanout() != 2 {
		t.Errorf("ids not in input order: %v -> %v", ids, got)
	}
	mustVerify(t, net)
}

func TestRouteBatchRollsBack(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 1, R: 2, M: 1, X: 1, Model: wdm.MSW, Lite: true})
	bad := wdm.Assignment{
		conn(pw(0, 0), pw(2, 0)),
		conn(pw(1, 0), pw(3, 0)), // same in-link plane on the only middle
	}
	if _, err := net.RouteBatch(bad); err == nil {
		t.Fatal("unroutable batch accepted")
	}
	if net.Len() != 0 {
		t.Errorf("rollback left %d connections", net.Len())
	}
}

func TestRouteBatchHandlesPatterns(t *testing.T) {
	d := wdm.Dim{N: 8, K: 2}
	a, err := workload.PatternAssignment(workload.Broadcast, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	net := mustNetwork(t, Params{N: 8, K: 2, R: 4, Model: wdm.MSW, Lite: true})
	if _, err := net.RouteBatch(a); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, net)
}
