package multistage

import (
	"fmt"
	"sort"

	"repro/internal/wdm"
)

// Exported route-record encoding. A RouteRecord is the externally
// serializable form of the internal routing bookkeeping AddBranch's
// restore path replays: the exact middle modules, link wavelengths and
// (implicitly) module sub-connections a connection occupies. It is what
// a durable state plane persists per acknowledged session — re-applying
// the record through Reinstall performs no router search, so a recorded
// route can always be re-materialized into a fabric whose recorded
// resources are free, regardless of how much the network has churned or
// which middle modules have failed since. That turns the paper's
// "state below the bound is always realizable" insight into crash
// recovery: replaying records preserves the zero-blocking invariant by
// construction.

// RouteLeg is one claimed input-stage link wavelength: the link from
// the connection's input module to middle module Middle carries the
// connection on Wave.
type RouteLeg struct {
	Middle int            `json:"middle"`
	Wave   wdm.Wavelength `json:"wave"`
}

// RouteHop is one claimed output-stage link wavelength: the link from
// middle module Middle to output module Out carries the connection on
// Wave.
type RouteHop struct {
	Middle int            `json:"middle"`
	Out    int            `json:"out"`
	Wave   wdm.Wavelength `json:"wave"`
}

// RouteRecord is the full serializable route of one live connection.
// Conn uses the repository's compact text codec (package wdm) so the
// record is self-describing in logs and dumps.
type RouteRecord struct {
	Conn string     `json:"conn"`
	In   []RouteLeg `json:"in"`
	Out  []RouteHop `json:"out"`
}

// RouteRecord exports the recorded route of live connection id. The
// slices are ordered (legs by middle, hops by middle then output
// module) so equal routes encode identically.
func (net *Network) RouteRecord(id int) (RouteRecord, bool) {
	rc, ok := net.conns[id]
	if !ok {
		return RouteRecord{}, false
	}
	rec := RouteRecord{Conn: wdm.FormatConnection(rc.conn)}
	for j, w := range rc.inWave {
		rec.In = append(rec.In, RouteLeg{Middle: j, Wave: w})
	}
	sort.Slice(rec.In, func(a, b int) bool { return rec.In[a].Middle < rec.In[b].Middle })
	for jp, w := range rc.outWave {
		rec.Out = append(rec.Out, RouteHop{Middle: jp[0], Out: jp[1], Wave: w})
	}
	sort.Slice(rec.Out, func(a, b int) bool {
		if rec.Out[a].Middle != rec.Out[b].Middle {
			return rec.Out[a].Middle < rec.Out[b].Middle
		}
		return rec.Out[a].Out < rec.Out[b].Out
	})
	return rec, true
}

// decode converts the record back into the internal routing form,
// validating it against the network's shape.
func (rec RouteRecord) decode(net *Network) (*routed, error) {
	conn, err := wdm.ParseConnection(rec.Conn)
	if err != nil {
		return nil, fmt.Errorf("multistage: route record: %w", err)
	}
	conn = conn.Normalize()
	if err := net.Shape().CheckConnection(net.params.Model, conn); err != nil {
		return nil, fmt.Errorf("multistage: route record %q: %w", rec.Conn, err)
	}
	srcMod, _ := net.splitPort(conn.Source.Port)
	rc := &routed{
		conn:     conn,
		srcMod:   srcMod,
		inConnID: -1,
		midConn:  make(map[int]int, len(rec.In)),
		outConn:  make(map[int]int, len(rec.Out)),
		inWave:   make(map[int]wdm.Wavelength, len(rec.In)),
		outWave:  make(map[[2]int]wdm.Wavelength, len(rec.Out)),
	}
	for _, leg := range rec.In {
		if leg.Middle < 0 || leg.Middle >= len(net.midMods) || int(leg.Wave) < 0 || int(leg.Wave) >= net.params.K {
			return nil, fmt.Errorf("multistage: route record %q: input leg %+v out of range", rec.Conn, leg)
		}
		if _, dup := rc.inWave[leg.Middle]; dup {
			return nil, fmt.Errorf("multistage: route record %q: duplicate input leg for middle %d", rec.Conn, leg.Middle)
		}
		rc.inWave[leg.Middle] = leg.Wave
	}
	for _, hop := range rec.Out {
		if hop.Middle < 0 || hop.Middle >= len(net.midMods) || hop.Out < 0 || hop.Out >= net.params.R ||
			int(hop.Wave) < 0 || int(hop.Wave) >= net.params.K {
			return nil, fmt.Errorf("multistage: route record %q: output hop %+v out of range", rec.Conn, hop)
		}
		key := [2]int{hop.Middle, hop.Out}
		if _, dup := rc.outWave[key]; dup {
			return nil, fmt.Errorf("multistage: route record %q: duplicate output hop %v", rec.Conn, key)
		}
		if _, have := rc.inWave[hop.Middle]; !have {
			return nil, fmt.Errorf("multistage: route record %q: output hop rides middle %d with no input leg", rec.Conn, hop.Middle)
		}
		rc.outWave[key] = hop.Wave
	}
	if len(rc.inWave) == 0 {
		return nil, fmt.Errorf("multistage: route record %q: no input legs", rec.Conn)
	}
	return rc, nil
}

// Reinstall re-materializes a recorded route exactly as recorded under
// a fresh connection id, with no router search: it succeeds whenever
// the recorded slots and link wavelengths are free. It is the crash-
// recovery primitive — a set of records that coexisted in a fabric is
// mutually conflict-free, so replaying all of them into an empty fabric
// of the same parameters cannot fail, and therefore cannot block,
// whatever the middle-stage provisioning or failure state.
func (net *Network) Reinstall(rec RouteRecord) (int, error) {
	rc, err := rec.decode(net)
	if err != nil {
		return 0, err
	}
	if owner, busy := net.srcBusy[rc.conn.Source]; busy {
		return 0, fmt.Errorf("multistage: reinstall %q: source slot used by connection %d", rec.Conn, owner)
	}
	for _, d := range rc.conn.Dests {
		if owner, busy := net.dstBusy[d]; busy {
			return 0, fmt.Errorf("multistage: reinstall %q: destination slot %v used by connection %d", rec.Conn, d, owner)
		}
	}
	id := net.nextID
	if err := net.reinstall(id, rc); err != nil {
		return 0, err
	}
	net.nextID++
	return id, nil
}
