package multistage

import (
	"math/rand"
	"testing"

	"repro/internal/wdm"
	"repro/internal/workload"
)

// TestRepackRecoversBlockedRequests runs random traffic on a network
// with half the sufficient middle-stage count: plain Add must block
// somewhere, and AddWithRepack must recover at least some of those
// blocks (rearrangeable operation beats strict-sense on the same
// hardware). After every repack the network must verify cleanly.
func TestRepackRecoversBlockedRequests(t *testing.T) {
	suffM, _ := SufficientMinM(MSWDominant, wdm.MSW, 4, 4, 2)
	net := mustNetwork(t, Params{
		N: 16, K: 2, R: 4, M: suffM / 2, Model: wdm.MSW, Lite: true,
	})
	d := wdm.Dim{N: 16, K: 2}
	gen := workload.NewGenerator(9, wdm.MSW, d)
	rng := rand.New(rand.NewSource(10))

	freeSrc := allSlots(d)
	freeDst := allSlots(d)
	type live struct {
		id   int
		conn wdm.Connection
	}
	var held []live
	blocked, repacked := 0, 0
	for i := 0; i < 1200; i++ {
		// Random departures keep occupancy moderate.
		if len(held) > 0 && rng.Intn(3) == 0 {
			v := held[rng.Intn(len(held))]
			if err := net.Release(v.id); err != nil {
				t.Fatal(err)
			}
			for j := range held {
				if held[j].id == v.id {
					held = append(held[:j], held[j+1:]...)
					break
				}
			}
			freeSrc = append(freeSrc, v.conn.Source)
			freeDst = append(freeDst, v.conn.Dests...)
		}
		c, ok := gen.Connection(freeSrc, freeDst, gen.Fanout(8))
		if !ok {
			continue
		}
		id, did, err := net.AddWithRepack(c)
		if err != nil {
			if !IsBlocked(err) {
				t.Fatalf("step %d: non-blocking failure: %v", i, err)
			}
			blocked++
			continue
		}
		if did {
			repacked++
			if err := net.Verify(); err != nil {
				t.Fatalf("step %d: verify after repack: %v", i, err)
			}
		}
		held = append(held, live{id: id, conn: c})
		freeSrc = removeSlot(freeSrc, c.Source)
		for _, dd := range c.Dests {
			freeDst = removeSlot(freeDst, dd)
		}
	}
	if repacked == 0 {
		t.Error("repacking never triggered — test scenario too easy")
	}
	t.Logf("repacked %d requests; %d remained blocked even with rearrangement", repacked, blocked)
}

// TestRepackDeterministicScenario is a hand-derived blocked-but-
// rearrangeable state (N=6, k=1, r=3 modules of 2 ports, m=2, x=1):
//
//	A: 1->5 rides mid0 (links in0->m0, m0->out2)
//	D: 4->0 rides mid0 (in2->m0, m0->out0)
//	B: 5->2 rides mid1 (in2->m1, m1->out1; mid0's in-link was taken by D)
//	C: 0->3 then finds mid0's input link taken by A and mid1's output
//	        link to module 1 taken by B: strict-sense BLOCKED,
//
// yet the per-plane bipartite demand has maximum degree 2 = m, so a
// 2-coloring exists (König): rearrangement must route all four. Existing
// connections must keep their ids and remain individually releasable.
func TestRepackDeterministicScenario(t *testing.T) {
	net := mustNetwork(t, Params{N: 6, K: 1, R: 3, M: 2, X: 1, Model: wdm.MSW, Lite: true})
	idA := mustAdd(t, net, conn(pw(1, 0), pw(5, 0)))
	idD := mustAdd(t, net, conn(pw(4, 0), pw(0, 0)))
	idB := mustAdd(t, net, conn(pw(5, 0), pw(2, 0)))

	c := conn(pw(0, 0), pw(3, 0))
	if _, err := net.Add(c); !IsBlocked(err) {
		t.Fatalf("plain Add should block, got %v", err)
	}
	id, did, err := net.AddWithRepack(c)
	if err != nil {
		t.Fatalf("repack failed on a König-colorable demand: %v", err)
	}
	if !did {
		t.Fatal("repack path not taken")
	}
	for _, want := range []int{idA, idD, idB, id} {
		if _, ok := net.Connection(want); !ok {
			t.Errorf("connection id %d lost across repack", want)
		}
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, rid := range []int{idA, idD, idB, id} {
		if err := net.Release(rid); err != nil {
			t.Errorf("release %d: %v", rid, err)
		}
	}
	if net.Len() != 0 {
		t.Errorf("%d live after releases", net.Len())
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRepackFailureLeavesStateUntouched: when even rearrangement cannot
// fit the request, the live connections must be exactly as before.
func TestRepackFailureLeavesStateUntouched(t *testing.T) {
	// Fig. 10 situation: m=1, both connections need λ0 on the same
	// input-stage link — no ordering fixes that.
	net := mustNetwork(t, Params{N: 4, K: 2, R: 2, M: 1, X: 1, Model: wdm.MAW, Lite: true})
	idA := mustAdd(t, net, conn(pw(0, 0), pw(3, 0)))
	before := net.Connections()
	_, did, err := net.AddWithRepack(conn(pw(1, 0), pw(2, 0)))
	if !IsBlocked(err) || did {
		t.Fatalf("want un-repackable block, got did=%v err=%v", did, err)
	}
	after := net.Connections()
	if len(after) != len(before) {
		t.Fatalf("connection count changed: %d -> %d", len(before), len(after))
	}
	if _, ok := net.Connection(idA); !ok {
		t.Error("original connection lost")
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRepackPlainSuccessPassesThrough: when Add succeeds directly,
// AddWithRepack must not rearrange.
func TestRepackPlainSuccessPassesThrough(t *testing.T) {
	net := mustNetwork(t, Params{N: 8, K: 2, R: 4, Model: wdm.MAW, Lite: true})
	_, did, err := net.AddWithRepack(conn(pw(0, 0), pw(7, 1)))
	if err != nil || did {
		t.Errorf("plain add: did=%v err=%v", did, err)
	}
}

func allSlots(d wdm.Dim) []wdm.PortWave {
	out := make([]wdm.PortWave, 0, d.Slots())
	for p := 0; p < d.N; p++ {
		for w := 0; w < d.K; w++ {
			out = append(out, wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)})
		}
	}
	return out
}

func removeSlot(slots []wdm.PortWave, s wdm.PortWave) []wdm.PortWave {
	for i, v := range slots {
		if v == s {
			slots[i] = slots[len(slots)-1]
			return slots[:len(slots)-1]
		}
	}
	return slots
}
