package multistage

import (
	"math/rand"
	"testing"

	"repro/internal/wdm"
	"repro/internal/workload"
)

// TestUtilizationZeroAfterChurn guards the serving path's occupancy
// gauges against leak bugs: after hundreds of random add/branch/release
// cycles that return the network to empty, every stage's occupancy
// must read exactly zero — no link wavelength, module slot, or busy-set
// entry may survive its connection.
func TestUtilizationZeroAfterChurn(t *testing.T) {
	configs := []Params{
		{N: 16, K: 2, R: 4, Model: wdm.MSW, Construction: MSWDominant, Lite: true},
		{N: 16, K: 2, R: 4, Model: wdm.MAW, Construction: MAWDominant, Lite: true},
		// Below the bound, so some adds block mid-churn: blocked and
		// restored-after-blocked-branch paths must not leak either.
		{N: 16, K: 2, R: 4, M: 3, X: 1, Model: wdm.MSW, Construction: MSWDominant, Lite: true},
	}
	for _, p := range configs {
		p := p
		t.Run(p.Construction.String(), func(t *testing.T) {
			net, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			churn(t, net, 400, 11)

			if n := net.Len(); n != 0 {
				t.Fatalf("%d connections live after full release", n)
			}
			u := net.Utilization()
			if u.InBusy != 0 || u.OutBusy != 0 {
				t.Fatalf("occupancy leaked: %+v", u)
			}
			if u.InLinkBusy != 0 || u.OutLinkBusy != 0 || u.BusiestInLink != 0 || u.BusiestOutLink != 0 {
				t.Fatalf("utilization not zero on empty network: %+v", u)
			}
			if u.InTotal == 0 || u.OutTotal == 0 {
				t.Fatalf("utilization totals empty: %+v", u)
			}
			if len(net.srcBusy) != 0 || len(net.dstBusy) != 0 {
				t.Fatalf("busy maps leaked: %d src, %d dst", len(net.srcBusy), len(net.dstBusy))
			}
		})
	}
}

// churn runs cycles random admissible add/branch/release operations and
// then releases everything still live.
func churn(t *testing.T, net *Network, cycles int, seed int64) {
	t.Helper()
	p := net.Params()
	dim := wdm.Dim{N: p.N, K: p.K}
	gen := workload.NewGenerator(seed, p.Model, dim)
	rng := rand.New(rand.NewSource(seed + 1))

	type live struct {
		id   int
		conn wdm.Connection
	}
	var held []live
	busySrc := make(map[wdm.PortWave]bool)
	busyDst := make(map[wdm.PortWave]bool)
	freeSlots := func(busy map[wdm.PortWave]bool) []wdm.PortWave {
		var out []wdm.PortWave
		for port := 0; port < p.N; port++ {
			for w := 0; w < p.K; w++ {
				s := wdm.PortWave{Port: wdm.Port(port), Wave: wdm.Wavelength(w)}
				if !busy[s] {
					out = append(out, s)
				}
			}
		}
		return out
	}
	release := func(i int) {
		v := held[i]
		held = append(held[:i], held[i+1:]...)
		if err := net.Release(v.id); err != nil {
			t.Fatalf("Release(%d): %v", v.id, err)
		}
		delete(busySrc, v.conn.Source)
		for _, d := range v.conn.Dests {
			delete(busyDst, d)
		}
	}

	for i := 0; i < cycles; i++ {
		if len(held) > 0 && rng.Intn(3) == 0 {
			release(rng.Intn(len(held)))
			continue
		}
		c, ok := gen.Connection(freeSlots(busySrc), freeSlots(busyDst), gen.Fanout(p.N/4))
		if !ok {
			if len(held) == 0 {
				t.Fatal("generator starved with empty network")
			}
			release(0)
			continue
		}
		id, err := net.Add(c)
		if IsBlocked(err) {
			continue // below-bound config: fine, slots unchanged
		}
		if err != nil {
			t.Fatalf("Add(%v): %v", c, err)
		}
		held = append(held, live{id: id, conn: c})
		busySrc[c.Source] = true
		for _, d := range c.Dests {
			busyDst[d] = true
		}

		// Occasionally grow the newest session by one free same-λ slot;
		// blocked grows exercise the restore path.
		if rng.Intn(4) == 0 {
			s := &held[len(held)-1]
			if d, ok := growSlot(busyDst, s.conn, p.Model); ok {
				switch err := net.AddBranch(s.id, d); {
				case err == nil:
					s.conn = s.conn.Clone()
					s.conn.Dests = append(s.conn.Dests, d)
					busyDst[d] = true
				case IsBlocked(err):
					// restored: occupancy must be unchanged
				default:
					t.Fatalf("AddBranch(%d, %v): %v", s.id, d, err)
				}
			}
		}
	}
	for len(held) > 0 {
		release(0)
	}
}

// growSlot finds an admissible extra destination slot for c: free, on a
// port the connection does not already reach, wavelength-compatible
// with the model.
func growSlot(busyDst map[wdm.PortWave]bool, c wdm.Connection, model wdm.Model) (wdm.PortWave, bool) {
	used := make(map[wdm.Port]bool, len(c.Dests))
	for _, d := range c.Dests {
		used[d.Port] = true
	}
	for port := 0; port < 16; port++ {
		if used[wdm.Port(port)] {
			continue
		}
		s := wdm.PortWave{Port: wdm.Port(port), Wave: c.Source.Wave}
		if model == wdm.MAW {
			s.Wave = c.Dests[0].Wave
		}
		if !busyDst[s] {
			return s, true
		}
	}
	return wdm.PortWave{}, false
}
