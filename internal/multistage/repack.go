package multistage

import (
	"fmt"
	"sort"

	"repro/internal/wdm"
)

// AddWithRepack routes a connection like Add, but when the request
// blocks it attempts a *rearrangement*: tear every live connection down
// and re-route the whole set with the new request first and the existing
// connections in decreasing-fanout order. Strictly nonblocking operation
// (plain Add) needs the full Theorem 1/2 middle-stage counts;
// rearrangeable operation rides the same hardware much closer to the
// per-module link-capacity floor, at the cost of momentarily re-striping
// live traffic — the classic strict-sense vs rearrangeable trade-off,
// quantified by the repack benchmarks.
//
// The rearrangement is planned on a scratch (lite) network first and the
// live network is only touched when the complete plan is known to
// succeed, so a failed attempt leaves the network exactly as it was and
// returns the original blocking error. Existing connections keep their
// ids across a successful repack.
//
// The boolean result reports whether a rearrangement happened.
func (net *Network) AddWithRepack(c wdm.Connection) (int, bool, error) {
	id, err := net.Add(c)
	if err == nil || !IsBlocked(err) {
		return id, false, err
	}
	blockErr := err

	// Existing connections, largest fanout first (ties: oldest first) —
	// the same packing order the scheduler uses.
	type held struct {
		id   int
		conn wdm.Connection
	}
	existing := make([]held, 0, len(net.conns))
	for hid, rc := range net.conns {
		existing = append(existing, held{id: hid, conn: rc.conn.Clone()})
	}
	sort.Slice(existing, func(a, b int) bool {
		fa, fb := existing[a].conn.Fanout(), existing[b].conn.Fanout()
		if fa != fb {
			return fa > fb
		}
		return existing[a].id < existing[b].id
	})

	// Plan on a scratch network with identical routing parameters. The
	// router is deterministic, so a plan that succeeds here succeeds
	// identically on the live network.
	scratchParams := net.params
	scratchParams.Lite = true
	scratch, err := New(scratchParams)
	if err != nil {
		return 0, false, fmt.Errorf("multistage: repack planning: %w", err)
	}
	if _, err := scratch.Add(c); err != nil {
		return 0, false, blockErr
	}
	for _, h := range existing {
		if _, err := scratch.Add(h.conn); err != nil {
			return 0, false, blockErr
		}
	}

	// Apply: rebuild the live network along the planned order, then
	// restore the original ids so callers' handles stay valid.
	net.Reset()
	newID, err := net.Add(c)
	if err != nil {
		panic("multistage: repack apply diverged from plan: " + err.Error())
	}
	for _, h := range existing {
		rid, err := net.Add(h.conn)
		if err != nil {
			panic("multistage: repack apply diverged from plan: " + err.Error())
		}
		net.remapID(rid, h.id)
	}
	return newID, true, nil
}

// remapID renames a live connection's id from `from` to `to` across all
// bookkeeping (the connection map, slot occupancy, and link tables).
// `to` must be unused; ids are never reused by nextID, so restoring a
// historical id is safe.
func (net *Network) remapID(from, to int) {
	rc, ok := net.conns[from]
	if !ok {
		panic(fmt.Sprintf("multistage: remapID: no connection %d", from))
	}
	if _, clash := net.conns[to]; clash {
		panic(fmt.Sprintf("multistage: remapID: id %d already live", to))
	}
	delete(net.conns, from)
	net.conns[to] = rc
	net.srcBusy[rc.conn.Source] = to
	for _, d := range rc.conn.Dests {
		net.dstBusy[d] = to
	}
	for j, w := range rc.inWave {
		net.inLink[rc.srcMod][j][w] = to
	}
	for jp, w := range rc.outWave {
		net.outLink[jp[0]][jp[1]][w] = to
	}
}
