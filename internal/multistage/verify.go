package multistage

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/wdm"
)

// Verify validates the network end to end:
//
//  1. every module optically verifies its own live sub-connections
//     (signals propagate through the module's element graph and arrive
//     exactly at the intended slots) — unless the network was built Lite;
//  2. the cross-stage linkage of every network connection is consistent:
//     the input module emits to exactly the (middle module, wavelength)
//     pairs the middle modules receive on, the middle modules emit to
//     exactly the (output module, wavelength) pairs the output modules
//     receive on, and the output modules deliver exactly the network
//     connection's destination slots;
//  3. the link-occupancy tables agree with the per-module slot state.
//
// Together these demonstrate that every live multicast is carried as real
// signal paths through three stages of real switch hardware.
func (net *Network) Verify() error {
	if !net.params.Lite {
		for a, m := range net.inMods {
			if _, err := m.Verify(); err != nil {
				return fmt.Errorf("input module %d: %w", a, err)
			}
		}
		for j, m := range net.midMods {
			switch mod := m.(type) {
			case interface {
				Verify() (*fabric.Result, error)
			}: // a crossbar module
				if _, err := mod.Verify(); err != nil {
					return fmt.Errorf("middle module %d: %w", j, err)
				}
			case *Network: // a nested network: full recursive verification
				if err := mod.Verify(); err != nil {
					return fmt.Errorf("nested middle module %d: %w", j, err)
				}
			}
		}
		for p, m := range net.outMods {
			if _, err := m.Verify(); err != nil {
				return fmt.Errorf("output module %d: %w", p, err)
			}
		}
	}
	for id, rc := range net.conns {
		if err := net.verifyLinkage(id, rc); err != nil {
			return err
		}
	}
	return net.verifyLinkTables()
}

// verifyLinkage checks the stage-to-stage consistency of one connection.
func (net *Network) verifyLinkage(id int, rc *routed) error {
	// Input module sub-connection: source is the network source's local
	// slot; destinations are (middle j, inWave[j]) pairs.
	inConn, ok := net.inMods[rc.srcMod].Connection(rc.inConnID)
	if !ok {
		return fmt.Errorf("multistage: connection %d: input module %d lost sub-connection", id, rc.srcMod)
	}
	_, wantLocal := net.splitPort(rc.conn.Source.Port)
	if inConn.Source.Port != wantLocal || inConn.Source.Wave != rc.conn.Source.Wave {
		return fmt.Errorf("multistage: connection %d: input sub-connection source %v != network source %v",
			id, inConn.Source, rc.conn.Source)
	}
	if len(inConn.Dests) != len(rc.inWave) {
		return fmt.Errorf("multistage: connection %d: input module emits to %d middles, routing says %d",
			id, len(inConn.Dests), len(rc.inWave))
	}
	for _, d := range inConn.Dests {
		w, ok := rc.inWave[int(d.Port)]
		if !ok || w != d.Wave {
			return fmt.Errorf("multistage: connection %d: input module emits %v, not in routing plan", id, d)
		}
	}

	// Middle modules: source = (input module, inWave[j]); dests must match
	// outWave entries.
	for j, cid := range rc.midConn {
		mc, ok := net.midMods[j].Connection(cid)
		if !ok {
			return fmt.Errorf("multistage: connection %d: middle module %d lost sub-connection", id, j)
		}
		if int(mc.Source.Port) != rc.srcMod || mc.Source.Wave != rc.inWave[j] {
			return fmt.Errorf("multistage: connection %d: middle %d receives on %v, input stage sends on (p%d,λ%d)",
				id, j, mc.Source, rc.srcMod, rc.inWave[j])
		}
		for _, d := range mc.Dests {
			w, ok := rc.outWave[[2]int{j, int(d.Port)}]
			if !ok || w != d.Wave {
				return fmt.Errorf("multistage: connection %d: middle %d emits %v, not in routing plan", id, j, d)
			}
		}
	}

	// Output modules: delivered local slots must reassemble exactly the
	// network destination set.
	delivered := make(map[wdm.PortWave]bool)
	for p, cid := range rc.outConn {
		oc, ok := net.outMods[p].Connection(cid)
		if !ok {
			return fmt.Errorf("multistage: connection %d: output module %d lost sub-connection", id, p)
		}
		j := int(oc.Source.Port)
		w, ok := rc.outWave[[2]int{j, p}]
		if !ok || w != oc.Source.Wave {
			return fmt.Errorf("multistage: connection %d: output module %d receives on %v, not in routing plan",
				id, p, oc.Source)
		}
		for _, d := range oc.Dests {
			global := wdm.PortWave{Port: wdm.Port(p*net.nPorts) + d.Port, Wave: d.Wave}
			delivered[global] = true
		}
	}
	if len(delivered) != len(rc.conn.Dests) {
		return fmt.Errorf("multistage: connection %d: delivers %d slots, wants %d", id, len(delivered), len(rc.conn.Dests))
	}
	for _, d := range rc.conn.Dests {
		if !delivered[d] {
			return fmt.Errorf("multistage: connection %d: destination %v never delivered", id, d)
		}
	}
	return nil
}

// verifyLinkTables cross-checks the link occupancy tables against the
// per-connection routing records.
func (net *Network) verifyLinkTables() error {
	wantIn := make(map[[3]int]int)  // (a, j, w) -> conn id
	wantOut := make(map[[3]int]int) // (j, p, w) -> conn id
	for id, rc := range net.conns {
		for j, w := range rc.inWave {
			wantIn[[3]int{rc.srcMod, j, int(w)}] = id
		}
		for jp, w := range rc.outWave {
			wantOut[[3]int{jp[0], jp[1], int(w)}] = id
		}
	}
	for a := range net.inLink {
		for j := range net.inLink[a] {
			for w, got := range net.inLink[a][j] {
				want, used := wantIn[[3]int{a, j, w}]
				if used && got != want {
					return fmt.Errorf("multistage: link in%d->mid%d λ%d holds %d, want %d", a, j, w, got, want)
				}
				if !used && got != freeLink {
					return fmt.Errorf("multistage: link in%d->mid%d λ%d leaked (holds %d)", a, j, w, got)
				}
			}
		}
	}
	for j := range net.outLink {
		for p := range net.outLink[j] {
			for w, got := range net.outLink[j][p] {
				want, used := wantOut[[3]int{j, p, w}]
				if used && got != want {
					return fmt.Errorf("multistage: link mid%d->out%d λ%d holds %d, want %d", j, p, w, got, want)
				}
				if !used && got != freeLink {
					return fmt.Errorf("multistage: link mid%d->out%d λ%d leaked (holds %d)", j, p, w, got)
				}
			}
		}
	}
	return nil
}

// IsBlocked reports whether an Add error means "blocked" (admissible but
// unroutable) rather than "inadmissible request".
func IsBlocked(err error) bool { return errors.Is(err, ErrBlocked) }
