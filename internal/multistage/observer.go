package multistage

import "repro/internal/wdm"

// Route observation. The span tracer (internal/obs/span) wants one span
// per middle-stage decision — which middle each round chose, and, on a
// block, why every remaining candidate was rejected — without the
// router knowing anything about tracing. SetRouteObserver installs a
// callback that Add invokes at those decision points; when no observer
// is installed the routed fast path pays a single nil check.

// RouteStep is one middle-stage decision during a routing attempt.
// State reuses the forensics vocabulary: MiddleSelected for a chosen
// middle, MiddleFailed/MiddleInLinkBusy for candidates the availability
// scan rejected, MiddleOutLinkBusy/MiddleSplitLimit for candidates left
// over when the selection loop gave up.
type RouteStep struct {
	// Round is the selection-loop iteration (0-based); rejection steps
	// carry the round at which the attempt stopped.
	Round int
	// Middle is the middle module examined.
	Middle int
	// State classifies the decision.
	State MiddleState
	// Wave is the wavelength constraint in force: the source wavelength
	// for input-side states, the last-hop wavelength for output-side
	// states (-1 = any free wavelength acceptable).
	Wave int
	// Serves lists output modules this middle covers (selected) or could
	// still have covered (split-limit).
	Serves []int
	// Rejected lists uncovered output modules this middle cannot reach.
	Rejected []int
}

// SetRouteObserver installs fn as the routing observer (nil removes
// it). fn is called synchronously from Add under whatever lock guards
// the Network; it must not call back into the Network.
func (net *Network) SetRouteObserver(fn func(RouteStep)) { net.observer = fn }

// observeSelected reports the middle chosen in one selection round.
func (net *Network) observeSelected(round, middle int, srcWave int, serves []int) {
	if net.observer == nil {
		return
	}
	net.observer(RouteStep{
		Round:  round,
		Middle: middle,
		State:  MiddleSelected,
		Wave:   srcWave,
		Serves: append([]int(nil), serves...),
	})
}

// observeNoAvail reports every middle module after the availability scan
// came back empty: each is either out of service or input-link busy.
func (net *Network) observeNoAvail(srcWave int) {
	if net.observer == nil {
		return
	}
	for j := range net.midMods {
		st := MiddleInLinkBusy
		if net.failedMid[j] {
			st = MiddleFailed
		}
		net.observer(RouteStep{Middle: j, State: st, Wave: srcWave})
	}
}

// observeLoopBlocked reports every candidate still available when the
// selection loop gave up with residual output modules uncovered: each
// either hit the split limit (it could still serve something) or has
// every residual out-link busy.
func (net *Network) observeLoopBlocked(round int, avail, residual []int, lastHopWave int) {
	if net.observer == nil {
		return
	}
	for _, j := range avail {
		var serve, rejected []int
		for _, p := range residual {
			if net.middleBlocked(j, p, wdm.Wavelength(lastHopWave)) {
				rejected = append(rejected, p)
			} else {
				serve = append(serve, p)
			}
		}
		st := MiddleOutLinkBusy
		if len(serve) > 0 {
			st = MiddleSplitLimit
		}
		net.observer(RouteStep{
			Round:    round,
			Middle:   j,
			State:    st,
			Wave:     lastHopWave,
			Serves:   serve,
			Rejected: rejected,
		})
	}
}
