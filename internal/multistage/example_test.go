package multistage_test

import (
	"fmt"

	"repro/internal/multistage"
	"repro/internal/wdm"
)

// Building a defaulted three-stage network: M and X are filled from the
// sufficient nonblocking bound for the construction and model.
func ExampleNew() {
	net, err := multistage.New(multistage.Params{
		N: 16, K: 2, R: 4, Model: wdm.MSW,
	})
	if err != nil {
		panic(err)
	}
	p := net.Params()
	fmt.Printf("n=%d r=%d m=%d x=%d\n", p.N/p.R, p.R, p.M, p.X)

	id, err := net.Add(wdm.Connection{
		Source: wdm.PortWave{Port: 0, Wave: 0},
		Dests: []wdm.PortWave{
			{Port: 5, Wave: 0}, {Port: 10, Wave: 0}, {Port: 15, Wave: 0},
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("routed:", id, "verify:", net.Verify() == nil)
	// Output:
	// n=4 r=4 m=13 x=2
	// routed: 0 verify: true
}

// Theorem 1's exact bound and the asymptotic form of Section 3.4.
func ExampleTheorem1MinM() {
	n, r := 8, 8
	fmt.Println(multistage.Theorem1MinM(n, r), multistage.Theorem1BestX(n, r), multistage.AsymptoticM(n, r))
	// Output: 34 2 60
}

// The paper's Fig. 10 in four lines: the same request blocks under the
// MSW-dominant construction and routes under the MAW-dominant one.
func ExampleConstruction() {
	a := wdm.Connection{Source: wdm.PortWave{Port: 0, Wave: 0}, Dests: []wdm.PortWave{{Port: 3, Wave: 0}}}
	b := wdm.Connection{Source: wdm.PortWave{Port: 1, Wave: 0}, Dests: []wdm.PortWave{{Port: 2, Wave: 0}}}
	for _, constr := range []multistage.Construction{multistage.MSWDominant, multistage.MAWDominant} {
		net, err := multistage.New(multistage.Params{
			N: 4, K: 2, R: 2, M: 1, X: 1, Model: wdm.MAW, Construction: constr, Lite: true,
		})
		if err != nil {
			panic(err)
		}
		if _, err := net.Add(a); err != nil {
			panic(err)
		}
		_, err = net.Add(b)
		fmt.Printf("%v blocked=%v\n", constr, multistage.IsBlocked(err))
	}
	// Output:
	// MSW-dominant blocked=true
	// MAW-dominant blocked=false
}
