package multistage

import (
	"testing"

	"repro/internal/capacity"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// TestExhaustiveNonblockingK1 enumerates every any-multicast-assignment of
// a 4x4 single-wavelength network (625 assignments) and routes each
// through three-stage networks sized by the theorems: with m at the bound
// no admissible assignment may block, under either construction. This is
// the k = 1 base case where the paper's reduction to the electronic
// result is exact.
func TestExhaustiveNonblockingK1(t *testing.T) {
	d := wdm.Dim{N: 4, K: 1}
	for _, constr := range []Construction{MSWDominant, MAWDominant} {
		for _, model := range wdm.Models {
			net := mustNetwork(t, Params{N: 4, K: 1, R: 2, Model: model, Construction: constr})
			count := 0
			capacity.EnumerateAssignments(model, d, false, func(a wdm.Assignment) bool {
				ids, err := net.AddAssignment(a)
				if err != nil {
					t.Errorf("%v/%v: assignment %v failed: %v", constr, model, a, err)
					return false
				}
				if err := net.Verify(); err != nil {
					t.Errorf("%v/%v: verify failed on %v: %v", constr, model, a, err)
					return false
				}
				for _, id := range ids {
					if err := net.Release(id); err != nil {
						t.Fatalf("release: %v", err)
					}
				}
				count++
				return true
			})
			if want := capacity.Any(model, 4, 1); !want.IsInt64() || int64(count) != want.Int64() {
				t.Errorf("%v/%v: routed %d assignments, capacity %s", constr, model, count, want)
			}
		}
	}
}

// TestRandomFullAssignmentsAtCorrectedBound samples thousands of random
// *full* multicast assignments (every output slot used — the heaviest
// admissible states) for the MSDW and MAW models, whose spaces are far
// too large to enumerate, and routes each at the corrected sufficient
// bound under both constructions.
func TestRandomFullAssignmentsAtCorrectedBound(t *testing.T) {
	d := wdm.Dim{N: 4, K: 2}
	for _, constr := range []Construction{MSWDominant, MAWDominant} {
		for _, model := range []wdm.Model{wdm.MSDW, wdm.MAW} {
			net := mustNetwork(t, Params{
				N: 4, K: 2, R: 2, Model: model, Construction: constr, Lite: true,
			})
			gen := workload.NewGenerator(29, model, d)
			for trial := 0; trial < 2000; trial++ {
				a := gen.Assignment(true, 0)
				ids, err := net.AddAssignment(a)
				if err != nil {
					t.Fatalf("%v/%v trial %d: %v (assignment %v)", constr, model, trial, err, a)
				}
				for _, id := range ids {
					if err := net.Release(id); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := net.Verify(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestMSDWMultiWavelengthGateLevel drives a gate-level MSDW network under
// the MAW-dominant construction: the middle stage retunes freely and the
// output modules' input-side converters restore the common destination
// wavelength. Optical verification proves the wavelengths line up.
func TestMSDWMultiWavelengthGateLevel(t *testing.T) {
	net := mustNetwork(t, Params{
		N: 8, K: 2, R: 4, Model: wdm.MSDW, Construction: MAWDominant,
	})
	// Sourced on λ0, delivered on λ1 at three modules.
	mustAdd(t, net, conn(pw(0, 0), pw(2, 1), pw(5, 1), pw(7, 1)))
	// A second multicast the other way round.
	mustAdd(t, net, conn(pw(3, 1), pw(0, 0), pw(6, 0)))
	mustVerify(t, net)
}

// TestExhaustiveNonblockingK2MSW does the same for the MSW model at
// k = 2: with k > 1 the MSW planes are independent, so Theorem 1's bound
// must still hold exactly. The full space has (N+1)^(Nk) = 390,625
// assignments; by default every 9th is routed (still >43k assignments,
// deterministically spread), and the full sweep runs when the stride is
// overridden in a manual run.
func TestExhaustiveNonblockingK2MSW(t *testing.T) {
	if testing.Short() {
		t.Skip("k=2 enumeration in -short mode")
	}
	const stride = 9
	d := wdm.Dim{N: 4, K: 2}
	for _, constr := range []Construction{MSWDominant, MAWDominant} {
		net := mustNetwork(t, Params{N: 4, K: 2, R: 2, Model: wdm.MSW, Construction: constr})
		count, routed := 0, 0
		capacity.EnumerateAssignments(wdm.MSW, d, false, func(a wdm.Assignment) bool {
			count++
			if count%stride != 0 {
				return true
			}
			ids, err := net.AddAssignment(a)
			if err != nil {
				t.Errorf("%v: assignment %v failed: %v", constr, a, err)
				return false
			}
			for _, id := range ids {
				if err := net.Release(id); err != nil {
					t.Fatalf("release: %v", err)
				}
			}
			routed++
			return true
		})
		if err := net.Verify(); err != nil {
			t.Errorf("%v: final verify: %v", constr, err)
		}
		t.Logf("%v: routed %d of %d MSW assignments", constr, routed, count)
	}
}
