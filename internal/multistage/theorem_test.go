package multistage

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/wdm"
)

// floatTheorem1 evaluates Theorem 1's bound in floating point, for
// cross-checking the exact integer evaluation.
func floatTheorem1(n, r int) float64 {
	best := math.Inf(1)
	for x := 1; x <= min(n-1, r); x++ {
		v := float64(n-1) * (float64(x) + math.Pow(float64(r), 1/float64(x)))
		if v < best {
			best = v
		}
	}
	return best
}

func TestTheorem1MatchesFloatEvaluation(t *testing.T) {
	for n := 2; n <= 40; n++ {
		for r := 1; r <= 40; r++ {
			got := Theorem1MinM(n, r)
			bound := floatTheorem1(n, r)
			// minimal integer m with m > bound.
			want := int(math.Floor(bound)) + 1
			// Floating point can land exactly on an integer bound; accept
			// either side of a 1e-9 window but verify the defining
			// inequalities exactly below.
			if got != want && math.Abs(bound-math.Round(bound)) > 1e-9 {
				t.Errorf("Theorem1MinM(%d, %d) = %d, float says %d (bound %.6f)", n, r, got, want, bound)
			}
			// Exact property: got > bound, got-1 <= bound (within fp slack).
			if float64(got) <= bound-1e-9 {
				t.Errorf("Theorem1MinM(%d, %d) = %d does not exceed bound %.6f", n, r, got, bound)
			}
			if float64(got-1) > bound+1e-9 {
				t.Errorf("Theorem1MinM(%d, %d) = %d not minimal (bound %.6f)", n, r, got, bound)
			}
		}
	}
}

func TestTheorem1KnownValues(t *testing.T) {
	cases := []struct{ n, r, want int }{
		// n=2, r=2: x=1 only: m > 1*(1+2) = 3.
		{2, 2, 4},
		// n=4, r=4: x=2: 3*(2+2) = 12 -> 13.
		{4, 4, 13},
		// n=2, r=8: x=1: 1*(1+8) = 9 -> 10.
		{2, 8, 10},
		// n=1: degenerate.
		{1, 8, 1},
	}
	for _, c := range cases {
		if got := Theorem1MinM(c.n, c.r); got != c.want {
			t.Errorf("Theorem1MinM(%d, %d) = %d, want %d", c.n, c.r, got, c.want)
		}
	}
}

func TestTheorem2AtLeastTheorem1(t *testing.T) {
	// Section 3.4: the MAW-dominant bound is never smaller; for k = 1 the
	// two coincide (floor((n-1)x/1) = (n-1)x).
	f := func(nRaw, rRaw, kRaw uint8) bool {
		n := int(nRaw%12) + 1
		r := int(rRaw%12) + 1
		k := int(kRaw%4) + 1
		t1 := Theorem1MinM(n, r)
		t2 := Theorem2MinM(n, r, k)
		if t2 < t1 {
			return false
		}
		if k == 1 && t1 != t2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTheorem2KnownValues(t *testing.T) {
	// n=4, r=4, k=2: per x:
	//  x=1: floor(7*1/2)=3, q > 3*4^(1)=12 -> 13+3=16
	//  x=2: floor(7*2/2)=7, q^2 > 36 -> q=7 -> 14
	//  x=3: floor(7*3/2)=10, q^3 > 108 -> q=5 -> 15
	if got := Theorem2MinM(4, 4, 2); got != 14 {
		t.Errorf("Theorem2MinM(4, 4, 2) = %d, want 14", got)
	}
	if got := Theorem2BestX(4, 4, 2); got != 2 {
		t.Errorf("Theorem2BestX(4, 4, 2) = %d, want 2", got)
	}
}

func TestBestXConsistent(t *testing.T) {
	// The reported best x must achieve the reported minimum.
	for n := 2; n <= 20; n++ {
		for r := 2; r <= 20; r++ {
			x := Theorem1BestX(n, r)
			m := (n-1)*x + qMin(n, r, x)
			if m != Theorem1MinM(n, r) {
				t.Errorf("n=%d r=%d: best x=%d gives m=%d, min is %d", n, r, x, m, Theorem1MinM(n, r))
			}
		}
	}
}

func TestAsymptoticMTracksExact(t *testing.T) {
	// The asymptotic form 3(n-1)log r/log log r should stay within a
	// small constant factor of the exact minimum for moderate r.
	for _, nr := range [][2]int{{8, 8}, {16, 16}, {32, 32}, {64, 64}} {
		n, r := nr[0], nr[1]
		exact := Theorem1MinM(n, r)
		asym := AsymptoticM(n, r)
		ratio := float64(asym) / float64(exact)
		if ratio < 0.5 || ratio > 3.0 {
			t.Errorf("n=r=%d: asymptotic %d vs exact %d (ratio %.2f) out of expected band", n, asym, exact, ratio)
		}
	}
}

func TestAsymptoticXClamped(t *testing.T) {
	if x := AsymptoticX(2, 1000); x != 1 {
		t.Errorf("AsymptoticX(2, 1000) = %d, want clamp to n-1 = 1", x)
	}
	if x := AsymptoticX(64, 64); x < 1 || x > 63 {
		t.Errorf("AsymptoticX(64, 64) = %d out of range", x)
	}
}

func TestSufficientMinM(t *testing.T) {
	// MSW model: exactly the paper's bounds.
	m, x := SufficientMinM(MSWDominant, wdm.MSW, 4, 4, 3)
	if m != Theorem1MinM(4, 4) || x != Theorem1BestX(4, 4) {
		t.Errorf("MSW-dominant MSW: got (%d, %d), want theorem 1 (%d, %d)",
			m, x, Theorem1MinM(4, 4), Theorem1BestX(4, 4))
	}
	m, _ = SufficientMinM(MAWDominant, wdm.MAW, 4, 4, 3)
	if m != Theorem2MinM(4, 4, 3) {
		t.Errorf("MAW-dominant: got %d, want theorem 2 %d", m, Theorem2MinM(4, 4, 3))
	}
	// k = 1: corrected bound collapses to Theorem 1 for every model.
	for _, model := range wdm.Models {
		m, _ := SufficientMinM(MSWDominant, model, 4, 4, 1)
		if m != Theorem1MinM(4, 4) {
			t.Errorf("k=1 %v: got %d, want %d", model, m, Theorem1MinM(4, 4))
		}
	}
	// MSDW/MAW with k > 1: corrected bound strictly exceeds Theorem 1.
	for _, model := range []wdm.Model{wdm.MSDW, wdm.MAW} {
		m, _ := SufficientMinM(MSWDominant, model, 4, 4, 4)
		if m <= Theorem1MinM(4, 4) {
			t.Errorf("%v k=4: corrected bound %d not above theorem 1's %d", model, m, Theorem1MinM(4, 4))
		}
	}
}

func TestPaperMinM(t *testing.T) {
	if m, x := PaperMinM(MSWDominant, 4, 4, 9); m != Theorem1MinM(4, 4) || x != Theorem1BestX(4, 4) {
		t.Errorf("PaperMinM MSW-dominant = (%d, %d)", m, x)
	}
	if m, x := PaperMinM(MAWDominant, 4, 4, 2); m != Theorem2MinM(4, 4, 2) || x != Theorem2BestX(4, 4, 2) {
		t.Errorf("PaperMinM MAW-dominant = (%d, %d)", m, x)
	}
}

func TestAsymptoticMSmallR(t *testing.T) {
	// r < 3 falls back to the exact theorem value; n=1 degenerates to 1.
	if got := AsymptoticM(4, 2); got != Theorem1MinM(4, 2) {
		t.Errorf("AsymptoticM(4, 2) = %d, want theorem fallback %d", got, Theorem1MinM(4, 2))
	}
	if got := AsymptoticM(1, 100); got != 1 {
		t.Errorf("AsymptoticM(1, 100) = %d, want 1", got)
	}
	if got := AsymptoticX(1, 100); got != 1 {
		t.Errorf("AsymptoticX(1, 100) = %d, want 1", got)
	}
}

func TestTheoremN1Degenerate(t *testing.T) {
	if Theorem1MinM(1, 8) != 1 || Theorem2MinM(1, 8, 4) != 1 {
		t.Error("n=1 networks should need a single middle module")
	}
}

func TestTheoremPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { Theorem1MinM(0, 4) },
		func() { Theorem2MinM(4, 0, 2) },
		func() { Theorem2MinM(4, 4, 0) },
		func() { AsymptoticM(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad arguments did not panic")
				}
			}()
			fn()
		}()
	}
}
