package multistage

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/wdm"
)

// ErrBlocked is wrapped by Add when a connection is admissible but cannot
// be routed with the configured split limit — i.e. the network blocked.
// With m at or above the theorem bound this must never happen; the
// simulation experiments assert exactly that.
var ErrBlocked = errors.New("multistage: connection blocked")

// Add routes a multicast connection through the three stages using the
// paper's routing strategy: the connection may use at most X middle-stage
// modules (Lemma 4 / Corollary 1). Middle modules are chosen greedily by
// minimum residual intersection with their destination (multi)sets — the
// selection order used in the proofs of Lemma 5 and the results of [14].
//
// Add returns an error wrapping ErrBlocked if no admissible choice of at
// most X middle modules covers the destination set; other errors indicate
// an inadmissible request (model violation or busy slot).
func (net *Network) Add(c wdm.Connection) (int, error) {
	sh := net.Shape()
	if err := sh.CheckConnection(net.params.Model, c); err != nil {
		return 0, err
	}
	if id, busy := net.srcBusy[c.Source]; busy {
		return 0, fmt.Errorf("multistage: source slot %v already used by connection %d", c.Source, id)
	}
	for _, d := range c.Dests {
		if id, busy := net.dstBusy[d]; busy {
			return 0, fmt.Errorf("multistage: destination slot %v already used by connection %d", d, id)
		}
	}
	c = c.Normalize()

	srcMod, srcLocal := net.splitPort(c.Source.Port)
	srcWave := c.Source.Wave

	// Group destinations by output module.
	destsByMod := make(map[int][]wdm.PortWave)
	for _, d := range c.Dests {
		p, local := net.splitPort(d.Port)
		destsByMod[p] = append(destsByMod[p], wdm.PortWave{Port: local, Wave: d.Wave})
	}
	fanMods := make([]int, 0, len(destsByMod))
	for p := range destsByMod {
		fanMods = append(fanMods, p)
	}
	sort.Ints(fanMods)

	if net.params.Construction == AWGClos {
		// The passive middle stage fixes every wavelength; the greedy
		// cover below does not apply (one middle per destination module).
		return net.addAWG(c, srcMod, srcLocal, destsByMod, fanMods)
	}

	// lastHopWave returns the wavelength the link j->p must carry for
	// output module p, or -1 if any free wavelength works:
	//   - MSW-dominant first two stages never retune: always srcWave;
	//   - MSW output modules cannot retune either, so the arrival must
	//     already be on the destination wavelength (network model MSW
	//     implies that wavelength is srcWave);
	//   - MSDW/MAW output modules have converters, so under MAW-dominant
	//     any free wavelength works.
	anyWave := wdm.Wavelength(-1)
	lastHopWave := anyWave
	if net.params.Construction == MSWDominant || net.params.Model == wdm.MSW {
		lastHopWave = srcWave
	}

	// Available middle modules for this source (Section 3.1): those whose
	// input-stage link can still carry the connection.
	avail := net.availableMiddles(srcMod, srcWave)
	if len(avail) == 0 {
		net.observeNoAvail(int(srcWave))
		net.blockedCount++
		return 0, &BlockedError{
			Detail: fmt.Sprintf("no available middle module from input module %d on λ%d (x=%d)",
				srcMod, srcWave, net.params.X),
			Report: net.blockReport("add", c, srcMod, lastHopWave, nil, fanMods, 0),
		}
	}

	// Cover the destination modules with at most X middle modules
	// (Lemma 4 with the multiset semantics of Eqs. 2-5 when links carry
	// k wavelengths). The certified strategy repeatedly picks the
	// available middle module whose blocked set leaves the smallest
	// residual; FirstFit takes the lowest-indexed one making progress.
	assign := make(map[int][]int) // middle j -> output modules served
	residual := append([]int(nil), fanMods...)
	used := 0
	for len(residual) > 0 && used < net.params.X && len(avail) > 0 {
		bestJ, bestIdx := -1, -1
		var bestResidual, bestServe []int
		for idx, j := range avail {
			var blockedR, serve []int
			for _, p := range residual {
				if net.middleBlocked(j, p, lastHopWave) {
					blockedR = append(blockedR, p)
				} else {
					serve = append(serve, p)
				}
			}
			if net.params.Strategy == FirstFit {
				if len(serve) > 0 {
					bestJ, bestIdx, bestResidual, bestServe = j, idx, blockedR, serve
					break
				}
				continue
			}
			if bestJ == -1 || len(blockedR) < len(bestResidual) {
				bestJ, bestIdx, bestResidual, bestServe = j, idx, blockedR, serve
			}
		}
		if len(bestServe) == 0 {
			break // no available module makes progress
		}
		net.observeSelected(used, bestJ, int(srcWave), bestServe)
		assign[bestJ] = bestServe
		residual = bestResidual
		avail = append(avail[:bestIdx], avail[bestIdx+1:]...)
		used++
	}
	if len(residual) > 0 {
		net.observeLoopBlocked(used, avail, residual, int(lastHopWave))
		net.blockedCount++
		return 0, &BlockedError{
			Detail: fmt.Sprintf("%d destination module(s) uncovered after %d of %d splits (source %v)",
				len(residual), used, net.params.X, c.Source),
			Report: net.blockReport("add", c, srcMod, lastHopWave, assign, residual, used),
		}
	}

	id, err := net.commit(c, srcMod, srcLocal, destsByMod, assign, lastHopWave, nil)
	if err != nil {
		net.blockedCount++
		return 0, err
	}
	net.routedCount++
	return id, nil
}

// availableMiddles lists middle modules whose link from input module a
// can carry a new connection entering on srcWave.
func (net *Network) availableMiddles(a int, srcWave wdm.Wavelength) []int {
	var out []int
	for j := range net.midMods {
		if net.failedMid[j] {
			continue // out of service
		}
		if net.params.Construction == MSWDominant {
			// First two stages cannot retune: the connection's own
			// wavelength must be free on the link.
			if net.inLink[a][j][srcWave] == freeLink {
				out = append(out, j)
			}
			continue
		}
		if net.params.ConservativeLinks {
			// Set-semantics ablation: a touched link is off limits.
			if linkUntouched(net.inLink[a][j]) {
				out = append(out, j)
			}
			continue
		}
		// MAW-dominant: any free wavelength will do.
		for w := 0; w < net.params.K; w++ {
			if net.inLink[a][j][w] == freeLink {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// middleBlocked reports whether middle module j cannot reach output
// module p for this connection. needWave == -1 means any free wavelength
// on the link j->p suffices (the multiset multiplicity-k test of Eq. 4);
// otherwise that specific wavelength must be free.
func (net *Network) middleBlocked(j, p int, needWave wdm.Wavelength) bool {
	if net.params.ConservativeLinks && net.params.Construction == MAWDominant {
		return !linkUntouched(net.outLink[j][p])
	}
	if needWave >= 0 {
		return net.outLink[j][p][needWave] != freeLink
	}
	for w := 0; w < net.params.K; w++ {
		if net.outLink[j][p][w] == freeLink {
			return false
		}
	}
	return true
}

func linkUntouched(waves []int) bool {
	for _, v := range waves {
		if v != freeLink {
			return false
		}
	}
	return true
}

// pickInWave chooses the wavelength for the link srcMod->j.
func (net *Network) pickInWave(a, j int, srcWave wdm.Wavelength) (wdm.Wavelength, error) {
	if net.params.Construction == MSWDominant {
		if net.inLink[a][j][srcWave] != freeLink {
			return 0, fmt.Errorf("multistage: internal error: link %d->mid%d λ%d not free", a, j, srcWave)
		}
		return srcWave, nil
	}
	if w, ok := net.pickFreeWave(net.inLink[a][j]); ok {
		return w, nil
	}
	return 0, fmt.Errorf("multistage: internal error: link %d->mid%d has no free wavelength", a, j)
}

// pickOutWave chooses the wavelength for the link j->p.
func (net *Network) pickOutWave(j, p int, needWave wdm.Wavelength) (wdm.Wavelength, error) {
	if needWave >= 0 {
		if net.outLink[j][p][needWave] != freeLink {
			return 0, fmt.Errorf("multistage: internal error: link mid%d->%d λ%d not free", j, p, needWave)
		}
		return needWave, nil
	}
	if w, ok := net.pickFreeWave(net.outLink[j][p]); ok {
		return w, nil
	}
	return 0, fmt.Errorf("multistage: internal error: link mid%d->%d has no free wavelength", j, p)
}

// pickFreeWave selects a free wavelength on the link according to the
// configured wavelength-assignment policy.
func (net *Network) pickFreeWave(link []int) (wdm.Wavelength, bool) {
	best, found := -1, false
	for w, v := range link {
		if v != freeLink {
			continue
		}
		if !found {
			best, found = w, true
			continue
		}
		switch net.params.WavePick {
		case MostUsed:
			if net.waveUse[w] > net.waveUse[best] {
				best = w
			}
		case LeastUsed:
			if net.waveUse[w] < net.waveUse[best] {
				best = w
			}
		default: // FirstFree keeps the lowest index
		}
	}
	return wdm.Wavelength(best), found
}

// claim and free update link occupancy together with the per-plane usage
// counters the wavelength policies consult.
func (net *Network) claim(link []int, w wdm.Wavelength, id int) {
	link[w] = id
	net.waveUse[w]++
}

func (net *Network) free(link []int, w wdm.Wavelength) {
	link[w] = freeLink
	net.waveUse[w]--
}

// wavePlan carries pre-resolved link wavelengths for constructions
// whose physics fix them (AWG-Clos): commit claims exactly these
// instead of consulting the wavelength-assignment policy.
type wavePlan struct {
	in  map[int]wdm.Wavelength    // middle j -> wavelength on link srcMod->j
	out map[[2]int]wdm.Wavelength // (j, p) -> wavelength on link j->p
}

// planInWave resolves the wavelength for the link a->j: the plan's
// entry when a plan is given (verified free), else the policy pick.
func (net *Network) planInWave(plan *wavePlan, a, j int, srcWave wdm.Wavelength) (wdm.Wavelength, error) {
	if plan == nil {
		return net.pickInWave(a, j, srcWave)
	}
	w, ok := plan.in[j]
	if !ok {
		return 0, fmt.Errorf("multistage: internal error: no planned wavelength for link %d->mid%d", a, j)
	}
	if net.inLink[a][j][w] != freeLink {
		return 0, fmt.Errorf("multistage: internal error: planned link %d->mid%d λ%d not free", a, j, w)
	}
	return w, nil
}

// planOutWave resolves the wavelength for the link j->p.
func (net *Network) planOutWave(plan *wavePlan, j, p int, lastHopWave wdm.Wavelength) (wdm.Wavelength, error) {
	if plan == nil {
		return net.pickOutWave(j, p, lastHopWave)
	}
	w, ok := plan.out[[2]int{j, p}]
	if !ok {
		return 0, fmt.Errorf("multistage: internal error: no planned wavelength for link mid%d->%d", j, p)
	}
	if net.outLink[j][p][w] != freeLink {
		return 0, fmt.Errorf("multistage: internal error: planned link mid%d->%d λ%d not free", j, p, w)
	}
	return w, nil
}

// commit materializes the chosen routing: it occupies link wavelengths
// and installs the per-module sub-connections, rolling back on any
// internal inconsistency. plan, when non-nil, dictates the link
// wavelengths; otherwise the wavelength-assignment policy picks them.
func (net *Network) commit(c wdm.Connection, srcMod int, srcLocal wdm.Port,
	destsByMod map[int][]wdm.PortWave, assign map[int][]int, lastHopWave wdm.Wavelength, plan *wavePlan) (int, error) {

	rc := &routed{
		conn:     c,
		srcMod:   srcMod,
		inConnID: -1,
		midConn:  make(map[int]int),
		outConn:  make(map[int]int),
		inWave:   make(map[int]wdm.Wavelength),
		outWave:  make(map[[2]int]wdm.Wavelength),
	}
	id := net.nextID

	rollback := func() {
		if rc.inConnID >= 0 {
			_ = net.inMods[srcMod].Release(rc.inConnID)
		}
		for j, cid := range rc.midConn {
			_ = net.midMods[j].Release(cid)
		}
		for p, cid := range rc.outConn {
			_ = net.outMods[p].Release(cid)
		}
		for j, w := range rc.inWave {
			net.free(net.inLink[srcMod][j], w)
		}
		for jp, w := range rc.outWave {
			net.free(net.outLink[jp[0]][jp[1]], w)
		}
	}

	middles := make([]int, 0, len(assign))
	for j := range assign {
		middles = append(middles, j)
	}
	sort.Ints(middles)

	// Pick and occupy wavelengths.
	for _, j := range middles {
		w, err := net.planInWave(plan, srcMod, j, c.Source.Wave)
		if err != nil {
			rollback()
			return 0, err
		}
		rc.inWave[j] = w
		net.claim(net.inLink[srcMod][j], w, id)
		for _, p := range assign[j] {
			ow, err := net.planOutWave(plan, j, p, lastHopWave)
			if err != nil {
				rollback()
				return 0, err
			}
			rc.outWave[[2]int{j, p}] = ow
			net.claim(net.outLink[j][p], ow, id)
		}
	}

	// Input-module sub-connection: source slot -> one slot per chosen
	// middle module.
	inConn := wdm.Connection{Source: wdm.PortWave{Port: srcLocal, Wave: c.Source.Wave}}
	for _, j := range middles {
		inConn.Dests = append(inConn.Dests, wdm.PortWave{Port: wdm.Port(j), Wave: rc.inWave[j]})
	}
	cid, err := net.inMods[srcMod].Add(inConn)
	if err != nil {
		rollback()
		return 0, fmt.Errorf("multistage: internal error: input module %d rejected %v: %w", srcMod, inConn, err)
	}
	rc.inConnID = cid

	// Middle-module sub-connections.
	for _, j := range middles {
		mc := wdm.Connection{Source: wdm.PortWave{Port: wdm.Port(srcMod), Wave: rc.inWave[j]}}
		for _, p := range assign[j] {
			mc.Dests = append(mc.Dests, wdm.PortWave{Port: wdm.Port(p), Wave: rc.outWave[[2]int{j, p}]})
		}
		cid, err := net.midMods[j].Add(mc)
		if err != nil {
			rollback()
			return 0, fmt.Errorf("multistage: internal error: middle module %d rejected %v: %w", j, mc, err)
		}
		rc.midConn[j] = cid
	}

	// Output-module sub-connections.
	for _, j := range middles {
		for _, p := range assign[j] {
			oc := wdm.Connection{
				Source: wdm.PortWave{Port: wdm.Port(j), Wave: rc.outWave[[2]int{j, p}]},
				Dests:  destsByMod[p],
			}
			cid, err := net.outMods[p].Add(oc)
			if err != nil {
				rollback()
				return 0, fmt.Errorf("multistage: internal error: output module %d rejected %v: %w", p, oc, err)
			}
			rc.outConn[p] = cid
		}
	}

	net.nextID++
	net.conns[id] = rc
	net.srcBusy[c.Source] = id
	for _, d := range c.Dests {
		net.dstBusy[d] = id
	}
	return id, nil
}

// Release tears down a live connection and frees every module slot and
// link wavelength it occupied.
func (net *Network) Release(id int) error {
	rc, ok := net.conns[id]
	if !ok {
		return fmt.Errorf("multistage: no connection with id %d", id)
	}
	if err := net.inMods[rc.srcMod].Release(rc.inConnID); err != nil {
		return fmt.Errorf("multistage: input module %d: %w", rc.srcMod, err)
	}
	for j, cid := range rc.midConn {
		if err := net.midMods[j].Release(cid); err != nil {
			return fmt.Errorf("multistage: middle module %d: %w", j, err)
		}
	}
	for p, cid := range rc.outConn {
		if err := net.outMods[p].Release(cid); err != nil {
			return fmt.Errorf("multistage: output module %d: %w", p, err)
		}
	}
	for j, w := range rc.inWave {
		net.free(net.inLink[rc.srcMod][j], w)
	}
	for jp, w := range rc.outWave {
		net.free(net.outLink[jp[0]][jp[1]], w)
	}
	delete(net.conns, id)
	delete(net.srcBusy, rc.conn.Source)
	for _, d := range rc.conn.Dests {
		delete(net.dstBusy, d)
	}
	return nil
}

// Reset releases every live connection.
func (net *Network) Reset() {
	ids := make([]int, 0, len(net.conns))
	for id := range net.conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := net.Release(id); err != nil {
			panic("multistage: Reset lost track of connection: " + err.Error())
		}
	}
}

// AddAssignment routes all connections of an assignment, rolling back on
// the first failure.
func (net *Network) AddAssignment(a wdm.Assignment) ([]int, error) {
	ids := make([]int, 0, len(a))
	for i, c := range a {
		id, err := net.Add(c)
		if err != nil {
			for _, rid := range ids {
				_ = net.Release(rid)
			}
			return nil, fmt.Errorf("connection %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
