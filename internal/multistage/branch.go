package multistage

import (
	"fmt"

	"repro/internal/wdm"
)

// AddBranch grows a live multicast connection by one or more additional
// destination slots, keeping its id stable — the control-plane "join"
// operation of a long-lived multicast session (a new receiver tuning
// into an ongoing video feed).
//
// The grown connection must be admissible under the network's multicast
// model as a whole: the new slots must be free, must not repeat an
// output port the connection already reaches, and must satisfy the
// model's wavelength rule relative to the existing endpoints. The grow
// is atomic — on any failure (inadmissible request or ErrBlocked when
// the enlarged destination set cannot be covered within the split limit
// x) the original connection is left exactly as it was, still routed and
// still carrying its id.
//
// Internally the connection is re-routed from scratch: released, then
// re-added with the enlarged destination set. Releasing restores the
// network to its exact pre-Add state and the router is deterministic, so
// when the grow fails the original connection re-routes identically and
// restoration cannot fail.
func (net *Network) AddBranch(id int, dests ...wdm.PortWave) error {
	rc, ok := net.conns[id]
	if !ok {
		return fmt.Errorf("multistage: no connection with id %d", id)
	}
	if len(dests) == 0 {
		return nil
	}
	old := rc.conn.Clone()
	grown := old.Clone()
	grown.Dests = append(grown.Dests, dests...)
	grown = grown.Normalize()

	// Reject inadmissible grows before touching any routing state.
	// Shape.CheckConnection covers range, duplicate output ports (both
	// among the new slots and against the existing destinations) and the
	// model's wavelength rule; the busy check must exclude the
	// connection's own slots, which Release is about to free.
	if err := net.Shape().CheckConnection(net.params.Model, grown); err != nil {
		return err
	}
	for _, d := range dests {
		if owner, busy := net.dstBusy[d]; busy {
			return fmt.Errorf("multistage: destination slot %v already used by connection %d", d, owner)
		}
	}

	// Stats() counts logical operations: a successful grow is not a new
	// routed connection and the restoration of the original is not a new
	// routed connection either, so snapshot the counters and apply only
	// the one delta that matters — a blocked grow is a blocking event.
	routed0, blocked0 := net.routedCount, net.blockedCount

	if err := net.Release(id); err != nil {
		return fmt.Errorf("multistage: AddBranch releasing %d: %w", id, err)
	}
	newID, err := net.Add(grown)
	if err == nil {
		net.remapID(newID, id)
		net.routedCount, net.blockedCount = routed0, blocked0
		return nil
	}
	restored, rerr := net.Add(old)
	if rerr != nil {
		// Unreachable by construction (see doc comment); a failure here
		// means the router is not deterministic and state is corrupt.
		panic(fmt.Sprintf("multistage: AddBranch failed to restore connection %d after blocked grow: %v", id, rerr))
	}
	net.remapID(restored, id)
	net.routedCount, net.blockedCount = routed0, blocked0+1
	return err
}
