package multistage

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/wdm"
)

// AddBranch grows a live multicast connection by one or more additional
// destination slots, keeping its id stable — the control-plane "join"
// operation of a long-lived multicast session (a new receiver tuning
// into an ongoing video feed).
//
// The grown connection must be admissible under the network's multicast
// model as a whole: the new slots must be free, must not repeat an
// output port the connection already reaches, and must satisfy the
// model's wavelength rule relative to the existing endpoints. The grow
// is atomic — on any failure (inadmissible request or ErrBlocked when
// the enlarged destination set cannot be covered within the split limit
// x) the original connection is left exactly as it was, still routed and
// still carrying its id.
//
// Internally the connection is re-routed from scratch: released, then
// re-added with the enlarged destination set. When the grow fails, the
// original connection is restored by replaying its recorded route — the
// exact middle modules, link wavelengths and module sub-connections it
// held before the release — rather than by re-routing it. Replay does
// not consult the router, so restoration cannot block no matter how the
// rest of the network has churned since the connection first routed,
// how far m sits below the sufficient bound, or which middle modules
// have since failed.
func (net *Network) AddBranch(id int, dests ...wdm.PortWave) error {
	rc, ok := net.conns[id]
	if !ok {
		return fmt.Errorf("multistage: no connection with id %d", id)
	}
	if len(dests) == 0 {
		return nil
	}
	old := rc.snapshot()
	grown := rc.conn.Clone()
	grown.Dests = append(grown.Dests, dests...)
	grown = grown.Normalize()

	// Reject inadmissible grows before touching any routing state.
	// Shape.CheckConnection covers range, duplicate output ports (both
	// among the new slots and against the existing destinations) and the
	// model's wavelength rule; the busy check must exclude the
	// connection's own slots, which Release is about to free.
	if err := net.Shape().CheckConnection(net.params.Model, grown); err != nil {
		return err
	}
	for _, d := range dests {
		if owner, busy := net.dstBusy[d]; busy {
			return fmt.Errorf("multistage: destination slot %v already used by connection %d", d, owner)
		}
	}

	// Stats() counts logical operations: a successful grow is not a new
	// routed connection and the restoration of the original is not a new
	// routed connection either, so snapshot the counters and apply only
	// the one delta that matters — a blocked grow is a blocking event.
	routed0, blocked0 := net.routedCount, net.blockedCount

	if err := net.Release(id); err != nil {
		return fmt.Errorf("multistage: AddBranch releasing %d: %w", id, err)
	}
	newID, err := net.Add(grown)
	if err == nil {
		net.remapID(newID, id)
		net.routedCount, net.blockedCount = routed0, blocked0
		return nil
	}
	if rerr := net.reinstall(id, old); rerr != nil {
		// Unreachable by construction: the release just freed every
		// resource the replay claims. Surface the corruption instead of
		// leaving the caller without its connection silently.
		return fmt.Errorf("multistage: AddBranch: connection %d lost — restore after failed grow: %v (grow: %w)", id, rerr, err)
	}
	net.routedCount, net.blockedCount = routed0, blocked0+1
	// The forensic report was built by the internal re-route; re-tag it
	// so consumers see the operation that actually blocked.
	var be *BlockedError
	if errors.As(err, &be) && be.Report != nil {
		be.Report.Op = "branch"
	}
	return err
}

// snapshot deep-copies a connection's routing record so it can be
// replayed after a release. Module-level sub-connection ids are not
// copied: they die with the release and reinstall assigns fresh ones.
func (rc *routed) snapshot() *routed {
	cp := &routed{
		conn:     rc.conn.Clone(),
		srcMod:   rc.srcMod,
		inConnID: -1,
		midConn:  make(map[int]int, len(rc.midConn)),
		outConn:  make(map[int]int, len(rc.outConn)),
		inWave:   make(map[int]wdm.Wavelength, len(rc.inWave)),
		outWave:  make(map[[2]int]wdm.Wavelength, len(rc.outWave)),
	}
	for j, w := range rc.inWave {
		cp.inWave[j] = w
	}
	for jp, w := range rc.outWave {
		cp.outWave[jp] = w
	}
	return cp
}

// reinstall re-materializes a released route exactly as recorded,
// registering it under the given id: same middle modules, same link
// wavelengths, same per-module sub-connections. Unlike Add it performs
// no routing search, so it succeeds whenever the recorded resources are
// free — which they are immediately after the route is released,
// regardless of network churn or middle-module failures since the
// original routing. It is AddBranch's restore path.
func (net *Network) reinstall(id int, rc *routed) error {
	if _, clash := net.conns[id]; clash {
		return fmt.Errorf("multistage: reinstall: id %d already live", id)
	}
	srcMod := rc.srcMod
	_, srcLocal := net.splitPort(rc.conn.Source.Port)

	// Every recorded link claim must be free before anything is touched;
	// a conflict means the route was never fully released.
	for j, w := range rc.inWave {
		if net.inLink[srcMod][j][w] != freeLink {
			return fmt.Errorf("multistage: reinstall: link %d->mid%d λ%d not free", srcMod, j, w)
		}
	}
	for jp, w := range rc.outWave {
		if net.outLink[jp[0]][jp[1]][w] != freeLink {
			return fmt.Errorf("multistage: reinstall: link mid%d->%d λ%d not free", jp[0], jp[1], w)
		}
	}

	middles := make([]int, 0, len(rc.inWave))
	for j := range rc.inWave {
		middles = append(middles, j)
	}
	sort.Ints(middles)

	serve := make(map[int][]int, len(middles)) // middle j -> output modules
	for jp := range rc.outWave {
		serve[jp[0]] = append(serve[jp[0]], jp[1])
	}
	for j := range serve {
		sort.Ints(serve[j])
	}

	destsByMod := make(map[int][]wdm.PortWave)
	for _, d := range rc.conn.Dests {
		p, local := net.splitPort(d.Port)
		destsByMod[p] = append(destsByMod[p], wdm.PortWave{Port: local, Wave: d.Wave})
	}

	rollback := func() {
		if rc.inConnID >= 0 {
			_ = net.inMods[srcMod].Release(rc.inConnID)
			rc.inConnID = -1
		}
		for j, cid := range rc.midConn {
			_ = net.midMods[j].Release(cid)
			delete(rc.midConn, j)
		}
		for p, cid := range rc.outConn {
			_ = net.outMods[p].Release(cid)
			delete(rc.outConn, p)
		}
		for j, w := range rc.inWave {
			net.free(net.inLink[srcMod][j], w)
		}
		for jp, w := range rc.outWave {
			net.free(net.outLink[jp[0]][jp[1]], w)
		}
	}

	// Re-claim the recorded link wavelengths, then re-install the module
	// sub-connections they carried.
	for j, w := range rc.inWave {
		net.claim(net.inLink[srcMod][j], w, id)
	}
	for jp, w := range rc.outWave {
		net.claim(net.outLink[jp[0]][jp[1]], w, id)
	}

	inConn := wdm.Connection{Source: wdm.PortWave{Port: srcLocal, Wave: rc.conn.Source.Wave}}
	for _, j := range middles {
		inConn.Dests = append(inConn.Dests, wdm.PortWave{Port: wdm.Port(j), Wave: rc.inWave[j]})
	}
	cid, err := net.inMods[srcMod].Add(inConn)
	if err != nil {
		rollback()
		return fmt.Errorf("multistage: reinstall: input module %d rejected %v: %w", srcMod, inConn, err)
	}
	rc.inConnID = cid

	for _, j := range middles {
		mc := wdm.Connection{Source: wdm.PortWave{Port: wdm.Port(srcMod), Wave: rc.inWave[j]}}
		for _, p := range serve[j] {
			mc.Dests = append(mc.Dests, wdm.PortWave{Port: wdm.Port(p), Wave: rc.outWave[[2]int{j, p}]})
		}
		cid, err := net.midMods[j].Add(mc)
		if err != nil {
			rollback()
			return fmt.Errorf("multistage: reinstall: middle module %d rejected %v: %w", j, mc, err)
		}
		rc.midConn[j] = cid
	}

	for _, j := range middles {
		for _, p := range serve[j] {
			oc := wdm.Connection{
				Source: wdm.PortWave{Port: wdm.Port(j), Wave: rc.outWave[[2]int{j, p}]},
				Dests:  destsByMod[p],
			}
			cid, err := net.outMods[p].Add(oc)
			if err != nil {
				rollback()
				return fmt.Errorf("multistage: reinstall: output module %d rejected %v: %w", p, oc, err)
			}
			rc.outConn[p] = cid
		}
	}

	net.conns[id] = rc
	net.srcBusy[rc.conn.Source] = id
	for _, d := range rc.conn.Dests {
		net.dstBusy[d] = id
	}
	return nil
}
