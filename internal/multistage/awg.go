package multistage

import (
	"fmt"

	"repro/internal/wdm"
)

// AWG-Clos routing (arXiv 1308.4477's passive-crosspoint construction,
// adapted to this repository's module geometry). The middle stage is
// built from arrayed-waveguide gratings: passive devices that neither
// convert wavelengths nor split light. Two consequences shape the
// router:
//
//  1. Wavelength law. The cyclic grating response fixes the wavelength
//     a connection from input module a to output module p must ride
//     through ANY middle to the class wavelength
//
//     λ(a, p) = (p - a) mod k,
//
//     on both the input-stage link a->j and the output-stage link j->p.
//     There is no wavelength choice to make — only a middle choice.
//
//  2. No middle multicast. A grating maps each (input, wavelength) to
//     exactly one output, so a middle serves exactly one destination
//     module per connection; a fanout over f destination modules costs
//     f distinct middles (hence x = r in AWGClosMinM).
//
// A request for which no middle has the class wavelength free on both
// hops is rejected with the stable wavelength_conflict code rather than
// the generic blocked class: the conflict is the AWG constraint at
// work, and clients distinguishing the two can respond differently
// (e.g. re-request under a different source slot).

// awgWave returns the class wavelength the passive middle stage forces
// for the (input module a, output module p) pair.
func (net *Network) awgWave(a, p int) wdm.Wavelength {
	k := net.params.K
	return wdm.Wavelength(((p-a)%k + k) % k)
}

// addAWG routes a connection under the AWG-Clos construction: one
// middle per destination module, each leg on its forced class
// wavelength. Called by Add with the admissibility checks done.
func (net *Network) addAWG(c wdm.Connection, srcMod int, srcLocal wdm.Port,
	destsByMod map[int][]wdm.PortWave, fanMods []int) (int, error) {

	if len(fanMods) > net.params.X {
		net.blockedCount++
		return 0, &BlockedError{
			Detail: fmt.Sprintf("AWG-Clos: %d destination modules need %d middles, split limit x=%d",
				len(fanMods), len(fanMods), net.params.X),
			Report: net.blockReport("add", c, srcMod, -1, nil, fanMods, 0),
		}
	}

	assign := make(map[int][]int, len(fanMods))
	plan := &wavePlan{
		in:  make(map[int]wdm.Wavelength, len(fanMods)),
		out: make(map[[2]int]wdm.Wavelength, len(fanMods)),
	}
	for i, p := range fanMods {
		w := net.awgWave(srcMod, p)
		found := -1
		for j := range net.midMods {
			if net.failedMid[j] {
				continue
			}
			if _, taken := assign[j]; taken {
				continue // already carries another leg of this connection
			}
			if net.inLink[srcMod][j][w] != freeLink || net.outLink[j][p][w] != freeLink {
				continue
			}
			found = j
			break
		}
		if found < 0 {
			net.blockedCount++
			return 0, &BlockedError{
				Code: CodeWavelengthConflict,
				Detail: fmt.Sprintf("AWG-Clos: no middle with class wavelength λ%d free on both %d->mid and mid->%d (λ = (dest-src) mod k)",
					w, srcMod, p),
				Report: net.blockReport("add", c, srcMod, w, assign, fanMods[i:], i),
			}
		}
		net.observeSelected(i, found, int(w), []int{p})
		assign[found] = []int{p}
		plan.in[found] = w
		plan.out[[2]int{found, p}] = w
	}

	id, err := net.commit(c, srcMod, srcLocal, destsByMod, assign, -1, plan)
	if err != nil {
		net.blockedCount++
		return 0, err
	}
	net.routedCount++
	return id, nil
}

// explainAWG mirrors addAWG's per-destination middle scan for Explain's
// dry run: one round per destination module, the class wavelength as
// the only candidate on both hops.
func (net *Network) explainAWG(ex *Explanation) {
	for j := range net.midMods {
		if net.failedMid[j] {
			ex.Unavailable = append(ex.Unavailable, j)
		} else {
			ex.Available = append(ex.Available, j)
		}
	}
	taken := make(map[int]bool, len(ex.DestMods))
	for _, p := range ex.DestMods {
		if len(ex.Rounds) >= net.params.X {
			ex.Residual = append(ex.Residual, p)
			continue
		}
		w := net.awgWave(ex.SourceMod, p)
		found := -1
		for j := range net.midMods {
			if net.failedMid[j] || taken[j] {
				continue
			}
			if net.inLink[ex.SourceMod][j][w] != freeLink || net.outLink[j][p][w] != freeLink {
				continue
			}
			found = j
			break
		}
		if found < 0 {
			ex.Residual = append(ex.Residual, p)
			continue
		}
		taken[found] = true
		ex.Rounds = append(ex.Rounds, Candidate{Middle: found, Serves: []int{p}, Chosen: true})
	}
	ex.Routable = len(ex.Residual) == 0
}

// diagnoseAWGMiddle classifies middle module j for a blocked AWG-Clos
// request: for each uncovered destination module the class wavelength
// is the only candidate, busy on the input-stage hop, the output-stage
// hop, or neither (the middle could still serve it — a split-limit or
// own-leg reservation). md arrives with Middle set and the
// failed/selected cases already handled.
func (net *Network) diagnoseAWGMiddle(md MiddleDiag, srcMod int, uncovered []int) MiddleDiag {
	j := md.Middle
	inBusyAll := true
	for _, p := range uncovered {
		w := net.awgWave(srcMod, p)
		inBusy := net.inLink[srcMod][j][w] != freeLink
		outBusy := net.outLink[j][p][w] != freeLink
		if inBusy {
			md.WavesTried = append(md.WavesTried, int(w))
		}
		if !inBusy && !outBusy {
			md.Serves = append(md.Serves, p)
			inBusyAll = false
			continue
		}
		if outBusy {
			md.BlockedOut = append(md.BlockedOut, OutLinkDiag{OutModule: p, BusyWaves: []int{int(w)}})
		}
		if !inBusy {
			inBusyAll = false
		}
	}
	switch {
	case len(md.Serves) > 0:
		md.State = MiddleSplitLimit
	case inBusyAll && len(uncovered) > 0:
		md.State = MiddleInLinkBusy
	default:
		md.State = MiddleOutLinkBusy
	}
	return md
}
