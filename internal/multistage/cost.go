package multistage

import (
	"repro/internal/crossbar"
	"repro/internal/wdm"
)

// Cost returns the network's total hardware counts by summing its
// modules' (audited or closed-form) costs.
func (net *Network) Cost() crossbar.Cost {
	var total crossbar.Cost
	for _, m := range net.inMods {
		total.Add(m.Cost())
	}
	for _, m := range net.midMods {
		total.Add(m.Cost())
	}
	for _, m := range net.outMods {
		total.Add(m.Cost())
	}
	return total
}

// CostFormula returns the closed-form total cost of a three-stage network
// with the given parameters without building it: r input modules of shape
// n x m, m middle modules r x r, and r output modules m x n, each costed
// by the crossbar formulas for its model.
func CostFormula(p Params) (crossbar.Cost, error) {
	p, err := p.Normalize()
	if err != nil {
		return crossbar.Cost{}, err
	}
	n, r, m, k := p.n(), p.R, p.M, p.K
	s12 := p.Construction.Stage12Model()
	var total crossbar.Cost
	total.Add(crossbar.CostFormula(s12, wdm.Shape{In: n, Out: m, K: k}).Scale(r))
	if p.Depth > 3 {
		rn, err := nestedSplit(r, p.Depth-2)
		if err != nil {
			return crossbar.Cost{}, err
		}
		nested, err := CostFormula(Params{
			N: r, K: k, R: rn, Model: s12,
			Construction: p.Construction, Depth: p.Depth - 2,
		})
		if err != nil {
			return crossbar.Cost{}, err
		}
		total.Add(nested.Scale(m))
	} else {
		total.Add(crossbar.CostFormula(p.Construction.MiddleModel(), wdm.Shape{In: r, Out: r, K: k}).Scale(m))
	}
	total.Add(crossbar.CostFormula(p.Model, wdm.Shape{In: m, Out: n, K: k}).Scale(r))
	return total, nil
}

// PaperCrosspoints returns Section 3.4's closed forms for the
// MSW-dominant construction's crosspoint count:
//
//	MSW model:        kmr(2n + r)
//	MSDW/MAW models:  kmr((k+1)n + r)
//
// These must equal CostFormula's sum for the same parameters; the tests
// assert it.
func PaperCrosspoints(model wdm.Model, n, r, m, k int) int {
	if model == wdm.MSW {
		return k * m * r * (2*n + r)
	}
	return k * m * r * ((k+1)*n + r)
}

// PaperConverters returns Section 3.4's converter counts for the
// MSW-dominant construction: 0 (MSW), r*m*k (MSDW: one converter per
// output-module input slot), r*n*k = kN (MAW: one per output-module
// output slot).
func PaperConverters(model wdm.Model, n, r, m, k int) int {
	switch model {
	case wdm.MSW:
		return 0
	case wdm.MSDW:
		return r * m * k
	default: // MAW
		return r * n * k
	}
}
