package multistage

import (
	"testing"

	"repro/internal/wdm"
)

func TestWavePickPolicies(t *testing.T) {
	// MAW-dominant, k=4: route three connections from the same input
	// module through the same middle link and observe which wavelengths
	// they claim under each policy.
	mk := func(pick WavePick) *Network {
		return mustNetwork(t, Params{
			N: 4, K: 4, R: 2, M: 1, X: 1, Model: wdm.MAW,
			Construction: MAWDominant, WavePick: pick, Lite: true,
		})
	}
	claimed := func(net *Network) []int {
		var waves []int
		for w, v := range net.inLink[0][0] {
			if v != freeLink {
				waves = append(waves, w)
			}
		}
		return waves
	}

	// FirstFree: consecutive low wavelengths.
	ff := mk(FirstFree)
	mustAdd(t, ff, conn(pw(0, 0), pw(2, 0)))
	mustAdd(t, ff, conn(pw(0, 1), pw(2, 1)))
	got := claimed(ff)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("FirstFree claimed %v, want [0 1]", got)
	}

	// MostUsed packs onto the busiest plane: after the first claim on
	// λ0, the second also prefers λ0 elsewhere; on the *same* link λ0 is
	// taken, so it takes the next but a connection from the other module
	// stays on λ0.
	mu := mk(MostUsed)
	mustAdd(t, mu, conn(pw(0, 0), pw(2, 0)))
	mustAdd(t, mu, conn(pw(2, 0), pw(0, 0))) // other input module
	if mu.waveUse[0] < 3 {                   // in0->m0, m0->out1, in1->m0 (+ m0->out0) share λ0 under packing
		t.Errorf("MostUsed did not pack onto λ0: waveUse = %v", mu.waveUse)
	}

	// LeastUsed spreads: the second connection's links avoid λ0.
	lu := mk(LeastUsed)
	mustAdd(t, lu, conn(pw(0, 0), pw(2, 0)))
	mustAdd(t, lu, conn(pw(2, 1), pw(0, 1)))
	use0 := lu.waveUse[0]
	total := 0
	for _, v := range lu.waveUse {
		total += v
	}
	if use0 == total {
		t.Errorf("LeastUsed concentrated everything on λ0: %v", lu.waveUse)
	}
}

func TestWaveUseCountersBalanced(t *testing.T) {
	net := mustNetwork(t, Params{
		N: 8, K: 2, R: 4, Model: wdm.MAW, Construction: MAWDominant,
		WavePick: MostUsed, Lite: true,
	})
	ids := []int{}
	for i := 0; i < 6; i++ {
		id, err := net.Add(conn(pw(i, 0), pw(7-i, 1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := net.Release(id); err != nil {
			t.Fatal(err)
		}
	}
	for w, v := range net.waveUse {
		if v != 0 {
			t.Errorf("waveUse[%d] = %d after releasing everything", w, v)
		}
	}
}

func TestWavePickString(t *testing.T) {
	if FirstFree.String() != "first-free" || MostUsed.String() != "most-used" || LeastUsed.String() != "least-used" {
		t.Error("policy names wrong")
	}
}
