package multistage

import (
	"strings"
	"testing"

	"repro/internal/wdm"
)

func pw(p, w int) wdm.PortWave {
	return wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
}

func conn(src wdm.PortWave, dests ...wdm.PortWave) wdm.Connection {
	return wdm.Connection{Source: src, Dests: dests}
}

func mustNetwork(t *testing.T, p Params) *Network {
	t.Helper()
	net, err := New(p)
	if err != nil {
		t.Fatalf("New(%+v): %v", p, err)
	}
	return net
}

func mustAdd(t *testing.T, net *Network, c wdm.Connection) int {
	t.Helper()
	id, err := net.Add(c)
	if err != nil {
		t.Fatalf("Add(%v): %v", c, err)
	}
	return id
}

func mustVerify(t *testing.T, net *Network) {
	t.Helper()
	if err := net.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	p, err := (Params{N: 8, K: 2, R: 4, Model: wdm.MSW}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.M != Theorem1MinM(2, 4) {
		t.Errorf("defaulted M = %d, want theorem 1's %d", p.M, Theorem1MinM(2, 4))
	}
	if p.X != Theorem1BestX(2, 4) {
		t.Errorf("defaulted X = %d, want %d", p.X, Theorem1BestX(2, 4))
	}
}

func TestNormalizeRejectsBadParams(t *testing.T) {
	bad := []Params{
		{N: 0, K: 1, R: 1, Model: wdm.MSW},
		{N: 4, K: 0, R: 2, Model: wdm.MSW},
		{N: 4, K: 1, R: 3, Model: wdm.MSW}, // R does not divide N
		{N: 4, K: 1, R: 0, Model: wdm.MSW},
		{N: 4, K: 1, R: 2, Model: wdm.Model(9)},
		{N: 4, K: 1, R: 2, Model: wdm.MSW, Construction: Construction(9)},
		{N: 4, K: 1, R: 2, Model: wdm.MSW, X: -1},
		{N: 4, K: 1, R: 2, Model: wdm.MSW, M: -1},
	}
	for _, p := range bad {
		if _, err := p.Normalize(); err == nil {
			t.Errorf("Normalize accepted %+v", p)
		}
	}
}

func TestSimpleUnicastEveryConfig(t *testing.T) {
	for _, constr := range []Construction{MSWDominant, MAWDominant} {
		for _, model := range wdm.Models {
			net := mustNetwork(t, Params{N: 4, K: 2, R: 2, Model: model, Construction: constr})
			id := mustAdd(t, net, conn(pw(0, 0), pw(3, 0)))
			mustVerify(t, net)
			if err := net.Release(id); err != nil {
				t.Fatalf("%v/%v: release: %v", constr, model, err)
			}
			mustVerify(t, net)
			if net.Len() != 0 {
				t.Errorf("%v/%v: %d connections after release", constr, model, net.Len())
			}
		}
	}
}

func TestMulticastAcrossModules(t *testing.T) {
	// A multicast spanning both output modules plus a local one.
	for _, constr := range []Construction{MSWDominant, MAWDominant} {
		net := mustNetwork(t, Params{N: 8, K: 2, R: 4, Model: wdm.MSW, Construction: constr})
		mustAdd(t, net, conn(pw(0, 0), pw(1, 0), pw(3, 0), pw(5, 0), pw(7, 0)))
		mustAdd(t, net, conn(pw(4, 1), pw(0, 1), pw(6, 1)))
		mustVerify(t, net)
	}
}

func TestModelRulesEnforcedAtNetworkLevel(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 2, R: 2, Model: wdm.MSW})
	if _, err := net.Add(conn(pw(0, 0), pw(3, 1))); err == nil {
		t.Error("MSW network accepted a wavelength-shifting connection")
	}
	netMSDW := mustNetwork(t, Params{N: 4, K: 2, R: 2, Model: wdm.MSDW})
	if _, err := netMSDW.Add(conn(pw(0, 0), pw(2, 0), pw(3, 1))); err == nil {
		t.Error("MSDW network accepted mixed destination wavelengths")
	}
	mustAdd(t, netMSDW, conn(pw(0, 0), pw(2, 1), pw(3, 1)))
	mustVerify(t, netMSDW)
}

func TestBusySlotRejected(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 1, R: 2, Model: wdm.MSW})
	mustAdd(t, net, conn(pw(0, 0), pw(1, 0)))
	if _, err := net.Add(conn(pw(0, 0), pw(2, 0))); err == nil || IsBlocked(err) {
		t.Errorf("busy source should be inadmissible, not blocked: %v", err)
	}
	if _, err := net.Add(conn(pw(1, 0), pw(1, 0))); err == nil || IsBlocked(err) {
		t.Errorf("busy destination should be inadmissible, not blocked: %v", err)
	}
}

func TestWavelengthShiftThroughOutputStage(t *testing.T) {
	// MAW network, MSW-dominant: the signal stays on λ0 through stages
	// 1-2, and the output module's converters retune per destination.
	net := mustNetwork(t, Params{N: 4, K: 2, R: 2, Model: wdm.MAW, Construction: MSWDominant})
	mustAdd(t, net, conn(pw(0, 0), pw(1, 1), pw(2, 0), pw(3, 1)))
	mustVerify(t, net)
}

// TestFig10Scenario reproduces the paper's Fig. 10: a request that blocks
// at a middle-stage MSW switch (its wavelength is taken on the needed
// links) is routable when the first two stages are MAW and may retune.
func TestFig10Scenario(t *testing.T) {
	base := Params{N: 4, K: 2, R: 2, M: 1, X: 1, Model: wdm.MAW}

	// One middle module only: connection A occupies λ0 on the links
	// in0->mid0 and mid0->out1. Request B is also sourced on λ0 in input
	// module 0 with a destination in output module 1.
	a := conn(pw(0, 0), pw(3, 0))
	b := conn(pw(1, 0), pw(2, 0))

	msw := mustNetwork(t, func() Params { p := base; p.Construction = MSWDominant; return p }())
	mustAdd(t, msw, a)
	if _, err := msw.Add(b); !IsBlocked(err) {
		t.Errorf("MSW-dominant: want blocking, got %v", err)
	}

	maw := mustNetwork(t, func() Params { p := base; p.Construction = MAWDominant; return p }())
	mustAdd(t, maw, a)
	if _, err := maw.Add(b); err != nil {
		t.Errorf("MAW-dominant: same request blocked: %v", err)
	}
	mustVerify(t, maw)
}

// TestTheorem1GapForMAWModel demonstrates the reproduction finding
// documented in EXPERIMENTS.md: under the MSW-dominant construction with
// an MAW output stage, the paper's Theorem 1 bound m = 13 (n = r = 4) is
// NOT sufficient — min(nk, N)-1 = 15 connections can ride wavelength λ0
// into one output module through 13 distinct middle modules, saturating
// λ0 on every link into that module.
func TestTheorem1GapForMAWModel(t *testing.T) {
	n, r, k := 4, 4, 4
	m := Theorem1MinM(n, r) // 13: the paper's claimed-sufficient value
	net := mustNetwork(t, Params{
		N: n * r, K: k, R: r, M: m, X: Theorem1BestX(n, r),
		Model: wdm.MAW, Construction: MSWDominant,
	})

	// 13 unicasts, all sourced on λ0 (the maximum the theorem's own
	// m = 13 middle modules can carry into module 0 on plane λ0), each to
	// a distinct slot of output module 0 (ports 0-3).
	destSlots := make([]wdm.PortWave, 0, m)
	for p := 0; p < 4 && len(destSlots) < m; p++ {
		for w := 0; w < k && len(destSlots) < m; w++ {
			destSlots = append(destSlots, pw(p, w))
		}
	}
	for i := 0; i < m; i++ {
		mustAdd(t, net, conn(pw(i, 0), destSlots[i]))
	}
	mustVerify(t, net)

	// A 14th λ0-sourced request to a free slot of module 0 must block:
	// every middle module's λ0 into module 0 is taken.
	last := conn(pw(m, 0), pw(3, 2))
	if _, err := net.Add(last); !IsBlocked(err) {
		t.Fatalf("expected blocking at the paper's Theorem 1 bound, got %v", err)
	}

	// The corrected sufficient bound routes the same adversarial prefix
	// and the 14th request.
	mFix, xFix := SufficientMinM(MSWDominant, wdm.MAW, n, r, k)
	if mFix <= m {
		t.Fatalf("corrected bound %d not above the paper's %d", mFix, m)
	}
	net2 := mustNetwork(t, Params{
		N: n * r, K: k, R: r, M: mFix, X: xFix,
		Model: wdm.MAW, Construction: MSWDominant,
	})
	for i := 0; i < m; i++ {
		mustAdd(t, net2, conn(pw(i, 0), destSlots[i]))
	}
	mustAdd(t, net2, last)
	mustVerify(t, net2)
}

func TestStatsCount(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 1, R: 2, M: 1, X: 1, Model: wdm.MSW})
	mustAdd(t, net, conn(pw(0, 0), pw(2, 0)))
	_, err := net.Add(conn(pw(1, 0), pw(3, 0))) // same in-link wavelength: blocked
	if !IsBlocked(err) {
		t.Fatalf("want blocked, got %v", err)
	}
	ok, blocked := net.Stats()
	if ok != 1 || blocked != 1 {
		t.Errorf("Stats = (%d, %d), want (1, 1)", ok, blocked)
	}
}

func TestResetAndReuse(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 2, R: 2, Model: wdm.MAW, Construction: MAWDominant})
	mustAdd(t, net, conn(pw(0, 0), pw(1, 1), pw(2, 0)))
	mustAdd(t, net, conn(pw(3, 1), pw(0, 0)))
	net.Reset()
	if net.Len() != 0 {
		t.Fatalf("%d live connections after Reset", net.Len())
	}
	mustVerify(t, net)
	// Full reuse of the same slots.
	mustAdd(t, net, conn(pw(0, 0), pw(1, 1), pw(2, 0)))
	mustVerify(t, net)
}

func TestAddAssignmentRollsBack(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 1, R: 2, M: 1, X: 1, Model: wdm.MSW})
	bad := wdm.Assignment{
		conn(pw(0, 0), pw(2, 0)),
		conn(pw(1, 0), pw(3, 0)), // blocked: single middle, in-link busy
	}
	if _, err := net.AddAssignment(bad); err == nil {
		t.Fatal("assignment should have failed")
	}
	if net.Len() != 0 {
		t.Errorf("rollback left %d connections", net.Len())
	}
	mustVerify(t, net)
}

func TestLiteNetworkBehavesLikeFull(t *testing.T) {
	mk := func(lite bool) *Network {
		return mustNetwork(t, Params{N: 8, K: 2, R: 4, Model: wdm.MAW, Construction: MAWDominant, Lite: lite})
	}
	full, lite := mk(false), mk(true)
	reqs := []wdm.Connection{
		conn(pw(0, 0), pw(1, 1), pw(5, 0)),
		conn(pw(0, 1), pw(0, 0)),
		conn(pw(3, 0), pw(6, 1), pw(7, 0)),
		conn(pw(0, 0), pw(2, 0)), // busy source: both reject
	}
	for i, c := range reqs {
		_, e1 := full.Add(c)
		_, e2 := lite.Add(c)
		if (e1 == nil) != (e2 == nil) {
			t.Errorf("request %d: full err=%v lite err=%v", i, e1, e2)
		}
	}
	if full.Cost() != lite.Cost() {
		t.Errorf("full cost %+v != lite cost %+v", full.Cost(), lite.Cost())
	}
	if err := lite.Verify(); err != nil {
		t.Errorf("lite Verify (linkage only): %v", err)
	}
}

func TestCostFormulaMatchesAudit(t *testing.T) {
	cases := []Params{
		{N: 4, K: 1, R: 2, Model: wdm.MSW},
		{N: 4, K: 2, R: 2, Model: wdm.MSDW},
		{N: 8, K: 2, R: 4, Model: wdm.MAW},
		{N: 8, K: 2, R: 4, Model: wdm.MAW, Construction: MAWDominant},
		{N: 9, K: 3, R: 3, Model: wdm.MSW, Construction: MAWDominant},
	}
	for _, p := range cases {
		net := mustNetwork(t, p)
		want, err := CostFormula(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := net.Cost(); got != want {
			t.Errorf("%+v: audit %+v != formula %+v", p, got, want)
		}
	}
}

func TestPaperCostFormulas(t *testing.T) {
	// Section 3.4's closed forms must agree with the module-sum formula
	// for the MSW-dominant construction.
	for _, model := range wdm.Models {
		for _, c := range []struct{ n, r, k int }{{2, 2, 1}, {4, 4, 2}, {3, 9, 3}, {8, 8, 4}} {
			p := Params{N: c.n * c.r, K: c.k, R: c.r, Model: model, Construction: MSWDominant}
			p, err := p.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			got, err := CostFormula(p)
			if err != nil {
				t.Fatal(err)
			}
			if want := PaperCrosspoints(model, c.n, c.r, p.M, c.k); got.Crosspoints != want {
				t.Errorf("%v n=%d r=%d k=%d m=%d: crosspoints %d, paper %d",
					model, c.n, c.r, c.k, p.M, got.Crosspoints, want)
			}
			if want := PaperConverters(model, c.n, c.r, p.M, c.k); got.Converters != want {
				t.Errorf("%v n=%d r=%d k=%d m=%d: converters %d, paper %d",
					model, c.n, c.r, c.k, p.M, got.Converters, want)
			}
		}
	}
}

func TestMultistageCheaperThanCrossbarForLargeN(t *testing.T) {
	// Table 2's point: O(kN^1.5 log/loglog) beats kN^2 for large N.
	p := Params{N: 1024, K: 2, R: 32, Model: wdm.MSW}
	cost, err := CostFormula(p)
	if err != nil {
		t.Fatal(err)
	}
	crossbarCost := 2 * 1024 * 1024 // kN^2
	if cost.Crosspoints >= crossbarCost {
		t.Errorf("multistage crosspoints %d >= crossbar %d at N=1024", cost.Crosspoints, crossbarCost)
	}
}

func TestUtilization(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 2, R: 2, M: 2, X: 1, Model: wdm.MSW, Lite: true})
	u := net.Utilization()
	if u.InLinkBusy != 0 || u.OutLinkBusy != 0 || u.BusiestInLink != 0 {
		t.Errorf("idle network utilization: %+v", u)
	}
	// One unicast: exactly one in-link wavelength and one out-link
	// wavelength busy. Totals: 2 modules x 2 middles x 2 waves = 8 each.
	mustAdd(t, net, conn(pw(0, 0), pw(3, 0)))
	u = net.Utilization()
	if u.InLinkBusy != 0.125 || u.OutLinkBusy != 0.125 {
		t.Errorf("after one unicast: %+v, want 1/8 busy on both sides", u)
	}
	if u.BusiestInLink != 1 || u.BusiestOutLink != 1 {
		t.Errorf("busiest links: %+v, want 1", u)
	}
	net.Reset()
	if u := net.Utilization(); u.InLinkBusy != 0 {
		t.Errorf("utilization after reset: %+v", u)
	}
}

func TestBlockedErrorWording(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 1, R: 2, M: 1, X: 1, Model: wdm.MSW})
	mustAdd(t, net, conn(pw(0, 0), pw(2, 0)))
	_, err := net.Add(conn(pw(1, 0), pw(3, 0)))
	if err == nil || !strings.Contains(err.Error(), "blocked") {
		t.Errorf("blocking error unclear: %v", err)
	}
}
