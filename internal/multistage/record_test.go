package multistage

import (
	"reflect"
	"testing"

	"repro/internal/wdm"
	"repro/internal/workload"
)

// TestRouteRecordRoundTrip loads a network, exports every live route,
// replays the records into an empty network of the same parameters, and
// checks the replayed fabric carries identical connections and routes.
// This is the crash-recovery primitive: replay must never search, so it
// must never block.
func TestRouteRecordRoundTrip(t *testing.T) {
	p := Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true}
	net := mustNetwork(t, p)

	d := wdm.Dim{N: 16, K: 2}
	gen := workload.NewGenerator(5, wdm.MSW, d)
	freeSrc, freeDst := allSlots(d), allSlots(d)
	var ids []int
	for i := 0; i < 12; i++ {
		c, ok := gen.Connection(freeSrc, freeDst, gen.Fanout(5))
		if !ok {
			break
		}
		ids = append(ids, mustAdd(t, net, c))
		freeSrc = remove(freeSrc, c.Source)
		for _, dd := range c.Normalize().Dests {
			freeDst = remove(freeDst, dd)
		}
	}
	if len(ids) < 8 {
		t.Fatalf("generator produced only %d connections", len(ids))
	}

	records := make(map[int]RouteRecord, len(ids))
	for _, id := range ids {
		rec, ok := net.RouteRecord(id)
		if !ok {
			t.Fatalf("RouteRecord(%d) missing", id)
		}
		records[id] = rec
	}
	if _, ok := net.RouteRecord(99999); ok {
		t.Error("RouteRecord invented a record for an unknown id")
	}

	replay := mustNetwork(t, p)
	newIDs := make(map[int]int, len(ids))
	for _, id := range ids {
		nid, err := replay.Reinstall(records[id])
		if err != nil {
			t.Fatalf("Reinstall(%d): %v", id, err)
		}
		newIDs[id] = nid
	}
	for _, id := range ids {
		want, _ := net.Connection(id)
		got, ok := replay.Connection(newIDs[id])
		if !ok {
			t.Fatalf("replayed connection %d vanished", id)
		}
		if !reflect.DeepEqual(want.Normalize(), got.Normalize()) {
			t.Errorf("connection %d: replayed %v, want %v", id, got, want)
		}
		rec, _ := replay.RouteRecord(newIDs[id])
		if !reflect.DeepEqual(rec, records[id]) {
			t.Errorf("connection %d: replayed route %+v, want %+v", id, rec, records[id])
		}
	}

	// Replayed routes are live: release one and its slots free up.
	if err := replay.Release(newIDs[ids[0]]); err != nil {
		t.Fatalf("Release replayed connection: %v", err)
	}
	if _, err := replay.Reinstall(records[ids[0]]); err != nil {
		t.Errorf("re-reinstall after release: %v", err)
	}
}

func TestReinstallConflictsDetected(t *testing.T) {
	p := Params{N: 4, K: 1, R: 2, M: 2, X: 1, Model: wdm.MSW, Lite: true}
	net := mustNetwork(t, p)
	id := mustAdd(t, net, conn(pw(0, 0), pw(2, 0)))
	rec, _ := net.RouteRecord(id)
	// Same record into the same network: source slot busy.
	if _, err := net.Reinstall(rec); err == nil {
		t.Fatal("Reinstall over a busy source slot succeeded")
	}
}

func TestRouteRecordDecodeValidation(t *testing.T) {
	p := Params{N: 4, K: 1, R: 2, M: 2, X: 1, Model: wdm.MSW, Lite: true}
	bad := []RouteRecord{
		{Conn: "not a connection"},
		{Conn: "0.0>2.0"}, // no input legs
		{Conn: "0.0>2.0", In: []RouteLeg{{Middle: 9, Wave: 0}}},
		{Conn: "0.0>2.0", In: []RouteLeg{{Middle: 0, Wave: 5}}},
		{Conn: "0.0>2.0", In: []RouteLeg{{Middle: 0, Wave: 0}, {Middle: 0, Wave: 0}}},
		{Conn: "0.0>2.0", In: []RouteLeg{{Middle: 0, Wave: 0}},
			Out: []RouteHop{{Middle: 1, Out: 1, Wave: 0}}}, // hop with no leg
		{Conn: "0.0>2.0", In: []RouteLeg{{Middle: 0, Wave: 0}},
			Out: []RouteHop{{Middle: 0, Out: 7, Wave: 0}}}, // out module range
	}
	for i, rec := range bad {
		net := mustNetwork(t, p)
		if _, err := net.Reinstall(rec); err == nil {
			t.Errorf("case %d: bad record %+v reinstalled", i, rec)
		}
	}
}

func remove(slots []wdm.PortWave, s wdm.PortWave) []wdm.PortWave {
	out := slots[:0]
	for _, x := range slots {
		if x != s {
			out = append(out, x)
		}
	}
	return out
}
