// Package multistage implements the paper's three-stage WDM multicast
// switching networks (Section 3): the MSW-dominant and MAW-dominant
// constructions, the destination-(multi)set routing machinery of Lemmas 4
// and 5, the nonblocking middle-stage bounds of Theorems 1 and 2, and the
// network cost formulas of Section 3.4 (Table 2).
//
// A three-stage network (Fig. 8) has r input modules of size n x m, m
// middle modules of size r x r, and r output modules of size m x n, with
// N = n*r and exactly one k-wavelength fiber between every pair of
// modules in consecutive stages. Each module is itself a nonblocking
// multicast crossbar (package crossbar), under the MSW model in the first
// two stages for the MSW-dominant construction or under the MAW model for
// the MAW-dominant construction; output-stage modules follow the
// network's own multicast model.
package multistage

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/combin"
	"repro/internal/wdm"
)

// Theorem1MinM returns the smallest number of middle-stage modules m
// satisfying Theorem 1's sufficient nonblocking condition for the
// MSW-dominant construction:
//
//	m > min over 1 <= x <= min(n-1, r) of (n-1) * (x + r^(1/x)).
//
// n is the input-module port count and r the module count per outer
// stage. The evaluation is exact: the comparison m - (n-1)x > (n-1)r^(1/x)
// is decided as (m - (n-1)x)^x > (n-1)^x * r in big-integer arithmetic.
func Theorem1MinM(n, r int) int {
	m, _ := theorem1(n, r)
	return m
}

// Theorem1BestX returns the routing split limit x that minimizes
// Theorem 1's bound; this is the x the routing strategy should use.
func Theorem1BestX(n, r int) int {
	_, x := theorem1(n, r)
	return x
}

func theorem1(n, r int) (minM, bestX int) {
	checkNR(n, r)
	if n == 1 {
		// (n-1) = 0: the bound degenerates to m > 0.
		return 1, 1
	}
	minM, bestX = math.MaxInt, 1
	for x := 1; x <= min(n-1, r); x++ {
		m := (n-1)*x + qMin(n, r, x)
		if m < minM {
			minM, bestX = m, x
		}
	}
	return minM, bestX
}

// qMin returns the smallest positive integer q with q > (n-1) * r^(1/x),
// i.e. the smallest q with q^x > (n-1)^x * r.
func qMin(n, r, x int) int {
	c := new(big.Int).Mul(combin.PowInt64(int64(n-1), int64(x)), big.NewInt(int64(r)))
	// Smallest q with q^x >= c+1 is the smallest q with q^x > c.
	c.Add(c, big.NewInt(1))
	return int(combin.CeilRootBig(c, int64(x)))
}

// Theorem2MinM returns the smallest m satisfying Theorem 2's sufficient
// nonblocking condition for the MAW-dominant construction:
//
//	m > min over 1 <= x <= min(n-1, r) of
//	        floor((nk-1)x / k) + (n-1) * r^(1/x).
//
// The first term counts middle modules made unavailable by the other
// nk-1 input wavelengths of the same input module: each may fan to x
// middle-stage links, but a link only becomes unusable when all k of its
// wavelengths are taken, hence the division by k.
func Theorem2MinM(n, r, k int) int {
	m, _ := theorem2(n, r, k)
	return m
}

// Theorem2BestX returns the x minimizing Theorem 2's bound.
func Theorem2BestX(n, r, k int) int {
	_, x := theorem2(n, r, k)
	return x
}

func theorem2(n, r, k int) (minM, bestX int) {
	checkNR(n, r)
	if k < 1 {
		panic(fmt.Sprintf("multistage: k = %d, must be positive", k))
	}
	if n == 1 {
		// With a single port per input module the other k-1 wavelengths
		// can never fill a whole k-wavelength link by themselves at x=1,
		// and (n-1)r^(1/x) = 0: m > floor((k-1)/k) = 0.
		return 1, 1
	}
	minM, bestX = math.MaxInt, 1
	for x := 1; x <= min(n-1, r); x++ {
		unavailable := (n*k - 1) * x / k
		m := unavailable + qMin(n, r, x)
		if m < minM {
			minM, bestX = m, x
		}
	}
	return minM, bestX
}

// AsymptoticM returns the paper's closed-form asymptotic sufficient bound
// for the MSW-dominant construction (Section 3.4):
//
//	m >= 3 (n-1) log r / log log r, obtained with x = 2 log r / log log r.
//
// Valid for r large enough that log log r > 0 (r >= 3 with natural logs);
// for smaller r it falls back to Theorem 1's exact minimum.
func AsymptoticM(n, r int) int {
	checkNR(n, r)
	if n == 1 {
		return 1
	}
	lr := math.Log(float64(r))
	if r < 3 || math.Log(lr) <= 0 {
		return Theorem1MinM(n, r)
	}
	return int(math.Ceil(3 * float64(n-1) * lr / math.Log(lr)))
}

// AsymptoticX returns the split limit x = 2 log r / log log r used to
// derive AsymptoticM, clamped to [1, min(n-1, r)].
func AsymptoticX(n, r int) int {
	checkNR(n, r)
	if n == 1 {
		return 1
	}
	lr := math.Log(float64(r))
	x := 1
	if r >= 3 && math.Log(lr) > 0 {
		x = int(math.Round(2 * lr / math.Log(lr)))
	}
	return max(1, min(x, min(n-1, r)))
}

// AWGClosMinM returns a sufficient middle-stage count m and split limit
// x for the AWG-Clos construction's router never to block.
//
// The passive middle stage forces every leg of a connection from input
// module a to output module p onto the class wavelength
// λ = (p - a) mod k, on both the input-stage and output-stage link, and
// a middle serves exactly one output module per connection (a grating
// cannot multicast). Counting the middles a new (a → p) leg can find
// unusable:
//
//   - every other connection from module a (≤ nk-1 of them) claims
//     input-stage links from a on λ for at most ⌈r/k⌉ of its legs (its
//     destination modules congruent to p mod k), each on a distinct
//     middle:            (nk-1)·⌈r/k⌉
//   - every other connection terminating at module p occupies one
//     middle→p link; at most nk-1 of those can sit on λ:  nk-1
//   - the new connection's own other legs reserve at most r-1 middles
//     (one per destination module):                        r-1
//
// so m = (nk-1)(⌈r/k⌉+1) + r guarantees a free middle for every leg.
// The split limit is x = r: each destination module costs one middle.
func AWGClosMinM(n, r, k int) (m, x int) {
	checkNR(n, r)
	if k < 1 {
		panic(fmt.Sprintf("multistage: k = %d, must be positive", k))
	}
	classes := (r + k - 1) / k
	return (n*k-1)*(classes+1) + r, r
}

func checkNR(n, r int) {
	if n < 1 || r < 1 {
		panic(fmt.Sprintf("multistage: module sizes n=%d r=%d must be positive", n, r))
	}
}

// SufficientMinM returns a middle-stage count m and split limit x that are
// sufficient for this package's router never to block, for the given
// construction, network model, and module sizes.
//
// For the MSW model it returns exactly the paper's bounds (Theorem 1 for
// MSW-dominant, Theorem 2 for MAW-dominant).
//
// For MSDW/MAW network models under the MSW-dominant construction it
// returns a *corrected* bound:
//
//	m > min_x { (n-1)x + (min(nk, N) - 1) * r^(1/x) }.
//
// Rationale: the paper reduces the MSW-dominant case to a single-
// wavelength electronic network, where each output switch terminates at
// most n-1 other connections. That holds when the output stage is MSW
// (a plane-λ arrival consumes one of the module's n λ-slots), but with
// MSDW/MAW output modules a plane-λ arrival may occupy *any* of the nk
// output slots after conversion, so up to min(nk, N)-1 other connections
// can ride plane λ into one output module and a new plane-λ request can
// find every link wavelength λ into that module taken. The experiments in
// this repository construct exactly that adversarial state at the paper's
// Theorem 1 bound (see EXPERIMENTS.md), so defaulted networks use the
// corrected bound. Theorem 2's multiset accounting already charges nk-1
// occurrences per output module, so MAW-dominant bounds are unchanged.
func SufficientMinM(construction Construction, model wdm.Model, n, r, k int) (m, x int) {
	checkNR(n, r)
	if k < 1 {
		panic(fmt.Sprintf("multistage: k = %d, must be positive", k))
	}
	if construction == AWGClos {
		return AWGClosMinM(n, r, k)
	}
	if construction == MAWDominant {
		return theorem2(n, r, k)
	}
	if model == wdm.MSW || k == 1 {
		return theorem1(n, r)
	}
	// Corrected MSW-dominant bound for MSDW/MAW.
	c := min(n*k, n*r) - 1
	if c < 1 {
		// Degenerate single-slot networks cannot contend.
		return 1, 1
	}
	xMax := max(1, min(n-1, r))
	minM, bestX := math.MaxInt, 1
	for xx := 1; xx <= xMax; xx++ {
		// Smallest q with q > c * r^(1/xx), i.e. q^xx > c^xx * r.
		lim := new(big.Int).Mul(combin.PowInt64(int64(c), int64(xx)), big.NewInt(int64(r)))
		lim.Add(lim, big.NewInt(1))
		q := int(combin.CeilRootBig(lim, int64(xx)))
		mm := (n-1)*xx + q
		if mm < minM {
			minM, bestX = mm, xx
		}
	}
	return minM, bestX
}

// PaperMinM returns the paper's stated bound for the construction
// (Theorem 1 or Theorem 2) regardless of network model — the value the
// reproduction experiments compare against.
func PaperMinM(construction Construction, n, r, k int) (m, x int) {
	switch construction {
	case MAWDominant:
		return theorem2(n, r, k)
	case AWGClos:
		return AWGClosMinM(n, r, k)
	}
	return theorem1(n, r)
}
