package multistage

import (
	"fmt"
	"sort"
)

// Middle-stage failure handling. A failed middle module (amplifier
// pump death, gate-array power loss, fiber cut on its links) is removed
// from the router's available set; connections that were riding it can
// be enumerated and re-routed around it. The nonblocking margin
// composes: a network provisioned with m = bound + f middle modules
// tolerates any f simultaneous middle failures without ever blocking —
// asserted by the failure tests.

// FailMiddle marks middle module j as failed. Existing connections
// through it are NOT touched (their light is dark until re-routed); new
// routing skips the module. Failing an already-failed module is a no-op.
func (net *Network) FailMiddle(j int) error {
	if j < 0 || j >= len(net.midMods) {
		return fmt.Errorf("multistage: no middle module %d", j)
	}
	if net.failedMid == nil {
		net.failedMid = make(map[int]bool)
	}
	net.failedMid[j] = true
	return nil
}

// RepairMiddle returns a failed middle module to service.
func (net *Network) RepairMiddle(j int) error {
	if j < 0 || j >= len(net.midMods) {
		return fmt.Errorf("multistage: no middle module %d", j)
	}
	delete(net.failedMid, j)
	return nil
}

// FailedMiddles lists the currently failed middle modules in order.
func (net *Network) FailedMiddles() []int {
	out := make([]int, 0, len(net.failedMid))
	for j := range net.failedMid {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// AffectedBy returns the ids of live connections routed through middle
// module j, in id order.
func (net *Network) AffectedBy(j int) []int {
	var out []int
	for id, rc := range net.conns {
		if _, uses := rc.midConn[j]; uses {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// MiddlesUsed lists the middle modules a live connection's route rides,
// in order (AffectedBy answers the inverse question). It reports false
// for an unknown id.
func (net *Network) MiddlesUsed(id int) ([]int, bool) {
	rc, ok := net.conns[id]
	if !ok {
		return nil, false
	}
	out := make([]int, 0, len(rc.midConn))
	for j := range rc.midConn {
		out = append(out, j)
	}
	sort.Ints(out)
	return out, true
}

// Migration records one connection moved off a failed middle module:
// the id is stable across the move, the middle-module sets are the
// route before and after.
type Migration struct {
	ID   int   `json:"id"`
	From []int `json:"from"` // middle modules before the move
	To   []int `json:"to"`   // middle modules after
}

// RerouteAround releases every connection riding the (typically failed)
// middle module j and re-routes it avoiding failed modules. Re-routed
// connections keep their ids. It returns the ids it restored and the
// ids it could not (those connections are dropped — the optical
// reality: no path, no light).
func (net *Network) RerouteAround(j int) (restored, dropped []int, err error) {
	migrated, dropped, err := net.RerouteAroundReport(j)
	for _, m := range migrated {
		restored = append(restored, m.ID)
	}
	return restored, dropped, err
}

// RerouteAroundReport is RerouteAround with per-connection migration
// bookkeeping: each restored connection comes back as a Migration
// carrying its old and new middle-module sets, the record a control
// plane needs to update session tables, trace captures, and spans.
func (net *Network) RerouteAroundReport(j int) (migrated []Migration, dropped []int, err error) {
	affected := net.AffectedBy(j)
	for _, id := range affected {
		from, _ := net.MiddlesUsed(id)
		conn := net.conns[id].conn.Clone()
		if err := net.Release(id); err != nil {
			return migrated, dropped, fmt.Errorf("multistage: releasing %d: %w", id, err)
		}
		newID, addErr := net.Add(conn)
		if addErr != nil {
			if IsBlocked(addErr) {
				dropped = append(dropped, id)
				continue
			}
			return migrated, dropped, fmt.Errorf("multistage: re-adding %d: %w", id, addErr)
		}
		net.remapID(newID, id)
		to, _ := net.MiddlesUsed(id)
		migrated = append(migrated, Migration{ID: id, From: from, To: to})
	}
	return migrated, dropped, nil
}
