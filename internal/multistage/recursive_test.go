package multistage

import (
	"testing"

	"repro/internal/wdm"
)

// fiveStageParams builds a 5-stage network: r = 4 middle size factors
// into 2x2 nests.
func fiveStageParams(model wdm.Model, constr Construction) Params {
	return Params{
		N: 16, K: 2, R: 4, Model: model, Construction: constr, Depth: 5,
	}
}

func TestFiveStageConstruction(t *testing.T) {
	for _, constr := range []Construction{MSWDominant, MAWDominant} {
		net := mustNetwork(t, fiveStageParams(wdm.MSW, constr))
		if net.Params().Depth != 5 {
			t.Fatalf("depth = %d", net.Params().Depth)
		}
		// A nested middle module must itself be a Network.
		if _, ok := net.midMods[0].(*Network); !ok {
			t.Fatalf("%v: middle module is %T, want *Network", constr, net.midMods[0])
		}
	}
}

func TestFiveStageRoutesAndVerifies(t *testing.T) {
	for _, constr := range []Construction{MSWDominant, MAWDominant} {
		for _, model := range wdm.Models {
			net := mustNetwork(t, fiveStageParams(model, constr))
			// Broad multicast spanning all four output modules; the MSW
			// variant keeps the source wavelength, others shift.
			c := conn(pw(0, 0), pw(2, 0), pw(6, 0), pw(10, 0), pw(14, 0))
			if model != wdm.MSW {
				c = conn(pw(0, 0), pw(2, 1), pw(6, 1), pw(10, 1), pw(14, 1))
			}
			id := mustAdd(t, net, c)
			mustAdd(t, net, conn(pw(5, 1), pw(3, 1), pw(9, 1)))
			mustVerify(t, net)
			if err := net.Release(id); err != nil {
				t.Fatalf("%v/%v: release: %v", constr, model, err)
			}
			mustVerify(t, net)
		}
	}
}

func TestFiveStageDynamicStress(t *testing.T) {
	// Churn connections through the recursive network; nothing may block
	// at the per-level sufficient bounds and verification must stay
	// clean throughout.
	net := mustNetwork(t, fiveStageParams(wdm.MAW, MAWDominant))
	var live []int
	step := 0
	for i := 0; i < 200; i++ {
		src := pw(i%16, i%2)
		dst := pw((i*7+3)%16, (i/2)%2)
		if src.Port == dst.Port {
			dst.Port = (dst.Port + 1) % 16
		}
		id, err := net.Add(conn(src, dst))
		if err != nil {
			// Busy slots are expected during churn; blocking is not.
			if IsBlocked(err) {
				t.Fatalf("step %d: blocked: %v", i, err)
			}
			continue
		}
		live = append(live, id)
		step++
		if step%3 == 0 && len(live) > 0 {
			if err := net.Release(live[0]); err != nil {
				t.Fatal(err)
			}
			live = live[1:]
		}
		if step%20 == 0 {
			mustVerify(t, net)
		}
	}
	mustVerify(t, net)
}

func TestSevenStageConstruction(t *testing.T) {
	// Depth 7 needs r to nest twice: r=4 -> nested r=2 middles of size 2
	// cannot nest again (2 has no factorization), so Depth 7 at r=4 must
	// be rejected; a size with r=16 (16 -> 4 -> 2) works.
	if _, err := (Params{N: 16, K: 1, R: 4, Model: wdm.MSW, Depth: 7}).Normalize(); err == nil {
		t.Error("Depth=7 with r=4 accepted (4 -> 2 cannot nest again)")
	}
	net := mustNetwork(t, Params{
		N: 64, K: 1, R: 16, Model: wdm.MSW, Depth: 7, Lite: true,
	})
	mustAdd(t, net, conn(pw(0, 0), pw(17, 0), pw(33, 0), pw(63, 0)))
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDepthValidation(t *testing.T) {
	for _, d := range []int{1, 2, 4, -3} {
		p := Params{N: 16, K: 1, R: 4, Model: wdm.MSW, Depth: d}
		if _, err := p.Normalize(); err == nil {
			t.Errorf("Depth=%d accepted", d)
		}
	}
	// Prime r cannot nest.
	p := Params{N: 15, K: 1, R: 5, Model: wdm.MSW, Depth: 5}
	if _, err := p.Normalize(); err == nil {
		t.Error("Depth=5 with prime r accepted")
	}
}

func TestFiveStageCostFormulaMatchesAudit(t *testing.T) {
	p := fiveStageParams(wdm.MAW, MSWDominant)
	net := mustNetwork(t, p)
	want, err := CostFormula(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Cost(); got != want {
		t.Errorf("audit %+v != formula %+v", got, want)
	}
}

func TestDeeperNetworksTradeCrosspointsForStages(t *testing.T) {
	// The recursion's point (Section 3): replacing the monolithic r x r
	// middle crossbars with nested networks reduces crosspoints once the
	// middle size r itself is past the three-stage crossover (~256 at
	// k=2). At r=64 nesting still loses; at r=1024 it wins clearly —
	// both directions are asserted.
	k := 2
	cost := func(n, r, depth int) int {
		c, err := CostFormula(Params{N: n, K: k, R: r, Model: wdm.MSW, Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		return c.Crosspoints
	}
	if three, five := cost(4096, 64, 3), cost(4096, 64, 5); five < three {
		t.Errorf("5-stage should not pay at r=64: %d < %d", five, three)
	}
	if three, five := cost(16384, 1024, 3), cost(16384, 1024, 5); five >= three {
		t.Errorf("5-stage crosspoints %d >= 3-stage %d at r=1024", five, three)
	}
}
