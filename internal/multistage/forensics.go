package multistage

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/wdm"
)

// Blocking forensics. A blocking event — the condition Theorems 1 and 2
// make impossible at the sufficient middle-stage bound — is the single
// most actionable signal the router produces, and an opaque error wastes
// it. Every ErrBlocked returned by Add or AddBranch is therefore a
// *BlockedError carrying a BlockReport: the per-middle-module rejection
// reason (input-link wavelength busy vs. output-link busy vs. module out
// of service), the candidate wavelengths that were tried on each busy
// link, and the per-stage link occupancy at the moment of the block.
// Reports are built only on the blocking path, so the routed fast path
// pays nothing.

// MiddleState classifies how one middle module figured in a blocked
// routing attempt.
type MiddleState string

const (
	// MiddleSelected: the selection loop chose this module; Serves lists
	// the output modules it was to cover.
	MiddleSelected MiddleState = "selected"
	// MiddleFailed: the module is out of service (module-internal
	// fault, see FailMiddle) and the router skipped it.
	MiddleFailed MiddleState = "failed"
	// MiddleInLinkBusy: every candidate wavelength on the input-stage
	// link to this module was occupied, so the source could not reach it.
	MiddleInLinkBusy MiddleState = "in-link-busy"
	// MiddleOutLinkBusy: reachable from the source, but every uncovered
	// output module's link from this middle was wavelength-busy.
	MiddleOutLinkBusy MiddleState = "out-link-busy"
	// MiddleSplitLimit: could still cover at least one uncovered output
	// module, but the split limit x was exhausted before it was used.
	MiddleSplitLimit MiddleState = "split-limit"
)

// OutLinkDiag records why one output module was unreachable through a
// particular middle module: the candidate wavelengths on the link
// middle->output that were tried and found busy.
type OutLinkDiag struct {
	OutModule int   `json:"out_module"`
	BusyWaves []int `json:"busy_waves"`
}

// MiddleDiag is the per-middle-module line of a BlockReport.
type MiddleDiag struct {
	Middle int         `json:"middle"`
	State  MiddleState `json:"state"`
	// WavesTried are the candidate wavelengths examined on the
	// input-stage link to this module (all of them busy when State is
	// in-link-busy).
	WavesTried []int `json:"waves_tried,omitempty"`
	// Serves lists the output modules this middle was selected to cover
	// (selected), or could still have covered (split-limit).
	Serves []int `json:"serves,omitempty"`
	// BlockedOut details the uncovered output modules this middle could
	// not reach and on which wavelengths.
	BlockedOut []OutLinkDiag `json:"blocked_out,omitempty"`
}

// BlockReport is the structured account of one blocking event.
type BlockReport struct {
	// Op is "add" for a blocked Connect-style Add, "branch" for a
	// blocked AddBranch grow.
	Op string `json:"op"`
	// Conn is the blocked request in the wdm text codec.
	Conn string `json:"connection"`
	// SrcModule/SrcWave locate the request's entry into the fabric.
	SrcModule int `json:"src_module"`
	SrcWave   int `json:"src_wave"`
	// LastHopWave is the wavelength the final inter-stage hop had to
	// carry; -1 means any free wavelength was acceptable (MAW-dominant
	// with converting output modules).
	LastHopWave int `json:"last_hop_wave"`
	// X is the split limit; SplitsUsed how many splits the selection
	// loop committed before giving up.
	X          int `json:"x"`
	SplitsUsed int `json:"splits_used"`
	// Uncovered lists the output modules no admissible choice of middle
	// modules could reach.
	Uncovered []int `json:"uncovered"`
	// Middles diagnoses every middle module of the fabric.
	Middles []MiddleDiag `json:"middles"`
	// Utilization is the fabric's per-stage link occupancy at the moment
	// of the block.
	Utilization Utilization `json:"utilization"`
}

// String renders the report for humans, one middle module per line.
func (r *BlockReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "blocked %s %s: input module %d λ%d, %d/%d splits used, uncovered %v\n",
		r.Op, r.Conn, r.SrcModule, r.SrcWave, r.SplitsUsed, r.X, r.Uncovered)
	for _, md := range r.Middles {
		fmt.Fprintf(&b, "  middle %d: %s", md.Middle, md.State)
		if len(md.WavesTried) > 0 {
			fmt.Fprintf(&b, " (in-link λ%v tried)", md.WavesTried)
		}
		if len(md.Serves) > 0 {
			fmt.Fprintf(&b, " serves %v", md.Serves)
		}
		for _, od := range md.BlockedOut {
			fmt.Fprintf(&b, " out%d:λ%v busy", od.OutModule, od.BusyWaves)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  occupancy: in %d/%d out %d/%d\n",
		r.Utilization.InBusy, r.Utilization.InTotal, r.Utilization.OutBusy, r.Utilization.OutTotal)
	return b.String()
}

// Backend-specific rejection classes a BlockedError may carry. The
// strings are the stable wire error codes the serving path maps into
// its {"error":{code,message}} envelope; an empty Code is the generic
// "blocked" class.
const (
	// CodeWavelengthConflict: the AWG-Clos wavelength-routing law
	// λ = (dest module - src module) mod k found no middle with the
	// class wavelength free on both hops.
	CodeWavelengthConflict = "wavelength_conflict"
	// CodeSplitIncapable: a mesh request needs light splitting at a
	// multicast-incapable node — structurally unroutable under the
	// sparse-splitting placement, not an occupancy block.
	CodeSplitIncapable = "split_incapable"
)

// BlockedError is the concrete error Add and AddBranch return on a
// blocking event. It wraps ErrBlocked — errors.Is(err, ErrBlocked) and
// IsBlocked keep working — and carries the forensic report.
type BlockedError struct {
	// Code, when non-empty, classifies a backend-specific rejection
	// (CodeWavelengthConflict, CodeSplitIncapable).
	Code string
	// Detail is the human-readable cause, appended to ErrBlocked's text.
	Detail string
	// Report explains the block middle module by middle module.
	Report *BlockReport
}

func (e *BlockedError) Error() string { return ErrBlocked.Error() + ": " + e.Detail }

func (e *BlockedError) Unwrap() error { return ErrBlocked }

// BlockedCode extracts the backend-specific rejection class from a
// (possibly wrapped) blocking error; "" for nil, non-blocking, and
// generic blocks.
func BlockedCode(err error) string {
	var be *BlockedError
	if errors.As(err, &be) {
		return be.Code
	}
	return ""
}

// AsBlockReport extracts the forensic report from a (possibly wrapped)
// blocking error. It returns false for nil, non-blocking, and
// report-free errors.
func AsBlockReport(err error) (*BlockReport, bool) {
	var be *BlockedError
	if errors.As(err, &be) && be.Report != nil {
		return be.Report, true
	}
	return nil, false
}

// blockReport assembles the forensic account of a blocking event from
// the router's state at the failure point. assign holds the middles the
// selection loop had already chosen (nil when none were available at
// all), residual the output modules left uncovered, used the splits
// committed.
func (net *Network) blockReport(op string, c wdm.Connection, srcMod int,
	lastHopWave wdm.Wavelength, assign map[int][]int, residual []int, used int) *BlockReport {

	r := &BlockReport{
		Op:          op,
		Conn:        wdm.FormatConnection(c),
		SrcModule:   srcMod,
		SrcWave:     int(c.Source.Wave),
		LastHopWave: int(lastHopWave),
		X:           net.params.X,
		SplitsUsed:  used,
		Uncovered:   append([]int(nil), residual...),
		Utilization: net.Utilization(),
	}
	sort.Ints(r.Uncovered)
	for j := range net.midMods {
		r.Middles = append(r.Middles, net.diagnoseMiddle(j, c.Source.Wave, srcMod, lastHopWave, assign, r.Uncovered))
	}
	return r
}

// diagnoseMiddle classifies middle module j for a blocked request.
func (net *Network) diagnoseMiddle(j int, srcWave wdm.Wavelength, srcMod int,
	lastHopWave wdm.Wavelength, assign map[int][]int, uncovered []int) MiddleDiag {

	md := MiddleDiag{Middle: j}
	if net.failedMid[j] {
		md.State = MiddleFailed
		return md
	}
	if serves, chosen := assign[j]; chosen {
		md.State = MiddleSelected
		md.Serves = append([]int(nil), serves...)
		sort.Ints(md.Serves)
		return md
	}
	if net.params.Construction == AWGClos {
		return net.diagnoseAWGMiddle(md, srcMod, uncovered)
	}
	if tried, free := net.inLinkCandidates(srcMod, j, srcWave); !free {
		md.State = MiddleInLinkBusy
		md.WavesTried = tried
		return md
	}
	// Reachable from the source: split the uncovered output modules into
	// those this middle could still serve and those its out-links refuse.
	for _, p := range uncovered {
		if net.middleBlocked(j, p, lastHopWave) {
			md.BlockedOut = append(md.BlockedOut, OutLinkDiag{
				OutModule: p,
				BusyWaves: net.outLinkBusyWaves(j, p, lastHopWave),
			})
		} else {
			md.Serves = append(md.Serves, p)
		}
	}
	if len(md.Serves) > 0 {
		md.State = MiddleSplitLimit
	} else {
		md.State = MiddleOutLinkBusy
	}
	return md
}

// inLinkCandidates returns the candidate wavelengths the router would
// try on the link srcMod->j and whether any of them is free — the
// availableMiddles test, with the evidence kept.
func (net *Network) inLinkCandidates(a, j int, srcWave wdm.Wavelength) (tried []int, free bool) {
	link := net.inLink[a][j]
	if net.params.Construction == MSWDominant {
		// Wavelength-locked first two stages: only the connection's own
		// wavelength is a candidate.
		return []int{int(srcWave)}, link[srcWave] == freeLink
	}
	if net.params.ConservativeLinks {
		// Plain-set ablation: any occupied wavelength poisons the link.
		for w, v := range link {
			if v != freeLink {
				tried = append(tried, w)
			}
		}
		return tried, len(tried) == 0
	}
	for w, v := range link {
		tried = append(tried, w)
		if v == freeLink {
			free = true
		}
	}
	return tried, free
}

// outLinkBusyWaves lists the candidate wavelengths on the link j->p
// that middleBlocked found occupied.
func (net *Network) outLinkBusyWaves(j, p int, needWave wdm.Wavelength) []int {
	link := net.outLink[j][p]
	if net.params.ConservativeLinks && net.params.Construction == MAWDominant {
		var busy []int
		for w, v := range link {
			if v != freeLink {
				busy = append(busy, w)
			}
		}
		return busy
	}
	if needWave >= 0 {
		return []int{int(needWave)}
	}
	busy := make([]int, 0, len(link))
	for w := range link {
		busy = append(busy, w)
	}
	return busy
}
