package multistage

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/wdm"
	"repro/internal/workload"
)

// TestExplainMatchesAdd is the drift guard between the dry-run
// explanation and the real router: on a long random workload against an
// undersized network, Explain's verdict must always agree with what Add
// then does, and for routable requests the chosen middles must carry the
// connection exactly as predicted.
func TestExplainMatchesAdd(t *testing.T) {
	net := mustNetwork(t, Params{
		N: 16, K: 2, R: 4, M: 4, X: 2, Model: wdm.MSW, Lite: true,
	})
	d := wdm.Dim{N: 16, K: 2}
	gen := workload.NewGenerator(12, wdm.MSW, d)
	rng := rand.New(rand.NewSource(13))

	freeSrc, freeDst := allSlots(d), allSlots(d)
	type live struct {
		id   int
		conn wdm.Connection
	}
	var held []live
	checked := 0
	for i := 0; i < 800; i++ {
		if len(held) > 0 && rng.Intn(3) == 0 {
			v := held[0]
			held = held[1:]
			if err := net.Release(v.id); err != nil {
				t.Fatal(err)
			}
			freeSrc = append(freeSrc, v.conn.Source)
			freeDst = append(freeDst, v.conn.Dests...)
		}
		c, ok := gen.Connection(freeSrc, freeDst, gen.Fanout(6))
		if !ok {
			continue
		}
		ex, err := net.Explain(c)
		if err != nil {
			t.Fatalf("step %d: explain: %v", i, err)
		}
		id, err := net.Add(c)
		switch {
		case err == nil:
			if !ex.Routable {
				t.Fatalf("step %d: Explain said blocked, Add routed %v\n%s", i, c, ex)
			}
			// The middles predicted must be exactly the ones carrying it.
			rc := net.conns[id]
			if len(rc.midConn) != len(ex.Rounds) {
				t.Fatalf("step %d: predicted %d middles, used %d", i, len(ex.Rounds), len(rc.midConn))
			}
			for _, cand := range ex.Rounds {
				if _, used := rc.midConn[cand.Middle]; !used {
					t.Fatalf("step %d: predicted middle %d unused", i, cand.Middle)
				}
			}
			held = append(held, live{id: id, conn: c.Normalize()})
			freeSrc = removeSlot(freeSrc, c.Source)
			for _, dd := range c.Normalize().Dests {
				freeDst = removeSlot(freeDst, dd)
			}
		case IsBlocked(err):
			if ex.Routable {
				t.Fatalf("step %d: Explain said routable, Add blocked %v\n%s", i, c, ex)
			}
		default:
			t.Fatalf("step %d: %v", i, err)
		}
		checked++
	}
	if checked < 400 {
		t.Fatalf("only %d requests exercised", checked)
	}
}

func TestExplainDoesNotMutate(t *testing.T) {
	net := mustNetwork(t, Params{N: 8, K: 2, R: 4, Model: wdm.MAW, Lite: true})
	mustAdd(t, net, conn(pw(0, 0), pw(5, 1)))
	before, _ := net.Stats()
	u := net.Utilization()
	if _, err := net.Explain(conn(pw(1, 0), pw(6, 0), pw(2, 1))); err != nil {
		t.Fatal(err)
	}
	after, _ := net.Stats()
	if before != after || net.Utilization() != u || net.Len() != 1 {
		t.Error("Explain mutated network state")
	}
}

func TestExplainRejectsInadmissible(t *testing.T) {
	net := mustNetwork(t, Params{N: 8, K: 2, R: 4, Model: wdm.MSW, Lite: true})
	mustAdd(t, net, conn(pw(0, 0), pw(5, 0)))
	if _, err := net.Explain(conn(pw(0, 0), pw(6, 0))); err == nil {
		t.Error("busy source accepted")
	}
	if _, err := net.Explain(conn(pw(1, 0), pw(5, 1))); err == nil {
		t.Error("MSW wavelength shift accepted")
	}
}

func TestExplainStringReadable(t *testing.T) {
	net := mustNetwork(t, Params{N: 4, K: 1, R: 2, M: 1, X: 1, Model: wdm.MSW, Lite: true})
	mustAdd(t, net, conn(pw(0, 0), pw(2, 0)))
	ex, err := net.Explain(conn(pw(1, 0), pw(3, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Routable {
		t.Fatal("expected a blocked explanation")
	}
	s := ex.String()
	for _, want := range []string{"BLOCKED", "available middles", "uncovered"} {
		if !strings.Contains(s, want) {
			t.Errorf("explanation missing %q:\n%s", want, s)
		}
	}
}
