package capacity

import (
	"math/big"
	"testing"

	"repro/internal/wdm"
)

// TestParallelCountMatchesSerial: the partitioned parallel count must
// equal the serial count (and therefore the lemma formulas) exactly.
func TestParallelCountMatchesSerial(t *testing.T) {
	dims := []wdm.Dim{{N: 2, K: 2}, {N: 3, K: 1}, {N: 2, K: 3}}
	for _, d := range dims {
		for _, m := range wdm.Models {
			for _, full := range []bool{false, true} {
				serial := CountByEnumeration(m, d, full)
				for _, workers := range []int{1, 2, 4, 0} {
					got := CountParallel(m, d, full, workers)
					if got.Cmp(serial) != 0 {
						t.Errorf("%v N=%d k=%d full=%v workers=%d: parallel %s != serial %s",
							m, d.N, d.K, full, workers, got, serial)
					}
				}
			}
		}
	}
}

// TestParallelCountMatchesLemma runs the biggest size we count in tests
// (N=3, k=2: up to 79,507 assignments) through the parallel counter.
func TestParallelCountMatchesLemma(t *testing.T) {
	d := wdm.Dim{N: 3, K: 2}
	for _, m := range wdm.Models {
		got := CountParallel(m, d, false, 0)
		want := Any(m, 3, 2)
		if got.Cmp(want) != 0 {
			t.Errorf("%v: parallel %s, lemma %s", m, got, want)
		}
	}
}

// TestHistogramByConnections: the per-size tallies must sum to the
// total capacity; the empty assignment is the unique size-0 entry; no
// assignment exceeds Nk connections; and for k=1 MSW full assignments,
// the count of N-connection entries equals the number of surjections'
// complement sanity: assignments where every source used once = N!
// permutations... checked for N=3: exactly 3! = 6 full assignments use
// 3 distinct connections of fanout 1 each? No — with multicast, 3
// connections can also have uneven fanouts; so only structural
// invariants are asserted plus a hand-countable case.
func TestHistogramByConnections(t *testing.T) {
	d := wdm.Dim{N: 2, K: 2}
	for _, m := range wdm.Models {
		hist := HistogramByConnections(m, d, false)
		sum := big.NewInt(0)
		for size, count := range hist {
			if size < 0 || size > d.Slots() {
				t.Errorf("%v: impossible assignment size %d", m, size)
			}
			sum.Add(sum, count)
		}
		if want := Any(m, 2, 2); sum.Cmp(want) != 0 {
			t.Errorf("%v: histogram sums to %s, capacity %s", m, sum, want)
		}
		if hist[0] == nil || hist[0].Int64() != 1 {
			t.Errorf("%v: empty assignment count = %v, want 1", m, hist[0])
		}
	}
	// Hand-countable: 2x2 k=1 MSW full assignments by connection count.
	// Total 4 = N^N: 2 with two unicasts (identity, swap) and 2 with one
	// fanout-2 multicast (from either source).
	histFull := HistogramByConnections(wdm.MSW, wdm.Dim{N: 2, K: 1}, true)
	if histFull[1].Int64() != 2 || histFull[2].Int64() != 2 {
		t.Errorf("2x2 full histogram = %v, want {1:2, 2:2}", histFull)
	}
}

// TestEnumeratorPrefixPartition: the per-root subtree counts must sum to
// the total — the property CountParallel relies on.
func TestEnumeratorPrefixPartition(t *testing.T) {
	d := wdm.Dim{N: 2, K: 2}
	for _, m := range wdm.Models {
		total := 0
		roots := []int{idle}
		for in := 0; in < d.Slots(); in++ {
			if rootAdmissible(m, d, in) {
				roots = append(roots, in)
			}
		}
		for _, root := range roots {
			e := newEnumerator(m, d, false)
			e.place(0, root)
			e.run(1, func(wdm.Assignment) bool { total++; return true })
		}
		want := CountByEnumeration(m, d, false)
		if !want.IsInt64() || want.Int64() != int64(total) {
			t.Errorf("%v: partitioned total %d != %s", m, total, want)
		}
	}
}
