package capacity

import (
	"math/big"
	"runtime"
	"sync"

	"repro/internal/wdm"
)

// CountParallel counts admissible assignments like CountByEnumeration but
// fans the enumeration out over worker goroutines. The search tree is
// partitioned by the first output slot's pairing choice (idle or any
// admissible input slot): each choice roots an independent subtree, so
// workers share nothing and the partial counts add up exactly.
//
// workers <= 0 selects GOMAXPROCS. The result is identical to the serial
// count for every model and size (tested), which is what makes the
// parallel path trustworthy for the larger verification sweeps.
func CountParallel(model wdm.Model, dim wdm.Dim, full bool, workers int) *big.Int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	slots := dim.Slots()
	if slots == 0 {
		return big.NewInt(0)
	}

	// Roots: admissible values for output slot 0.
	var roots []int
	if !full {
		roots = append(roots, idle)
	}
	for in := 0; in < slots; in++ {
		if rootAdmissible(model, dim, in) {
			roots = append(roots, in)
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := big.NewInt(0)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := big.NewInt(0)
			one := big.NewInt(1)
			for root := range jobs {
				e := newEnumerator(model, dim, full)
				e.place(0, root)
				e.run(1, func(wdm.Assignment) bool {
					sub.Add(sub, one)
					return true
				})
				e.unplace(0, root)
			}
			mu.Lock()
			total.Add(total, sub)
			mu.Unlock()
		}()
	}
	for _, r := range roots {
		jobs <- r
	}
	close(jobs)
	wg.Wait()
	return total
}

// rootAdmissible reports whether input slot in may pair with output slot
// 0 in an otherwise empty assignment.
func rootAdmissible(model wdm.Model, dim wdm.Dim, in int) bool {
	if model == wdm.MSW {
		return in%dim.K == 0 // output slot 0 is wavelength 0
	}
	return true
}

// HistogramByConnections enumerates the admissible assignments and
// tallies them by how many multicast connections each carries — the
// fine structure underneath the Lemma 1-3 totals (e.g. how much of the
// MAW capacity comes from heavily aggregated multicasts vs many
// unicasts). Feasible for the same small sizes as the other enumeration
// tools.
func HistogramByConnections(model wdm.Model, dim wdm.Dim, full bool) map[int]*big.Int {
	hist := make(map[int]*big.Int)
	one := big.NewInt(1)
	EnumerateAssignments(model, dim, full, func(a wdm.Assignment) bool {
		c, ok := hist[len(a)]
		if !ok {
			c = big.NewInt(0)
			hist[len(a)] = c
		}
		c.Add(c, one)
		return true
	})
	return hist
}
