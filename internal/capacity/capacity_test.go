package capacity

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/wdm"
)

func bi(v int64) *big.Int { return big.NewInt(v) }

func TestLemma1KnownValues(t *testing.T) {
	// MSW: N^(Nk) full, (N+1)^(Nk) any.
	cases := []struct {
		n, k      int64
		full, any int64
	}{
		{1, 1, 1, 2},
		{2, 1, 4, 9},
		{2, 2, 16, 81},
		{3, 1, 27, 64},
		{3, 2, 729, 4096},
	}
	for _, c := range cases {
		if got := FullMSW(c.n, c.k); got.Cmp(bi(c.full)) != 0 {
			t.Errorf("FullMSW(%d, %d) = %s, want %d", c.n, c.k, got, c.full)
		}
		if got := AnyMSW(c.n, c.k); got.Cmp(bi(c.any)) != 0 {
			t.Errorf("AnyMSW(%d, %d) = %s, want %d", c.n, c.k, got, c.any)
		}
	}
}

func TestLemma2KnownValues(t *testing.T) {
	// MAW full for N=2, k=2: P(4, 2)^2 = 12^2 = 144.
	if got := FullMAW(2, 2); got.Cmp(bi(144)) != 0 {
		t.Errorf("FullMAW(2, 2) = %s, want 144", got)
	}
	// MAW any for N=2, k=2: [P(4,2) + C(2,1) P(4,1) + 1]^2 = 21^2 = 441.
	if got := AnyMAW(2, 2); got.Cmp(bi(441)) != 0 {
		t.Errorf("AnyMAW(2, 2) = %s, want 441", got)
	}
	// MAW full for N=3, k=2: P(6, 2)^3 = 30^3 = 27000.
	if got := FullMAW(3, 2); got.Cmp(bi(27000)) != 0 {
		t.Errorf("FullMAW(3, 2) = %s, want 27000", got)
	}
	// MAW any for N=3, k=2: [30 + 2*6 + 1]^3 = 43^3 = 79507.
	if got := AnyMAW(3, 2); got.Cmp(bi(79507)) != 0 {
		t.Errorf("AnyMAW(3, 2) = %s, want 79507", got)
	}
}

func TestK1ReducesToElectronic(t *testing.T) {
	// Sanity check from the paper: with k = 1 every model collapses to the
	// traditional N x N multicast network with capacity N^N / (N+1)^N.
	for n := int64(1); n <= 8; n++ {
		wantFull := FullElectronic(n, 1)
		wantAny := AnyElectronic(n, 1)
		for _, m := range wdm.Models {
			if got := Full(m, n, 1); got.Cmp(wantFull) != 0 {
				t.Errorf("Full(%v, N=%d, k=1) = %s, want %s", m, n, got, wantFull)
			}
			if got := Any(m, n, 1); got.Cmp(wantAny) != 0 {
				t.Errorf("Any(%v, N=%d, k=1) = %s, want %s", m, n, got, wantAny)
			}
		}
	}
}

func TestModelOrdering(t *testing.T) {
	// Capacity increases in the order MSW <= MSDW <= MAW (strictly for
	// k > 1), and even MAW is below the electronic Nk x Nk capacity.
	for n := int64(2); n <= 5; n++ {
		for k := int64(1); k <= 3; k++ {
			msw, msdw, maw := FullMSW(n, k), FullMSDW(n, k), FullMAW(n, k)
			el := FullElectronic(n, k)
			if msw.Cmp(msdw) > 0 {
				t.Errorf("N=%d k=%d: FullMSW %s > FullMSDW %s", n, k, msw, msdw)
			}
			if msdw.Cmp(maw) > 0 {
				t.Errorf("N=%d k=%d: FullMSDW %s > FullMAW %s", n, k, msdw, maw)
			}
			if maw.Cmp(el) > 0 {
				t.Errorf("N=%d k=%d: FullMAW %s > electronic %s", n, k, maw, el)
			}
			if k > 1 {
				if msw.Cmp(msdw) >= 0 || msdw.Cmp(maw) >= 0 || maw.Cmp(el) >= 0 {
					t.Errorf("N=%d k=%d: ordering not strict: %s, %s, %s, %s", n, k, msw, msdw, maw, el)
				}
			}
			amsw, amsdw, amaw := AnyMSW(n, k), AnyMSDW(n, k), AnyMAW(n, k)
			if amsw.Cmp(amsdw) > 0 || amsdw.Cmp(amaw) > 0 || amaw.Cmp(AnyElectronic(n, k)) > 0 {
				t.Errorf("N=%d k=%d: any-assignment ordering broken", n, k)
			}
		}
	}
}

func TestAnyAtLeastFull(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int64(nRaw%5) + 1
		k := int64(kRaw%3) + 1
		for _, m := range wdm.Models {
			if Any(m, n, k).Cmp(Full(m, n, k)) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCapacityMonotoneInN(t *testing.T) {
	for _, m := range wdm.Models {
		for k := int64(1); k <= 3; k++ {
			prevFull, prevAny := bi(0), bi(0)
			for n := int64(1); n <= 5; n++ {
				f, a := Full(m, n, k), Any(m, n, k)
				if f.Cmp(prevFull) <= 0 && n > 1 {
					t.Errorf("%v k=%d: Full not increasing at N=%d", m, k, n)
				}
				if a.Cmp(prevAny) <= 0 && n > 1 {
					t.Errorf("%v k=%d: Any not increasing at N=%d", m, k, n)
				}
				prevFull, prevAny = f, a
			}
		}
	}
}

func TestInvalidDimsPanic(t *testing.T) {
	for _, fn := range []func(int64, int64) *big.Int{FullMSW, AnyMSW, FullMSDW, AnyMSDW, FullMAW, AnyMAW, FullElectronic, AnyElectronic} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("capacity formula accepted N=0")
				}
			}()
			fn(0, 1)
		}()
	}
}

func TestMSDWPaperIdentityK1(t *testing.T) {
	// The paper verifies Lemma 3 at k=1 via
	//   sum_j P(N, j) S(N, j) = N^N  and the any-variant = (N+1)^N.
	for n := int64(1); n <= 10; n++ {
		if got, want := FullMSDW(n, 1), FullMSW(n, 1); got.Cmp(want) != 0 {
			t.Errorf("FullMSDW(%d, 1) = %s, want %s", n, got, want)
		}
		if got, want := AnyMSDW(n, 1), AnyMSW(n, 1); got.Cmp(want) != 0 {
			t.Errorf("AnyMSDW(%d, 1) = %s, want %s", n, got, want)
		}
	}
}

func TestMSWHistogramMatchesEnumeration(t *testing.T) {
	for _, d := range []wdm.Dim{{N: 2, K: 1}, {N: 3, K: 1}, {N: 2, K: 2}, {N: 3, K: 2}, {N: 2, K: 3}} {
		closed := MSWHistogram(int64(d.N), int64(d.K))
		enum := HistogramByConnections(wdm.MSW, d, false)
		for c, want := range closed {
			got := enum[c]
			if got == nil {
				got = bi(0)
			}
			if got.Cmp(want) != 0 {
				t.Errorf("N=%d k=%d c=%d: closed form %s, enumeration %s", d.N, d.K, c, want, got)
			}
		}
	}
}

func TestMSWHistogramSumsToLemma1(t *testing.T) {
	for n := int64(1); n <= 6; n++ {
		for k := int64(1); k <= 3; k++ {
			sum := big.NewInt(0)
			for _, v := range MSWHistogram(n, k) {
				sum.Add(sum, v)
			}
			if want := AnyMSW(n, k); sum.Cmp(want) != 0 {
				t.Errorf("N=%d k=%d: histogram sums to %s, Lemma 1 says %s", n, k, sum, want)
			}
		}
	}
}

func TestElectronicDominatesWDM(t *testing.T) {
	// Section 2.2: for k > 1 the WDM network is strictly weaker than the
	// Nk x Nk electronic network under every model.
	n, k := int64(4), int64(3)
	el := FullElectronic(n, k)
	for _, m := range wdm.Models {
		if Full(m, n, k).Cmp(el) >= 0 {
			t.Errorf("model %v capacity not below electronic", m)
		}
	}
}
