package capacity

import (
	"testing"

	"repro/internal/wdm"
)

// TestEnumerationMatchesLemmas is the central verification experiment for
// Section 2.2: for every model and every small network size, the
// brute-force count of admissible assignments must equal the closed-form
// capacity of Lemmas 1-3.
func TestEnumerationMatchesLemmas(t *testing.T) {
	dims := []wdm.Dim{
		{N: 1, K: 1},
		{N: 1, K: 2},
		{N: 1, K: 3},
		{N: 2, K: 1},
		{N: 2, K: 2},
		{N: 3, K: 1},
		{N: 2, K: 3},
		{N: 3, K: 2},
	}
	for _, d := range dims {
		for _, m := range wdm.Models {
			gotFull := CountByEnumeration(m, d, true)
			wantFull := Full(m, int64(d.N), int64(d.K))
			if gotFull.Cmp(wantFull) != 0 {
				t.Errorf("%v N=%d k=%d: enumerated full = %s, lemma = %s", m, d.N, d.K, gotFull, wantFull)
			}
			gotAny := CountByEnumeration(m, d, false)
			wantAny := Any(m, int64(d.N), int64(d.K))
			if gotAny.Cmp(wantAny) != 0 {
				t.Errorf("%v N=%d k=%d: enumerated any = %s, lemma = %s", m, d.N, d.K, gotAny, wantAny)
			}
		}
	}
}

// TestEnumeratedAssignmentsAreAdmissible routes every enumerated
// assignment through the model validator: the enumeration must produce
// only admissible assignments (and for full mode, only full ones).
func TestEnumeratedAssignmentsAreAdmissible(t *testing.T) {
	d := wdm.Dim{N: 2, K: 2}
	for _, m := range wdm.Models {
		EnumerateAssignments(m, d, false, func(a wdm.Assignment) bool {
			if err := d.CheckAssignment(m, a); err != nil {
				t.Fatalf("%v: enumerated inadmissible assignment %v: %v", m, a, err)
			}
			return true
		})
		EnumerateAssignments(m, d, true, func(a wdm.Assignment) bool {
			if err := d.CheckAssignment(m, a); err != nil {
				t.Fatalf("%v full: inadmissible %v: %v", m, a, err)
			}
			if !a.IsFull(d.N, d.K) {
				t.Fatalf("%v: full enumeration produced partial assignment %v", m, a)
			}
			return true
		})
	}
}

// TestEnumerationDistinct checks the function<->assignment bijection: no
// assignment may be produced twice.
func TestEnumerationDistinct(t *testing.T) {
	d := wdm.Dim{N: 2, K: 2}
	for _, m := range wdm.Models {
		seen := make(map[string]bool)
		EnumerateAssignments(m, d, false, func(a wdm.Assignment) bool {
			key := ""
			for _, c := range a {
				key += c.String() + ";"
			}
			if seen[key] {
				t.Fatalf("%v: assignment %q produced twice", m, key)
			}
			seen[key] = true
			return true
		})
	}
}

// TestEnumerationAgreesWithOracle rebuilds each enumerated assignment's
// pairing function and checks it against pairingAdmissible — an
// independent statement of the model constraints, kept as an oracle for
// the backtracking enumerator.
func TestEnumerationAgreesWithOracle(t *testing.T) {
	d := wdm.Dim{N: 2, K: 2}
	for _, m := range wdm.Models {
		EnumerateAssignments(m, d, false, func(a wdm.Assignment) bool {
			f := make([]int, d.Slots())
			for i := range f {
				f[i] = idle
			}
			for _, c := range a {
				for _, dst := range c.Dests {
					f[dst.Index(d.K)] = c.Source.Index(d.K)
				}
			}
			if !pairingAdmissible(m, d, f) {
				t.Fatalf("%v: enumerator produced pairing %v the oracle rejects", m, f)
			}
			return true
		})
	}
}

// TestEnumerationEarlyStop verifies visit's false return stops iteration.
func TestEnumerationEarlyStop(t *testing.T) {
	d := wdm.Dim{N: 2, K: 2}
	n := 0
	EnumerateAssignments(wdm.MSW, d, false, func(wdm.Assignment) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop visited %d assignments, want 10", n)
	}
}

// TestEnumerationIncludesEmpty verifies the empty assignment (all slots
// idle) counts as an any-multicast-assignment.
func TestEnumerationIncludesEmpty(t *testing.T) {
	d := wdm.Dim{N: 2, K: 1}
	sawEmpty := false
	EnumerateAssignments(wdm.MAW, d, false, func(a wdm.Assignment) bool {
		if len(a) == 0 {
			sawEmpty = true
		}
		return true
	})
	if !sawEmpty {
		t.Error("empty assignment never enumerated")
	}
}

// TestAssignmentFromPairing spot-checks the conversion on a hand-built
// pairing function.
func TestAssignmentFromPairing(t *testing.T) {
	d := wdm.Dim{N: 2, K: 2}
	// Output slots: 0=(p0,w0) 1=(p0,w1) 2=(p1,w0) 3=(p1,w1).
	// f: (p0,w0) and (p1,w0) from input slot 0 = (p0,w0); (p1,w1) from
	// input slot 3 = (p1,w1); (p0,w1) idle.
	f := []int{0, idle, 0, 3}
	a := AssignmentFromPairing(d, f)
	if len(a) != 2 {
		t.Fatalf("got %d connections, want 2", len(a))
	}
	c0 := a[0]
	if c0.Source != (wdm.PortWave{Port: 0, Wave: 0}) || c0.Fanout() != 2 {
		t.Errorf("first connection wrong: %v", c0)
	}
	c1 := a[1]
	if c1.Source != (wdm.PortWave{Port: 1, Wave: 1}) || c1.Fanout() != 1 {
		t.Errorf("second connection wrong: %v", c1)
	}
	if err := d.CheckAssignment(wdm.MSW, a); err != nil {
		t.Errorf("hand-built assignment inadmissible: %v", err)
	}
}
