package capacity_test

import (
	"fmt"

	"repro/internal/capacity"
	"repro/internal/wdm"
)

// The multicast capacity of the paper's example-sized network (Figs. 6-7
// use N=3, k=2) under each model, as counted by Lemmas 1-3.
func ExampleFull() {
	for _, m := range wdm.Models {
		fmt.Printf("%-4v %v\n", m, capacity.Full(m, 3, 2))
	}
	// Output:
	// MSW  729
	// MSDW 9750
	// MAW  27000
}

// Brute-force enumeration recounts the closed forms exactly.
func ExampleCountByEnumeration() {
	d := wdm.Dim{N: 2, K: 2}
	enum := capacity.CountByEnumeration(wdm.MAW, d, false)
	lemma := capacity.Any(wdm.MAW, 2, 2)
	fmt.Println(enum, lemma, enum.Cmp(lemma) == 0)
	// Output: 441 441 true
}

// EnumerateAssignments visits every admissible assignment; here we count
// how many MSW assignments of a 2x2 single-wavelength switch use every
// output (the full ones): each of the 2 outputs picks one of 2 inputs.
func ExampleEnumerateAssignments() {
	n := 0
	capacity.EnumerateAssignments(wdm.MSW, wdm.Dim{N: 2, K: 1}, true, func(a wdm.Assignment) bool {
		n++
		return true
	})
	fmt.Println(n)
	// Output: 4
}
