package capacity

import (
	"math/big"
	"sort"

	"repro/internal/wdm"
)

// Every multicast assignment corresponds to exactly one "pairing
// function" f mapping each output wavelength slot either to the input
// wavelength slot it receives from or to "idle":
//
//   - grouping the output slots by source yields the connection set;
//   - conversely each connection contributes its (source -> destination)
//     pairs.
//
// The model-specific admissibility rules become constraints on f:
//
//   - MSW:  f(p, w) is idle or an input slot with the same wavelength w.
//   - MAW:  within one output port, the non-idle values of f are distinct
//     (otherwise one connection would use two wavelengths at one port).
//   - MSDW: all output slots mapped to one source share a wavelength
//     (a connection's destinations all use the same wavelength). The
//     per-port distinctness of MAW follows automatically: two slots at one
//     port have different wavelengths, so they cannot share a source.
//
// Enumerating admissible functions therefore enumerates assignments
// bijectively; this is the basis of the brute-force capacity counts.

// idle marks an unused output slot in a pairing function.
const idle = -1

// pairingAdmissible reports whether the pairing function f (indexed by
// output-slot index, values are input-slot indices or idle) is admissible
// under the model for an N x K network.
func pairingAdmissible(model wdm.Model, dim wdm.Dim, f []int) bool {
	switch model {
	case wdm.MSW:
		for out, in := range f {
			if in == idle {
				continue
			}
			if out%dim.K != in%dim.K {
				return false
			}
		}
		return true
	case wdm.MAW:
		for p := 0; p < dim.N; p++ {
			for a := 0; a < dim.K; a++ {
				va := f[p*dim.K+a]
				if va == idle {
					continue
				}
				for b := a + 1; b < dim.K; b++ {
					if f[p*dim.K+b] == va {
						return false
					}
				}
			}
		}
		return true
	case wdm.MSDW:
		// waveOf[s] = destination wavelength already seen for source s.
		waveOf := make(map[int]int)
		for out, in := range f {
			if in == idle {
				continue
			}
			w := out % dim.K
			if prev, ok := waveOf[in]; ok {
				if prev != w {
					return false
				}
			} else {
				waveOf[in] = w
			}
		}
		return true
	default:
		return false
	}
}

// AssignmentFromPairing converts an admissible pairing function into the
// equivalent wdm.Assignment (connections sorted by source slot index for
// determinism).
func AssignmentFromPairing(dim wdm.Dim, f []int) wdm.Assignment {
	bySource := make(map[int][]wdm.PortWave)
	for out, in := range f {
		if in == idle {
			continue
		}
		bySource[in] = append(bySource[in], wdm.SlotFromIndex(out, dim.K))
	}
	sources := make([]int, 0, len(bySource))
	for s := range bySource {
		sources = append(sources, s)
	}
	sort.Ints(sources)
	a := make(wdm.Assignment, 0, len(sources))
	for _, s := range sources {
		a = append(a, wdm.Connection{
			Source: wdm.SlotFromIndex(s, dim.K),
			Dests:  bySource[s],
		}.Normalize())
	}
	return a
}

// EnumerateAssignments calls visit for every admissible assignment of the
// network under the model: every any-multicast-assignment when full is
// false, every full-multicast-assignment when full is true. The empty
// assignment is included in the any case. Iteration stops early if visit
// returns false. The assignment passed to visit is freshly allocated.
//
// The enumeration backtracks over pairing functions slot by slot,
// extending only admissible prefixes, so its cost is proportional to the
// number of admissible assignments (the capacity itself) rather than to
// the (Nk+1)^(Nk) raw function space. Still, capacities explode quickly;
// this is for small networks, where it verifies the closed-form lemmas
// and the switch constructions exactly.
func EnumerateAssignments(model wdm.Model, dim wdm.Dim, full bool, visit func(wdm.Assignment) bool) {
	newEnumerator(model, dim, full).run(0, visit)
}

// enumerator holds the incremental state of the backtracking search. The
// parallel counter seeds one enumerator per first-slot choice (the
// subtrees are disjoint), which is why the state lives in a struct
// rather than closure variables.
type enumerator struct {
	model wdm.Model
	dim   wdm.Dim
	full  bool
	f     []int // pairing function under construction; idle = -1
	// waveOf[s] = destination wavelength plane already used by source s
	// (MSDW constraint); refCount[s] = how many output slots use s.
	waveOf   []int
	refCount []int
}

func newEnumerator(model wdm.Model, dim wdm.Dim, full bool) *enumerator {
	slots := dim.Slots()
	e := &enumerator{
		model: model, dim: dim, full: full,
		f:        make([]int, slots),
		waveOf:   make([]int, slots),
		refCount: make([]int, slots),
	}
	for i := range e.waveOf {
		e.waveOf[i] = -1
		e.f[i] = idle
	}
	return e
}

// admissibleValue reports whether assigning input slot `in` (or idle) to
// output slot index `out` keeps the prefix admissible.
func (e *enumerator) admissibleValue(out, in int) bool {
	if in == idle {
		return true
	}
	switch e.model {
	case wdm.MSW:
		return out%e.dim.K == in%e.dim.K
	case wdm.MAW:
		// No other already-assigned slot of the same output port may use
		// this input (one connection may not take two wavelengths at one
		// port).
		port := out / e.dim.K
		for w := 0; w < e.dim.K; w++ {
			if o := port*e.dim.K + w; o < out && e.f[o] == in {
				return false
			}
		}
		return true
	case wdm.MSDW:
		return e.waveOf[in] == -1 || e.waveOf[in] == out%e.dim.K
	default:
		return false
	}
}

// place and unplace update the incremental constraint state for a
// (checked-admissible) slot assignment.
func (e *enumerator) place(out, in int) {
	e.f[out] = in
	if in != idle {
		e.refCount[in]++
		if e.model == wdm.MSDW {
			e.waveOf[in] = out % e.dim.K
		}
	}
}

func (e *enumerator) unplace(out, in int) {
	e.f[out] = idle
	if in != idle {
		e.refCount[in]--
		if e.model == wdm.MSDW && e.refCount[in] == 0 {
			e.waveOf[in] = -1
		}
	}
}

// run enumerates all admissible completions of the prefix [0, startSlot)
// already placed in e. It returns false if visit stopped the search.
func (e *enumerator) run(startSlot int, visit func(wdm.Assignment) bool) bool {
	slots := e.dim.Slots()
	var rec func(out int) bool
	rec = func(out int) bool {
		if out == slots {
			return visit(AssignmentFromPairing(e.dim, e.f))
		}
		lo := idle
		if e.full {
			lo = 0
		}
		for in := lo; in < slots; in++ {
			if !e.admissibleValue(out, in) {
				continue
			}
			e.place(out, in)
			ok := rec(out + 1)
			e.unplace(out, in)
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(startSlot)
}

// CountByEnumeration counts admissible assignments by direct enumeration.
// It is the independent check for Full and Any.
func CountByEnumeration(model wdm.Model, dim wdm.Dim, full bool) *big.Int {
	count := big.NewInt(0)
	one := big.NewInt(1)
	EnumerateAssignments(model, dim, full, func(wdm.Assignment) bool {
		count.Add(count, one)
		return true
	})
	return count
}
