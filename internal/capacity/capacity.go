// Package capacity implements the multicast-capacity formulas of the
// paper's Section 2.2 (Lemmas 1, 2 and 3) together with independent
// brute-force enumeration counters used to verify the closed forms on
// small networks.
//
// The multicast capacity of an N x N k-wavelength WDM network under a
// multicast model is the number of distinct multicast assignments the
// network can realize. A full-multicast-assignment uses every output
// wavelength slot; an any-multicast-assignment may leave slots idle.
package capacity

import (
	"fmt"
	"math/big"

	"repro/internal/combin"
	"repro/internal/wdm"
)

// Full returns the number of full-multicast-assignments of an N x N
// k-wavelength network under the given model (Lemmas 1-3).
func Full(model wdm.Model, n, k int64) *big.Int {
	switch model {
	case wdm.MSW:
		return FullMSW(n, k)
	case wdm.MSDW:
		return FullMSDW(n, k)
	case wdm.MAW:
		return FullMAW(n, k)
	default:
		panic(fmt.Sprintf("capacity: unknown model %v", model))
	}
}

// Any returns the number of any-multicast-assignments of an N x N
// k-wavelength network under the given model (Lemmas 1-3).
func Any(model wdm.Model, n, k int64) *big.Int {
	switch model {
	case wdm.MSW:
		return AnyMSW(n, k)
	case wdm.MSDW:
		return AnyMSDW(n, k)
	case wdm.MAW:
		return AnyMAW(n, k)
	default:
		panic(fmt.Sprintf("capacity: unknown model %v", model))
	}
}

// FullMSW returns N^(Nk), the number of full-multicast-assignments under
// the MSW model (Lemma 1): each of the Nk output wavelength slots pairs
// with the same wavelength at any of the N input ports, independently.
func FullMSW(n, k int64) *big.Int {
	checkDims(n, k)
	return combin.PowInt64(n, n*k)
}

// AnyMSW returns (N+1)^(Nk), the number of any-multicast-assignments under
// the MSW model (Lemma 1): each output slot additionally may stay idle.
func AnyMSW(n, k int64) *big.Int {
	checkDims(n, k)
	return combin.PowInt64(n+1, n*k)
}

// FullMAW returns [P(Nk, k)]^N, the number of full-multicast-assignments
// under the MAW model (Lemma 2): the k slots of one output port pair
// injectively with any of the Nk input slots; ports are independent.
func FullMAW(n, k int64) *big.Int {
	checkDims(n, k)
	return combin.Pow(combin.Falling(n*k, k), n)
}

// AnyMAW returns [ sum_{j=0}^{k} P(Nk, k-j) C(k, j) ]^N, the number of
// any-multicast-assignments under the MAW model (Lemma 2): j of a port's
// k slots stay idle, the rest pair injectively with input slots.
func AnyMAW(n, k int64) *big.Int {
	checkDims(n, k)
	perPort := big.NewInt(0)
	for j := int64(0); j <= k; j++ {
		term := new(big.Int).Mul(combin.Falling(n*k, k-j), combin.Binomial(k, j))
		perPort.Add(perPort, term)
	}
	return combin.Pow(perPort, n)
}

// FullMSDW returns
//
//	sum_{1 <= j_1,...,j_k <= N} P(Nk, sum_i j_i) * prod_i S(N, j_i),
//
// the number of full-multicast-assignments under the MSDW model (Lemma 3):
// on wavelength plane i the N output copies of lambda_i are divided into
// j_i destination groups (S(N, j_i) ways); the sum over all planes of
// group counts picks that many distinct source slots (P(Nk, sum j_i)
// ways).
func FullMSDW(n, k int64) *big.Int {
	checkDims(n, k)
	// coeff[j] = S(N, j) for a single plane, j in [0, N] (0 impossible for
	// a full assignment since every slot must be used: S(N, 0) = 0 for
	// N > 0, so including j = 0 is harmless and keeps the convolution
	// uniform).
	coeff := make([]*big.Int, n+1)
	for j := int64(0); j <= n; j++ {
		coeff[j] = combin.Stirling2(n, j)
	}
	return msdwSum(coeff, n, k)
}

// AnyMSDW returns the any-multicast-assignment count under the MSDW model
// (Lemma 3). Per wavelength plane i, l_i of the N output copies stay idle
// (C(N, l_i) ways) and the remaining N - l_i copies are divided into j_i
// groups (S(N-l_i, j_i) ways); sources are again drawn injectively.
func AnyMSDW(n, k int64) *big.Int {
	checkDims(n, k)
	// coeff[j] = sum_{l=0}^{N} C(N, l) * S(N-l, j): the number of ways one
	// plane forms exactly j connection groups, allowing idle copies.
	// coeff[0] = 1 (the fully idle plane).
	coeff := make([]*big.Int, n+1)
	for j := int64(0); j <= n; j++ {
		c := big.NewInt(0)
		for l := int64(0); l+j <= n; l++ {
			term := new(big.Int).Mul(combin.Binomial(n, l), combin.Stirling2(n-l, j))
			c.Add(c, term)
		}
		coeff[j] = c
	}
	return msdwSum(coeff, n, k)
}

// msdwSum computes sum over (j_1..j_k) in [0,N]^k of
// P(Nk, sum j_i) * prod coeff[j_i] by k-fold polynomial convolution:
// conv[s] = sum over tuples with sum = s of the coefficient product, so
// the result is sum_s P(Nk, s) * conv[s].
func msdwSum(coeff []*big.Int, n, k int64) *big.Int {
	conv := []*big.Int{big.NewInt(1)} // empty product
	for plane := int64(0); plane < k; plane++ {
		next := make([]*big.Int, len(conv)+len(coeff)-1)
		for i := range next {
			next[i] = big.NewInt(0)
		}
		var t big.Int
		for s, c := range conv {
			if c.Sign() == 0 {
				continue
			}
			for j, cj := range coeff {
				if cj.Sign() == 0 {
					continue
				}
				next[s+j].Add(next[s+j], t.Mul(c, cj))
			}
		}
		conv = next
	}
	total := big.NewInt(0)
	var t big.Int
	for s, c := range conv {
		if c.Sign() == 0 {
			continue
		}
		total.Add(total, t.Mul(combin.Falling(n*k, int64(s)), c))
	}
	return total
}

// MSWHistogram refines Lemma 1: it returns, for each connection count c
// in [0, Nk], the number of MSW any-multicast-assignments carrying
// exactly c simultaneous connections. Per wavelength plane the count of
// assignments using exactly j distinct sources is
//
//	A(j) = C(N, j) * sum_{u=j}^{N} C(N, u) * j! * S(u, j)
//
// (choose the j sources, choose the u used output copies, and map them
// surjectively onto the sources); planes are independent under MSW, so
// the network-level distribution is the k-fold convolution of A. The sum
// over all c recovers (N+1)^(Nk) — Lemma 1 — and the enumeration tests
// confirm every individual entry.
func MSWHistogram(n, k int64) []*big.Int {
	checkDims(n, k)
	// Per-plane counts A[j], j in [0, N].
	a := make([]*big.Int, n+1)
	for j := int64(0); j <= n; j++ {
		inner := big.NewInt(0)
		for u := j; u <= n; u++ {
			term := new(big.Int).Mul(combin.Binomial(n, u), combin.Stirling2(u, j))
			inner.Add(inner, term)
		}
		inner.Mul(inner, combin.Factorial(j))
		a[j] = inner.Mul(inner, combin.Binomial(n, j))
	}
	// k-fold convolution.
	conv := []*big.Int{big.NewInt(1)}
	for plane := int64(0); plane < k; plane++ {
		next := make([]*big.Int, len(conv)+len(a)-1)
		for i := range next {
			next[i] = big.NewInt(0)
		}
		var t big.Int
		for s, c := range conv {
			if c.Sign() == 0 {
				continue
			}
			for j, aj := range a {
				if aj.Sign() == 0 {
					continue
				}
				next[s+j].Add(next[s+j], t.Mul(c, aj))
			}
		}
		conv = next
	}
	return conv
}

// FullElectronic returns (Nk)^(Nk): the full-multicast capacity of the
// Nk x Nk *electronic* multicast network the paper compares against. For
// k > 1 this strictly exceeds even the MAW capacity, demonstrating that an
// N x N k-wavelength WDM network is not equivalent to an Nk x Nk
// electronic network.
func FullElectronic(n, k int64) *big.Int {
	checkDims(n, k)
	return combin.PowInt64(n*k, n*k)
}

// AnyElectronic returns (Nk+1)^(Nk), the electronic counterpart's
// any-multicast capacity.
func AnyElectronic(n, k int64) *big.Int {
	checkDims(n, k)
	return combin.PowInt64(n*k+1, n*k)
}

func checkDims(n, k int64) {
	if n <= 0 || k <= 0 {
		panic(fmt.Sprintf("capacity: invalid dimensions N=%d k=%d", n, k))
	}
}
