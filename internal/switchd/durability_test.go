package switchd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/durable"
	"repro/internal/multistage"
	"repro/internal/switchd/api"
	"repro/internal/traffic"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// durableConfig is the standard durable test setup: immediate fsync
// (no group-commit window to wait out) and no background snapshotter,
// so every test controls its checkpoints explicitly.
func durableConfig(dir string, replicas int) Config {
	return Config{
		Fabric:           testParams(),
		Replicas:         replicas,
		DataDir:          dir,
		WALSyncDelay:     -1,
		SnapshotInterval: -1,
	}
}

// sessionsJSON renders the sorted session listing as canonical bytes
// for before/after-crash comparison. SessionInfo carries no volatile
// fields (connection ids are internal), so a recovered controller must
// reproduce it byte for byte.
func sessionsJSON(t *testing.T, ctl *Controller) []byte {
	t.Helper()
	b, err := json.Marshal(ctl.Sessions())
	if err != nil {
		t.Fatalf("marshaling sessions: %v", err)
	}
	return b
}

// TestDurableRecoverAfterCrash walks one of every mutation through the
// log — connect, branch, disconnect, middle failure with live
// migration — hard-stops without drain, and requires the recovered
// controller to be indistinguishable: same sessions under the same
// ids, same failed middles, same id high-water mark, and a log that
// verifies clean.
func TestDurableRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 2)
	ctl := newTestController(t, cfg)
	ctx := context.Background()

	id1 := mustConnect(t, ctl, "0.0>5.0,9.0", 0)
	if err := ctl.AddBranch(ctx, id1, wdm.PortWave{Port: 12, Wave: 0}); err != nil {
		t.Fatalf("AddBranch: %v", err)
	}
	id2 := mustConnect(t, ctl, "1.0>6.0", 1)
	id3 := mustConnect(t, ctl, "2.1>7.1", 0)
	if err := ctl.Disconnect(ctx, id2); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	// Fail a middle on plane 0: live sessions routed through it are
	// migrated in place, and the failure plus post-migration routes are
	// journaled in one record.
	if _, err := ctl.FailMiddle(ctx, 0, 0); err != nil {
		t.Fatalf("FailMiddle: %v", err)
	}

	before := sessionsJSON(t, ctl)
	beforeHealth := ctl.Health()
	ctl.Crash()

	ctl2 := newTestController(t, cfg)
	defer ctl2.Close()
	rec := ctl2.Recovery()
	if rec == nil || len(rec.Sessions) != 2 {
		t.Fatalf("Recovery = %+v, want 2 sessions", rec)
	}
	if rec.Sealed {
		t.Fatal("crash recovery reported a sealed log")
	}
	after := sessionsJSON(t, ctl2)
	if !bytes.Equal(before, after) {
		t.Fatalf("recovered sessions diverge:\n before %s\n after  %s", before, after)
	}
	if got := ctl2.ActiveSessions(); got != 2 {
		t.Fatalf("ActiveSessions after recovery = %d, want 2", got)
	}

	// Failed middles survive: plane 0 still reports middle 0 down.
	h := ctl2.Health()
	if h.FailedMiddles != beforeHealth.FailedMiddles || h.FailedMiddles != 1 {
		t.Fatalf("FailedMiddles after recovery = %d, want %d", h.FailedMiddles, beforeHealth.FailedMiddles)
	}
	if len(h.Fabrics) != 2 || len(h.Fabrics[0].FailedMiddles) != 1 || h.Fabrics[0].FailedMiddles[0] != 0 {
		t.Fatalf("plane 0 failed middles = %+v, want [0]", h.Fabrics)
	}
	if h.Durability == nil || !h.Durability.Enabled || !h.Durability.Healthy {
		t.Fatalf("durability health = %+v, want enabled and healthy", h.Durability)
	}
	if h.Durability.RecoveredSessions != 2 {
		t.Fatalf("durability reports %d recovered sessions, want 2", h.Durability.RecoveredSessions)
	}

	// The session-id counter resumes past the pre-crash high-water
	// mark: a disconnected id is never reissued.
	id4 := mustConnect(t, ctl2, "3.0>8.0", 1)
	if id4 <= id3 {
		t.Fatalf("post-recovery id %d not above pre-crash high-water %d", id4, id3)
	}
	// Recovered sessions stay fully operational: grow one.
	if err := ctl2.AddBranch(ctx, id1, wdm.PortWave{Port: 14, Wave: 0}); err != nil {
		t.Fatalf("AddBranch on recovered session: %v", err)
	}
	info, ok := ctl2.Session(id1)
	if !ok || info.Fanout != 4 || info.Branches != 2 {
		t.Fatalf("recovered session after branch = %+v, %v; want fanout 4", info, ok)
	}

	if err := ctl2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rep, err := durable.Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.Clean {
		t.Fatalf("log dirty after crash+recovery: %+v", rep.Truncated)
	}
}

// TestDurableDrainSealsLog checks the clean-shutdown path: Drain
// journals every disconnect, seals the log, and a reopen recovers an
// explicitly empty, sealed state that accepts fresh traffic.
func TestDurableDrainSealsLog(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 2)
	ctl := newTestController(t, cfg)

	mustConnect(t, ctl, "0.0>5.0,9.0", 0)
	mustConnect(t, ctl, "1.0>6.0", 1)
	sum := ctl.Drain(context.Background())
	if sum.Released != 2 || sum.Errors != 0 || sum.StorageError != "" {
		t.Fatalf("Drain = %+v, want 2 clean releases", sum)
	}

	rep, err := durable.Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.Clean || !rep.Sealed || rep.Sessions != 0 {
		t.Fatalf("after drain: clean=%v sealed=%v sessions=%d, want clean sealed empty",
			rep.Clean, rep.Sealed, rep.Sessions)
	}

	ctl2 := newTestController(t, cfg)
	defer ctl2.Close()
	rec := ctl2.Recovery()
	if rec == nil || !rec.Sealed || len(rec.Sessions) != 0 {
		t.Fatalf("Recovery after sealed drain = %+v, want sealed and empty", rec)
	}
	// A sealed log is a checkpoint, not a tombstone: new work unseals it.
	mustConnect(t, ctl2, "0.0>5.0", 0)
	if st := ctl2.WAL().Stats(); st.Sealed {
		t.Fatal("log still sealed after new connect")
	}
}

// TestStorageFailedPropagation poisons the write-ahead log under a
// running controller and checks the fail-stop contract: every mutation
// is refused with ErrStorageFailed (storage_failed over HTTP, 503),
// reads keep serving, acknowledged state is never silently dropped,
// and health flags the plane.
func TestStorageFailedPropagation(t *testing.T) {
	dir := t.TempDir()
	ctl := newTestController(t, durableConfig(dir, 2))
	ctx := context.Background()

	id1 := mustConnect(t, ctl, "0.0>5.0,9.0", 0)
	mustConnect(t, ctl, "1.0>6.0", 1)

	// Simulate the backing store dying mid-flight.
	ctl.WAL().Crash()

	// Connect: refused and rolled back — the route must not survive in
	// the fabric or the table.
	c := mustParse(t, "2.0>7.0")
	if _, _, err := ctl.Connect(ctx, c, 0); !errors.Is(err, ErrStorageFailed) {
		t.Fatalf("Connect on poisoned log: %v, want ErrStorageFailed", err)
	}
	if got := ctl.ActiveSessions(); got != 2 {
		t.Fatalf("ActiveSessions after refused connect = %d, want 2", got)
	}
	if err := ctl.AddBranch(ctx, id1, wdm.PortWave{Port: 12, Wave: 0}); !errors.Is(err, ErrStorageFailed) {
		t.Fatalf("AddBranch on poisoned log: %v, want ErrStorageFailed", err)
	}
	if _, err := ctl.FailMiddle(ctx, 0, 0); !errors.Is(err, ErrStorageFailed) {
		t.Fatalf("FailMiddle on poisoned log: %v, want ErrStorageFailed", err)
	}

	// Reads keep serving.
	if _, ok := ctl.Session(id1); !ok {
		t.Fatal("read path refused while storage is down")
	}

	// The /v1 envelope carries the stable code under a 503 status line.
	req := httptest.NewRequest("POST", "/v1/connect", strings.NewReader(`{"connection": "3.0>8.0"}`))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	ctl.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST /v1/connect = %d, want 503; body %s", w.Code, w.Body.String())
	}
	var env api.Envelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error == nil || env.Error.Code != api.CodeStorageFailed {
		t.Fatalf("error envelope = %s, want code %q", w.Body.String(), api.CodeStorageFailed)
	}

	// Health exposes the poisoned plane and degrades the instance.
	h := ctl.Health()
	if h.Durability == nil || h.Durability.Healthy || h.Durability.Error == "" {
		t.Fatalf("durability health = %+v, want unhealthy with error", h.Durability)
	}
	if h.Status == api.HealthOK {
		t.Fatalf("health status %q with poisoned log, want degraded", h.Status)
	}

	// Drain cannot journal its disconnects: the sessions stay in the
	// table (visible divergence beats silent loss) and the summary
	// carries the storage error.
	sum := ctl.Drain(ctx)
	if sum.StorageError == "" || sum.Errors == 0 {
		t.Fatalf("Drain on poisoned log = %+v, want storage error", sum)
	}
	if got := ctl.ActiveSessions(); got != 2 {
		t.Fatalf("sessions dropped without journaling: %d live, want 2", got)
	}
}

// TestCrashRecoveryUnderChurn is the kill-and-recover drill: workers
// churn connect/branch/disconnect traffic against every plane with
// group commit enabled, a snapshot lands mid-history (so recovery
// exercises snapshot-plus-tail replay, not just replay), and the
// process hard-stops with live sessions and no drain. The reopened
// controller must reproduce the exact session set and fabric
// utilization, then route to the nonblocking bound with zero blocked —
// recovery spends no routing capacity.
func TestCrashRecoveryUnderChurn(t *testing.T) {
	const (
		replicas   = 2
		perPlane   = 2
		iterations = 40
	)
	dir := t.TempDir()
	cfg := durableConfig(dir, replicas)
	cfg.WALSyncDelay = 0 // default group-commit window
	cfg.Shards = 8
	ctl := newTestController(t, cfg)
	p := ctl.Params()
	dim := wdm.Dim{N: p.N, K: p.K}
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, replicas*perPlane)
	for g := 0; g < replicas*perPlane; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = churnWorker(ctl, dim, g/perPlane, g%perPlane, perPlane, iterations, int64(g+1))
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", g, err)
		}
	}

	// Checkpoint mid-history, then keep mutating so the log tail is
	// non-empty: recovery must compose snapshot and tail.
	if err := ctl.WriteSnapshot(); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	live := ctl.Sessions()
	if len(live) == 0 {
		t.Fatal("churn left no live sessions to crash with")
	}
	if err := ctl.Disconnect(ctx, live[0].ID); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}

	before := sessionsJSON(t, ctl)
	beforeStatus := ctl.Status()
	ctl.Crash()

	ctl2 := newTestController(t, cfg)
	defer ctl2.Close()
	rec := ctl2.Recovery()
	if rec == nil {
		t.Fatal("no recovery report on reopen")
	}
	if rec.SnapshotSeq == 0 {
		t.Fatal("recovery ignored the snapshot (SnapshotSeq = 0)")
	}
	after := sessionsJSON(t, ctl2)
	if !bytes.Equal(before, after) {
		t.Fatalf("recovered session set diverges:\n before %s\n after  %s", before, after)
	}
	afterStatus := ctl2.Status()
	if afterStatus.Active != beforeStatus.Active {
		t.Fatalf("active after recovery = %d, want %d", afterStatus.Active, beforeStatus.Active)
	}
	for i := range beforeStatus.Fabrics {
		b, a := beforeStatus.Fabrics[i], afterStatus.Fabrics[i]
		if a.Active != b.Active || a.Utilization != b.Utilization {
			t.Fatalf("fabric %d state diverges: before %+v after %+v", i, b, a)
		}
	}

	// Fill every plane to the slot bound: with m at the Theorem 1
	// sufficient value, every admissible fanout-1 connect over the
	// remaining free slots must route. A single block here means
	// recovery burned middle-stage capacity it did not before the
	// crash.
	fillToBound(t, ctl2, replicas, dim)
	if b := ctl2.Metrics().Blocked(); b != 0 {
		t.Fatalf("blocked = %d at the sufficient bound after recovery, want 0", b)
	}

	if err := ctl2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rep, err := durable.Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.Clean {
		t.Fatalf("log dirty after churn crash: %+v", rep.Truncated)
	}
}

// churnWorker drives random admissible traffic on one plane within its
// private port slice (ports congruent to part mod perPlane) and — the
// point of the drill — returns with its remaining sessions still live.
func churnWorker(ctl *Controller, dim wdm.Dim, plane, part, perPlane, iterations int, seed int64) error {
	gen := workload.NewGenerator(seed, wdm.MSW, dim)
	rng := rand.New(rand.NewSource(seed + 500))
	var ports []int
	for p := part; p < dim.N; p += perPlane {
		ports = append(ports, p)
	}
	freeSrc := traffic.NewSlotPool(ports, dim.K)
	freeDst := traffic.NewSlotPool(ports, dim.K)

	type live struct {
		id   uint64
		conn wdm.Connection
	}
	var sessions []live
	release := func() error {
		s := sessions[0]
		sessions = sessions[1:]
		if err := ctl.Disconnect(context.Background(), s.id); err != nil {
			return err
		}
		freeSrc.Put(s.conn.Source)
		for _, d := range s.conn.Dests {
			freeDst.Put(d)
		}
		return nil
	}

	for i := 0; i < iterations; i++ {
		for len(sessions) >= 3 {
			if err := release(); err != nil {
				return err
			}
		}
		c, ok := gen.Connection(freeSrc.Slots(), freeDst.Slots(), gen.Fanout(len(ports)))
		if !ok {
			if len(sessions) == 0 {
				return fmt.Errorf("starved with no live sessions")
			}
			if err := release(); err != nil {
				return err
			}
			continue
		}
		id, _, err := ctl.Connect(context.Background(), c, plane)
		if err != nil {
			return fmt.Errorf("Connect(%v): %w", c, err)
		}
		freeSrc.Take(c.Source)
		for _, d := range c.Dests {
			freeDst.Take(d)
		}
		sessions = append(sessions, live{id: id, conn: c})

		if rng.Intn(4) == 0 && len(sessions) > 0 {
			s := &sessions[rng.Intn(len(sessions))]
			if d, ok := pickGrowSlot(freeDst, s.conn); ok {
				switch err := ctl.AddBranch(context.Background(), s.id, d); {
				case err == nil:
					freeDst.Take(d)
					s.conn.Dests = append(s.conn.Dests, d)
				case multistage.IsBlocked(err):
					return fmt.Errorf("AddBranch blocked at the sufficient bound: %w", err)
				default:
					return fmt.Errorf("AddBranch(%d, %v): %w", s.id, d, err)
				}
			}
		}
	}
	// Hard stop: live sessions stay behind for the crash.
	return nil
}

// fillToBound computes each plane's free slots from the live session
// listing and issues a same-wavelength fanout-1 connect for every
// pairable source/destination slot. Every request is admissible, so at
// the sufficient bound every one must route.
func fillToBound(t *testing.T, ctl *Controller, replicas int, dim wdm.Dim) {
	t.Helper()
	usedSrc := make([]map[wdm.PortWave]bool, replicas)
	usedDst := make([]map[wdm.PortWave]bool, replicas)
	for i := range usedSrc {
		usedSrc[i] = make(map[wdm.PortWave]bool)
		usedDst[i] = make(map[wdm.PortWave]bool)
	}
	for _, si := range ctl.Sessions() {
		c, err := wdm.ParseConnection(si.Conn)
		if err != nil {
			t.Fatalf("ParseConnection(%q): %v", si.Conn, err)
		}
		usedSrc[si.Fabric][c.Source] = true
		for _, d := range c.Dests {
			usedDst[si.Fabric][d] = true
		}
	}
	filled := 0
	for plane := 0; plane < replicas; plane++ {
		for w := 0; w < dim.K; w++ {
			var srcFree, dstFree []wdm.PortWave
			for p := 0; p < dim.N; p++ {
				s := wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
				if !usedSrc[plane][s] {
					srcFree = append(srcFree, s)
				}
				if !usedDst[plane][s] {
					dstFree = append(dstFree, s)
				}
			}
			for i := 0; i < min(len(srcFree), len(dstFree)); i++ {
				c := wdm.Connection{Source: srcFree[i], Dests: []wdm.PortWave{dstFree[i]}}
				if _, _, err := ctl.Connect(context.Background(), c, plane); err != nil {
					t.Fatalf("fill connect %v on plane %d: %v", c, plane, err)
				}
				filled++
			}
		}
	}
	if filled == 0 {
		t.Fatal("fill phase found no free slots; churn left the fabric saturated")
	}
}
