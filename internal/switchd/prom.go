package switchd

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/obs/tsdb"
	"repro/internal/switchd/api"
)

// Prometheus text exposition for GET /metrics, assembled from the same
// counters as the JSON /v1/metrics snapshot plus the per-stage link
// occupancy of every fabric plane. The headline series is
// wdm_blocked_total: at or above the sufficient bound it must stay 0 —
// the paper's theorem as a scrape-and-alert rule.

// WriteProm writes the controller's full metric exposition into w.
func (ctl *Controller) WriteProm(w *obs.PromWriter) {
	snap := ctl.metrics.Snapshot()
	st := ctl.Status()

	w.Gauge("wdm_fabric_info", "Fabric parameters as labels; value is the configured middle-stage size m.",
		float64(st.M),
		obs.Label{Name: "model", Value: st.Model},
		obs.Label{Name: "construction", Value: st.Construction},
		obs.Label{Name: "n", Value: strconv.Itoa(st.N)},
		obs.Label{Name: "k", Value: strconv.Itoa(st.K)},
		obs.Label{Name: "r", Value: strconv.Itoa(st.R)},
		obs.Label{Name: "x", Value: strconv.Itoa(st.X)},
	)
	w.Gauge("wdm_sufficient_m", "Theorem 1/2 sufficient middle-stage bound for the configured construction.", float64(st.SufficientM))

	vi := BuildInfo()
	w.Gauge("wdm_build_info", "Build metadata as labels; value is always 1.", 1,
		obs.Label{Name: "version", Value: vi.Version},
		obs.Label{Name: "go_version", Value: vi.GoVersion},
	)
	w.Gauge("wdm_uptime_seconds", "Seconds since the controller was built.", time.Since(ctl.startTime).Seconds())
	// The STATIC margin of the configuration: configured m minus the
	// sufficient bound. Deliberately not derated by failures — the
	// shipped blocked-in-nonblocking-regime alert guards on it, so the
	// alert keeps firing when failures push effective capacity below
	// the bound while the configuration promised nonblocking.
	w.Gauge("wdm_m_margin", "Configured middle-stage margin above the sufficient bound (m - sufficient_m; static, not derated by failures).",
		float64(st.M-st.SufficientM))

	w.Counter("wdm_connect_total", "Successfully routed Connect requests.", float64(snap.ConnectOK))
	w.Counter("wdm_branch_total", "Successfully routed AddBranch requests.", float64(snap.BranchOK))
	w.Counter("wdm_disconnect_total", "Successful Disconnect requests.", float64(snap.DisconnectOK))
	w.Counter("wdm_blocked_total", "Admissible requests the fabric could not route (zero forever at sufficient m).", float64(snap.Blocked))
	w.Counter("wdm_inadmissible_total", "Requests rejected before routing (busy slots, model violations).", float64(snap.Inadmissible))
	w.Counter("wdm_cap_rejects_total", "Connects rejected by the MaxSessions admission cap (HTTP 429).", float64(snap.CapRejects))
	w.Counter("wdm_drain_rejects_total", "Requests rejected while draining (HTTP 503).", float64(snap.DrainRejects))
	w.Counter("wdm_route_ops_total", "Admissible routing operations offered to a fabric (routed + blocked); the burn-rate alert's traffic denominator.",
		float64(snap.ConnectOK+snap.BranchOK+snap.Blocked))

	w.Gauge("wdm_active_sessions", "Live multicast sessions across all fabric planes.", float64(st.Active))
	w.Gauge("wdm_draining", "1 while the controller is draining.", b2f(st.Draining))

	// Failure plane: failed middles per plane, live migrations, drops,
	// degraded flag, and the derated admission cap (0 = unlimited).
	w.Counter("wdm_migrated_sessions_total", "Sessions live-migrated off failed middle modules (ids preserved).", float64(snap.MigratedSessions))
	w.Counter("wdm_dropped_sessions_total", "Sessions dropped by the failure plane for lack of spare middle capacity.", float64(snap.DroppedSessions))
	w.Gauge("wdm_degraded", "1 while any middle module is failed.", b2f(ctl.Degraded()))
	w.Gauge("wdm_effective_max_sessions", "Admission cap currently enforced (MaxSessions, derated in degraded mode; 0 = unlimited).", float64(ctl.EffectiveMaxSessions()))
	for i, f := range snap.PerFabric {
		lbl := obs.Label{Name: "fabric", Value: strconv.Itoa(i)}
		w.Gauge("wdm_failed_middles", "Failed middle modules per fabric plane.", float64(f.FailedMiddles), lbl)
	}

	for i, f := range snap.PerFabric {
		lbl := obs.Label{Name: "fabric", Value: strconv.Itoa(i)}
		w.Counter("wdm_fabric_routed_total", "Per-plane routed connections.", float64(f.Routed), lbl)
	}
	for i, f := range snap.PerFabric {
		lbl := obs.Label{Name: "fabric", Value: strconv.Itoa(i)}
		w.Counter("wdm_fabric_blocked_total", "Per-plane blocking events.", float64(f.Blocked), lbl)
	}
	for i, f := range snap.PerFabric {
		lbl := obs.Label{Name: "fabric", Value: strconv.Itoa(i)}
		w.Gauge("wdm_fabric_active", "Per-plane live connections.", float64(f.Active), lbl)
	}

	// Per-stage link-wavelength occupancy, from each plane's utilization
	// snapshot (stage "in" = input->middle links, "out" = middle->output).
	for _, fs := range st.Fabrics {
		u := fs.Utilization
		fab := strconv.Itoa(fs.Replica)
		for _, stage := range []struct {
			name        string
			busy, total int
		}{
			{"in", u.InBusy, u.InTotal},
			{"out", u.OutBusy, u.OutTotal},
		} {
			labels := []obs.Label{{Name: "fabric", Value: fab}, {Name: "stage", Value: stage.name}}
			w.Gauge("wdm_link_busy", "Busy link wavelengths per stage.", float64(stage.busy), labels...)
			w.Gauge("wdm_link_capacity", "Total link wavelengths per stage.", float64(stage.total), labels...)
			if stage.total > 0 {
				w.Gauge("wdm_link_busy_ratio", "Busy fraction of link wavelengths per stage.",
					float64(stage.busy)/float64(stage.total), labels...)
			}
		}
	}

	// Operation latency histograms: bucket bounds are the microsecond
	// bounds of the JSON snapshot, exposed in seconds per convention.
	// In OpenMetrics mode each bucket carries its most recent traced
	// observation as an exemplar, joining /metrics to /v1/debug/spans.
	bounds := make([]float64, len(snap.RouteBoundsUs))
	for i, us := range snap.RouteBoundsUs {
		bounds[i] = float64(us) / 1e6
	}
	hists := []*latencyHist{ctl.metrics.connectLat, ctl.metrics.branchLat, ctl.metrics.disconnectLat}
	for oi, op := range snap.Ops {
		counts := make([]int64, len(op.Buckets))
		for i, b := range op.Buckets {
			counts[i] = b.Count
		}
		w.HistogramE("wdm_op_latency_seconds", "Fabric operation latency (time inside the fabric lock).",
			bounds, counts, float64(op.SumNs)/1e9, hists[oi].exemplarSnapshot(), obs.Label{Name: "op", Value: op.Op})
	}

	// Phase attribution: where each request's wall time actually went.
	// The series share the operation-latency bounds so the panels line
	// up; summing wdm_phase_seconds over phase approximates end-to-end
	// request time, and the lock_wait series is the direct measure of
	// the per-fabric mutex convoy that caps multi-core throughput.
	for p := phase(0); p < numPhases; p++ {
		h := ctl.metrics.phase[p]
		ph := h.snapshot(phaseNames[p])
		counts := make([]int64, len(ph.Buckets))
		for i, b := range ph.Buckets {
			counts[i] = b.Count
		}
		w.HistogramE("wdm_phase_seconds", "Per-request phase attribution of serving time.",
			bounds, counts, float64(ph.SumNs)/1e9, h.exemplarSnapshot(), obs.Label{Name: "phase", Value: phaseNames[p]})
	}

	// Runtime telemetry essentials (GC pause, scheduler latency, heap,
	// goroutines) from runtime/metrics.
	prof.WriteRuntimeProm(w)

	_, totalIncidents := ctl.blockLog.snapshot()
	w.Counter("wdm_block_incidents_total", "Blocking incidents recorded by the forensics ring buffer.", float64(totalIncidents))

	if ctl.tracer != nil {
		kept, dropped := ctl.tracer.Stats()
		w.Counter("wdm_traces_kept_total", "Completed traces kept by tail sampling.", float64(kept))
		w.Counter("wdm_traces_dropped_total", "Routine traces sampled out.", float64(dropped))
	}

	// SLO gauges: availability is 1 - P_block over each sliding window —
	// at or above the sufficient bound it reads exactly 1 with zero burn.
	ss := ctl.sloEng.Snapshot()
	w.Gauge("wdm_slo_objective", "Availability objective.", ss.Objective)
	w.Gauge("wdm_slo_latency_objective", "Latency-SLI objective (fraction under threshold).", ss.LatencyObjective)
	w.Gauge("wdm_slo_latency_threshold_us", "Latency-SLI threshold in microseconds.", ss.LatencyThresholdUs)
	w.Gauge("wdm_slo_healthy", "1 while no burn-rate alert fires.", b2f(ss.Healthy))
	for _, win := range ss.Windows {
		w.Gauge("wdm_slo_availability", "Availability SLI (1 - P_block) per window.",
			win.Availability, obs.Label{Name: "window", Value: win.Window})
	}
	for _, win := range ss.Windows {
		w.Gauge("wdm_slo_availability_burn", "Availability burn rate per window.",
			win.AvailabilityBurn, obs.Label{Name: "window", Value: win.Window})
	}
	for _, win := range ss.Windows {
		w.Gauge("wdm_slo_latency_ok", "Latency SLI (fraction under threshold) per window.",
			win.LatencyOK, obs.Label{Name: "window", Value: win.Window})
	}
	for _, win := range ss.Windows {
		w.Gauge("wdm_slo_latency_burn", "Latency burn rate per window.",
			win.LatencyBurn, obs.Label{Name: "window", Value: win.Window})
	}
	for _, a := range ss.Alerts {
		w.Gauge("wdm_slo_alert_firing", "1 while the multiwindow burn alert fires on either SLI.",
			b2f(a.AvailabilityFiring || a.LatencyFiring), obs.Label{Name: "alert", Value: a.Name})
	}

	// Metrics history plane (present only with a history interval).
	// The store's own health is scraped into itself, so history gaps
	// are diagnosable from the history.
	if ctl.store != nil {
		ts := ctl.store.Stats()
		w.Gauge("wdm_tsdb_series", "Distinct series retained by the embedded metrics history.", float64(ts.Series))
		w.Counter("wdm_tsdb_samples_total", "Samples appended to the embedded metrics history.", float64(ts.SamplesTotal))
		w.Counter("wdm_tsdb_scrapes_total", "Self-scrapes of the in-process registry.", float64(ts.Scrapes))
		w.Counter("wdm_tsdb_dropped_series_total", "Series dropped by the MaxSeries cap.", float64(ts.DroppedSeries))
		w.Gauge("wdm_tsdb_scrape_duration_seconds", "Duration of the most recent self-scrape.", ts.LastScrape.Seconds())
		w.Gauge("wdm_tsdb_bytes", "Approximate bytes retained across every tier of every series.", float64(ts.Bytes))
	}
	if ctl.alertEng != nil {
		for _, a := range ctl.alertEng.Snapshot() {
			w.Gauge("wdm_alert_firing", "1 while the alerting rule fires.",
				b2f(a.State == tsdb.StateFiring), obs.Label{Name: "rule", Value: a.Rule.Name})
		}
	}
	if lg, ok := ctl.loadgenRates(); ok {
		w.Gauge("wdm_loadgen_offered_rps", "Load generator offered request rate (fresh self-report only).", lg.OfferedRPS)
		w.Gauge("wdm_loadgen_achieved_rps", "Load generator achieved (routed) request rate (fresh self-report only).", lg.AchievedRPS)
		w.Gauge("wdm_loadgen_offered_erlangs", "Load generator configured offered load in Erlangs (0 in max-rate mode; fresh self-report only).", lg.OfferedErlangs)
		w.Gauge("wdm_loadgen_block_rate", "Load generator cumulative measured blocking probability (fresh self-report only).", lg.BlockRate)
	}

	// Federation plane (present only with configured peers): per-peer
	// reachability as seen by the background prober.
	for _, p := range ctl.federationHealth() {
		w.Gauge("wdm_federation_peer_up", "1 while the federation peer answers health probes.",
			b2f(p.Up), obs.Label{Name: "shard", Value: p.Shard})
	}

	// Durable state plane (present only with a data directory).
	if ctl.wal != nil {
		ws := ctl.wal.Stats()
		w.Counter("wdm_wal_appends_total", "Records appended to the write-ahead log.", float64(ws.Appends))
		w.Counter("wdm_wal_fsyncs_total", "Group-commit fsync batches.", float64(ws.Syncs))
		w.Gauge("wdm_wal_last_seq", "Newest assigned WAL record sequence.", float64(ws.LastSeq))
		w.Gauge("wdm_wal_synced_seq", "Newest WAL record made durable by group commit.", float64(ws.SyncedSeq))
		w.Gauge("wdm_wal_unsynced_bytes", "Appended bytes not yet covered by an fsync (WAL lag).", float64(ws.UnsyncedBytes))
		w.Gauge("wdm_wal_segments", "Live WAL segment files.", float64(ws.Segments))
		w.Gauge("wdm_wal_healthy", "1 while the WAL accepts appends; 0 once poisoned (fail-stop).", b2f(ctl.wal.Err() == nil))
		if ws.LastSnapshotUnixNs > 0 {
			w.Gauge("wdm_snapshot_age_seconds", "Seconds since the last durable checkpoint.",
				time.Since(time.Unix(0, ws.LastSnapshotUnixNs)).Seconds())
			w.Gauge("wdm_snapshot_last_seq", "WAL sequence covered by the last checkpoint.", float64(ws.LastSnapshotSeq))
		}
		w.Counter("wdm_recovered_sessions_total", "Sessions reinstalled from the durable log at startup.", float64(ctl.metrics.recovered.Load()))
		fh := ctl.metrics.walFsync.snapshot("wal_fsync")
		counts := make([]int64, len(fh.Buckets))
		for i, b := range fh.Buckets {
			counts[i] = b.Count
		}
		w.HistogramE("wdm_wal_fsync_seconds", "Group-commit fsync latency.",
			bounds, counts, float64(fh.SumNs)/1e9, ctl.metrics.walFsync.exemplarSnapshot())
	}

	// Replication plane (present only in cluster mode).
	if rh := ctl.replicationHealth(); rh != nil {
		WriteReplicationProm(w, rh)
	}
}

// WriteReplicationProm emits the wdm_replication_* series for one
// node's replication row. Shared by the primary's full exposition and
// the standby's minimal /metrics (which has no Controller yet).
func WriteReplicationProm(w *obs.PromWriter, rh *api.ReplicationHealth) {
	role := obs.Label{Name: "role", Value: rh.Role}
	seq := rh.SyncedSeq
	if rh.Role != "primary" {
		seq = rh.AppliedSeq
	}
	w.Gauge("wdm_replication_seq", "Durable log sequence per role: a primary's synced sequence, a standby's applied sequence.", float64(seq), role)
	w.Gauge("wdm_replication_lag_seconds", "Replication staleness: ack age on the primary, heartbeat age on the standby (0 when caught up).", rh.LagSeconds, role)
	w.Gauge("wdm_replication_lag_records", "Durable records the standby trails the primary by.", float64(rh.LagRecords), role)
	w.Gauge("wdm_replication_connected", "1 while the replication stream is attached.", b2f(rh.Connected), role)
	if rh.Role == "primary" {
		w.Gauge("wdm_replication_standbys", "Attached standby streams.", float64(rh.Standbys), role)
		w.Counter("wdm_replication_sync_timeouts_total", "Group commits that degraded to async after a standby ack timeout.", float64(rh.SyncTimeouts), role)
	} else {
		w.Counter("wdm_replication_reconnects_total", "Standby stream re-dials.", float64(rh.Reconnects), role)
		w.Counter("wdm_replication_snapshots_total", "Standby snapshot bootstraps (resume point pruned on the primary).", float64(rh.Snapshots), role)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handlePromMetrics serves GET /metrics. Clients that accept
// OpenMetrics (Accept: application/openmetrics-text, or ?exemplars=1)
// get the exemplar-carrying exposition; everyone else the classic
// 0.0.4 text format.
func (ctl *Controller) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	var pw obs.PromWriter
	openMetrics := strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") ||
		r.URL.Query().Get("exemplars") == "1"
	if openMetrics {
		pw.SetExemplars(true)
	}
	ctl.WriteProm(&pw)
	if openMetrics {
		w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
	} else {
		w.Header().Set("Content-Type", obs.ContentType)
	}
	_, _ = pw.WriteTo(w)
}

// blockingResponse is the GET /v1/debug/blocking payload.
type blockingResponse struct {
	// Total counts every blocking incident since start; Incidents holds
	// the most recent, oldest first, up to the ring capacity.
	Total     int64           `json:"total"`
	Incidents []BlockIncident `json:"incidents"`
}

func (ctl *Controller) handleDebugBlocking(w http.ResponseWriter, r *http.Request) {
	if ctl.blockLog == nil {
		writeErrorCode(w, http.StatusNotFound, api.CodeNotFound, "blocking forensics disabled (Config.BlockLog < 0)")
		return
	}
	incidents, total := ctl.blockLog.snapshot()
	writeJSON(w, http.StatusOK, blockingResponse{Total: total, Incidents: incidents})
}

// handleDebugTrace serves GET /v1/debug/trace?fabric=N as a replayable
// internal/trace text document (wdmtrace's input format).
func (ctl *Controller) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	fab := 0
	if q := r.URL.Query().Get("fabric"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeErrorCode(w, http.StatusBadRequest, api.CodeBadRequest, "want ?fabric=<replica>")
			return
		}
		fab = n
	}
	t, ok := ctl.Trace(fab)
	if !ok {
		writeErrorCode(w, http.StatusNotFound, api.CodeNotFound, "trace capture disabled (Config.CaptureTrace) or fabric out of range")
		return
	}
	p := ctl.params
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "# wdmserve live trace: fabric %d, backend=%s model=%s n=%d k=%d r=%d m=%d x=%d\n",
		fab, ctl.backendName, p.Model, p.N, p.K, p.R, p.M, p.X)
	fmt.Fprintf(w, "# replay: wdmtrace -replay <this file> -model %s -fabric %s -n %d -k %d -r %d -m %d -x %d\n",
		p.Model, ctl.backendName, p.N, p.K, p.R, p.M, p.X)
	_ = t.Write(w)
}
