package switchd

import (
	"expvar"
	"sync/atomic"
	"time"

	"repro/internal/multistage"
	"repro/internal/obs"
)

// routeBucketsMicros are the upper bounds (inclusive, microseconds) of
// the operation-latency histogram buckets; a final overflow bucket
// catches everything slower. All three operation histograms (connect,
// branch, disconnect) share these bounds so their series line up in
// dashboards.
var routeBucketsMicros = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// histExemplar references the most recent traced observation that
// landed in one latency bucket, for OpenMetrics exemplar exposition:
// the /metrics scrape links each bucket to a concrete trace id at
// /v1/debug/spans.
type histExemplar struct {
	traceID string
	seconds float64
	ts      float64 // unix seconds at observation
}

// latencyHist is one operation's latency histogram. All fields are
// lock-free atomics; a snapshot is monotone-consistent, not atomic.
type latencyHist struct {
	count     atomic.Int64
	sumNs     atomic.Int64
	buckets   []atomic.Int64 // len(routeBucketsMicros)+1, last = overflow
	exemplars []atomic.Pointer[histExemplar]
}

func newLatencyHist() *latencyHist {
	n := len(routeBucketsMicros) + 1
	return &latencyHist{
		buckets:   make([]atomic.Int64, n),
		exemplars: make([]atomic.Pointer[histExemplar], n),
	}
}

func (h *latencyHist) observe(d time.Duration) { h.observeEx(d, "") }

// observeEx records one observation and, when the request was traced,
// makes it the bucket's exemplar (last-writer-wins; exemplars are a
// sample, not a log).
func (h *latencyHist) observeEx(d time.Duration, traceID string) {
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	i := len(routeBucketsMicros)
	us := d.Microseconds()
	for j, ub := range routeBucketsMicros {
		if us <= ub {
			i = j
			break
		}
	}
	h.buckets[i].Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&histExemplar{
			traceID: traceID,
			seconds: d.Seconds(),
			ts:      float64(time.Now().UnixNano()) / 1e9,
		})
	}
}

// exemplarSnapshot assembles the per-bucket exemplars in the shape
// obs.PromWriter.HistogramE expects (zero value = no exemplar).
func (h *latencyHist) exemplarSnapshot() []obs.Exemplar {
	out := make([]obs.Exemplar, len(h.buckets))
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			out[i] = obs.Exemplar{
				Labels: []obs.Label{{Name: "trace_id", Value: e.traceID}},
				Value:  e.seconds,
				Ts:     e.ts,
			}
		}
	}
	return out
}

// fabricMetrics is one replica's counter set. failedMiddles is a gauge
// mirroring the plane's failed middle-module count; the failure plane
// updates it under failMu together with the fabric's own copy.
type fabricMetrics struct {
	routed        atomic.Int64
	blocked       atomic.Int64
	active        atomic.Int64
	failedMiddles atomic.Int64
}

// Metrics is the controller's counter registry. All counters are
// lock-free atomics; Snapshot assembles a consistent-enough view for
// serving (counters are independently monotone, so a snapshot is always
// a valid state some interleaving could have produced).
//
// The headline counter is Blocked: with every fabric provisioned at or
// above the Theorem 1/2 sufficient bound it must read zero forever —
// the paper's nonblocking claim as a monitorable invariant.
type Metrics struct {
	model        string
	construction string
	m            int

	connectOK    atomic.Int64
	branchOK     atomic.Int64
	disconnectOK atomic.Int64
	blocked      atomic.Int64
	inadmissible atomic.Int64
	capRejects   atomic.Int64
	drainRejects atomic.Int64

	// Failure-plane counters: sessions live-migrated off failed middle
	// modules, and sessions dropped because no spare could carry them.
	migrated atomic.Int64
	dropped  atomic.Int64

	perFabric []*fabricMetrics

	// Per-operation latency histograms: time spent inside the fabric
	// lock per Add (connect), AddBranch (branch), and Release
	// (disconnect).
	connectLat    *latencyHist
	branchLat     *latencyHist
	disconnectLat *latencyHist

	// Durable state plane: group-commit fsync latency and the session
	// count restored at the last startup (0 without a data directory).
	walFsync  *latencyHist
	recovered atomic.Int64

	// Per-phase latency histograms (wdm_phase_seconds{phase=...}),
	// indexed by the phase constants: where a request's time actually
	// went — admission, lock wait, route search, WAL append, replication
	// ack, respond.
	phase [numPhases]*latencyHist
}

func newMetrics(p multistage.Params, replicas int) *Metrics {
	m := &Metrics{
		model:         p.Model.String(),
		construction:  p.Construction.String(),
		m:             p.M,
		connectLat:    newLatencyHist(),
		branchLat:     newLatencyHist(),
		disconnectLat: newLatencyHist(),
		walFsync:      newLatencyHist(),
	}
	for i := range m.phase {
		m.phase[i] = newLatencyHist()
	}
	for i := 0; i < replicas; i++ {
		m.perFabric = append(m.perFabric, &fabricMetrics{})
	}
	return m
}

// Blocked returns the total blocking events observed (Connect and
// AddBranch combined, all fabrics).
func (m *Metrics) Blocked() int64 { return m.blocked.Load() }

// Routed returns the total successful Connect count.
func (m *Metrics) Routed() int64 { return m.connectOK.Load() }

// MigratedSessions returns the total sessions live-migrated off failed
// middle modules; DroppedSessions those the failure plane released for
// lack of spare capacity.
func (m *Metrics) MigratedSessions() int64 { return m.migrated.Load() }
func (m *Metrics) DroppedSessions() int64  { return m.dropped.Load() }

func (h *latencyHist) snapshot(op string) OpLatency {
	o := OpLatency{Op: op, Count: h.count.Load(), SumNs: h.sumNs.Load()}
	if o.Count > 0 {
		o.MeanNs = o.SumNs / o.Count
	}
	for i := range h.buckets {
		b := LatencyBucket{Count: h.buckets[i].Load()}
		if i < len(routeBucketsMicros) {
			b.LEMicros = routeBucketsMicros[i]
		}
		o.Buckets = append(o.Buckets, b)
	}
	o.P50Micros = HistQuantileMicros(o.Buckets, 0.50)
	o.P99Micros = HistQuantileMicros(o.Buckets, 0.99)
	return o
}

// Snapshot assembles the current counter values. (The Snapshot type
// itself lives in the api package — it is part of the /v1 wire
// contract.)
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Model:            m.model,
		Construction:     m.construction,
		M:                m.m,
		ConnectOK:        m.connectOK.Load(),
		BranchOK:         m.branchOK.Load(),
		DisconnectOK:     m.disconnectOK.Load(),
		Blocked:          m.blocked.Load(),
		Inadmissible:     m.inadmissible.Load(),
		CapRejects:       m.capRejects.Load(),
		DrainRejects:     m.drainRejects.Load(),
		MigratedSessions: m.migrated.Load(),
		DroppedSessions:  m.dropped.Load(),
		RouteBoundsUs:    routeBucketsMicros,
	}
	s.Ops = []OpLatency{
		m.connectLat.snapshot("connect"),
		m.branchLat.snapshot("branch"),
		m.disconnectLat.snapshot("disconnect"),
	}
	for p := phase(0); p < numPhases; p++ {
		if ph := m.phase[p].snapshot(phaseNames[p]); ph.Count > 0 {
			s.Phases = append(s.Phases, ph)
		}
	}
	connect, branch := s.Ops[0], s.Ops[1]
	s.RouteCount = connect.Count + branch.Count
	if s.RouteCount > 0 {
		s.RouteMeanNs = (connect.SumNs + branch.SumNs) / s.RouteCount
	}
	for i := range connect.Buckets {
		s.RouteLatency = append(s.RouteLatency, LatencyBucket{
			LEMicros: connect.Buckets[i].LEMicros,
			Count:    connect.Buckets[i].Count + branch.Buckets[i].Count,
		})
	}
	for _, f := range m.perFabric {
		s.PerFabric = append(s.PerFabric, FabricSnapshot{
			Routed:        f.routed.Load(),
			Blocked:       f.blocked.Load(),
			Active:        f.active.Load(),
			FailedMiddles: int(f.failedMiddles.Load()),
		})
	}
	return s
}

// HistQuantileMicros estimates the q-quantile (0 < q <= 1) of a bucketed
// latency distribution in microseconds, by linear interpolation within
// the bucket holding the quantile rank — the same estimator Prometheus's
// histogram_quantile applies. Observations in the overflow bucket are
// reported as the largest finite bound (the estimate is a lower bound
// there). Returns 0 for an empty histogram.
func HistQuantileMicros(buckets []LatencyBucket, q float64) float64 {
	var total int64
	for _, b := range buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	lo := float64(0)
	for _, b := range buckets {
		if b.Count == 0 {
			if b.LEMicros > 0 {
				lo = float64(b.LEMicros)
			}
			continue
		}
		if float64(cum+b.Count) >= rank {
			if b.LEMicros == 0 { // overflow: no upper bound to interpolate to
				return lo
			}
			frac := (rank - float64(cum)) / float64(b.Count)
			return lo + (float64(b.LEMicros)-lo)*frac
		}
		cum += b.Count
		if b.LEMicros > 0 {
			lo = float64(b.LEMicros)
		}
	}
	return lo
}

// Publish registers the registry with the process-global expvar
// namespace under the given name, making it visible at the standard
// /debug/vars endpoint. Publishing the same name twice is a no-op (the
// first registration wins), so tests constructing many controllers can
// call it freely.
func (m *Metrics) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
