package switchd

import (
	"expvar"
	"sync/atomic"
	"time"

	"repro/internal/multistage"
)

// routeBucketsMicros are the upper bounds (inclusive, microseconds) of
// the route-latency histogram buckets; a final overflow bucket catches
// everything slower.
var routeBucketsMicros = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// fabricMetrics is one replica's counter set.
type fabricMetrics struct {
	routed  atomic.Int64
	blocked atomic.Int64
	active  atomic.Int64
}

// Metrics is the controller's counter registry. All counters are
// lock-free atomics; Snapshot assembles a consistent-enough view for
// serving (counters are independently monotone, so a snapshot is always
// a valid state some interleaving could have produced).
//
// The headline counter is Blocked: with every fabric provisioned at or
// above the Theorem 1/2 sufficient bound it must read zero forever —
// the paper's nonblocking claim as a monitorable invariant.
type Metrics struct {
	model        string
	construction string
	m            int

	connectOK    atomic.Int64
	branchOK     atomic.Int64
	disconnectOK atomic.Int64
	blocked      atomic.Int64
	inadmissible atomic.Int64
	capRejects   atomic.Int64
	drainRejects atomic.Int64

	perFabric []*fabricMetrics

	// Route latency histogram (time spent inside the fabric lock per
	// Add/AddBranch).
	routeCount   atomic.Int64
	routeSumNs   atomic.Int64
	routeBuckets []atomic.Int64 // len(routeBucketsMicros)+1, last = overflow
}

func newMetrics(p multistage.Params, replicas int) *Metrics {
	m := &Metrics{
		model:        p.Model.String(),
		construction: p.Construction.String(),
		m:            p.M,
		routeBuckets: make([]atomic.Int64, len(routeBucketsMicros)+1),
	}
	for i := 0; i < replicas; i++ {
		m.perFabric = append(m.perFabric, &fabricMetrics{})
	}
	return m
}

// observeRoute records one fabric routing operation's latency.
func (m *Metrics) observeRoute(d time.Duration) {
	m.routeCount.Add(1)
	m.routeSumNs.Add(int64(d))
	us := d.Microseconds()
	for i, ub := range routeBucketsMicros {
		if us <= ub {
			m.routeBuckets[i].Add(1)
			return
		}
	}
	m.routeBuckets[len(routeBucketsMicros)].Add(1)
}

// Blocked returns the total blocking events observed (Connect and
// AddBranch combined, all fabrics).
func (m *Metrics) Blocked() int64 { return m.blocked.Load() }

// Routed returns the total successful Connect count.
func (m *Metrics) Routed() int64 { return m.connectOK.Load() }

// FabricSnapshot is one replica's counters in a Snapshot.
type FabricSnapshot struct {
	Routed  int64 `json:"routed"`
	Blocked int64 `json:"blocked"`
	Active  int64 `json:"active"`
}

// LatencyBucket is one histogram bucket in a Snapshot.
type LatencyBucket struct {
	LEMicros int64 `json:"le_us"` // upper bound; 0 = overflow (+Inf)
	Count    int64 `json:"count"`
}

// Snapshot is the JSON form of the registry, served at /v1/metrics and
// published to expvar.
type Snapshot struct {
	Model        string           `json:"model"`
	Construction string           `json:"construction"`
	M            int              `json:"m"`
	ConnectOK    int64            `json:"connect_ok"`
	BranchOK     int64            `json:"branch_ok"`
	DisconnectOK int64            `json:"disconnect_ok"`
	Blocked      int64            `json:"blocked"`
	Inadmissible int64            `json:"inadmissible"`
	CapRejects   int64            `json:"cap_rejects_429"`
	DrainRejects int64            `json:"drain_rejects_503"`
	RouteCount   int64            `json:"route_count"`
	RouteMeanNs  int64            `json:"route_mean_ns"`
	RouteLatency []LatencyBucket  `json:"route_latency_us"`
	PerFabric    []FabricSnapshot `json:"per_fabric"`
}

// Snapshot assembles the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Model:        m.model,
		Construction: m.construction,
		M:            m.m,
		ConnectOK:    m.connectOK.Load(),
		BranchOK:     m.branchOK.Load(),
		DisconnectOK: m.disconnectOK.Load(),
		Blocked:      m.blocked.Load(),
		Inadmissible: m.inadmissible.Load(),
		CapRejects:   m.capRejects.Load(),
		DrainRejects: m.drainRejects.Load(),
		RouteCount:   m.routeCount.Load(),
	}
	if s.RouteCount > 0 {
		s.RouteMeanNs = m.routeSumNs.Load() / s.RouteCount
	}
	for i := range m.routeBuckets {
		b := LatencyBucket{Count: m.routeBuckets[i].Load()}
		if i < len(routeBucketsMicros) {
			b.LEMicros = routeBucketsMicros[i]
		}
		s.RouteLatency = append(s.RouteLatency, b)
	}
	for _, f := range m.perFabric {
		s.PerFabric = append(s.PerFabric, FabricSnapshot{
			Routed:  f.routed.Load(),
			Blocked: f.blocked.Load(),
			Active:  f.active.Load(),
		})
	}
	return s
}

// Publish registers the registry with the process-global expvar
// namespace under the given name, making it visible at the standard
// /debug/vars endpoint. Publishing the same name twice is a no-op (the
// first registration wins), so tests constructing many controllers can
// call it freely.
func (m *Metrics) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
