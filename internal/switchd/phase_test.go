package switchd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/span"
	"repro/internal/switchd/api"
	"repro/internal/traffic"
	"repro/internal/wdm"
)

// TestPhaseTimerZeroAlloc is the acceptance gate for the phase plane:
// accumulating and observing phases without an exemplar trace id must
// not heap-allocate, so the instrumentation is free on the connect hot
// path (the bench path passes a stack timer and "" exactly like this).
func TestPhaseTimerZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	m := newMetrics(testParams(), 2)
	allocs := testing.AllocsPerRun(200, func() {
		var pt phaseTimer
		pt.add(phaseAdmission, 3*time.Microsecond)
		pt.add(phaseLockWait, 5*time.Microsecond)
		pt.add(phaseRouteSearch, 11*time.Microsecond)
		pt.add(phaseWALAppend, 7*time.Microsecond)
		pt.observe(m, "")
		pt.annotate(nil) // inactive span: no-op
	})
	if allocs != 0 {
		t.Fatalf("phase timer allocates %.1f objects per request on the hot path, want 0", allocs)
	}
}

// TestConnectPathZeroPhaseAllocs measures the full in-process connect +
// disconnect cycle with and without the stack phase timer: the timer
// must not add a single allocation.
func TestConnectPathZeroPhaseAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 1, Spans: span.Config{Capacity: -1}})
	conn, err := wdm.ParseConnection("0.0>8.0")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cycle := func(pt *phaseTimer) {
		id, _, err := ctl.connect(ctx, pt, conn, 0)
		if err != nil {
			t.Fatalf("connect: %v", err)
		}
		if err := ctl.disconnect(ctx, pt, id); err != nil {
			t.Fatalf("disconnect: %v", err)
		}
	}
	base := testing.AllocsPerRun(100, func() { cycle(nil) })
	timed := testing.AllocsPerRun(100, func() {
		var pt phaseTimer
		cycle(&pt)
		pt.observe(ctl.metrics, "")
	})
	if timed > base {
		t.Fatalf("phase timing added allocations: %.1f with timer vs %.1f without", timed, base)
	}
}

// TestPhaseNamesComplete pins the name/attr tables to numPhases so a
// new phase cannot ship without its label.
func TestPhaseNamesComplete(t *testing.T) {
	for p := phase(0); p < numPhases; p++ {
		if phaseNames[p] == "" || phaseAttrs[p] == "" {
			t.Fatalf("phase %d missing name (%q) or attr (%q)", p, phaseNames[p], phaseAttrs[p])
		}
	}
}

// TestServerTimingHeaderAndPhaseExposition drives the HTTP path and
// asserts (a) connect responses carry a Server-Timing header with the
// route_search phase, (b) /metrics exports wdm_phase_seconds histograms
// that the strict parser accepts, and (c) the per-request header and
// the histogram agree that phases were observed.
func TestServerTimingHeaderAndPhaseExposition(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 2,
		DataDir: t.TempDir(), WALSyncDelay: -1, SnapshotInterval: -1})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	body, err := json.Marshal(api.ConnectRequest{Connection: "0.0>8.0"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/connect", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("connect: status %d", resp.StatusCode)
	}
	st := resp.Header.Get("Server-Timing")
	if st == "" {
		t.Fatal("connect response has no Server-Timing header")
	}
	for _, want := range []string{"route_search;dur=", "wal_append;dur="} {
		if !strings.Contains(st, want) {
			t.Errorf("Server-Timing %q missing %q", st, want)
		}
	}

	pm := scrapeProm(t, srv.Client(), srv.URL)
	if v, ok := pm.Value("wdm_phase_seconds_count", map[string]string{"phase": "route_search"}); !ok || v < 1 {
		t.Errorf("wdm_phase_seconds_count{phase=route_search} = %v, %v; want >= 1", v, ok)
	}
	if v, ok := pm.Value("wdm_phase_seconds_count", map[string]string{"phase": "wal_append"}); !ok || v < 1 {
		t.Errorf("wdm_phase_seconds_count{phase=wal_append} = %v, %v; want >= 1", v, ok)
	}
	// Runtime telemetry rides in the same exposition.
	if v, ok := pm.Value("wdm_go_goroutines", nil); !ok || v < 1 {
		t.Errorf("wdm_go_goroutines = %v, %v; want >= 1", v, ok)
	}
}

// TestVersionEndpointAndBuildInfo: /v1/version serves the build info
// and /metrics carries the matching wdm_build_info gauge.
func TestVersionEndpointAndBuildInfo(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams()})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/version: status %d", resp.StatusCode)
	}
	var vi api.VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&vi); err != nil {
		t.Fatal(err)
	}
	if vi.Version != Version || vi.GoVersion == "" {
		t.Fatalf("version info = %+v, want version %q and a go version", vi, Version)
	}

	pm := scrapeProm(t, srv.Client(), srv.URL)
	if v, ok := pm.Value("wdm_build_info", map[string]string{"version": Version}); !ok || v != 1 {
		t.Errorf("wdm_build_info{version=%s} = %v, %v; want 1", Version, v, ok)
	}
}

// TestParseServerTiming pins the loadgen's header parser against the
// exact format phaseTimer.serverTiming emits.
func TestParseServerTiming(t *testing.T) {
	sum := map[string]float64{}
	n := map[string]int{}
	traffic.ParseServerTiming("lock_wait;dur=0.041, route_search;dur=0.012", sum, n)
	traffic.ParseServerTiming("lock_wait;dur=0.059", sum, n)
	traffic.ParseServerTiming("garbage, no-dur;x=1, ;dur=5", sum, n) // ignored
	if n["lock_wait"] != 2 || sum["lock_wait"] != 0.1 {
		t.Errorf("lock_wait = %v over %d samples, want 0.1 over 2", sum["lock_wait"], n["lock_wait"])
	}
	if n["route_search"] != 1 || sum["route_search"] != 0.012 {
		t.Errorf("route_search = %v over %d samples, want 0.012 over 1", sum["route_search"], n["route_search"])
	}
	if len(sum) != 2 {
		t.Errorf("parsed %d phases, want 2: %v", len(sum), sum)
	}
}
