package switchd

import (
	"net/http"
	"strconv"

	"repro/internal/switchd/api"
)

// Observability endpoints for the tracing and SLO subsystems:
//
//	GET /v1/debug/spans            completed traces from the tail-sampled ring
//	GET /v1/debug/spans?blocked=1  blocked traces only
//	GET /v1/debug/spans?trace=ID   one trace by 32-hex id
//	GET /v1/debug/spans?limit=N    the N most recent
//	GET /v1/slo                    sliding-window SLIs and burn-rate alerts

func (ctl *Controller) handleDebugSpans(w http.ResponseWriter, r *http.Request) {
	if ctl.tracer == nil {
		writeErrorCode(w, http.StatusNotFound, api.CodeNotFound, "span tracing disabled (Config.Spans.Capacity < 0)")
		return
	}
	traces := ctl.tracer.Snapshot()
	q := r.URL.Query()
	if q.Get("blocked") == "1" {
		filtered := traces[:0]
		for _, t := range traces {
			if t.Blocked {
				filtered = append(filtered, t)
			}
		}
		traces = filtered
	}
	if want := q.Get("trace"); want != "" {
		filtered := traces[:0]
		for _, t := range traces {
			if t.TraceID == want {
				filtered = append(filtered, t)
			}
		}
		traces = filtered
	}
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeErrorCode(w, http.StatusBadRequest, api.CodeBadRequest, "want ?limit=<non-negative int>")
			return
		}
		if n < len(traces) {
			traces = traces[len(traces)-n:]
		}
	}
	kept, dropped := ctl.tracer.Stats()
	writeJSON(w, http.StatusOK, SpansResponse{Kept: kept, Dropped: dropped, Traces: traces})
}

// handleSLO serves GET /v1/slo: the burn-rate engine's snapshot.
func (ctl *Controller) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ctl.sloEng.Snapshot())
}
