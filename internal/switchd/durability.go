package switchd

import (
	"fmt"
	"log/slog"
	"sort"
	"time"

	"repro/internal/durable"
	"repro/internal/multistage"
	"repro/internal/obs/span"
	"repro/internal/switchd/api"
	"repro/internal/wdm"
)

// Durable state plane. With Config.DataDir set the controller journals
// every acknowledged mutation — connect, branch, disconnect, middle
// fail/repair — to a write-ahead log before the request returns, and
// periodically checkpoints the full session table. Recovery loads the
// newest valid snapshot and replays the log tail through
// multistage.Reinstall: routes are restored exactly as recorded, no
// router search runs, so a session set that was conflict-free before
// the crash reinstalls without blocking by construction.
//
// Consistency design. Each operation's WAL append shares a critical
// section with its table mutation (the session shard lock), so the
// log order of records matches the order in which the table — and
// through byConn, any snapshot — observed them. Three orderings carry
// the correctness argument:
//
//   - Disconnect appends its record *before* releasing the fabric
//     slots, so any later connect reusing those slots appends after
//     it. Combined with truncate-at-first-bad-frame recovery (a
//     corrupted record never hides an earlier one), every surviving
//     log prefix's final session set is mutually conflict-free and
//     Reinstall cannot fail at startup.
//   - FailMiddle appends its record while still holding the fabric
//     lock, so a connect admitted after the failure (whose route may
//     reuse slots freed by dropped sessions) appends after the fail
//     record that freed them.
//   - Snapshots capture the synced sequence number *before* scanning
//     fabric state, so the checkpoint is a superset of every record
//     it claims to cover; tail records replay as idempotent upserts
//     carrying absolute branch/migration counts.
//
// Failure policy is fail-stop: a write or fsync error poisons the log,
// every subsequent mutating call returns ErrStorageFailed
// (storage_failed, HTTP 503), and reads keep serving. Restarting the
// process recovers everything that was acknowledged.

// connMeta is the fabric-side view of a session, keyed by fabric
// connection id under the fabric mutex. It lets FailMiddle and the
// snapshotter translate connection ids to session ids (and absolute
// branch/migration counts) without touching the sharded session table,
// which keeps snapshot capture free of shard locks and keeps the fail
// record buildable inside the fabric critical section.
type connMeta struct {
	session    uint64
	branches   int
	migrations int
}

// openDurable opens (or creates) the write-ahead log under
// cfg.DataDir, reinstalls every recovered session, and starts the
// snapshotter. Called from New before the controller is published.
func (ctl *Controller) openDurable() error {
	cfg := ctl.cfg
	opts := durable.Options{
		Dir:          cfg.DataDir,
		SyncDelay:    cfg.WALSyncDelay,
		SegmentBytes: cfg.WALSegmentBytes,
		OnFsync:      func(d time.Duration) { ctl.metrics.walFsync.observe(d) },
		Committer:    cfg.WALCommitter,
		Logger:       ctl.logger,
	}
	meta := durable.Meta{Params: ctl.params, Replicas: len(ctl.fabrics), Backend: ctl.backendName}
	sp := ctl.tracer.Root("wal.recover", "")
	defer sp.End()
	wal, rec, err := durable.Open(opts, meta)
	if err != nil {
		sp.SetError(err.Error())
		return fmt.Errorf("switchd: opening durable log: %w", err)
	}
	ctl.wal = wal
	ctl.recovery = rec
	if err := ctl.reinstallRecovered(rec, sp); err != nil {
		sp.SetError(err.Error())
		wal.Close()
		return err
	}
	sp.SetAttr("sessions", len(rec.Sessions))
	sp.SetAttr("records", rec.Records)
	sp.SetAttr("last_seq", rec.LastSeq)

	interval := cfg.SnapshotInterval
	if interval == 0 {
		interval = 30 * time.Second
	}
	if interval > 0 {
		ctl.snapStop = make(chan struct{})
		ctl.snapDone = make(chan struct{})
		go ctl.snapshotLoop(interval)
	} else {
		ctl.snapDone = make(chan struct{})
		close(ctl.snapDone)
	}
	return nil
}

// reinstallRecovered replays the recovered state into the fabrics and
// the session table. New is single-threaded here, so no locks are
// needed; everything must succeed — a session that was acknowledged
// durable but cannot be reinstalled is a corruption-class invariant
// violation, and serving without it would silently break the
// durability contract.
func (ctl *Controller) reinstallRecovered(rec *durable.Recovery, sp *span.Span) error {
	for plane, mids := range rec.Failed {
		if plane < 0 || plane >= len(ctl.fabrics) {
			return fmt.Errorf("switchd: recovery: fabric %d out of range (have %d)", plane, len(ctl.fabrics))
		}
		f := ctl.fabrics[plane]
		for _, mid := range mids {
			if err := f.net.FailMiddle(mid); err != nil {
				return fmt.Errorf("switchd: recovery: marking fabric %d middle %d failed: %w", plane, mid, err)
			}
		}
		f.failedMids.Store(int32(len(mids)))
		ctl.metrics.perFabric[plane].failedMiddles.Store(int64(len(mids)))
	}
	for _, sr := range rec.Sessions {
		if sr.Fabric < 0 || sr.Fabric >= len(ctl.fabrics) {
			return fmt.Errorf("switchd: recovery: session %d on fabric %d out of range", sr.Session, sr.Fabric)
		}
		f := ctl.fabrics[sr.Fabric]
		connID, err := f.net.Reinstall(sr.Route)
		if err != nil {
			return fmt.Errorf("switchd: recovery: reinstalling session %d on fabric %d: %w", sr.Session, sr.Fabric, err)
		}
		conn, err := wdm.ParseConnection(sr.Route.Conn)
		if err != nil {
			return fmt.Errorf("switchd: recovery: session %d connection: %w", sr.Session, err)
		}
		ctl.sessions.put(&session{
			ID: sr.Session, Fabric: sr.Fabric, ConnID: connID,
			Conn: conn.Normalize(), Branches: sr.Branches, Migrations: sr.Migrations,
		})
		f.byConn[connID] = &connMeta{session: sr.Session, branches: sr.Branches, migrations: sr.Migrations}
		ctl.active.Add(1)
		ctl.admitted.Add(1)
		ctl.metrics.perFabric[sr.Fabric].active.Add(1)
		ctl.metrics.perFabric[sr.Fabric].routed.Add(1)
	}
	ctl.nextSession.Store(rec.NextSession)
	ctl.metrics.recovered.Store(int64(len(rec.Sessions)))
	ctl.failMu.Lock()
	ctl.recomputeDegradedLocked()
	ctl.failMu.Unlock()
	if len(rec.Sessions) > 0 || rec.Records > 0 || rec.Truncated != nil {
		attrs := []any{
			"sessions", len(rec.Sessions), "records", rec.Records,
			"last_seq", rec.LastSeq, "snapshot_seq", rec.SnapshotSeq,
			"sealed", rec.Sealed, "elapsed", rec.Elapsed,
		}
		if rec.Truncated != nil {
			attrs = append(attrs, "truncated_segment", rec.Truncated.Segment,
				"truncated_offset", rec.Truncated.Offset, "truncated_reason", rec.Truncated.Reason)
		}
		ctl.logger.Info("recovered durable state", attrs...)
	}
	return nil
}

// walAppend journals one record and waits for the group commit to make
// it durable. A failure is wrapped in ErrStorageFailed; the log is
// poisoned from that point on (fail-stop). pt (nil-safe) receives the
// wait split into wal_append (frame + batch fsync) and repl_ack (the
// Committer barrier's slice). When sp is an active sampled span, the
// record also carries its traceparent, so a replication standby's
// apply/fsync spans join this trace instead of starting orphans.
func (ctl *Controller) walAppend(sp *span.Span, pt *phaseTimer, rec *durable.Record) error {
	if sp.Active() {
		rec.TP = sp.Traceparent()
	}
	start := time.Now()
	seq, fsyncD, commitD, err := ctl.wal.AppendTimed(rec)
	total := time.Since(start)
	pt.add(phaseReplAck, commitD)
	pt.add(phaseWALAppend, total-commitD)
	if sp.Active() {
		ws := sp.StartChild("wal.append")
		ws.SetAttr("op", rec.Op)
		if seq > 0 {
			ws.SetAttr("seq", seq)
		}
		ws.SetAttr("fsync_us", fsyncD.Microseconds())
		if commitD > 0 {
			ws.SetAttr("repl_ack_us", commitD.Microseconds())
		}
		if err != nil {
			ws.SetError(err.Error())
		}
		ws.End()
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStorageFailed, err)
	}
	return nil
}

// commitConnect publishes a freshly routed session: the table insert
// and the WAL append happen under the session shard lock, with the
// route read from the fabric (under a brief nested fabric lock —
// shard -> fabric is the repo-wide lock order) immediately before the
// append, so the recorded route is exactly what the fabric holds at
// the record's log position. On append failure the connection is
// rolled back and never acknowledged.
func (ctl *Controller) commitConnect(sp *span.Span, pt *phaseTimer, f *fabric, plane int, s *session) error {
	sh := ctl.sessions.shardFor(s.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ctl.wal == nil {
		sh.m[s.ID] = s
		return nil
	}
	var route multistage.RouteRecord
	var ok bool
	f.mu.Lock()
	route, ok = f.net.RouteRecord(s.ConnID)
	if ok {
		f.byConn[s.ConnID] = &connMeta{session: s.ID}
	}
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("switchd: connection %d vanished before journaling", s.ConnID)
	}
	sh.m[s.ID] = s
	err := ctl.walAppend(sp, pt, &durable.Record{
		Op: durable.OpConnect, Session: s.ID, Fabric: plane, Route: &route,
	})
	if err == nil {
		return nil
	}
	// Roll back: the session was never acknowledged, so it must not
	// survive in any state the log cannot reproduce.
	delete(sh.m, s.ID)
	f.mu.Lock()
	delete(f.byConn, s.ConnID)
	if rerr := f.net.Release(s.ConnID); rerr == nil {
		f.cap.release(s.ConnID)
	}
	f.mu.Unlock()
	return err
}

// commitBranch journals a successful AddBranch. The caller holds the
// session shard lock and has already applied the grow; on append
// failure the grow stays applied (tearing down a live receiver over a
// bookkeeping error would be worse) and the caller surfaces
// storage_failed — the client knows the branch may or may not survive
// a crash, and every subsequent mutation fails anyway (fail-stop).
func (ctl *Controller) commitBranch(sp *span.Span, pt *phaseTimer, f *fabric, s *session) error {
	if ctl.wal == nil {
		return nil
	}
	var route multistage.RouteRecord
	var ok bool
	f.mu.Lock()
	route, ok = f.net.RouteRecord(s.ConnID)
	if meta := f.byConn[s.ConnID]; meta != nil {
		meta.branches = s.Branches
	}
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("switchd: connection %d vanished before journaling", s.ConnID)
	}
	return ctl.walAppend(sp, pt, &durable.Record{
		Op: durable.OpBranch, Session: s.ID, Fabric: s.Fabric,
		Branches: s.Branches, Migrations: s.Migrations, Route: &route,
	})
}

// commitDisconnect journals a disconnect before the fabric slots are
// released (see the ordering argument in the package comment: the
// record must precede any connect record that reuses the slots). The
// byConn entry is removed first so a concurrent FailMiddle does not
// journal a migration for a session whose disconnect record is
// already ahead of it. The caller holds the session shard lock.
func (ctl *Controller) commitDisconnect(sp *span.Span, pt *phaseTimer, s *session) error {
	if ctl.wal == nil {
		return nil
	}
	f := ctl.fabrics[s.Fabric]
	f.mu.Lock()
	meta := f.byConn[s.ConnID]
	delete(f.byConn, s.ConnID)
	f.mu.Unlock()
	err := ctl.walAppend(sp, pt, &durable.Record{Op: durable.OpDisconnect, Session: s.ID})
	if err != nil {
		f.mu.Lock()
		if meta != nil {
			f.byConn[s.ConnID] = meta
		}
		f.mu.Unlock()
	}
	return err
}

// buildFailRecordLocked folds a middle failure into byConn and builds
// the fail record: post-migration routes with absolute counts for the
// survivors, session ids for the drops. Caller holds the fabric lock —
// the record must be appended before the lock is released so no
// post-failure connect (possibly reusing a dropped session's slots)
// can journal ahead of it.
func (ctl *Controller) buildFailRecordLocked(f *fabric, plane, middle int, migrations []multistage.Migration, droppedIDs []int) *durable.Record {
	rec := &durable.Record{Op: durable.OpFail, Fabric: plane, Middle: middle}
	for _, mig := range migrations {
		meta := f.byConn[mig.ID]
		if meta == nil {
			continue
		}
		meta.migrations++
		route, ok := f.net.RouteRecord(mig.ID)
		if !ok {
			continue
		}
		rec.Migrated = append(rec.Migrated, durable.SessionRoute{
			Session: meta.session, Fabric: plane,
			Branches: meta.branches, Migrations: meta.migrations, Route: route,
		})
	}
	for _, id := range droppedIDs {
		if meta := f.byConn[id]; meta != nil {
			rec.Dropped = append(rec.Dropped, meta.session)
			delete(f.byConn, id)
		}
	}
	return rec
}

// snapshotLoop checkpoints the controller state every interval until
// stopped.
func (ctl *Controller) snapshotLoop(interval time.Duration) {
	defer close(ctl.snapDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctl.snapStop:
			return
		case <-t.C:
			if err := ctl.WriteSnapshot(); err != nil {
				ctl.logger.Warn("snapshot failed", slog.String("error", err.Error()))
			}
		}
	}
}

// WriteSnapshot checkpoints the session table and failure plane to the
// data directory, then prunes log segments the checkpoint covers. The
// synced sequence number is captured before the fabric scan, so every
// record the snapshot claims to cover is reflected in it (records
// landing during the scan replay idempotently on top). Safe to call
// concurrently with serving; no session-shard lock is taken.
func (ctl *Controller) WriteSnapshot() error {
	if ctl.wal == nil {
		return nil
	}
	sp := ctl.tracer.Root("wal.snapshot", "")
	defer sp.End()
	snap := ctl.SnapshotState()
	sp.SetAttr("sessions", len(snap.Sessions))
	sp.SetAttr("last_seq", snap.LastSeq)
	err := ctl.wal.WriteSnapshot(snap)
	if err != nil {
		sp.SetError(err.Error())
	}
	return err
}

// SnapshotState captures the checkpoint WriteSnapshot would persist:
// the live session routes, the failure plane, and the synced sequence
// they cover. The replication server ships it to bootstrap a standby
// whose resume point has been pruned. The sequence is captured before
// the fabric scan, so the state is a superset of every record it claims
// to cover. Must only be called with the durable plane enabled.
func (ctl *Controller) SnapshotState() *durable.Snapshot {
	snap := &durable.Snapshot{
		LastSeq:     ctl.wal.SyncedSeq(),
		NextSession: ctl.nextSession.Load(),
	}
	for plane, f := range ctl.fabrics {
		f.mu.Lock()
		for connID, meta := range f.byConn {
			route, ok := f.net.RouteRecord(connID)
			if !ok {
				continue
			}
			snap.Sessions = append(snap.Sessions, durable.SessionRoute{
				Session: meta.session, Fabric: plane,
				Branches: meta.branches, Migrations: meta.migrations, Route: route,
			})
		}
		if failed := f.net.FailedMiddles(); len(failed) > 0 {
			if snap.Failed == nil {
				snap.Failed = make(map[int][]int)
			}
			snap.Failed[plane] = failed
		}
		f.mu.Unlock()
	}
	sort.Slice(snap.Sessions, func(i, j int) bool { return snap.Sessions[i].Session < snap.Sessions[j].Session })
	return snap
}

// stopSnapshots halts the snapshotter goroutine (idempotent).
func (ctl *Controller) stopSnapshots() {
	ctl.snapOnce.Do(func() {
		if ctl.snapStop != nil {
			close(ctl.snapStop)
		}
		if ctl.snapDone != nil {
			<-ctl.snapDone
		}
	})
}

// Close stops the snapshotter and flushes and closes the durable log.
// Idempotent; a no-op without a data directory.
func (ctl *Controller) Close() error {
	var err error
	ctl.closeOnce.Do(func() {
		ctl.stopHistory()
		ctl.stopSnapshots()
		ctl.prof.Stop()
		if ctl.wal != nil {
			err = ctl.wal.Close()
		}
	})
	return err
}

// Crash hard-stops the controller's durable log the way kill -9 would:
// buffered, never-fsynced frames are dropped — exactly the records
// whose requests were never acknowledged. For fault drills and tests;
// the controller itself keeps serving reads until abandoned.
func (ctl *Controller) Crash() {
	ctl.closeOnce.Do(func() {
		ctl.stopHistory()
		ctl.stopSnapshots()
		ctl.prof.Stop()
		if ctl.wal != nil {
			ctl.wal.Crash()
		}
	})
}

// Recovery reports what startup restored from the data directory (nil
// without one).
func (ctl *Controller) Recovery() *durable.Recovery { return ctl.recovery }

// WAL exposes the durable log (nil without a data directory); tests
// and the serving binary use it for stats and shutdown.
func (ctl *Controller) WAL() *durable.Plane { return ctl.wal }

// SetReplicationProbe registers (or clears, with nil) the callback
// that reports the node's replication role and lag. The cluster layer
// sets it on primaries; its result appears as the replication row of
// GET /v1/health and as wdm_replication_* metrics.
func (ctl *Controller) SetReplicationProbe(probe func() *api.ReplicationHealth) {
	if probe == nil {
		ctl.replProbe.Store(nil)
		return
	}
	ctl.replProbe.Store(&probe)
}

// replicationHealth runs the registered probe, if any.
func (ctl *Controller) replicationHealth() *api.ReplicationHealth {
	if p := ctl.replProbe.Load(); p != nil {
		return (*p)()
	}
	return nil
}

// durabilityHealth builds the durability row of GET /v1/health.
func (ctl *Controller) durabilityHealth() *api.DurabilityHealth {
	if ctl.wal == nil {
		return nil
	}
	st := ctl.wal.Stats()
	d := &api.DurabilityHealth{
		Enabled:       true,
		Healthy:       true,
		LastSeq:       st.LastSeq,
		SyncedSeq:     st.SyncedSeq,
		UnsyncedBytes: st.UnsyncedBytes,
		Segments:      st.Segments,
		Sealed:        st.Sealed,
	}
	if err := ctl.wal.Err(); err != nil {
		d.Healthy = false
		d.Error = err.Error()
	}
	if st.LastSnapshotUnixNs > 0 {
		d.SnapshotAgeSeconds = time.Since(time.Unix(0, st.LastSnapshotUnixNs)).Seconds()
		d.SnapshotSeq = st.LastSnapshotSeq
	} else {
		d.SnapshotAgeSeconds = -1
	}
	if rec := ctl.recovery; rec != nil {
		d.RecoveredSessions = len(rec.Sessions)
		d.ReplayedRecords = rec.Records
		d.RecoveryMillis = rec.Elapsed.Milliseconds()
		if rec.Truncated != nil {
			d.TruncatedTail = fmt.Sprintf("%s@%d: %s", rec.Truncated.Segment, rec.Truncated.Offset, rec.Truncated.Reason)
		}
	}
	return d
}
