package switchd

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/fabric/backend"
	"repro/internal/multistage"
	"repro/internal/switchd/api"
	"repro/internal/switchd/client"
	"repro/internal/wdm"
)

// matrixParams sizes each backend at its own default (bound-level)
// provisioning, mirroring the cross-backend conformance suite.
func matrixParams(name string) multistage.Params {
	if name == "mesh" {
		return multistage.Params{N: 12, K: 4, R: 3, Model: wdm.MSW}
	}
	return multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true}
}

// matrixTraffic is a small per-backend serving script: a multicast
// session to grow by one branch, two unicasts (one released), and a
// failure unit that carries live routes but hosts no endpoint.
type matrixTraffic struct {
	first  string
	branch wdm.PortWave
	second string
	third  string
	failJ  int
}

func matrixTrafficFor(name string) matrixTraffic {
	if name == "mesh" {
		// N=12, MC nodes every 3rd. Node 4 is an interior hop for the
		// 0>6 walk but no session terminates there, so failing it forces
		// a live migration instead of a drop.
		return matrixTraffic{
			first:  "0.0>6.0",
			branch: wdm.PortWave{Port: 9, Wave: 0},
			second: "1.1>7.1",
			third:  "2.2>8.2",
			failJ:  4,
		}
	}
	return matrixTraffic{
		first:  "0.0>5.0,9.0",
		branch: wdm.PortWave{Port: 12, Wave: 0},
		second: "1.0>6.0",
		third:  "2.1>7.1",
		failJ:  0,
	}
}

// TestBackendMatrixServeRecoverMigrate drives every registered backend
// through the full serving contract behind one switchd: connect,
// branch, disconnect, middle/node failure with live migration, repair,
// and crash recovery that reproduces the session set byte for byte.
func TestBackendMatrixServeRecoverMigrate(t *testing.T) {
	for _, name := range backend.Names() {
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Backend:          name,
				Fabric:           matrixParams(name),
				Replicas:         2,
				DataDir:          t.TempDir(),
				WALSyncDelay:     -1,
				SnapshotInterval: -1,
			}
			ctl := newTestController(t, cfg)
			ctx := context.Background()

			if got := ctl.Backend(); got != name {
				t.Fatalf("Backend() = %q, want %q", got, name)
			}
			if st := ctl.Status(); st.Backend != name {
				t.Fatalf("Status().Backend = %q, want %q", st.Backend, name)
			}

			script := matrixTrafficFor(name)
			id1 := mustConnect(t, ctl, script.first, 0)
			if err := ctl.AddBranch(ctx, id1, script.branch); err != nil {
				t.Fatalf("AddBranch: %v", err)
			}
			id2 := mustConnect(t, ctl, script.second, 1)
			mustConnect(t, ctl, script.third, 0)
			if err := ctl.Disconnect(ctx, id2); err != nil {
				t.Fatalf("Disconnect: %v", err)
			}

			// Fail a unit carrying live routes on plane 0: sessions must
			// survive by migration, then the repair must restore full
			// capacity.
			rep, err := ctl.FailMiddle(ctx, 0, script.failJ)
			if err != nil {
				t.Fatalf("FailMiddle(%d): %v", script.failJ, err)
			}
			if len(rep.Dropped) != 0 {
				t.Fatalf("FailMiddle dropped sessions %v, want none (no endpoint on the failed unit)", rep.Dropped)
			}
			if got := ctl.ActiveSessions(); got != 2 {
				t.Fatalf("ActiveSessions after failure = %d, want 2", got)
			}
			if _, err := ctl.RepairMiddle(ctx, 0, script.failJ); err != nil {
				t.Fatalf("RepairMiddle: %v", err)
			}

			before := sessionsJSON(t, ctl)
			ctl.Crash()

			ctl2 := newTestController(t, cfg)
			defer ctl2.Close()
			if got := ctl2.Backend(); got != name {
				t.Fatalf("recovered Backend() = %q, want %q", got, name)
			}
			after := sessionsJSON(t, ctl2)
			if !bytes.Equal(before, after) {
				t.Fatalf("recovered sessions diverge for %s:\nbefore %s\nafter  %s", name, before, after)
			}
			if got := ctl2.ActiveSessions(); got != 2 {
				t.Fatalf("recovered ActiveSessions = %d, want 2", got)
			}
		})
	}
}

// TestFabricsEndpoint exercises the capability-discovery surface
// through the typed client: GET /v1/fabrics lists every registered
// backend with its bound and error codes, flags the serving one, and
// agrees with /v1/status and /v1/version about which backend that is.
func TestFabricsEndpoint(t *testing.T) {
	ctl := newTestController(t, Config{Backend: "mesh", Fabric: matrixParams("mesh"), Replicas: 1})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()))

	fr, err := cl.Fabrics(context.Background())
	if err != nil {
		t.Fatalf("Fabrics: %v", err)
	}
	if fr.Current != "mesh" {
		t.Fatalf("fabrics.current = %q, want mesh", fr.Current)
	}
	if len(fr.Fabrics) != len(backend.Names()) {
		t.Fatalf("fabrics lists %d backends, want %d", len(fr.Fabrics), len(backend.Names()))
	}
	seen := map[string]api.FabricInfo{}
	for _, f := range fr.Fabrics {
		seen[f.Name] = f
		if f.Current != (f.Name == "mesh") {
			t.Fatalf("fabric %q current = %v, want %v", f.Name, f.Current, f.Name == "mesh")
		}
		if f.Bound == "" || f.Description == "" {
			t.Fatalf("fabric %q missing capability card: %+v", f.Name, f)
		}
	}
	if codes := seen["mesh"].ErrorCodes; len(codes) != 1 || codes[0] != api.CodeSplitIncapable {
		t.Fatalf("mesh error codes = %v, want [%s]", codes, api.CodeSplitIncapable)
	}
	if codes := seen["awg"].ErrorCodes; len(codes) != 1 || codes[0] != api.CodeWavelengthConflict {
		t.Fatalf("awg error codes = %v, want [%s]", codes, api.CodeWavelengthConflict)
	}

	// /v1/status and /v1/version agree on the serving backend.
	st, err := cl.Status(context.Background())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Backend != "mesh" {
		t.Fatalf("status.backend = %q, want mesh", st.Backend)
	}
	vi, err := cl.Version(context.Background())
	if err != nil {
		t.Fatalf("Version: %v", err)
	}
	if vi.Backend != "mesh" {
		t.Fatalf("version.backend = %q, want mesh", vi.Backend)
	}
}

// TestBackendErrorCodeMapping proves the backend-specific block codes
// survive the whole path — fabric, error envelope, HTTP status, typed
// client classification.
func TestBackendErrorCodeMapping(t *testing.T) {
	t.Run("split_incapable", func(t *testing.T) {
		// X=1: no mesh node can branch, so a 2-destination multicast is
		// structurally unroutable.
		p := matrixParams("mesh")
		p.X = 1
		ctl := newTestController(t, Config{Backend: "mesh", Fabric: p, Replicas: 1})
		srv := httptest.NewServer(ctl.Handler())
		defer srv.Close()
		cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()))
		_, err := cl.Connect(context.Background(), "0.0>2.0,4.0", -1)
		if got := api.CodeOf(err); got != api.CodeSplitIncapable {
			t.Fatalf("code = %q (err %v), want %s", got, err, api.CodeSplitIncapable)
		}
		if !client.IsBlocked(err) {
			t.Fatal("split_incapable not classified as blocked")
		}
		if !client.IsPermanent(err) {
			t.Fatal("split_incapable not classified as permanent")
		}
	})
	t.Run("wavelength_conflict", func(t *testing.T) {
		// One middle: the second session in the same (src module, class
		// wavelength) lane has nowhere to go under the grating law.
		p := matrixParams("awg")
		p.M = 1
		ctl := newTestController(t, Config{Backend: "awg", Fabric: p, Replicas: 1})
		srv := httptest.NewServer(ctl.Handler())
		defer srv.Close()
		cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()))
		ctx := context.Background()
		if _, err := cl.Connect(ctx, "0.0>4.0", -1); err != nil {
			t.Fatalf("first connect: %v", err)
		}
		_, err := cl.Connect(ctx, "1.0>5.0", -1)
		if got := api.CodeOf(err); got != api.CodeWavelengthConflict {
			t.Fatalf("code = %q (err %v), want %s", got, err, api.CodeWavelengthConflict)
		}
		if !client.IsBlocked(err) {
			t.Fatal("wavelength_conflict not classified as blocked")
		}
		if client.IsPermanent(err) {
			t.Fatal("wavelength_conflict wrongly classified as permanent (a release can clear it)")
		}
	})
}
