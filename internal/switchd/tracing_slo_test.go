package switchd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/obs/span"
	"repro/internal/switchd/api"
)

// postConnect issues POST /v1/connect, optionally under a traceparent,
// and returns the response (body decoded into out when non-nil).
func postConnect(t *testing.T, client *http.Client, baseURL, conn, traceparent string, out any) *http.Response {
	t.Helper()
	body, _ := json.Marshal(api.ConnectRequest{Connection: conn})
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/connect", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(span.TraceparentHeader, traceparent)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/connect: %v", err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode connect response: %v", err)
		}
	}
	return resp
}

// fetchSpans queries /v1/debug/spans with a raw query string.
func fetchSpans(t *testing.T, client *http.Client, baseURL, query string) SpansResponse {
	t.Helper()
	resp, err := client.Get(baseURL + "/v1/debug/spans" + query)
	if err != nil {
		t.Fatalf("GET /v1/debug/spans%s: %v", query, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/spans%s: status %d", query, resp.StatusCode)
	}
	var sr SpansResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode spans response: %v", err)
	}
	return sr
}

// TestTraceJoinEndToEnd is the acceptance test for the tracing
// subsystem: below the bound, one blocked request is followable by
// trace id through every observability surface — the load generator's
// client-side record, the span ring (with per-middle rejection spans),
// the /metrics exemplar, and the blocking-forensics incident.
func TestTraceJoinEndToEnd(t *testing.T) {
	p := testParams()
	p.M = 1 // far below the sufficient bound: blocking is easy to provoke
	p.X = 1
	ctl := newTestController(t, Config{
		Fabric: p, Replicas: 1, Shards: 4,
		// Keep every trace: the ring must outlast the whole attack so
		// client-recorded ids always resolve.
		Spans: span.Config{Capacity: 4096, SampleEvery: 1},
	})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	client := srv.Client()

	// Phase 1 — the load generator tags every connect with a fresh
	// traceparent and reports the ids of blocked and slowest requests.
	rep, err := Attack(AttackConfig{
		BaseURL: srv.URL, Client: client,
		Requests: 600, WorkersPerFabric: 2, TargetLive: 6, Seed: 7,
	})
	if err != nil {
		t.Fatalf("Attack: %v", err)
	}
	if rep.Blocked == 0 {
		t.Fatalf("no blocking at m=1; cannot exercise the trace join (report: %v)", rep)
	}
	if len(rep.BlockedTraces) == 0 || len(rep.SlowestTraces) == 0 {
		t.Fatalf("loadgen recorded no trace refs: blocked=%d slowest=%d",
			len(rep.BlockedTraces), len(rep.SlowestTraces))
	}
	for _, ref := range rep.BlockedTraces {
		if len(ref.TraceID) != 32 {
			t.Fatalf("blocked trace ref %q is not a 32-hex trace id", ref.TraceID)
		}
		if ref.Outcome != api.CodeBlocked {
			t.Fatalf("blocked trace ref outcome = %q, want %q", ref.Outcome, api.CodeBlocked)
		}
	}
	// A client-recorded blocked id resolves in the span ring.
	got := fetchSpans(t, client, srv.URL, "?trace="+rep.BlockedTraces[0].TraceID)
	if len(got.Traces) != 1 || !got.Traces[0].Blocked {
		t.Fatalf("attack-blocked trace %s not in ring as blocked (got %d traces)",
			rep.BlockedTraces[0].TraceID, len(got.Traces))
	}

	// Phase 2 — deterministic tail. The attack released its sessions, so
	// rebuild the blocking state and drive one blocked connect under a
	// traceparent the test owns end to end.
	if resp := postConnect(t, client, srv.URL, "0.0>4.0", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("setup connect: status %d", resp.StatusCode)
	}
	tid := span.NewTraceID()
	tp := span.FormatTraceparent(tid, span.NewSpanID(), span.FlagSampled)
	var blockedResp api.Envelope
	resp := postConnect(t, client, srv.URL, "1.0>8.0", tp, &blockedResp)
	if resp.StatusCode != http.StatusConflict || blockedResp.Error == nil || blockedResp.Error.Code != api.CodeBlocked {
		t.Fatalf("tail connect: status %d body %+v, want 409 %s", resp.StatusCode, blockedResp.Error, api.CodeBlocked)
	}
	// The inbound trace id is echoed in the traceparent response header.
	if echoed := resp.Header.Get(span.TraceparentHeader); echoed == "" {
		t.Fatal("no traceparent response header")
	} else if etid, _, _, err := span.ParseTraceparent(echoed); err != nil || etid.String() != tid.String() {
		t.Fatalf("echoed traceparent %q does not carry inbound trace id %s", echoed, tid)
	}

	// Join 1: the span ring holds the full trace — HTTP root,
	// switchd.connect, fabric.add, and per-middle rejection spans with
	// the structured block reason.
	sr := fetchSpans(t, client, srv.URL, "?trace="+tid.String())
	if len(sr.Traces) != 1 {
		t.Fatalf("trace %s: got %d ring entries, want 1", tid, len(sr.Traces))
	}
	tr := sr.Traces[0]
	if !tr.Blocked {
		t.Fatalf("trace %s not marked blocked: %+v", tid, tr)
	}
	names := map[string]int{}
	rejections := 0
	for _, s := range tr.Spans {
		names[s.Name]++
		if s.Name == "route.middle" && s.Status == span.StatusBlocked {
			rejections++
			var hasMiddle, hasState bool
			for _, a := range s.Attrs {
				hasMiddle = hasMiddle || a.Key == "middle"
				hasState = hasState || a.Key == "state"
			}
			if !hasMiddle || !hasState {
				t.Fatalf("rejection span lacks middle/state attrs: %+v", s)
			}
		}
	}
	for _, want := range []string{"http POST /v1/connect", "switchd.connect", "fabric.add"} {
		if names[want] == 0 {
			t.Fatalf("trace %s missing span %q (have %v)", tid, want, names)
		}
	}
	if rejections == 0 {
		t.Fatalf("trace %s has no per-middle rejection spans: %+v", tid, tr.Spans)
	}

	// Join 2: the OpenMetrics exposition carries the trace id as an
	// exemplar on the connect-latency histogram.
	mresp, err := client.Get(srv.URL + "/metrics?exemplars=1")
	if err != nil {
		t.Fatalf("GET /metrics?exemplars=1: %v", err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != obs.ContentTypeOpenMetrics {
		t.Fatalf("Content-Type = %q, want OpenMetrics", ct)
	}
	pm, err := obs.ParseProm(mresp.Body)
	if err != nil {
		t.Fatalf("OpenMetrics exposition does not parse: %v", err)
	}
	foundExemplar := false
	for _, s := range pm["wdm_op_latency_seconds"].Samples {
		if s.Labels["op"] == "connect" && s.Exemplar.TraceID() == tid.String() {
			foundExemplar = true
			break
		}
	}
	if !foundExemplar {
		t.Fatalf("no connect-latency exemplar carries trace id %s", tid)
	}

	// Join 3: the forensics incident carries the same trace id next to
	// its structured BlockReport.
	incidents, _ := ctl.BlockIncidents()
	foundIncident := false
	for _, inc := range incidents {
		if inc.TraceID == tid.String() {
			foundIncident = true
			if inc.Report == nil {
				t.Fatalf("incident for trace %s has no block report", tid)
			}
		}
	}
	if !foundIncident {
		t.Fatalf("no blocking incident carries trace id %s", tid)
	}
}

// TestBlockLogConcurrentStress hammers the forensics ring from
// concurrent blocked connects while HTTP readers snapshot it — the
// -race referee for the ring buffer.
func TestBlockLogConcurrentStress(t *testing.T) {
	p := testParams()
	p.M = 1
	p.X = 1
	ctl := newTestController(t, Config{Fabric: p, Replicas: 1, Shards: 4, BlockLog: 64})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	mustConnect(t, ctl, "0.0>4.0", 0) // occupy the only middle's input link

	const writers, readers, iters = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Every attempt blocks (m=1 and the link is held) and
				// appends one incident.
				conn := mustParse(t, fmt.Sprintf("1.0>%d.0", 8+i%4))
				if _, _, err := ctl.Connect(context.Background(), conn, 0); err == nil {
					t.Error("connect unexpectedly routed at m=1")
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := srv.Client().Get(srv.URL + "/v1/debug/blocking")
				if err != nil {
					t.Errorf("GET /v1/debug/blocking: %v", err)
					return
				}
				var br blockingResponse
				if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
					t.Errorf("decode: %v", err)
				}
				resp.Body.Close()
				if len(br.Incidents) > 64 {
					t.Errorf("ring overflow: %d incidents > cap 64", len(br.Incidents))
				}
				for j := 1; j < len(br.Incidents); j++ {
					if br.Incidents[j].Seq <= br.Incidents[j-1].Seq {
						t.Errorf("incident seq not monotonic: %d then %d",
							br.Incidents[j-1].Seq, br.Incidents[j].Seq)
					}
				}
			}
		}()
	}
	wg.Wait()

	incidents, total := ctl.BlockIncidents()
	if total < writers*iters {
		t.Fatalf("total incidents %d < %d blocked connects", total, writers*iters)
	}
	if len(incidents) != 64 {
		t.Fatalf("ring holds %d incidents, want cap 64", len(incidents))
	}
}

// TestSLOHealthyAtBound is the SLO side of the nonblocking theorem: at
// the sufficient bound the availability SLI reads exactly 1 with zero
// burn on every window, and no alert fires.
func TestSLOHealthyAtBound(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 2, Shards: 8})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	rep, err := Attack(AttackConfig{
		BaseURL: srv.URL, Client: srv.Client(),
		Requests: 400, WorkersPerFabric: 2, TargetLive: 4, Seed: 11,
	})
	if err != nil {
		t.Fatalf("Attack: %v", err)
	}
	if rep.Blocked != 0 {
		t.Fatalf("blocked at the bound: %v", rep)
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/slo")
	if err != nil {
		t.Fatalf("GET /v1/slo: %v", err)
	}
	defer resp.Body.Close()
	var snap slo.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /v1/slo: %v", err)
	}
	if len(snap.Windows) == 0 || len(snap.Alerts) == 0 {
		t.Fatalf("snapshot missing windows or alerts: %+v", snap)
	}
	if snap.Windows[0].Total == 0 {
		t.Fatal("SLO engine recorded no operations")
	}
	for _, w := range snap.Windows {
		if w.Availability != 1 || w.AvailabilityBurn != 0 {
			t.Fatalf("window %s: availability %v burn %v; want exactly 1 and 0 at the bound",
				w.Window, w.Availability, w.AvailabilityBurn)
		}
		if w.Bad != 0 {
			t.Fatalf("window %s: %d bad ops at the bound", w.Window, w.Bad)
		}
	}
	for _, a := range snap.Alerts {
		if a.AvailabilityFiring {
			t.Fatalf("alert %s firing on availability at the bound", a.Name)
		}
	}

	// The Prometheus gauges agree.
	pm := scrapeProm(t, srv.Client(), srv.URL)
	for _, w := range snap.Windows {
		lbl := map[string]string{"window": w.Window}
		if v, ok := pm.Value("wdm_slo_availability", lbl); !ok || v != 1 {
			t.Fatalf("wdm_slo_availability{window=%q} = %v, %v; want 1", w.Window, v, ok)
		}
		if v, ok := pm.Value("wdm_slo_availability_burn", lbl); !ok || v != 0 {
			t.Fatalf("wdm_slo_availability_burn{window=%q} = %v, %v; want 0", w.Window, v, ok)
		}
	}
}

// TestSpansEndpointFilters covers the /v1/debug/spans query surface.
func TestSpansEndpointFilters(t *testing.T) {
	ctl := newTestController(t, Config{
		Fabric: testParams(), Replicas: 1, Shards: 4,
		Spans: span.Config{SampleEvery: 1},
	})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	client := srv.Client()

	for _, conn := range []string{"0.0>4.0", "1.0>8.0", "2.0>12.0"} {
		if resp := postConnect(t, client, srv.URL, conn, "", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("connect %q: status %d", conn, resp.StatusCode)
		}
	}

	all := fetchSpans(t, client, srv.URL, "")
	if all.Kept < 3 || len(all.Traces) < 3 {
		t.Fatalf("kept %d traces, listing %d; want >= 3", all.Kept, len(all.Traces))
	}
	if got := fetchSpans(t, client, srv.URL, "?limit=2"); len(got.Traces) != 2 {
		t.Fatalf("?limit=2 returned %d traces", len(got.Traces))
	}
	if got := fetchSpans(t, client, srv.URL, "?blocked=1"); len(got.Traces) != 0 {
		t.Fatalf("?blocked=1 returned %d traces with zero blocking", len(got.Traces))
	}
	if got := fetchSpans(t, client, srv.URL, "?trace="+span.NewTraceID().String()); len(got.Traces) != 0 {
		t.Fatalf("unknown trace id matched %d traces", len(got.Traces))
	}
	resp, err := client.Get(srv.URL + "/v1/debug/spans?limit=x")
	if err != nil {
		t.Fatalf("GET ?limit=x: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?limit=x: status %d, want 400", resp.StatusCode)
	}
}
