package switchd

import (
	"sync"
	"time"

	"repro/internal/multistage"
	"repro/internal/trace"
	"repro/internal/wdm"
)

// Blocking forensics and live trace capture. A blocked request at
// sufficient m is a theorem violation; below the bound it is an expected
// event worth a post-mortem. Either way the controller keeps two
// artifacts:
//
//   - a ring buffer of the last N BlockIncidents, each carrying the
//     fabric's structured BlockReport (which middle modules were tried,
//     which link wavelength was busy, the occupancy snapshot) — served
//     at GET /v1/debug/blocking;
//   - optionally, the full per-fabric serving history in the
//     internal/trace line format — served at GET /v1/debug/trace — so
//     a live incident replays offline with wdmtrace against any
//     parameter set.

// BlockIncident is one blocked Connect or AddBranch, as kept in the
// forensics ring buffer.
type BlockIncident struct {
	// Seq numbers incidents monotonically from 1; the ring holds the
	// highest Seq values.
	Seq    int64     `json:"seq"`
	Time   time.Time `json:"time"`
	Op     string    `json:"op"` // connect | branch
	Fabric int       `json:"fabric"`
	// TraceID joins the incident to its trace at /v1/debug/spans (empty
	// for untraced requests).
	TraceID string                  `json:"trace_id,omitempty"`
	Session uint64                  `json:"session,omitempty"` // for branch: the session that failed to grow
	Conn    string                  `json:"connection"`
	Error   string                  `json:"error"`
	Report  *multistage.BlockReport `json:"report,omitempty"`
}

// blockLog is a fixed-capacity ring of the most recent incidents.
type blockLog struct {
	mu   sync.Mutex
	ring []BlockIncident
	cap  int
	seq  int64
}

func newBlockLog(capacity int) *blockLog {
	if capacity <= 0 {
		return nil
	}
	return &blockLog{cap: capacity}
}

func (l *blockLog) record(inc BlockIncident) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	inc.Seq = l.seq
	if len(l.ring) < l.cap {
		l.ring = append(l.ring, inc)
	} else {
		copy(l.ring, l.ring[1:])
		l.ring[len(l.ring)-1] = inc
	}
	return inc.Seq
}

// snapshot returns the buffered incidents oldest-first and the total
// ever recorded.
func (l *blockLog) snapshot() ([]BlockIncident, int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]BlockIncident, len(l.ring))
	copy(out, l.ring)
	return out, l.seq
}

// BlockIncidents returns the buffered incidents oldest-first and the
// total number of blocking events recorded since start (which may
// exceed the buffer length). With forensics disabled both are zero.
func (ctl *Controller) BlockIncidents() ([]BlockIncident, int64) {
	return ctl.blockLog.snapshot()
}

// traceCap captures one fabric's serving history as a replayable trace.
// It is guarded by the owning fabric's mutex — every event is recorded
// inside the same critical section as the fabric operation it mirrors,
// so the trace order IS the serialization order the fabric saw.
type traceCap struct {
	trace  trace.Trace
	ids    map[int]int // fabric connection id -> trace-local id
	nextID int
}

func newTraceCap() *traceCap {
	return &traceCap{ids: make(map[int]int)}
}

// add records one Add outcome; connID is meaningful only for ok.
func (tc *traceCap) add(c wdm.Connection, connID int, err error) {
	if tc == nil {
		return
	}
	ev := trace.Event{Op: trace.Add, Conn: c.Clone()}
	switch {
	case err == nil:
		ev.Outcome = trace.OK
		ev.ID = tc.nextID
		tc.ids[connID] = tc.nextID
		tc.nextID++
	case multistage.IsBlocked(err):
		ev.Outcome = trace.Blocked
	default:
		ev.Outcome = trace.Rejected
	}
	tc.trace.Events = append(tc.trace.Events, ev)
}

// release records one successful Release.
func (tc *traceCap) release(connID int) {
	if tc == nil {
		return
	}
	tc.trace.Events = append(tc.trace.Events, trace.Event{Op: trace.Release, ID: tc.ids[connID]})
	delete(tc.ids, connID)
}

// migrate records a failure-plane live migration in add/release
// vocabulary: the fabric re-routed the connection under a stable id, so
// the equivalent trace is release old; add same connection ok=new. A
// replay routes the re-add with the then-current occupancy, which is
// exactly the failure-plane situation being reproduced.
func (tc *traceCap) migrate(connID int, c wdm.Connection) {
	if tc == nil {
		return
	}
	tc.trace.Events = append(tc.trace.Events, trace.Event{Op: trace.Release, ID: tc.ids[connID]})
	delete(tc.ids, connID)
	tc.add(c, connID, nil)
}

// branch records an AddBranch in add/release vocabulary. The fabric
// implements a branch as release + add(grown) under a stable id,
// restoring the original on a blocked grow, so the equivalent trace is:
//
//	ok:      release old; add grown ok=new
//	blocked: release old; add grown blocked; add original ok=new
//
// (a rejected branch leaves the fabric untouched and records nothing).
// On the blocked path the fabric reinstalls the exact original route
// while a replay re-routes the original from scratch; the router is
// deterministic, but the re-route may differ from the reinstalled
// route, and Replay's divergence report flags any case where that
// matters.
func (tc *traceCap) branch(connID int, original, grown wdm.Connection, err error) {
	if tc == nil {
		return
	}
	if err != nil && !multistage.IsBlocked(err) {
		return
	}
	tc.trace.Events = append(tc.trace.Events, trace.Event{Op: trace.Release, ID: tc.ids[connID]})
	delete(tc.ids, connID)
	if err == nil {
		tc.add(grown, connID, nil)
		return
	}
	tc.trace.Events = append(tc.trace.Events, trace.Event{Op: trace.Add, Conn: grown.Clone(), Outcome: trace.Blocked})
	tc.add(original, connID, nil)
}

// Trace returns a snapshot of a fabric's captured serving history. It
// reports false when the fabric index is out of range or capture is
// disabled (Config.CaptureTrace unset).
func (ctl *Controller) Trace(fabric int) (*trace.Trace, bool) {
	if fabric < 0 || fabric >= len(ctl.fabrics) {
		return nil, false
	}
	f := ctl.fabrics[fabric]
	if f.cap == nil {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &trace.Trace{Events: make([]trace.Event, len(f.cap.trace.Events))}
	copy(t.Events, f.cap.trace.Events)
	return t, true
}
