package switchd

import (
	"context"
	"fmt"

	"repro/internal/durable"
	"repro/internal/multistage"
	"repro/internal/obs/span"
	"repro/internal/switchd/api"
)

// Controller failure plane. The nonblocking margin is also the
// fault-tolerance budget: every middle module above the Theorem 1/2
// sufficient bound is spare capacity, and m = bound + f tolerates any f
// simultaneous middle failures with zero dropped sessions (the
// multistage failure tests assert the fabric half of that claim; the
// chaos tests assert it end to end over HTTP).
//
// FailMiddle spends the budget: it marks the module failed, re-routes
// every session riding it onto the spares in place — fabric connection
// ids, and therefore session ids, survive the move — and mirrors the
// move into the session table, the trace capture, the span tracer, and
// the metrics. When failures eat through the spare margin the
// controller degrades: the admission cap is derated in proportion to
// the surviving middle capacity of each plane, so the fraction of
// traffic the weakened fabric can still serve nonblocking is the
// fraction admission lets in.

// FailMiddle marks middle module `middle` of fabric plane `plane` as
// failed and live-migrates every session riding it. Sessions that no
// spare capacity can carry are dropped (released and removed from the
// table). Failure-plane operations are serialized by failMu; each takes
// the target plane's fabric lock for the mark-and-migrate itself, so
// serving on other planes is never stalled.
func (ctl *Controller) FailMiddle(ctx context.Context, plane, middle int) (api.FailReport, error) {
	_, sp := span.Start(ctx, "switchd.fail_middle")
	defer sp.End()
	sp.SetAttr("fabric", plane)
	sp.SetAttr("middle", middle)

	if plane < 0 || plane >= len(ctl.fabrics) {
		err := &api.Error{Code: api.CodeNotFound, Message: fmt.Sprintf("fabric %d out of range (have %d)", plane, len(ctl.fabrics))}
		sp.SetError(err.Error())
		return api.FailReport{}, err
	}
	ctl.failMu.Lock()
	defer ctl.failMu.Unlock()

	f := ctl.fabrics[plane]
	var (
		migrations []multistage.Migration
		droppedIDs []int
		failedNow  int
		opErr      error
		walErr     error
	)
	func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		if err := f.net.FailMiddle(middle); err != nil {
			opErr = &api.Error{Code: api.CodeNotFound, Message: err.Error()}
			return
		}
		migrations, droppedIDs, opErr = f.net.RerouteAroundReport(middle)
		for _, mig := range migrations {
			if c, ok := f.net.Connection(mig.ID); ok {
				f.cap.migrate(mig.ID, c)
			}
		}
		for _, id := range droppedIDs {
			f.cap.release(id)
		}
		failedNow = len(f.net.FailedMiddles())
		// Journal while still holding the fabric lock: a connect
		// admitted after this failure may reuse slots the dropped
		// sessions freed, and its record must land after this one.
		if ctl.wal != nil && opErr == nil {
			rec := ctl.buildFailRecordLocked(f, plane, middle, migrations, droppedIDs)
			walErr = ctl.walAppend(sp, nil, rec)
		}
	}()
	if opErr != nil {
		sp.SetError(opErr.Error())
		if _, ok := opErr.(*api.Error); ok {
			return api.FailReport{}, opErr
		}
		// A re-route bookkeeping failure is a controller invariant
		// violation, not a client error; surface it loudly.
		return api.FailReport{}, fmt.Errorf("switchd: re-routing around fabric %d middle %d: %w", plane, middle, opErr)
	}

	// Publish the new failed count before touching the session table so
	// admission and routing stop considering the module immediately.
	f.failedMids.Store(int32(failedNow))
	ctl.metrics.perFabric[plane].failedMiddles.Store(int64(failedNow))
	ctl.recomputeDegradedLocked()

	// Mirror the migration into the session table. The fabric lock is
	// released; lock order stays shard -> fabric. Fabric connection ids
	// are never reused, so matching by (plane, ConnID) cannot confuse a
	// concurrent new session with a migrated or dropped one.
	migratedSet := make(map[int]*multistage.Migration, len(migrations))
	for i := range migrations {
		migratedSet[migrations[i].ID] = &migrations[i]
	}
	droppedSet := make(map[int]bool, len(droppedIDs))
	for _, id := range droppedIDs {
		droppedSet[id] = true
	}
	rep := api.FailReport{Fabric: plane, Middle: middle, Affected: len(migrations) + len(droppedIDs)}
	for _, sh := range ctl.sessions.shards {
		sh.mu.Lock()
		for id, s := range sh.m {
			if s.Fabric != plane {
				continue
			}
			if mig, ok := migratedSet[s.ConnID]; ok {
				s.Migrations++
				rep.Migrated = append(rep.Migrated, id)
				msp := sp.StartChild("session.migrate")
				msp.SetAttr("session", id)
				msp.SetAttr("from", mig.From)
				msp.SetAttr("to", mig.To)
				msp.End()
				continue
			}
			if droppedSet[s.ConnID] {
				delete(sh.m, id)
				ctl.active.Add(-1)
				ctl.admitted.Add(-1)
				ctl.metrics.perFabric[plane].active.Add(-1)
				rep.Dropped = append(rep.Dropped, id)
				dsp := sp.StartChild("session.drop")
				dsp.SetAttr("session", id)
				dsp.SetError("no spare middle capacity")
				dsp.End()
			}
		}
		sh.mu.Unlock()
	}
	ctl.metrics.migrated.Add(int64(len(rep.Migrated)))
	ctl.metrics.dropped.Add(int64(len(rep.Dropped)))
	rep.Health = ctl.Health()
	ctl.logger.Info("middle module failed",
		"fabric", plane, "middle", middle,
		"migrated", len(rep.Migrated), "dropped", len(rep.Dropped),
		"health", rep.Health.Status, "effective_max", rep.Health.EffectiveMaxSessions)
	if walErr != nil {
		// The failure and migration applied; the durable log did not
		// record them. Surface storage_failed — the in-memory state is
		// authoritative until restart, and the poisoned log fails every
		// later mutation anyway.
		sp.SetError(walErr.Error())
		return api.FailReport{}, walErr
	}
	return rep, nil
}

// RepairMiddle returns a failed middle module to service and lifts
// whatever share of the admission derating it caused.
func (ctl *Controller) RepairMiddle(ctx context.Context, plane, middle int) (api.RepairReport, error) {
	_, sp := span.Start(ctx, "switchd.repair_middle")
	defer sp.End()
	sp.SetAttr("fabric", plane)
	sp.SetAttr("middle", middle)

	if plane < 0 || plane >= len(ctl.fabrics) {
		err := &api.Error{Code: api.CodeNotFound, Message: fmt.Sprintf("fabric %d out of range (have %d)", plane, len(ctl.fabrics))}
		sp.SetError(err.Error())
		return api.RepairReport{}, err
	}
	ctl.failMu.Lock()
	defer ctl.failMu.Unlock()

	f := ctl.fabrics[plane]
	var failedNow int
	var opErr, walErr error
	func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		if err := f.net.RepairMiddle(middle); err != nil {
			opErr = &api.Error{Code: api.CodeNotFound, Message: err.Error()}
			return
		}
		failedNow = len(f.net.FailedMiddles())
		// Journal under the fabric lock so any connect routed through
		// the repaired module appends after the repair record.
		if ctl.wal != nil {
			walErr = ctl.walAppend(sp, nil, &durable.Record{Op: durable.OpRepair, Fabric: plane, Middle: middle})
		}
	}()
	if opErr != nil {
		sp.SetError(opErr.Error())
		return api.RepairReport{}, opErr
	}
	if walErr != nil {
		sp.SetError(walErr.Error())
		return api.RepairReport{}, walErr
	}
	f.failedMids.Store(int32(failedNow))
	ctl.metrics.perFabric[plane].failedMiddles.Store(int64(failedNow))
	ctl.recomputeDegradedLocked()
	rep := api.RepairReport{Fabric: plane, Middle: middle, Health: ctl.Health()}
	ctl.logger.Info("middle module repaired",
		"fabric", plane, "middle", middle,
		"health", rep.Health.Status, "effective_max", rep.Health.EffectiveMaxSessions)
	return rep, nil
}

// recomputeDegradedLocked recomputes the degraded flag and the
// effective admission cap from the per-plane failed counts. Caller
// holds failMu.
//
// Derating model: the reference capacity of a plane is
// min(m, sufficient bound) working middles — a plane provisioned above
// the bound has spares, and spares absorb failures for free; a plane at
// or below the bound loses serving headroom with every failure. Each
// plane keeps the fraction eff/reference (capped at 1) of its share of
// the configured cap. With MaxSessions unlimited the derating still
// needs a base to derate from; replicas*N*K (every input slot of every
// plane lit) is the physical ceiling and serves as that base, so an
// unlimited controller stays unlimited until the first failure bites
// into a bound.
func (ctl *Controller) recomputeDegradedLocked() {
	planes := len(ctl.fabrics)
	reference := ctl.params.M
	if ctl.suffM < reference {
		reference = ctl.suffM
	}
	if reference < 1 {
		reference = 1
	}
	base := ctl.cfg.MaxSessions
	unlimited := base <= 0
	if unlimited {
		base = planes * ctl.params.N * ctl.params.K
	}
	anyFailed := false
	derated := false
	total := 0
	for i := range ctl.fabrics {
		failed := int(ctl.fabrics[i].failedMids.Load())
		if failed > 0 {
			anyFailed = true
		}
		eff := ctl.params.M - failed
		share := base / planes
		if i < base%planes {
			share++
		}
		if eff >= reference {
			total += share
			continue
		}
		derated = true
		total += share * eff / reference
	}
	ctl.degraded.Store(anyFailed)
	switch {
	case unlimited && !derated:
		ctl.effectiveCap.Store(0)
	default:
		ctl.effectiveCap.Store(int64(total))
	}
}

// EffectiveMaxSessions returns the admission cap currently enforced
// (0 = unlimited). It equals Config.MaxSessions unless degraded-mode
// derating has pulled it down.
func (ctl *Controller) EffectiveMaxSessions() int { return int(ctl.effectiveCap.Load()) }

// Degraded reports whether any middle module is currently failed.
func (ctl *Controller) Degraded() bool { return ctl.degraded.Load() }

// Health snapshots the failure plane: per-plane failed middle modules,
// the effective admission cap, and the ok/degraded/critical rollup.
func (ctl *Controller) Health() api.Health {
	h := api.Health{
		Status:               api.HealthOK,
		Degraded:             ctl.degraded.Load(),
		M:                    ctl.params.M,
		SufficientM:          ctl.suffM,
		MigratedSessions:     ctl.metrics.migrated.Load(),
		DroppedSessions:      ctl.metrics.dropped.Load(),
		MaxSessions:          ctl.cfg.MaxSessions,
		EffectiveMaxSessions: int(ctl.effectiveCap.Load()),
	}
	for i, f := range ctl.fabrics {
		var failed []int
		func() {
			f.mu.Lock()
			defer f.mu.Unlock()
			failed = f.net.FailedMiddles()
		}()
		fh := api.FabricHealth{
			Replica:       i,
			FailedMiddles: failed,
			EffectiveM:    ctl.params.M - len(failed),
			Status:        api.HealthOK,
		}
		if len(failed) > 0 {
			fh.Status = api.HealthDegraded
			h.FailedMiddles += len(failed)
		}
		if fh.EffectiveM <= 0 {
			fh.Status = api.HealthCritical
		}
		if fh.Status == api.HealthCritical {
			h.Status = api.HealthCritical
		} else if fh.Status == api.HealthDegraded && h.Status == api.HealthOK {
			h.Status = api.HealthDegraded
		}
		h.Fabrics = append(h.Fabrics, fh)
	}
	if d := ctl.durabilityHealth(); d != nil {
		h.Durability = d
		// A poisoned log means every mutation 503s even though the
		// fabric is fine — that is a degraded controller.
		if !d.Healthy && h.Status == api.HealthOK {
			h.Status = api.HealthDegraded
		}
	}
	h.Replication = ctl.replicationHealth()
	h.Federation = ctl.federationHealth()
	for _, p := range h.Federation {
		// A down peer means federated views (fleet metrics, fleet range
		// queries) are incomplete — degraded, not critical: this
		// instance itself still serves.
		if !p.Up && h.Status == api.HealthOK {
			h.Status = api.HealthDegraded
			break
		}
	}
	return h
}
