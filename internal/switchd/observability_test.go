package switchd

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/multistage"
	"repro/internal/trace"
	"repro/internal/wdm"
)

// TestPromEndpointCrossCheck drives a small lifecycle and asserts the
// Prometheus exposition round-trips through the strict parser and
// agrees with the JSON snapshot on every shared counter.
func TestPromEndpointCrossCheck(t *testing.T) {
	cfg := Config{Fabric: testParams(), Replicas: 2,
		DataDir: t.TempDir(), WALSyncDelay: -1, SnapshotInterval: -1}
	ctl := newTestController(t, cfg)
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	id := mustConnect(t, ctl, "0.0>5.0,9.0", 0)
	if err := ctl.AddBranch(context.Background(), id, wdm.PortWave{Port: 12, Wave: 0}); err != nil {
		t.Fatal(err)
	}
	id2 := mustConnect(t, ctl, "1.0>6.0", 1)
	if err := ctl.Disconnect(context.Background(), id2); err != nil {
		t.Fatal(err)
	}

	pm := scrapeProm(t, srv.Client(), srv.URL)
	snap := ctl.Metrics().Snapshot()

	for _, tc := range []struct {
		metric string
		want   float64
	}{
		{"wdm_connect_total", float64(snap.ConnectOK)},
		{"wdm_branch_total", float64(snap.BranchOK)},
		{"wdm_disconnect_total", float64(snap.DisconnectOK)},
		{"wdm_blocked_total", 0},
		{"wdm_active_sessions", 1},
	} {
		if v, ok := pm.Value(tc.metric, nil); !ok || v != tc.want {
			t.Errorf("%s = %v, %v; want %v", tc.metric, v, ok, tc.want)
		}
	}
	// Per-fabric series: plane 0 holds the live session, plane 1 is
	// empty again.
	if v, ok := pm.Value("wdm_fabric_active", map[string]string{"fabric": "0"}); !ok || v != 1 {
		t.Errorf("wdm_fabric_active{fabric=0} = %v, %v; want 1", v, ok)
	}
	if v, ok := pm.Value("wdm_fabric_routed_total", map[string]string{"fabric": "1"}); !ok || v != 1 {
		t.Errorf("wdm_fabric_routed_total{fabric=1} = %v, %v; want 1", v, ok)
	}
	// Histogram count per op must equal the op counters (connect: 2,
	// branch: 1, disconnect: 1).
	for _, op := range []struct {
		name string
		want float64
	}{{"connect", 2}, {"branch", 1}, {"disconnect", 1}} {
		if v, ok := pm.Value("wdm_op_latency_seconds_count", map[string]string{"op": op.name}); !ok || v != op.want {
			t.Errorf("op latency count{op=%s} = %v, %v; want %v", op.name, v, ok, op.want)
		}
	}
	// The occupied plane's link gauges reflect the live 3-fanout
	// multicast: at least one busy link wavelength per stage.
	if v, ok := pm.Value("wdm_link_busy", map[string]string{"fabric": "0", "stage": "in"}); !ok || v < 1 {
		t.Errorf("wdm_link_busy{fabric=0,stage=in} = %v, %v; want >= 1", v, ok)
	}
	if v, ok := pm.Value("wdm_link_busy_ratio", map[string]string{"fabric": "1", "stage": "out"}); !ok || v != 0 {
		t.Errorf("wdm_link_busy_ratio{fabric=1,stage=out} = %v, %v; want 0", v, ok)
	}
	// Durable-plane series: one meta record plus the four mutations
	// above, each fsynced before ack, on a healthy log with nothing
	// recovered (fresh directory).
	walStats := ctl.WAL().Stats()
	for _, tc := range []struct {
		metric string
		want   float64
	}{
		{"wdm_wal_appends_total", 5},
		{"wdm_wal_last_seq", float64(walStats.LastSeq)},
		{"wdm_wal_synced_seq", float64(walStats.LastSeq)},
		{"wdm_wal_healthy", 1},
		{"wdm_recovered_sessions_total", 0},
	} {
		if v, ok := pm.Value(tc.metric, nil); !ok || v != tc.want {
			t.Errorf("%s = %v, %v; want %v", tc.metric, v, ok, tc.want)
		}
	}
	if v, ok := pm.Value("wdm_wal_fsyncs_total", nil); !ok || v < 5 {
		t.Errorf("wdm_wal_fsyncs_total = %v, %v; want >= 5 (immediate sync mode)", v, ok)
	}
	if v, ok := pm.Value("wdm_wal_fsync_seconds_count", nil); !ok || v < 5 {
		t.Errorf("wdm_wal_fsync_seconds_count = %v, %v; want >= 5", v, ok)
	}
	// No checkpoint yet, so the snapshot-age series must be absent;
	// after an explicit checkpoint it must appear fresh.
	if v, ok := pm.Value("wdm_snapshot_age_seconds", nil); ok {
		t.Errorf("wdm_snapshot_age_seconds = %v before first snapshot, want absent", v)
	}
	if err := ctl.WriteSnapshot(); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	pm = scrapeProm(t, srv.Client(), srv.URL)
	if v, ok := pm.Value("wdm_snapshot_age_seconds", nil); !ok || v < 0 || v > 60 {
		t.Errorf("wdm_snapshot_age_seconds = %v, %v; want fresh", v, ok)
	}
	if v, ok := pm.Value("wdm_snapshot_last_seq", nil); !ok || v != float64(walStats.LastSeq) {
		t.Errorf("wdm_snapshot_last_seq = %v, %v; want %d", v, ok, walStats.LastSeq)
	}
}

// TestMetricsJSONBounds asserts the JSON snapshot labels its histogram
// bucket bounds so clients need not hard-code them.
func TestMetricsJSONBounds(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams()})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.RouteBoundsUs) != len(routeBucketsMicros) {
		t.Fatalf("route_latency_bounds_us has %d entries, want %d", len(snap.RouteBoundsUs), len(routeBucketsMicros))
	}
	for i, us := range routeBucketsMicros {
		if snap.RouteBoundsUs[i] != us {
			t.Fatalf("bound %d = %d, want %d", i, snap.RouteBoundsUs[i], us)
		}
	}
	if len(snap.Ops) != 3 {
		t.Fatalf("ops = %d entries, want connect/branch/disconnect", len(snap.Ops))
	}
	for _, op := range snap.Ops {
		if len(op.Buckets) != len(routeBucketsMicros)+1 {
			t.Fatalf("op %s has %d buckets, want %d", op.Op, len(op.Buckets), len(routeBucketsMicros)+1)
		}
	}
}

// belowBoundParams is a configuration that blocks readily: m far below
// the Theorem 1 bound with the split limit pinned to 1.
func belowBoundParams() multistage.Params {
	p := testParams()
	p.M = 3
	p.X = 1
	return p
}

// driveUntilBlocked issues admissible traffic until the controller
// records a blocking event (sessions are deliberately never released, so
// the fabric fills until it blocks).
func driveUntilBlocked(t *testing.T, ctl *Controller) {
	t.Helper()
	p := ctl.Params()
	for src := 0; src < p.N; src++ {
		for dst := 0; dst < p.N; dst++ {
			if dst == src {
				continue
			}
			c := wdm.Connection{
				Source: wdm.PortWave{Port: wdm.Port(src), Wave: 0},
				Dests:  []wdm.PortWave{{Port: wdm.Port(dst), Wave: 0}},
			}
			_, _, err := ctl.Connect(context.Background(), c, 0)
			if multistage.IsBlocked(err) {
				return
			}
			if err == nil {
				break // source slot now busy; move to the next source
			}
		}
	}
	if ctl.Metrics().Blocked() == 0 {
		t.Fatal("could not provoke a blocking event below the bound")
	}
}

// TestDebugBlockingEndpoint forces blocking below the bound and asserts
// the forensics endpoint serves structured reports for it.
func TestDebugBlockingEndpoint(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: belowBoundParams(), Replicas: 1})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	driveUntilBlocked(t, ctl)

	resp, err := srv.Client().Get(srv.URL + "/v1/debug/blocking")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/blocking: status %d", resp.StatusCode)
	}
	var got blockingResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Total < 1 || len(got.Incidents) < 1 {
		t.Fatalf("blocking response = total %d, %d incidents; want >= 1", got.Total, len(got.Incidents))
	}
	inc := got.Incidents[len(got.Incidents)-1]
	if inc.Op != "connect" || inc.Conn == "" || inc.Error == "" {
		t.Fatalf("incident = %+v, want populated connect incident", inc)
	}
	if inc.Report == nil || len(inc.Report.Middles) == 0 {
		t.Fatalf("incident carries no forensic report: %+v", inc)
	}
	for _, md := range inc.Report.Middles {
		if md.State == "" {
			t.Fatalf("middle %d has no diagnosis: %+v", md.Middle, md)
		}
	}
}

// TestBlockLogRing asserts the ring keeps only the newest incidents and
// that a negative capacity disables the endpoint.
func TestBlockLogRing(t *testing.T) {
	l := newBlockLog(2)
	for i := 0; i < 3; i++ {
		l.record(BlockIncident{Op: "connect"})
	}
	incidents, total := l.snapshot()
	if total != 3 || len(incidents) != 2 {
		t.Fatalf("ring = %d incidents, total %d; want 2 kept of 3", len(incidents), total)
	}
	if incidents[0].Seq != 2 || incidents[1].Seq != 3 {
		t.Fatalf("ring seqs = %d,%d; want 2,3 (oldest dropped)", incidents[0].Seq, incidents[1].Seq)
	}

	ctl := newTestController(t, Config{Fabric: testParams(), BlockLog: -1})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/debug/blocking")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled forensics: status %d, want 404", resp.StatusCode)
	}
}

// TestTraceCaptureReplay is the acceptance path end to end: run live
// traffic below the bound until it blocks, fetch the captured trace over
// HTTP, and replay it against a fresh fabric of the same parameters —
// the replay must reproduce the exact same outcomes, blocked request
// included. This is what turns a serving-mode incident into a wdmtrace
// regression artifact.
func TestTraceCaptureReplay(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: belowBoundParams(), Replicas: 1, CaptureTrace: true})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	rep, err := Attack(AttackConfig{
		BaseURL:          srv.URL,
		Client:           srv.Client(),
		Requests:         2000,
		WorkersPerFabric: 2,
		TargetLive:       6,
		Seed:             7,
	})
	if err != nil {
		t.Fatalf("Attack: %v", err)
	}
	if rep.Server.Blocked == 0 {
		t.Fatalf("no blocking below the bound (report: %v)", rep)
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/debug/trace?fabric=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/trace: status %d", resp.StatusCode)
	}
	tr, err := trace.Read(resp.Body)
	if err != nil {
		t.Fatalf("served trace does not parse: %v", err)
	}

	blocked := 0
	for _, ev := range tr.Events {
		if ev.Op == trace.Add && ev.Outcome == trace.Blocked {
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatal("captured trace holds no blocked event")
	}
	if int64(blocked) != rep.Server.Blocked {
		t.Fatalf("trace holds %d blocked events, server counted %d", blocked, rep.Server.Blocked)
	}

	// Replay against a fresh fabric of identical parameters: the router
	// is deterministic, so every outcome — including each blocked add —
	// must reproduce exactly.
	fresh, err := multistage.New(ctl.Params())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Replay(fresh, multistage.IsBlocked)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(res.Divergence) != 0 {
		t.Fatalf("replay diverged at %d events: %v", len(res.Divergence), res.Divergence)
	}
	_, replayBlocked := fresh.Stats()
	if int(replayBlocked) != blocked {
		t.Fatalf("replay produced %d blocked events, recording had %d", replayBlocked, blocked)
	}
}

// TestTraceDisabled: without CaptureTrace the endpoint 404s.
func TestTraceDisabled(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams()})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace without capture: status %d, want 404", resp.StatusCode)
	}
	if _, ok := ctl.Trace(0); ok {
		t.Fatal("Trace(0) reported ok with capture disabled")
	}
}

// TestTraceCapturesBranch asserts the branch decomposition: a grown
// session appears as release+add, and the captured trace replays
// cleanly.
func TestTraceCapturesBranch(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 1, CaptureTrace: true})
	id := mustConnect(t, ctl, "0.0>5.0", 0)
	if err := ctl.AddBranch(context.Background(), id, wdm.PortWave{Port: 9, Wave: 0}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Disconnect(context.Background(), id); err != nil {
		t.Fatal(err)
	}

	tr, ok := ctl.Trace(0)
	if !ok {
		t.Fatal("Trace(0) not available")
	}
	// add original; release; add grown; release = 4 events.
	if len(tr.Events) != 4 {
		t.Fatalf("trace has %d events, want 4: %+v", len(tr.Events), tr.Events)
	}
	if tr.Events[2].Op != trace.Add || wdm.FormatConnection(tr.Events[2].Conn) != "0.0>5.0,9.0" {
		t.Fatalf("grown add = %+v, want 0.0>5.0,9.0", tr.Events[2])
	}

	fresh, err := multistage.New(ctl.Params())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Replay(fresh, multistage.IsBlocked)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergence) != 0 || fresh.Len() != 0 {
		t.Fatalf("branch trace replay: %d divergences, %d live connections; want 0, 0",
			len(res.Divergence), fresh.Len())
	}
}

// TestHistQuantileMicros pins the interpolation estimator.
func TestHistQuantileMicros(t *testing.T) {
	// 10 observations <= 1µs, 10 in (1,2]µs: p50 at the bucket edge, p75
	// midway into the second bucket.
	buckets := []LatencyBucket{
		{LEMicros: 1, Count: 10},
		{LEMicros: 2, Count: 10},
		{LEMicros: 5, Count: 0},
		{LEMicros: 0, Count: 0}, // overflow
	}
	if got := HistQuantileMicros(buckets, 0.50); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := HistQuantileMicros(buckets, 0.75); got != 1.5 {
		t.Fatalf("p75 = %v, want 1.5", got)
	}
	if got := HistQuantileMicros(nil, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// All mass in the overflow bucket: clamp to the largest finite bound.
	over := []LatencyBucket{{LEMicros: 1, Count: 0}, {LEMicros: 0, Count: 4}}
	if got := HistQuantileMicros(over, 0.99); got != 1 {
		t.Fatalf("overflow-only p99 = %v, want 1 (largest finite bound)", got)
	}
}

// TestTraceCommentHeader: the served trace opens with replayable
// parameter comments.
func TestTraceCommentHeader(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 1, CaptureTrace: true})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	mustConnect(t, ctl, "0.0>5.0", 0)

	resp, err := srv.Client().Get(srv.URL + "/v1/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if !strings.HasPrefix(body, "# wdmserve live trace") {
		t.Fatalf("trace body missing header:\n%s", body)
	}
	if !strings.Contains(body, "wdmtrace -replay") || !strings.Contains(body, "add 0.0>5.0 ok=0") {
		t.Fatalf("trace body missing replay hint or event:\n%s", body)
	}
}
