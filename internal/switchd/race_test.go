//go:build race

package switchd

// raceEnabled gates allocation-count assertions: race instrumentation
// allocates on its own schedule, so AllocsPerRun is meaningless under
// -race (the stdlib skips its alloc tests the same way).
const raceEnabled = true
