//go:build !race

package switchd

const raceEnabled = false
