package switchd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/multistage"
	"repro/internal/obs"
	"repro/internal/switchd/api"
	"repro/internal/traffic"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// testParams is the small fabric most tests run against: MSW model,
// MSW-dominant construction, N=16 k=2 r=4, middle stage defaulted to
// the Theorem 1 sufficient bound.
func testParams() multistage.Params {
	return multistage.Params{
		N: 16, K: 2, R: 4,
		Model:        wdm.MSW,
		Construction: multistage.MSWDominant,
		Lite:         true,
	}
}

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	if cfg.Logger == nil {
		// Below-bound tests block on purpose; keep the warnings out of
		// the test output.
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctl, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return ctl
}

func mustConnect(t *testing.T, ctl *Controller, conn string, pin int) uint64 {
	t.Helper()
	c, err := wdm.ParseConnection(conn)
	if err != nil {
		t.Fatalf("ParseConnection(%q): %v", conn, err)
	}
	id, _, err := ctl.Connect(context.Background(), c, pin)
	if err != nil {
		t.Fatalf("Connect(%q): %v", conn, err)
	}
	return id
}

func TestConnectBranchDisconnect(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 2})

	id := mustConnect(t, ctl, "0.0>5.0,9.0", -1)
	if got := ctl.ActiveSessions(); got != 1 {
		t.Fatalf("ActiveSessions = %d, want 1", got)
	}
	info, ok := ctl.Session(id)
	if !ok || info.Fanout != 2 {
		t.Fatalf("Session(%d) = %+v, %v; want fanout 2", id, info, ok)
	}

	// Grow by one receiver; the session keeps its id and reports the
	// enlarged fanout.
	if err := ctl.AddBranch(context.Background(), id, wdm.PortWave{Port: 12, Wave: 0}); err != nil {
		t.Fatalf("AddBranch: %v", err)
	}
	info, ok = ctl.Session(id)
	if !ok || info.Fanout != 3 || info.Branches != 1 {
		t.Fatalf("after branch: Session = %+v, %v; want fanout 3, 1 branch", info, ok)
	}

	// The freed slots are reusable after disconnect.
	if err := ctl.Disconnect(context.Background(), id); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	if got := ctl.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions after disconnect = %d, want 0", got)
	}
	mustConnect(t, ctl, "0.0>5.0,9.0,12.0", -1)

	if b := ctl.Metrics().Blocked(); b != 0 {
		t.Fatalf("blocked = %d, want 0", b)
	}
}

func TestConnectErrors(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 2})
	mustConnect(t, ctl, "0.0>5.0", 0)

	// Same source slot on the same plane: inadmissible, not blocked.
	c, _ := wdm.ParseConnection("0.0>7.0")
	if _, _, err := ctl.Connect(context.Background(), c, 0); err == nil || multistage.IsBlocked(err) {
		t.Fatalf("reusing busy source: err = %v, want inadmissible error", err)
	}
	// The same slots on the *other* plane are free: planes are
	// independent fabrics.
	if _, _, err := ctl.Connect(context.Background(), c, 1); err != nil {
		t.Fatalf("fresh plane rejected: %v", err)
	}

	// Out-of-range pin.
	if _, _, err := ctl.Connect(context.Background(), mustParse(t, "1.0>6.0"), 99); err == nil {
		t.Fatal("pin 99 accepted, want error")
	}

	if _, ok := ctl.Session(12345); ok {
		t.Fatal("Session(12345) reported ok for unknown id")
	}
	if err := ctl.Disconnect(context.Background(), 12345); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("Disconnect(12345) = %v, want ErrUnknownSession", err)
	}
	if err := ctl.AddBranch(context.Background(), 12345, wdm.PortWave{Port: 3, Wave: 0}); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("AddBranch(12345) = %v, want ErrUnknownSession", err)
	}
}

func mustParse(t *testing.T, s string) wdm.Connection {
	t.Helper()
	c, err := wdm.ParseConnection(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAdmissionCap(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 1, MaxSessions: 2})
	mustConnect(t, ctl, "0.0>5.0", -1)
	mustConnect(t, ctl, "1.0>6.0", -1)
	_, _, err := ctl.Connect(context.Background(), mustParse(t, "2.0>7.0"), -1)
	if !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("third connect = %v, want ErrOverCapacity", err)
	}
	if got := ctl.Metrics().Snapshot().CapRejects; got != 1 {
		t.Fatalf("CapRejects = %d, want 1", got)
	}
	// Capacity frees up with a disconnect; rejected requests must not
	// leak admission slots.
	sessions := collectSessions(ctl)
	if err := ctl.Disconnect(context.Background(), sessions[0]); err != nil {
		t.Fatal(err)
	}
	mustConnect(t, ctl, "2.0>7.0", -1)
}

func collectSessions(ctl *Controller) []uint64 {
	var ids []uint64
	for _, sh := range ctl.sessions.shards {
		sh.mu.Lock()
		for id := range sh.m {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
	}
	return ids
}

func TestDrain(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 2})
	mustConnect(t, ctl, "0.0>5.0", -1)
	mustConnect(t, ctl, "1.0>6.0,7.0", -1)

	sum := ctl.Drain(context.Background())
	if sum.Released != 2 || sum.Errors != 0 {
		t.Fatalf("Drain = %+v, want 2 released, 0 errors", sum)
	}
	if got := ctl.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions after drain = %d, want 0", got)
	}
	if _, _, err := ctl.Connect(context.Background(), mustParse(t, "0.0>5.0"), -1); !errors.Is(err, ErrDraining) {
		t.Fatalf("connect while draining = %v, want ErrDraining", err)
	}
	// Idempotent.
	if sum := ctl.Drain(context.Background()); sum.Released != 0 {
		t.Fatalf("second Drain released %d, want 0", sum.Released)
	}
}

// TestDrainRacesWithConnect fires Drain while Connect traffic is still
// arriving and asserts Drain's contract regardless of interleaving:
// when it returns, every routed session has been released and none can
// appear afterwards — including sessions routed by Connects that
// passed the draining check just before it flipped.
func TestDrainRacesWithConnect(t *testing.T) {
	for round := 0; round < 10; round++ {
		ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 2, Shards: 4})
		// One private source/dest port pair per goroutine, so every
		// request is admissible whenever its previous session is gone.
		conns := make([]wdm.Connection, 8)
		for g := range conns {
			conns[g] = mustParse(t, fmt.Sprintf("%d.0>%d.0", 2*g, 2*g+1))
		}
		var wg sync.WaitGroup
		for g := 0; g < len(conns); g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					id, _, err := ctl.Connect(context.Background(), conns[g], g%2)
					if errors.Is(err, ErrDraining) {
						return
					}
					if err == nil && i%2 == 0 {
						_ = ctl.Disconnect(context.Background(), id)
					}
				}
			}(g)
		}
		time.Sleep(500 * time.Microsecond) // let traffic build up
		sum := ctl.Drain(context.Background())
		wg.Wait()
		if sum.Errors != 0 {
			t.Fatalf("round %d: Drain errors = %d", round, sum.Errors)
		}
		if n := ctl.sessions.len(); n != 0 {
			t.Fatalf("round %d: %d sessions live after Drain", round, n)
		}
		if n := ctl.ActiveSessions(); n != 0 {
			t.Fatalf("round %d: ActiveSessions = %d after Drain", round, n)
		}
		for _, f := range ctl.Status().Fabrics {
			if f.Active != 0 {
				t.Fatalf("round %d: fabric %d holds %d routed connections after Drain",
					round, f.Replica, f.Active)
			}
		}
	}
}

// TestConcurrentConnectDisconnect drives 16 goroutines (4 per fabric
// plane, each owning a disjoint slice of the port space so every
// request is admissible) through repeated Connect/AddBranch/Disconnect
// cycles. With m at the sufficient bound nothing may block, and the
// final state must be empty. Run under -race this is the package's
// data-race probe.
func TestConcurrentConnectDisconnect(t *testing.T) {
	const (
		replicas   = 4
		perFabric  = 4
		iterations = 150
	)
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: replicas, Shards: 8})
	p := ctl.Params()
	dim := wdm.Dim{N: p.N, K: p.K}

	var wg sync.WaitGroup
	errs := make([]error, replicas*perFabric)
	for g := 0; g < replicas*perFabric; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = concurrentWorker(ctl, dim, g/perFabric, g%perFabric, perFabric, iterations, int64(g))
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", g, err)
		}
	}
	if got := ctl.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions = %d, want 0", got)
	}
	if got := ctl.sessions.len(); got != 0 {
		t.Fatalf("session table holds %d entries, want 0", got)
	}
	snap := ctl.Metrics().Snapshot()
	if snap.Blocked != 0 {
		t.Fatalf("blocked = %d at the sufficient bound, want 0", snap.Blocked)
	}
	for i, f := range snap.PerFabric {
		if f.Active != 0 {
			t.Fatalf("fabric %d reports %d active, want 0", i, f.Active)
		}
	}
}

// concurrentWorker cycles admissible sessions within its private port
// slice (ports congruent to part mod perFabric) on one pinned plane.
func concurrentWorker(ctl *Controller, dim wdm.Dim, plane, part, perFabric, iterations int, seed int64) error {
	gen := workload.NewGenerator(seed, wdm.MSW, dim)
	rng := rand.New(rand.NewSource(seed + 1000))
	var ports []int
	for p := part; p < dim.N; p += perFabric {
		ports = append(ports, p)
	}
	freeSrc := traffic.NewSlotPool(ports, dim.K)
	freeDst := traffic.NewSlotPool(ports, dim.K)

	type live struct {
		id   uint64
		conn wdm.Connection
	}
	var sessions []live
	release := func() error {
		s := sessions[0]
		sessions = sessions[1:]
		if err := ctl.Disconnect(context.Background(), s.id); err != nil {
			return err
		}
		freeSrc.Put(s.conn.Source)
		for _, d := range s.conn.Dests {
			freeDst.Put(d)
		}
		return nil
	}

	for i := 0; i < iterations; i++ {
		for len(sessions) >= 3 {
			if err := release(); err != nil {
				return err
			}
		}
		c, ok := gen.Connection(freeSrc.Slots(), freeDst.Slots(), gen.Fanout(len(ports)))
		if !ok {
			if len(sessions) == 0 {
				return fmt.Errorf("starved with no live sessions")
			}
			if err := release(); err != nil {
				return err
			}
			continue
		}
		id, _, err := ctl.Connect(context.Background(), c, plane)
		if err != nil {
			return fmt.Errorf("Connect(%v): %w", c, err)
		}
		freeSrc.Take(c.Source)
		for _, d := range c.Dests {
			freeDst.Take(d)
		}
		sessions = append(sessions, live{id: id, conn: c})

		// Occasionally grow a random live session by a free slot on the
		// session's wavelength (MSW).
		if rng.Intn(4) == 0 && len(sessions) > 0 {
			s := &sessions[rng.Intn(len(sessions))]
			if d, ok := pickGrowSlot(freeDst, s.conn); ok {
				switch err := ctl.AddBranch(context.Background(), s.id, d); {
				case err == nil:
					freeDst.Take(d)
					s.conn.Dests = append(s.conn.Dests, d)
				case multistage.IsBlocked(err):
					return fmt.Errorf("AddBranch blocked at the sufficient bound: %w", err)
				default:
					return fmt.Errorf("AddBranch(%d, %v): %w", s.id, d, err)
				}
			}
		}
	}
	for len(sessions) > 0 {
		if err := release(); err != nil {
			return err
		}
	}
	return nil
}

// pickGrowSlot finds a free destination slot on the connection's
// wavelength at a port the connection does not already reach.
func pickGrowSlot(free *traffic.SlotPool, c wdm.Connection) (wdm.PortWave, bool) {
	used := make(map[wdm.Port]bool, len(c.Dests))
	for _, d := range c.Dests {
		used[d.Port] = true
	}
	for _, s := range free.Slots() {
		if s.Wave == c.Source.Wave && !used[s.Port] {
			return s, true
		}
	}
	return wdm.PortWave{}, false
}

// TestNonblockingInvariantAtBound runs the full serving loop — HTTP
// server, concurrent load-generator workers, metrics endpoint — with
// every fabric at the Theorem 1 sufficient bound and asserts the
// paper's claim as served: >= 10k requests, zero blocked.
func TestNonblockingInvariantAtBound(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-request serving run")
	}
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 2, Shards: 8})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	rep, err := Attack(AttackConfig{
		BaseURL:          srv.URL,
		Client:           srv.Client(),
		Requests:         10000,
		WorkersPerFabric: 2,
		TargetLive:       4,
		Seed:             7,
	})
	if err != nil {
		t.Fatalf("Attack: %v", err)
	}
	if rep.Connects < 10000 {
		t.Fatalf("only %d connects offered, want >= 10000", rep.Connects)
	}
	if rep.Blocked != 0 || rep.Server.Blocked != 0 {
		t.Fatalf("blocked: client=%d server=%d at the sufficient bound, want 0 (report: %v)",
			rep.Blocked, rep.Server.Blocked, rep)
	}
	if rep.Server.ConnectOK != int64(rep.Routed) {
		t.Fatalf("server connect_ok=%d != client routed=%d", rep.Server.ConnectOK, rep.Routed)
	}
	if ctl.ActiveSessions() != 0 {
		t.Fatalf("sessions leaked: %d live after attack", ctl.ActiveSessions())
	}
	// The Prometheus exposition must agree: zero blocked over the whole
	// run, with the routed totals matching the JSON snapshot.
	pm := scrapeProm(t, srv.Client(), srv.URL)
	if v, ok := pm.Value("wdm_blocked_total", nil); !ok || v != 0 {
		t.Fatalf("/metrics wdm_blocked_total = %v, %v; want 0 at the bound", v, ok)
	}
	if v, ok := pm.Value("wdm_connect_total", nil); !ok || v != float64(rep.Server.ConnectOK) {
		t.Fatalf("/metrics wdm_connect_total = %v, %v; want %d", v, ok, rep.Server.ConnectOK)
	}
}

// scrapeProm fetches and strictly parses the Prometheus exposition.
func scrapeProm(t *testing.T, client *http.Client, baseURL string) obs.Metrics {
	t.Helper()
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	pm, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return pm
}

// TestBlockingObservableBelowBound is the control experiment: with the
// middle stage well below the bound the same traffic must produce
// blocked > 0, visible on the metrics endpoint — the invariant is
// falsifiable, not vacuously true.
func TestBlockingObservableBelowBound(t *testing.T) {
	p := testParams()
	p.M = 3 // Theorem 1 sufficient bound for n=4, r=4 is far higher
	p.X = 1
	ctl := newTestController(t, Config{Fabric: p, Replicas: 1, Shards: 4})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	rep, err := Attack(AttackConfig{
		BaseURL:          srv.URL,
		Client:           srv.Client(),
		Requests:         3000,
		WorkersPerFabric: 2,
		TargetLive:       6,
		Seed:             7,
	})
	if err != nil {
		t.Fatalf("Attack: %v", err)
	}
	if rep.Server.Blocked == 0 {
		t.Fatalf("no blocking observed below the bound (report: %v)", rep)
	}
	if rep.Blocked != int(rep.Server.Blocked) {
		t.Fatalf("client saw %d blocks, server counted %d", rep.Blocked, rep.Server.Blocked)
	}
	if rep.Outcomes[api.CodeBlocked] != rep.Blocked {
		t.Fatalf("outcomes[blocked] = %d, want %d", rep.Outcomes[api.CodeBlocked], rep.Blocked)
	}
	pm := scrapeProm(t, srv.Client(), srv.URL)
	if v, ok := pm.Value("wdm_blocked_total", nil); !ok || v != float64(rep.Server.Blocked) {
		t.Fatalf("/metrics wdm_blocked_total = %v, %v; want %d", v, ok, rep.Server.Blocked)
	}
}
