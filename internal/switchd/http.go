package switchd

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"

	"repro/internal/multistage"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/wdm"
)

// HTTP+JSON API. Connections use the repository's compact text codec
// ("<port>.<wave>><port>.<wave>,..." — see package wdm), so a session is
// one curl away:
//
//	POST /v1/connect    {"connection": "0.0>5.0,9.0", "fabric": -1}
//	POST /v1/branch     {"session": 7, "dests": ["12.0"]}
//	POST /v1/disconnect {"session": 7}
//	GET  /v1/session?id=7
//	GET  /v1/status
//	GET  /v1/metrics        (JSON snapshot)
//	GET  /metrics           (Prometheus text exposition of the same counters)
//	GET  /v1/slo            (sliding-window SLIs and burn-rate alerts)
//	GET  /v1/debug/blocking (forensics ring buffer: recent blocking incidents)
//	GET  /v1/debug/spans    (tail-sampled completed traces; ?blocked=1, ?trace=ID, ?limit=N)
//	GET  /v1/debug/trace    (?fabric=N; replayable serving history, needs Config.CaptureTrace)
//	GET  /debug/vars        (standard expvar, includes the published registry)
//
// Every serving request runs under a span (see internal/obs/span): an
// inbound W3C traceparent header is joined, otherwise a fresh trace id
// is generated, and either way the id is echoed in the traceparent
// response header.
//
// Status mapping: 200 ok; 400 inadmissible request or bad payload;
// 404 unknown session; 409 blocked (admissible but unroutable — the
// condition the theorems make impossible at sufficient m); 429 over the
// admission cap; 503 draining.

// connectRequest is the POST /v1/connect payload.
type connectRequest struct {
	// Connection in wdm codec form, e.g. "0.0>5.0,9.0".
	Connection string `json:"connection"`
	// Fabric pins the session to a replica; -1 or omitted lets the
	// controller choose.
	Fabric *int `json:"fabric,omitempty"`
}

type connectResponse struct {
	Session uint64 `json:"session"`
	Fabric  int    `json:"fabric"`
}

// branchRequest is the POST /v1/branch payload.
type branchRequest struct {
	Session uint64   `json:"session"`
	Dests   []string `json:"dests"` // slots in wdm codec form, e.g. "12.0"
}

// disconnectRequest is the POST /v1/disconnect payload.
type disconnectRequest struct {
	Session uint64 `json:"session"`
}

type errorResponse struct {
	Error   string `json:"error"`
	Blocked bool   `json:"blocked,omitempty"`
}

// Handler returns the controller's HTTP API as an http.Handler,
// wrapped in the span tracer's middleware (a no-op when tracing is
// disabled).
func (ctl *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/connect", ctl.handleConnect)
	mux.HandleFunc("/v1/branch", ctl.handleBranch)
	mux.HandleFunc("/v1/disconnect", ctl.handleDisconnect)
	mux.HandleFunc("/v1/session", ctl.handleSession)
	mux.HandleFunc("/v1/status", ctl.handleStatus)
	mux.HandleFunc("/v1/metrics", ctl.handleMetrics)
	mux.HandleFunc("/metrics", ctl.handlePromMetrics)
	mux.HandleFunc("/v1/slo", ctl.handleSLO)
	mux.HandleFunc("/v1/debug/blocking", ctl.handleDebugBlocking)
	mux.HandleFunc("/v1/debug/spans", ctl.handleDebugSpans)
	mux.HandleFunc("/v1/debug/trace", ctl.handleDebugTrace)
	mux.Handle("/debug/vars", expvar.Handler())
	return ctl.tracer.Middleware(mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps controller errors onto the status codes documented
// above.
func writeError(w http.ResponseWriter, err error) {
	resp := errorResponse{Error: err.Error()}
	code := http.StatusBadRequest
	switch {
	case multistage.IsBlocked(err):
		code = http.StatusConflict
		resp.Blocked = true
	case errors.Is(err, ErrOverCapacity):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownSession):
		code = http.StatusNotFound
	}
	writeJSON(w, code, resp)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (ctl *Controller) handleConnect(w http.ResponseWriter, r *http.Request) {
	var req connectRequest
	if !decodeBody(w, r, &req) {
		return
	}
	conn, err := wdm.ParseConnection(req.Connection)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	pin := -1
	if req.Fabric != nil {
		pin = *req.Fabric
	}
	id, plane, err := ctl.ConnectCtx(r.Context(), conn, pin)
	if err != nil {
		if multistage.IsBlocked(err) {
			ctl.logger.LogAttrs(r.Context(), slog.LevelWarn, "blocked",
				slog.String("request_id", obs.RequestID(r.Context())),
				slog.String("trace_id", span.FromContext(r.Context()).TraceID()),
				slog.String("op", "connect"),
				slog.Int("fabric", plane),
				slog.String("connection", req.Connection),
				slog.String("error", err.Error()))
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, connectResponse{Session: id, Fabric: plane})
}

func (ctl *Controller) handleBranch(w http.ResponseWriter, r *http.Request) {
	var req branchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Dests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "branch needs at least one destination slot"})
		return
	}
	dests := make([]wdm.PortWave, 0, len(req.Dests))
	for _, ds := range req.Dests {
		d, err := wdm.ParseSlot(ds)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		dests = append(dests, d)
	}
	if err := ctl.AddBranchCtx(r.Context(), req.Session, dests...); err != nil {
		if multistage.IsBlocked(err) {
			ctl.logger.LogAttrs(r.Context(), slog.LevelWarn, "blocked",
				slog.String("request_id", obs.RequestID(r.Context())),
				slog.String("trace_id", span.FromContext(r.Context()).TraceID()),
				slog.String("op", "branch"),
				slog.Uint64("session", req.Session),
				slog.String("error", err.Error()))
		}
		writeError(w, err)
		return
	}
	info, _ := ctl.Session(req.Session)
	writeJSON(w, http.StatusOK, info)
}

func (ctl *Controller) handleDisconnect(w http.ResponseWriter, r *http.Request) {
	var req disconnectRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := ctl.DisconnectCtx(r.Context(), req.Session); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"released": req.Session})
}

func (ctl *Controller) handleSession(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "want ?id=<session>"})
		return
	}
	info, ok := ctl.Session(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: %d", ErrUnknownSession, id))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (ctl *Controller) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ctl.Status())
}

func (ctl *Controller) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ctl.metrics.Snapshot())
}
