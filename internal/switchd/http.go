package switchd

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/fabric/backend"
	"repro/internal/multistage"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/switchd/api"
	"repro/internal/wdm"
)

// HTTP+JSON API. Connections use the repository's compact text codec
// ("<port>.<wave>><port>.<wave>,..." — see package wdm), so a session is
// one curl away:
//
//	POST /v1/connect      {"connection": "0.0>5.0,9.0", "fabric": -1}
//	POST /v1/branch       {"session": 7, "dests": ["12.0"]}
//	POST /v1/disconnect   {"session": 7}
//	GET  /v1/session?id=7
//	GET  /v1/status
//	GET  /v1/fabrics        (capability discovery: every registered fabric backend)
//	GET  /v1/health         (failure plane: ok|degraded|critical, derated cap)
//	POST /v1/admin/fail     {"fabric": 0, "middle": 2}  (fail + live-migrate)
//	POST /v1/admin/repair   {"fabric": 0, "middle": 2}
//	GET  /v1/metrics        (JSON snapshot)
//	GET  /metrics           (Prometheus text exposition of the same counters)
//	GET  /v1/slo            (sliding-window SLIs and burn-rate alerts)
//	GET  /v1/query          (metrics history: ?query=, ?start=, ?end=, ?step=; rate()/increase()/histogram_quantile())
//	GET  /v1/alerts         (alerting rules engine: per-rule pending/firing state)
//	POST /v1/loadgen        {"offered_rps": ..., "achieved_rps": ...} (loadgen self-report gauges)
//	GET  /v1/debug/tsdb     (full metrics-history dump: stats + every series)
//	GET  /v1/debug/blocking (forensics ring buffer: recent blocking incidents)
//	GET  /v1/debug/spans    (tail-sampled completed traces; ?blocked=1, ?trace=ID, ?limit=N)
//	GET  /v1/debug/trace    (?fabric=N; replayable serving history, needs Config.CaptureTrace)
//	GET  /debug/vars        (standard expvar, includes the published registry)
//
// Every serving request runs under a span (see internal/obs/span): an
// inbound W3C traceparent header is joined, otherwise a fresh trace id
// is generated, and either way the id is echoed in the traceparent
// response header. Handlers pass the request context down, so a client
// disconnect or deadline cancels the controller call before it takes a
// fabric lock.
//
// Every non-2xx response carries the api.Envelope error shape,
// {"error":{"code":"...","message":"..."}}; the codes are stable API
// (see package api) and the status line is derived from the code:
// blocked 409 (with backend-specific sub-codes wavelength_conflict and
// split_incapable, also 409), admission_full 429, draining 503,
// fabric_failed 503, storage_failed 503, not_found 404, bad_request 400.

// Handler returns the controller's HTTP API as an http.Handler,
// wrapped in the span tracer's middleware (a no-op when tracing is
// disabled).
func (ctl *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/connect", ctl.handleConnect)
	mux.HandleFunc("/v1/branch", ctl.handleBranch)
	mux.HandleFunc("/v1/disconnect", ctl.handleDisconnect)
	mux.HandleFunc("/v1/session", ctl.handleSession)
	mux.HandleFunc("/v1/status", ctl.handleStatus)
	mux.HandleFunc("/v1/fabrics", ctl.handleFabrics)
	mux.HandleFunc("/v1/health", ctl.handleHealth)
	mux.HandleFunc("/v1/admin/fail", ctl.handleAdminFail)
	mux.HandleFunc("/v1/admin/repair", ctl.handleAdminRepair)
	mux.HandleFunc("/v1/metrics", ctl.handleMetrics)
	mux.HandleFunc("/metrics", ctl.handlePromMetrics)
	mux.HandleFunc("/v1/slo", ctl.handleSLO)
	mux.HandleFunc("/v1/query", ctl.handleQuery)
	mux.HandleFunc("/v1/alerts", ctl.handleAlerts)
	mux.HandleFunc("/v1/loadgen", ctl.handleLoadgen)
	mux.HandleFunc("/v1/version", ctl.handleVersion)
	mux.HandleFunc("/v1/debug/blocking", ctl.handleDebugBlocking)
	mux.HandleFunc("/v1/debug/spans", ctl.handleDebugSpans)
	mux.HandleFunc("/v1/debug/trace", ctl.handleDebugTrace)
	mux.HandleFunc("/v1/debug/prof", ctl.handleDebugProf)
	mux.HandleFunc("/v1/debug/tsdb", ctl.handleDebugTSDB)
	mux.Handle("/debug/vars", expvar.Handler())
	return ctl.tracer.Middleware(mux)
}

// respond writes v as the JSON response for a phase-timed request: the
// phase split so far goes out in a Server-Timing header (set before the
// body, so it covers every phase up to the write itself), and the write
// is timed as the respond phase. The caller's deferred
// phaseTimer.observe picks the respond time up afterwards.
func (ctl *Controller) respond(w http.ResponseWriter, code int, v any, pt *phaseTimer) {
	if st := pt.serverTiming(); st != "" {
		w.Header().Set("Server-Timing", st)
	}
	start := time.Now()
	writeJSON(w, code, v)
	pt.add(phaseRespond, time.Since(start))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiErrorFor classifies a controller error into the wire error shape.
// Errors that already carry an *api.Error (the failure plane's
// validation errors) pass through; sentinels and fabric outcomes map to
// their stable codes; anything else is a bad request.
func apiErrorFor(err error) *api.Error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	code := api.CodeBadRequest
	switch {
	case multistage.IsBlocked(err):
		// Backend-specific block classes keep their own stable codes —
		// wavelength_conflict (AWG grating law) and split_incapable (mesh
		// sparse splitting) — so clients can tell a retryable occupancy
		// collision from a structurally impossible request. Both still map
		// to 409 like the generic class.
		switch multistage.BlockedCode(err) {
		case multistage.CodeWavelengthConflict:
			code = api.CodeWavelengthConflict
		case multistage.CodeSplitIncapable:
			code = api.CodeSplitIncapable
		default:
			code = api.CodeBlocked
		}
	case errors.Is(err, ErrOverCapacity):
		code = api.CodeAdmissionFull
	case errors.Is(err, ErrDraining):
		code = api.CodeDraining
	case errors.Is(err, ErrFabricFailed):
		code = api.CodeFabricFailed
	case errors.Is(err, ErrStorageFailed):
		code = api.CodeStorageFailed
	case errors.Is(err, ErrUnknownSession):
		code = api.CodeNotFound
	}
	return &api.Error{Code: code, Message: err.Error()}
}

// writeError emits err as an api.Envelope under the status its code
// maps to.
func writeError(w http.ResponseWriter, err error) {
	ae := apiErrorFor(err)
	writeJSON(w, api.StatusFor(ae.Code), api.Envelope{Error: ae})
}

// writeErrorCode emits a handler-level error (bad query parameter,
// wrong method) under an explicit code and status.
func writeErrorCode(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, api.Envelope{Error: &api.Error{Code: code, Message: msg}})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeErrorCode(w, http.StatusMethodNotAllowed, api.CodeBadRequest, "POST required")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErrorCode(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func (ctl *Controller) handleConnect(w http.ResponseWriter, r *http.Request) {
	var req api.ConnectRequest
	if !decodeBody(w, r, &req) {
		return
	}
	conn, err := wdm.ParseConnection(req.Connection)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	pin := -1
	if req.Fabric != nil {
		pin = *req.Fabric
	}
	var pt phaseTimer
	defer pt.observe(ctl.metrics, span.FromContext(r.Context()).TraceID())
	id, plane, err := ctl.connect(r.Context(), &pt, conn, pin)
	if err != nil {
		if multistage.IsBlocked(err) {
			ctl.logger.LogAttrs(r.Context(), slog.LevelWarn, "blocked",
				slog.String("request_id", obs.RequestID(r.Context())),
				slog.String("trace_id", span.FromContext(r.Context()).TraceID()),
				slog.String("op", "connect"),
				slog.Int("fabric", plane),
				slog.String("connection", req.Connection),
				slog.String("error", err.Error()))
		}
		writeError(w, err)
		return
	}
	ctl.respond(w, http.StatusOK, api.ConnectResponse{Session: id, Fabric: plane}, &pt)
}

func (ctl *Controller) handleBranch(w http.ResponseWriter, r *http.Request) {
	var req api.BranchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Dests) == 0 {
		writeErrorCode(w, http.StatusBadRequest, api.CodeBadRequest, "branch needs at least one destination slot")
		return
	}
	dests := make([]wdm.PortWave, 0, len(req.Dests))
	for _, ds := range req.Dests {
		d, err := wdm.ParseSlot(ds)
		if err != nil {
			writeErrorCode(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
			return
		}
		dests = append(dests, d)
	}
	var pt phaseTimer
	defer pt.observe(ctl.metrics, span.FromContext(r.Context()).TraceID())
	if err := ctl.addBranch(r.Context(), &pt, req.Session, dests...); err != nil {
		if multistage.IsBlocked(err) {
			ctl.logger.LogAttrs(r.Context(), slog.LevelWarn, "blocked",
				slog.String("request_id", obs.RequestID(r.Context())),
				slog.String("trace_id", span.FromContext(r.Context()).TraceID()),
				slog.String("op", "branch"),
				slog.Uint64("session", req.Session),
				slog.String("error", err.Error()))
		}
		writeError(w, err)
		return
	}
	info, _ := ctl.Session(req.Session)
	ctl.respond(w, http.StatusOK, info, &pt)
}

func (ctl *Controller) handleDisconnect(w http.ResponseWriter, r *http.Request) {
	var req api.DisconnectRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var pt phaseTimer
	defer pt.observe(ctl.metrics, span.FromContext(r.Context()).TraceID())
	if err := ctl.disconnect(r.Context(), &pt, req.Session); err != nil {
		writeError(w, err)
		return
	}
	ctl.respond(w, http.StatusOK, api.DisconnectResponse{Released: req.Session}, &pt)
}

func (ctl *Controller) handleSession(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, api.CodeBadRequest, "want ?id=<session>")
		return
	}
	info, ok := ctl.Session(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: %d", ErrUnknownSession, id))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (ctl *Controller) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ctl.Status())
}

// handleFabrics serves capability discovery: every fabric backend this
// binary can serve (name, nonblocking bound, multicast mechanism,
// backend-specific error codes), with the one this instance runs
// flagged current. The listing derives from the backend registry, so a
// newly registered backend appears here without handler changes.
func (ctl *Controller) handleFabrics(w http.ResponseWriter, r *http.Request) {
	resp := api.FabricsResponse{Current: ctl.backendName}
	for _, d := range backend.All() {
		resp.Fabrics = append(resp.Fabrics, api.FabricInfo{
			Name:        d.Name,
			Description: d.Description,
			Bound:       d.Bound,
			Multicast:   d.Multicast,
			ErrorCodes:  append([]string(nil), d.ErrorCodes...),
			Current:     d.Name == ctl.backendName,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealth serves the failure-plane snapshot. ok and degraded
// answer 200 (the instance still serves, possibly derated); critical —
// some plane has no working middles — answers 503 so a plain
// status-code health check ejects the instance.
func (ctl *Controller) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := ctl.Health()
	status := http.StatusOK
	if h.Status == api.HealthCritical {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (ctl *Controller) handleAdminFail(w http.ResponseWriter, r *http.Request) {
	var req api.FailRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rep, err := ctl.FailMiddle(r.Context(), req.Fabric, req.Middle)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (ctl *Controller) handleAdminRepair(w http.ResponseWriter, r *http.Request) {
	var req api.FailRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rep, err := ctl.RepairMiddle(r.Context(), req.Fabric, req.Middle)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (ctl *Controller) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ctl.metrics.Snapshot())
}

// handleDebugProf serves the profiling harness (see internal/obs/prof):
// ring snapshots of heap/mutex/block/goroutine profiles, live CPU
// capture, and ?debug=1 text renderings.
func (ctl *Controller) handleDebugProf(w http.ResponseWriter, r *http.Request) {
	ctl.prof.ServeHTTP(w, r)
}
