package switchd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/fabric/backend"
	"repro/internal/multistage"
	"repro/internal/switchd/api"
	"repro/internal/wdm"
)

// BenchmarkSwitchdThroughput measures the full in-process serving path
// — JSON decode, admission, shard bookkeeping, fabric routing under the
// plane mutex, JSON encode — with no network in the way, once per
// registered fabric backend. Each parallel goroutine claims a private
// port pair on its own plane slice and cycles connect/disconnect, so
// every request is admissible and the benchmark measures throughput,
// not blocking. The lanes are adjacent-port unicasts, admissible on
// every backend (disjoint ring edges for the mesh, disjoint module
// slots for the Clos constructions).
//
// With BENCH_JSON=<path> set, the final (largest) run per backend
// writes a machine-readable summary row so the perf trajectory can be
// tracked across PRs (see `make bench-json`).
func BenchmarkSwitchdThroughput(b *testing.B) {
	for _, name := range backend.Names() {
		b.Run(name, func(b *testing.B) { benchSwitchdThroughput(b, name) })
	}
}

func benchSwitchdThroughput(b *testing.B, backendName string) {
	const replicas = 4
	ctl, err := New(Config{
		Backend: backendName,
		Fabric: multistage.Params{
			N: 64, K: 2, R: 8,
			Model: wdm.MSW,
			Lite:  true,
		},
		Replicas: replicas,
		Shards:   32,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := ctl.Handler()
	n := ctl.Params().N

	// Pre-render one connect body per (plane, port-pair) lane. Each lane
	// is a unicast 2p.0 -> (2p+1).0 on a pinned plane: disjoint slots,
	// always admissible when the lane's previous session is gone.
	lanes := replicas * n / 2
	bodies := make([]string, lanes)
	for lane := 0; lane < lanes; lane++ {
		plane := lane % replicas
		p := (lane / replicas) * 2
		bodies[lane] = fmt.Sprintf(`{"connection": "%d.0>%d.0", "fabric": %d}`, p, p+1, plane)
	}

	var nextLane atomic.Int64
	var failures atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		lane := int(nextLane.Add(1)-1) % lanes
		body := bodies[lane]
		for pb.Next() {
			var cr api.ConnectResponse
			if code := benchDo(h, "/v1/connect", body, &cr); code != http.StatusOK {
				failures.Add(1)
				continue
			}
			disc := fmt.Sprintf(`{"session": %d}`, cr.Session)
			if code := benchDo(h, "/v1/disconnect", disc, nil); code != http.StatusOK {
				failures.Add(1)
			}
		}
	})
	b.StopTimer()
	if f := failures.Load(); f > 0 {
		b.Fatalf("%d request cycles failed", f)
	}

	// Each iteration is one connect + one disconnect.
	elapsed := b.Elapsed()
	reqPerSec := float64(2*b.N) / elapsed.Seconds()
	b.ReportMetric(reqPerSec, "req/s")

	if path := os.Getenv("BENCH_JSON"); path != "" {
		// Route-latency quantiles from the server's own histogram (time
		// inside the fabric lock, excluding HTTP/JSON overhead).
		snap := ctl.Metrics().Snapshot()
		row := map[string]any{
			"benchmark":    "BenchmarkSwitchdThroughput/" + backendName,
			"backend":      backendName,
			"goos":         runtime.GOOS,
			"goarch":       runtime.GOARCH,
			"gomaxprocs":   runtime.GOMAXPROCS(0),
			"replicas":     replicas,
			"n":            n,
			"k":            ctl.Params().K,
			"iterations":   b.N,
			"ns_per_op":    float64(elapsed.Nanoseconds()) / float64(b.N),
			"req_per_sec":  reqPerSec,
			"route_p50_us": HistQuantileMicros(snap.RouteLatency, 0.50),
			"route_p99_us": HistQuantileMicros(snap.RouteLatency, 0.99),
		}
		// Per-phase attribution columns (lock_wait is the mutex-funnel
		// number the 1-vs-4-core rows exist to explain).
		for _, ph := range snap.Phases {
			row[ph.Op+"_p50_us"] = ph.P50Micros
			row[ph.Op+"_p99_us"] = ph.P99Micros
		}
		writeBenchJSON(b, path, row)
	}
}

func benchDo(h http.Handler, path, body string, out any) int {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			return http.StatusInternalServerError
		}
	}
	return w.Code
}

// writeBenchJSON records the run into a JSON array with one row per
// (benchmark, gomaxprocs) pair, so `go test -cpu 1,4` leaves a scaling
// curve rather than only the last configuration. Benchmarks re-run
// with growing b.N; each row ends up holding that shape's final,
// longest run. A pre-array single-object file is absorbed as one row.
func writeBenchJSON(b *testing.B, path string, payload map[string]any) {
	b.Helper()
	var rows []map[string]any
	if prev, err := os.ReadFile(path); err == nil {
		if json.Unmarshal(prev, &rows) != nil {
			var one map[string]any
			if json.Unmarshal(prev, &one) == nil && one != nil {
				rows = []map[string]any{one}
			}
		}
	}
	rowKey := func(m map[string]any) string {
		return fmt.Sprintf("%v/%v", m["benchmark"], m["gomaxprocs"])
	}
	replaced := false
	for i, row := range rows {
		if rowKey(row) == rowKey(payload) {
			rows[i] = payload
			replaced = true
			break
		}
	}
	if !replaced {
		rows = append(rows, payload)
	}
	sort.Slice(rows, func(i, j int) bool { return rowKey(rows[i]) < rowKey(rows[j]) })
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		b.Fatalf("marshaling bench json: %v", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Fatalf("writing %s: %v", path, err)
	}
}
