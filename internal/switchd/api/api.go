// Package api is the wire contract of the switchd /v1 serving API: the
// request/response payloads, the error envelope with its stable
// machine-readable codes, and the health/failure-plane types. It is
// shared by the server handlers (internal/switchd) and the typed client
// (internal/switchd/client) so the two can never drift, and it is the
// only vocabulary callers should program against — match on Error.Code,
// never on message text.
package api

import (
	"errors"
	"fmt"
	"net/http"
)

// Error codes carried in the {"error":{"code":...}} envelope. They are
// stable API: clients branch on these, messages are for humans.
const (
	// CodeBlocked: the request was admissible but the fabric could not
	// route it — the event the paper's theorems make impossible at or
	// above the sufficient middle-stage bound. HTTP 409.
	CodeBlocked = "blocked"
	// CodeAdmissionFull: the admission cap (MaxSessions, possibly
	// derated in degraded mode) is reached; the request was never
	// offered to a fabric. HTTP 429.
	CodeAdmissionFull = "admission_full"
	// CodeDraining: the controller is shutting down and no longer
	// accepts work. HTTP 503.
	CodeDraining = "draining"
	// CodeBadRequest: malformed payload, unparseable connection codec,
	// inadmissible request, or an out-of-range parameter. HTTP 400.
	CodeBadRequest = "bad_request"
	// CodeNotFound: the referenced session (or resource) is not live.
	// HTTP 404.
	CodeNotFound = "not_found"
	// CodeFabricFailed: the target fabric plane has no working middle
	// modules left; the request cannot be served until a repair.
	// HTTP 503.
	CodeFabricFailed = "fabric_failed"
	// CodeStorageFailed: the durable log could not record the mutation
	// (write or fsync failure). The log is fail-stop — every later
	// mutating request returns this code until the process is restarted
	// and recovers; reads keep serving. HTTP 503.
	CodeStorageFailed = "storage_failed"
	// CodeNotPrimary: the node is a warm standby for its shard and does
	// not serve this endpoint until promoted. Clients should fail over
	// to (or retry against) the shard's primary. HTTP 503.
	CodeNotPrimary = "not_primary"
	// CodeWavelengthConflict: blocked, and specifically because the AWG
	// backend's grating law forces a wavelength the route cannot carry —
	// both hops of a session are pinned to λ = (dest−src) mod k, and
	// that class is exhausted. A retry cannot succeed until a session in
	// the same wavelength class releases. HTTP 409.
	CodeWavelengthConflict = "wavelength_conflict"
	// CodeSplitIncapable: blocked, and specifically because the mesh
	// backend's sparse-splitting structure cannot realize the requested
	// fanout even on an idle network — the light-hierarchy would need a
	// branch at a multicast-incapable node or beyond the splitter fanout
	// X. Retrying the same request can never succeed. HTTP 409.
	CodeSplitIncapable = "split_incapable"
)

// Error is the one error shape every /v1 endpoint returns, wrapped in
// an Envelope. It implements the error interface so the typed client
// can hand it straight back to callers.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// HTTPStatus is the status line the error traveled under. It is
	// derived (StatusFor), not serialized; the code is the contract.
	HTTPStatus int `json:"-"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Envelope is the JSON body of every non-2xx /v1 response.
type Envelope struct {
	Error *Error `json:"error"`
}

// StatusFor maps an error code to its HTTP status line.
func StatusFor(code string) int {
	switch code {
	case CodeBlocked, CodeWavelengthConflict, CodeSplitIncapable:
		return http.StatusConflict
	case CodeAdmissionFull:
		return http.StatusTooManyRequests
	case CodeDraining, CodeFabricFailed, CodeStorageFailed, CodeNotPrimary:
		return http.StatusServiceUnavailable
	case CodeNotFound:
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// CodeOf extracts the machine-readable code from err, or "" when err
// does not carry one.
func CodeOf(err error) string {
	var ae *Error
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// IsCode reports whether err carries the given API error code.
func IsCode(err error, code string) bool { return CodeOf(err) == code }
