package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

func TestStatusFor(t *testing.T) {
	cases := []struct {
		code string
		want int
	}{
		{CodeBlocked, http.StatusConflict},
		{CodeAdmissionFull, http.StatusTooManyRequests},
		{CodeDraining, http.StatusServiceUnavailable},
		{CodeFabricFailed, http.StatusServiceUnavailable},
		{CodeNotFound, http.StatusNotFound},
		{CodeBadRequest, http.StatusBadRequest},
		{"something-new", http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := StatusFor(tc.code); got != tc.want {
			t.Errorf("StatusFor(%q) = %d, want %d", tc.code, got, tc.want)
		}
	}
}

func TestCodeMatching(t *testing.T) {
	base := &Error{Code: CodeBlocked, Message: "no middle"}
	wrapped := fmt.Errorf("attack: %w", base)
	if !IsCode(wrapped, CodeBlocked) || CodeOf(wrapped) != CodeBlocked {
		t.Fatalf("wrapped api error not matched: %v", wrapped)
	}
	if IsCode(wrapped, CodeDraining) {
		t.Fatal("IsCode matched the wrong code")
	}
	if IsCode(nil, CodeBlocked) || CodeOf(nil) != "" {
		t.Fatal("nil error matched a code")
	}
	if CodeOf(fmt.Errorf("plain")) != "" {
		t.Fatal("plain error reported a code")
	}
}

// TestEnvelopeWire pins the envelope shape: the HTTP status is carried
// out of band, never serialized, and the JSON is {"error":{...}}.
func TestEnvelopeWire(t *testing.T) {
	e := &Error{Code: CodeAdmissionFull, Message: "cap", HTTPStatus: 429}
	buf, err := json.Marshal(Envelope{Error: e})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"admission_full","message":"cap"}}`
	if string(buf) != want {
		t.Fatalf("envelope = %s, want %s", buf, want)
	}
	var back Envelope
	if err := json.Unmarshal(buf, &back); err != nil || back.Error == nil {
		t.Fatalf("round-trip: %v %+v", err, back)
	}
	if back.Error.Code != CodeAdmissionFull || back.Error.HTTPStatus != 0 {
		t.Fatalf("round-tripped error = %+v; HTTPStatus must not ride the wire", back.Error)
	}
}
