package api

import (
	"repro/internal/multistage"
	"repro/internal/obs/span"
)

// Request/response payloads of the serving endpoints. Connections use
// the repository's compact text codec ("<port>.<wave>><port>.<wave>,..."
// — see package wdm).

// ConnectRequest is the POST /v1/connect payload.
type ConnectRequest struct {
	// Connection in wdm codec form, e.g. "0.0>5.0,9.0".
	Connection string `json:"connection"`
	// Fabric pins the session to a replica; -1 or omitted lets the
	// controller choose.
	Fabric *int `json:"fabric,omitempty"`
}

// ConnectResponse is the POST /v1/connect success payload.
type ConnectResponse struct {
	Session uint64 `json:"session"`
	Fabric  int    `json:"fabric"`
}

// BranchRequest is the POST /v1/branch payload.
type BranchRequest struct {
	Session uint64   `json:"session"`
	Dests   []string `json:"dests"` // slots in wdm codec form, e.g. "12.0"
}

// DisconnectRequest is the POST /v1/disconnect payload.
type DisconnectRequest struct {
	Session uint64 `json:"session"`
}

// DisconnectResponse is the POST /v1/disconnect success payload.
type DisconnectResponse struct {
	Released uint64 `json:"released"`
}

// SessionInfo is the external snapshot of a session, returned by
// GET /v1/session and POST /v1/branch.
type SessionInfo struct {
	ID       uint64 `json:"session"`
	Fabric   int    `json:"fabric"`
	Conn     string `json:"connection"`
	Fanout   int    `json:"fanout"`
	Branches int    `json:"branches"`
	// Migrations counts how many times the session's route was moved
	// off a failed middle module (live migration, id preserved).
	Migrations int `json:"migrations,omitempty"`
}

// FabricStatus is one plane's slice of a Status snapshot.
type FabricStatus struct {
	Replica     int                    `json:"replica"`
	Active      int                    `json:"active"`
	Routed      int64                  `json:"routed"`
	Blocked     int64                  `json:"blocked"`
	Utilization multistage.Utilization `json:"utilization"`
}

// Status is the controller-wide snapshot served by GET /v1/status.
type Status struct {
	// Backend is the fabric backend serving this controller (msw, maw,
	// awg, mesh, ...); GET /v1/fabrics describes each one.
	Backend      string         `json:"backend"`
	Model        string         `json:"model"`
	Construction string         `json:"construction"`
	N            int            `json:"n"`
	K            int            `json:"k"`
	R            int            `json:"r"`
	M            int            `json:"m"`
	X            int            `json:"x"`
	SufficientM  int            `json:"sufficient_m"`
	Replicas     int            `json:"replicas"`
	MaxSessions  int            `json:"max_sessions"`
	Active       int64          `json:"active_sessions"`
	Draining     bool           `json:"draining"`
	Fabrics      []FabricStatus `json:"fabrics"`
}

// FabricSnapshot is one replica's counters in a metrics Snapshot.
type FabricSnapshot struct {
	Routed  int64 `json:"routed"`
	Blocked int64 `json:"blocked"`
	Active  int64 `json:"active"`
	// FailedMiddles is the plane's current count of failed middle
	// modules (a gauge, not a counter).
	FailedMiddles int `json:"failed_middles,omitempty"`
}

// LatencyBucket is one histogram bucket in a Snapshot. Counts are
// per-bucket (non-cumulative).
type LatencyBucket struct {
	LEMicros int64 `json:"le_us"` // upper bound; 0 = overflow (+Inf)
	Count    int64 `json:"count"`
}

// OpLatency is one operation's latency histogram in a Snapshot.
type OpLatency struct {
	Op        string          `json:"op"` // connect | branch | disconnect
	Count     int64           `json:"count"`
	MeanNs    int64           `json:"mean_ns"`
	SumNs     int64           `json:"sum_ns"`
	P50Micros float64         `json:"p50_us"`
	P99Micros float64         `json:"p99_us"`
	Buckets   []LatencyBucket `json:"buckets"`
}

// Snapshot is the JSON form of the metrics registry, served at
// GET /v1/metrics and published to expvar. The route_* fields aggregate
// connect+branch — the fabric routing operations — and predate the
// per-op split in Ops; they are kept for compatibility with existing
// consumers.
type Snapshot struct {
	Model        string `json:"model"`
	Construction string `json:"construction"`
	M            int    `json:"m"`
	ConnectOK    int64  `json:"connect_ok"`
	BranchOK     int64  `json:"branch_ok"`
	DisconnectOK int64  `json:"disconnect_ok"`
	Blocked      int64  `json:"blocked"`
	Inadmissible int64  `json:"inadmissible"`
	CapRejects   int64  `json:"cap_rejects_429"`
	DrainRejects int64  `json:"drain_rejects_503"`
	// MigratedSessions counts sessions moved off failed middle modules;
	// DroppedSessions those the failure plane could not restore.
	MigratedSessions int64 `json:"migrated_sessions"`
	DroppedSessions  int64 `json:"dropped_sessions"`
	RouteCount       int64 `json:"route_count"`
	RouteMeanNs      int64 `json:"route_mean_ns"`
	// RouteBoundsUs are the histogram bucket upper bounds in
	// microseconds, in order; the buckets below have one extra overflow
	// entry (le_us 0).
	RouteBoundsUs []int64         `json:"route_latency_bounds_us"`
	RouteLatency  []LatencyBucket `json:"route_latency_us"`
	Ops           []OpLatency     `json:"ops"`
	// Phases are the per-phase latency histograms (Op is the phase name:
	// admission_wait, lock_wait, route_search, wal_append, repl_ack,
	// respond); phases never observed are omitted.
	Phases    []OpLatency      `json:"phases,omitempty"`
	PerFabric []FabricSnapshot `json:"per_fabric"`
}

// VersionInfo is the GET /v1/version payload: what binary produced a
// measurement. Revision is the VCS commit when the binary was built
// from a checkout (empty otherwise).
type VersionInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
	// Backend is the fabric backend this instance serves with; empty in
	// contexts where no controller is attached (e.g. a build-info dump).
	Backend string `json:"backend,omitempty"`
}

// FabricInfo is one backend's capability card in GET /v1/fabrics: its
// stable name, its own nonblocking sufficiency bound, how it realizes
// multicast, and the backend-specific stable error codes it can return
// beyond the generic blocked class.
type FabricInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Bound       string   `json:"bound"`
	Multicast   string   `json:"multicast"`
	ErrorCodes  []string `json:"error_codes,omitempty"`
	// Current marks the backend this instance is serving with.
	Current bool `json:"current,omitempty"`
}

// FabricsResponse is the GET /v1/fabrics payload: every backend the
// binary can serve, with the active one flagged.
type FabricsResponse struct {
	Current string       `json:"current"`
	Fabrics []FabricInfo `json:"fabrics"`
}

// SpansResponse is the GET /v1/debug/spans payload. Traces are ordered
// oldest-first by root span start.
type SpansResponse struct {
	// Kept/Dropped are the tracer's tail-sampling totals since start.
	Kept    int64              `json:"kept"`
	Dropped int64              `json:"dropped"`
	Traces  []span.TraceRecord `json:"traces"`
}

// Health states served by GET /v1/health.
const (
	// HealthOK: no failed middle modules anywhere.
	HealthOK = "ok"
	// HealthDegraded: at least one middle module is failed. The
	// admission cap is derated when a plane's effective middle count
	// drops below what its provisioning promised.
	HealthDegraded = "degraded"
	// HealthCritical: at least one plane has no working middle modules;
	// requests pinned there fail with CodeFabricFailed.
	HealthCritical = "critical"
	// HealthStandby: the node is a warm replication standby; it applies
	// its primary's log but serves no mutations (CodeNotPrimary) until
	// promoted.
	HealthStandby = "standby"
)

// Replication roles reported in ReplicationHealth.Role.
const (
	RolePrimary = "primary"
	RoleStandby = "standby"
)

// FabricHealth is one plane's slice of a Health snapshot.
type FabricHealth struct {
	Replica       int    `json:"replica"`
	FailedMiddles []int  `json:"failed_middles"`
	EffectiveM    int    `json:"effective_m"`
	Status        string `json:"status"`
}

// Health is the failure-plane snapshot served by GET /v1/health
// (HTTP 200 for ok/degraded, 503 for critical, so a load balancer can
// eject a critical instance with a plain status-code check).
type Health struct {
	Status      string `json:"status"` // ok | degraded | critical
	Degraded    bool   `json:"degraded"`
	M           int    `json:"m"`
	SufficientM int    `json:"sufficient_m"`
	// FailedMiddles is the total failed middle-module count across all
	// planes; the per-plane lists are in Fabrics.
	FailedMiddles    int   `json:"failed_middles"`
	MigratedSessions int64 `json:"migrated_sessions"`
	DroppedSessions  int64 `json:"dropped_sessions"`
	// MaxSessions is the configured admission cap (0 = unlimited);
	// EffectiveMaxSessions the derated cap admission currently enforces
	// (0 = unlimited, only possible when not degraded).
	MaxSessions          int            `json:"max_sessions"`
	EffectiveMaxSessions int            `json:"effective_max_sessions"`
	Fabrics              []FabricHealth `json:"fabrics"`
	// Durability is the durable-state-plane row; absent when the
	// controller runs without a data directory.
	Durability *DurabilityHealth `json:"durability,omitempty"`
	// Replication is the log-shipping row; absent when the node is not
	// part of a cluster.
	Replication *ReplicationHealth `json:"replication,omitempty"`
	// Federation is the per-peer reachability row of a federating node;
	// absent when no federation peers are configured. Any down peer
	// degrades an otherwise-ok instance (the fleet view is incomplete).
	Federation []FederationPeerHealth `json:"federation,omitempty"`
}

// FederationPeerHealth is one federation peer's reachability as seen
// by this node's background prober (and refreshed opportunistically by
// federation scrapes).
type FederationPeerHealth struct {
	Shard string `json:"shard"`
	URL   string `json:"url"`
	Up    bool   `json:"up"`
	Error string `json:"error,omitempty"`
	// LastProbeSeconds is the age of the newest probe result; -1 before
	// the first probe completes.
	LastProbeSeconds float64 `json:"last_probe_seconds"`
}

// LoadgenReport is the POST /v1/loadgen payload: a load generator's
// self-report of its offered (attempted) and achieved (routed)
// request rates, published as gauges while fresh so load curves land
// in the metrics history next to the serving counters.
type LoadgenReport struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// OfferedErlangs is the generator's configured offered load (mean
	// concurrent sessions per fabric plane); 0 in max-rate mode where
	// load is paced by the live-session target instead.
	OfferedErlangs float64 `json:"offered_erlangs,omitempty"`
	// BlockRate is the generator's cumulative measured blocking
	// probability over everything it has offered so far.
	BlockRate float64 `json:"block_rate,omitempty"`
}

// DurabilityHealth reports the write-ahead log, snapshot, and recovery
// state of a controller running with a data directory.
type DurabilityHealth struct {
	Enabled bool `json:"enabled"`
	// Healthy is false once the log is poisoned by a write or fsync
	// failure; every mutating request returns storage_failed until the
	// process restarts and recovers.
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// LastSeq is the newest assigned record sequence; SyncedSeq the
	// newest made durable by group commit. The gap between them is
	// bounded by the group-commit latency cap.
	LastSeq       uint64 `json:"last_seq"`
	SyncedSeq     uint64 `json:"synced_seq"`
	UnsyncedBytes int64  `json:"unsynced_bytes"`
	Segments      int    `json:"segments"`
	Sealed        bool   `json:"sealed"`
	// SnapshotAgeSeconds is -1 until the first checkpoint lands.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	SnapshotSeq        uint64  `json:"snapshot_seq,omitempty"`
	// Recovery facts from this process's startup.
	RecoveredSessions int    `json:"recovered_sessions"`
	ReplayedRecords   int    `json:"replayed_records,omitempty"`
	RecoveryMillis    int64  `json:"recovery_millis,omitempty"`
	TruncatedTail     string `json:"truncated_tail,omitempty"`
}

// ReplicationHealth is the cluster log-shipping row of GET /v1/health,
// reported by both roles. On a primary, SyncedSeq is its own durable
// high-water mark and AckedSeq the newest sequence a standby has
// acknowledged durable; on a standby, AppliedSeq is its own durable
// high-water mark and SyncedSeq the primary's, as of the last
// heartbeat.
type ReplicationHealth struct {
	Role  string `json:"role"` // primary | standby
	Shard int    `json:"shard"`
	// Connected: a primary has at least one attached standby; a standby
	// has a live stream to its primary.
	Connected  bool   `json:"connected"`
	Standbys   int    `json:"standbys,omitempty"`
	SyncedSeq  uint64 `json:"synced_seq"`
	AckedSeq   uint64 `json:"acked_seq,omitempty"`
	AppliedSeq uint64 `json:"applied_seq,omitempty"`
	// LagRecords is how many durable records the standby trails by;
	// LagSeconds the staleness of the newest acknowledgement (primary)
	// or heartbeat (standby). Both are 0 when fully caught up.
	LagRecords uint64  `json:"lag_records"`
	LagSeconds float64 `json:"lag_seconds"`
	// SyncTimeouts counts group commits that gave up waiting for a
	// standby ack and degraded to asynchronous replication.
	SyncTimeouts uint64 `json:"sync_timeouts,omitempty"`
	// Reconnects and Snapshots count a standby's stream re-dials and
	// snapshot bootstraps (resume points that had been pruned).
	Reconnects uint64 `json:"reconnects,omitempty"`
	Snapshots  uint64 `json:"snapshots,omitempty"`
	Promoted   bool   `json:"promoted,omitempty"`
}

// PromoteResponse is the POST /v1/admin/promote success payload on a
// standby: the node has taken over as primary for its shard.
type PromoteResponse struct {
	Promoted bool `json:"promoted"`
	Shard    int  `json:"shard"`
	// Sessions is the live session count recovered from the replicated
	// log at promotion; Millis how long the flip took.
	Sessions int   `json:"sessions"`
	Millis   int64 `json:"millis"`
}

// FailRequest is the POST /v1/admin/fail and /v1/admin/repair payload:
// one middle module of one fabric plane.
type FailRequest struct {
	Fabric int `json:"fabric"`
	Middle int `json:"middle"`
}

// FailReport is the POST /v1/admin/fail success payload: what the
// controller did to the sessions riding the failed module.
type FailReport struct {
	Fabric   int `json:"fabric"`
	Middle   int `json:"middle"`
	Affected int `json:"affected"`
	// Migrated lists the session ids re-routed in place (ids preserved);
	// Dropped those no spare capacity could restore (released).
	Migrated []uint64 `json:"migrated_sessions,omitempty"`
	Dropped  []uint64 `json:"dropped_sessions,omitempty"`
	Health   Health   `json:"health"`
}

// RepairReport is the POST /v1/admin/repair success payload.
type RepairReport struct {
	Fabric int    `json:"fabric"`
	Middle int    `json:"middle"`
	Health Health `json:"health"`
}
