package switchd

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/switchd/client"
	"repro/internal/traffic"
)

// Attack mode: the legacy closed-loop load generator, now a thin
// wrapper over the internal/traffic engine in max-rate mode — one
// request-generation path shared with the Erlang sweeps of wdmload.
// Each worker owns a disjoint slice of the port space of one fabric
// replica and only offers connections whose endpoints are free in its
// slice, so every `blocked` from the server is a genuine blocking
// event, exactly as in the offline simulator.
//
// A chaos schedule (ChaosEvent, parsed from "-chaos" syntax by
// ParseChaos) fires fail/repair calls against the target's failure
// plane at fixed offsets into the run, turning the generator into an
// end-to-end chaos harness: at m = bound + f spares, failing f middles
// mid-run must keep both drops and blocks at zero.

// Chaos actions a schedule can fire against the failure plane.
const (
	ChaosFail   = "fail"
	ChaosRepair = "repair"
)

// ChaosEvent is one scheduled failure-plane operation.
type ChaosEvent struct {
	// At is the offset from attack start.
	At time.Duration `json:"at_ns"`
	// Action is "fail" or "repair".
	Action string `json:"action"`
	Fabric int    `json:"fabric"`
	Middle int    `json:"middle"`
}

// ParseChaos parses a chaos schedule in the -chaos flag syntax: a
// comma-separated list of "<action>@<offset> f<fabric>:m<middle>",
// e.g. "fail@10s f0:m2, repair@30s f0:m2".
func ParseChaos(s string) ([]ChaosEvent, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var events []ChaosEvent
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return nil, fmt.Errorf("switchd: chaos: want \"<action>@<offset> f<fabric>:m<middle>\", got %q", part)
		}
		action, offset, ok := strings.Cut(fields[0], "@")
		if !ok || (action != ChaosFail && action != ChaosRepair) {
			return nil, fmt.Errorf("switchd: chaos: want fail@<offset> or repair@<offset>, got %q", fields[0])
		}
		at, err := time.ParseDuration(offset)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("switchd: chaos: bad offset in %q: %v", fields[0], err)
		}
		target := fields[1]
		fs, ms, ok := strings.Cut(target, ":")
		if !ok || !strings.HasPrefix(fs, "f") || !strings.HasPrefix(ms, "m") {
			return nil, fmt.Errorf("switchd: chaos: want f<fabric>:m<middle>, got %q", target)
		}
		fab, err1 := strconv.Atoi(fs[1:])
		mid, err2 := strconv.Atoi(ms[1:])
		if err1 != nil || err2 != nil || fab < 0 || mid < 0 {
			return nil, fmt.Errorf("switchd: chaos: bad target %q", target)
		}
		events = append(events, ChaosEvent{At: at, Action: action, Fabric: fab, Middle: mid})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// ChaosOutcome is what one scheduled event did.
type ChaosOutcome struct {
	ChaosEvent
	// Error is set when the admin call failed (by api error string).
	Error string `json:"error,omitempty"`
	// Migrated/Dropped are the session counts a fail moved/lost; zero
	// for repairs.
	Migrated int `json:"migrated,omitempty"`
	Dropped  int `json:"dropped,omitempty"`
	// Health is the server's rollup status after the event.
	Health string `json:"health,omitempty"`
}

// AttackConfig parameterizes one load-generation run.
type AttackConfig struct {
	// BaseURL of the target server, e.g. "http://localhost:8047".
	BaseURL string
	// Client is the HTTP client to use (http.DefaultClient if nil).
	Client *http.Client
	// Requests is the total number of connect attempts across all
	// workers.
	Requests int
	// WorkersPerFabric is the concurrent worker count per fabric
	// replica (default 2). Total workers = replicas * WorkersPerFabric.
	WorkersPerFabric int
	// MaxFanout bounds each request's fanout; 0 means up to the
	// worker's port-slice size.
	MaxFanout int
	// TargetLive is the per-worker live-session high-water mark: the
	// worker disconnects its oldest session before connecting past it
	// (default 8). This is the knob that sets offered load.
	TargetLive int
	// Seed drives the per-worker traffic generators.
	Seed int64
	// Retry is the typed client's backoff policy for 429/503 answers;
	// the zero value disables retries.
	Retry client.RetryPolicy
	// Chaos is the failure-plane schedule fired during the run (see
	// ParseChaos).
	Chaos []ChaosEvent
}

// ClientLatency and TraceRef are the traffic engine's types, re-exported
// so AttackReport's shape (and its JSON) is unchanged.
type (
	ClientLatency = traffic.ClientLatency
	TraceRef      = traffic.TraceRef
)

// AttackReport aggregates a run.
type AttackReport struct {
	Workers     int           `json:"workers"`
	Connects    int           `json:"connects"`
	Routed      int           `json:"routed"`
	Blocked     int           `json:"blocked"`
	Rejected    int           `json:"rejected"` // admission_full answers
	Disconnects int           `json:"disconnects"`
	Duration    time.Duration `json:"duration_ns"`

	// OpsPerSec counts every completed HTTP operation (connects +
	// disconnects) per wall-clock second; ConnectsPerSec only connects.
	OpsPerSec      float64 `json:"ops_per_sec"`
	ConnectsPerSec float64 `json:"connects_per_sec"`
	// BlockingProbability is Blocked / Connects (admission rejects
	// excluded: they were never offered to a fabric).
	BlockingProbability float64 `json:"blocking_probability"`

	// Outcomes tallies every connect by result: "ok" or the stable api
	// error code ("blocked", "admission_full", ...). ConnectLatency
	// summarizes the client-observed connect round-trip times.
	Outcomes       map[string]int `json:"outcomes"`
	ConnectLatency ClientLatency  `json:"connect_latency_us"`

	// ServerPhases is the server's own attribution of connect time,
	// averaged over the Server-Timing headers it returned: mean µs per
	// phase (admission_wait, lock_wait, route_search, ...). The gap
	// between ConnectLatency and the phase sum is network + HTTP
	// overhead the server never saw.
	ServerPhases map[string]float64 `json:"server_phase_mean_us,omitempty"`

	// Retries is the typed client's total backoff retries across the
	// run; LostSessions counts sessions the server dropped under chaos
	// (disconnect answered not_found).
	Retries      int64 `json:"retries"`
	LostSessions int   `json:"lost_sessions"`
	// Chaos reports what each scheduled failure-plane event did.
	Chaos []ChaosOutcome `json:"chaos,omitempty"`

	// SlowestTraces are the slowest connects by client round trip;
	// BlockedTraces every blocked connect (up to a cap) — both by the
	// trace ids this client sent, for server-side follow-up.
	SlowestTraces []TraceRef `json:"slowest_traces,omitempty"`
	BlockedTraces []TraceRef `json:"blocked_traces,omitempty"`

	// Server is the target's own metrics snapshot after the run.
	Server Snapshot `json:"server"`
}

func (r AttackReport) String() string {
	s := fmt.Sprintf("%d workers: %d connects (%d routed, %d blocked, %d rejected) in %v — %.0f ops/s, %.0f connects/s, connect p50/p95/p99 %.0f/%.0f/%.0f µs, P_block=%.4f (server blocked=%d)",
		r.Workers, r.Connects, r.Routed, r.Blocked, r.Rejected, r.Duration.Round(time.Millisecond),
		r.OpsPerSec, r.ConnectsPerSec,
		r.ConnectLatency.P50Micros, r.ConnectLatency.P95Micros, r.ConnectLatency.P99Micros,
		r.BlockingProbability, r.Server.Blocked)
	if r.Retries > 0 || r.LostSessions > 0 {
		s += fmt.Sprintf("\nretries=%d lost_sessions=%d", r.Retries, r.LostSessions)
	}
	for _, c := range r.Chaos {
		s += fmt.Sprintf("\nchaos %s@%v f%d:m%d", c.Action, c.At.Round(time.Millisecond), c.Fabric, c.Middle)
		if c.Error != "" {
			s += " error=" + c.Error
		} else if c.Action == ChaosFail {
			s += fmt.Sprintf(" migrated=%d dropped=%d health=%s", c.Migrated, c.Dropped, c.Health)
		} else {
			s += " health=" + c.Health
		}
	}
	if len(r.ServerPhases) > 0 {
		var parts []string
		for p := phase(0); p < numPhases; p++ {
			if v, ok := r.ServerPhases[phaseNames[p]]; ok {
				parts = append(parts, fmt.Sprintf("%s=%.0f", phaseNames[p], v))
			}
		}
		if len(parts) > 0 {
			s += "\nserver phases (mean µs): " + strings.Join(parts, " ")
		}
	}
	if len(r.BlockedTraces) > 0 {
		s += fmt.Sprintf("\nfirst blocked trace: %s (curl <target>/v1/debug/spans?trace=%s)",
			r.BlockedTraces[0].TraceID, r.BlockedTraces[0].TraceID)
	}
	if len(r.SlowestTraces) > 0 {
		s += fmt.Sprintf("\nslowest connect: %d µs, trace %s", r.SlowestTraces[0].Micros, r.SlowestTraces[0].TraceID)
	}
	return s
}

// Attack runs the load generator against cfg.BaseURL: the traffic
// engine in max-rate mode, with the chaos scheduler and the loadgen
// self-reporter running alongside the workers.
func Attack(cfg AttackConfig) (AttackReport, error) {
	opts := []client.Option{client.WithRetry(cfg.Retry)}
	if cfg.Client != nil {
		opts = append(opts, client.WithHTTPClient(cfg.Client))
	}
	cl := client.New(cfg.BaseURL, opts...)

	eng, err := traffic.NewEngine(traffic.Config{
		Client:           cl,
		Seed:             cfg.Seed,
		Arrivals:         cfg.Requests,
		WorkersPerFabric: cfg.WorkersPerFabric,
		MaxFanout:        cfg.MaxFanout,
		TargetLive:       cfg.TargetLive,
	})
	if err != nil {
		return AttackReport{}, fmt.Errorf("switchd: attack: %w", err)
	}

	ctx := context.Background()

	// The chaos scheduler runs alongside the workers and is cut off when
	// they finish (events past the run's end never fire). The
	// self-reporter streams offered/achieved rates to the target (POST
	// /v1/loadgen) once a second, so the run's load curve lands in the
	// server's metrics history next to the counters it explains.
	chaosCtx, stopChaos := context.WithCancel(ctx)
	chaosDone := make(chan []ChaosOutcome, 1)
	start := time.Now()
	go func() { chaosDone <- runChaos(chaosCtx, cl, start, cfg.Chaos) }()
	repCtx, stopReport := context.WithCancel(ctx)
	var repWG sync.WaitGroup
	repWG.Add(1)
	go func() {
		defer repWG.Done()
		traffic.ReportLoop(repCtx, cl, eng.Progress(), 0)
	}()

	trep, runErr := eng.Run(ctx)
	stopChaos()
	stopReport()
	repWG.Wait()
	chaos := <-chaosDone

	s := trep.Stats
	rep := AttackReport{
		Workers:      trep.Workers,
		Connects:     s.Connects,
		Routed:       s.Routed,
		Blocked:      s.Blocked,
		Rejected:     s.Rejected,
		Disconnects:  s.Disconnects,
		Duration:     trep.Duration,
		Outcomes:     s.Outcomes,
		Chaos:        chaos,
		LostSessions: s.Lost,
	}
	rep.Retries = cl.Retries()
	if runErr != nil {
		return rep, fmt.Errorf("switchd: attack: %w", runErr)
	}
	rep.ServerPhases = s.PhaseMeans()
	// Record the trace ids worth a server-side look: every blocked
	// connect (up to a cap) and the slowest round trips.
	const maxBlockedTraces, maxSlowTraces = 16, 5
	for _, t := range s.Traces {
		if traffic.IsBlockedCode(t.Outcome) && len(rep.BlockedTraces) < maxBlockedTraces {
			rep.BlockedTraces = append(rep.BlockedTraces, t)
		}
	}
	slow := append([]TraceRef(nil), s.Traces...)
	sort.Slice(slow, func(i, j int) bool { return slow[i].Micros > slow[j].Micros })
	if len(slow) > maxSlowTraces {
		slow = slow[:maxSlowTraces]
	}
	rep.SlowestTraces = slow
	rep.ConnectLatency = traffic.LatencyQuantiles(s.Latencies)
	if secs := trep.Duration.Seconds(); secs > 0 {
		rep.OpsPerSec = float64(rep.Connects+rep.Disconnects) / secs
		rep.ConnectsPerSec = float64(rep.Connects) / secs
	}
	if rep.Connects > 0 {
		rep.BlockingProbability = float64(rep.Blocked) / float64(rep.Connects)
	}
	if rep.Server, err = cl.MetricsSnapshot(ctx); err != nil {
		return rep, fmt.Errorf("switchd: attack: fetching target metrics: %w", err)
	}
	return rep, nil
}

// runChaos fires the scheduled events in order, sleeping out each
// offset relative to start; ctx cancellation ends the schedule early.
func runChaos(ctx context.Context, cl *client.Client, start time.Time, events []ChaosEvent) []ChaosOutcome {
	var out []ChaosOutcome
	for _, ev := range events {
		wait := time.Until(start.Add(ev.At))
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return out
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return out
		}
		oc := ChaosOutcome{ChaosEvent: ev}
		switch ev.Action {
		case ChaosFail:
			rep, err := cl.Fail(ctx, ev.Fabric, ev.Middle)
			if err != nil {
				oc.Error = err.Error()
			} else {
				oc.Migrated = len(rep.Migrated)
				oc.Dropped = len(rep.Dropped)
				oc.Health = rep.Health.Status
			}
		case ChaosRepair:
			rep, err := cl.Repair(ctx, ev.Fabric, ev.Middle)
			if err != nil {
				oc.Error = err.Error()
			} else {
				oc.Health = rep.Health.Status
			}
		}
		out = append(out, oc)
	}
	return out
}
