package switchd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs/span"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// Attack mode: a closed-loop load generator that replays admissible
// multicast traffic (internal/workload patterns) against a running
// wdmserve instance over its HTTP API and reports achieved throughput
// and blocking.
//
// Each worker owns a disjoint slice of the port space of one fabric
// replica (ports with port % workersPerFabric == its partition, pinned
// to its plane), tracks its own free source/destination slots, and only
// ever offers connections whose endpoints are free in its slice — so
// every 409 from the server is a genuine blocking event, exactly as in
// the offline simulator, and the server-side `blocked` counter can be
// diffed against `internal/sim` results for the same parameters.

// AttackConfig parameterizes one load-generation run.
type AttackConfig struct {
	// BaseURL of the target server, e.g. "http://localhost:8047".
	BaseURL string
	// Client is the HTTP client to use (http.DefaultClient if nil).
	Client *http.Client
	// Requests is the total number of connect attempts across all
	// workers.
	Requests int
	// WorkersPerFabric is the concurrent worker count per fabric
	// replica (default 2). Total workers = replicas * WorkersPerFabric.
	WorkersPerFabric int
	// MaxFanout bounds each request's fanout; 0 means up to the
	// worker's port-slice size.
	MaxFanout int
	// TargetLive is the per-worker live-session high-water mark: the
	// worker disconnects its oldest session before connecting past it
	// (default 8). This is the knob that sets offered load.
	TargetLive int
	// Seed drives the per-worker traffic generators.
	Seed int64
}

// ClientLatency summarizes the client-observed connect latency (full
// HTTP round trip, as a client would experience it — not the server's
// in-fabric routing time).
type ClientLatency struct {
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`
}

// TraceRef is one connect the client can follow server-side by trace
// id: the generator sends a W3C traceparent header with every connect,
// so the id here joins against /v1/debug/spans, the /metrics exemplars,
// and /v1/debug/blocking on the target.
type TraceRef struct {
	TraceID string `json:"trace_id"`
	Status  int    `json:"status"` // HTTP status of the connect
	Micros  int64  `json:"micros"` // client-observed round trip
	Conn    string `json:"connection"`
}

// AttackReport aggregates a run.
type AttackReport struct {
	Workers     int           `json:"workers"`
	Connects    int           `json:"connects"`
	Routed      int           `json:"routed"`
	Blocked     int           `json:"blocked"`
	Rejected    int           `json:"rejected_429"`
	Disconnects int           `json:"disconnects"`
	Duration    time.Duration `json:"duration_ns"`

	// OpsPerSec counts every completed HTTP operation (connects +
	// disconnects) per wall-clock second; ConnectsPerSec only connects.
	OpsPerSec      float64 `json:"ops_per_sec"`
	ConnectsPerSec float64 `json:"connects_per_sec"`
	// BlockingProbability is Blocked / Connects (429s excluded: they
	// were never offered to a fabric).
	BlockingProbability float64 `json:"blocking_probability"`

	// StatusCounts tallies every connect response by HTTP status code
	// ("200", "409", ...); ConnectLatency summarizes the client-observed
	// connect round-trip times.
	StatusCounts   map[string]int `json:"status_counts"`
	ConnectLatency ClientLatency  `json:"connect_latency_us"`

	// SlowestTraces are the slowest connects by client round trip;
	// BlockedTraces every blocked connect (up to a cap) — both by the
	// trace ids this client sent, for server-side follow-up.
	SlowestTraces []TraceRef `json:"slowest_traces,omitempty"`
	BlockedTraces []TraceRef `json:"blocked_traces,omitempty"`

	// Server is the target's own metrics snapshot after the run.
	Server Snapshot `json:"server"`
}

func (r AttackReport) String() string {
	s := fmt.Sprintf("%d workers: %d connects (%d routed, %d blocked, %d rejected) in %v — %.0f ops/s, %.0f connects/s, connect p50/p95/p99 %.0f/%.0f/%.0f µs, P_block=%.4f (server blocked=%d)",
		r.Workers, r.Connects, r.Routed, r.Blocked, r.Rejected, r.Duration.Round(time.Millisecond),
		r.OpsPerSec, r.ConnectsPerSec,
		r.ConnectLatency.P50Micros, r.ConnectLatency.P95Micros, r.ConnectLatency.P99Micros,
		r.BlockingProbability, r.Server.Blocked)
	if len(r.BlockedTraces) > 0 {
		s += fmt.Sprintf("\nfirst blocked trace: %s (curl <target>/v1/debug/spans?trace=%s)",
			r.BlockedTraces[0].TraceID, r.BlockedTraces[0].TraceID)
	}
	if len(r.SlowestTraces) > 0 {
		s += fmt.Sprintf("\nslowest connect: %d µs, trace %s", r.SlowestTraces[0].Micros, r.SlowestTraces[0].TraceID)
	}
	return s
}

// Attack runs the load generator against cfg.BaseURL.
func Attack(cfg AttackConfig) (AttackReport, error) {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 10000
	}
	if cfg.WorkersPerFabric <= 0 {
		cfg.WorkersPerFabric = 2
	}
	if cfg.TargetLive <= 0 {
		cfg.TargetLive = 8
	}

	var status Status
	if code, err := getJSON(client, cfg.BaseURL+"/v1/status", &status); err != nil || code != http.StatusOK {
		return AttackReport{}, fmt.Errorf("switchd: attack: fetching target status (code %d): %v", code, err)
	}
	model, err := wdm.ParseModel(status.Model)
	if err != nil {
		return AttackReport{}, fmt.Errorf("switchd: attack: %w", err)
	}
	if status.Replicas < 1 || status.N < cfg.WorkersPerFabric {
		return AttackReport{}, fmt.Errorf("switchd: attack: target too small (N=%d replicas=%d)", status.N, status.Replicas)
	}

	workers := status.Replicas * cfg.WorkersPerFabric
	perWorker := cfg.Requests / workers
	remainder := cfg.Requests % workers

	results := make([]attackWorkerResult, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			attempts := perWorker
			if w < remainder {
				attempts++
			}
			results[w] = attackWorker(client, cfg, status, model, w, attempts)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := AttackReport{Workers: workers, Duration: elapsed, StatusCounts: map[string]int{}}
	var firstErr error
	var latencies []time.Duration
	var traces []TraceRef
	for _, r := range results {
		rep.Connects += r.connects
		rep.Routed += r.routed
		rep.Blocked += r.blocked
		rep.Rejected += r.rejected
		rep.Disconnects += r.disconnects
		for code, n := range r.statusCounts {
			rep.StatusCounts[strconv.Itoa(code)] += n
		}
		latencies = append(latencies, r.latencies...)
		traces = append(traces, r.traces...)
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	if firstErr != nil {
		return rep, firstErr
	}
	// Record the trace ids worth a server-side look: every blocked
	// connect (up to a cap) and the slowest round trips.
	const maxBlockedTraces, maxSlowTraces = 16, 5
	for _, t := range traces {
		if t.Status == http.StatusConflict && len(rep.BlockedTraces) < maxBlockedTraces {
			rep.BlockedTraces = append(rep.BlockedTraces, t)
		}
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].Micros > traces[j].Micros })
	if len(traces) > maxSlowTraces {
		traces = traces[:maxSlowTraces]
	}
	rep.SlowestTraces = traces
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		q := func(p float64) float64 {
			i := int(p * float64(len(latencies)-1))
			return float64(latencies[i].Nanoseconds()) / 1e3
		}
		rep.ConnectLatency = ClientLatency{P50Micros: q(0.50), P95Micros: q(0.95), P99Micros: q(0.99)}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.OpsPerSec = float64(rep.Connects+rep.Disconnects) / secs
		rep.ConnectsPerSec = float64(rep.Connects) / secs
	}
	if rep.Connects > 0 {
		rep.BlockingProbability = float64(rep.Blocked) / float64(rep.Connects)
	}
	if code, err := getJSON(client, cfg.BaseURL+"/v1/metrics", &rep.Server); err != nil || code != http.StatusOK {
		return rep, fmt.Errorf("switchd: attack: fetching target metrics (code %d): %v", code, err)
	}
	return rep, nil
}

type attackWorkerResult struct {
	connects, routed, blocked, rejected, disconnects int
	statusCounts                                     map[int]int
	latencies                                        []time.Duration // per-connect round trips
	traces                                           []TraceRef      // one per connect, by the trace id sent
	err                                              error
}

// attackWorker drives one closed loop: connect until the live target is
// reached, then recycle oldest-first, keeping every request admissible
// within its private port slice.
func attackWorker(client *http.Client, cfg AttackConfig, status Status, model wdm.Model, w, attempts int) attackWorkerResult {
	res := attackWorkerResult{statusCounts: map[int]int{}}
	fabric := w / cfg.WorkersPerFabric
	part := w % cfg.WorkersPerFabric

	// The worker's slice of the port space: every k-wavelength slot of
	// ports congruent to part (mod WorkersPerFabric).
	var ports []int
	for p := part; p < status.N; p += cfg.WorkersPerFabric {
		ports = append(ports, p)
	}
	freeSrc := newLoadgenSlots(ports, status.K)
	freeDst := newLoadgenSlots(ports, status.K)
	gen := workload.NewGenerator(cfg.Seed+int64(w)*7919, model, wdm.Dim{N: status.N, K: status.K})

	type liveSession struct {
		id   uint64
		conn wdm.Connection
	}
	var live []liveSession

	disconnectOldest := func() error {
		s := live[0]
		live = live[1:]
		code, err := postJSON(client, cfg.BaseURL+"/v1/disconnect", disconnectRequest{Session: s.id}, nil)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("switchd: attack: disconnect session %d: unexpected status %d", s.id, code)
		}
		res.disconnects++
		freeSrc.put(s.conn.Source)
		for _, d := range s.conn.Dests {
			freeDst.put(d)
		}
		return nil
	}

	for i := 0; i < attempts; i++ {
		for len(live) >= cfg.TargetLive {
			if res.err = disconnectOldest(); res.err != nil {
				return res
			}
		}
		maxFanout := cfg.MaxFanout
		if maxFanout <= 0 || maxFanout > len(ports) {
			maxFanout = len(ports)
		}
		conn, ok := gen.Connection(freeSrc.slots(), freeDst.slots(), gen.Fanout(maxFanout))
		if !ok {
			// Free sets can't support a request (e.g. wavelength-starved
			// under MSW); recycle a session and retry.
			if len(live) == 0 {
				res.err = fmt.Errorf("switchd: attack: worker %d starved with no live sessions", w)
				return res
			}
			if res.err = disconnectOldest(); res.err != nil {
				return res
			}
			i--
			continue
		}

		pin := fabric
		var cr connectResponse
		// Send a client-generated W3C traceparent so this request's trace
		// id is known here without reading the response: the join key for
		// /v1/debug/spans, the /metrics exemplars, and /v1/debug/blocking.
		tid := span.NewTraceID()
		traceparent := span.FormatTraceparent(tid, span.NewSpanID(), span.FlagSampled)
		start := time.Now()
		code, err := postJSONTraced(client, cfg.BaseURL+"/v1/connect", traceparent,
			connectRequest{Connection: wdm.FormatConnection(conn), Fabric: &pin}, &cr)
		if err != nil {
			res.err = err
			return res
		}
		rtt := time.Since(start)
		res.latencies = append(res.latencies, rtt)
		res.traces = append(res.traces, TraceRef{
			TraceID: tid.String(), Status: code,
			Micros: rtt.Microseconds(), Conn: wdm.FormatConnection(conn),
		})
		res.statusCounts[code]++
		res.connects++
		switch code {
		case http.StatusOK:
			res.routed++
			freeSrc.take(conn.Source)
			for _, d := range conn.Dests {
				freeDst.take(d)
			}
			live = append(live, liveSession{id: cr.Session, conn: conn})
		case http.StatusConflict:
			res.blocked++
		case http.StatusTooManyRequests:
			res.rejected++
			// Shed our own load before trying again.
			if len(live) > 0 {
				if res.err = disconnectOldest(); res.err != nil {
					return res
				}
			}
		default:
			res.err = fmt.Errorf("switchd: attack: connect %s: unexpected status %d", wdm.FormatConnection(conn), code)
			return res
		}
	}

	for len(live) > 0 {
		if res.err = disconnectOldest(); res.err != nil {
			return res
		}
	}
	return res
}

// loadgenSlots is the worker-local free-slot pool (the loadgen twin of
// the simulator's slot bookkeeping, over a port subset).
type loadgenSlots struct {
	free []wdm.PortWave
	pos  map[wdm.PortWave]int
}

func newLoadgenSlots(ports []int, k int) *loadgenSlots {
	s := &loadgenSlots{pos: make(map[wdm.PortWave]int, len(ports)*k)}
	for _, p := range ports {
		for w := 0; w < k; w++ {
			s.put(wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)})
		}
	}
	return s
}

func (s *loadgenSlots) slots() []wdm.PortWave { return s.free }

func (s *loadgenSlots) take(slot wdm.PortWave) {
	i, ok := s.pos[slot]
	if !ok {
		panic(fmt.Sprintf("switchd: attack: taking slot %v twice", slot))
	}
	last := len(s.free) - 1
	s.free[i] = s.free[last]
	s.pos[s.free[i]] = i
	s.free = s.free[:last]
	delete(s.pos, slot)
}

func (s *loadgenSlots) put(slot wdm.PortWave) {
	if _, dup := s.pos[slot]; dup {
		panic(fmt.Sprintf("switchd: attack: freeing slot %v twice", slot))
	}
	s.pos[slot] = len(s.free)
	s.free = append(s.free, slot)
}

// postJSON posts body as JSON and decodes the response into out (when
// non-nil and the response has a body). It returns the HTTP status.
func postJSON(client *http.Client, url string, body, out any) (int, error) {
	return postJSONTraced(client, url, "", body, out)
}

// postJSONTraced is postJSON with a W3C traceparent header attached
// when non-empty.
func postJSONTraced(client *http.Client, url, traceparent string, body, out any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(span.TraceparentHeader, traceparent)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// getJSON fetches url and decodes the response into out.
func getJSON(client *http.Client, url string, out any) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
